// Micro-benchmark for the persistence layer (src/store/): the three wins the
// fleet-scale store exists for, measured on one machine.
//
//  1. Codec: a >=100k-record log of real sampled programs, replicated across
//     synthetic task ids the way a fleet's history replicates structurally
//     similar tasks. Binary-vs-text file size and load wall time (the store's
//     interned tables + varint bodies vs one text line per record).
//  2. Warm start: cold artifact compilation (replay + lower + verify +
//     features) vs restoring the same artifacts from a serialized
//     ArtifactStore snapshot and serving them as cache hits.
//  3. Transfer: a GBDT pretrained from the store's history of a related task
//     (TrainFromStore) vs a cold model, same search, same fixed trial budget.
//
// Emits one "BENCH_JSON {...}" line for bench/BENCH_micro_store.json.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/program/program_cache.h"
#include "src/store/artifact_store.h"
#include "src/store/record_store.h"

namespace ansor {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int Run() {
  PrintHeader("micro_store: binary codec, warm start, transfer-learned model");

  // --- Build the corpus: real programs, fleet-scale record count ------------
  // ConvLayer programs carry realistic step lists (~23 steps: multi-stage
  // tiling, cache writes, annotations) — the regime the interned step table
  // is built for. The corpus replicates them across synthetic task ids the
  // way a fleet's history repeats structurally similar tasks.
  ComputeDAG corpus_dag = MakeConvLayer(1, 32, 28, 28, 32, 3, 3, 1, 1);
  Rng rng(7);
  ProgramCache corpus_cache;
  auto corpus = SampleLowerablePopulation(&corpus_dag, 24, &rng, SamplerOptions(),
                                          SketchOptions(), &corpus_cache);

  size_t target_records = std::max<size_t>(2000, static_cast<size_t>(100000 * Scale()));
  size_t tasks = (target_records + corpus.size() - 1) / corpus.size();
  RecordStore store;
  for (size_t t = 0; t < tasks; ++t) {
    uint64_t task_id = 0x9e3779b97f4a7c15ULL * (t + 1);
    for (size_t p = 0; p < corpus.size(); ++p) {
      TuningRecord record;
      record.task_id = task_id;
      record.seconds = 1e-3 * (1.0 + 0.01 * static_cast<double>(p + t % 7));
      record.throughput = corpus_dag.FlopCount() / record.seconds;
      record.steps = corpus[p].steps();
      store.Add(std::move(record));
    }
  }
  size_t n_records = store.size();

  // --- 1. Codec: size + load time -------------------------------------------
  std::string text_path = "bench_micro_store_records.log";
  std::string binary_path = "bench_micro_store_records.bin";
  store.SaveToFile(text_path, RecordCodec::kText);
  store.SaveToFile(binary_path, RecordCodec::kBinary);
  size_t text_bytes = store.Serialize(RecordCodec::kText).size();
  size_t binary_bytes = store.Serialize(RecordCodec::kBinary).size();
  double size_ratio = static_cast<double>(text_bytes) /
                      static_cast<double>(std::max<size_t>(binary_bytes, 1));

  // Two load shapes: the streaming reader (file -> records, the codec cost
  // alone) and a full store rebuild (decode + re-index into a fresh
  // RecordStore, what a restarting service pays end to end).
  auto time_stream = [&](const std::string& path) {
    size_t seen = 0;
    auto t0 = std::chrono::steady_clock::now();
    RecordLoadStats stats =
        RecordStore::StreamFile(path, [&seen](TuningRecord) { ++seen; });
    auto t1 = std::chrono::steady_clock::now();
    if (!stats || seen != n_records) {
      std::printf("ERROR: %s streamed %zu/%zu records\n", path.c_str(), seen, n_records);
      return -1.0;
    }
    return Seconds(t0, t1);
  };
  auto time_load = [&](const std::string& path) {
    // Dedup off: loading is a pure decode pass, matching what a restarting
    // fleet service does before dedup re-filters.
    RecordStore loaded(RecordStore::Options{false});
    auto t0 = std::chrono::steady_clock::now();
    RecordLoadStats stats = loaded.LoadFromFile(path);
    auto t1 = std::chrono::steady_clock::now();
    if (!stats || stats.loaded != n_records) {
      std::printf("ERROR: %s loaded %zu/%zu records\n", path.c_str(), stats.loaded,
                  n_records);
      return -1.0;
    }
    return Seconds(t0, t1);
  };
  auto best_of = [](const std::function<double()>& run) {
    double best = run();
    double again = run();
    if (best < 0 || again < 0) {
      return -1.0;
    }
    return std::min(best, again);
  };
  double text_load_sec = best_of([&] { return time_stream(text_path); });
  double binary_load_sec = best_of([&] { return time_stream(binary_path); });
  double text_rebuild_sec = best_of([&] { return time_load(text_path); });
  double binary_rebuild_sec = best_of([&] { return time_load(binary_path); });
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
  if (text_load_sec < 0 || binary_load_sec < 0 || text_rebuild_sec < 0 ||
      binary_rebuild_sec < 0) {
    return 1;
  }
  double load_speedup = text_load_sec / std::max(binary_load_sec, 1e-12);
  double rebuild_speedup = text_rebuild_sec / std::max(binary_rebuild_sec, 1e-12);
  std::printf("%zu records: text %zu bytes, binary %zu bytes (%.2fx smaller)\n",
              n_records, text_bytes, binary_bytes, size_ratio);
  std::printf("load (file -> records): text %.3f s, binary %.3f s (%.2fx faster)\n",
              text_load_sec, binary_load_sec, load_speedup);
  std::printf("store rebuild (+ re-index): text %.3f s, binary %.3f s (%.2fx faster)\n",
              text_rebuild_sec, binary_rebuild_sec, rebuild_speedup);

  // --- 2. Warm start vs cold compilation ------------------------------------
  ComputeDAG dag = MakeMatmul(64, 64, 64);
  auto shared_dag = std::make_shared<const ComputeDAG>(dag);
  ProgramCache sample_cache;
  auto population = SampleLowerablePopulation(&dag, 64, &rng, SamplerOptions(),
                                              SketchOptions(), &sample_cache);
  ProgramCache cold_cache;
  auto t0 = std::chrono::steady_clock::now();
  for (const State& s : population) {
    cold_cache.GetOrBuild(s);
  }
  auto t1 = std::chrono::steady_clock::now();
  double cold_build_sec = Seconds(t0, t1);

  ArtifactStore artifacts;
  artifacts.CaptureCache(cold_cache);
  std::string artifact_bytes = artifacts.Serialize();

  t0 = std::chrono::steady_clock::now();
  ArtifactStore restored;
  restored.Deserialize(artifact_bytes);
  ProgramCache warm_cache;
  restored.WarmCache(&warm_cache, shared_dag);
  for (const State& s : population) {
    warm_cache.GetOrBuild(s);
  }
  t1 = std::chrono::steady_clock::now();
  double warm_start_sec = Seconds(t0, t1);
  ProgramCacheStats warm_stats = warm_cache.stats();
  double warm_speedup = cold_build_sec / std::max(warm_start_sec, 1e-12);
  std::printf("artifact snapshot: %zu bytes for %zu programs\n", artifact_bytes.size(),
              population.size());
  std::printf("cold compile %.3f s, warm restore+serve %.3f s (%.2fx), misses after "
              "warm: %lld\n",
              cold_build_sec, warm_start_sec, warm_speedup,
              static_cast<long long>(warm_stats.misses));

  // --- 3. Pretrained vs cold cost model at a fixed budget -------------------
  // History task: tune a related matmul with the store attached, capturing
  // records + artifacts — the fleet state a new tenant would inherit.
  SearchOptions search = FastSearchOptions();
  search.seed = 11;
  // History gets a full tuning run; the target gets a *small* budget — the
  // regime transfer exists for (a new tenant's first rounds, before its own
  // measurements accumulate).
  int history_budget = ScaledTrials(96);
  int budget = ScaledTrials(48);
  int per_round = 16;

  RecordStore history;
  ProgramCache history_cache;
  ArtifactStore history_artifacts;
  {
    SearchTask related = MakeSearchTask("mm_history", MakeMatmul(64, 64, 64));
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    SearchOptions opts = search;
    opts.record_store = &history;
    opts.program_cache = &history_cache;
    TuneTask(related, &measurer, &model, history_budget, per_round, opts);
    history_artifacts.CaptureCache(history_cache);
  }

  GbdtCostModel pretrained;
  TrainFromStoreStats train_stats = pretrained.TrainFromStore(history, history_artifacts);
  std::printf("pretrained from store: %zu samples (%zu without features)\n",
              train_stats.used, train_stats.missing_features);

  SearchTask target = MakeSearchTask("mm_target", MakeMatmul(96, 96, 64));
  double cold_best = 0.0;
  double pretrained_best = 0.0;
  {
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel cold_model;
    cold_best = TuneTask(target, &measurer, &cold_model, budget, per_round, search)
                    .best_seconds;
  }
  {
    Measurer measurer(MachineModel::IntelCpu20Core());
    pretrained_best =
        TuneTask(target, &measurer, &pretrained, budget, per_round, search).best_seconds;
  }
  double transfer_gain = cold_best / std::max(pretrained_best, 1e-12);
  std::printf("fixed budget of %d trials: cold best %.6g s, pretrained best %.6g s "
              "(%.3fx)\n",
              budget, cold_best, pretrained_best, transfer_gain);

  MetricsRegistry registry;
  registry.SetGauge("store.binary_bytes", static_cast<double>(binary_bytes), "bytes");
  registry.SetGauge("store.warm_speedup", warm_speedup, "ratio");
  registry.SetGauge("store.transfer_gain", transfer_gain, "ratio");
  history.ExportMetrics(&registry, "store");
  warm_cache.ExportMetrics(&registry, "cache");
  pretrained.ExportMetrics(&registry, "model");

  std::printf(
      "BENCH_JSON {\"bench\":\"micro_store\",\"records\":%zu,"
      "\"text_bytes\":%zu,\"binary_bytes\":%zu,\"size_ratio\":%.3f,"
      "\"text_load_sec\":%.4f,\"binary_load_sec\":%.4f,\"load_speedup\":%.3f,"
      "\"text_rebuild_sec\":%.4f,\"binary_rebuild_sec\":%.4f,"
      "\"rebuild_speedup\":%.3f,"
      "\"cold_build_sec\":%.4f,\"warm_start_sec\":%.4f,\"warm_speedup\":%.3f,"
      "\"warm_misses\":%lld,\"train_from_store_samples\":%zu,"
      "\"cold_best_seconds\":%.6g,\"pretrained_best_seconds\":%.6g,"
      "\"transfer_gain\":%.3f,%s}\n",
      n_records, text_bytes, binary_bytes, size_ratio, text_load_sec, binary_load_sec,
      load_speedup, text_rebuild_sec, binary_rebuild_sec, rebuild_speedup,
      cold_build_sec, warm_start_sec, warm_speedup,
      static_cast<long long>(warm_stats.misses), train_stats.used, cold_best,
      pretrained_best, transfer_gain, MetricsBlock(registry).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ansor

int main() { return ansor::bench::Run(); }
