// Micro-benchmark for the content-addressed ProgramArtifact pipeline
// (src/program): cold compile throughput (lower + feature extraction per
// artifact, capacity-0 cache) vs warm cache lookups, plus the end-to-end
// consumer chain (score → measure → training features) served from one
// task-lifetime cache. Emits a "BENCH_JSON {...}" line so compile-path
// throughput can be tracked across commits.
#include <chrono>

#include "bench/bench_util.h"
#include "src/program/program_cache.h"

namespace ansor {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

int Run() {
  ComputeDAG dag = MakeMatmul(64, 64, 64);
  Rng rng(1);
  auto population = SampleLowerablePopulation(&dag, 24, &rng);
  if (population.empty()) {
    std::fprintf(stderr, "micro_pipeline: no lowerable programs sampled\n");
    return 1;
  }
  int repeats = std::max(1, static_cast<int>(40 * Scale()));

  PrintHeader("micro_pipeline: content-addressed ProgramArtifact pipeline");
  std::printf("population=%zu repeats=%d\n", population.size(), repeats);

  // Cold path: capacity 0 disables storage, so every lookup pays the full
  // lower + feature-extraction build.
  ProgramCache cold(0);
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const State& s : population) {
      if (!cold.GetOrBuild(s)->ok()) {
        std::fprintf(stderr, "micro_pipeline: artifact build failed\n");
        return 1;
      }
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  double cold_elapsed = Seconds(t0, t1);
  int64_t builds = cold.stats().misses;

  // Warm path: one task-lifetime cache; after the first pass every lookup is
  // a hit served without compiling.
  ProgramCache warm;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const State& s : population) {
      if (!warm.GetOrBuild(s)->ok()) {
        std::fprintf(stderr, "micro_pipeline: artifact lookup failed\n");
        return 1;
      }
    }
  }
  t1 = std::chrono::steady_clock::now();
  double warm_elapsed = Seconds(t0, t1);
  ProgramCacheStats warm_stats = warm.stats();

  // Consumer chain on the warm cache: scoring features + measurement reuse
  // the artifacts already resident; count the extra compiles it costs (0).
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  int64_t misses_before_chain = warm.stats().misses;
  std::vector<FeatureMatrix> features;
  std::vector<double> throughputs;
  for (const State& s : population) {
    features.push_back(warm.GetOrBuild(s)->features());
    MeasureResult r = measurer.Measure(s, &warm);
    throughputs.push_back(r.valid ? r.throughput : 0.0);
  }
  model.Update(dag.CanonicalHash(), features, throughputs);
  int64_t chain_compiles = warm.stats().misses - misses_before_chain;

  // Verifier read path: the structural report is stamped at artifact build
  // (already paid in the cold/warm numbers above); the per-machine resource
  // verdict is memoized by machine fingerprint. This measures the
  // steady-state cost the search pays per statically_legal() consultation.
  MachineModel machine = MachineModel::IntelCpu20Core();
  int64_t legal = 0;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const State& s : population) {
      if (warm.GetOrBuild(s)->statically_legal(&machine)) {
        ++legal;
      }
    }
  }
  t1 = std::chrono::steady_clock::now();
  double verify_elapsed = Seconds(t0, t1);
  int64_t verify_lookups = static_cast<int64_t>(population.size()) * repeats;
  double verify_per_sec = static_cast<double>(verify_lookups) / std::max(verify_elapsed, 1e-12);
  double legal_rate = static_cast<double>(legal) / static_cast<double>(verify_lookups);

  double cold_per_sec = static_cast<double>(builds) / std::max(cold_elapsed, 1e-12);
  double warm_per_sec =
      static_cast<double>(warm_stats.lookups()) / std::max(warm_elapsed, 1e-12);
  double speedup = warm_elapsed > 0.0 ? cold_elapsed / warm_elapsed : 0.0;

  std::printf("cold builds: %lld in %.3f s (%.0f builds/sec)\n",
              static_cast<long long>(builds), cold_elapsed, cold_per_sec);
  std::printf("warm lookups: %lld in %.3f s (%.0f lookups/sec, hit rate %.1f%%, "
              "%lld evictions)\n",
              static_cast<long long>(warm_stats.lookups()), warm_elapsed, warm_per_sec,
              100.0 * warm_stats.HitRate(),
              static_cast<long long>(warm_stats.evictions));
  std::printf("warm/cold speedup: %.1fx\n", speedup);
  std::printf("consumer chain (score+measure+train) extra compiles: %lld\n",
              static_cast<long long>(chain_compiles));
  std::printf("verifier consultations: %lld in %.3f s (%.0f lookups/sec, "
              "legal rate %.1f%%)\n",
              static_cast<long long>(verify_lookups), verify_elapsed, verify_per_sec,
              100.0 * legal_rate);
  MetricsRegistry registry;
  registry.SetGauge("pipeline.cold_builds_per_sec", cold_per_sec, "builds/s");
  registry.SetGauge("pipeline.warm_lookups_per_sec", warm_per_sec, "lookups/s");
  registry.SetGauge("pipeline.verify_lookups_per_sec", verify_per_sec, "lookups/s");
  warm.ExportMetrics(&registry, "cache");
  measurer.ExportMetrics(&registry, "measurer");
  model.ExportMetrics(&registry, "model");

  std::printf("BENCH_JSON {\"bench\":\"micro_pipeline\",\"cold_builds_per_sec\":%.1f,"
              "\"warm_lookups_per_sec\":%.1f,\"speedup\":%.2f,\"hit_rate\":%.4f,"
              "\"chain_extra_compiles\":%lld,\"verify_lookups_per_sec\":%.1f,"
              "\"verifier_legal_rate\":%.4f,%s}\n",
              cold_per_sec, warm_per_sec, speedup, warm_stats.HitRate(),
              static_cast<long long>(chain_compiles), verify_per_sec, legal_rate,
              MetricsBlock(registry).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ansor

int main() { return ansor::bench::Run(); }
