// Micro-benchmarks of the substrate components (google-benchmark): sketch
// generation, program sampling, lowering, interpretation, feature extraction,
// cost-model prediction / training and hardware simulation. These bound the
// search overhead per candidate ("it takes about one to two seconds to
// compile one program and measure it" on real hardware — our simulated
// measurement is orders of magnitude cheaper, which is what lets the test
// suite and figure benches run quickly).
#include <benchmark/benchmark.h>

#include "src/core/ansor.h"
#include "src/exec/interpreter.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"

namespace ansor {
namespace {

const ComputeDAG& ConvDag() {
  static const ComputeDAG dag = MakeConv2d(1, 64, 28, 28, 64, 3, 3, 1, 1);
  return dag;
}

State SampledState() {
  static const std::vector<State> sketches = GenerateSketches(&ConvDag());
  Rng rng(5);
  for (;;) {
    State s = SampleCompleteProgram(sketches[0], &ConvDag(), &rng);
    if (!s.failed() && Lower(s).ok) {
      return s;
    }
  }
}

void BM_SketchGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto sketches = GenerateSketches(&ConvDag());
    benchmark::DoNotOptimize(sketches);
  }
}
BENCHMARK(BM_SketchGeneration);

void BM_SampleCompleteProgram(benchmark::State& state) {
  auto sketches = GenerateSketches(&ConvDag());
  Rng rng(7);
  for (auto _ : state) {
    State s = SampleCompleteProgram(sketches[0], &ConvDag(), &rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SampleCompleteProgram);

void BM_Lowering(benchmark::State& state) {
  State s = SampledState();
  for (auto _ : state) {
    LoweredProgram prog = Lower(s);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_Lowering);

void BM_FeatureExtraction(benchmark::State& state) {
  State s = SampledState();
  LoweredProgram prog = Lower(s);
  for (auto _ : state) {
    auto rows = ExtractFeatures(prog);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_HardwareSimulation(benchmark::State& state) {
  State s = SampledState();
  LoweredProgram prog = Lower(s);
  MachineModel machine = MachineModel::IntelCpu20Core();
  for (auto _ : state) {
    SimulatedCost cost = SimulateProgram(prog, machine);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_HardwareSimulation);

void BM_InterpreterSmallMatmul(benchmark::State& state) {
  ComputeDAG dag = MakeMatmul(16, 16, 16);
  State s(&dag);
  LoweredProgram prog = Lower(s);
  auto inputs = dag.RandomInputs(1);
  for (auto _ : state) {
    auto result = ExecuteProgram(prog, inputs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InterpreterSmallMatmul);

void BM_GbdtTraining(benchmark::State& state) {
  Rng rng(11);
  GbdtDataset data;
  for (int p = 0; p < 256; ++p) {
    for (int r = 0; r < 3; ++r) {
      std::vector<float> row(FeatureDim());
      for (auto& v : row) {
        v = static_cast<float>(rng.Uniform());
      }
      data.rows.AppendRow(row);
      data.group.push_back(p);
    }
    data.labels.push_back(rng.Uniform());
    data.weights.push_back(1.0);
  }
  for (auto _ : state) {
    Gbdt model;
    model.Train(data);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GbdtTraining);

void BM_GbdtPrediction(benchmark::State& state) {
  Rng rng(13);
  GbdtDataset data;
  for (int p = 0; p < 128; ++p) {
    std::vector<float> row(FeatureDim());
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    data.rows.AppendRow(row);
    data.group.push_back(p);
    data.labels.push_back(rng.Uniform());
    data.weights.push_back(1.0);
  }
  Gbdt model;
  model.Train(data);
  std::vector<float> row(FeatureDim(), 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictRow(row));
  }
}
BENCHMARK(BM_GbdtPrediction);

void BM_FullMeasurement(benchmark::State& state) {
  // One complete "trial": lower + simulate (what the paper pays 1-2 s of real
  // hardware time for).
  State s = SampledState();
  Measurer measurer(MachineModel::IntelCpu20Core());
  for (auto _ : state) {
    MeasureResult r = measurer.Measure(s);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullMeasurement);

}  // namespace
}  // namespace ansor

BENCHMARK_MAIN();
