#!/usr/bin/env bash
# Regenerates the checked-in benchmark snapshots (bench/BENCH_*.json) from a
# built tree. Each micro benchmark prints one machine-readable "BENCH_JSON
# {...}" line; this script runs them and extracts that line so compile-path
# and search-path throughput (and the verifier's filtering win) can be
# compared across commits.
#
# Every snapshot also carries a shared "metrics":[{name,value,unit},...]
# block — the bench's MetricsRegistry readings (see bench_util.h
# MetricsBlock) — so one schema covers all five benches.
#
# Usage: bench/snapshot.sh [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

for bench in micro_evolution micro_pipeline micro_scoring micro_service micro_store; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found; build first: cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  out="bench/BENCH_$bench.json"
  "$bin" | sed -n 's/^BENCH_JSON //p' > "$out"
  if [[ ! -s "$out" ]]; then
    echo "error: $bench printed no BENCH_JSON line" >&2
    exit 1
  fi
  if ! grep -q '"metrics":\[' "$out"; then
    echo "error: $bench snapshot is missing the shared metrics block" >&2
    exit 1
  fi
  echo "wrote $out: $(cat "$out")"
done
