// Reproduces Figure 7: "Ablation study of four variants of Ansor on a
// convolution operator" — the last convolution of ResNet-50 at batch 16.
// Variants: full Ansor, Beam search (early pruning of incomplete programs,
// no fine-tuning), No fine-tuning (random sampling only), Limited space.
// Output: best-throughput-so-far vs measurement trials, normalized to the
// overall best.
#include <map>

#include "bench/bench_util.h"

namespace ansor {
namespace {

std::vector<std::pair<int64_t, double>> ToThroughputCurve(
    const std::vector<std::pair<int64_t, double>>& history, double flops) {
  std::vector<std::pair<int64_t, double>> curve;
  for (const auto& [trials, seconds] : history) {
    curve.emplace_back(trials, std::isfinite(seconds) ? flops / seconds : 0.0);
  }
  return curve;
}

double CurveValueAt(const std::vector<std::pair<int64_t, double>>& curve, int64_t trials) {
  double value = 0.0;
  for (const auto& [t, v] : curve) {
    if (t <= trials) {
      value = v;
    }
  }
  return value;
}

void Run() {
  // The last convolution of ResNet-50: 7x7 feature maps, 512 channels, bs=16.
  ComputeDAG dag = MakeConv2d(16, 512, 7, 7, 512, 3, 3, 1, 1);
  SearchTask task = MakeSearchTask("resnet50-last-conv", dag);
  double flops = task.flop_count();
  int total_trials = bench::ScaledTrials(192);
  int batch = 12;
  MachineModel machine = MachineModel::IntelCpu20Core();

  std::map<std::string, std::vector<std::pair<int64_t, double>>> curves;
  {
    Measurer m(machine);
    GbdtCostModel model;
    SearchOptions options = bench::FastSearchOptions();
    curves["Ansor (ours)"] = ToThroughputCurve(
        TuneTask(task, &m, &model, total_trials, batch, options).history, flops);
  }
  {
    Measurer m(machine);
    GbdtCostModel model;
    BeamSearchOptions options;
    options.measures_per_round = batch;
    curves["Beam search"] = ToThroughputCurve(
        BeamSearch(task, &m, &model, total_trials, options).history, flops);
  }
  {
    Measurer m(machine);
    GbdtCostModel model;
    SearchOptions options = bench::FastSearchOptions();
    options.enable_fine_tuning = false;
    curves["No fine-tuning"] = ToThroughputCurve(
        TuneTask(task, &m, &model, total_trials, batch, options).history, flops);
  }
  {
    Measurer m(machine);
    GbdtCostModel model;
    SearchOptions options = bench::FastSearchOptions();
    options.sketch.enable_cache_write = false;
    options.sketch.enable_rfactor = false;
    options.sketch.space_levels = 2;
    options.sketch.reduce_levels = 1;
    options.sampler.unroll_options = {16};
    curves["Limited space"] = ToThroughputCurve(
        TuneTask(task, &m, &model, total_trials, batch, options).history, flops);
  }

  double best = 0.0;
  for (const auto& [name, curve] : curves) {
    for (const auto& [t, v] : curve) {
      best = std::max(best, v);
    }
  }

  bench::PrintHeader(
      "Figure 7: ablation on the last conv of ResNet-50 (batch 16)\n"
      "(best throughput so far / overall best, vs measurement trials)");
  std::vector<std::string> variants = {"Ansor (ours)", "Beam search", "No fine-tuning",
                                       "Limited space"};
  std::vector<int64_t> checkpoints;
  for (int i = 1; i <= 8; ++i) {
    checkpoints.push_back(total_trials * i / 8);
  }
  std::printf("%-22s", "trials");
  for (int64_t t : checkpoints) {
    std::printf("%9lld", static_cast<long long>(t));
  }
  std::printf("\n");
  for (const std::string& v : variants) {
    std::vector<double> row;
    for (int64_t t : checkpoints) {
      row.push_back(best > 0.0 ? CurveValueAt(curves[v], t) / best : 0.0);
    }
    bench::PrintRow(v, row, 9);
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): Ansor reaches the top; dropping the\n"
      "large space or fine-tuning lowers the final performance; beam search\n"
      "suffers from pruning good incomplete programs.\n");
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::Run();
  return 0;
}
