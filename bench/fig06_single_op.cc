// Reproduces Figure 6: "Single operator performance benchmark on a 20-core
// Intel CPU" — 10 operators x 4 shapes x 2 batch sizes, comparing
// PyTorch (vendor library), Halide auto-scheduler (beam search),
// FlexTensor (template search, no fusion), AutoTVM (template search) and
// Ansor. Per operator we report the geometric mean of per-shape throughput,
// normalized to the best framework (the paper's y-axis).
#include <map>

#include "bench/bench_util.h"

namespace ansor {
namespace {

struct FrameworkScores {
  // op name -> list of per-shape throughputs.
  std::map<std::string, std::vector<double>> by_op;
};

void RunBatch(int64_t batch) {
  int trials = bench::ScaledTrials(80);
  auto suite = SingleOpSuite(batch);
  std::vector<std::string> frameworks = {"PyTorch", "Halide", "FlexTensor", "AutoTVM",
                                         "Ansor"};
  std::map<std::string, FrameworkScores> scores;

  for (const OpBenchCase& c : suite) {
    SearchTask task = MakeSearchTask(c.op + "/" + c.shape, c.dag);
    MachineModel machine = MachineModel::IntelCpu20Core();
    {
      Measurer m(machine);
      scores["PyTorch"].by_op[c.op].push_back(VendorLibrary(task, &m).best_throughput);
    }
    {
      Measurer m(machine);
      GbdtCostModel model;
      BeamSearchOptions options;
      options.beam_width = 6;
      scores["Halide"].by_op[c.op].push_back(
          BeamSearch(task, &m, &model, trials, options).best_throughput);
    }
    {
      Measurer m(machine);
      TemplateSearchOptions options;
      options.enable_fusion = false;  // FlexTensor: single-op templates
      scores["FlexTensor"].by_op[c.op].push_back(
          TemplateSearch(task, &m, trials, options).best_throughput);
    }
    {
      Measurer m(machine);
      scores["AutoTVM"].by_op[c.op].push_back(
          TemplateSearch(task, &m, trials).best_throughput);
    }
    {
      Measurer m(machine);
      GbdtCostModel model;
      SearchOptions ansor_options = bench::FastSearchOptions();
      ansor_options.population = 48;
      ansor_options.generations = 4;
      scores["Ansor"].by_op[c.op].push_back(
          TuneTask(task, &m, &model, trials, 10, ansor_options).best_throughput);
    }
  }

  bench::PrintHeader("Figure 6: single operator benchmark, Intel CPU, batch size = " +
                     std::to_string(batch) + "\n(geomean throughput per op, normalized to "
                     "the best framework; higher is better)");
  std::vector<std::string> ops = {"C1D", "C2D", "C3D", "GMM", "GRP",
                                  "DIL", "DEP", "T2D", "CAP", "NRM"};
  bench::PrintColumns(ops, 9);
  std::map<std::string, std::vector<double>> norm_rows;
  for (const std::string& op : ops) {
    std::vector<double> geo;
    for (const std::string& fw : frameworks) {
      std::vector<double> positive;
      for (double t : scores[fw].by_op[op]) {
        positive.push_back(std::max(t, 1.0));
      }
      geo.push_back(GeometricMean(positive));
    }
    auto norm = bench::NormalizeToBest(geo);
    for (size_t f = 0; f < frameworks.size(); ++f) {
      norm_rows[frameworks[f]].push_back(norm[f]);
    }
  }
  int ansor_best = 0;
  for (size_t o = 0; o < ops.size(); ++o) {
    if (norm_rows["Ansor"][o] >= 0.999) {
      ++ansor_best;
    }
  }
  for (const std::string& fw : frameworks) {
    bench::PrintRow(fw, norm_rows[fw], 9);
  }
  std::printf("\nAnsor is best on %d / %zu operators at batch %lld "
              "(paper: best on 19 of 20 cases overall).\n",
              ansor_best, ops.size(), static_cast<long long>(batch));
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::RunBatch(1);
  ansor::RunBatch(16);
  return 0;
}
