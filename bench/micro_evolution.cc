// Micro-benchmark for the evolutionary-search hot path (paper §5.1): child
// generation throughput (children/sec), the crossover stage-score cache hit
// rate, and the task-lifetime ProgramCache hit rate (cross-generation and
// cross-repeat artifact reuse). Emits one machine-readable "BENCH_JSON {...}"
// line so search throughput can be tracked across commits.
#include <chrono>

#include "bench/bench_util.h"
#include "src/program/program_cache.h"
#include "src/support/thread_pool.h"

namespace ansor {
namespace bench {
namespace {

int Run() {
  ComputeDAG dag = MakeMatmul(64, 64, 64);
  Rng init_rng(1);
  // One task-lifetime cache for the whole run: the lowerability probes below
  // already populate it, so the first scoring pass starts with hits.
  ProgramCache cache;
  auto init = SampleLowerablePopulation(&dag, 16, &init_rng, SamplerOptions(),
                                        SketchOptions(), &cache);

  // Train the cost model on the initial population so PredictStatements does
  // real per-row work, as in a warmed-up search.
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<FeatureMatrix> features;
  std::vector<double> throughputs;
  for (const State& s : init) {
    features.push_back(cache.GetOrBuild(s)->features());
    MeasureResult r = measurer.Measure(s, &cache);
    throughputs.push_back(r.valid ? r.throughput : 0.0);
  }
  model.Update(dag.CanonicalHash(), features, throughputs);

  EvolutionOptions options;  // default population/generations: the hot path
  options.program_cache = &cache;
  int repeats = std::max(1, static_cast<int>(3 * Scale()));

  PrintHeader("micro_evolution: evolutionary-search child generation");
  std::printf("population=%d generations=%d crossover_p=%.2f repeats=%d threads=%zu\n",
              options.population, options.generations, options.crossover_probability,
              repeats, ThreadPool::Global().num_threads());

  EvolutionStats total;
  double elapsed = 0.0;
  for (int r = 0; r < repeats; ++r) {
    EvolutionarySearch es(&dag, &model, Rng(100 + static_cast<uint64_t>(r)), options);
    auto t0 = std::chrono::steady_clock::now();
    auto best = es.Evolve(init, 8);
    auto t1 = std::chrono::steady_clock::now();
    elapsed += std::chrono::duration<double>(t1 - t0).count();
    const EvolutionStats& stats = es.stats();
    total.children_generated += stats.children_generated;
    total.child_attempts += stats.child_attempts;
    total.statically_rejected += stats.statically_rejected;
    total.crossover_score_hits += stats.crossover_score_hits;
    total.crossover_score_misses += stats.crossover_score_misses;
    total.program_cache_hits += stats.program_cache_hits;
    total.program_cache_misses += stats.program_cache_misses;
    total.program_cache_evictions += stats.program_cache_evictions;
  }
  double children_per_sec =
      static_cast<double>(total.children_generated) / std::max(elapsed, 1e-12);
  double attempts_per_sec =
      static_cast<double>(total.child_attempts) / std::max(elapsed, 1e-12);
  double hit_rate = total.CacheHitRate();
  double program_hit_rate = total.ProgramCacheHitRate();

  std::printf("children generated: %lld (of %lld attempts) in %.3f s\n",
              static_cast<long long>(total.children_generated),
              static_cast<long long>(total.child_attempts), elapsed);
  std::printf("children/sec: %.0f   attempts/sec: %.0f\n", children_per_sec, attempts_per_sec);
  std::printf("crossover score cache: %lld hits / %lld misses (hit rate %.1f%%)\n",
              static_cast<long long>(total.crossover_score_hits),
              static_cast<long long>(total.crossover_score_misses), 100.0 * hit_rate);
  std::printf("program cache: %lld hits / %lld misses / %lld evictions "
              "(hit rate %.1f%%, %zu entries)\n",
              static_cast<long long>(total.program_cache_hits),
              static_cast<long long>(total.program_cache_misses),
              static_cast<long long>(total.program_cache_evictions),
              100.0 * program_hit_rate, cache.size());

  // Static pre-filter A/B at equal measurement budget: the same tuning run
  // with the verifier off vs on. Softmax over 512-wide rows makes the
  // vectorize mutation regularly annotate a 512-extent loop — beyond the
  // Intel model's 256-lane register budget, so the program fails on the
  // (simulated) machine. Off, those candidates burn measurement trials
  // (invalid_measures); on, the verifier rejects them before the measurer
  // ever sees them (statically_rejected).
  auto tune = [&](int verify_level, int64_t* rejected, int64_t* measures) {
    ComputeDAG ab_dag = MakeSoftmax(64, 512);
    Measurer ab_measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel ab_model;
    SearchTask task = MakeSearchTask("micro_evolution_ab", std::move(ab_dag));
    SearchOptions search = FastSearchOptions();
    search.verify_level = verify_level;
    TaskTuner tuner(task, &ab_measurer, &ab_model, search);
    int trials = ScaledTrials(48);
    for (int done = 0; done < trials; done += 16) {
      tuner.TuneRound(16);
    }
    *rejected = tuner.statically_rejected();
    *measures = tuner.total_measures();
    return tuner.invalid_measures();
  };
  int64_t rejected_off = 0, rejected_on = 0;
  int64_t measures_off = 0, measures_on = 0;
  int64_t invalid_off = tune(0, &rejected_off, &measures_off);
  int64_t invalid_on = tune(1, &rejected_on, &measures_on);
  std::printf("verifier A/B (equal budget): off invalid=%lld/%lld  on invalid=%lld/%lld "
              "statically_rejected=%lld\n",
              static_cast<long long>(invalid_off), static_cast<long long>(measures_off),
              static_cast<long long>(invalid_on), static_cast<long long>(measures_on),
              static_cast<long long>(rejected_on));

  // The shared metrics block: mirror the components this bench exercised
  // into a registry and embed the flat readings.
  MetricsRegistry registry;
  registry.SetGauge("evolution.children_per_sec", children_per_sec, "children/s");
  registry.SetGauge("evolution.attempts_per_sec", attempts_per_sec, "children/s");
  registry.SetGauge("evolution.crossover_score_hit_rate", hit_rate, "ratio");
  cache.ExportMetrics(&registry, "cache");
  model.ExportMetrics(&registry, "model");
  measurer.ExportMetrics(&registry, "measurer");

  std::printf("BENCH_JSON {\"bench\":\"micro_evolution\",\"children_per_sec\":%.1f,"
              "\"attempts_per_sec\":%.1f,\"cache_hit_rate\":%.4f,"
              "\"program_cache_hit_rate\":%.4f,\"statically_rejected\":%lld,"
              "\"invalid_measures_verify_off\":%lld,\"invalid_measures_verify_on\":%lld,"
              "\"threads\":%zu,%s}\n",
              children_per_sec, attempts_per_sec, hit_rate, program_hit_rate,
              static_cast<long long>(rejected_on), static_cast<long long>(invalid_off),
              static_cast<long long>(invalid_on), ThreadPool::Global().num_threads(),
              MetricsBlock(registry).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ansor

int main() { return ansor::bench::Run(); }
