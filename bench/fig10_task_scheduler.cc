// Reproduces Figure 10: "Network performance auto-tuning curve" — the task
// scheduler ablation. Left: MobileNet-V2 alone; right: MobileNet-V2 +
// ResNet-50 tuned jointly. Variants: full Ansor (gradient task scheduler),
// No task scheduler (round-robin), No fine-tuning, Limited space, plus the
// AutoTVM reference. The y-axis is the speedup over AutoTVM's final result;
// also reports the paper's §7.3 "search time" observation (trials needed by
// Ansor to match AutoTVM).
#include <map>

#include "bench/bench_util.h"

namespace ansor {
namespace {

struct Curve {
  std::vector<std::pair<int64_t, double>> points;  // (trials, total latency)
};

double LatencyAt(const Curve& curve, int64_t trials) {
  double value = curve.points.empty() ? 1.0 : curve.points.front().second;
  for (const auto& [t, v] : curve.points) {
    if (t <= trials) {
      value = v;
    }
  }
  return value;
}

Curve RunScheduler(const std::vector<NetworkTasks>& nets, int total_rounds,
                   const TaskSchedulerOptions& options, bool round_robin) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<SearchTask> tasks;
  std::vector<NetworkSpec> specs;
  for (const NetworkTasks& net : nets) {
    NetworkSpec spec;
    spec.name = net.name;
    for (const SearchTask& task : net.tasks) {
      spec.task_indices.push_back(static_cast<int>(tasks.size()));
      tasks.push_back(task);
    }
    specs.push_back(std::move(spec));
  }
  TaskSchedulerOptions opts = options;
  if (round_robin) {
    opts.eps_greedy = 1.0;  // pure random choice == uniform round-robin in expectation
  }
  TaskScheduler scheduler(tasks, specs, Objective::SumLatency(), &measurer, &model, opts);
  scheduler.Tune(total_rounds);
  Curve curve;
  for (const auto& [trials, objective] : scheduler.history()) {
    curve.points.emplace_back(trials, objective);
  }
  return curve;
}

double AutoTvmFinal(const std::vector<NetworkTasks>& nets, int trials_per_task,
                    int64_t* total_trials) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  double total = 0.0;
  for (const NetworkTasks& net : nets) {
    for (const SearchTask& task : net.tasks) {
      TuneResult r = TemplateSearch(task, &measurer, trials_per_task);
      total += task.weight * (std::isfinite(r.best_seconds) ? r.best_seconds : 1.0);
    }
  }
  *total_trials = measurer.trial_count();
  return total;
}

void RunCase(const std::string& title, const std::vector<NetworkTasks>& nets) {
  int n_tasks = 0;
  for (const auto& net : nets) {
    n_tasks += static_cast<int>(net.tasks.size());
  }
  int rounds = n_tasks * std::max(2, static_cast<int>(5 * bench::Scale()));

  TaskSchedulerOptions base;
  base.measures_per_round = bench::ScaledTrials(10);
  base.search = bench::FastSearchOptions();

  std::map<std::string, Curve> curves;
  curves["Ansor (ours)"] = RunScheduler(nets, rounds, base, false);
  curves["No task scheduler"] = RunScheduler(nets, rounds, base, true);
  {
    TaskSchedulerOptions options = base;
    options.search.enable_fine_tuning = false;
    curves["No fine-tuning"] = RunScheduler(nets, rounds, options, false);
  }
  {
    TaskSchedulerOptions options = base;
    options.search.sketch.enable_cache_write = false;
    options.search.sketch.enable_rfactor = false;
    options.search.sketch.space_levels = 2;
    options.search.sketch.reduce_levels = 1;
    options.search.sampler.unroll_options = {16};
    curves["Limited space"] = RunScheduler(nets, rounds, options, false);
  }
  int64_t autotvm_trials = 0;
  double autotvm_latency =
      AutoTvmFinal(nets, bench::ScaledTrials(30), &autotvm_trials);

  bench::PrintHeader("Figure 10: " + title +
                     "\n(speedup over AutoTVM's final result vs measurement trials)");
  int64_t max_trials = 0;
  for (const auto& [name, curve] : curves) {
    if (!curve.points.empty()) {
      max_trials = std::max(max_trials, curve.points.back().first);
    }
  }
  std::vector<int64_t> checkpoints;
  for (int i = 1; i <= 6; ++i) {
    checkpoints.push_back(max_trials * i / 6);
  }
  std::printf("%-22s", "trials");
  for (int64_t t : checkpoints) {
    std::printf("%10lld", static_cast<long long>(t));
  }
  std::printf("\n");
  for (const auto& name : {"Ansor (ours)", "No task scheduler", "No fine-tuning",
                           "Limited space"}) {
    std::vector<double> row;
    for (int64_t t : checkpoints) {
      row.push_back(autotvm_latency / LatencyAt(curves[name], t));
    }
    bench::PrintRow(name, row, 10);
  }
  std::printf("%-22s%10s (reference = 1.0 after %lld trials)\n", "AutoTVM", "1.000",
              static_cast<long long>(autotvm_trials));

  // §7.3 search time: trials Ansor needs to match AutoTVM's final latency.
  int64_t match_trials = -1;
  for (const auto& [t, v] : curves["Ansor (ours)"].points) {
    if (v <= autotvm_latency) {
      match_trials = t;
      break;
    }
  }
  if (match_trials >= 0) {
    std::printf("\nSearch time: Ansor matches AutoTVM's final result after %lld trials "
                "(AutoTVM used %lld) -> %.1fx fewer trials.\n",
                static_cast<long long>(match_trials),
                static_cast<long long>(autotvm_trials),
                static_cast<double>(autotvm_trials) / static_cast<double>(match_trials));
  } else {
    std::printf("\nSearch time: Ansor did not reach AutoTVM's final latency within this "
                "(scaled-down) budget; rerun with ANSOR_BENCH_SCALE>=4.\n");
  }
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::RunCase("MobileNet-V2 (Intel CPU)", {ansor::MobileNetV2Tasks(1)});
  ansor::RunCase("MobileNet-V2 + ResNet-50 (Intel CPU)",
                 {ansor::MobileNetV2Tasks(1), ansor::ResNet50Tasks(1)});
  return 0;
}
