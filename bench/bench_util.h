// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the paper. Trial
// counts default to reduced values that preserve the qualitative shape and
// finish in minutes; scale them with ANSOR_BENCH_SCALE (e.g. 4.0 for longer,
// more paper-faithful runs).
#ifndef ANSOR_BENCH_BENCH_UTIL_H_
#define ANSOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/ansor.h"
#include "src/support/util.h"
#include "src/telemetry/metrics.h"

namespace ansor {
namespace bench {

inline double Scale() { return std::max(0.05, EnvDouble("ANSOR_BENCH_SCALE", 1.0)); }

inline int ScaledTrials(int base) {
  return std::max(8, static_cast<int>(base * Scale()));
}

inline SearchOptions FastSearchOptions() {
  SearchOptions options;
  options.population = 40;
  options.generations = 3;
  options.random_samples_per_round = 16;
  return options;
}

// Normalizes throughputs so the best framework gets 1.0 (the y-axis of
// Figs. 6/8/9).
inline std::vector<double> NormalizeToBest(const std::vector<double>& throughputs) {
  double best = 0.0;
  for (double t : throughputs) {
    best = std::max(best, t);
  }
  std::vector<double> out;
  for (double t : throughputs) {
    out.push_back(best > 0.0 ? t / best : 0.0);
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     int width = 12) {
  std::printf("%-22s", label.c_str());
  for (double v : values) {
    std::printf("%*s", width, FormatDouble(v, 3).c_str());
  }
  std::printf("\n");
}

inline void PrintColumns(const std::vector<std::string>& names, int width = 12) {
  std::printf("%-22s", "");
  for (const std::string& n : names) {
    std::printf("%*s", width, n.c_str());
  }
  std::printf("\n");
}

// The shared BENCH_JSON metrics block: every micro bench mirrors the
// counters of the components it exercised into a MetricsRegistry (the
// ExportMetrics methods / SetGauge) and embeds the flat readings in its
// single-line JSON as "metrics":[{"name":...,"value":...,"unit":...},...],
// so bench/snapshot.sh captures one uniform schema across benches.
inline std::string MetricsBlock(const MetricsRegistry& registry) {
  return "\"metrics\":" + registry.SamplesJson();
}

}  // namespace bench
}  // namespace ansor

#endif  // ANSOR_BENCH_BENCH_UTIL_H_
