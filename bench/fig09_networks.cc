// Reproduces Figure 9: "Network inference performance benchmark on three
// hardware platforms" — ResNet-50, MobileNet-V2, 3D-ResNet-18, DCGAN and
// BERT on the Intel CPU (batch 1/16), the NVIDIA GPU (batch 1/16) and the
// ARM CPU (batch 1). Frameworks: the vendor library (PyTorch / TensorFlow /
// TensorRT / TF-Lite bars), AutoTVM (template search per task) and Ansor
// (task scheduler + full search). Values are network throughput normalized
// to the best framework.
#include <map>

#include "bench/bench_util.h"

namespace ansor {
namespace {

double NetworkLatencyWith(
    const NetworkTasks& net,
    const std::function<double(const SearchTask&)>& task_latency) {
  double total = 0.0;
  for (const SearchTask& task : net.tasks) {
    double seconds = task_latency(task);
    if (!std::isfinite(seconds)) {
      seconds = 1.0;
    }
    total += task.weight * seconds;
  }
  return total;
}

void RunPlatform(TargetKind target, const std::string& platform, int64_t batch) {
  MachineModel machine = MachineFor(target);
  auto networks = AllNetworks(batch);
  int rounds_per_task = 3;
  int trials = bench::ScaledTrials(16);

  bench::PrintHeader("Figure 9 (" + platform + "), batch size = " + std::to_string(batch) +
                     "\n(network throughput normalized to the best framework)");
  std::vector<std::string> names;
  for (const auto& net : networks) {
    names.push_back(net.name);
  }
  bench::PrintColumns(names, 14);

  std::vector<double> vendor_lat;
  std::vector<double> autotvm_lat;
  std::vector<double> ansor_lat;
  for (const NetworkTasks& net : networks) {
    {
      Measurer m(machine);
      vendor_lat.push_back(NetworkLatencyWith(net, [&](const SearchTask& task) {
        return VendorLibrary(task, &m).best_seconds;
      }));
    }
    {
      Measurer m(machine);
      TemplateSearchOptions tmpl;
      tmpl.gpu = target == TargetKind::kNvidiaGpu;
      autotvm_lat.push_back(NetworkLatencyWith(net, [&](const SearchTask& task) {
        return TemplateSearch(task, &m, trials, tmpl).best_seconds;
      }));
    }
    {
      AnsorOptions options;
      options.target = target;
      options.measures_per_round = trials;
      options.search = bench::FastSearchOptions();
      auto results = TuneNetworks({net}, rounds_per_task * static_cast<int>(net.tasks.size()),
                                  Objective::SumLatency(), options);
      ansor_lat.push_back(results[0].latency_seconds);
    }
  }

  auto to_rows = [&](size_t n) {
    std::vector<std::vector<double>> rows(3);
    for (size_t j = 0; j < n; ++j) {
      std::vector<double> thr = {1.0 / vendor_lat[j], 1.0 / autotvm_lat[j],
                                 1.0 / ansor_lat[j]};
      auto norm = bench::NormalizeToBest(thr);
      for (int f = 0; f < 3; ++f) {
        rows[static_cast<size_t>(f)].push_back(norm[static_cast<size_t>(f)]);
      }
    }
    return rows;
  };
  auto rows = to_rows(networks.size());
  const char* vendor_name = target == TargetKind::kNvidiaGpu
                                ? "TensorRT/vendor"
                                : (target == TargetKind::kArmCpu ? "TF-Lite/vendor"
                                                                 : "PyTorch/vendor");
  bench::PrintRow(vendor_name, rows[0], 14);
  bench::PrintRow("AutoTVM", rows[1], 14);
  bench::PrintRow("Ansor (ours)", rows[2], 14);

  double best_speedup = 0.0;
  for (size_t j = 0; j < networks.size(); ++j) {
    best_speedup = std::max(best_speedup,
                            std::min(vendor_lat[j], autotvm_lat[j]) / ansor_lat[j]);
  }
  std::printf("\nMax Ansor speedup over the best alternative on %s: %.2fx\n",
              platform.c_str(), best_speedup);
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::RunPlatform(ansor::TargetKind::kIntelCpu, "Intel CPU", 1);
  ansor::RunPlatform(ansor::TargetKind::kIntelCpu, "Intel CPU", 16);
  ansor::RunPlatform(ansor::TargetKind::kNvidiaGpu, "NVIDIA GPU", 1);
  ansor::RunPlatform(ansor::TargetKind::kNvidiaGpu, "NVIDIA GPU", 16);
  ansor::RunPlatform(ansor::TargetKind::kArmCpu, "ARM CPU", 1);
  return 0;
}
