// Reproduces Figure 8: "Subgraph performance benchmark" — the ConvLayer
// (conv2d + batch norm + ReLU) and TBG (transpose x2 + batch matmul)
// subgraphs on the Intel CPU ("@C") and the NVIDIA GPU ("@G"), for batch
// sizes 1 and 16. Halide is omitted on GPU (paper: experimental support).
#include <map>

#include "bench/bench_util.h"

namespace ansor {
namespace {

void RunBatch(int64_t batch) {
  int trials = bench::ScaledTrials(48);
  auto suite = SubgraphSuite(batch);

  struct Cell {
    std::vector<double> throughputs;  // per shape
  };
  // key: framework -> column (subgraph@target) -> per-shape throughputs.
  std::map<std::string, std::map<std::string, Cell>> table;
  std::vector<std::string> columns = {"ConvLayer@C", "ConvLayer@G", "TBG@C", "TBG@G"};

  for (const OpBenchCase& c : suite) {
    for (TargetKind target : {TargetKind::kIntelCpu, TargetKind::kNvidiaGpu}) {
      std::string column =
          c.op + (target == TargetKind::kIntelCpu ? std::string("@C") : std::string("@G"));
      MachineModel machine = MachineFor(target);
      SearchTask task = MakeSearchTask(column + "/" + c.shape, c.dag);
      SearchOptions search = bench::FastSearchOptions();
      ConfigureForTarget(target, &search);
      TemplateSearchOptions tmpl;
      tmpl.gpu = target == TargetKind::kNvidiaGpu;
      SamplerOptions gpu_sampler;
      gpu_sampler.gpu = target == TargetKind::kNvidiaGpu;

      {
        Measurer m(machine);
        table["PyTorch"][column].throughputs.push_back(
            VendorLibrary(task, &m).best_throughput);
      }
      if (target == TargetKind::kIntelCpu) {
        Measurer m(machine);
        GbdtCostModel model;
        BeamSearchOptions options;
        options.sampler = gpu_sampler;
        table["Halide"][column].throughputs.push_back(
            BeamSearch(task, &m, &model, trials, options).best_throughput);
      }
      {
        // FlexTensor: no consumer fusion (the paper's ConvLayer@G weakness).
        Measurer m(machine);
        TemplateSearchOptions options = tmpl;
        options.enable_fusion = false;
        table["FlexTensor"][column].throughputs.push_back(
            TemplateSearch(task, &m, trials, options).best_throughput);
      }
      {
        Measurer m(machine);
        table["AutoTVM"][column].throughputs.push_back(
            TemplateSearch(task, &m, trials, tmpl).best_throughput);
      }
      {
        Measurer m(machine);
        GbdtCostModel model;
        table["Ansor"][column].throughputs.push_back(
            TuneTask(task, &m, &model, trials, 12, search).best_throughput);
      }
    }
  }

  bench::PrintHeader("Figure 8: subgraph benchmark, batch size = " + std::to_string(batch) +
                     "\n(geomean throughput, normalized to the best framework per column;"
                     " @C = Intel CPU, @G = NVIDIA GPU)");
  std::vector<std::string> frameworks = {"PyTorch", "Halide", "FlexTensor", "AutoTVM",
                                         "Ansor"};
  bench::PrintColumns(columns, 13);
  std::map<std::string, std::vector<double>> geo;
  for (const std::string& column : columns) {
    std::vector<double> values;
    for (const std::string& fw : frameworks) {
      auto it = table[fw].find(column);
      if (it == table[fw].end() || it->second.throughputs.empty()) {
        values.push_back(0.0);
        continue;
      }
      std::vector<double> positive;
      for (double t : it->second.throughputs) {
        positive.push_back(std::max(t, 1.0));
      }
      values.push_back(GeometricMean(positive));
    }
    auto norm = bench::NormalizeToBest(values);
    for (size_t f = 0; f < frameworks.size(); ++f) {
      geo[frameworks[f]].push_back(norm[f]);
    }
  }
  for (const std::string& fw : frameworks) {
    bench::PrintRow(fw, geo[fw], 13);
  }
  std::printf("\n(Halide@G is blank: GPU support experimental, as in the paper.)\n");
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::RunBatch(1);
  ansor::RunBatch(16);
  return 0;
}
