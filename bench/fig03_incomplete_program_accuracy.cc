// Reproduces Figure 3: "Pairwise comparison accuracy and top-k recall curve
// on random partial programs."
//
// A GBDT cost model is trained on measured complete programs from the
// matmul+relu search space. Incomplete programs are emulated exactly as the
// sequential-construction baselines see them: a program at completion rate r
// keeps only the first ceil(r * n_steps) rewriting steps (the rest of the
// DAG is still naive). The model must predict the final (complete) program's
// performance from the partial program — which it cannot (paper §2).
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "src/costmodel/metrics.h"
#include "src/exec/interpreter.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"

namespace ansor {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 3: cost-model accuracy vs program completion rate\n"
      "(trained on complete programs; evaluated on partial step prefixes)");

  ComputeDAG dag = MakeMatmul(64, 64, 64);
  auto sketches = GenerateSketches(&dag);
  Measurer measurer(MachineModel::IntelCpu20Core());
  Rng rng(17);

  int n_train = bench::ScaledTrials(240);
  int n_test = bench::ScaledTrials(120);

  // Sample + measure complete programs.
  auto sample_batch = [&](int count) {
    std::vector<State> programs;
    int attempts = 0;
    while (static_cast<int>(programs.size()) < count && attempts < count * 8) {
      ++attempts;
      State s = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
      if (!s.failed() && Lower(s).ok) {
        programs.push_back(std::move(s));
      }
    }
    return programs;
  };

  GbdtCostModel model;
  {
    std::vector<State> train = sample_batch(n_train);
    std::vector<FeatureMatrix> features;
    std::vector<double> throughputs;
    for (const State& s : train) {
      features.push_back(ExtractStateFeatures(s));
      MeasureResult r = measurer.Measure(s);
      throughputs.push_back(r.valid ? r.throughput : 0.0);
    }
    model.Update(dag.CanonicalHash(), features, throughputs);
  }

  std::vector<State> test = sample_batch(n_test);
  std::vector<double> truth;
  for (const State& s : test) {
    MeasureResult r = measurer.Measure(s);
    truth.push_back(r.valid ? r.throughput : 0.0);
  }

  std::printf("%-18s%14s%14s\n", "completion_rate", "pairwise_acc", "recall@k(30%)");
  int k = std::max(1, static_cast<int>(test.size() * 3 / 10));
  for (double rate : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<FeatureMatrix> partial_features;
    for (const State& s : test) {
      size_t keep = static_cast<size_t>(std::ceil(rate * static_cast<double>(s.steps().size())));
      std::vector<Step> prefix(s.steps().begin(), s.steps().begin() + std::min(keep, s.steps().size()));
      State partial = State::Replay(s.dag(), prefix);
      partial_features.push_back(partial.failed() ? FeatureMatrix()
                                                  : ExtractStateFeatures(partial));
    }
    std::vector<double> preds = model.Predict(partial_features);
    double acc = PairwiseComparisonAccuracy(preds, truth);
    double recall = RecallAtK(preds, truth, k);
    std::printf("%-18s%14s%14s\n", FormatDouble(rate, 2).c_str(),
                FormatDouble(acc, 3).c_str(), FormatDouble(recall, 3).c_str());
  }
  std::printf(
      "\nExpected shape (paper Fig. 3): both metrics near chance (0.5 / ~0.3)\n"
      "at low completion and high (>0.8 / >0.6) only for complete programs.\n");
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::Run();
  return 0;
}
