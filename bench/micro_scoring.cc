// Micro-benchmark for the scoring stack (paper §5.2): feature-extraction
// throughput over the flat FeatureMatrix path and GBDT statement prediction,
// with an in-binary A/B of the compiled SoA forest against the scalar
// tree-walk it replaced. The two paths are bit-identical by construction
// (pre-scaled leaf values, same accumulation order); the A/B verifies that
// on every row and reports the speedup. Emits one "BENCH_JSON {...}" line
// for bench/BENCH_micro_scoring.json.
#include <chrono>

#include "bench/bench_util.h"
#include "src/program/program_cache.h"

namespace ansor {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int Run() {
  ComputeDAG dag = MakeMatmul(64, 64, 64);
  Rng init_rng(1);
  ProgramCache cache;
  auto population = SampleLowerablePopulation(&dag, 16, &init_rng, SamplerOptions(),
                                              SketchOptions(), &cache);

  PrintHeader("micro_scoring: feature extraction + GBDT statement prediction");

  // --- Feature extraction over pre-lowered programs -------------------------
  std::vector<LoweredProgram> lowered;
  lowered.reserve(population.size());
  for (const State& s : population) {
    lowered.push_back(Lower(s));
  }
  int extract_repeats = std::max(1, static_cast<int>(60 * Scale()));
  size_t rows_extracted = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < extract_repeats; ++r) {
    for (const LoweredProgram& prog : lowered) {
      FeatureMatrix m = ExtractFeatures(prog);
      rows_extracted += m.rows();
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  double extract_elapsed = Seconds(t0, t1);
  double extract_rows_per_sec =
      static_cast<double>(rows_extracted) / std::max(extract_elapsed, 1e-12);
  std::printf("extracted %zu rows in %.3f s (%.0f rows/sec, %d repeats x %zu programs)\n",
              rows_extracted, extract_elapsed, extract_rows_per_sec, extract_repeats,
              lowered.size());

  // --- Train the cost model on simulated measurements -----------------------
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  std::vector<FeatureMatrix> features;
  std::vector<double> throughputs;
  for (const State& s : population) {
    features.push_back(cache.GetOrBuild(s)->features());
    MeasureResult r = measurer.Measure(s, &cache);
    throughputs.push_back(r.valid ? r.throughput : 0.0);
  }
  model.Update(dag.CanonicalHash(), features, throughputs);
  const Gbdt& gbdt = model.gbdt();
  size_t n_trees = gbdt.trees().size();

  // --- Scalar vs batched statement prediction A/B ---------------------------
  // Replicate the population's rows up to a realistic evolution-wave row
  // count (one Evolve generation scores hundreds of programs in one batch).
  std::vector<const float*> rows;
  while (rows.size() < 4096) {
    for (const FeatureMatrix& m : features) {
      for (size_t r = 0; r < m.rows(); ++r) {
        rows.push_back(m.row(r));
      }
    }
  }
  int predict_repeats = std::max(1, static_cast<int>(240 * Scale()));
  std::vector<double> scalar_out(rows.size());
  std::vector<double> batched_out(rows.size());

  t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < predict_repeats; ++rep) {
    for (size_t r = 0; r < rows.size(); ++r) {
      scalar_out[r] = gbdt.PredictRow(rows[r]);
    }
  }
  t1 = std::chrono::steady_clock::now();
  double scalar_elapsed = Seconds(t0, t1);

  t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < predict_repeats; ++rep) {
    gbdt.PredictStatementRows(rows.data(), rows.size(), batched_out.data());
  }
  t1 = std::chrono::steady_clock::now();
  double batched_elapsed = Seconds(t0, t1);

  size_t mismatches = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (scalar_out[r] != batched_out[r]) {
      ++mismatches;
    }
  }
  double total_rows =
      static_cast<double>(rows.size()) * static_cast<double>(predict_repeats);
  double scalar_rows_per_sec = total_rows / std::max(scalar_elapsed, 1e-12);
  double batched_rows_per_sec = total_rows / std::max(batched_elapsed, 1e-12);
  double speedup = scalar_elapsed / std::max(batched_elapsed, 1e-12);

  std::printf("forest: %zu trees; batch of %zu rows x %d repeats\n", n_trees, rows.size(),
              predict_repeats);
  std::printf("scalar tree-walk:  %.3f s (%.0f rows/sec)\n", scalar_elapsed,
              scalar_rows_per_sec);
  std::printf("batched SoA forest: %.3f s (%.0f rows/sec)\n", batched_elapsed,
              batched_rows_per_sec);
  std::printf("speedup: %.2fx   bit-exact mismatches: %zu\n", speedup, mismatches);
  if (mismatches != 0) {
    std::printf("ERROR: batched prediction diverged from the scalar path\n");
    return 1;
  }

  MetricsRegistry registry;
  registry.SetGauge("scoring.extract_rows_per_sec", extract_rows_per_sec, "rows/s");
  registry.SetGauge("scoring.predict_scalar_rows_per_sec", scalar_rows_per_sec, "rows/s");
  registry.SetGauge("scoring.predict_batched_rows_per_sec", batched_rows_per_sec,
                    "rows/s");
  cache.ExportMetrics(&registry, "cache");
  measurer.ExportMetrics(&registry, "measurer");
  model.ExportMetrics(&registry, "model");

  std::printf("BENCH_JSON {\"bench\":\"micro_scoring\",\"extract_rows_per_sec\":%.1f,"
              "\"predict_scalar_rows_per_sec\":%.1f,\"predict_batched_rows_per_sec\":%.1f,"
              "\"predict_speedup\":%.3f,\"bitexact\":%d,\"rows\":%zu,\"trees\":%zu,%s}\n",
              extract_rows_per_sec, scalar_rows_per_sec, batched_rows_per_sec, speedup,
              mismatches == 0 ? 1 : 0, rows.size(), n_trees,
              MetricsBlock(registry).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ansor

int main() { return ansor::bench::Run(); }
