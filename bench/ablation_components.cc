// Component ablations for the design choices DESIGN.md calls out (beyond the
// paper's Fig. 7/10 ablations):
//   1. Learned GBDT cost model vs a random cost model inside evolution.
//   2. Node-based crossover on/off.
//   3. Constant-tensor layout rewrite (§4.2) on/off.
//   4. Epsilon-greedy exploration on/off in the task scheduler.
#include "bench/bench_util.h"
#include "src/costmodel/metrics.h"

namespace ansor {
namespace {

void AblateCostModel() {
  bench::PrintHeader(
      "Ablation 1: learned GBDT vs random scores guiding evolution\n"
      "(final best GFLOPS on conv2d r28c128, same trial budget)");
  SearchTask task = MakeSearchTask("conv", MakeConv2d(4, 128, 28, 28, 128, 3, 3, 1, 1));
  int trials = bench::ScaledTrials(64);

  Measurer m1(MachineModel::IntelCpu20Core());
  GbdtCostModel learned;
  SearchOptions options = bench::FastSearchOptions();
  TuneResult with_model = TuneTask(task, &m1, &learned, trials, 16, options);

  Measurer m2(MachineModel::IntelCpu20Core());
  RandomCostModel random(3);
  TuneResult with_random = TuneTask(task, &m2, &random, trials, 16, options);

  std::printf("%-28s %10.1f GFLOPS\n", "GBDT cost model:", with_model.best_throughput / 1e9);
  std::printf("%-28s %10.1f GFLOPS\n", "random cost model:",
              with_random.best_throughput / 1e9);
}

void AblateCrossover() {
  bench::PrintHeader(
      "Ablation 2: node-based crossover contribution\n"
      "(final best GFLOPS on the ConvLayer subgraph, same budget)");
  SearchTask task = MakeSearchTask("convlayer", MakeConvLayer(4, 64, 28, 28, 64, 3, 3, 1, 1));
  int trials = bench::ScaledTrials(64);
  for (double crossover_prob : {0.25, 0.0}) {
    Measurer m(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    SearchOptions options = bench::FastSearchOptions();
    options.crossover_probability = crossover_prob;
    TuneResult r = TuneTask(task, &m, &model, trials, 16, options);
    std::printf("crossover p=%.2f: %10.1f GFLOPS\n", crossover_prob,
                r.best_throughput / 1e9);
  }
}

void AblateLayoutRewrite() {
  bench::PrintHeader(
      "Ablation 3: constant-tensor layout rewrite (paper §4.2)\n"
      "(best GFLOPS on a dense layer, whose weight matrix is accessed with a\n"
      " large stride along the vectorized output-channel axis)");
  SearchTask task = MakeSearchTask("dense", MakeDense(64, 512, 512));
  int trials = bench::ScaledTrials(48);
  for (bool rewrite : {true, false}) {
    MeasureOptions mo;
    mo.sim.rewrite_constant_layouts = rewrite;
    Measurer m(MachineModel::IntelCpu20Core(), mo);
    GbdtCostModel model;
    TuneResult r = TuneTask(task, &m, &model, trials, 16, bench::FastSearchOptions());
    std::printf("layout rewrite %-3s: %10.1f GFLOPS\n", rewrite ? "on" : "off",
                r.best_throughput / 1e9);
  }
}

void AblateEpsGreedy() {
  bench::PrintHeader(
      "Ablation 4: epsilon-greedy task selection in the scheduler\n"
      "(objective after equal budgets, two-task set)");
  for (double eps : {0.05, 0.0, 1.0}) {
    Measurer m(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    std::vector<SearchTask> tasks = {
        MakeSearchTask("conv", MakeConv2d(4, 64, 28, 28, 64, 3, 3, 1, 1), 1, "conv2d"),
        MakeSearchTask("mm", MakeMatmul(256, 256, 256), 1, "matmul")};
    std::vector<NetworkSpec> nets = {{"net", {0, 1}}};
    TaskSchedulerOptions options;
    options.eps_greedy = eps;
    options.measures_per_round = bench::ScaledTrials(10);
    options.search = bench::FastSearchOptions();
    TaskScheduler scheduler(tasks, nets, Objective::SumLatency(), &m, &model, options);
    scheduler.Tune(8);
    std::printf("eps=%.2f: objective %.4e s  (alloc=[%d,%d])\n", eps,
                scheduler.ObjectiveValue(), scheduler.allocations()[0],
                scheduler.allocations()[1]);
  }
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::AblateCostModel();
  ansor::AblateCrossover();
  ansor::AblateLayoutRewrite();
  ansor::AblateEpsGreedy();
  return 0;
}
