// Micro-benchmark for the TuningService (tuning-as-a-service): a fleet of
// concurrent tuning jobs with overlapping similarity tags, run twice over the
// same worker pool — serial admission (max_concurrent_jobs=1, the legacy
// one-job-at-a-time fleet) vs overlapped admission (all jobs concurrent, each
// job's search filling the device-occupancy time of the others' measurement
// batches). Emits a "BENCH_JSON {...}" line with per-job turnaround
// percentiles, the serial-vs-overlapped speedup on summed turnaround, and the
// cross-task ProgramCache hit rate the per-tag shared caches deliver.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/tuning_service.h"
#include "src/support/thread_pool.h"

namespace ansor {
namespace bench {
namespace {

constexpr int kJobs = 3;
constexpr int kWorkers = 4;
// Emulated per-trial device occupancy: measurement holds its worker for this
// wall-clock time (remote RPC / on-device run), which is exactly the idle
// time overlapped admission reclaims for other jobs' search.
constexpr double kMeasureLatencySeconds = 0.01;

TaskSchedulerOptions JobOptions(uint64_t seed) {
  TaskSchedulerOptions options;
  options.measures_per_round = 8;
  options.seed = seed;
  options.search.population = 12;
  options.search.generations = 1;
  options.search.random_samples_per_round = 6;
  options.search.seed = seed * 31 + 7;
  return options;
}

// Two structurally similar matmuls per job, all six tasks sharing one
// similarity tag so the service hands every job the same shared cache.
std::vector<SearchTask> JobTasks(int job) {
  int64_t n = 32 << (job % 2);
  return {MakeSearchTask("mm_a", MakeMatmul(n, 32, 32), 1, "mm"),
          MakeSearchTask("mm_b", MakeMatmul(32, n, 32), 1, "mm")};
}

struct ModeResult {
  bool ok = false;
  std::vector<double> turnaround_seconds;  // per job
  double sum_turnaround_seconds = 0.0;
  int64_t cross_task_hits = 0;
  int64_t cache_lookups = 0;
  // Flat readings of the service's own MetricsRegistry (the shared
  // BENCH_JSON metrics schema).
  std::string metrics_samples_json = "[]";
};

ModeResult RunMode(int max_concurrent_jobs, int rounds_per_job) {
  ModeResult result;
  TuningServiceOptions service_options;
  service_options.num_workers = kWorkers;
  service_options.max_concurrent_jobs = max_concurrent_jobs;
  TuningService service(service_options);

  std::vector<std::unique_ptr<ThreadPool>> device_pools;
  std::vector<std::unique_ptr<Measurer>> measurers;
  std::vector<std::unique_ptr<GbdtCostModel>> models;
  std::vector<JobHandle> handles;
  for (int j = 0; j < kJobs; ++j) {
    // Each tenant measures on its own device: a single-thread executor whose
    // occupancy (the emulated RPC/on-device latency) is what overlapped
    // admission reclaims by running other tenants' search meanwhile.
    device_pools.push_back(std::make_unique<ThreadPool>(1));
    MeasureOptions measure_options;
    measure_options.measure_latency_seconds = kMeasureLatencySeconds;
    measure_options.thread_pool = device_pools.back().get();
    measurers.push_back(std::make_unique<Measurer>(MachineModel::IntelCpu20Core(),
                                                   measure_options));
    models.push_back(std::make_unique<GbdtCostModel>());
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.tasks = JobTasks(j);
    spec.networks = {{"net", {0, 1}}};
    spec.objective = Objective::SumLatency();
    spec.options = JobOptions(100 + static_cast<uint64_t>(j));
    spec.total_rounds = rounds_per_job;
    spec.measurer = measurers.back().get();
    spec.model = models.back().get();
    handles.push_back(service.Submit(std::move(spec)));
  }
  service.WaitAll();

  for (const JobHandle& handle : handles) {
    const JobReport& report = handle.report();
    if (report.status != JobStatus::kCompleted) {
      std::fprintf(stderr, "micro_service: job %s finished %s, expected completed\n",
                   handle.name().c_str(), JobStatusName(report.status));
      return result;
    }
    result.turnaround_seconds.push_back(report.turnaround_seconds);
    result.sum_turnaround_seconds += report.turnaround_seconds;
    result.cross_task_hits += report.cache.cross_client_hits;
    result.cache_lookups += report.cache.lookups;
  }
  service.MetricsSnapshotJson();  // refresh the mirrored component gauges
  result.metrics_samples_json = service.metrics()->SamplesJson();
  result.ok = true;
  return result;
}

double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t idx = std::min(values.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  return values[idx];
}

int Run() {
  int rounds_per_job = std::max(2, static_cast<int>(8 * Scale()));
  PrintHeader("micro_service: multi-job TuningService, serial vs overlapped");
  std::printf("jobs=%d workers=%d rounds_per_job=%d measure_latency=%.0f ms\n", kJobs,
              kWorkers, rounds_per_job, 1e3 * kMeasureLatencySeconds);

  ModeResult serial = RunMode(/*max_concurrent_jobs=*/1, rounds_per_job);
  ModeResult overlapped = RunMode(/*max_concurrent_jobs=*/kJobs, rounds_per_job);
  if (!serial.ok || !overlapped.ok) {
    return 1;
  }

  double speedup = overlapped.sum_turnaround_seconds > 0.0
                       ? serial.sum_turnaround_seconds / overlapped.sum_turnaround_seconds
                       : 0.0;
  double p50 = Percentile(overlapped.turnaround_seconds, 0.50);
  double p95 = Percentile(overlapped.turnaround_seconds, 0.95);
  double p99 = Percentile(overlapped.turnaround_seconds, 0.99);
  double cross_rate =
      overlapped.cache_lookups > 0
          ? static_cast<double>(overlapped.cross_task_hits) /
                static_cast<double>(overlapped.cache_lookups)
          : 0.0;

  PrintColumns({"serial", "overlapped"});
  for (int j = 0; j < kJobs; ++j) {
    PrintRow("job" + std::to_string(j) + " turnaround (s)",
             {serial.turnaround_seconds[static_cast<size_t>(j)],
              overlapped.turnaround_seconds[static_cast<size_t>(j)]});
  }
  PrintRow("sum turnaround (s)",
           {serial.sum_turnaround_seconds, overlapped.sum_turnaround_seconds});
  std::printf("overlap speedup on sum turnaround: %.2fx\n", speedup);
  std::printf("fleet turnaround p50/p95/p99 (overlapped): %.3f / %.3f / %.3f s\n", p50,
              p95, p99);
  std::printf("cross-task cache hits (overlapped): %lld of %lld lookups (%.1f%%)\n",
              static_cast<long long>(overlapped.cross_task_hits),
              static_cast<long long>(overlapped.cache_lookups), 100.0 * cross_rate);

  std::printf("BENCH_JSON {\"bench\":\"micro_service\",\"jobs\":%d,\"workers\":%d,"
              "\"rounds_per_job\":%d,\"serial_sum_turnaround_s\":%.3f,"
              "\"overlapped_sum_turnaround_s\":%.3f,\"overlap_speedup\":%.2f,"
              "\"p50_turnaround_s\":%.3f,\"p95_turnaround_s\":%.3f,"
              "\"p99_turnaround_s\":%.3f,\"cross_task_hits\":%lld,"
              "\"cross_task_hit_rate\":%.4f,\"metrics\":%s}\n",
              kJobs, kWorkers, rounds_per_job, serial.sum_turnaround_seconds,
              overlapped.sum_turnaround_seconds, speedup, p50, p95, p99,
              static_cast<long long>(overlapped.cross_task_hits), cross_rate,
              overlapped.metrics_samples_json.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ansor

int main() { return ansor::bench::Run(); }
