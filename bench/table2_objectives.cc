// Reproduces Table 2: "Examples of objective functions for multiple neural
// networks" — demonstrates f1 (sum of latencies), f2 (latency requirements),
// f3 (geomean speedup vs references) and f4 (early stopping) by tuning a
// two-network set under each objective and reporting how the scheduler
// allocates rounds and what latencies result.
#include "bench/bench_util.h"

namespace ansor {
namespace {

struct CaseResult {
  std::vector<int> allocations;
  std::vector<double> network_latency;
  double objective;
};

CaseResult RunObjective(const Objective& objective) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  // Two small DNNs: net0 is latency-heavy (conv), net1 is light (matmuls).
  std::vector<SearchTask> tasks = {
      MakeSearchTask("conv_big", MakeConv2d(4, 128, 28, 28, 128, 3, 3, 1, 1), 2, "conv2d"),
      MakeSearchTask("conv_small", MakeConv2d(4, 32, 14, 14, 32, 3, 3, 1, 1), 1, "conv2d"),
      MakeSearchTask("mm", MakeMatmul(256, 256, 256), 2, "matmul"),
  };
  std::vector<NetworkSpec> nets = {{"net0", {0, 1}}, {"net1", {2}}};
  TaskSchedulerOptions options;
  options.measures_per_round = bench::ScaledTrials(10);
  options.search = bench::FastSearchOptions();
  options.eps_greedy = 0.0;
  TaskScheduler scheduler(tasks, nets, objective, &measurer, &model, options);
  scheduler.Tune(3 * static_cast<int>(tasks.size()));
  CaseResult result;
  result.allocations = scheduler.allocations();
  result.network_latency = {scheduler.NetworkLatency(0), scheduler.NetworkLatency(1)};
  result.objective = scheduler.ObjectiveValue();
  return result;
}

void Print(const std::string& name, const CaseResult& r) {
  std::printf("%-28s alloc=[", name.c_str());
  for (size_t i = 0; i < r.allocations.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", r.allocations[i]);
  }
  std::printf("]  lat(net0)=%.3ems  lat(net1)=%.3ems  f=%.4g\n",
              r.network_latency[0] * 1e3, r.network_latency[1] * 1e3, r.objective);
}

void Run() {
  bench::PrintHeader(
      "Table 2: objective functions for tuning multiple networks\n"
      "(round allocation across tasks [conv_big, conv_small, mm] and the\n"
      " resulting per-network latencies under each objective)");

  Print("f1: sum of latencies", RunObjective(Objective::SumLatency()));
  // f2: net1's requirement is already satisfied by any measured program, so
  // the scheduler should shift rounds to net0's tasks.
  Print("f2: latency requirements", RunObjective(Objective::LatencyRequirement(
                                        {1e-9, 10.0})));
  Print("f3: geomean speedup", RunObjective(Objective::GeoMeanSpeedup({1e-3, 1e-3})));
  Print("f4: early stopping", RunObjective(Objective::EarlyStopping(/*rounds=*/2)));

  std::printf(
      "\nExpected behaviour: f2 shifts allocation toward the unsatisfied\n"
      "network; f4 abandons tasks that stop improving; f1/f3 balance by\n"
      "impact on total / geomean latency.\n");
}

}  // namespace
}  // namespace ansor

int main() {
  ansor::Run();
  return 0;
}
