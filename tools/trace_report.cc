// trace_report: fold a telemetry trace JSONL into a per-phase / per-task /
// per-job time-attribution summary.
//
// Usage: trace_report <trace.jsonl> [more.jsonl ...]
//
// The input is the file written via TuningServiceOptions::trace_path (or
// TraceSink::SaveToFile). Multiple files are folded together, which is how
// a fleet of service processes rolls up into one report.
#include <cstdio>
#include <string>
#include <vector>

#include "src/telemetry/trace.h"
#include "src/telemetry/trace_report.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl> [more.jsonl ...]\n", argv[0]);
    return 2;
  }
  std::vector<ansor::TraceEvent> events;
  for (int i = 1; i < argc; ++i) {
    if (!ansor::TraceSink::LoadFromFile(argv[i], &events)) {
      std::fprintf(stderr, "trace_report: failed to load %s\n", argv[i]);
      return 1;
    }
  }
  ansor::TraceReport report = ansor::FoldEvents(events);
  std::string text = ansor::RenderReport(report);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}
