// Gradient-based task scheduler (paper §6, Table 2, Appendix A).
//
// Allocates measurement rounds across the tasks of one or more DNNs so the
// end-to-end objective improves fastest. At each iteration it picks
//   i = argmax_i | d f / d t_i |
// where the gradient is approximated from the task's recent history
// (backward window), an optimistic guess (latency could reach 0 with t_i more
// rounds) and the throughput of structurally similar tasks (Appendix A).
#ifndef ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_
#define ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/search/search_policy.h"

namespace ansor {

// A DNN is a weighted set of tasks; its latency is sum_i w_i * g_i over its
// member tasks.
struct NetworkSpec {
  std::string name;
  std::vector<int> task_indices;  // indices into the scheduler's task list
};

enum class ObjectiveKind {
  kSumLatency,          // f1: minimize the sum of all DNN latencies
  kLatencyRequirement,  // f2: stop improving DNNs below their requirement
  kGeoMeanSpeedup,      // f3: maximize geomean speedup vs reference latencies
  kEarlyStopping,       // f4: f1 with per-task early stopping
  kCustom,
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::kSumLatency;
  // f2: per-DNN latency requirements L_j (seconds).
  std::vector<double> latency_requirements;
  // f3: per-DNN reference latencies B_j (seconds).
  std::vector<double> reference_latencies;
  // f4: stop allocating to a task after this many rounds without improvement.
  int early_stop_rounds = 8;
  // kCustom: maps per-DNN latencies to a scalar cost.
  std::function<double(const std::vector<double>&)> custom;

  static Objective SumLatency();
  static Objective LatencyRequirement(std::vector<double> requirements);
  static Objective GeoMeanSpeedup(std::vector<double> references);
  static Objective EarlyStopping(int rounds = 8);
};

struct TaskSchedulerOptions {
  double alpha = 0.2;     // weight of the backward-window term
  double beta = 2.0;      // trust of the similarity-based prediction
  int window = 3;         // backward window size (delta t)
  double eps_greedy = 0.05;
  int measures_per_round = 16;
  uint64_t seed = 1;
  SearchOptions search;
  // Optional per-task customization of the search options each TaskTuner is
  // constructed with (invoked once per task, on a copy of `search`). The
  // TuningService uses this seam to hand same-similarity-tag tasks a shared
  // ProgramCache and a distinct cache_client_id; the legacy path leaves it
  // unset. Must not change anything that affects search results across
  // runs being compared (cache injection and client ids are safe: results
  // are cache-invariant by construction).
  std::function<void(size_t task_index, const SearchTask& task, SearchOptions* search)>
      per_task_search;
};

// The gradient allocation policy. Historically this class WAS the tuning
// loop (Tune() below still is, for the legacy synchronous path); the
// step-wise NextTask()/RecordRound() interface lets an external driver — the
// TuningService — own the loop instead, overlapping one round's measurement
// with other work while this class only decides who runs next.
//
// RNG draw-order contract (pinned; enforced by the SchedulerGradient golden-
// trace test): the warm-up pass consumes NO random draws — while any task
// has zero allocations, NextTask() deterministically returns the lowest-
// index unvisited task. Every post-warm-up NextTask() consumes exactly one
// Uniform() draw (the eps-greedy coin), then exactly one Index(num_tasks)
// draw iff the coin landed below eps_greedy (exploration); the gradient
// argmax consumes none. Any refactor that reorders or adds draws silently
// changes every fixed-seed allocation trace — change the golden test
// deliberately or not at all.
class TaskScheduler {
 public:
  TaskScheduler(std::vector<SearchTask> tasks, std::vector<NetworkSpec> networks,
                Objective objective, Measurer* measurer, CostModel* model,
                TaskSchedulerOptions options = TaskSchedulerOptions());

  // Runs until `total_rounds` allocation units are spent (one unit = one
  // tuning round of measures_per_round trials). Starts with one round-robin
  // warm-up pass. Equivalent to driving NextTask / TaskTuner::TuneRound /
  // RecordRound in a loop (which is exactly what it does).
  void Tune(int total_rounds);

  // Step-wise interface (the service loop's view) -----------------------------
  // Picks the task receiving the next tuning round: the lowest-index
  // unvisited task during warm-up, then eps-greedy exploration vs the §6.2
  // gradient argmax. Consumes RNG per the contract above.
  int NextTask();
  // Records a completed round on `task_index`: allocation count, latency
  // history, stagnation tracking (f4), the (trials, objective) curve, and
  // the allocation trace. `before_seconds`/`after_seconds` are the task's
  // best latency before and after the round.
  void RecordRound(int task_index, double before_seconds, double after_seconds);

  // Latency (seconds) of DNN j under the current best programs.
  double NetworkLatency(int network_index) const;
  // Current objective value.
  double ObjectiveValue() const;

  const std::vector<std::unique_ptr<TaskTuner>>& tuners() const { return tuners_; }
  const std::vector<int>& allocations() const { return allocations_; }
  // Task index of every allocated round, in order (the fixed-seed allocation
  // trace the determinism matrix and golden-trace tests compare).
  const std::vector<int>& allocation_trace() const { return allocation_trace_; }
  // Sum of the per-task compiled-program cache counters (each tuner owns a
  // task-lifetime ProgramCache; see SearchOptions::program_cache).
  ProgramCacheStats AggregateProgramCacheStats() const;
  // Sum of the per-task static-verifier rejection counters (candidates
  // filtered before measurement; see TaskTuner::statically_rejected()).
  int64_t AggregateStaticallyRejected() const;
  // Sum of the per-task evolutionary-search counters accumulated over every
  // Evolve() call (see TaskTuner::evolution_stats()).
  EvolutionStats AggregateEvolutionStats() const;
  // Sum of the per-task phase attribution clocks (see TaskTuner::phase_times()).
  SearchPhaseTimes AggregatePhaseTimes() const;
  // Mirrors the scheduler's allocation state and the aggregates above into
  // `registry` as gauges under `prefix` (.rounds_allocated, .tasks,
  // .objective, .statically_rejected, .cache.*, .evolution.*).
  void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const;
  // (cumulative trials, objective value) after every allocation.
  const std::vector<std::pair<int64_t, double>>& history() const { return history_; }

 private:
  double EvalObjective(const std::vector<double>& task_latency) const;
  std::vector<double> CurrentLatencies() const;
  // Both take the current latency snapshot so one gradient pick computes
  // CurrentLatencies() once, not once per task.
  double Gradient(int task_index, const std::vector<double>& latencies) const;
  // d f / d g_i via central finite differences (supports custom objectives).
  double ObjectiveGradientWrtTask(int task_index, const std::vector<double>& latencies) const;

  std::vector<SearchTask> tasks_;
  std::vector<NetworkSpec> networks_;
  Objective objective_;
  TaskSchedulerOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<TaskTuner>> tuners_;
  std::vector<int> allocations_;
  std::vector<int> allocation_trace_;
  // Latency history per task, indexed by allocation count.
  std::vector<std::vector<double>> latency_history_;
  std::vector<int> rounds_without_improvement_;
  std::vector<std::pair<int64_t, double>> history_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_
