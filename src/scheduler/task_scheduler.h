// Gradient-based task scheduler (paper §6, Table 2, Appendix A).
//
// Allocates measurement rounds across the tasks of one or more DNNs so the
// end-to-end objective improves fastest. At each iteration it picks
//   i = argmax_i | d f / d t_i |
// where the gradient is approximated from the task's recent history
// (backward window), an optimistic guess (latency could reach 0 with t_i more
// rounds) and the throughput of structurally similar tasks (Appendix A).
#ifndef ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_
#define ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/search/search_policy.h"

namespace ansor {

// A DNN is a weighted set of tasks; its latency is sum_i w_i * g_i over its
// member tasks.
struct NetworkSpec {
  std::string name;
  std::vector<int> task_indices;  // indices into the scheduler's task list
};

enum class ObjectiveKind {
  kSumLatency,          // f1: minimize the sum of all DNN latencies
  kLatencyRequirement,  // f2: stop improving DNNs below their requirement
  kGeoMeanSpeedup,      // f3: maximize geomean speedup vs reference latencies
  kEarlyStopping,       // f4: f1 with per-task early stopping
  kCustom,
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::kSumLatency;
  // f2: per-DNN latency requirements L_j (seconds).
  std::vector<double> latency_requirements;
  // f3: per-DNN reference latencies B_j (seconds).
  std::vector<double> reference_latencies;
  // f4: stop allocating to a task after this many rounds without improvement.
  int early_stop_rounds = 8;
  // kCustom: maps per-DNN latencies to a scalar cost.
  std::function<double(const std::vector<double>&)> custom;

  static Objective SumLatency();
  static Objective LatencyRequirement(std::vector<double> requirements);
  static Objective GeoMeanSpeedup(std::vector<double> references);
  static Objective EarlyStopping(int rounds = 8);
};

struct TaskSchedulerOptions {
  double alpha = 0.2;     // weight of the backward-window term
  double beta = 2.0;      // trust of the similarity-based prediction
  int window = 3;         // backward window size (delta t)
  double eps_greedy = 0.05;
  int measures_per_round = 16;
  uint64_t seed = 1;
  SearchOptions search;
};

class TaskScheduler {
 public:
  TaskScheduler(std::vector<SearchTask> tasks, std::vector<NetworkSpec> networks,
                Objective objective, Measurer* measurer, CostModel* model,
                TaskSchedulerOptions options = TaskSchedulerOptions());

  // Runs until `total_rounds` allocation units are spent (one unit = one
  // tuning round of measures_per_round trials). Starts with one round-robin
  // warm-up pass.
  void Tune(int total_rounds);

  // Latency (seconds) of DNN j under the current best programs.
  double NetworkLatency(int network_index) const;
  // Current objective value.
  double ObjectiveValue() const;

  const std::vector<std::unique_ptr<TaskTuner>>& tuners() const { return tuners_; }
  const std::vector<int>& allocations() const { return allocations_; }
  // Sum of the per-task compiled-program cache counters (each tuner owns a
  // task-lifetime ProgramCache; see SearchOptions::program_cache).
  ProgramCacheStats AggregateProgramCacheStats() const;
  // Sum of the per-task static-verifier rejection counters (candidates
  // filtered before measurement; see TaskTuner::statically_rejected()).
  int64_t AggregateStaticallyRejected() const;
  // (cumulative trials, objective value) after every allocation.
  const std::vector<std::pair<int64_t, double>>& history() const { return history_; }

 private:
  double EvalObjective(const std::vector<double>& task_latency) const;
  std::vector<double> CurrentLatencies() const;
  // Both take the current latency snapshot so one gradient pick computes
  // CurrentLatencies() once, not once per task.
  double Gradient(int task_index, const std::vector<double>& latencies) const;
  // d f / d g_i via central finite differences (supports custom objectives).
  double ObjectiveGradientWrtTask(int task_index, const std::vector<double>& latencies) const;

  std::vector<SearchTask> tasks_;
  std::vector<NetworkSpec> networks_;
  Objective objective_;
  TaskSchedulerOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<TaskTuner>> tuners_;
  std::vector<int> allocations_;
  // Latency history per task, indexed by allocation count.
  std::vector<std::vector<double>> latency_history_;
  std::vector<int> rounds_without_improvement_;
  std::vector<std::pair<int64_t, double>> history_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SCHEDULER_TASK_SCHEDULER_H_
