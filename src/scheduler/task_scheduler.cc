#include "src/scheduler/task_scheduler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/support/util.h"

namespace ansor {

Objective Objective::SumLatency() {
  Objective o;
  o.kind = ObjectiveKind::kSumLatency;
  return o;
}

Objective Objective::LatencyRequirement(std::vector<double> requirements) {
  Objective o;
  o.kind = ObjectiveKind::kLatencyRequirement;
  o.latency_requirements = std::move(requirements);
  return o;
}

Objective Objective::GeoMeanSpeedup(std::vector<double> references) {
  Objective o;
  o.kind = ObjectiveKind::kGeoMeanSpeedup;
  o.reference_latencies = std::move(references);
  return o;
}

Objective Objective::EarlyStopping(int rounds) {
  Objective o;
  o.kind = ObjectiveKind::kEarlyStopping;
  o.early_stop_rounds = rounds;
  return o;
}

TaskScheduler::TaskScheduler(std::vector<SearchTask> tasks, std::vector<NetworkSpec> networks,
                             Objective objective, Measurer* measurer, CostModel* model,
                             TaskSchedulerOptions options)
    : tasks_(std::move(tasks)),
      networks_(std::move(networks)),
      objective_(std::move(objective)),
      options_(std::move(options)),
      rng_(options_.seed) {
  CHECK(!tasks_.empty());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    SearchOptions search = options_.search;
    if (options_.per_task_search) {
      options_.per_task_search(i, tasks_[i], &search);
    }
    tuners_.push_back(std::make_unique<TaskTuner>(tasks_[i], measurer, model, search));
  }
  allocations_.assign(tasks_.size(), 0);
  latency_history_.assign(tasks_.size(), {});
  rounds_without_improvement_.assign(tasks_.size(), 0);
}

std::vector<double> TaskScheduler::CurrentLatencies() const {
  std::vector<double> latency(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    double best = tuners_[i]->best_seconds();
    // Unmeasured tasks count with a pessimistic placeholder so warm-up visits
    // them first.
    latency[i] = std::isfinite(best) ? best : 1.0;
  }
  return latency;
}

double TaskScheduler::EvalObjective(const std::vector<double>& task_latency) const {
  std::vector<double> dnn_latency(networks_.size(), 0.0);
  for (size_t j = 0; j < networks_.size(); ++j) {
    for (int i : networks_[j].task_indices) {
      dnn_latency[j] += tasks_[static_cast<size_t>(i)].weight *
                        task_latency[static_cast<size_t>(i)];
    }
  }
  switch (objective_.kind) {
    case ObjectiveKind::kSumLatency:
    case ObjectiveKind::kEarlyStopping: {
      double sum = 0.0;
      for (double l : dnn_latency) {
        sum += l;
      }
      return sum;
    }
    case ObjectiveKind::kLatencyRequirement: {
      CHECK_EQ(objective_.latency_requirements.size(), networks_.size());
      double sum = 0.0;
      for (size_t j = 0; j < dnn_latency.size(); ++j) {
        sum += std::max(dnn_latency[j], objective_.latency_requirements[j]);
      }
      return sum;
    }
    case ObjectiveKind::kGeoMeanSpeedup: {
      CHECK_EQ(objective_.reference_latencies.size(), networks_.size());
      std::vector<double> speedups;
      for (size_t j = 0; j < dnn_latency.size(); ++j) {
        speedups.push_back(objective_.reference_latencies[j] /
                           std::max(dnn_latency[j], 1e-12));
      }
      return -GeometricMean(speedups);
    }
    case ObjectiveKind::kCustom:
      CHECK(objective_.custom != nullptr);
      return objective_.custom(dnn_latency);
  }
  return 0.0;
}

double TaskScheduler::NetworkLatency(int network_index) const {
  std::vector<double> latency = CurrentLatencies();
  double sum = 0.0;
  for (int i : networks_[static_cast<size_t>(network_index)].task_indices) {
    sum += tasks_[static_cast<size_t>(i)].weight * latency[static_cast<size_t>(i)];
  }
  return sum;
}

double TaskScheduler::ObjectiveValue() const { return EvalObjective(CurrentLatencies()); }

ProgramCacheStats TaskScheduler::AggregateProgramCacheStats() const {
  ProgramCacheStats total;
  // Tuners may share one injected cache; count each distinct cache once.
  std::unordered_set<const ProgramCache*> seen;
  for (const auto& tuner : tuners_) {
    const ProgramCache* cache = &tuner->program_cache();
    if (!seen.insert(cache).second) {
      continue;
    }
    ProgramCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

int64_t TaskScheduler::AggregateStaticallyRejected() const {
  int64_t total = 0;
  for (const auto& tuner : tuners_) {
    total += tuner->statically_rejected();
  }
  return total;
}

EvolutionStats TaskScheduler::AggregateEvolutionStats() const {
  EvolutionStats total;
  for (const auto& tuner : tuners_) {
    AccumulateEvolutionStats(tuner->evolution_stats(), &total);
  }
  return total;
}

SearchPhaseTimes TaskScheduler::AggregatePhaseTimes() const {
  SearchPhaseTimes total;
  for (const auto& tuner : tuners_) {
    total.Add(tuner->phase_times());
  }
  return total;
}

void TaskScheduler::ExportMetrics(MetricsRegistry* registry,
                                  const std::string& prefix) const {
  registry->SetGauge(prefix + ".tasks", static_cast<double>(tasks_.size()));
  registry->SetGauge(prefix + ".rounds_allocated",
                     static_cast<double>(allocation_trace_.size()));
  registry->SetGauge(prefix + ".objective", ObjectiveValue(), "seconds");
  registry->SetGauge(prefix + ".statically_rejected",
                     static_cast<double>(AggregateStaticallyRejected()));
  ProgramCacheStats cache = AggregateProgramCacheStats();
  registry->SetGauge(prefix + ".cache.hits", static_cast<double>(cache.hits));
  registry->SetGauge(prefix + ".cache.misses", static_cast<double>(cache.misses));
  registry->SetGauge(prefix + ".cache.evictions", static_cast<double>(cache.evictions));
  EvolutionStats evo = AggregateEvolutionStats();
  registry->SetGauge(prefix + ".evolution.child_attempts",
                     static_cast<double>(evo.child_attempts));
  registry->SetGauge(prefix + ".evolution.children_generated",
                     static_cast<double>(evo.children_generated));
  registry->SetGauge(prefix + ".evolution.crossover_score_hits",
                     static_cast<double>(evo.crossover_score_hits));
  registry->SetGauge(prefix + ".evolution.crossover_score_misses",
                     static_cast<double>(evo.crossover_score_misses));
}

double TaskScheduler::ObjectiveGradientWrtTask(int task_index,
                                               const std::vector<double>& latencies) const {
  double g = latencies[static_cast<size_t>(task_index)];
  double h = std::max(1e-6, 1e-3 * g);
  std::vector<double> up = latencies;
  std::vector<double> down = latencies;
  up[static_cast<size_t>(task_index)] = g + h;
  down[static_cast<size_t>(task_index)] = std::max(0.0, g - h);
  return (EvalObjective(up) - EvalObjective(down)) /
         (up[static_cast<size_t>(task_index)] - down[static_cast<size_t>(task_index)]);
}

double TaskScheduler::Gradient(int task_index, const std::vector<double>& latencies) const {
  size_t i = static_cast<size_t>(task_index);
  const std::vector<double>& hist = latency_history_[i];
  if (hist.empty()) {
    return -std::numeric_limits<double>::infinity();  // unvisited: maximal priority
  }
  int ti = allocations_[i];
  double gi = hist.back();

  // f4-style early stopping: a stagnant task gets zero gradient.
  if (objective_.kind == ObjectiveKind::kEarlyStopping &&
      rounds_without_improvement_[i] >= objective_.early_stop_rounds) {
    return 0.0;
  }

  // Backward-window term: (g_i(t_i) - g_i(t_i - delta_t)) / delta_t.
  double backward = 0.0;
  int window = std::min<int>(options_.window, static_cast<int>(hist.size()) - 1);
  if (window > 0) {
    backward = (hist.back() - hist[hist.size() - 1 - static_cast<size_t>(window)]) /
               static_cast<double>(window);
  }

  // Forward term: optimistic guess min(-g_i / t_i, beta * C_i / max_k V_k - g_i).
  double optimistic = -gi / std::max(1, ti);
  double similarity = std::numeric_limits<double>::infinity();
  double max_v = 0.0;
  for (size_t k = 0; k < tasks_.size(); ++k) {
    if (k == i || tasks_[k].tag != tasks_[i].tag || tasks_[i].tag.empty()) {
      continue;
    }
    max_v = std::max(max_v, tuners_[k]->best_throughput());
  }
  if (max_v > 0.0) {
    similarity = options_.beta * tasks_[i].flop_count() / max_v - gi;
  }
  double forward = std::min(optimistic, similarity);

  double dg_dt = options_.alpha * backward + (1.0 - options_.alpha) * forward;
  return ObjectiveGradientWrtTask(task_index, latencies) * dg_dt;
}

int TaskScheduler::NextTask() {
  // Warm-up: one round-robin pass (t = (1, 1, ..., 1)). No RNG is consumed
  // until every task has been visited once — see the draw-order contract in
  // the header.
  for (size_t i = 0; i < tuners_.size(); ++i) {
    if (allocations_[i] == 0) {
      return static_cast<int>(i);
    }
  }
  // Post-warm-up: exactly one Uniform() draw, then one Index() draw iff
  // exploring.
  if (rng_.Uniform() < options_.eps_greedy) {
    return static_cast<int>(rng_.Index(tuners_.size()));  // eps-greedy exploration
  }
  // One latency snapshot per pick: every task's gradient reads the same
  // vector instead of recomputing CurrentLatencies() (formerly O(tasks²)
  // per pick). The argmax consumes no RNG.
  std::vector<double> latencies = CurrentLatencies();
  size_t pick = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < tuners_.size(); ++i) {
    double score = std::fabs(Gradient(static_cast<int>(i), latencies));
    if (score > best_score) {
      best_score = score;
      pick = i;
    }
  }
  return static_cast<int>(pick);
}

void TaskScheduler::RecordRound(int task_index, double before_seconds,
                                double after_seconds) {
  size_t i = static_cast<size_t>(task_index);
  allocations_[i] += 1;
  allocation_trace_.push_back(task_index);
  latency_history_[i].push_back(std::isfinite(after_seconds) ? after_seconds : 1.0);
  if (std::isfinite(before_seconds) && after_seconds >= before_seconds * (1.0 - 1e-9)) {
    rounds_without_improvement_[i] += 1;
  } else {
    rounds_without_improvement_[i] = 0;
  }
  int64_t trials = 0;
  for (const auto& t : tuners_) {
    trials += t->total_measures();
  }
  history_.emplace_back(trials, ObjectiveValue());
}

void TaskScheduler::Tune(int total_rounds) {
  // The legacy synchronous loop, now expressed through the step-wise
  // interface the TuningService drives — one code path, so a 1-worker
  // service run is bit-identical by construction.
  for (int round = 0; round < total_rounds; ++round) {
    int pick = NextTask();
    double before = tuners_[static_cast<size_t>(pick)]->best_seconds();
    double after = tuners_[static_cast<size_t>(pick)]->TuneRound(options_.measures_per_round);
    RecordRound(pick, before, after);
  }
}

}  // namespace ansor
