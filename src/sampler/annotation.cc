#include "src/sampler/annotation.h"

#include <algorithm>

#include "src/support/util.h"

namespace ansor {

std::vector<int64_t> SampleFactorization(int64_t extent, int parts, Rng* rng,
                                         int64_t max_innermost_factor) {
  CHECK_GT(extent, 0);
  CHECK_GE(parts, 1);
  // Sample factors inner-to-outer so the product always divides the extent.
  std::vector<int64_t> lengths(static_cast<size_t>(parts), 1);
  int64_t remaining = extent;
  for (int p = parts - 1; p >= 0; --p) {
    std::vector<int64_t> divisors = Divisors(remaining);
    if (p == parts - 1 && max_innermost_factor > 0) {
      // Bound the innermost tile (register blocking size).
      while (divisors.size() > 1 && divisors.back() > max_innermost_factor) {
        divisors.pop_back();
      }
    }
    int64_t f = divisors[rng->Index(divisors.size())];
    lengths[static_cast<size_t>(p)] = f;
    remaining /= f;
  }
  return lengths;
}

State SampleTileSizes(const State& sketch, const ComputeDAG* dag, Rng* rng,
                      const SamplerOptions& options) {
  // Replay step-by-step, rewriting the lengths of every SplitStep according
  // to the extent of the iterator at application time.
  State state(dag);
  for (Step step : sketch.steps()) {
    if (step.kind == StepKind::kSplit) {
      int stage_idx = state.StageIndex(step.stage);
      if (stage_idx < 0 || step.iter < 0 ||
          step.iter >= static_cast<int>(state.stage(stage_idx).iters.size())) {
        State failed(dag);
        failed.Split("__invalid__", 0, {1});  // poison the state
        return failed;
      }
      int64_t extent = state.stage(stage_idx).iters[static_cast<size_t>(step.iter)].extent;
      std::vector<int64_t> full = SampleFactorization(
          extent, static_cast<int>(step.lengths.size()) + 1, rng,
          options.max_innermost_factor);
      // full[0] is the outer part (implicit); the step stores inner lengths.
      step.lengths.assign(full.begin() + 1, full.end());
      if (!state.Split(step.stage, step.iter, step.lengths)) {
        return state;
      }
      continue;
    }
    // Re-apply other steps verbatim via the public primitives.
    switch (step.kind) {
      case StepKind::kFollowSplit:
        if (!state.FollowSplit(step.stage, step.iter, step.src_step, step.n_parts)) {
          return state;
        }
        break;
      case StepKind::kFuse:
        if (!state.Fuse(step.stage, step.iter, step.fuse_count)) return state;
        break;
      case StepKind::kReorder:
        if (!state.Reorder(step.stage, step.order)) return state;
        break;
      case StepKind::kComputeAt:
        if (!state.ComputeAt(step.stage, step.target_stage, step.target_iter)) return state;
        break;
      case StepKind::kComputeInline:
        if (!state.ComputeInline(step.stage)) return state;
        break;
      case StepKind::kComputeRoot:
        if (!state.ComputeRoot(step.stage)) return state;
        break;
      case StepKind::kCacheWrite:
        if (!state.CacheWrite(step.stage, nullptr)) return state;
        break;
      case StepKind::kRfactor:
        if (!state.Rfactor(step.stage, step.iter, nullptr)) return state;
        break;
      case StepKind::kAnnotation:
        if (!state.Annotate(step.stage, step.iter, step.annotation)) return state;
        break;
      case StepKind::kPragma:
        if (!state.Pragma(step.stage, step.pragma_value)) return state;
        break;
      case StepKind::kSplit:
        break;  // handled above
    }
  }
  return state;
}

namespace {

// Number of leading space iterators of a root stage (candidates for outer
// parallelization / thread binding).
int LeadingSpaceIters(const Stage& stage) {
  int n = 0;
  for (const Iterator& it : stage.iters) {
    if (it.kind != IterKind::kSpace || it.annotation != IterAnnotation::kNone) {
      break;
    }
    ++n;
  }
  return n;
}

void AnnotateCpuStage(State* state, const Stage& stage_snapshot, Rng* rng,
                      const SamplerOptions& options, bool is_root) {
  const std::string name = stage_snapshot.name();
  if (is_root) {
    // Parallelize: fuse a random number of leading space loops and mark the
    // result parallel.
    int leading = LeadingSpaceIters(stage_snapshot);
    if (leading >= 1) {
      int n_fuse = static_cast<int>(rng->Int(1, leading));
      if (n_fuse > 1) {
        if (!state->Fuse(name, 0, n_fuse)) {
          return;
        }
      }
      if (!state->Annotate(name, 0, IterAnnotation::kParallel)) {
        return;
      }
    }
  }
  // Vectorize the innermost loop with some probability.
  int stage_idx = state->StageIndex(name);
  const Stage& current = state->stage(stage_idx);
  if (!current.iters.empty() && rng->Uniform() < options.vectorize_probability) {
    int last = static_cast<int>(current.iters.size()) - 1;
    const Iterator& inner = current.iters[static_cast<size_t>(last)];
    if (inner.annotation == IterAnnotation::kNone && inner.extent >= 2 &&
        inner.extent <= 64) {
      state->Annotate(name, last, IterAnnotation::kVectorize);
    }
  }
  // Unroll pragma for reduction-bearing stages.
  if (HasReduce(current.op->body) && !options.unroll_options.empty()) {
    int value = options.unroll_options[rng->Index(options.unroll_options.size())];
    if (value > 0) {
      state->Pragma(name, value);
    }
  }
}

void AnnotateGpuStage(State* state, const Stage& stage_snapshot, Rng* rng,
                      const SamplerOptions& options, bool is_root) {
  const std::string name = stage_snapshot.name();
  if (is_root) {
    // Fuse all leading space loops, split into (blocks, threads), bind.
    int leading = LeadingSpaceIters(stage_snapshot);
    if (leading >= 1) {
      if (leading > 1 && !state->Fuse(name, 0, leading)) {
        return;
      }
      int stage_idx = state->StageIndex(name);
      int64_t fused_extent = state->stage(stage_idx).iters[0].extent;
      std::vector<int64_t> candidates;
      for (int64_t t : options.thread_extents) {
        if (fused_extent % t == 0) {
          candidates.push_back(t);
        }
      }
      int64_t threads =
          candidates.empty() ? 1 : candidates[rng->Index(candidates.size())];
      if (threads > 1) {
        if (!state->Split(name, 0, {threads})) {
          return;
        }
        state->Annotate(name, 0, IterAnnotation::kBlockX);
        state->Annotate(name, 1, IterAnnotation::kThreadX);
      } else {
        state->Annotate(name, 0, IterAnnotation::kBlockX);
      }
    }
  }
  // Unroll pragma (GPU kernels benefit strongly).
  int stage_idx = state->StageIndex(name);
  if (HasReduce(state->stage(stage_idx).op->body) && !options.unroll_options.empty()) {
    int value = options.unroll_options[rng->Index(options.unroll_options.size())];
    if (value > 0) {
      state->Pragma(name, value);
    }
  }
}

}  // namespace

void AnnotateState(State* state, Rng* rng, const SamplerOptions& options) {
  // Snapshot stage order first; annotation mutates iterators.
  std::vector<std::pair<std::string, bool>> stages;
  for (const Stage& s : state->stages()) {
    if (s.loc.kind == ComputeLocKind::kInlined) {
      continue;
    }
    stages.emplace_back(s.name(), s.loc.kind == ComputeLocKind::kRoot);
  }
  for (const auto& [name, is_root] : stages) {
    int idx = state->StageIndex(name);
    if (idx < 0) {
      continue;
    }
    Stage snapshot = state->stage(idx);
    if (options.gpu) {
      AnnotateGpuStage(state, snapshot, rng, options, is_root);
    } else {
      AnnotateCpuStage(state, snapshot, rng, options, is_root);
    }
    if (state->failed()) {
      return;
    }
  }
}

State SampleCompleteProgram(const State& sketch, const ComputeDAG* dag, Rng* rng,
                            const SamplerOptions& options) {
  State state = SampleTileSizes(sketch, dag, rng, options);
  if (state.failed()) {
    return state;
  }
  // Occasionally tweak the computation location of a fused producer
  // ("randomly change the computation location of some nodes").
  if (rng->Uniform() < options.location_tweak_probability) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < state.stages().size(); ++i) {
      if (state.stages()[i].loc.kind == ComputeLocKind::kAt) {
        candidates.push_back(i);
      }
    }
    if (!candidates.empty()) {
      size_t pick = candidates[rng->Index(candidates.size())];
      const Stage& s = state.stages()[pick];
      int target_idx = state.StageIndex(s.loc.at_stage);
      if (target_idx >= 0) {
        int n_iters = static_cast<int>(state.stage(target_idx).iters.size());
        if (n_iters > 0) {
          int new_level = static_cast<int>(rng->Int(0, n_iters - 1));
          state.ComputeAt(s.name(), s.loc.at_stage, new_level);
        }
      }
    }
  }
  if (!state.failed()) {
    AnnotateState(&state, rng, options);
  }
  return state;
}

}  // namespace ansor
