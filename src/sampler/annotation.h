// Random annotation (paper §4.2): turns sketches into complete programs.
//
// "Given a list of generated sketches, we randomly pick one sketch, randomly
// fill out tile sizes, parallelize some outer loops, vectorize some inner
// loops, and unroll a few inner loops. We also randomly change the computation
// location of some nodes."
#ifndef ANSOR_SRC_SAMPLER_ANNOTATION_H_
#define ANSOR_SRC_SAMPLER_ANNOTATION_H_

#include <vector>

#include "src/ir/state.h"
#include "src/support/rng.h"

namespace ansor {

struct SamplerOptions {
  bool gpu = false;
  // auto_unroll_max_step candidates (TVM uses the same ladder).
  std::vector<int> unroll_options = {0, 16, 64, 512};
  double vectorize_probability = 0.8;
  double location_tweak_probability = 0.1;
  // GPU: threadIdx.x extent candidates.
  std::vector<int64_t> thread_extents = {32, 64, 128, 256, 512};
  // Limit on sampled tile sizes for a single level (TVM's
  // max_innermost_split_factor analogue, applied to the innermost level).
  int64_t max_innermost_factor = 64;
};

// Fills every pending SplitStep in the sketch with random divisor
// factorizations by replaying its steps with rewritten lengths.
// Returns a failed state if replay breaks (callers resample).
State SampleTileSizes(const State& sketch, const ComputeDAG* dag, Rng* rng,
                      const SamplerOptions& options = SamplerOptions());

// Applies the random annotation policy (parallel / vectorize / unroll /
// thread binding) to a tile-size-complete state, in place.
void AnnotateState(State* state, Rng* rng, const SamplerOptions& options = SamplerOptions());

// Full §4.2 pipeline: tile sizes + annotations + occasional compute-location
// tweak. May return a failed state; callers resample.
State SampleCompleteProgram(const State& sketch, const ComputeDAG* dag, Rng* rng,
                            const SamplerOptions& options = SamplerOptions());

// Random divisor factorization of `extent` into `parts` factors whose product
// divides extent (used by tile sampling and tile-size mutation).
std::vector<int64_t> SampleFactorization(int64_t extent, int parts, Rng* rng,
                                         int64_t max_innermost_factor);

}  // namespace ansor

#endif  // ANSOR_SRC_SAMPLER_ANNOTATION_H_
