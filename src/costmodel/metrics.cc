#include "src/costmodel/metrics.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/support/logging.h"

namespace ansor {

double PairwiseComparisonAccuracy(const std::vector<double>& predictions,
                                  const std::vector<double>& truth) {
  CHECK_EQ(predictions.size(), truth.size());
  size_t n = truth.size();
  double correct = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (truth[i] == truth[j]) {
        continue;
      }
      total += 1.0;
      bool truth_gt = truth[i] > truth[j];
      bool pred_gt = predictions[i] > predictions[j];
      if (predictions[i] == predictions[j]) {
        correct += 0.5;  // the model cannot distinguish: random tie-break
      } else if (truth_gt == pred_gt) {
        correct += 1.0;
      }
    }
  }
  return total == 0.0 ? 0.5 : correct / total;
}

double RecallAtK(const std::vector<double>& predictions, const std::vector<double>& truth,
                 int k) {
  CHECK_EQ(predictions.size(), truth.size());
  CHECK_GT(k, 0);
  size_t n = truth.size();
  k = std::min<int>(k, static_cast<int>(n));
  auto top_k = [&](const std::vector<double>& values) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return values[a] > values[b]; });
    return std::unordered_set<size_t>(order.begin(), order.begin() + k);
  };
  std::unordered_set<size_t> g = top_k(truth);
  std::unordered_set<size_t> p = top_k(predictions);
  int overlap = 0;
  for (size_t idx : p) {
    overlap += g.count(idx) > 0 ? 1 : 0;
  }
  return static_cast<double>(overlap) / static_cast<double>(k);
}

}  // namespace ansor
