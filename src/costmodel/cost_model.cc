#include "src/costmodel/cost_model.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/support/logging.h"
#include "src/support/util.h"

namespace ansor {

CostModel::CostModel() {
  static std::atomic<uint64_t> next_id{1};
  model_id_ = next_id.fetch_add(1);
}

std::vector<double> CostModel::PredictBatch(
    const std::vector<const std::vector<std::vector<float>>*>& programs) {
  std::vector<std::vector<std::vector<float>>> copy;
  copy.reserve(programs.size());
  for (const auto* rows : programs) {
    copy.push_back(*rows);
  }
  return Predict(copy);
}

std::vector<std::vector<double>> CostModel::PredictStatementsBatch(
    const std::vector<const std::vector<std::vector<float>>*>& programs) {
  std::vector<std::vector<double>> scores;
  scores.reserve(programs.size());
  for (const auto* rows : programs) {
    scores.push_back(PredictStatements(*rows));
  }
  return scores;
}

GbdtCostModel::GbdtCostModel(GbdtParams params) : params_(params), model_(params) {}

void GbdtCostModel::Update(
    uint64_t task_id, const std::vector<std::vector<std::vector<float>>>& program_features,
    const std::vector<double>& throughputs) {
  CHECK_EQ(program_features.size(), throughputs.size());
  for (size_t i = 0; i < program_features.size(); ++i) {
    if (program_features[i].empty()) {
      continue;  // failed lowering: nothing to learn from
    }
    samples_.push_back(program_features[i]);
    labels_raw_.push_back(std::max(0.0, throughputs[i]));
    task_ids_.push_back(task_id);
    double& best = task_best_[task_id];
    best = std::max(best, throughputs[i]);
  }
  Retrain();
  BumpVersion();  // invalidates stage-score memos on cached artifacts
}

void GbdtCostModel::Retrain() {
  GbdtDataset data;
  for (size_t p = 0; p < samples_.size(); ++p) {
    double best = task_best_[task_ids_[p]];
    double label = best > 0.0 ? labels_raw_[p] / best : 0.0;
    int group = static_cast<int>(data.labels.size());
    data.labels.push_back(label);
    // Weighted squared error with the (normalized) throughput as the weight;
    // failed programs keep a small weight so the model learns to avoid them.
    data.weights.push_back(std::max(label, 0.1));
    for (const auto& row : samples_[p]) {
      data.rows.push_back(row);
      data.group.push_back(group);
    }
  }
  model_ = Gbdt(params_);
  model_.Train(data);
}

std::vector<double> GbdtCostModel::Predict(
    const std::vector<std::vector<std::vector<float>>>& program_features) {
  std::vector<double> scores;
  scores.reserve(program_features.size());
  for (const auto& rows : program_features) {
    if (rows.empty()) {
      scores.push_back(kInvalidScore);  // empty features: failed lowering
    } else if (!model_.trained()) {
      scores.push_back(0.0);
    } else {
      scores.push_back(model_.PredictProgram(rows));
    }
  }
  return scores;
}

std::vector<double> GbdtCostModel::PredictBatch(
    const std::vector<const std::vector<std::vector<float>>*>& programs) {
  std::vector<double> scores;
  scores.reserve(programs.size());
  for (const auto* rows : programs) {
    if (rows->empty()) {
      scores.push_back(kInvalidScore);  // empty features: failed lowering
    } else if (!model_.trained()) {
      scores.push_back(0.0);
    } else {
      scores.push_back(model_.PredictProgram(*rows));
    }
  }
  return scores;
}

std::vector<double> GbdtCostModel::PredictStatements(
    const std::vector<std::vector<float>>& rows) {
  std::vector<double> scores;
  scores.reserve(rows.size());
  for (const auto& row : rows) {
    scores.push_back(model_.trained() ? model_.PredictRow(row) : 0.0);
  }
  return scores;
}

std::vector<double> RandomCostModel::Predict(
    const std::vector<std::vector<std::vector<float>>>& program_features) {
  std::vector<double> scores;
  scores.reserve(program_features.size());
  for (const auto& rows : program_features) {
    scores.push_back(rows.empty() ? kInvalidScore : rng_.Uniform());
  }
  return scores;
}

std::vector<double> RandomCostModel::PredictBatch(
    const std::vector<const std::vector<std::vector<float>>*>& programs) {
  // Same draws as Predict, without the default implementation's deep copy of
  // feature matrices it would never read.
  std::vector<double> scores;
  scores.reserve(programs.size());
  for (const auto* rows : programs) {
    scores.push_back(rows->empty() ? kInvalidScore : rng_.Uniform());
  }
  return scores;
}

std::vector<double> RandomCostModel::PredictStatements(
    const std::vector<std::vector<float>>& rows) {
  // Stateless by design (see the class comment): each row's score derives
  // from its contents and the seed, never from how many rows were scored
  // before, so memoized statement scores replay bit-identically.
  std::vector<double> scores;
  scores.reserve(rows.size());
  for (const auto& row : rows) {
    uint64_t h = seed_ ^ 0x517cc1b727220a95ULL;
    for (float v : row) {
      uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      HashCombine(&h, bits);
    }
    scores.push_back(Rng(h).Uniform());
  }
  return scores;
}

}  // namespace ansor
