#include "src/costmodel/cost_model.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/ir/state.h"
#include "src/store/artifact_store.h"
#include "src/store/record_store.h"
#include "src/store/serde.h"
#include "src/support/logging.h"
#include "src/support/util.h"

namespace ansor {

CostModel::CostModel() {
  static std::atomic<uint64_t> next_id{1};
  model_id_ = next_id.fetch_add(1);
}

void CostModel::ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const {
  registry->SetGauge(prefix + ".version", static_cast<double>(version()));
  registry->SetGauge(prefix + ".train_calls", static_cast<double>(train_calls()));
  registry->SetGauge(prefix + ".programs_predicted",
                     static_cast<double>(programs_predicted()));
}

std::vector<double> CostModel::PredictBatch(
    const std::vector<const FeatureMatrix*>& programs) {
  std::vector<FeatureMatrix> copy;
  copy.reserve(programs.size());
  for (const FeatureMatrix* m : programs) {
    copy.push_back(*m);
  }
  return Predict(copy);
}

std::vector<std::vector<double>> CostModel::PredictStatementsBatch(
    const std::vector<const FeatureMatrix*>& programs) {
  std::vector<std::vector<double>> scores;
  scores.reserve(programs.size());
  for (const FeatureMatrix* m : programs) {
    scores.push_back(PredictStatements(*m));
  }
  return scores;
}

GbdtCostModel::GbdtCostModel(GbdtParams params) : params_(params), model_(params) {}

void GbdtCostModel::Update(uint64_t task_id,
                           const std::vector<FeatureMatrix>& program_features,
                           const std::vector<double>& throughputs) {
  CHECK_EQ(program_features.size(), throughputs.size());
  for (size_t i = 0; i < program_features.size(); ++i) {
    if (program_features[i].empty()) {
      continue;  // failed lowering: nothing to learn from
    }
    samples_.push_back(program_features[i]);
    labels_raw_.push_back(std::max(0.0, throughputs[i]));
    task_ids_.push_back(task_id);
    double& best = task_best_[task_id];
    best = std::max(best, throughputs[i]);
  }
  Retrain();
  CountTrain();
  BumpVersion();  // invalidates stage-score memos on cached artifacts
}

void GbdtCostModel::Retrain() {
  GbdtDataset data;
  for (size_t p = 0; p < samples_.size(); ++p) {
    double best = task_best_[task_ids_[p]];
    double label = best > 0.0 ? labels_raw_[p] / best : 0.0;
    int group = static_cast<int>(data.labels.size());
    data.labels.push_back(label);
    // Weighted squared error with the (normalized) throughput as the weight;
    // failed programs keep a small weight so the model learns to avoid them.
    data.weights.push_back(std::max(label, 0.1));
    data.rows.AppendMatrix(samples_[p]);  // one block copy per program
    data.group.insert(data.group.end(), samples_[p].rows(), group);
  }
  model_ = Gbdt(params_);
  model_.Train(data);
}

TrainFromStoreStats GbdtCostModel::TrainFromStore(const RecordStore& records,
                                                  const ArtifactStore& artifacts) {
  TrainFromStoreStats stats;
  for (const TuningRecord& record : records.Snapshot()) {
    const ArtifactSnapshot* artifact =
        artifacts.Find(record.task_id, StepSignature(record.steps));
    if (artifact == nullptr || artifact->features.empty()) {
      ++stats.missing_features;
      continue;
    }
    // Live measurements persist their FLOPS throughput; legacy text records
    // only carry seconds. 1/seconds differs from FLOPS by the task's
    // constant flop count, which the per-task normalization divides away.
    double throughput = record.throughput > 0.0
                            ? record.throughput
                            : (record.seconds > 0.0 ? 1.0 / record.seconds : 0.0);
    samples_.push_back(artifact->features);
    labels_raw_.push_back(std::max(0.0, throughput));
    task_ids_.push_back(record.task_id);
    double& best = task_best_[record.task_id];
    best = std::max(best, throughput);
    ++stats.used;
  }
  if (stats.used > 0) {
    Retrain();
    CountTrain();
    BumpVersion();
  }
  return stats;
}

void GbdtCostModel::ExportMetrics(MetricsRegistry* registry,
                                  const std::string& prefix) const {
  CostModel::ExportMetrics(registry, prefix);
  registry->SetGauge(prefix + ".samples", static_cast<double>(num_samples()));
}

namespace {

constexpr char kModelMagic[8] = {'A', 'N', 'S', 'R', 'G', 'B', 'M', '1'};
constexpr size_t kModelMagicSize = sizeof(kModelMagic);
constexpr uint64_t kMaxModelSamples = 1u << 28;

}  // namespace

std::string GbdtCostModel::Serialize() const {
  // Body first so the string table (stage names interned by the feature
  // codec) is complete before it is written ahead of the body.
  StringTable strings;
  ByteWriter body;
  model_.EncodeTo(&body);
  body.PutVarint(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    EncodeFeatureMatrix(samples_[i], &strings, &body);
    body.PutF64(labels_raw_[i]);
    body.PutU64(task_ids_[i]);
  }
  // task_best_ in sorted task order: identical state must serialize to
  // identical bytes regardless of hash-map iteration order.
  std::vector<std::pair<uint64_t, double>> bests(task_best_.begin(), task_best_.end());
  std::sort(bests.begin(), bests.end());
  body.PutVarint(bests.size());
  for (const auto& [task, best] : bests) {
    body.PutU64(task);
    body.PutF64(best);
  }
  ByteWriter w;
  w.PutRaw(kModelMagic, kModelMagicSize);
  strings.Encode(&w);
  w.PutRaw(body.buffer().data(), body.size());
  return w.Take();
}

bool GbdtCostModel::Deserialize(const std::string& bytes) {
  if (bytes.size() < kModelMagicSize ||
      bytes.compare(0, kModelMagicSize, kModelMagic, kModelMagicSize) != 0) {
    return false;
  }
  ByteReader r(bytes);
  r.Skip(kModelMagicSize);
  StringTable strings;
  if (!strings.Decode(&r)) {
    return false;
  }
  Gbdt model;
  if (!model.DecodeFrom(&r)) {
    return false;
  }
  uint64_t num_samples = r.GetVarint();
  if (!r.ok() || num_samples > kMaxModelSamples) {
    return false;
  }
  std::vector<FeatureMatrix> samples;
  std::vector<double> labels;
  std::vector<uint64_t> task_ids;
  samples.reserve(num_samples);
  labels.reserve(num_samples);
  task_ids.reserve(num_samples);
  for (uint64_t i = 0; i < num_samples; ++i) {
    FeatureMatrix m;
    if (!DecodeFeatureMatrix(&r, strings.strings(), &m)) {
      return false;
    }
    double label = r.GetF64();
    uint64_t task = r.GetU64();
    if (!r.ok() || !std::isfinite(label) || label < 0.0) {
      return false;
    }
    samples.push_back(std::move(m));
    labels.push_back(label);
    task_ids.push_back(task);
  }
  uint64_t num_bests = r.GetVarint();
  if (!r.ok() || num_bests > kMaxModelSamples) {
    return false;
  }
  std::unordered_map<uint64_t, double> bests;
  for (uint64_t i = 0; i < num_bests; ++i) {
    uint64_t task = r.GetU64();
    double best = r.GetF64();
    if (!r.ok() || !std::isfinite(best)) {
      return false;
    }
    bests[task] = best;
  }
  if (!r.AtEnd()) {
    return false;  // trailing garbage: refuse, the container is inconsistent
  }
  params_ = model.params();
  model_ = std::move(model);
  samples_ = std::move(samples);
  labels_raw_ = std::move(labels);
  task_ids_ = std::move(task_ids);
  task_best_ = std::move(bests);
  BumpVersion();  // any memoized stage scores elsewhere are now stale
  return true;
}

bool GbdtCostModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool GbdtCostModel::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

std::vector<double> GbdtCostModel::Predict(
    const std::vector<FeatureMatrix>& program_features) {
  std::vector<const FeatureMatrix*> ptrs;
  ptrs.reserve(program_features.size());
  for (const FeatureMatrix& m : program_features) {
    ptrs.push_back(&m);
  }
  return PredictBatch(ptrs);
}

std::vector<double> GbdtCostModel::PredictBatch(
    const std::vector<const FeatureMatrix*>& programs) {
  CountPredict(static_cast<int64_t>(programs.size()));
  std::vector<double> scores(programs.size(), 0.0);
  if (!model_.trained()) {
    for (size_t p = 0; p < programs.size(); ++p) {
      if (programs[p]->empty()) {
        scores[p] = kInvalidScore;  // empty features: failed lowering
      }
    }
    return scores;
  }
  // Gather row pointers across every program into one forest pass.
  std::vector<const float*> rows;
  for (const FeatureMatrix* m : programs) {
    for (size_t r = 0; r < m->rows(); ++r) {
      rows.push_back(m->row(r));
    }
  }
  std::vector<double> row_scores(rows.size());
  model_.PredictStatementRows(rows.data(), rows.size(), row_scores.data());
  size_t cursor = 0;
  for (size_t p = 0; p < programs.size(); ++p) {
    const FeatureMatrix* m = programs[p];
    if (m->empty()) {
      scores[p] = kInvalidScore;
      continue;
    }
    // base + s0 + s1 + ... in row order: the same association the scalar
    // PredictProgram uses, so scores are bit-identical to the unbatched path.
    double score = model_.base_score();
    for (size_t r = 0; r < m->rows(); ++r) {
      score += row_scores[cursor + r];
    }
    cursor += m->rows();
    scores[p] = score;
  }
  return scores;
}

std::vector<double> GbdtCostModel::PredictStatements(const FeatureMatrix& rows) {
  CountPredict(1);
  std::vector<double> scores(rows.rows(), 0.0);
  if (!model_.trained() || rows.empty()) {
    return scores;
  }
  std::vector<const float*> ptrs;
  ptrs.reserve(rows.rows());
  for (size_t r = 0; r < rows.rows(); ++r) {
    ptrs.push_back(rows.row(r));
  }
  model_.PredictStatementRows(ptrs.data(), ptrs.size(), scores.data());
  return scores;
}

std::vector<std::vector<double>> GbdtCostModel::PredictStatementsBatch(
    const std::vector<const FeatureMatrix*>& programs) {
  CountPredict(static_cast<int64_t>(programs.size()));
  std::vector<std::vector<double>> scores(programs.size());
  std::vector<const float*> rows;
  for (const FeatureMatrix* m : programs) {
    for (size_t r = 0; r < m->rows(); ++r) {
      rows.push_back(m->row(r));
    }
  }
  std::vector<double> row_scores(rows.size(), 0.0);
  if (model_.trained() && !rows.empty()) {
    model_.PredictStatementRows(rows.data(), rows.size(), row_scores.data());
  }
  size_t cursor = 0;
  for (size_t p = 0; p < programs.size(); ++p) {
    size_t n = programs[p]->rows();
    scores[p].assign(row_scores.begin() + static_cast<ptrdiff_t>(cursor),
                     row_scores.begin() + static_cast<ptrdiff_t>(cursor + n));
    cursor += n;
  }
  return scores;
}

std::vector<double> RandomCostModel::Predict(
    const std::vector<FeatureMatrix>& program_features) {
  CountPredict(static_cast<int64_t>(program_features.size()));
  std::vector<double> scores;
  scores.reserve(program_features.size());
  for (const FeatureMatrix& m : program_features) {
    scores.push_back(m.empty() ? kInvalidScore : rng_.Uniform());
  }
  return scores;
}

std::vector<double> RandomCostModel::PredictBatch(
    const std::vector<const FeatureMatrix*>& programs) {
  // Same draws as Predict, without the default implementation's deep copy of
  // feature matrices it would never read.
  CountPredict(static_cast<int64_t>(programs.size()));
  std::vector<double> scores;
  scores.reserve(programs.size());
  for (const FeatureMatrix* m : programs) {
    scores.push_back(m->empty() ? kInvalidScore : rng_.Uniform());
  }
  return scores;
}

std::vector<double> RandomCostModel::PredictStatements(const FeatureMatrix& rows) {
  // Stateless by design (see the class comment): each row's score derives
  // from its contents and the seed, never from how many rows were scored
  // before, so memoized statement scores replay bit-identically.
  std::vector<double> scores;
  scores.reserve(rows.rows());
  for (size_t r = 0; r < rows.rows(); ++r) {
    const float* row = rows.row(r);
    uint64_t h = seed_ ^ 0x517cc1b727220a95ULL;
    for (size_t f = 0; f < rows.dim(); ++f) {
      uint32_t bits = 0;
      std::memcpy(&bits, &row[f], sizeof(bits));
      HashCombine(&h, bits);
    }
    scores.push_back(Rng(h).Uniform());
  }
  return scores;
}

}  // namespace ansor
