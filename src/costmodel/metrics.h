// Ranking metrics used in the paper's Figure 3 analysis: pairwise comparison
// accuracy and recall@k of top-k programs.
#ifndef ANSOR_SRC_COSTMODEL_METRICS_H_
#define ANSOR_SRC_COSTMODEL_METRICS_H_

#include <vector>

namespace ansor {

// Fraction of ordered pairs (i, j) with truth[i] != truth[j] whose relative
// order the predictions reproduce. 0.5 = random guessing.
double PairwiseComparisonAccuracy(const std::vector<double>& predictions,
                                  const std::vector<double>& truth);

// recall@k of top-k = |G ∩ P| / k, where G is the ground-truth top-k set and
// P the predicted top-k set (paper footnote 1).
double RecallAtK(const std::vector<double>& predictions, const std::vector<double>& truth,
                 int k);

}  // namespace ansor

#endif  // ANSOR_SRC_COSTMODEL_METRICS_H_
