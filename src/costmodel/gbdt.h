// Gradient-boosted regression trees, from scratch.
//
// The paper (§5.2) trains a gradient boosting decision tree [XGBoost] as the
// underlying model f, predicting a score per innermost statement; the program
// score is the sum over its statements. The loss is weighted squared error
//   loss(f, P, y) = y * (sum_{s in S(P)} f(s) - y)^2
// with the throughput y itself as the weight, so well-performing programs
// matter more. We implement the same objective: per-row gradients derive from
// the program-level residual, trees use histogram-based greedy splits.
#ifndef ANSOR_SRC_COSTMODEL_GBDT_H_
#define ANSOR_SRC_COSTMODEL_GBDT_H_

#include <cstdint>
#include <vector>

namespace ansor {

struct GbdtParams {
  int num_trees = 50;
  int max_depth = 6;
  double learning_rate = 0.15;
  double lambda = 1.0;          // L2 regularization on leaf values
  int max_bins = 32;
  int min_rows_per_leaf = 4;
  double min_gain = 1e-6;
};

struct TreeNode {
  int feature = -1;     // -1 for leaves
  float threshold = 0;  // go left when x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf output
};

struct Tree {
  std::vector<TreeNode> nodes;
  double PredictRow(const std::vector<float>& row) const;
};

// A training set where rows are statements grouped into programs.
struct GbdtDataset {
  std::vector<std::vector<float>> rows;  // statement feature vectors
  std::vector<int> group;                // rows[i] belongs to program group[i]
  std::vector<double> labels;            // per-program target (normalized throughput)
  std::vector<double> weights;           // per-program weight

  int num_programs() const { return static_cast<int>(labels.size()); }
};

class Gbdt {
 public:
  explicit Gbdt(GbdtParams params = GbdtParams()) : params_(params) {}

  // Trains from scratch on the dataset (sum-over-group objective).
  void Train(const GbdtDataset& data);

  bool trained() const { return !trees_.empty(); }

  // Score of a single statement row.
  double PredictRow(const std::vector<float>& row) const;
  // Score of a program: sum over its statement rows.
  double PredictProgram(const std::vector<std::vector<float>>& rows) const;

  const std::vector<Tree>& trees() const { return trees_; }

 private:
  GbdtParams params_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;
};

}  // namespace ansor

#endif  // ANSOR_SRC_COSTMODEL_GBDT_H_
