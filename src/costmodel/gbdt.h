// Gradient-boosted regression trees, from scratch.
//
// The paper (§5.2) trains a gradient boosting decision tree [XGBoost] as the
// underlying model f, predicting a score per innermost statement; the program
// score is the sum over its statements. The loss is weighted squared error
//   loss(f, P, y) = y * (sum_{s in S(P)} f(s) - y)^2
// with the throughput y itself as the weight, so well-performing programs
// matter more. We implement the same objective: per-row gradients derive from
// the program-level residual, trees use histogram-based greedy splits.
//
// Inference is served from a CompiledForest: all trees flattened into shared
// structure-of-arrays storage (feature / threshold / children / value), with
// leaves rewritten to self-loop so every row walks a tree in exactly its
// depth steps — a fixed-trip branchless loop that interleaves a block of rows
// for instruction-level parallelism. Leaf values are pre-scaled by the
// learning rate at compile time; batch results are bit-identical to the
// scalar PredictRow loop (same products, same accumulation order).
#ifndef ANSOR_SRC_COSTMODEL_GBDT_H_
#define ANSOR_SRC_COSTMODEL_GBDT_H_

#include <cstdint>
#include <vector>

#include "src/features/feature_matrix.h"

namespace ansor {

class ByteWriter;
class ByteReader;

struct GbdtParams {
  int num_trees = 50;
  int max_depth = 6;
  double learning_rate = 0.15;
  double lambda = 1.0;          // L2 regularization on leaf values
  // Histogram bin count per feature. Must lie in [2, 256]: bin indices are
  // stored as uint8_t, so anything above 256 would silently wrap and
  // corrupt splits. Train() CHECKs this bound.
  int max_bins = 32;
  int min_rows_per_leaf = 4;
  double min_gain = 1e-6;
};

struct TreeNode {
  int feature = -1;     // -1 for leaves
  float threshold = 0;  // go left when x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf output
};

struct Tree {
  std::vector<TreeNode> nodes;
  double PredictRow(const float* row) const;
  double PredictRow(const std::vector<float>& row) const { return PredictRow(row.data()); }
};

// A training set where rows are statements grouped into programs.
struct GbdtDataset {
  FeatureMatrix rows;          // statement feature rows (flat, row-major)
  std::vector<int> group;      // row i belongs to program group[i]
  std::vector<double> labels;  // per-program target (normalized throughput)
  std::vector<double> weights; // per-program weight

  int num_programs() const { return static_cast<int>(labels.size()); }
};

// Forest compiled to structure-of-arrays node storage for batch inference.
// Leaves self-loop (left == right == self), so traversal of tree t is a
// fixed loop of depth(t) steps with no leaf test inside.
class CompiledForest {
 public:
  void Compile(const std::vector<Tree>& trees, double learning_rate);

  bool empty() const { return roots_.empty(); }

  // out[i] = sum over trees of the (learning-rate-scaled) leaf value for
  // rows[i]. Rows are interleaved in blocks so independent traversals
  // overlap; accumulation order per row is tree order, matching the scalar
  // path bit for bit.
  void PredictRows(const float* const* rows, size_t n, double* out) const;

 private:
  std::vector<int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<double> value_;  // pre-scaled by learning_rate
  std::vector<int32_t> roots_;
  std::vector<int32_t> depth_;
};

class Gbdt {
 public:
  explicit Gbdt(GbdtParams params = GbdtParams()) : params_(params) {}

  // Trains from scratch on the dataset (sum-over-group objective) and
  // compiles the forest for batch inference.
  void Train(const GbdtDataset& data);

  bool trained() const { return !trees_.empty(); }
  double base_score() const { return base_score_; }

  // Score of a single statement row (scalar reference path).
  double PredictRow(const float* row) const;
  double PredictRow(const std::vector<float>& row) const { return PredictRow(row.data()); }
  // Batched statement scores via the compiled forest (bit-identical to the
  // scalar path). out must have room for n values.
  void PredictStatementRows(const float* const* rows, size_t n, double* out) const;
  // Score of a program: base score plus the sum over its statement rows.
  double PredictProgram(const std::vector<std::vector<float>>& rows) const;

  const std::vector<Tree>& trees() const { return trees_; }
  const CompiledForest& forest() const { return forest_; }
  const GbdtParams& params() const { return params_; }

  // Binary codec (store layer, src/store/bytes.h): params, base score, and
  // the trained trees with raw IEEE threshold/value bits, so a decoded
  // model's predictions are bit-identical to the encoder's. DecodeFrom
  // validates every node index and recompiles the inference forest; it fails
  // the reader (returning false, model untouched semantically) on malformed
  // input.
  void EncodeTo(ByteWriter* w) const;
  bool DecodeFrom(ByteReader* r);

 private:
  GbdtParams params_;
  std::vector<Tree> trees_;
  CompiledForest forest_;
  double base_score_ = 0.0;
};

}  // namespace ansor

#endif  // ANSOR_SRC_COSTMODEL_GBDT_H_
