// Learned cost model interface (paper §5.2).
//
// "A single model is trained for all tensor programs coming from all DAGs, and
// we normalize the throughput of all programs come from the same DAG to be in
// the range of [0, 1]." The model accumulates measurement records across
// tasks and retrains on every update.
//
// All entry points speak FeatureMatrix — the flat row-major features cached
// on ProgramArtifacts — so batch prediction walks borrowed row pointers
// straight into the compiled GBDT forest without copying a float.
#ifndef ANSOR_SRC_COSTMODEL_COST_MODEL_H_
#define ANSOR_SRC_COSTMODEL_COST_MODEL_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/costmodel/gbdt.h"
#include "src/features/feature_extraction.h"
#include "src/support/rng.h"
#include "src/telemetry/metrics.h"

namespace ansor {

class RecordStore;
class ArtifactStore;

// Accounting for GbdtCostModel::TrainFromStore: how many stored records
// became training samples vs lacked a persisted feature matrix.
struct TrainFromStoreStats {
  size_t used = 0;
  size_t missing_features = 0;
};

class CostModel {
 public:
  // The invalid-program contract, in one place:
  //  * Prediction side: Predict/PredictBatch score a program with an empty
  //    feature matrix (failed lowering) as kInvalidScore — far below any
  //    real prediction, so fitness-proportional selection can never pick it.
  //  * Training side: Update receives invalid measurements as throughput 0;
  //    callers clear the feature matrix of possibly-transient failures so
  //    the model only learns zero-throughput from confirmed-bad programs.
  static constexpr double kInvalidScore = -1e9;

  CostModel();
  virtual ~CostModel() = default;

  // Non-copyable: a copy would duplicate the (model_id, version) stamp and
  // could alias stage-score memos between models whose training diverged.
  CostModel(const CostModel&) = delete;
  CostModel& operator=(const CostModel&) = delete;

  // Adds measured programs for the given task and retrains. `task_id`
  // identifies the DAG for per-task throughput normalization; `throughputs`
  // are raw FLOPS, reported as 0 for invalid measurements (see the
  // kInvalidScore contract above).
  virtual void Update(uint64_t task_id, const std::vector<FeatureMatrix>& program_features,
                      const std::vector<double>& throughputs) = 0;

  // Predicted fitness per program (higher is better). Scores are comparable
  // within one task; programs with empty features score kInvalidScore.
  virtual std::vector<double> Predict(const std::vector<FeatureMatrix>& program_features) = 0;

  // Predict over borrowed feature matrices: the evolution hot path scores a
  // population without copying features out of cached ProgramArtifacts.
  // Entries are non-null. The default implementation materializes a copy and
  // calls Predict; GbdtCostModel overrides it copy-free.
  virtual std::vector<double> PredictBatch(const std::vector<const FeatureMatrix*>& programs);

  // Per-statement scores for one program (used by node-based crossover to
  // score the rewriting steps of individual DAG nodes). Implementations must
  // be pure functions of (rows, model state): the ProgramCache memoizes the
  // result keyed by (model_id, version), so a hidden per-call state (e.g. a
  // shared RNG stream) would make search results depend on cache capacity.
  virtual std::vector<double> PredictStatements(const FeatureMatrix& rows) = 0;

  // Batched form of PredictStatements: scores several programs in one call
  // (evolutionary search batches all crossover-parent scoring of a wave).
  // Entries are non-null; a program with no rows (failed lowering) yields an
  // empty score vector. The default implementation loops PredictStatements.
  virtual std::vector<std::vector<double>> PredictStatementsBatch(
      const std::vector<const FeatureMatrix*>& programs);

  // Cache stamp for memoized predictions (ProgramArtifact stage scores):
  // model_id is unique per instance for the lifetime of the process, version
  // bumps on every Update that may change predictions. A memo computed under
  // a matching (model_id, version) stamp equals a fresh prediction.
  uint64_t model_id() const { return model_id_; }
  uint64_t version() const { return version_; }

  // Call-volume counters, incremented by implementations via CountTrain /
  // CountPredict: how many Update calls retrained, and how many programs
  // were scored across all Predict* entry points (thread-safe).
  int64_t train_calls() const { return train_calls_.load(std::memory_order_relaxed); }
  int64_t programs_predicted() const {
    return programs_predicted_.load(std::memory_order_relaxed);
  }

  // Mirrors version/train/predict counters into `registry` as gauges named
  // <prefix>.version / .train_calls / .programs_predicted. Subclasses extend
  // (GbdtCostModel adds .samples).
  virtual void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const;

 protected:
  void BumpVersion() { ++version_; }
  void CountTrain() { train_calls_.fetch_add(1, std::memory_order_relaxed); }
  void CountPredict(int64_t programs) {
    programs_predicted_.fetch_add(programs, std::memory_order_relaxed);
  }

 private:
  uint64_t model_id_;
  uint64_t version_ = 1;
  std::atomic<int64_t> train_calls_{0};
  std::atomic<int64_t> programs_predicted_{0};
};

// The learned GBDT model of §5.2.
class GbdtCostModel : public CostModel {
 public:
  explicit GbdtCostModel(GbdtParams params = GbdtParams());

  void Update(uint64_t task_id, const std::vector<FeatureMatrix>& program_features,
              const std::vector<double>& throughputs) override;
  std::vector<double> Predict(const std::vector<FeatureMatrix>& program_features) override;
  std::vector<double> PredictBatch(
      const std::vector<const FeatureMatrix*>& programs) override;
  std::vector<double> PredictStatements(const FeatureMatrix& rows) override;
  std::vector<std::vector<double>> PredictStatementsBatch(
      const std::vector<const FeatureMatrix*>& programs) override;

  size_t num_samples() const { return labels_raw_.size(); }
  // The trained model (bench / introspection).
  const Gbdt& gbdt() const { return model_; }

  void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const override;

  // Transfer learning from the persistence layer (the paper's "single model
  // trained for all programs coming from all DAGs", across process
  // lifetimes): joins every stored TuningRecord against its persisted
  // feature matrix in `artifacts` (ArtifactStore::Find by task + step
  // signature) and retrains once over the union. Labels use the record's
  // measured throughput; legacy records without one fall back to 1/seconds,
  // which the per-task normalization maps to the same [0, 1] labels for any
  // single task. Appends to existing training data, so the result equals
  // having Updated with the same samples live.
  TrainFromStoreStats TrainFromStore(const RecordStore& records,
                                     const ArtifactStore& artifacts);

  // Binary round trip of the whole model state: params, trained forest (bit
  // -identical predictions after load), and the accumulated training data +
  // per-task bests, so Update after a load continues exactly where the saved
  // model stopped. Loading bumps version() (memoized stage scores go stale).
  std::string Serialize() const;
  bool Deserialize(const std::string& bytes);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  void Retrain();

  GbdtParams params_;
  Gbdt model_;
  // Accumulated training data: one feature matrix per measured program.
  std::vector<FeatureMatrix> samples_;
  std::vector<double> labels_raw_;  // raw throughput
  std::vector<uint64_t> task_ids_;
  std::unordered_map<uint64_t, double> task_best_;
};

// A model returning uniform random scores: the exploration floor used by
// tests and the "random" ablations. Predict draws from a seeded stream;
// PredictStatements is stateless (scores derive from hashing the row
// contents with the seed) so that statement-score memoization in the
// ProgramCache cannot perturb later predictions through the stream.
class RandomCostModel : public CostModel {
 public:
  explicit RandomCostModel(uint64_t seed = 0) : seed_(seed), rng_(seed) {}

  void Update(uint64_t, const std::vector<FeatureMatrix>&,
              const std::vector<double>&) override {}
  std::vector<double> Predict(const std::vector<FeatureMatrix>& program_features) override;
  std::vector<double> PredictBatch(
      const std::vector<const FeatureMatrix*>& programs) override;
  std::vector<double> PredictStatements(const FeatureMatrix& rows) override;

 private:
  uint64_t seed_;
  Rng rng_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_COSTMODEL_COST_MODEL_H_
