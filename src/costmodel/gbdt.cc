#include "src/costmodel/gbdt.h"

#include <algorithm>
#include <cmath>

#include "src/store/bytes.h"
#include "src/support/logging.h"

namespace ansor {
namespace {

// Per-feature histogram bin edges computed from (sub-sampled) quantiles.
struct BinMap {
  // edges[f] sorted ascending; bin(x) = upper_bound index.
  std::vector<std::vector<float>> edges;

  uint8_t BinOf(int feature, float x) const {
    const std::vector<float>& e = edges[static_cast<size_t>(feature)];
    return static_cast<uint8_t>(std::upper_bound(e.begin(), e.end(), x) - e.begin());
  }
};

BinMap BuildBins(const FeatureMatrix& rows, int max_bins) {
  size_t dim = rows.dim();
  size_t n_rows = rows.rows();
  BinMap bins;
  bins.edges.resize(dim);
  std::vector<float> values;
  values.reserve(n_rows);
  for (size_t f = 0; f < dim; ++f) {
    values.clear();
    for (size_t i = 0; i < n_rows; ++i) {
      values.push_back(rows.at(i, f));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::vector<float>& edges = bins.edges[f];
    if (static_cast<int>(values.size()) <= max_bins) {
      // One bin per distinct value: edges between consecutive values.
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        edges.push_back(0.5f * (values[i] + values[i + 1]));
      }
    } else {
      for (int b = 1; b < max_bins; ++b) {
        size_t idx = values.size() * static_cast<size_t>(b) / static_cast<size_t>(max_bins);
        float edge = values[idx];
        if (edges.empty() || edge > edges.back()) {
          edges.push_back(edge);
        }
      }
    }
  }
  return bins;
}

struct SplitResult {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // go left when bin(x) <= bin
  float threshold = 0.0f;
};

// Builds one tree over pre-binned rows. `binned` is column-major
// (binned[f * n_rows + i]), so the histogram inner loop reads one contiguous
// column per feature.
class TreeBuilder {
 public:
  TreeBuilder(const std::vector<uint8_t>& binned, size_t n_rows, const BinMap& bins,
              const std::vector<double>& grad, const std::vector<double>& hess,
              const GbdtParams& params)
      : binned_(binned), n_rows_(n_rows), bins_(bins), grad_(grad), hess_(hess),
        params_(params) {}

  Tree Build() {
    std::vector<int> all(n_rows_);
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<int>(i);
    }
    BuildNode(all, 0);
    return std::move(tree_);
  }

 private:
  uint8_t BinAt(size_t feature, int row) const {
    return binned_[feature * n_rows_ + static_cast<size_t>(row)];
  }

  int BuildNode(const std::vector<int>& rows, int depth) {
    double g = 0.0;
    double h = 0.0;
    for (int i : rows) {
      g += grad_[static_cast<size_t>(i)];
      h += hess_[static_cast<size_t>(i)];
    }
    int node_id = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    // Newton step leaf value.
    tree_.nodes[static_cast<size_t>(node_id)].value = -g / (h + params_.lambda);

    if (depth >= params_.max_depth ||
        static_cast<int>(rows.size()) < 2 * params_.min_rows_per_leaf) {
      return node_id;
    }
    SplitResult best = FindBestSplit(rows, g, h);
    if (best.feature < 0) {
      return node_id;
    }
    std::vector<int> left;
    std::vector<int> right;
    for (int i : rows) {
      if (BinAt(static_cast<size_t>(best.feature), i) <= best.bin) {
        left.push_back(i);
      } else {
        right.push_back(i);
      }
    }
    if (static_cast<int>(left.size()) < params_.min_rows_per_leaf ||
        static_cast<int>(right.size()) < params_.min_rows_per_leaf) {
      return node_id;
    }
    int left_id = BuildNode(left, depth + 1);
    int right_id = BuildNode(right, depth + 1);
    TreeNode& node = tree_.nodes[static_cast<size_t>(node_id)];
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.left = left_id;
    node.right = right_id;
    return node_id;
  }

  SplitResult FindBestSplit(const std::vector<int>& rows, double g_total, double h_total) {
    SplitResult best;
    size_t dim = bins_.edges.size();
    double parent_score = g_total * g_total / (h_total + params_.lambda);
    std::vector<double> g_hist;
    std::vector<double> h_hist;
    for (size_t f = 0; f < dim; ++f) {
      size_t n_bins = bins_.edges[f].size() + 1;
      if (n_bins < 2) {
        continue;
      }
      g_hist.assign(n_bins, 0.0);
      h_hist.assign(n_bins, 0.0);
      const uint8_t* col = binned_.data() + f * n_rows_;
      for (int i : rows) {
        uint8_t b = col[static_cast<size_t>(i)];
        g_hist[b] += grad_[static_cast<size_t>(i)];
        h_hist[b] += hess_[static_cast<size_t>(i)];
      }
      double gl = 0.0;
      double hl = 0.0;
      for (size_t b = 0; b + 1 < n_bins; ++b) {
        gl += g_hist[b];
        hl += h_hist[b];
        double gr = g_total - gl;
        double hr = h_total - hl;
        if (hl <= 0.0 || hr <= 0.0) {
          continue;
        }
        double gain = gl * gl / (hl + params_.lambda) + gr * gr / (hr + params_.lambda) -
                      parent_score;
        if (gain > best.gain + params_.min_gain) {
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.bin = static_cast<int>(b);
          best.threshold = bins_.edges[f][b];
        }
      }
    }
    return best;
  }

  const std::vector<uint8_t>& binned_;
  size_t n_rows_;
  const BinMap& bins_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const GbdtParams& params_;
  Tree tree_;
};

int TreeDepth(const Tree& tree, int node) {
  const TreeNode& n = tree.nodes[static_cast<size_t>(node)];
  if (n.feature < 0) {
    return 0;
  }
  return 1 + std::max(TreeDepth(tree, n.left), TreeDepth(tree, n.right));
}

}  // namespace

double Tree::PredictRow(const float* row) const {
  if (nodes.empty()) {
    return 0.0;
  }
  int cur = 0;
  for (;;) {
    const TreeNode& node = nodes[static_cast<size_t>(cur)];
    if (node.feature < 0) {
      return node.value;
    }
    cur = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left : node.right;
  }
}

void CompiledForest::Compile(const std::vector<Tree>& trees, double learning_rate) {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
  roots_.clear();
  depth_.clear();
  for (const Tree& tree : trees) {
    if (tree.nodes.empty()) {
      continue;  // contributes exactly 0.0, same as the scalar path
    }
    int32_t base = static_cast<int32_t>(feature_.size());
    roots_.push_back(base);
    depth_.push_back(TreeDepth(tree, 0));
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const TreeNode& n = tree.nodes[i];
      int32_t self = base + static_cast<int32_t>(i);
      if (n.feature < 0) {
        // Self-looping leaf: the traversal loop can run a fixed number of
        // steps without testing for leaves — extra steps stay put.
        feature_.push_back(0);
        threshold_.push_back(0.0f);
        left_.push_back(self);
        right_.push_back(self);
      } else {
        feature_.push_back(n.feature);
        threshold_.push_back(n.threshold);
        left_.push_back(base + n.left);
        right_.push_back(base + n.right);
      }
      // Same double product as the scalar path computes per prediction.
      value_.push_back(learning_rate * n.value);
    }
  }
}

void CompiledForest::PredictRows(const float* const* rows, size_t n, double* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = 0.0;
  }
  if (roots_.empty()) {
    return;
  }
  const int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  const double* value = value_.data();
  constexpr size_t kBlock = 32;
  int32_t idx[kBlock];
  for (size_t start = 0; start < n; start += kBlock) {
    size_t count = std::min(kBlock, n - start);
    const float* const* block = rows + start;
    for (size_t t = 0; t < roots_.size(); ++t) {
      int32_t root = roots_[t];
      int32_t steps = depth_[t];
      for (size_t k = 0; k < count; ++k) {
        idx[k] = root;
      }
      for (int32_t s = 0; s < steps; ++s) {
        for (size_t k = 0; k < count; ++k) {
          int32_t i = idx[k];
          // NaN compares false, taking the right child — identical to the
          // scalar traversal.
          idx[k] = block[k][feature[i]] <= threshold[i] ? left[i] : right[i];
        }
      }
      for (size_t k = 0; k < count; ++k) {
        out[start + k] += value[idx[k]];
      }
    }
  }
}

void Gbdt::Train(const GbdtDataset& data) {
  // Bin indices live in uint8_t: more than 256 bins would wrap silently.
  CHECK_GE(params_.max_bins, 2);
  CHECK_LE(params_.max_bins, 256);
  trees_.clear();
  forest_ = CompiledForest();
  base_score_ = 0.0;
  size_t n_rows = data.rows.rows();
  if (n_rows == 0 || data.num_programs() == 0) {
    return;
  }
  CHECK_EQ(data.group.size(), n_rows);
  CHECK_EQ(data.weights.size(), data.labels.size());

  BinMap bins = BuildBins(data.rows, params_.max_bins);
  // Column-major binned features: the split search reads one feature across
  // all rows at a time, so columns are the contiguous direction.
  size_t dim = data.rows.dim();
  std::vector<uint8_t> binned(dim * n_rows);
  for (size_t i = 0; i < n_rows; ++i) {
    const float* row = data.rows.row(i);
    for (size_t f = 0; f < dim; ++f) {
      binned[f * n_rows + i] = bins.BinOf(static_cast<int>(f), row[f]);
    }
  }

  // Rows per program (for the sum-structured prediction).
  std::vector<std::vector<int>> program_rows(static_cast<size_t>(data.num_programs()));
  for (size_t i = 0; i < n_rows; ++i) {
    program_rows[static_cast<size_t>(data.group[i])].push_back(static_cast<int>(i));
  }

  // Base score: weighted mean label spread across the average row count.
  double wy = 0.0;
  double w = 0.0;
  for (int p = 0; p < data.num_programs(); ++p) {
    wy += data.weights[static_cast<size_t>(p)] * data.labels[static_cast<size_t>(p)];
    w += data.weights[static_cast<size_t>(p)];
  }
  double mean_label = w > 0.0 ? wy / w : 0.0;
  base_score_ = mean_label;

  std::vector<double> program_pred(static_cast<size_t>(data.num_programs()), base_score_);
  std::vector<double> grad(n_rows);
  std::vector<double> hess(n_rows);
  for (int t = 0; t < params_.num_trees; ++t) {
    for (size_t i = 0; i < n_rows; ++i) {
      int p = data.group[i];
      double wp = data.weights[static_cast<size_t>(p)];
      double residual = program_pred[static_cast<size_t>(p)] -
                        data.labels[static_cast<size_t>(p)];
      grad[i] = 2.0 * wp * residual;
      hess[i] = 2.0 * wp;
    }
    Tree tree = TreeBuilder(binned, n_rows, bins, grad, hess, params_).Build();
    // Update program predictions.
    bool useful = false;
    for (int p = 0; p < data.num_programs(); ++p) {
      double delta = 0.0;
      for (int i : program_rows[static_cast<size_t>(p)]) {
        delta += tree.PredictRow(data.rows.row(static_cast<size_t>(i)));
      }
      if (delta != 0.0) {
        useful = true;
      }
      program_pred[static_cast<size_t>(p)] += params_.learning_rate * delta;
    }
    trees_.push_back(std::move(tree));
    if (!useful) {
      break;  // converged: the tree is a stump predicting zero
    }
  }
  forest_.Compile(trees_, params_.learning_rate);
}

double Gbdt::PredictRow(const float* row) const {
  double score = 0.0;
  for (const Tree& tree : trees_) {
    score += params_.learning_rate * tree.PredictRow(row);
  }
  return score;
}

void Gbdt::PredictStatementRows(const float* const* rows, size_t n, double* out) const {
  forest_.PredictRows(rows, n, out);
}

double Gbdt::PredictProgram(const std::vector<std::vector<float>>& rows) const {
  double score = base_score_;
  for (const auto& row : rows) {
    score += PredictRow(row);
  }
  return score;
}

namespace {
// Decoder sanity bounds: far beyond any trainable model, small enough to
// reject allocation bombs from corrupted input.
constexpr uint64_t kMaxDecodedTrees = 1u << 20;
constexpr uint64_t kMaxDecodedNodes = 1u << 22;
}  // namespace

void Gbdt::EncodeTo(ByteWriter* w) const {
  w->PutZigzag(params_.num_trees);
  w->PutZigzag(params_.max_depth);
  w->PutF64(params_.learning_rate);
  w->PutF64(params_.lambda);
  w->PutZigzag(params_.max_bins);
  w->PutZigzag(params_.min_rows_per_leaf);
  w->PutF64(params_.min_gain);
  w->PutF64(base_score_);
  w->PutVarint(trees_.size());
  for (const Tree& tree : trees_) {
    w->PutVarint(tree.nodes.size());
    for (const TreeNode& node : tree.nodes) {
      w->PutZigzag(node.feature);
      w->PutF32(node.threshold);
      w->PutZigzag(node.left);
      w->PutZigzag(node.right);
      w->PutF64(node.value);
    }
  }
}

bool Gbdt::DecodeFrom(ByteReader* r) {
  GbdtParams params;
  params.num_trees = static_cast<int>(r->GetZigzag());
  params.max_depth = static_cast<int>(r->GetZigzag());
  params.learning_rate = r->GetF64();
  params.lambda = r->GetF64();
  params.max_bins = static_cast<int>(r->GetZigzag());
  params.min_rows_per_leaf = static_cast<int>(r->GetZigzag());
  params.min_gain = r->GetF64();
  double base_score = r->GetF64();
  uint64_t num_trees = r->GetVarint();
  if (!r->ok() || num_trees > kMaxDecodedTrees || !std::isfinite(base_score) ||
      params.max_bins < 2 || params.max_bins > 256) {
    r->Fail();
    return false;
  }
  std::vector<Tree> trees(num_trees);
  for (Tree& tree : trees) {
    uint64_t num_nodes = r->GetVarint();
    if (!r->ok() || num_nodes > kMaxDecodedNodes) {
      r->Fail();
      return false;
    }
    tree.nodes.resize(num_nodes);
    for (TreeNode& node : tree.nodes) {
      node.feature = static_cast<int>(r->GetZigzag());
      node.threshold = r->GetF32();
      node.left = static_cast<int>(r->GetZigzag());
      node.right = static_cast<int>(r->GetZigzag());
      node.value = r->GetF64();
      if (!r->ok() || node.feature < -1 || !std::isfinite(node.value)) {
        r->Fail();
        return false;
      }
      // Internal nodes must reference in-range children (leaves carry -1/-1);
      // an out-of-range child would send inference walking wild memory.
      bool is_leaf = node.feature == -1;
      int n = static_cast<int>(num_nodes);
      if (!is_leaf && (node.left < 0 || node.left >= n || node.right < 0 || node.right >= n)) {
        r->Fail();
        return false;
      }
    }
  }
  params_ = params;
  base_score_ = base_score;
  trees_ = std::move(trees);
  forest_.Compile(trees_, params_.learning_rate);
  return true;
}

}  // namespace ansor
