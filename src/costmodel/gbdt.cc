#include "src/costmodel/gbdt.h"

#include <algorithm>
#include <cmath>

#include "src/support/logging.h"

namespace ansor {
namespace {

// Per-feature histogram bin edges computed from (sub-sampled) quantiles.
struct BinMap {
  // edges[f] sorted ascending; bin(x) = upper_bound index.
  std::vector<std::vector<float>> edges;

  uint8_t BinOf(int feature, float x) const {
    const std::vector<float>& e = edges[static_cast<size_t>(feature)];
    return static_cast<uint8_t>(std::upper_bound(e.begin(), e.end(), x) - e.begin());
  }
};

BinMap BuildBins(const std::vector<std::vector<float>>& rows, int max_bins) {
  size_t dim = rows.empty() ? 0 : rows[0].size();
  BinMap bins;
  bins.edges.resize(dim);
  std::vector<float> values;
  values.reserve(rows.size());
  for (size_t f = 0; f < dim; ++f) {
    values.clear();
    for (const auto& row : rows) {
      values.push_back(row[f]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::vector<float>& edges = bins.edges[f];
    if (static_cast<int>(values.size()) <= max_bins) {
      // One bin per distinct value: edges between consecutive values.
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        edges.push_back(0.5f * (values[i] + values[i + 1]));
      }
    } else {
      for (int b = 1; b < max_bins; ++b) {
        size_t idx = values.size() * static_cast<size_t>(b) / static_cast<size_t>(max_bins);
        float edge = values[idx];
        if (edges.empty() || edge > edges.back()) {
          edges.push_back(edge);
        }
      }
    }
  }
  return bins;
}

struct SplitResult {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // go left when bin(x) <= bin
  float threshold = 0.0f;
};

class TreeBuilder {
 public:
  TreeBuilder(const std::vector<std::vector<float>>& rows,
              const std::vector<std::vector<uint8_t>>& binned, const BinMap& bins,
              const std::vector<double>& grad, const std::vector<double>& hess,
              const GbdtParams& params)
      : rows_(rows), binned_(binned), bins_(bins), grad_(grad), hess_(hess),
        params_(params) {}

  Tree Build() {
    std::vector<int> all(rows_.size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<int>(i);
    }
    BuildNode(all, 0);
    return std::move(tree_);
  }

 private:
  int BuildNode(const std::vector<int>& rows, int depth) {
    double g = 0.0;
    double h = 0.0;
    for (int i : rows) {
      g += grad_[static_cast<size_t>(i)];
      h += hess_[static_cast<size_t>(i)];
    }
    int node_id = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    // Newton step leaf value.
    tree_.nodes[static_cast<size_t>(node_id)].value = -g / (h + params_.lambda);

    if (depth >= params_.max_depth ||
        static_cast<int>(rows.size()) < 2 * params_.min_rows_per_leaf) {
      return node_id;
    }
    SplitResult best = FindBestSplit(rows, g, h);
    if (best.feature < 0) {
      return node_id;
    }
    std::vector<int> left;
    std::vector<int> right;
    for (int i : rows) {
      if (binned_[static_cast<size_t>(i)][static_cast<size_t>(best.feature)] <=
          best.bin) {
        left.push_back(i);
      } else {
        right.push_back(i);
      }
    }
    if (static_cast<int>(left.size()) < params_.min_rows_per_leaf ||
        static_cast<int>(right.size()) < params_.min_rows_per_leaf) {
      return node_id;
    }
    int left_id = BuildNode(left, depth + 1);
    int right_id = BuildNode(right, depth + 1);
    TreeNode& node = tree_.nodes[static_cast<size_t>(node_id)];
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.left = left_id;
    node.right = right_id;
    return node_id;
  }

  SplitResult FindBestSplit(const std::vector<int>& rows, double g_total, double h_total) {
    SplitResult best;
    size_t dim = bins_.edges.size();
    double parent_score = g_total * g_total / (h_total + params_.lambda);
    std::vector<double> g_hist;
    std::vector<double> h_hist;
    for (size_t f = 0; f < dim; ++f) {
      size_t n_bins = bins_.edges[f].size() + 1;
      if (n_bins < 2) {
        continue;
      }
      g_hist.assign(n_bins, 0.0);
      h_hist.assign(n_bins, 0.0);
      for (int i : rows) {
        uint8_t b = binned_[static_cast<size_t>(i)][f];
        g_hist[b] += grad_[static_cast<size_t>(i)];
        h_hist[b] += hess_[static_cast<size_t>(i)];
      }
      double gl = 0.0;
      double hl = 0.0;
      for (size_t b = 0; b + 1 < n_bins; ++b) {
        gl += g_hist[b];
        hl += h_hist[b];
        double gr = g_total - gl;
        double hr = h_total - hl;
        if (hl <= 0.0 || hr <= 0.0) {
          continue;
        }
        double gain = gl * gl / (hl + params_.lambda) + gr * gr / (hr + params_.lambda) -
                      parent_score;
        if (gain > best.gain + params_.min_gain) {
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.bin = static_cast<int>(b);
          best.threshold = bins_.edges[f][b];
        }
      }
    }
    return best;
  }

  const std::vector<std::vector<float>>& rows_;
  const std::vector<std::vector<uint8_t>>& binned_;
  const BinMap& bins_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const GbdtParams& params_;
  Tree tree_;
};

}  // namespace

double Tree::PredictRow(const std::vector<float>& row) const {
  if (nodes.empty()) {
    return 0.0;
  }
  int cur = 0;
  for (;;) {
    const TreeNode& node = nodes[static_cast<size_t>(cur)];
    if (node.feature < 0) {
      return node.value;
    }
    cur = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left : node.right;
  }
}

void Gbdt::Train(const GbdtDataset& data) {
  trees_.clear();
  base_score_ = 0.0;
  size_t n_rows = data.rows.size();
  if (n_rows == 0 || data.num_programs() == 0) {
    return;
  }
  CHECK_EQ(data.group.size(), n_rows);
  CHECK_EQ(data.weights.size(), data.labels.size());

  BinMap bins = BuildBins(data.rows, params_.max_bins);
  std::vector<std::vector<uint8_t>> binned(n_rows);
  size_t dim = data.rows[0].size();
  for (size_t i = 0; i < n_rows; ++i) {
    binned[i].resize(dim);
    for (size_t f = 0; f < dim; ++f) {
      binned[i][f] = bins.BinOf(static_cast<int>(f), data.rows[i][f]);
    }
  }

  // Rows per program (for the sum-structured prediction).
  std::vector<std::vector<int>> program_rows(static_cast<size_t>(data.num_programs()));
  for (size_t i = 0; i < n_rows; ++i) {
    program_rows[static_cast<size_t>(data.group[i])].push_back(static_cast<int>(i));
  }

  // Base score: weighted mean label spread across the average row count.
  double wy = 0.0;
  double w = 0.0;
  for (int p = 0; p < data.num_programs(); ++p) {
    wy += data.weights[static_cast<size_t>(p)] * data.labels[static_cast<size_t>(p)];
    w += data.weights[static_cast<size_t>(p)];
  }
  double mean_label = w > 0.0 ? wy / w : 0.0;
  base_score_ = mean_label;

  std::vector<double> program_pred(static_cast<size_t>(data.num_programs()), base_score_);
  std::vector<double> grad(n_rows);
  std::vector<double> hess(n_rows);
  for (int t = 0; t < params_.num_trees; ++t) {
    for (size_t i = 0; i < n_rows; ++i) {
      int p = data.group[i];
      double wp = data.weights[static_cast<size_t>(p)];
      double residual = program_pred[static_cast<size_t>(p)] -
                        data.labels[static_cast<size_t>(p)];
      grad[i] = 2.0 * wp * residual;
      hess[i] = 2.0 * wp;
    }
    Tree tree = TreeBuilder(data.rows, binned, bins, grad, hess, params_).Build();
    // Update program predictions.
    bool useful = false;
    for (int p = 0; p < data.num_programs(); ++p) {
      double delta = 0.0;
      for (int i : program_rows[static_cast<size_t>(p)]) {
        delta += tree.PredictRow(data.rows[static_cast<size_t>(i)]);
      }
      if (delta != 0.0) {
        useful = true;
      }
      program_pred[static_cast<size_t>(p)] += params_.learning_rate * delta;
    }
    trees_.push_back(std::move(tree));
    if (!useful) {
      break;  // converged: the tree is a stump predicting zero
    }
  }
}

double Gbdt::PredictRow(const std::vector<float>& row) const {
  double score = 0.0;
  for (const Tree& tree : trees_) {
    score += params_.learning_rate * tree.PredictRow(row);
  }
  return score;
}

double Gbdt::PredictProgram(const std::vector<std::vector<float>>& rows) const {
  double score = base_score_;
  for (const auto& row : rows) {
    score += PredictRow(row);
  }
  return score;
}

}  // namespace ansor
