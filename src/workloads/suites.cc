#include "src/workloads/suites.h"

namespace ansor {
namespace {

SearchTask Task(const std::string& name, ComputeDAG dag, int weight, const std::string& tag) {
  return MakeSearchTask(name, std::move(dag), weight, tag);
}

}  // namespace

std::vector<OpBenchCase> SingleOpSuite(int64_t batch) {
  int64_t n = batch;
  std::vector<OpBenchCase> suite;
  // C1D: temporal convolutions from speech/sequence models.
  suite.push_back({"C1D", "l256c64k3", MakeConv1d(n, 64, 256, 64, 3, 1, 1)});
  suite.push_back({"C1D", "l128c128k3", MakeConv1d(n, 128, 128, 128, 3, 1, 1)});
  suite.push_back({"C1D", "l64c256k3s2", MakeConv1d(n, 256, 64, 256, 3, 2, 1)});
  suite.push_back({"C1D", "l256c32k7", MakeConv1d(n, 32, 256, 32, 7, 1, 3)});
  // C2D: ResNet-50 layers.
  suite.push_back({"C2D", "r56c64k3", MakeConv2d(n, 64, 56, 56, 64, 3, 3, 1, 1)});
  suite.push_back({"C2D", "r28c128k3", MakeConv2d(n, 128, 28, 28, 128, 3, 3, 1, 1)});
  suite.push_back({"C2D", "r14c256k3", MakeConv2d(n, 256, 14, 14, 256, 3, 3, 1, 1)});
  suite.push_back({"C2D", "r7c512k3", MakeConv2d(n, 512, 7, 7, 512, 3, 3, 1, 1)});
  // C3D: 3D-ResNet layers.
  suite.push_back({"C3D", "d16r28c64", MakeConv3d(n, 64, 16, 28, 28, 64, 3, 3, 3, 1, 1)});
  suite.push_back({"C3D", "d8r14c128", MakeConv3d(n, 128, 8, 14, 14, 128, 3, 3, 3, 1, 1)});
  suite.push_back({"C3D", "d4r7c256", MakeConv3d(n, 256, 4, 7, 7, 256, 3, 3, 3, 1, 1)});
  suite.push_back({"C3D", "d16r28s2", MakeConv3d(n, 64, 16, 28, 28, 128, 3, 3, 3, 2, 1)});
  // GMM: transformer / classifier matmuls (batched with n).
  suite.push_back({"GMM", "128x768x768", MakeMatmul(128, 768, 768, n)});
  suite.push_back({"GMM", "128x3072x768", MakeMatmul(128, 3072, 768, n)});
  suite.push_back({"GMM", "512x512x512", MakeMatmul(512, 512, 512, n)});
  suite.push_back({"GMM", "128x768x3072", MakeMatmul(128, 768, 3072, n)});
  // GRP: grouped convolutions (ResNeXt style).
  suite.push_back({"GRP", "r28c128g4", MakeConv2d(n, 128, 28, 28, 128, 3, 3, 1, 1, 1, 4)});
  suite.push_back({"GRP", "r14c256g8", MakeConv2d(n, 256, 14, 14, 256, 3, 3, 1, 1, 1, 8)});
  suite.push_back({"GRP", "r56c64g4", MakeConv2d(n, 64, 56, 56, 64, 3, 3, 1, 1, 1, 4)});
  suite.push_back({"GRP", "r7c512g8", MakeConv2d(n, 512, 7, 7, 512, 3, 3, 1, 1, 1, 8)});
  // DIL: dilated convolutions (semantic segmentation).
  suite.push_back({"DIL", "r56c64d2", MakeConv2d(n, 64, 56, 56, 64, 3, 3, 1, 2, 2)});
  suite.push_back({"DIL", "r28c128d2", MakeConv2d(n, 128, 28, 28, 128, 3, 3, 1, 2, 2)});
  suite.push_back({"DIL", "r14c256d4", MakeConv2d(n, 256, 14, 14, 256, 3, 3, 1, 4, 4)});
  suite.push_back({"DIL", "r28c128d4", MakeConv2d(n, 128, 28, 28, 128, 3, 3, 1, 4, 4)});
  // DEP: depthwise convolutions (MobileNet).
  suite.push_back({"DEP", "r112c32", MakeDepthwiseConv2d(n, 32, 112, 112, 3, 3, 1, 1)});
  suite.push_back({"DEP", "r56c128", MakeDepthwiseConv2d(n, 128, 56, 56, 3, 3, 1, 1)});
  suite.push_back({"DEP", "r28c256", MakeDepthwiseConv2d(n, 256, 28, 28, 3, 3, 1, 1)});
  suite.push_back({"DEP", "r14c512s2", MakeDepthwiseConv2d(n, 512, 14, 14, 3, 3, 2, 1)});
  // T2D: DCGAN generator layers.
  suite.push_back({"T2D", "r4c512", MakeTransposedConv2d(n, 512, 4, 4, 256, 4, 4, 2, 1)});
  suite.push_back({"T2D", "r8c256", MakeTransposedConv2d(n, 256, 8, 8, 128, 4, 4, 2, 1)});
  suite.push_back({"T2D", "r16c128", MakeTransposedConv2d(n, 128, 16, 16, 64, 4, 4, 2, 1)});
  suite.push_back({"T2D", "r32c64", MakeTransposedConv2d(n, 64, 32, 32, 3, 4, 4, 2, 1)});
  // CAP: capsule convolutions.
  suite.push_back({"CAP", "r14c32", MakeCapsuleConv2d(n, 32, 14, 14, 32, 3, 3, 1, 1)});
  suite.push_back({"CAP", "r7c64", MakeCapsuleConv2d(n, 64, 7, 7, 64, 3, 3, 1, 1)});
  suite.push_back({"CAP", "r28c16", MakeCapsuleConv2d(n, 16, 28, 28, 16, 3, 3, 1, 1)});
  suite.push_back({"CAP", "r14c32s2", MakeCapsuleConv2d(n, 32, 14, 14, 32, 3, 3, 2, 1)});
  // NRM: matrix 2-norm (reduction-dominated).
  suite.push_back({"NRM", "b1x65536", MakeNorm(n, 65536)});
  suite.push_back({"NRM", "b4x16384", MakeNorm(4 * n, 16384)});
  suite.push_back({"NRM", "b8x4096", MakeNorm(8 * n, 4096)});
  suite.push_back({"NRM", "b16x1024", MakeNorm(16 * n, 1024)});
  return suite;
}

std::vector<OpBenchCase> SubgraphSuite(int64_t batch) {
  int64_t n = batch;
  std::vector<OpBenchCase> suite;
  suite.push_back({"ConvLayer", "r56c64", MakeConvLayer(n, 64, 56, 56, 64, 3, 3, 1, 1)});
  suite.push_back({"ConvLayer", "r28c128", MakeConvLayer(n, 128, 28, 28, 128, 3, 3, 1, 1)});
  suite.push_back({"ConvLayer", "r14c256", MakeConvLayer(n, 256, 14, 14, 256, 3, 3, 1, 1)});
  suite.push_back({"ConvLayer", "r7c512s2", MakeConvLayer(n, 256, 14, 14, 512, 3, 3, 2, 1)});
  suite.push_back({"TBG", "s128h12d64", MakeTBG(n, 128, 12, 64)});
  suite.push_back({"TBG", "s64h8d64", MakeTBG(n, 64, 8, 64)});
  suite.push_back({"TBG", "s256h12d64", MakeTBG(n, 256, 12, 64)});
  suite.push_back({"TBG", "s128h16d32", MakeTBG(n, 128, 16, 32)});
  return suite;
}

NetworkTasks ResNet50Tasks(int64_t batch) {
  int64_t n = batch;
  NetworkTasks net;
  net.name = "ResNet-50";
  // Representative unique conv layers with occurrence weights (56/28/14/7
  // stages, 1x1 reduce/expand + 3x3 bottleneck convs + the stem).
  net.tasks.push_back(
      Task("stem7x7", MakeConvLayer(n, 3, 224, 224, 64, 7, 7, 2, 3), 1, "conv2d"));
  net.tasks.push_back(
      Task("c56_1x1_64", MakeConvLayer(n, 64, 56, 56, 64, 1, 1, 1, 0), 6, "conv2d"));
  net.tasks.push_back(
      Task("c56_3x3_64", MakeConvLayer(n, 64, 56, 56, 64, 3, 3, 1, 1), 3, "conv2d"));
  net.tasks.push_back(
      Task("c56_1x1_256", MakeConvLayer(n, 64, 56, 56, 256, 1, 1, 1, 0), 4, "conv2d"));
  net.tasks.push_back(
      Task("c28_3x3_128", MakeConvLayer(n, 128, 28, 28, 128, 3, 3, 1, 1), 4, "conv2d"));
  net.tasks.push_back(
      Task("c28_1x1_512", MakeConvLayer(n, 128, 28, 28, 512, 1, 1, 1, 0), 9, "conv2d"));
  net.tasks.push_back(
      Task("c14_3x3_256", MakeConvLayer(n, 256, 14, 14, 256, 3, 3, 1, 1), 6, "conv2d"));
  net.tasks.push_back(
      Task("c14_1x1_1024", MakeConvLayer(n, 256, 14, 14, 1024, 1, 1, 1, 0), 13, "conv2d"));
  net.tasks.push_back(
      Task("c7_3x3_512", MakeConvLayer(n, 512, 7, 7, 512, 3, 3, 1, 1), 3, "conv2d"));
  net.tasks.push_back(
      Task("c7_1x1_2048", MakeConvLayer(n, 512, 7, 7, 2048, 1, 1, 1, 0), 6, "conv2d"));
  net.tasks.push_back(Task("fc1000", MakeDense(n, 2048, 1000), 1, "dense"));
  return net;
}

NetworkTasks MobileNetV2Tasks(int64_t batch) {
  int64_t n = batch;
  NetworkTasks net;
  net.name = "MobileNet-V2";
  net.tasks.push_back(
      Task("stem3x3", MakeConvLayer(n, 3, 224, 224, 32, 3, 3, 2, 1), 1, "conv2d"));
  net.tasks.push_back(
      Task("dw112c32", MakeDepthwiseConv2d(n, 32, 112, 112, 3, 3, 1, 1), 1, "dwconv"));
  net.tasks.push_back(
      Task("pw112_32_16", MakeConvLayer(n, 32, 112, 112, 16, 1, 1, 1, 0), 1, "conv2d"));
  net.tasks.push_back(
      Task("pw56_24_144", MakeConvLayer(n, 24, 56, 56, 144, 1, 1, 1, 0), 4, "conv2d"));
  net.tasks.push_back(
      Task("dw56c144", MakeDepthwiseConv2d(n, 144, 56, 56, 3, 3, 1, 1), 2, "dwconv"));
  net.tasks.push_back(
      Task("pw28_32_192", MakeConvLayer(n, 32, 28, 28, 192, 1, 1, 1, 0), 6, "conv2d"));
  net.tasks.push_back(
      Task("dw28c192", MakeDepthwiseConv2d(n, 192, 28, 28, 3, 3, 1, 1), 3, "dwconv"));
  net.tasks.push_back(
      Task("pw14_64_384", MakeConvLayer(n, 64, 14, 14, 384, 1, 1, 1, 0), 8, "conv2d"));
  net.tasks.push_back(
      Task("dw14c384", MakeDepthwiseConv2d(n, 384, 14, 14, 3, 3, 1, 1), 4, "dwconv"));
  net.tasks.push_back(
      Task("pw7_160_960", MakeConvLayer(n, 160, 7, 7, 960, 1, 1, 1, 0), 5, "conv2d"));
  net.tasks.push_back(
      Task("dw7c960", MakeDepthwiseConv2d(n, 960, 7, 7, 3, 3, 1, 1), 3, "dwconv"));
  net.tasks.push_back(Task("fc1000", MakeDense(n, 1280, 1000), 1, "dense"));
  return net;
}

NetworkTasks ResNet18_3DTasks(int64_t batch) {
  int64_t n = batch;
  NetworkTasks net;
  net.name = "3D-ResNet-18";
  net.tasks.push_back(
      Task("c3d_16r56_64", MakeConv3d(n, 64, 16, 56, 56, 64, 3, 3, 3, 1, 1), 4, "conv3d"));
  net.tasks.push_back(
      Task("c3d_8r28_128", MakeConv3d(n, 128, 8, 28, 28, 128, 3, 3, 3, 1, 1), 3, "conv3d"));
  net.tasks.push_back(
      Task("c3d_8r28_s2", MakeConv3d(n, 64, 16, 56, 56, 128, 3, 3, 3, 2, 1), 1, "conv3d"));
  net.tasks.push_back(
      Task("c3d_4r14_256", MakeConv3d(n, 256, 4, 14, 14, 256, 3, 3, 3, 1, 1), 3, "conv3d"));
  net.tasks.push_back(
      Task("c3d_2r7_512", MakeConv3d(n, 512, 2, 7, 7, 512, 3, 3, 3, 1, 1), 3, "conv3d"));
  net.tasks.push_back(Task("fc400", MakeDense(n, 512, 400), 1, "dense"));
  return net;
}

NetworkTasks DcganTasks(int64_t batch) {
  int64_t n = batch;
  NetworkTasks net;
  net.name = "DCGAN";
  net.tasks.push_back(Task("fc_project", MakeDense(n, 100, 512 * 4 * 4), 1, "dense"));
  net.tasks.push_back(
      Task("t2d_4_512", MakeTransposedConv2d(n, 512, 4, 4, 256, 4, 4, 2, 1), 1, "t2d"));
  net.tasks.push_back(
      Task("t2d_8_256", MakeTransposedConv2d(n, 256, 8, 8, 128, 4, 4, 2, 1), 1, "t2d"));
  net.tasks.push_back(
      Task("t2d_16_128", MakeTransposedConv2d(n, 128, 16, 16, 64, 4, 4, 2, 1), 1, "t2d"));
  net.tasks.push_back(
      Task("t2d_32_64", MakeTransposedConv2d(n, 64, 32, 32, 3, 4, 4, 2, 1), 1, "t2d"));
  return net;
}

NetworkTasks BertTasks(int64_t batch) {
  int64_t n = batch;
  NetworkTasks net;
  net.name = "BERT";
  // 12 layers of: QKV projections + attention output (768x768 GMMs), the
  // attention score TBG, and the two FFN GMMs.
  net.tasks.push_back(Task("qkv_768", MakeMatmul(128, 768, 768, n), 48, "matmul"));
  net.tasks.push_back(Task("attn_tbg", MakeTBG(n, 128, 12, 64), 12, "tbg"));
  net.tasks.push_back(Task("ffn_up", MakeMatmul(128, 3072, 768, n), 12, "matmul"));
  net.tasks.push_back(Task("ffn_down", MakeMatmul(128, 768, 3072, n), 12, "matmul"));
  return net;
}

std::vector<NetworkTasks> AllNetworks(int64_t batch) {
  return {ResNet50Tasks(batch), MobileNetV2Tasks(batch), ResNet18_3DTasks(batch),
          DcganTasks(batch), BertTasks(batch)};
}

}  // namespace ansor
