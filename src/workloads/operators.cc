#include "src/workloads/operators.h"

#include "src/support/logging.h"

namespace ansor {
namespace {

int64_t ConvOut(int64_t size, int64_t kernel, int64_t stride, int64_t pad,
                int64_t dilation = 1) {
  return (size + 2 * pad - dilation * (kernel - 1) - 1) / stride + 1;
}

// Zero-padding stage: pad[n, c, y, x] = in bounds ? data[n, c, y-p, x-p] : 0.
Tensor Pad2d(const Tensor& data, int64_t pad) {
  const auto& s = data.shape();
  return Compute("pad", {s[0], s[1], s[2] + 2 * pad, s[3] + 2 * pad},
                 [&](const std::vector<Expr>& i) {
                   Expr cond = (i[2] >= IntImm(pad)) && (i[2] < IntImm(s[2] + pad)) &&
                               (i[3] >= IntImm(pad)) && (i[3] < IntImm(s[3] + pad));
                   return Select(cond,
                                 data(i[0], i[1], i[2] - IntImm(pad), i[3] - IntImm(pad)),
                                 FloatImm(0.0));
                 });
}

}  // namespace

ComputeDAG MakeConv1d(int64_t n, int64_t ci, int64_t l, int64_t co, int64_t kernel,
                      int64_t stride, int64_t pad) {
  Tensor data = Placeholder("data", {n, ci, l});
  Tensor weight = ConstantPlaceholder("weight", {co, ci, kernel});
  std::vector<Tensor> tensors = {data, weight};
  Tensor input = data;
  if (pad > 0) {
    input = Compute("pad", {n, ci, l + 2 * pad}, [&](const std::vector<Expr>& i) {
      Expr cond = (i[2] >= IntImm(pad)) && (i[2] < IntImm(l + pad));
      return Select(cond, data(i[0], i[1], i[2] - IntImm(pad)), FloatImm(0.0));
    });
    tensors.push_back(input);
  }
  int64_t lo = ConvOut(l, kernel, stride, pad);
  Tensor out = Compute("conv1d", {n, co, lo}, [&](const std::vector<Expr>& i) {
    Expr rc = ReduceAxis(ci, "rc");
    Expr rk = ReduceAxis(kernel, "rk");
    return Sum(input(i[0], rc, i[2] * IntImm(stride) + rk) * weight(i[1], rc, rk),
               {rc, rk});
  });
  tensors.push_back(out);
  return ComputeDAG(tensors);
}

ComputeDAG MakeConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co, int64_t kh,
                      int64_t kw, int64_t stride, int64_t pad, int64_t dilation,
                      int64_t groups) {
  CHECK_EQ(ci % groups, 0);
  CHECK_EQ(co % groups, 0);
  int64_t cig = ci / groups;
  int64_t cog = co / groups;
  Tensor data = Placeholder("data", {n, ci, h, w});
  Tensor weight = ConstantPlaceholder("weight", {co, cig, kh, kw});
  std::vector<Tensor> tensors = {data, weight};
  Tensor input = data;
  if (pad > 0) {
    input = Pad2d(data, pad);
    tensors.push_back(input);
  }
  int64_t ho = ConvOut(h, kh, stride, pad, dilation);
  int64_t wo = ConvOut(w, kw, stride, pad, dilation);
  Tensor out = Compute("conv2d", {n, co, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr rc = ReduceAxis(cig, "rc");
    Expr ry = ReduceAxis(kh, "ry");
    Expr rx = ReduceAxis(kw, "rx");
    Expr channel = groups == 1
                       ? Expr(rc)
                       : (i[1] / IntImm(cog)) * IntImm(cig) + rc;
    return Sum(input(i[0], channel, i[2] * IntImm(stride) + Expr(ry) * IntImm(dilation),
                     i[3] * IntImm(stride) + Expr(rx) * IntImm(dilation)) *
                   weight(i[1], rc, ry, rx),
               {rc, ry, rx});
  });
  tensors.push_back(out);
  return ComputeDAG(tensors);
}

ComputeDAG MakeConv3d(int64_t n, int64_t ci, int64_t d, int64_t h, int64_t w, int64_t co,
                      int64_t kd, int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  Tensor data = Placeholder("data", {n, ci, d, h, w});
  Tensor weight = ConstantPlaceholder("weight", {co, ci, kd, kh, kw});
  std::vector<Tensor> tensors = {data, weight};
  Tensor input = data;
  if (pad > 0) {
    input = Compute(
        "pad", {n, ci, d + 2 * pad, h + 2 * pad, w + 2 * pad},
        [&](const std::vector<Expr>& i) {
          Expr cond = (i[2] >= IntImm(pad)) && (i[2] < IntImm(d + pad)) &&
                      (i[3] >= IntImm(pad)) && (i[3] < IntImm(h + pad)) &&
                      (i[4] >= IntImm(pad)) && (i[4] < IntImm(w + pad));
          return Select(cond,
                        data(i[0], i[1], i[2] - IntImm(pad), i[3] - IntImm(pad),
                             i[4] - IntImm(pad)),
                        FloatImm(0.0));
        });
    tensors.push_back(input);
  }
  int64_t do_ = ConvOut(d, kd, stride, pad);
  int64_t ho = ConvOut(h, kh, stride, pad);
  int64_t wo = ConvOut(w, kw, stride, pad);
  Tensor out = Compute("conv3d", {n, co, do_, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr rc = ReduceAxis(ci, "rc");
    Expr rz = ReduceAxis(kd, "rz");
    Expr ry = ReduceAxis(kh, "ry");
    Expr rx = ReduceAxis(kw, "rx");
    return Sum(input(i[0], rc, i[2] * IntImm(stride) + rz, i[3] * IntImm(stride) + ry,
                     i[4] * IntImm(stride) + rx) *
                   weight(i[1], rc, rz, ry, rx),
               {rc, rz, ry, rx});
  });
  tensors.push_back(out);
  return ComputeDAG(tensors);
}

ComputeDAG MakeDepthwiseConv2d(int64_t n, int64_t c, int64_t h, int64_t w, int64_t kh,
                               int64_t kw, int64_t stride, int64_t pad) {
  Tensor data = Placeholder("data", {n, c, h, w});
  Tensor weight = ConstantPlaceholder("weight", {c, kh, kw});
  std::vector<Tensor> tensors = {data, weight};
  Tensor input = data;
  if (pad > 0) {
    input = Pad2d(data, pad);
    tensors.push_back(input);
  }
  int64_t ho = ConvOut(h, kh, stride, pad);
  int64_t wo = ConvOut(w, kw, stride, pad);
  Tensor out = Compute("dwconv2d", {n, c, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr ry = ReduceAxis(kh, "ry");
    Expr rx = ReduceAxis(kw, "rx");
    return Sum(input(i[0], i[1], i[2] * IntImm(stride) + ry, i[3] * IntImm(stride) + rx) *
                   weight(i[1], ry, rx),
               {ry, rx});
  });
  tensors.push_back(out);
  return ComputeDAG(tensors);
}

ComputeDAG MakeTransposedConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                                int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  // out[n, co, y, x] = sum_{ci, ky, kx} sel((y+p-ky) % s == 0 && in bounds,
  //     data[n, ci, (y+p-ky)/s, (x+p-kx)/s], 0) * weight[ci, co, ky, kx]
  Tensor data = Placeholder("data", {n, ci, h, w});
  Tensor weight = ConstantPlaceholder("weight", {ci, co, kh, kw});
  int64_t ho = (h - 1) * stride - 2 * pad + kh;
  int64_t wo = (w - 1) * stride - 2 * pad + kw;
  Tensor out = Compute("t2d", {n, co, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr rc = ReduceAxis(ci, "rc");
    Expr ry = ReduceAxis(kh, "ry");
    Expr rx = ReduceAxis(kw, "rx");
    Expr ys = i[2] + IntImm(pad) - ry;
    Expr xs = i[3] + IntImm(pad) - rx;
    Expr cond = (ys % IntImm(stride) == IntImm(0)) && (xs % IntImm(stride) == IntImm(0)) &&
                (ys >= IntImm(0)) && (ys < IntImm(h * stride)) && (xs >= IntImm(0)) &&
                (xs < IntImm(w * stride));
    Expr value = data(i[0], rc, Min(Max(ys / IntImm(stride), IntImm(0)), IntImm(h - 1)),
                      Min(Max(xs / IntImm(stride), IntImm(0)), IntImm(w - 1))) *
                 weight(rc, i[1], ry, rx);
    return Sum(Select(cond, value, FloatImm(0.0)), {rc, ry, rx});
  });
  return ComputeDAG({data, weight, out});
}

ComputeDAG MakeCapsuleConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                             int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                             int64_t capsule) {
  // NHWC layout with 4x4 pose matrices (capsule conv2d of [21]).
  Tensor data = Placeholder("data", {n, h + 2 * pad, w + 2 * pad, ci, capsule, capsule});
  Tensor weight = ConstantPlaceholder("weight", {kh, kw, ci, co, capsule, capsule});
  int64_t ho = ConvOut(h, kh, stride, pad);
  int64_t wo = ConvOut(w, kw, stride, pad);
  Tensor out = Compute(
      "capsule", {n, ho, wo, co, capsule, capsule}, [&](const std::vector<Expr>& i) {
        Expr ry = ReduceAxis(kh, "ry");
        Expr rx = ReduceAxis(kw, "rx");
        Expr rc = ReduceAxis(ci, "rc");
        Expr rcap = ReduceAxis(capsule, "rcap");
        return Sum(data(i[0], i[1] * IntImm(stride) + ry, i[2] * IntImm(stride) + rx, rc,
                        i[4], rcap) *
                       weight(ry, rx, rc, i[3], rcap, i[5]),
                   {ry, rx, rc, rcap});
      });
  return ComputeDAG({data, weight, out});
}

ComputeDAG MakeMatmul(int64_t n, int64_t m, int64_t k, int64_t b) {
  if (b == 1) {
    Tensor a = Placeholder("A", {n, k});
    Tensor bb = Placeholder("B", {k, m});
    Tensor c = Compute("matmul", {n, m}, [&](const std::vector<Expr>& i) {
      Expr r = ReduceAxis(k, "k");
      return Sum(a(i[0], r) * bb(r, i[1]), {r});
    });
    return ComputeDAG({a, bb, c});
  }
  Tensor a = Placeholder("A", {b, n, k});
  Tensor bb = Placeholder("B", {b, k, m});
  Tensor c = Compute("batch_matmul", {b, n, m}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(k, "k");
    return Sum(a(i[0], i[1], r) * bb(i[0], r, i[2]), {r});
  });
  return ComputeDAG({a, bb, c});
}

ComputeDAG MakeNorm(int64_t b, int64_t n) {
  Tensor a = Placeholder("A", {b, n});
  Tensor sq = Compute("sqsum", {b}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(n, "k");
    return Sum(a(i[0], r) * a(i[0], r), {r});
  });
  Tensor out = Compute("norm", {b}, [&](const std::vector<Expr>& i) {
    return CallIntrinsic(Intrinsic::kSqrt, {sq(i[0])});
  });
  return ComputeDAG({a, sq, out});
}

ComputeDAG MakeConvLayer(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                         int64_t kh, int64_t kw, int64_t stride, int64_t pad) {
  Tensor data = Placeholder("data", {n, ci, h, w});
  Tensor weight = ConstantPlaceholder("weight", {co, ci, kh, kw});
  Tensor scale = ConstantPlaceholder("bn_scale", {co});
  Tensor shift = ConstantPlaceholder("bn_shift", {co});
  std::vector<Tensor> tensors = {data, weight, scale, shift};
  Tensor input = data;
  if (pad > 0) {
    input = Pad2d(data, pad);
    tensors.push_back(input);
  }
  int64_t ho = ConvOut(h, kh, stride, pad);
  int64_t wo = ConvOut(w, kw, stride, pad);
  Tensor conv = Compute("conv2d", {n, co, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr rc = ReduceAxis(ci, "rc");
    Expr ry = ReduceAxis(kh, "ry");
    Expr rx = ReduceAxis(kw, "rx");
    return Sum(input(i[0], rc, i[2] * IntImm(stride) + ry, i[3] * IntImm(stride) + rx) *
                   weight(i[1], rc, ry, rx),
               {rc, ry, rx});
  });
  tensors.push_back(conv);
  // Inference batch norm folds to scale + shift; then ReLU.
  Tensor bn = Compute("bn", {n, co, ho, wo}, [&](const std::vector<Expr>& i) {
    return conv(i[0], i[1], i[2], i[3]) * scale(i[1]) + shift(i[1]);
  });
  tensors.push_back(bn);
  Tensor relu = Compute("relu", {n, co, ho, wo}, [&](const std::vector<Expr>& i) {
    return Max(bn(i[0], i[1], i[2], i[3]), FloatImm(0.0));
  });
  tensors.push_back(relu);
  return ComputeDAG(tensors);
}

ComputeDAG MakeTBG(int64_t batch, int64_t seq, int64_t heads, int64_t dim) {
  // Q, K: [batch, seq, heads, dim]; out[b, h, i, j] = sum_d Q'[...] * K'[...].
  Tensor q = Placeholder("Q", {batch, seq, heads, dim});
  Tensor k = Placeholder("K", {batch, seq, heads, dim});
  Tensor qt = Compute("Qt", {batch, heads, seq, dim}, [&](const std::vector<Expr>& i) {
    return q(i[0], i[2], i[1], i[3]);
  });
  Tensor kt = Compute("Kt", {batch, heads, dim, seq}, [&](const std::vector<Expr>& i) {
    return k(i[0], i[3], i[1], i[2]);
  });
  Tensor out = Compute("tbg", {batch, heads, seq, seq}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(dim, "d");
    return Sum(qt(i[0], i[1], i[2], r) * kt(i[0], i[1], r, i[3]), {r});
  });
  return ComputeDAG({q, k, qt, kt, out});
}

ComputeDAG MakeDense(int64_t batch, int64_t in_dim, int64_t out_dim) {
  Tensor a = Placeholder("data", {batch, in_dim});
  Tensor w = ConstantPlaceholder("weight", {out_dim, in_dim});
  Tensor bias = ConstantPlaceholder("bias", {out_dim});
  Tensor mm = Compute("dense", {batch, out_dim}, [&](const std::vector<Expr>& i) {
    Expr r = ReduceAxis(in_dim, "k");
    return Sum(a(i[0], r) * w(i[1], r), {r});
  });
  Tensor out = Compute("bias_relu", {batch, out_dim}, [&](const std::vector<Expr>& i) {
    return Max(mm(i[0], i[1]) + bias(i[1]), FloatImm(0.0));
  });
  return ComputeDAG({a, w, bias, mm, out});
}

ComputeDAG MakeMaxPool2d(int64_t n, int64_t c, int64_t h, int64_t w, int64_t kernel,
                         int64_t stride) {
  Tensor data = Placeholder("data", {n, c, h, w});
  int64_t ho = (h - kernel) / stride + 1;
  int64_t wo = (w - kernel) / stride + 1;
  Tensor out = Compute("maxpool", {n, c, ho, wo}, [&](const std::vector<Expr>& i) {
    Expr ry = ReduceAxis(kernel, "ry");
    Expr rx = ReduceAxis(kernel, "rx");
    return MaxReduce(data(i[0], i[1], i[2] * IntImm(stride) + ry,
                          i[3] * IntImm(stride) + rx),
                     {ry, rx});
  });
  return ComputeDAG({data, out});
}

ComputeDAG MakeSoftmax(int64_t rows, int64_t cols) {
  Tensor data = Placeholder("data", {rows, cols});
  Tensor row_max = Compute("row_max", {rows}, [&](const std::vector<Expr>& i) {
    Expr k = ReduceAxis(cols, "k");
    return MaxReduce(data(i[0], k), {k});
  });
  Tensor exps = Compute("exps", {rows, cols}, [&](const std::vector<Expr>& i) {
    return CallIntrinsic(Intrinsic::kExp, {data(i[0], i[1]) - row_max(i[0])});
  });
  Tensor row_sum = Compute("row_sum", {rows}, [&](const std::vector<Expr>& i) {
    Expr k = ReduceAxis(cols, "k");
    return Sum(exps(i[0], k), {k});
  });
  Tensor out = Compute("softmax", {rows, cols}, [&](const std::vector<Expr>& i) {
    return exps(i[0], i[1]) / row_sum(i[0]);
  });
  return ComputeDAG({data, row_max, exps, row_sum, out});
}

}  // namespace ansor
