// Benchmark suites mirroring the paper's evaluation setup (§7).
//
//  * SingleOpSuite  — 10 operators x 4 shape configurations (Fig. 6),
//    instantiated for a batch size.
//  * SubgraphSuite  — ConvLayer and TBG, 4 shapes each (Fig. 8).
//  * Network task sets — ResNet-50, MobileNet-V2, 3D-ResNet-18, DCGAN, BERT
//    (Figs. 9/10): each network is a list of its unique subgraph tasks with
//    occurrence weights (paper §6: ResNet-50 has 29 unique subgraphs among 50
//    convolutions; we encode the representative unique layers).
#ifndef ANSOR_SRC_WORKLOADS_SUITES_H_
#define ANSOR_SRC_WORKLOADS_SUITES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/search/search_policy.h"
#include "src/workloads/operators.h"

namespace ansor {

struct OpBenchCase {
  std::string op;     // C1D, C2D, ... NRM
  std::string shape;  // human-readable shape tag
  ComputeDAG dag;
};

// The Fig. 6 suite: for each of the 10 operators, 4 shape configurations
// drawn from common DNNs, instantiated at the given batch size.
std::vector<OpBenchCase> SingleOpSuite(int64_t batch);

// The Fig. 8 suite: ConvLayer and TBG subgraphs, 4 shapes each.
std::vector<OpBenchCase> SubgraphSuite(int64_t batch);

// A network = named weighted set of unique subgraph tasks.
struct NetworkTasks {
  std::string name;
  std::vector<SearchTask> tasks;
};

NetworkTasks ResNet50Tasks(int64_t batch);
NetworkTasks MobileNetV2Tasks(int64_t batch);
NetworkTasks ResNet18_3DTasks(int64_t batch);
NetworkTasks DcganTasks(int64_t batch);
NetworkTasks BertTasks(int64_t batch);

// All five networks of Fig. 9.
std::vector<NetworkTasks> AllNetworks(int64_t batch);

}  // namespace ansor

#endif  // ANSOR_SRC_WORKLOADS_SUITES_H_
