// Computation definitions for every operator in the paper's evaluation
// (§7.1): C1D, C2D, C3D, GMM, GRP, DIL, DEP, T2D, CAP, NRM, plus the
// subgraphs of §7.2 (ConvLayer = conv2d+bn+relu, TBG = transpose ×2 + batch
// matmul) and dense layers for BERT.
//
// Layout conventions: NCHW activations, OIHW weights, float32.
#ifndef ANSOR_SRC_WORKLOADS_OPERATORS_H_
#define ANSOR_SRC_WORKLOADS_OPERATORS_H_

#include "src/dag/compute_dag.h"

namespace ansor {

// 1D convolution (C1D).
ComputeDAG MakeConv1d(int64_t n, int64_t ci, int64_t l, int64_t co, int64_t kernel,
                      int64_t stride, int64_t pad);

// 2D convolution (C2D); dilation > 1 gives DIL, groups > 1 gives GRP.
ComputeDAG MakeConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co, int64_t kh,
                      int64_t kw, int64_t stride, int64_t pad, int64_t dilation = 1,
                      int64_t groups = 1);

// 3D convolution (C3D).
ComputeDAG MakeConv3d(int64_t n, int64_t ci, int64_t d, int64_t h, int64_t w, int64_t co,
                      int64_t kd, int64_t kh, int64_t kw, int64_t stride, int64_t pad);

// Depthwise 2D convolution (DEP).
ComputeDAG MakeDepthwiseConv2d(int64_t n, int64_t c, int64_t h, int64_t w, int64_t kh,
                               int64_t kw, int64_t stride, int64_t pad);

// Transposed 2D convolution (T2D) — the strided generator convolution of
// DCGAN; its inner select zeroes out (s-1)/s of the multiplies, which a good
// schedule removes by unrolling (§7.1).
ComputeDAG MakeTransposedConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                                int64_t kh, int64_t kw, int64_t stride, int64_t pad);

// Capsule 2D convolution (CAP): 4x4 pose-matrix convolution.
ComputeDAG MakeCapsuleConv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                             int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                             int64_t capsule = 4);

// Matrix multiplication (GMM): batched when b > 1.
ComputeDAG MakeMatmul(int64_t n, int64_t m, int64_t k, int64_t b = 1);

// Matrix 2-norm (NRM): per-row-block 2-norm with one large reduction axis
// (the rule-6 / rfactor showcase).
ComputeDAG MakeNorm(int64_t b, int64_t n);

// ConvLayer subgraph (§7.2): conv2d + inference batch-norm + ReLU.
ComputeDAG MakeConvLayer(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
                         int64_t kh, int64_t kw, int64_t stride, int64_t pad);

// TBG subgraph (§7.2): transpose + transpose + batch matmul
// (the multi-head-attention score computation).
ComputeDAG MakeTBG(int64_t batch, int64_t seq, int64_t heads, int64_t dim);

// Dense layer: matmul + bias + ReLU.
ComputeDAG MakeDense(int64_t batch, int64_t in_dim, int64_t out_dim);

// 2D max pooling (exercises max-reductions end to end).
ComputeDAG MakeMaxPool2d(int64_t n, int64_t c, int64_t h, int64_t w, int64_t kernel,
                         int64_t stride);

// Softmax over the last axis: max-reduce -> exp -> sum-reduce -> normalize
// (a four-stage DAG chaining both reduction kinds with elementwise stages).
ComputeDAG MakeSoftmax(int64_t rows, int64_t cols);

}  // namespace ansor

#endif  // ANSOR_SRC_WORKLOADS_OPERATORS_H_
