#include "src/support/logging.h"

#include <atomic>
#include <cstring>

namespace ansor {
namespace {

std::atomic<int> g_log_level{[] {
  const char* env = std::getenv("ANSOR_LOG_LEVEL");
  if (env != nullptr && std::strlen(env) > 0) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) {
      return v;
    }
  }
  return static_cast<int>(LogLevel::kInfo);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetGlobalLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace log_internal {

LogMessage::LogMessage(const char* file, int line, LogLevel level) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_log_level.load()) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

LogMessageFatal::LogMessageFatal(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

LogMessageFatal::~LogMessageFatal() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace log_internal
}  // namespace ansor
