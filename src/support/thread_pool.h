// A fixed-size worker pool for parallelizing embarrassingly parallel loops
// (batch measurement, cost-model training, population evaluation).
#ifndef ANSOR_SRC_SUPPORT_THREAD_POOL_H_
#define ANSOR_SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ansor {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Enqueues one task for asynchronous execution and returns immediately.
  // The async seam for overlapped search/measurement (Measurer::SubmitBatch):
  // the caller keeps computing while workers drain the queue. Tasks enqueued
  // during shutdown still run before the destructor joins.
  void Enqueue(std::function<void()> fn);

  // Process-wide shared pool sized to the hardware concurrency.
  static ThreadPool& Global();

  // Resolves an optional pool override: *pool when non-null, else Global().
  // Callers that accept an injected pool (e.g. for thread-count-invariance
  // tests) use this to fall back to the shared pool.
  static ThreadPool& OrGlobal(ThreadPool* pool) { return pool != nullptr ? *pool : Global(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SUPPORT_THREAD_POOL_H_
