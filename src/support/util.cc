#include "src/support/util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>

#include "src/support/logging.h"

namespace ansor {

std::vector<int64_t> Divisors(int64_t n) {
  CHECK_GT(n, 0);
  std::vector<int64_t> small;
  std::vector<int64_t> large;
  for (int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) {
        large.push_back(n / d);
      }
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  double hi = values[mid];
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

double EnvDouble(const char* name, double default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') {
    return default_value;
  }
  return std::atof(env);
}

int64_t EnvInt(const char* name, int64_t default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') {
    return default_value;
  }
  return std::atoll(env);
}

}  // namespace ansor
