// Miscellaneous numeric and string helpers shared across modules.
#ifndef ANSOR_SRC_SUPPORT_UTIL_H_
#define ANSOR_SRC_SUPPORT_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ansor {

// All divisors of n in increasing order. n must be positive.
std::vector<int64_t> Divisors(int64_t n);

// ceil(a / b) for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Combines a hash value into a seed (boost::hash_combine recipe).
inline void HashCombine(uint64_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

// Joins container elements with a separator, using operator<< per element.
template <typename Container>
std::string Join(const Container& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) {
      os << sep;
    }
    first = false;
    os << item;
  }
  return os.str();
}

// Geometric mean of positive values; returns 0 for an empty input.
double GeometricMean(const std::vector<double>& values);

// Median of values; returns 0 for an empty input.
double Median(std::vector<double> values);

double Mean(const std::vector<double>& values);

// Formats a double with the given precision (for table output).
std::string FormatDouble(double v, int precision = 3);

// Environment variable helpers with defaults.
double EnvDouble(const char* name, double default_value);
int64_t EnvInt(const char* name, int64_t default_value);

}  // namespace ansor

#endif  // ANSOR_SRC_SUPPORT_UTIL_H_
