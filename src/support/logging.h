// Lightweight logging and checking macros used throughout the library.
//
// We follow the Google style convention of aborting on violated invariants
// (CHECK) instead of throwing exceptions. LOG(level) writes a line to stderr.
#ifndef ANSOR_SRC_SUPPORT_LOGGING_H_
#define ANSOR_SRC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ansor {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Process-wide minimum level for emitted log lines. Defaults to kInfo;
// override with the ANSOR_LOG_LEVEL environment variable (0-4).
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogLevel level_;
};

// Fatal variant: prints and aborts in the destructor.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line);
  [[noreturn]] ~LogMessageFatal();

  LogMessageFatal(const LogMessageFatal&) = delete;
  LogMessageFatal& operator=(const LogMessageFatal&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct LogSink {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define ANSOR_LOG_DEBUG \
  ::ansor::log_internal::LogMessage(__FILE__, __LINE__, ::ansor::LogLevel::kDebug).stream()
#define ANSOR_LOG_INFO \
  ::ansor::log_internal::LogMessage(__FILE__, __LINE__, ::ansor::LogLevel::kInfo).stream()
#define ANSOR_LOG_WARNING \
  ::ansor::log_internal::LogMessage(__FILE__, __LINE__, ::ansor::LogLevel::kWarning).stream()
#define ANSOR_LOG_ERROR \
  ::ansor::log_internal::LogMessage(__FILE__, __LINE__, ::ansor::LogLevel::kError).stream()
#define ANSOR_LOG_FATAL \
  ::ansor::log_internal::LogMessageFatal(__FILE__, __LINE__).stream()

#define LOG(severity) ANSOR_LOG_##severity

#define CHECK(cond)                                                      \
  if (!(cond)) ::ansor::log_internal::LogMessageFatal(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define CHECK_BINARY_OP(name, op, a, b)                                       \
  if (!((a)op(b))) ::ansor::log_internal::LogMessageFatal(__FILE__, __LINE__).stream() \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) << ") "

#define CHECK_EQ(a, b) CHECK_BINARY_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) CHECK_BINARY_OP(NE, !=, a, b)
#define CHECK_LT(a, b) CHECK_BINARY_OP(LT, <, a, b)
#define CHECK_LE(a, b) CHECK_BINARY_OP(LE, <=, a, b)
#define CHECK_GT(a, b) CHECK_BINARY_OP(GT, >, a, b)
#define CHECK_GE(a, b) CHECK_BINARY_OP(GE, >=, a, b)

}  // namespace ansor

#endif  // ANSOR_SRC_SUPPORT_LOGGING_H_
