#include "src/support/rng.h"

#include <algorithm>
#include <numeric>

namespace ansor {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return Index(weights.size());
  }
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) {
      return i;
    }
  }
  // Rounding can push r to exactly `total`, falling through the scan. The
  // fallback must still honor zero weights (a zero-weight index must never
  // be returned while any positive weight exists): take the last positive.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  return weights.size() - 1;  // unreachable: total > 0 implies a positive weight
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm);
  return perm;
}

}  // namespace ansor
