// Deterministic random number generation utilities.
//
// All randomized components in the library (program sampler, evolutionary
// search, cost-model training, simulated measurement noise) draw from an
// explicitly seeded Rng instance so that runs are reproducible.
#ifndef ANSOR_SRC_SUPPORT_RNG_H_
#define ANSOR_SRC_SUPPORT_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/support/logging.h"

namespace ansor {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [0, 1).
  double Uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Uniformly picks an index into a container of the given size.
  size_t Index(size_t size) {
    CHECK_GT(size, 0u);
    return static_cast<size_t>(Int(0, static_cast<int64_t>(size) - 1));
  }

  // Picks an index according to non-negative weights (roulette selection).
  // Falls back to uniform choice when all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Returns a random permutation of {0, ..., n - 1}.
  std::vector<size_t> Permutation(size_t n);

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  // Derives an independent child generator; used to hand deterministic
  // sub-streams to worker threads.
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SUPPORT_RNG_H_
