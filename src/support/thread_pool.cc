#include "src/support/thread_pool.h"


#include "src/support/logging.h"

namespace ansor {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  // Chunk indices into roughly 4 tasks per worker to balance load without
  // excessive queue churn.
  size_t num_chunks = std::min(n, workers_.size() * 4);
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  size_t remaining = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;

  size_t scheduled = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t begin = 0; begin < n; begin += chunk) {
      size_t end = std::min(n, begin + chunk);
      ++scheduled;
      tasks_.push([&, begin, end] {
        for (size_t i = begin; i < end; ++i) {
          fn(i);
        }
        // The decrement must happen under done_mu: otherwise the waiting
        // thread can observe remaining == 0, return, and destroy done_mu on
        // its stack while this worker is still about to lock it.
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) {
          done_cv.notify_all();
        }
      });
    }
    remaining = scheduled;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ansor
