#include "src/support/thread_pool.h"

#include <atomic>
#include <memory>

#include "src/support/logging.h"

namespace ansor {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  // Dynamic chunked dispatch: workers and the calling thread all pull chunks
  // from a shared counter, so the caller participates instead of blocking
  // idle, and load balances without per-chunk queue churn. The dispatch block
  // is heap-allocated because a queued helper task can wake after every chunk
  // is claimed (and the caller has returned); such stragglers only read
  // `next_chunk`, see the range exhausted, and exit.
  size_t num_chunks = std::min(n, (workers_.size() + 1) * 4);
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  struct Dispatch {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto d = std::make_shared<Dispatch>();
  auto run_chunks = [d, &fn, n, chunk, num_chunks] {
    for (;;) {
      size_t c = d->next_chunk.fetch_add(1);
      if (c >= num_chunks) {
        return;
      }
      size_t begin = c * chunk;
      size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        fn(i);
      }
      if (d->done_chunks.fetch_add(1) + 1 == num_chunks) {
        // Notify under the lock so the caller cannot check the predicate and
        // then sleep between our increment and our notify.
        std::lock_guard<std::mutex> done_lock(d->mu);
        d->cv.notify_all();
      }
    }
  };
  size_t helpers = std::min(workers_.size(), num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      tasks_.push(run_chunks);
    }
  }
  cv_.notify_all();
  run_chunks();  // caller participates
  std::unique_lock<std::mutex> done_lock(d->mu);
  d->cv.wait(done_lock, [&] { return d->done_chunks.load() == num_chunks; });
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ansor
