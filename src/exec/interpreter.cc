#include "src/exec/interpreter.h"

#include <cmath>

#include "src/expr/eval.h"

namespace ansor {
namespace {

class Interpreter {
 public:
  Interpreter(const LoweredProgram& program,
              const std::unordered_map<std::string, std::vector<float>>& inputs)
      : program_(program) {
    for (const auto& [name, buffer] : program.buffers) {
      auto it = inputs.find(name);
      if (it != inputs.end()) {
        storage_[name] = it->second;
      } else {
        storage_[name] = std::vector<float>(static_cast<size_t>(buffer->NumElements()), 0.0f);
      }
      ctx_.buffers[name] = &storage_[name];
    }
  }

  ExecutionResult Run() {
    ExecutionResult result;
    for (const LoopTreeNodeRef& root : program_.roots) {
      Exec(*root);
    }
    if (!ctx_.error.empty()) {
      result.error = "out-of-bounds access: " + ctx_.error;
      return result;
    }
    result.ok = true;
    result.buffers = std::move(storage_);
    return result;
  }

 private:
  void Exec(const LoopTreeNode& node) {
    switch (node.kind) {
      case LoopTreeKind::kLoop: {
        int64_t var_id = node.var->var_id;
        for (int64_t i = 0; i < node.extent; ++i) {
          ctx_.vars[var_id] = i;
          for (const LoopTreeNodeRef& child : node.children) {
            Exec(*child);
          }
        }
        ctx_.vars.erase(var_id);
        return;
      }
      case LoopTreeKind::kIf: {
        if (!Evaluate(node.condition, &ctx_).AsBool()) {
          return;
        }
        for (const LoopTreeNodeRef& child : node.children) {
          Exec(*child);
        }
        return;
      }
      case LoopTreeKind::kStore: {
        std::vector<int64_t> indices;
        indices.reserve(node.indices.size());
        for (const Expr& idx : node.indices) {
          indices.push_back(Evaluate(idx, &ctx_).AsInt());
        }
        bool had_error = !ctx_.error.empty();
        int64_t flat = FlattenIndexClamped(indices, node.buffer->shape, &ctx_.error);
        if (!had_error && !ctx_.error.empty()) {
          ctx_.error = "store to " + node.buffer->name + ": " + ctx_.error;
        }
        std::vector<float>& data = storage_[node.buffer->name];
        float v = static_cast<float>(Evaluate(node.value, &ctx_).AsFloat());
        if (node.is_accumulate) {
          switch (node.reduce_kind) {
            case ReduceKind::kSum: data[static_cast<size_t>(flat)] += v; break;
            case ReduceKind::kMax:
              data[static_cast<size_t>(flat)] = std::max(data[static_cast<size_t>(flat)], v);
              break;
            case ReduceKind::kMin:
              data[static_cast<size_t>(flat)] = std::min(data[static_cast<size_t>(flat)], v);
              break;
          }
        } else {
          data[static_cast<size_t>(flat)] = v;
        }
        return;
      }
    }
  }

  const LoweredProgram& program_;
  std::unordered_map<std::string, std::vector<float>> storage_;
  EvalContext ctx_;
};

}  // namespace

ExecutionResult ExecuteProgram(
    const LoweredProgram& program,
    const std::unordered_map<std::string, std::vector<float>>& inputs) {
  if (!program.ok) {
    ExecutionResult result;
    result.error = "cannot execute failed lowering: " + program.error;
    return result;
  }
  return Interpreter(program, inputs).Run();
}

std::string VerifyAgainstNaive(const State& state, double tolerance) {
  return VerifyAgainstNaive(state, Lower(state), tolerance);
}

std::string VerifyAgainstNaive(const State& state, const LoweredProgram& program,
                               double tolerance) {
  if (!program.ok) {
    return "lowering failed: " + program.error;
  }
  const ComputeDAG* dag = state.dag();
  auto inputs = dag->RandomInputs();
  auto expected = dag->Execute(inputs);
  ExecutionResult actual = ExecuteProgram(program, inputs);
  if (!actual.ok) {
    return "execution failed: " + actual.error;
  }
  for (const std::string& out : program.output_buffers) {
    const std::vector<float>& want = expected.at(out);
    const std::vector<float>& got = actual.buffers.at(out);
    if (want.size() != got.size()) {
      return "size mismatch for " + out;
    }
    for (size_t i = 0; i < want.size(); ++i) {
      double diff = std::fabs(static_cast<double>(want[i]) - static_cast<double>(got[i]));
      double scale = std::max(1.0, std::fabs(static_cast<double>(want[i])));
      if (diff / scale > tolerance) {
        return "mismatch in " + out + " at element " + std::to_string(i) + ": expected " +
               std::to_string(want[i]) + ", got " + std::to_string(got[i]);
      }
    }
  }
  return "";
}

}  // namespace ansor
