// Interpreter for lowered programs.
//
// Executes the loop tree on real float buffers. Scheduling transforms must be
// semantics-preserving, so the interpreter's output must match the naive
// ComputeDAG execution bit-for-bit up to floating-point reassociation; the
// test suite verifies this for every transform and every sketch.
#ifndef ANSOR_SRC_EXEC_INTERPRETER_H_
#define ANSOR_SRC_EXEC_INTERPRETER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/lower/loop_tree.h"

namespace ansor {

struct ExecutionResult {
  bool ok = false;
  std::string error;
  // Storage for every buffer after execution.
  std::unordered_map<std::string, std::vector<float>> buffers;
};

// Runs the program with the given placeholder inputs.
ExecutionResult ExecuteProgram(
    const LoweredProgram& program,
    const std::unordered_map<std::string, std::vector<float>>& inputs);

// Executes the already-lowered `program` of `state` on deterministic random
// inputs and compares every DAG output against naive execution. Returns an
// empty string on success and a diagnostic otherwise. Callers holding a
// cached ProgramArtifact use this form to avoid re-lowering.
std::string VerifyAgainstNaive(const State& state, const LoweredProgram& program,
                               double tolerance = 1e-3);

// Convenience: lowers `state` first.
std::string VerifyAgainstNaive(const State& state, double tolerance = 1e-3);

}  // namespace ansor

#endif  // ANSOR_SRC_EXEC_INTERPRETER_H_
