#include "src/expr/eval.h"

#include <algorithm>
#include <cmath>

namespace ansor {
namespace {

Value EvalBinary(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_int && b.is_int) {
    int64_t x = a.i;
    int64_t y = b.i;
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(x + y);
      case BinaryOp::kSub: return Value::Int(x - y);
      case BinaryOp::kMul: return Value::Int(x * y);
      case BinaryOp::kDiv: {
        CHECK_NE(y, 0);
        // Floor division: index arithmetic must round toward -inf.
        int64_t q = x / y;
        if ((x % y != 0) && ((x < 0) != (y < 0))) {
          --q;
        }
        return Value::Int(q);
      }
      case BinaryOp::kMod: {
        CHECK_NE(y, 0);
        int64_t r = x % y;
        if (r != 0 && ((r < 0) != (y < 0))) {
          r += y;
        }
        return Value::Int(r);
      }
      case BinaryOp::kMin: return Value::Int(std::min(x, y));
      case BinaryOp::kMax: return Value::Int(std::max(x, y));
      case BinaryOp::kLt: return Value::Int(x < y);
      case BinaryOp::kLe: return Value::Int(x <= y);
      case BinaryOp::kGt: return Value::Int(x > y);
      case BinaryOp::kGe: return Value::Int(x >= y);
      case BinaryOp::kEq: return Value::Int(x == y);
      case BinaryOp::kNe: return Value::Int(x != y);
      case BinaryOp::kAnd: return Value::Int((x != 0) && (y != 0));
      case BinaryOp::kOr: return Value::Int((x != 0) || (y != 0));
    }
  }
  double x = a.AsFloat();
  double y = b.AsFloat();
  switch (op) {
    case BinaryOp::kAdd: return Value::Float(x + y);
    case BinaryOp::kSub: return Value::Float(x - y);
    case BinaryOp::kMul: return Value::Float(x * y);
    case BinaryOp::kDiv: return Value::Float(x / y);
    case BinaryOp::kMod: return Value::Float(std::fmod(x, y));
    case BinaryOp::kMin: return Value::Float(std::min(x, y));
    case BinaryOp::kMax: return Value::Float(std::max(x, y));
    case BinaryOp::kLt: return Value::Int(x < y);
    case BinaryOp::kLe: return Value::Int(x <= y);
    case BinaryOp::kGt: return Value::Int(x > y);
    case BinaryOp::kGe: return Value::Int(x >= y);
    case BinaryOp::kEq: return Value::Int(x == y);
    case BinaryOp::kNe: return Value::Int(x != y);
    case BinaryOp::kAnd: return Value::Int((x != 0.0) && (y != 0.0));
    case BinaryOp::kOr: return Value::Int((x != 0.0) || (y != 0.0));
  }
  LOG(FATAL) << "unreachable binary op";
  return Value::Float(0.0);
}

double EvalIntrinsic(Intrinsic fn, double x) {
  switch (fn) {
    case Intrinsic::kExp: return std::exp(x);
    case Intrinsic::kLog: return std::log(x);
    case Intrinsic::kSqrt: return std::sqrt(x);
    case Intrinsic::kTanh: return std::tanh(x);
    case Intrinsic::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Intrinsic::kAbs: return std::fabs(x);
    case Intrinsic::kErf: return std::erf(x);
  }
  LOG(FATAL) << "unreachable intrinsic";
  return 0.0;
}

}  // namespace

int64_t Value::AsInt() const {
  CHECK(is_int) << "expected an integer value";
  return i;
}

int64_t FlattenIndex(const std::vector<int64_t>& indices, const std::vector<int64_t>& shape) {
  CHECK_EQ(indices.size(), shape.size());
  int64_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    CHECK_GE(indices[d], 0) << "index underflow in dim " << d;
    CHECK_LT(indices[d], shape[d]) << "index overflow in dim " << d;
    flat = flat * shape[d] + indices[d];
  }
  return flat;
}

int64_t FlattenIndexClamped(const std::vector<int64_t>& indices,
                            const std::vector<int64_t>& shape, std::string* error) {
  CHECK_EQ(indices.size(), shape.size());
  int64_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    int64_t i = indices[d];
    if (i < 0 || i >= shape[d]) {
      if (error->empty()) {
        *error = "index " + std::to_string(i) + " out of range [0, " +
                 std::to_string(shape[d]) + ") in dim " + std::to_string(d);
      }
      i = std::min(std::max<int64_t>(i, 0), shape[d] - 1);
    }
    flat = flat * shape[d] + i;
  }
  return flat;
}

Value Evaluate(const Expr& e, EvalContext* ctx) {
  CHECK(e.defined());
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kIntImm:
      return Value::Int(n.int_value);
    case ExprKind::kFloatImm:
      return Value::Float(n.float_value);
    case ExprKind::kVar: {
      auto it = ctx->vars.find(n.var_id);
      CHECK(it != ctx->vars.end()) << "unbound variable " << n.var_name;
      return Value::Int(it->second);
    }
    case ExprKind::kBinary: {
      Value a = Evaluate(n.operands[0], ctx);
      Value b = Evaluate(n.operands[1], ctx);
      return EvalBinary(n.binary_op, a, b);
    }
    case ExprKind::kSelect: {
      Value cond = Evaluate(n.operands[0], ctx);
      return cond.AsBool() ? Evaluate(n.operands[1], ctx) : Evaluate(n.operands[2], ctx);
    }
    case ExprKind::kCall: {
      CHECK_EQ(n.operands.size(), 1u);
      double x = Evaluate(n.operands[0], ctx).AsFloat();
      return Value::Float(EvalIntrinsic(n.intrinsic, x));
    }
    case ExprKind::kLoad: {
      auto it = ctx->buffers.find(n.buffer->name);
      CHECK(it != ctx->buffers.end()) << "unbound buffer " << n.buffer->name;
      std::vector<int64_t> indices;
      indices.reserve(n.operands.size());
      for (const Expr& idx : n.operands) {
        indices.push_back(Evaluate(idx, ctx).AsInt());
      }
      bool had_error = !ctx->error.empty();
      int64_t flat = FlattenIndexClamped(indices, n.buffer->shape, &ctx->error);
      if (!had_error && !ctx->error.empty()) {
        ctx->error = "load of " + n.buffer->name + ": " + ctx->error;
      }
      return Value::Float(static_cast<double>((*it->second)[flat]));
    }
    case ExprKind::kReduce: {
      // Iterate the full reduction domain, combining into an accumulator.
      double acc;
      bool has_init = n.operands.size() > 1;
      if (has_init) {
        acc = Evaluate(n.operands[1], ctx).AsFloat();
      } else {
        switch (n.reduce_kind) {
          case ReduceKind::kSum: acc = 0.0; break;
          case ReduceKind::kMax: acc = -std::numeric_limits<double>::infinity(); break;
          case ReduceKind::kMin: acc = std::numeric_limits<double>::infinity(); break;
          default: acc = 0.0; break;
        }
      }
      std::vector<int64_t> extents;
      std::vector<int64_t> ids;
      for (const Expr& axis : n.reduce_axes) {
        extents.push_back(axis->var_extent);
        ids.push_back(axis->var_id);
      }
      std::vector<int64_t> point(extents.size(), 0);
      for (;;) {
        for (size_t d = 0; d < point.size(); ++d) {
          ctx->vars[ids[d]] = point[d];
        }
        double v = Evaluate(n.operands[0], ctx).AsFloat();
        switch (n.reduce_kind) {
          case ReduceKind::kSum: acc += v; break;
          case ReduceKind::kMax: acc = std::max(acc, v); break;
          case ReduceKind::kMin: acc = std::min(acc, v); break;
        }
        // Odometer increment over the reduction domain.
        size_t d = point.size();
        while (d > 0) {
          --d;
          if (++point[d] < extents[d]) {
            break;
          }
          point[d] = 0;
          if (d == 0) {
            for (size_t k = 0; k < ids.size(); ++k) {
              ctx->vars.erase(ids[k]);
            }
            return Value::Float(acc);
          }
        }
      }
    }
  }
  LOG(FATAL) << "unreachable expr kind";
  return Value::Float(0.0);
}

}  // namespace ansor
