// Tensor expression language (paper §2, Figure 1).
//
// Computations are defined declaratively: an output tensor plus an expression
// for each of its elements, possibly containing reductions. Expressions are
// immutable DAG nodes shared via shared_ptr; the Expr wrapper provides
// operator overloading so definitions read like the math in the paper, e.g.
//
//   Tensor A = Placeholder("A", {n, k});
//   Tensor B = Placeholder("B", {k, m});
//   Tensor C = Compute("C", {n, m}, [&](const std::vector<Expr>& i) {
//     Var r = ReduceAxis(k, "k");
//     return Sum(A(i[0], r) * B(r, i[1]), {r});
//   });
#ifndef ANSOR_SRC_EXPR_EXPR_H_
#define ANSOR_SRC_EXPR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/support/logging.h"

namespace ansor {

enum class ExprKind {
  kIntImm,
  kFloatImm,
  kVar,
  kBinary,
  kSelect,
  kCall,
  kLoad,
  kReduce,
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,       // float division / integer floor division depending on operand types
  kMod,       // integer modulo
  kMin,
  kMax,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

enum class ReduceKind { kSum, kMax, kMin };

// Intrinsic math calls recognized by the evaluator and the feature extractor.
enum class Intrinsic { kExp, kLog, kSqrt, kTanh, kSigmoid, kAbs, kErf };

struct ExprNode;
using ExprNodeRef = std::shared_ptr<const ExprNode>;

// A named multi-dimensional float buffer. Placeholders and compute ops each
// produce one buffer; Load nodes reference buffers directly.
struct Buffer {
  std::string name;
  std::vector<int64_t> shape;
  // Constant tensors (inference weights) may have their layout rewritten
  // freely by the compiler (paper §4.2).
  bool is_constant = false;

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape) {
      n *= d;
    }
    return n;
  }
};
using BufferRef = std::shared_ptr<const Buffer>;

// Value-semantics handle around an immutable expression node.
class Expr {
 public:
  Expr() = default;
  explicit Expr(ExprNodeRef node) : node_(std::move(node)) {}
  // Implicit conversions from literals keep computation definitions terse.
  Expr(int v);        // NOLINT(google-explicit-constructor)
  Expr(int64_t v);    // NOLINT(google-explicit-constructor)
  Expr(double v);     // NOLINT(google-explicit-constructor)

  bool defined() const { return node_ != nullptr; }
  const ExprNode* get() const { return node_.get(); }
  const ExprNode* operator->() const { return node_.get(); }
  ExprNodeRef node() const { return node_; }

  ExprKind kind() const;

 private:
  ExprNodeRef node_;
};

struct ExprNode {
  ExprKind kind;

  // kIntImm / kFloatImm
  int64_t int_value = 0;
  double float_value = 0.0;

  // kVar
  std::string var_name;
  int64_t var_id = -1;
  int64_t var_extent = -1;  // loop extent for axis vars, -1 when unknown

  // kBinary
  BinaryOp binary_op = BinaryOp::kAdd;

  // kCall
  Intrinsic intrinsic = Intrinsic::kExp;

  // kSelect: operands = {cond, true_value, false_value}
  // kBinary: operands = {lhs, rhs}
  // kCall:   operands = args
  // kLoad:   operands = indices
  // kReduce: operands = {source} (+ optional init as operands[1])
  std::vector<Expr> operands;

  // kLoad
  BufferRef buffer;

  // kReduce
  ReduceKind reduce_kind = ReduceKind::kSum;
  std::vector<Expr> reduce_axes;  // Var exprs carrying extents
};

// --- Constructors -----------------------------------------------------------

Expr IntImm(int64_t v);
Expr FloatImm(double v);

// Fresh variable with a process-unique id. extent < 0 means "unknown".
Expr MakeVar(const std::string& name, int64_t extent = -1);

// Reduction axis variable: a Var that carries its domain extent.
Expr ReduceAxis(int64_t extent, const std::string& name);

Expr Binary(BinaryOp op, Expr a, Expr b);
Expr Select(Expr cond, Expr true_value, Expr false_value);
Expr CallIntrinsic(Intrinsic fn, std::vector<Expr> args);
Expr Load(BufferRef buffer, std::vector<Expr> indices);
Expr Reduce(ReduceKind kind, Expr source, std::vector<Expr> axes, Expr init = Expr());

Expr Sum(Expr source, std::vector<Expr> axes);
Expr MaxReduce(Expr source, std::vector<Expr> axes);

// --- Operators ---------------------------------------------------------------

Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr operator%(Expr a, Expr b);
Expr operator<(Expr a, Expr b);
Expr operator<=(Expr a, Expr b);
Expr operator>(Expr a, Expr b);
Expr operator>=(Expr a, Expr b);
Expr operator==(Expr a, Expr b);
Expr operator!=(Expr a, Expr b);
Expr operator&&(Expr a, Expr b);
Expr operator||(Expr a, Expr b);
Expr Min(Expr a, Expr b);
Expr Max(Expr a, Expr b);

// --- Utilities ---------------------------------------------------------------

// Human-readable rendering of an expression.
std::string ToString(const Expr& e);

// Structural hash / equality. Variables compare by identity (var_id).
uint64_t StructuralHash(const Expr& e);
bool StructuralEqual(const Expr& a, const Expr& b);

// Variable substitution: replaces each Var whose id appears in the map.
Expr Substitute(const Expr& e, const std::function<Expr(const ExprNode&)>& lookup);

// Collects every Load node in the expression tree (pre-order).
void CollectLoads(const Expr& e, std::vector<const ExprNode*>* loads);

// Collects distinct variable ids appearing in the expression.
void CollectVars(const Expr& e, std::vector<const ExprNode*>* vars);

// True if the expression contains a Reduce node.
bool HasReduce(const Expr& e);

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_EXPR_H_
