#include "src/expr/term.h"

#include "src/support/util.h"

namespace ansor {

void FlattenAddTerms(const Expr& e, std::vector<Expr>* terms) {
  if (e.kind() == ExprKind::kBinary && e->binary_op == BinaryOp::kAdd) {
    FlattenAddTerms(e->operands[0], terms);
    FlattenAddTerms(e->operands[1], terms);
    return;
  }
  terms->push_back(e);
}

bool MatchAxisTerm(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                   AxisTerm* out) {
  out->expr = e;
  Expr cur = e;
  // Peel an optional constant multiplier.
  if (cur.kind() == ExprKind::kBinary && cur->binary_op == BinaryOp::kMul) {
    const Expr& a = cur->operands[0];
    const Expr& b = cur->operands[1];
    if (b.kind() == ExprKind::kIntImm) {
      out->multiplier = b->int_value;
      cur = a;
    } else if (a.kind() == ExprKind::kIntImm) {
      out->multiplier = a->int_value;
      cur = b;
    } else {
      return false;
    }
  }
  if (cur.kind() == ExprKind::kIntImm) {
    out->is_constant = true;
    out->constant = cur->int_value * out->multiplier;
    return true;
  }
  // Peel an optional modulo.
  int64_t mod = -1;
  if (cur.kind() == ExprKind::kBinary && cur->binary_op == BinaryOp::kMod &&
      cur->operands[1].kind() == ExprKind::kIntImm) {
    mod = cur->operands[1]->int_value;
    cur = cur->operands[0];
  }
  // Peel an optional division.
  int64_t div = 1;
  if (cur.kind() == ExprKind::kBinary && cur->binary_op == BinaryOp::kDiv &&
      cur->operands[1].kind() == ExprKind::kIntImm) {
    div = cur->operands[1]->int_value;
    cur = cur->operands[0];
  }
  if (cur.kind() != ExprKind::kVar) {
    return false;
  }
  out->var_id = cur->var_id;
  out->divisor = div;
  auto it = var_extent.find(out->var_id);
  if (it == var_extent.end()) {
    return false;
  }
  int64_t base_extent = CeilDiv(it->second, div);
  out->component_extent = mod > 0 ? std::min(mod, base_extent) : base_extent;
  return true;
}

bool DecomposeIndex(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                    std::vector<AxisTerm>* terms) {
  std::vector<Expr> parts;
  FlattenAddTerms(e, &parts);
  for (const Expr& part : parts) {
    AxisTerm term;
    if (!MatchAxisTerm(part, var_extent, &term)) {
      return false;
    }
    terms->push_back(std::move(term));
  }
  return true;
}

}  // namespace ansor
