// Affine analysis of index expressions.
//
// The feature extractor and the hardware simulator need per-access stride
// information: given a buffer index expression and a set of loop variables,
// determine the coefficient of each variable. Expressions involving
// select/min/max/div/mod (e.g. padding guards) are flagged non-affine and
// handled conservatively by callers.
#ifndef ANSOR_SRC_EXPR_AFFINE_H_
#define ANSOR_SRC_EXPR_AFFINE_H_

#include <unordered_map>
#include <vector>

#include "src/expr/expr.h"

namespace ansor {

struct AffineForm {
  bool valid = false;
  // var_id -> integer coefficient
  std::unordered_map<int64_t, int64_t> coeffs;
  int64_t constant = 0;

  // Coefficient of a variable (0 when absent).
  int64_t CoeffOf(int64_t var_id) const {
    auto it = coeffs.find(var_id);
    return it == coeffs.end() ? 0 : it->second;
  }
};

// Decomposes e into sum(coeff_i * var_i) + constant if possible.
AffineForm AnalyzeAffine(const Expr& e);

// Inclusive integer interval of the values an index expression can take.
// known == false means the analysis could not bound the expression (float
// arithmetic, loads, unbound variables); callers must be conservative.
struct ValueRange {
  bool known = false;
  int64_t min = 0;
  int64_t max = 0;

  static ValueRange Exact(int64_t v) { return ValueRange{true, v, v}; }
  static ValueRange Of(int64_t lo, int64_t hi) { return ValueRange{true, lo, hi}; }
  static ValueRange Unknown() { return ValueRange{}; }
};

// Interval analysis of an integer index expression: each variable ranges over
// [0, extent) where the extent comes from `var_extent` (falling back to the
// extent stamped on the Var node). Unlike AnalyzeAffine this handles the full
// index grammar the lowering emits — floor division, Euclidean modulo,
// min/max clamps, selects (branch union) and comparisons — matching the
// evaluator's semantics exactly, so a proven bound is a true runtime bound.
ValueRange RangeOf(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent);

// A bound on the value of a subexpression established by a dominating guard:
// min <= expr (when has_min) and expr <= max (when has_max). RangeOf applies
// a constraint to every subexpression matching `expr` structurally, so a
// guard on `x` tightens an index like `x - pad` — the padding idiom, where
// the guard condition and the guarded index share the same subtree.
struct RangeConstraint {
  Expr expr;
  bool has_min = false;
  int64_t min = 0;
  bool has_max = false;
  int64_t max = 0;
};

// Extracts the constraints implied by `cond` holding (or, with negate, by it
// failing): conjunctions of comparisons between an expression and an integer
// immediate. Negation distributes over kOr (De Morgan) but a negated
// conjunction is a disjunction and conservatively yields nothing.
void CollectRangeConstraints(const Expr& cond, bool negate, std::vector<RangeConstraint>* out);

// As RangeOf, refined by dominating guard constraints. A result with
// min > max means the constraints are unsatisfiable — the expression sits in
// dead code and never evaluates at runtime.
ValueRange RangeOf(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                   const std::vector<RangeConstraint>& constraints);

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_AFFINE_H_
