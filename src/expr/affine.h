// Affine analysis of index expressions.
//
// The feature extractor and the hardware simulator need per-access stride
// information: given a buffer index expression and a set of loop variables,
// determine the coefficient of each variable. Expressions involving
// select/min/max/div/mod (e.g. padding guards) are flagged non-affine and
// handled conservatively by callers.
#ifndef ANSOR_SRC_EXPR_AFFINE_H_
#define ANSOR_SRC_EXPR_AFFINE_H_

#include <unordered_map>

#include "src/expr/expr.h"

namespace ansor {

struct AffineForm {
  bool valid = false;
  // var_id -> integer coefficient
  std::unordered_map<int64_t, int64_t> coeffs;
  int64_t constant = 0;

  // Coefficient of a variable (0 when absent).
  int64_t CoeffOf(int64_t var_id) const {
    auto it = coeffs.find(var_id);
    return it == coeffs.end() ? 0 : it->second;
  }
};

// Decomposes e into sum(coeff_i * var_i) + constant if possible.
AffineForm AnalyzeAffine(const Expr& e);

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_AFFINE_H_
