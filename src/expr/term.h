// Term decomposition for index expressions.
//
// Split/fuse substitution produces index expressions whose additive terms each
// reference exactly one loop variable in the grammar
//   c  |  v  |  v*c  |  v/c1  |  (v/c1)%c2  |  ((v/c1)%c2)*c3  |  (v%c)*m ...
// This matcher recovers (variable, multiplier, component extent) per term; it
// is shared by the lowering pass (compute_at restriction), the access-pattern
// analysis and the feature extractor.
#ifndef ANSOR_SRC_EXPR_TERM_H_
#define ANSOR_SRC_EXPR_TERM_H_

#include <unordered_map>
#include <vector>

#include "src/expr/expr.h"

namespace ansor {

struct AxisTerm {
  bool is_constant = false;
  int64_t constant = 0;
  int64_t var_id = -1;
  int64_t multiplier = 1;
  // Number of distinct values the matched component takes.
  int64_t component_extent = 1;
  // Effective divisor applied to the variable before scaling.
  int64_t divisor = 1;
  Expr expr;
};

// Splits an expression into its top-level additive terms.
void FlattenAddTerms(const Expr& e, std::vector<Expr>* terms);

// Matches one additive term. `var_extent` maps loop var ids to loop extents
// (needed to bound component extents). Returns false for anything outside the
// grammar (e.g. select/min from padding).
bool MatchAxisTerm(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                   AxisTerm* out);

// Decomposes a full index expression into matched terms. Returns false if any
// term fails to match.
bool DecomposeIndex(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                    std::vector<AxisTerm>* terms);

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_TERM_H_
