#include "src/expr/operation.h"

#include <unordered_set>

namespace ansor {

std::vector<Expr> Operation::ReduceAxes() const {
  if (kind != OpKind::kCompute || !body.defined() || body.kind() != ExprKind::kReduce) {
    return {};
  }
  return body->reduce_axes;
}

std::vector<BufferRef> Operation::InputBuffers() const {
  std::vector<BufferRef> result;
  if (kind != OpKind::kCompute) {
    return result;
  }
  std::vector<const ExprNode*> loads;
  CollectLoads(body, &loads);
  std::unordered_set<std::string> seen;
  for (const ExprNode* load : loads) {
    if (seen.insert(load->buffer->name).second) {
      result.push_back(load->buffer);
    }
  }
  return result;
}

Tensor Placeholder(const std::string& name, std::vector<int64_t> shape) {
  auto buffer = std::make_shared<Buffer>();
  buffer->name = name;
  buffer->shape = std::move(shape);
  auto op = std::make_shared<Operation>();
  op->kind = OpKind::kPlaceholder;
  op->output = buffer;
  return Tensor(op, buffer);
}

Tensor ConstantPlaceholder(const std::string& name, std::vector<int64_t> shape) {
  Tensor t = Placeholder(name, std::move(shape));
  std::const_pointer_cast<Buffer>(t.buffer())->is_constant = true;
  return t;
}

Tensor Compute(const std::string& name, std::vector<int64_t> shape,
               const std::function<Expr(const std::vector<Expr>&)>& fn) {
  static const char* const kAxisNames[] = {"i", "j", "k", "l", "m", "n", "o", "p"};
  std::vector<Expr> axis;
  axis.reserve(shape.size());
  for (size_t d = 0; d < shape.size(); ++d) {
    CHECK_GT(shape[d], 0) << "dimension " << d << " of " << name << " must be positive";
    std::string axis_name =
        d < 8 ? std::string(kAxisNames[d]) : "ax" + std::to_string(d);
    axis.push_back(MakeVar(axis_name, shape[d]));
  }
  Expr body = fn(axis);
  CHECK(body.defined()) << "compute body for " << name << " is undefined";
  return MakeComputeOp(name, std::move(shape), std::move(axis), std::move(body));
}

Tensor MakeComputeOp(const std::string& name, std::vector<int64_t> shape,
                     std::vector<Expr> axis, Expr body) {
  CHECK_EQ(shape.size(), axis.size());
  auto buffer = std::make_shared<Buffer>();
  buffer->name = name;
  buffer->shape = std::move(shape);
  auto op = std::make_shared<Operation>();
  op->kind = OpKind::kCompute;
  op->output = buffer;
  op->axis = std::move(axis);
  op->body = std::move(body);
  return Tensor(op, buffer);
}

}  // namespace ansor
