#include "src/expr/affine.h"

#include <algorithm>

namespace ansor {
namespace {

bool Analyze(const Expr& e, AffineForm* out, int64_t scale) {
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kIntImm:
      out->constant += scale * n.int_value;
      return true;
    case ExprKind::kVar:
      out->coeffs[n.var_id] += scale;
      return true;
    case ExprKind::kBinary:
      switch (n.binary_op) {
        case BinaryOp::kAdd:
          return Analyze(n.operands[0], out, scale) && Analyze(n.operands[1], out, scale);
        case BinaryOp::kSub:
          return Analyze(n.operands[0], out, scale) && Analyze(n.operands[1], out, -scale);
        case BinaryOp::kMul: {
          // One side must be a constant integer.
          const ExprNode& a = *n.operands[0].get();
          const ExprNode& b = *n.operands[1].get();
          if (a.kind == ExprKind::kIntImm) {
            return Analyze(n.operands[1], out, scale * a.int_value);
          }
          if (b.kind == ExprKind::kIntImm) {
            return Analyze(n.operands[0], out, scale * b.int_value);
          }
          return false;
        }
        default:
          return false;
      }
    default:
      return false;
  }
}

}  // namespace

AffineForm AnalyzeAffine(const Expr& e) {
  AffineForm form;
  if (!e.defined()) {
    return form;
  }
  form.valid = Analyze(e, &form, 1);
  if (!form.valid) {
    form.coeffs.clear();
    form.constant = 0;
  }
  return form;
}

namespace {

// Floor division, matching the evaluator's integer kDiv semantics.
int64_t FloorDiv(int64_t x, int64_t y) {
  int64_t q = x / y;
  if ((x % y != 0) && ((x < 0) != (y < 0))) {
    --q;
  }
  return q;
}

ValueRange RangeBinary(BinaryOp op, const ValueRange& a, const ValueRange& b) {
  switch (op) {
    case BinaryOp::kAdd:
      return ValueRange::Of(a.min + b.min, a.max + b.max);
    case BinaryOp::kSub:
      return ValueRange::Of(a.min - b.max, a.max - b.min);
    case BinaryOp::kMul: {
      int64_t c[4] = {a.min * b.min, a.min * b.max, a.max * b.min, a.max * b.max};
      return ValueRange::Of(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
    }
    case BinaryOp::kDiv: {
      if (b.min <= 0 && b.max >= 0) {
        return ValueRange::Unknown();  // divisor interval contains zero
      }
      // FloorDiv is monotone in each argument over a zero-free divisor
      // interval, so the extremes are at the corners.
      int64_t c[4] = {FloorDiv(a.min, b.min), FloorDiv(a.min, b.max), FloorDiv(a.max, b.min),
                      FloorDiv(a.max, b.max)};
      return ValueRange::Of(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
    }
    case BinaryOp::kMod: {
      // Euclidean modulo: result lies in [0, divisor) for positive divisors.
      if (b.min <= 0) {
        return ValueRange::Unknown();
      }
      if (b.min == b.max && a.min >= 0 && a.max < b.min) {
        return a;  // modulo is the identity on the whole numerator range
      }
      return ValueRange::Of(0, b.max - 1);
    }
    case BinaryOp::kMin:
      return ValueRange::Of(std::min(a.min, b.min), std::min(a.max, b.max));
    case BinaryOp::kMax:
      return ValueRange::Of(std::max(a.min, b.min), std::max(a.max, b.max));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return ValueRange::Of(0, 1);
  }
  return ValueRange::Unknown();
}

// Intersects a computed range with every constraint matching e structurally.
// An unknown range becomes known only from a two-sided constraint. The
// intersection may come out empty (min > max): the constraints cannot all
// hold, so e sits in dead code and any interval is a sound superset of its
// (empty) runtime value set.
ValueRange ApplyConstraints(const Expr& e, ValueRange r,
                            const std::vector<RangeConstraint>& constraints) {
  for (const RangeConstraint& c : constraints) {
    if (!StructuralEqual(c.expr, e)) {
      continue;
    }
    if (!r.known) {
      if (c.has_min && c.has_max) {
        r = ValueRange::Of(c.min, c.max);
      }
      continue;
    }
    if (c.has_min) {
      r.min = std::max(r.min, c.min);
    }
    if (c.has_max) {
      r.max = std::min(r.max, c.max);
    }
  }
  return r;
}

bool Empty(const ValueRange& r) { return r.known && r.min > r.max; }

ValueRange RangeOfImpl(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                       const std::vector<RangeConstraint>& constraints) {
  if (!e.defined()) {
    return ValueRange::Unknown();
  }
  const ExprNode& n = *e.get();
  ValueRange base = ValueRange::Unknown();
  switch (n.kind) {
    case ExprKind::kIntImm:
      base = ValueRange::Exact(n.int_value);
      break;
    case ExprKind::kVar: {
      auto it = var_extent.find(n.var_id);
      int64_t extent = it != var_extent.end() ? it->second : n.var_extent;
      if (extent > 0) {
        base = ValueRange::Of(0, extent - 1);
      }
      break;
    }
    case ExprKind::kBinary: {
      ValueRange a = RangeOfImpl(n.operands[0], var_extent, constraints);
      ValueRange b = RangeOfImpl(n.operands[1], var_extent, constraints);
      if (!a.known || !b.known) {
        // Comparisons and boolean connectives are {0, 1} regardless of
        // whether their operands could be bounded.
        switch (n.binary_op) {
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
          case BinaryOp::kEq:
          case BinaryOp::kNe:
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            base = ValueRange::Of(0, 1);
            break;
          default:
            break;
        }
      } else {
        base = RangeBinary(n.binary_op, a, b);
      }
      break;
    }
    case ExprKind::kSelect: {
      // Each branch only evaluates under (resp. against) the condition, so it
      // is refined by the corresponding constraints; a branch whose
      // constraints are unsatisfiable is dead and drops out of the union.
      std::vector<RangeConstraint> on_true = constraints;
      CollectRangeConstraints(n.operands[0], /*negate=*/false, &on_true);
      std::vector<RangeConstraint> on_false = constraints;
      CollectRangeConstraints(n.operands[0], /*negate=*/true, &on_false);
      ValueRange t = RangeOfImpl(n.operands[1], var_extent, on_true);
      ValueRange f = RangeOfImpl(n.operands[2], var_extent, on_false);
      if (Empty(t)) {
        base = f;
      } else if (Empty(f)) {
        base = t;
      } else if (t.known && f.known) {
        base = ValueRange::Of(std::min(t.min, f.min), std::max(t.max, f.max));
      }
      break;
    }
    default:
      // Float immediates, intrinsic calls, loads and reductions never feed
      // integer index positions that we need to bound.
      break;
  }
  return ApplyConstraints(e, base, constraints);
}

}  // namespace

void CollectRangeConstraints(const Expr& cond, bool negate, std::vector<RangeConstraint>* out) {
  if (!cond.defined()) {
    return;
  }
  const ExprNode& n = *cond.get();
  if (n.kind != ExprKind::kBinary) {
    return;
  }
  if ((n.binary_op == BinaryOp::kAnd && !negate) || (n.binary_op == BinaryOp::kOr && negate)) {
    // cond true distributes over And; cond false over Or (De Morgan).
    CollectRangeConstraints(n.operands[0], negate, out);
    CollectRangeConstraints(n.operands[1], negate, out);
    return;
  }
  // Normalize to expr-op-constant. A constant on the left flips the
  // comparison: c < e  <=>  e > c.
  BinaryOp op = n.binary_op;
  const Expr* expr = &n.operands[0];
  const ExprNode* rhs = n.operands[1].get();
  if (rhs->kind != ExprKind::kIntImm) {
    if (n.operands[0]->kind != ExprKind::kIntImm) {
      return;
    }
    expr = &n.operands[1];
    rhs = n.operands[0].get();
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      case BinaryOp::kEq:
      case BinaryOp::kNe: break;
      default: return;
    }
  }
  if (negate) {
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGe; break;
      case BinaryOp::kLe: op = BinaryOp::kGt; break;
      case BinaryOp::kGt: op = BinaryOp::kLe; break;
      case BinaryOp::kGe: op = BinaryOp::kLt; break;
      case BinaryOp::kEq: op = BinaryOp::kNe; break;
      case BinaryOp::kNe: op = BinaryOp::kEq; break;
      default: return;
    }
  }
  int64_t c = rhs->int_value;
  RangeConstraint constraint;
  constraint.expr = *expr;
  switch (op) {
    case BinaryOp::kLt: constraint.has_max = true; constraint.max = c - 1; break;
    case BinaryOp::kLe: constraint.has_max = true; constraint.max = c; break;
    case BinaryOp::kGt: constraint.has_min = true; constraint.min = c + 1; break;
    case BinaryOp::kGe: constraint.has_min = true; constraint.min = c; break;
    case BinaryOp::kEq:
      constraint.has_min = constraint.has_max = true;
      constraint.min = constraint.max = c;
      break;
    case BinaryOp::kNe: return;  // punched interval: not representable
    default: return;
  }
  out->push_back(constraint);
}

ValueRange RangeOf(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent) {
  return RangeOfImpl(e, var_extent, {});
}

ValueRange RangeOf(const Expr& e, const std::unordered_map<int64_t, int64_t>& var_extent,
                   const std::vector<RangeConstraint>& constraints) {
  return RangeOfImpl(e, var_extent, constraints);
}

}  // namespace ansor
