#include "src/expr/affine.h"

namespace ansor {
namespace {

bool Analyze(const Expr& e, AffineForm* out, int64_t scale) {
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kIntImm:
      out->constant += scale * n.int_value;
      return true;
    case ExprKind::kVar:
      out->coeffs[n.var_id] += scale;
      return true;
    case ExprKind::kBinary:
      switch (n.binary_op) {
        case BinaryOp::kAdd:
          return Analyze(n.operands[0], out, scale) && Analyze(n.operands[1], out, scale);
        case BinaryOp::kSub:
          return Analyze(n.operands[0], out, scale) && Analyze(n.operands[1], out, -scale);
        case BinaryOp::kMul: {
          // One side must be a constant integer.
          const ExprNode& a = *n.operands[0].get();
          const ExprNode& b = *n.operands[1].get();
          if (a.kind == ExprKind::kIntImm) {
            return Analyze(n.operands[1], out, scale * a.int_value);
          }
          if (b.kind == ExprKind::kIntImm) {
            return Analyze(n.operands[0], out, scale * b.int_value);
          }
          return false;
        }
        default:
          return false;
      }
    default:
      return false;
  }
}

}  // namespace

AffineForm AnalyzeAffine(const Expr& e) {
  AffineForm form;
  if (!e.defined()) {
    return form;
  }
  form.valid = Analyze(e, &form, 1);
  if (!form.valid) {
    form.coeffs.clear();
    form.constant = 0;
  }
  return form;
}

}  // namespace ansor
