// Operations and tensors: the nodes of a computation definition.
//
// A Placeholder op declares an input buffer; a Compute op defines each output
// element as an expression of its space axes (plus reduction axes inside a
// Reduce body). Each op produces exactly one buffer.
#ifndef ANSOR_SRC_EXPR_OPERATION_H_
#define ANSOR_SRC_EXPR_OPERATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace ansor {

enum class OpKind { kPlaceholder, kCompute };

struct Operation {
  OpKind kind = OpKind::kPlaceholder;
  BufferRef output;

  // kCompute only: one Var per output dimension (var_extent = shape dim).
  std::vector<Expr> axis;
  // kCompute only: the element expression; a Reduce node at the top level
  // expresses reductions (its reduce_axes carry the reduction domain).
  Expr body;

  const std::string& name() const { return output->name; }

  // Reduction axes of the body (empty for non-reduction ops).
  std::vector<Expr> ReduceAxes() const;

  // All buffers read by this op's body (deduplicated, in first-use order).
  std::vector<BufferRef> InputBuffers() const;
};
using OperationRef = std::shared_ptr<const Operation>;

// A handle pairing an operation with its output buffer. Calling the tensor
// with index expressions produces a Load, which is how computation bodies
// reference their inputs.
class Tensor {
 public:
  Tensor() = default;
  Tensor(OperationRef op, BufferRef buffer) : op_(std::move(op)), buffer_(std::move(buffer)) {}

  bool defined() const { return op_ != nullptr; }
  const OperationRef& op() const { return op_; }
  const BufferRef& buffer() const { return buffer_; }
  const std::string& name() const { return buffer_->name; }
  const std::vector<int64_t>& shape() const { return buffer_->shape; }
  int ndim() const { return static_cast<int>(buffer_->shape.size()); }

  Expr operator()(std::vector<Expr> indices) const { return Load(buffer_, std::move(indices)); }

  template <typename... Args>
  Expr operator()(Args... args) const {
    return Load(buffer_, std::vector<Expr>{Expr(args)...});
  }

 private:
  OperationRef op_;
  BufferRef buffer_;
};

// Declares an input tensor.
Tensor Placeholder(const std::string& name, std::vector<int64_t> shape);

// Declares a constant input tensor (inference weights): the compiler may
// rewrite its layout to match the tile structure (paper §4.2 layout rewrite).
Tensor ConstantPlaceholder(const std::string& name, std::vector<int64_t> shape);

// Defines a computed tensor. The callback receives one space-axis Var per
// output dimension and returns the element expression.
Tensor Compute(const std::string& name, std::vector<int64_t> shape,
               const std::function<Expr(const std::vector<Expr>&)>& fn);

// Rebuilds a compute op with a new name/body/axes (used by schedule steps
// that introduce cache or rfactor stages).
Tensor MakeComputeOp(const std::string& name, std::vector<int64_t> shape,
                     std::vector<Expr> axis, Expr body);

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_OPERATION_H_
