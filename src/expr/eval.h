// Scalar expression evaluation, used by the naive DAG executor and the
// loop-nest interpreter to verify that scheduled programs are
// semantics-preserving.
#ifndef ANSOR_SRC_EXPR_EVAL_H_
#define ANSOR_SRC_EXPR_EVAL_H_

#include <unordered_map>
#include <vector>

#include "src/expr/expr.h"

namespace ansor {

// A runtime value: integers for index/condition expressions, floats for data.
struct Value {
  bool is_int = false;
  int64_t i = 0;
  double f = 0.0;

  static Value Int(int64_t v) { return Value{true, v, 0.0}; }
  static Value Float(double v) { return Value{false, 0, v}; }

  double AsFloat() const { return is_int ? static_cast<double>(i) : f; }
  int64_t AsInt() const;
  bool AsBool() const { return is_int ? i != 0 : f != 0.0; }
};

struct EvalContext {
  // Loop/axis variable bindings, keyed by var_id.
  std::unordered_map<int64_t, int64_t> vars;
  // Buffer storage, keyed by buffer name. Storage is row-major float.
  std::unordered_map<std::string, const std::vector<float>*> buffers;
  // First out-of-range access diagnostic, set by evaluation instead of
  // aborting: the offending index clamps into range so evaluation can finish
  // harmlessly, and the executor reports the program as failed. Lowering
  // inserts guards where needed, so a set error means an illegal program —
  // exactly what the static verifier must have rejected (see
  // src/analysis/program_verifier.h).
  std::string error;
};

// Row-major flattening of a multi-dimensional index. Checks bounds fatally;
// for the graceful path see FlattenIndexClamped.
int64_t FlattenIndex(const std::vector<int64_t>& indices, const std::vector<int64_t>& shape);

// As FlattenIndex, but an out-of-range index records a diagnostic in *error
// (first failure wins) and clamps into range instead of aborting.
int64_t FlattenIndexClamped(const std::vector<int64_t>& indices,
                            const std::vector<int64_t>& shape, std::string* error);

// Evaluates an expression. Reduce nodes are evaluated by iterating their full
// reduction domain. Loads read from ctx.buffers; out-of-range loads set
// ctx->error and clamp (the lowering inserts guards where needed, so legal
// programs never trip this).
Value Evaluate(const Expr& e, EvalContext* ctx);

inline double EvaluateFloat(const Expr& e, EvalContext* ctx) {
  return Evaluate(e, ctx).AsFloat();
}

}  // namespace ansor

#endif  // ANSOR_SRC_EXPR_EVAL_H_
