#include "src/expr/expr.h"

#include <atomic>
#include <sstream>
#include <unordered_map>

#include "src/support/util.h"

namespace ansor {
namespace {

std::atomic<int64_t> g_var_counter{0};

std::shared_ptr<ExprNode> NewNode(ExprKind kind) {
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  return node;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kMin: return "min";
    case BinaryOp::kMax: return "max";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* IntrinsicName(Intrinsic fn) {
  switch (fn) {
    case Intrinsic::kExp: return "exp";
    case Intrinsic::kLog: return "log";
    case Intrinsic::kSqrt: return "sqrt";
    case Intrinsic::kTanh: return "tanh";
    case Intrinsic::kSigmoid: return "sigmoid";
    case Intrinsic::kAbs: return "abs";
    case Intrinsic::kErf: return "erf";
  }
  return "?";
}

}  // namespace

Expr::Expr(int v) : node_(IntImm(v).node()) {}
Expr::Expr(int64_t v) : node_(IntImm(v).node()) {}
Expr::Expr(double v) : node_(FloatImm(v).node()) {}

ExprKind Expr::kind() const {
  CHECK(node_ != nullptr) << "kind() on undefined Expr";
  return node_->kind;
}

Expr IntImm(int64_t v) {
  auto node = NewNode(ExprKind::kIntImm);
  node->int_value = v;
  return Expr(node);
}

Expr FloatImm(double v) {
  auto node = NewNode(ExprKind::kFloatImm);
  node->float_value = v;
  return Expr(node);
}

Expr MakeVar(const std::string& name, int64_t extent) {
  auto node = NewNode(ExprKind::kVar);
  node->var_name = name;
  node->var_id = g_var_counter.fetch_add(1);
  node->var_extent = extent;
  return Expr(node);
}

Expr ReduceAxis(int64_t extent, const std::string& name) {
  CHECK_GT(extent, 0);
  return MakeVar(name, extent);
}

Expr Binary(BinaryOp op, Expr a, Expr b) {
  CHECK(a.defined() && b.defined());
  auto node = NewNode(ExprKind::kBinary);
  node->binary_op = op;
  node->operands = {std::move(a), std::move(b)};
  return Expr(node);
}

Expr Select(Expr cond, Expr true_value, Expr false_value) {
  CHECK(cond.defined() && true_value.defined() && false_value.defined());
  auto node = NewNode(ExprKind::kSelect);
  node->operands = {std::move(cond), std::move(true_value), std::move(false_value)};
  return Expr(node);
}

Expr CallIntrinsic(Intrinsic fn, std::vector<Expr> args) {
  auto node = NewNode(ExprKind::kCall);
  node->intrinsic = fn;
  node->operands = std::move(args);
  return Expr(node);
}

Expr Load(BufferRef buffer, std::vector<Expr> indices) {
  CHECK(buffer != nullptr);
  CHECK_EQ(buffer->shape.size(), indices.size())
      << "rank mismatch loading from " << buffer->name;
  auto node = NewNode(ExprKind::kLoad);
  node->buffer = std::move(buffer);
  node->operands = std::move(indices);
  return Expr(node);
}

Expr Reduce(ReduceKind kind, Expr source, std::vector<Expr> axes, Expr init) {
  CHECK(source.defined());
  CHECK(!axes.empty());
  for (const Expr& axis : axes) {
    CHECK(axis.kind() == ExprKind::kVar && axis->var_extent > 0)
        << "reduce axis must be a Var with a known extent";
  }
  auto node = NewNode(ExprKind::kReduce);
  node->reduce_kind = kind;
  node->operands.push_back(std::move(source));
  if (init.defined()) {
    node->operands.push_back(std::move(init));
  }
  node->reduce_axes = std::move(axes);
  return Expr(node);
}

Expr Sum(Expr source, std::vector<Expr> axes) {
  return Reduce(ReduceKind::kSum, std::move(source), std::move(axes));
}

Expr MaxReduce(Expr source, std::vector<Expr> axes) {
  return Reduce(ReduceKind::kMax, std::move(source), std::move(axes));
}

Expr operator+(Expr a, Expr b) { return Binary(BinaryOp::kAdd, std::move(a), std::move(b)); }
Expr operator-(Expr a, Expr b) { return Binary(BinaryOp::kSub, std::move(a), std::move(b)); }
Expr operator*(Expr a, Expr b) { return Binary(BinaryOp::kMul, std::move(a), std::move(b)); }
Expr operator/(Expr a, Expr b) { return Binary(BinaryOp::kDiv, std::move(a), std::move(b)); }
Expr operator%(Expr a, Expr b) { return Binary(BinaryOp::kMod, std::move(a), std::move(b)); }
Expr operator<(Expr a, Expr b) { return Binary(BinaryOp::kLt, std::move(a), std::move(b)); }
Expr operator<=(Expr a, Expr b) { return Binary(BinaryOp::kLe, std::move(a), std::move(b)); }
Expr operator>(Expr a, Expr b) { return Binary(BinaryOp::kGt, std::move(a), std::move(b)); }
Expr operator>=(Expr a, Expr b) { return Binary(BinaryOp::kGe, std::move(a), std::move(b)); }
Expr operator==(Expr a, Expr b) { return Binary(BinaryOp::kEq, std::move(a), std::move(b)); }
Expr operator!=(Expr a, Expr b) { return Binary(BinaryOp::kNe, std::move(a), std::move(b)); }
Expr operator&&(Expr a, Expr b) { return Binary(BinaryOp::kAnd, std::move(a), std::move(b)); }
Expr operator||(Expr a, Expr b) { return Binary(BinaryOp::kOr, std::move(a), std::move(b)); }
Expr Min(Expr a, Expr b) { return Binary(BinaryOp::kMin, std::move(a), std::move(b)); }
Expr Max(Expr a, Expr b) { return Binary(BinaryOp::kMax, std::move(a), std::move(b)); }

std::string ToString(const Expr& e) {
  if (!e.defined()) {
    return "<undef>";
  }
  const ExprNode& n = *e.get();
  std::ostringstream os;
  switch (n.kind) {
    case ExprKind::kIntImm:
      os << n.int_value;
      break;
    case ExprKind::kFloatImm:
      os << n.float_value << "f";
      break;
    case ExprKind::kVar:
      os << n.var_name;
      break;
    case ExprKind::kBinary: {
      const char* name = BinaryOpName(n.binary_op);
      if (n.binary_op == BinaryOp::kMin || n.binary_op == BinaryOp::kMax) {
        os << name << "(" << ToString(n.operands[0]) << ", " << ToString(n.operands[1]) << ")";
      } else {
        os << "(" << ToString(n.operands[0]) << " " << name << " " << ToString(n.operands[1])
           << ")";
      }
      break;
    }
    case ExprKind::kSelect:
      os << "select(" << ToString(n.operands[0]) << ", " << ToString(n.operands[1]) << ", "
         << ToString(n.operands[2]) << ")";
      break;
    case ExprKind::kCall: {
      os << IntrinsicName(n.intrinsic) << "(";
      for (size_t i = 0; i < n.operands.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << ToString(n.operands[i]);
      }
      os << ")";
      break;
    }
    case ExprKind::kLoad: {
      os << n.buffer->name << "[";
      for (size_t i = 0; i < n.operands.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << ToString(n.operands[i]);
      }
      os << "]";
      break;
    }
    case ExprKind::kReduce: {
      switch (n.reduce_kind) {
        case ReduceKind::kSum: os << "sum"; break;
        case ReduceKind::kMax: os << "max"; break;
        case ReduceKind::kMin: os << "min"; break;
      }
      os << "(" << ToString(n.operands[0]) << ", axes=[";
      for (size_t i = 0; i < n.reduce_axes.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << n.reduce_axes[i]->var_name << ":" << n.reduce_axes[i]->var_extent;
      }
      os << "])";
      break;
    }
  }
  return os.str();
}

uint64_t StructuralHash(const Expr& e) {
  if (!e.defined()) {
    return 0;
  }
  const ExprNode& n = *e.get();
  uint64_t h = static_cast<uint64_t>(n.kind) * 1000003ULL;
  switch (n.kind) {
    case ExprKind::kIntImm:
      HashCombine(&h, static_cast<uint64_t>(n.int_value));
      break;
    case ExprKind::kFloatImm:
      HashCombine(&h, std::hash<double>()(n.float_value));
      break;
    case ExprKind::kVar:
      HashCombine(&h, static_cast<uint64_t>(n.var_id));
      break;
    case ExprKind::kBinary:
      HashCombine(&h, static_cast<uint64_t>(n.binary_op));
      break;
    case ExprKind::kCall:
      HashCombine(&h, static_cast<uint64_t>(n.intrinsic));
      break;
    case ExprKind::kLoad:
      HashCombine(&h, std::hash<std::string>()(n.buffer->name));
      break;
    case ExprKind::kReduce:
      HashCombine(&h, static_cast<uint64_t>(n.reduce_kind));
      for (const Expr& axis : n.reduce_axes) {
        HashCombine(&h, StructuralHash(axis));
      }
      break;
    default:
      break;
  }
  for (const Expr& operand : n.operands) {
    HashCombine(&h, StructuralHash(operand));
  }
  return h;
}

bool StructuralEqual(const Expr& a, const Expr& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (!a.defined() || !b.defined()) {
    return false;
  }
  const ExprNode& na = *a.get();
  const ExprNode& nb = *b.get();
  if (na.kind != nb.kind || na.operands.size() != nb.operands.size()) {
    return false;
  }
  switch (na.kind) {
    case ExprKind::kIntImm:
      if (na.int_value != nb.int_value) return false;
      break;
    case ExprKind::kFloatImm:
      if (na.float_value != nb.float_value) return false;
      break;
    case ExprKind::kVar:
      return na.var_id == nb.var_id;
    case ExprKind::kBinary:
      if (na.binary_op != nb.binary_op) return false;
      break;
    case ExprKind::kCall:
      if (na.intrinsic != nb.intrinsic) return false;
      break;
    case ExprKind::kLoad:
      if (na.buffer->name != nb.buffer->name) return false;
      break;
    case ExprKind::kReduce:
      if (na.reduce_kind != nb.reduce_kind ||
          na.reduce_axes.size() != nb.reduce_axes.size()) {
        return false;
      }
      for (size_t i = 0; i < na.reduce_axes.size(); ++i) {
        if (!StructuralEqual(na.reduce_axes[i], nb.reduce_axes[i])) {
          return false;
        }
      }
      break;
    default:
      break;
  }
  for (size_t i = 0; i < na.operands.size(); ++i) {
    if (!StructuralEqual(na.operands[i], nb.operands[i])) {
      return false;
    }
  }
  return true;
}

Expr Substitute(const Expr& e, const std::function<Expr(const ExprNode&)>& lookup) {
  if (!e.defined()) {
    return e;
  }
  const ExprNode& n = *e.get();
  if (n.kind == ExprKind::kVar) {
    Expr replacement = lookup(n);
    return replacement.defined() ? replacement : e;
  }
  bool changed = false;
  std::vector<Expr> new_operands;
  new_operands.reserve(n.operands.size());
  for (const Expr& operand : n.operands) {
    Expr substituted = Substitute(operand, lookup);
    changed |= (substituted.get() != operand.get());
    new_operands.push_back(std::move(substituted));
  }
  if (!changed) {
    return e;
  }
  auto node = std::make_shared<ExprNode>(n);
  node->operands = std::move(new_operands);
  return Expr(node);
}

void CollectLoads(const Expr& e, std::vector<const ExprNode*>* loads) {
  if (!e.defined()) {
    return;
  }
  const ExprNode& n = *e.get();
  if (n.kind == ExprKind::kLoad) {
    loads->push_back(&n);
  }
  for (const Expr& operand : n.operands) {
    CollectLoads(operand, loads);
  }
}

void CollectVars(const Expr& e, std::vector<const ExprNode*>* vars) {
  if (!e.defined()) {
    return;
  }
  const ExprNode& n = *e.get();
  if (n.kind == ExprKind::kVar) {
    for (const ExprNode* existing : *vars) {
      if (existing->var_id == n.var_id) {
        return;
      }
    }
    vars->push_back(&n);
    return;
  }
  for (const Expr& operand : n.operands) {
    CollectVars(operand, vars);
  }
}

bool HasReduce(const Expr& e) {
  if (!e.defined()) {
    return false;
  }
  if (e.kind() == ExprKind::kReduce) {
    return true;
  }
  for (const Expr& operand : e->operands) {
    if (HasReduce(operand)) {
      return true;
    }
  }
  return false;
}

}  // namespace ansor
