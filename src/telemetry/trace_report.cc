#include "src/telemetry/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ansor {

namespace {

void Accumulate(std::map<std::string, PhaseTotal>* phases, const TraceEvent& e) {
  PhaseTotal& p = (*phases)[e.name];
  p.name = e.name;
  p.count += 1;
  p.seconds += e.duration_seconds();
}

std::vector<PhaseTotal> SortedBySeconds(const std::map<std::string, PhaseTotal>& phases) {
  std::vector<PhaseTotal> out;
  out.reserve(phases.size());
  for (const auto& kv : phases) out.push_back(kv.second);
  std::stable_sort(out.begin(), out.end(),
                   [](const PhaseTotal& a, const PhaseTotal& b) {
                     return a.seconds > b.seconds;
                   });
  return out;
}

}  // namespace

TraceReport FoldEvents(const std::vector<TraceEvent>& events) {
  TraceReport report;
  report.total_events = events.size();

  std::map<std::string, PhaseTotal> global_phases;
  struct JobAccum {
    std::map<std::string, PhaseTotal> phases;
    std::map<int64_t, double> task_seconds;
    double turnaround = 0.0;
    double direct_children = 0.0;
    uint64_t root_span = 0;
  };
  std::map<int64_t, JobAccum> jobs;

  for (const TraceEvent& e : events) {
    Accumulate(&global_phases, e);
    if (e.job < 0) continue;
    JobAccum& job = jobs[e.job];
    Accumulate(&job.phases, e);
    if (e.task >= 0) job.task_seconds[e.task] += e.duration_seconds();
    if (e.name == "job") {
      job.turnaround = e.duration_seconds();
      job.root_span = e.span_id;
    }
  }
  // Direct children of each job's root span partition its wall time.
  for (const TraceEvent& e : events) {
    if (e.job < 0 || e.parent_id == 0) continue;
    auto it = jobs.find(e.job);
    if (it == jobs.end() || it->second.root_span == 0) continue;
    if (e.parent_id == it->second.root_span) {
      it->second.direct_children += e.duration_seconds();
    }
  }

  report.phases = SortedBySeconds(global_phases);
  for (const auto& kv : jobs) {
    JobAttribution job;
    job.job = kv.first;
    job.turnaround_seconds = kv.second.turnaround;
    job.direct_child_seconds = kv.second.direct_children;
    job.phases = SortedBySeconds(kv.second.phases);
    for (const auto& ts : kv.second.task_seconds) job.task_seconds.push_back(ts);
    report.jobs.push_back(std::move(job));
  }
  return report;
}

std::string RenderReport(const TraceReport& report) {
  std::ostringstream out;
  char line[256];

  out << "trace report: " << report.total_events << " spans, "
      << report.jobs.size() << " jobs\n\n";

  out << "per-phase totals (inclusive)\n";
  std::snprintf(line, sizeof(line), "  %-22s %8s %12s %12s\n", "phase", "count",
                "total (s)", "mean (ms)");
  out << line;
  for (const PhaseTotal& p : report.phases) {
    double mean_ms = p.count > 0 ? p.seconds * 1e3 / static_cast<double>(p.count) : 0.0;
    std::snprintf(line, sizeof(line), "  %-22s %8lld %12.4f %12.4f\n",
                  p.name.c_str(), static_cast<long long>(p.count), p.seconds,
                  mean_ms);
    out << line;
  }

  for (const JobAttribution& job : report.jobs) {
    std::snprintf(line, sizeof(line),
                  "\njob %lld: turnaround %.4f s, direct phases %.4f s (%.1f%%)\n",
                  static_cast<long long>(job.job), job.turnaround_seconds,
                  job.direct_child_seconds,
                  job.turnaround_seconds > 0.0
                      ? 100.0 * job.direct_child_seconds / job.turnaround_seconds
                      : 0.0);
    out << line;
    for (const PhaseTotal& p : job.phases) {
      double pct = job.turnaround_seconds > 0.0
                       ? 100.0 * p.seconds / job.turnaround_seconds
                       : 0.0;
      std::snprintf(line, sizeof(line), "  %-22s %8lld %12.4f %10.1f%%\n",
                    p.name.c_str(), static_cast<long long>(p.count), p.seconds,
                    pct);
      out << line;
    }
    if (!job.task_seconds.empty()) {
      out << "  per-task inclusive seconds:\n";
      for (const auto& ts : job.task_seconds) {
        std::snprintf(line, sizeof(line), "    task %lld: %.4f s\n",
                      static_cast<long long>(ts.first), ts.second);
        out << line;
      }
    }
  }
  return out.str();
}

}  // namespace ansor
