// Structured tracing: RAII spans with explicit parent/child links and
// job/task/round/generation attribution, exported as chrome://tracing-
// compatible JSONL.
//
// Zero-overhead-when-disabled contract: a Tracer with a null sink is the
// disabled state. Constructing a TraceSpan from a disabled Tracer is a single
// branch on that null pointer — no clock read, no allocation, no lock — so
// instrumentation left in hot paths (evolution generations, cache lookups,
// per-trial measurement) costs nothing when tracing is off. Tests and the
// micro benches hold this line; see tests/telemetry/ and bench/snapshot.sh.
//
// Parent/child links are explicit rather than thread-local: spans routinely
// cross the thread pool (a measurement batch is submitted on the driver
// thread and runs on workers), so each Tracer value carries the parent span
// id and the attribution fields, and `span.child()` derives a Tracer for
// work nested under that span. Tracer is a small copyable value — pass it by
// value or const ref, stash it in options structs.
//
// Export format (one JSON object per line, chrome trace "X" complete
// events, timestamps/durations in microseconds):
//   {"name":"evolution","cat":"search","ph":"X","ts":12.5,"dur":340.0,
//    "pid":0,"tid":1,"args":{"span":7,"parent":3,"job":1,"task":0,
//                            "round":2,"generation":-1,...}}
// tid is the job id (so chrome://tracing lays jobs out as rows); extra
// string/number args attached via TraceSpan::Arg land in "args".
#ifndef ANSOR_SRC_TELEMETRY_TRACE_H_
#define ANSOR_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/clock.h"

namespace ansor {

struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  int64_t job = -1;
  int64_t task = -1;
  int round = -1;
  int generation = -1;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  // Extra attributes; values are pre-rendered JSON scalars (strings arrive
  // already quoted, numbers bare).
  std::vector<std::pair<std::string, std::string>> args;

  double duration_seconds() const {
    return SecondsBetween(start_nanos, end_nanos);
  }
};

// Thread-safe append-only sink of completed spans.
class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;

  // One chrome-trace complete event per line. The full file (the JSONL lines
  // wrapped in "[...]"/ separated by commas) is what chrome://tracing and
  // perfetto load; tools/trace_report and the tests consume the raw lines.
  std::string ToJsonl() const;
  bool SaveToFile(const std::string& path) const;

  // Parses events back out of ToJsonl() output (the known flat shape only —
  // not a general JSON parser). Returns false on malformed input; on
  // success appends the parsed events to *events.
  static bool ParseJsonl(const std::string& text, std::vector<TraceEvent>* events);
  static bool LoadFromFile(const std::string& path, std::vector<TraceEvent>* events);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> next_id_{0};
};

// A cheap value handle describing "where spans opened from here belong":
// which sink and clock to use, which job/task/round/generation the work is
// attributed to, and which span is the parent. Disabled when sink is null.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceSink* sink, MonotonicClock* clock)
      : sink_(sink), clock_(MonotonicClock::OrReal(clock)) {}

  bool enabled() const { return sink_ != nullptr; }
  TraceSink* sink() const { return sink_; }
  MonotonicClock* clock() const { return clock_; }
  uint64_t parent() const { return parent_; }
  int64_t job() const { return job_; }
  int64_t task() const { return task_; }
  int round() const { return round_; }
  int generation() const { return generation_; }

  Tracer WithJob(int64_t job) const { Tracer t = *this; t.job_ = job; return t; }
  Tracer WithTask(int64_t task) const { Tracer t = *this; t.task_ = task; return t; }
  Tracer WithRound(int round) const { Tracer t = *this; t.round_ = round; return t; }
  Tracer WithGeneration(int generation) const {
    Tracer t = *this; t.generation_ = generation; return t;
  }
  Tracer WithParent(uint64_t parent) const { Tracer t = *this; t.parent_ = parent; return t; }

 private:
  TraceSink* sink_ = nullptr;
  MonotonicClock* clock_ = MonotonicClock::Real();
  uint64_t parent_ = 0;
  int64_t job_ = -1;
  int64_t task_ = -1;
  int round_ = -1;
  int generation_ = -1;
};

// RAII span: records one TraceEvent from construction to Finish()/destruction.
// Constructing from a disabled Tracer is a single branch; every other method
// starts with the same branch, so a disabled span costs nothing.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const Tracer& tracer, const char* name, const char* category);
  // Pointer form for optional-tracer call sites: null means disabled.
  TraceSpan(const Tracer* tracer, const char* name, const char* category) {
    if (tracer != nullptr && tracer->enabled()) {
      *this = TraceSpan(*tracer, name, category);
    }
  }
  ~TraceSpan() { Finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;

  bool enabled() const { return sink_ != nullptr; }
  uint64_t id() const { return event_.span_id; }

  // Attach an extra attribute (shows up under "args" in the trace).
  void Arg(const char* key, const std::string& value);
  void Arg(const char* key, int64_t value);
  void Arg(const char* key, double value);

  // Tracer for work nested under this span. On a disabled span this returns
  // the (disabled) tracer it was built from, so call sites never branch.
  Tracer child() const { return tracer_.WithParent(event_.span_id); }

  // Ends the span now and records it; later calls are no-ops.
  void Finish();

 private:
  TraceSink* sink_ = nullptr;
  Tracer tracer_;
  TraceEvent event_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_TELEMETRY_TRACE_H_
