// Unified fleet metrics: a lock-cheap registry of named counters, gauges and
// fixed-bucket histograms.
//
// The tuning pipeline accumulates stats in many scattered structs —
// EvolutionStats, ProgramCacheStats, RecordStoreStats, Measurer trial/verify
// counters, JobReport — each with its own accessors and no common snapshot.
// The MetricsRegistry is the single sink they mirror into: components either
// update registry handles directly on their hot paths (atomic add, no lock)
// or export their existing counters on demand (the ExportMetrics methods on
// ProgramCache / RecordStore / Measurer / GbdtCostModel), and one
// ToJson() call serializes the whole fleet state.
//
// Concurrency: Counter::Add, Gauge::Set and Histogram::Observe are lock-free
// atomics, safe from any thread. Registration (counter()/gauge()/histogram())
// takes a mutex but returns a pointer that stays valid for the registry's
// lifetime, so hot paths register once and increment forever.
//
// Histograms use fixed power-of-two buckets (one per binary exponent), so
// Observe is a couple of bit operations and quantile estimates carry at most
// one octave of relative error — plenty for p50/p95/p99 latency reporting,
// with no per-histogram configuration to get wrong.
#ifndef ANSOR_SRC_TELEMETRY_METRICS_H_
#define ANSOR_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ansor {

class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket b holds values in [2^(b-kBias), 2^(b-kBias+1)).
// Nonpositive values land in bucket 0. Sum/min/max are tracked exactly;
// quantiles are estimated as the geometric midpoint of the selected bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 128;
  static constexpr int kBias = 64;  // bucket 64 covers [1, 2)

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  // Value v such that ~q of observations are <= v (q in [0, 1]). Exact up to
  // bucket resolution (one power of two); 0 when empty.
  double Quantile(double q) const;

  // Index of the bucket `value` lands in (exposed for tests).
  static int BucketIndex(double value);
  // Lower bound of bucket `index`.
  static double BucketLowerBound(int index);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_minmax_{false};
  mutable std::mutex minmax_mu_;  // min/max update slow path only
};

// One flattened metric reading (the bench BENCH_JSON block schema).
struct MetricSample {
  std::string name;
  double value = 0.0;
  std::string unit;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the named metric, creating it on first use. The pointer is valid
  // for the registry's lifetime. The unit is fixed at creation; later calls
  // with a different unit keep the original.
  Counter* counter(const std::string& name, const std::string& unit = "count");
  Gauge* gauge(const std::string& name, const std::string& unit = "count");
  Histogram* histogram(const std::string& name, const std::string& unit = "seconds");

  // Convenience for mirror-on-snapshot call sites.
  void SetGauge(const std::string& name, double value, const std::string& unit = "count") {
    gauge(name, unit)->Set(value);
  }
  void AddCounter(const std::string& name, int64_t delta, const std::string& unit = "count") {
    counter(name, unit)->Add(delta);
  }

  // Whole-registry snapshot as one JSON object:
  //   {"counters":[{"name","value","unit"}...],
  //    "gauges":[...],
  //    "histograms":[{"name","unit","count","sum","mean","min","max",
  //                   "p50","p95","p99"}...]}
  // Metrics appear in registration order, so output is stable.
  std::string ToJson() const;
  bool SaveJsonToFile(const std::string& path) const;

  // Flat {name, value, unit} readings in registration order; histograms
  // expand to <name>.count / <name>.mean / <name>.p50 / .p95 / .p99.
  std::vector<MetricSample> Samples() const;
  // Samples() rendered as a JSON array (the benches' BENCH_JSON metrics
  // block: [{"name":...,"value":...,"unit":...},...]).
  std::string SamplesJson() const;

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(Kind kind, const std::string& name, const std::string& unit);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string, Entry*> by_name_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_TELEMETRY_METRICS_H_
