#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/logging.h"

namespace ansor {

namespace {

// JSON-safe number rendering: finite shortest-ish decimal, integers without a
// trailing ".0" noise, non-finite values mapped to 0 (JSON has no inf/nan).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Range check first: double->int64 conversion of a value outside int64's
  // range is UB, so the cast may only run once fabs(v) admits it.
  if (std::fabs(v) < 1e15 && v == static_cast<int64_t>(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  // value in [2^(exp-1), 2^exp)  ->  bucket (exp - 1) + kBias.
  int index = exp - 1 + kBias;
  if (index < 0) return 0;
  if (index >= kBuckets) return kBuckets - 1;
  return index;
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  return std::ldexp(1.0, index - kBias);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  // Min/max take a tiny lock; Observe stays cheap because the critical
  // section is two loads and at most two stores.
  {
    std::lock_guard<std::mutex> lock(minmax_mu_);
    if (!has_minmax_.load(std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
      max_.store(value, std::memory_order_relaxed);
      has_minmax_.store(true, std::memory_order_relaxed);
    } else {
      if (value < min_.load(std::memory_order_relaxed)) {
        min_.store(value, std::memory_order_relaxed);
      }
      if (value > max_.load(std::memory_order_relaxed)) {
        max_.store(value, std::memory_order_relaxed);
      }
    }
  }
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return has_minmax_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return has_minmax_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::Quantile(double q) const {
  int64_t n = count();
  if (n <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, ceil so q=1 hits the last one).
  int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * n)));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      double lo = BucketLowerBound(b);
      double hi = BucketLowerBound(b + 1);
      if (lo <= 0.0) return min();  // zero/negative bucket: report true min
      // Geometric midpoint halves the worst-case relative error; clamp to
      // the exact min/max so single-bucket histograms report real values.
      double rep = std::sqrt(lo * hi);
      return std::min(max(), std::max(min(), rep));
    }
  }
  return max();
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(Kind kind,
                                                      const std::string& name,
                                                      const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    // Fail loudly on a kind collision; returning the existing entry would
    // hand the convenience wrappers a nullptr to dereference.
    CHECK(it->second->kind == kind)
        << "metric '" << name << "' already registered with a different kind";
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->unit = unit;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: entry->histogram = std::make_unique<Histogram>(); break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_.emplace(name, raw);
  return raw;
}

Counter* MetricsRegistry::counter(const std::string& name, const std::string& unit) {
  Entry* e = FindOrCreate(Kind::kCounter, name, unit);
  return e->counter ? e->counter.get() : nullptr;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& unit) {
  Entry* e = FindOrCreate(Kind::kGauge, name, unit);
  return e->gauge ? e->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::histogram(const std::string& name, const std::string& unit) {
  Entry* e = FindOrCreate(Kind::kHistogram, name, unit);
  return e->histogram ? e->histogram.get() : nullptr;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        if (!first_c) counters << ",";
        first_c = false;
        counters << "{\"name\":" << JsonString(e->name)
                 << ",\"value\":" << e->counter->value()
                 << ",\"unit\":" << JsonString(e->unit) << "}";
        break;
      case Kind::kGauge:
        if (!first_g) gauges << ",";
        first_g = false;
        gauges << "{\"name\":" << JsonString(e->name)
               << ",\"value\":" << JsonNumber(e->gauge->value())
               << ",\"unit\":" << JsonString(e->unit) << "}";
        break;
      case Kind::kHistogram: {
        if (!first_h) histograms << ",";
        first_h = false;
        const Histogram* h = e->histogram.get();
        histograms << "{\"name\":" << JsonString(e->name)
                   << ",\"unit\":" << JsonString(e->unit)
                   << ",\"count\":" << h->count()
                   << ",\"sum\":" << JsonNumber(h->sum())
                   << ",\"mean\":" << JsonNumber(h->mean())
                   << ",\"min\":" << JsonNumber(h->min())
                   << ",\"max\":" << JsonNumber(h->max())
                   << ",\"p50\":" << JsonNumber(h->Quantile(0.50))
                   << ",\"p95\":" << JsonNumber(h->Quantile(0.95))
                   << ",\"p99\":" << JsonNumber(h->Quantile(0.99)) << "}";
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\"counters\":[" << counters.str() << "],\"gauges\":[" << gauges.str()
      << "],\"histograms\":[" << histograms.str() << "]}";
  return out.str();
}

bool MetricsRegistry::SaveJsonToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << ToJson() << "\n";
  return out.good();
}

std::vector<MetricSample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        samples.push_back({e->name, static_cast<double>(e->counter->value()), e->unit});
        break;
      case Kind::kGauge:
        samples.push_back({e->name, e->gauge->value(), e->unit});
        break;
      case Kind::kHistogram: {
        const Histogram* h = e->histogram.get();
        samples.push_back({e->name + ".count", static_cast<double>(h->count()), "count"});
        samples.push_back({e->name + ".mean", h->mean(), e->unit});
        samples.push_back({e->name + ".p50", h->Quantile(0.50), e->unit});
        samples.push_back({e->name + ".p95", h->Quantile(0.95), e->unit});
        samples.push_back({e->name + ".p99", h->Quantile(0.99), e->unit});
        break;
      }
    }
  }
  return samples;
}

std::string MetricsRegistry::SamplesJson() const {
  std::vector<MetricSample> samples = Samples();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"name\":" << JsonString(samples[i].name)
        << ",\"value\":" << JsonNumber(samples[i].value)
        << ",\"unit\":" << JsonString(samples[i].unit) << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace ansor
