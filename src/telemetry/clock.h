// The fleet's single monotonic time source.
//
// Every timing the telemetry layer records — JobReport queue/run/turnaround,
// per-phase attribution, trace span durations — is derived from ONE
// MonotonicClock injected through TuningServiceOptions::clock, instead of
// ad-hoc std::chrono::steady_clock reads scattered through the call sites.
// That makes the derived quantities mutually consistent by construction
// (queue + run == turnaround exactly, because all three come from the same
// three readings) and makes the whole timing surface fake-clock testable.
#ifndef ANSOR_SRC_TELEMETRY_CLOCK_H_
#define ANSOR_SRC_TELEMETRY_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ansor {

class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  // Nanoseconds since an arbitrary but fixed origin. Monotonic: never
  // decreases across calls, from any thread.
  virtual int64_t NowNanos() = 0;

  double NowSeconds() { return static_cast<double>(NowNanos()) * 1e-9; }

  // The process-wide steady_clock-backed instance (never null).
  static MonotonicClock* Real();
  // `clock` if non-null, else Real() — the injection idiom.
  static MonotonicClock* OrReal(MonotonicClock* clock) {
    return clock != nullptr ? clock : Real();
  }
};

inline double SecondsBetween(int64_t start_nanos, int64_t end_nanos) {
  return static_cast<double>(end_nanos - start_nanos) * 1e-9;
}

// Deterministic clock for tests: returns a programmed value, optionally
// auto-advancing by a fixed step per reading so successive readings are
// strictly ordered without any real time passing. Thread-safe.
class FakeClock : public MonotonicClock {
 public:
  explicit FakeClock(int64_t start_nanos = 0, int64_t step_nanos = 0)
      : now_(start_nanos), step_(step_nanos) {}

  int64_t NowNanos() override { return now_.fetch_add(step_); }

  void AdvanceNanos(int64_t delta) { now_.fetch_add(delta); }
  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }

 private:
  std::atomic<int64_t> now_;
  const int64_t step_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_TELEMETRY_CLOCK_H_
