// Folds a span trace into per-phase / per-task / per-job time attribution.
//
// This is the library half of tools/trace_report: given the events parsed
// back from a trace JSONL (TraceSink::LoadFromFile), FoldEvents aggregates
// inclusive span durations by phase name, per job and per task, and
// RenderReport formats the result as the text summary the CLI prints.
// The same fold feeds the golden trace-shape tests.
#ifndef ANSOR_SRC_TELEMETRY_TRACE_REPORT_H_
#define ANSOR_SRC_TELEMETRY_TRACE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/trace.h"

namespace ansor {

struct PhaseTotal {
  std::string name;
  int64_t count = 0;
  double seconds = 0.0;  // inclusive (spans nest; children are inside parents)
};

struct JobAttribution {
  int64_t job = -1;
  double turnaround_seconds = 0.0;  // duration of the job's root "job" span
  // Sum of the job span's DIRECT children — this is the partition of the
  // job's wall time into phases, and should match turnaround up to the
  // slack between spans.
  double direct_child_seconds = 0.0;
  std::vector<PhaseTotal> phases;                       // by span name
  std::vector<std::pair<int64_t, double>> task_seconds;  // task id -> inclusive s
};

struct TraceReport {
  size_t total_events = 0;
  std::vector<PhaseTotal> phases;  // global, sorted by total seconds desc
  std::vector<JobAttribution> jobs;  // sorted by job id
};

TraceReport FoldEvents(const std::vector<TraceEvent>& events);

std::string RenderReport(const TraceReport& report);

}  // namespace ansor

#endif  // ANSOR_SRC_TELEMETRY_TRACE_REPORT_H_
