#include "src/telemetry/clock.h"

#include <chrono>

namespace ansor {

namespace {

class SteadyClock final : public MonotonicClock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

MonotonicClock* MonotonicClock::Real() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace ansor
