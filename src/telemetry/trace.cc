#include "src/telemetry/trace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ansor {

namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Micros(int64_t nanos) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) * 1e-3);
  return buf;
}

// --- Minimal parser for the flat event shape ToJsonl emits. ---

// Extracts the raw value text of `key` in a flat JSON object (no nested
// objects except the final "args"). Returns empty string if absent.
std::string RawField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  if (pos >= line.size()) return "";
  if (line[pos] == '"') {
    // String value: scan to the closing unescaped quote.
    std::string out;
    for (size_t i = pos + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        char n = line[++i];
        switch (n) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (i + 4 < line.size()) {
              out += static_cast<char>(
                  std::strtol(line.substr(i + 1, 4).c_str(), nullptr, 16));
              i += 4;
            }
            break;
          default: out += n;
        }
      } else if (c == '"') {
        return out;
      } else {
        out += c;
      }
    }
    return out;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ']') {
    ++end;
  }
  return line.substr(pos, end - pos);
}

int64_t ParseInt(const std::string& raw, int64_t fallback) {
  if (raw.empty()) return fallback;
  return std::strtoll(raw.c_str(), nullptr, 10);
}

}  // namespace

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::ToJsonl() const {
  std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    out << "{\"name\":" << JsonString(e.name)
        << ",\"cat\":" << JsonString(e.category)
        << ",\"ph\":\"X\""
        << ",\"ts\":" << Micros(e.start_nanos)
        << ",\"dur\":" << Micros(e.end_nanos - e.start_nanos)
        << ",\"pid\":0"
        << ",\"tid\":" << (e.job >= 0 ? e.job : 0)
        << ",\"args\":{\"span\":" << e.span_id
        << ",\"parent\":" << e.parent_id
        << ",\"job\":" << e.job
        << ",\"task\":" << e.task
        << ",\"round\":" << e.round
        << ",\"generation\":" << e.generation;
    for (const auto& kv : e.args) {
      out << "," << JsonString(kv.first) << ":" << kv.second;
    }
    out << "}}\n";
  }
  return out.str();
}

bool TraceSink::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << ToJsonl();
  return out.good();
}

bool TraceSink::ParseJsonl(const std::string& text, std::vector<TraceEvent>* events) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceEvent e;
    e.name = RawField(line, "name");
    if (e.name.empty()) return false;
    e.category = RawField(line, "cat");
    e.span_id = static_cast<uint64_t>(ParseInt(RawField(line, "span"), 0));
    e.parent_id = static_cast<uint64_t>(ParseInt(RawField(line, "parent"), 0));
    e.job = ParseInt(RawField(line, "job"), -1);
    e.task = ParseInt(RawField(line, "task"), -1);
    e.round = static_cast<int>(ParseInt(RawField(line, "round"), -1));
    e.generation = static_cast<int>(ParseInt(RawField(line, "generation"), -1));
    double ts_us = std::strtod(RawField(line, "ts").c_str(), nullptr);
    double dur_us = std::strtod(RawField(line, "dur").c_str(), nullptr);
    e.start_nanos = static_cast<int64_t>(std::llround(ts_us * 1e3));
    e.end_nanos = e.start_nanos + static_cast<int64_t>(std::llround(dur_us * 1e3));
    // Known non-core args the report cares about come back as raw strings.
    for (const char* key : {"outcome", "cache", "queue_seconds", "device_seconds",
                            "count", "hits", "misses"}) {
      std::string raw = RawField(line, key);
      if (!raw.empty()) e.args.emplace_back(key, raw);
    }
    events->push_back(std::move(e));
  }
  return true;
}

bool TraceSink::LoadFromFile(const std::string& path, std::vector<TraceEvent>* events) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJsonl(buf.str(), events);
}

TraceSpan::TraceSpan(const Tracer& tracer, const char* name, const char* category) {
  if (!tracer.enabled()) return;  // the whole disabled-mode cost: this branch
  sink_ = tracer.sink();
  tracer_ = tracer;
  event_.name = name;
  event_.category = category;
  event_.span_id = sink_->NextId();
  event_.parent_id = tracer.parent();
  event_.job = tracer.job();
  event_.task = tracer.task();
  event_.round = tracer.round();
  event_.generation = tracer.generation();
  event_.start_nanos = tracer.clock()->NowNanos();
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    Finish();
    sink_ = other.sink_;
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    other.sink_ = nullptr;
  }
  return *this;
}

void TraceSpan::Arg(const char* key, const std::string& value) {
  if (sink_ == nullptr) return;
  event_.args.emplace_back(key, JsonString(value));
}

void TraceSpan::Arg(const char* key, int64_t value) {
  if (sink_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void TraceSpan::Arg(const char* key, double value) {
  if (sink_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", std::isfinite(value) ? value : 0.0);
  event_.args.emplace_back(key, buf);
}

void TraceSpan::Finish() {
  if (sink_ == nullptr) return;
  event_.end_nanos = tracer_.clock()->NowNanos();
  sink_->Record(std::move(event_));
  sink_ = nullptr;
}

}  // namespace ansor
