#include <algorithm>
#include <functional>
#include <sstream>

#include "src/expr/term.h"
#include "src/lower/loop_tree.h"
#include "src/support/util.h"

namespace ansor {
namespace {

class Lowerer {
 public:
  explicit Lowerer(const State& state) : state_(state) {}

  LoweredProgram Run() {
    CollectBuffers();
    BuildChildrenIndex();
    for (size_t i = 0; i < state_.stages().size(); ++i) {
      const Stage& s = state_.stages()[i];
      if (s.loc.kind != ComputeLocKind::kRoot) {
        continue;
      }
      if (!GenStage(static_cast<int>(i), &prog_.roots)) {
        prog_.ok = false;
        return std::move(prog_);
      }
    }
    prog_.ok = prog_.error.empty();
    return std::move(prog_);
  }

 private:
  bool Fail(const std::string& message) {
    if (prog_.error.empty()) {
      prog_.error = message;
    }
    return false;
  }

  void CollectBuffers() {
    const ComputeDAG* dag = state_.dag();
    for (const OperationRef& op : dag->ops()) {
      if (op->kind == OpKind::kPlaceholder) {
        prog_.buffers[op->name()] = op->output;
      }
    }
    for (const Stage& s : state_.stages()) {
      if (s.loc.kind != ComputeLocKind::kInlined) {
        prog_.buffers[s.name()] = s.op->output;
      }
    }
    for (int out : dag->OutputIndices()) {
      prog_.output_buffers.push_back(dag->op(out)->name());
    }
  }

  void BuildChildrenIndex() {
    for (size_t i = 0; i < state_.stages().size(); ++i) {
      const Stage& s = state_.stages()[i];
      if (s.loc.kind == ComputeLocKind::kAt) {
        children_[s.loc.at_stage][s.loc.at_iter].push_back(static_cast<int>(i));
      }
    }
  }

  // Restriction context for a compute_at stage.
  struct AtContext {
    std::vector<Expr> final_axis;   // per space dim: runtime axis value
    std::vector<bool> guard_dim;    // per space dim
    std::vector<bool> keep_iter;    // per iterator of the stage
  };

  bool ComputeAtContext(const Stage& s, AtContext* ctx) {
    int target_idx = state_.StageIndex(s.loc.at_stage);
    if (target_idx < 0) {
      return Fail("compute_at target missing: " + s.loc.at_stage);
    }
    const Stage& c = state_.stage(target_idx);
    if (c.loc.kind != ComputeLocKind::kRoot) {
      return Fail("compute_at target must be a root stage: " + c.name());
    }
    int level = s.loc.at_iter;
    if (level < 0 || level >= static_cast<int>(c.iters.size())) {
      return Fail("compute_at level out of range in " + c.name());
    }
    size_t ndim = s.op->axis.size();
    if (c.op->axis.size() != ndim) {
      return Fail("compute_at rank mismatch between " + s.name() + " and " + c.name());
    }
    // Identity access check: every load of s's buffer in c's body must index
    // with exactly c's axis variables, in order.
    std::vector<const ExprNode*> loads;
    CollectLoads(c.op->body, &loads);
    bool found = false;
    for (const ExprNode* load : loads) {
      if (load->buffer->name != s.name()) {
        continue;
      }
      found = true;
      for (size_t d = 0; d < ndim; ++d) {
        if (!StructuralEqual(load->operands[d], c.op->axis[d])) {
          return Fail("compute_at requires identity access from " + c.name() + " to " +
                      s.name());
        }
      }
    }
    if (!found) {
      return Fail("compute_at consumer " + c.name() + " does not read " + s.name());
    }

    // Classify the consumer's axis reconstruction into outer prefix and inner
    // coverage per dimension.
    std::unordered_map<int64_t, int> var_pos;
    std::unordered_map<int64_t, int64_t> var_extent;
    for (size_t p = 0; p < c.iters.size(); ++p) {
      var_pos[c.iters[p].var->var_id] = static_cast<int>(p);
      var_extent[c.iters[p].var->var_id] = c.iters[p].extent;
    }
    ctx->final_axis.resize(ndim);
    ctx->guard_dim.assign(ndim, false);
    std::vector<int64_t> coverage(ndim, 1);
    for (size_t d = 0; d < ndim; ++d) {
      int64_t axis_id = c.op->axis[d]->var_id;
      auto it = c.axis_value.find(axis_id);
      if (it == c.axis_value.end()) {
        return Fail("missing axis reconstruction in " + c.name());
      }
      std::vector<Expr> terms;
      FlattenAddTerms(it->second, &terms);
      Expr prefix;
      int64_t inner_max = 0;
      std::vector<std::pair<int64_t, int64_t>> inner_parts;  // (multiplier, extent)
      for (const Expr& term : terms) {
        AxisTerm at;
        if (!MatchAxisTerm(term, var_extent, &at)) {
          // Composite term (e.g. a fused-then-split loop variable pair). If
          // every variable it references lives in the outer loops it is still
          // a valid prefix contribution; inner composites are unsupported.
          std::vector<const ExprNode*> term_vars;
          CollectVars(term, &term_vars);
          bool all_outer = !term_vars.empty();
          for (const ExprNode* v : term_vars) {
            auto pit = var_pos.find(v->var_id);
            if (pit == var_pos.end() || pit->second > level) {
              all_outer = false;
              break;
            }
          }
          if (!all_outer) {
            return Fail("unsupported axis term in " + c.name() + ": " + ToString(term));
          }
          prefix = prefix.defined() ? prefix + term : term;
          continue;
        }
        if (at.is_constant) {
          prefix = prefix.defined() ? prefix + term : term;
          continue;
        }
        int pos = var_pos.at(at.var_id);
        if (pos <= level) {
          prefix = prefix.defined() ? prefix + term : term;
        } else {
          inner_max += (at.component_extent - 1) * at.multiplier;
          inner_parts.emplace_back(at.multiplier, at.component_extent);
        }
      }
      // Verify the inner terms tile a contiguous range [0, coverage).
      std::sort(inner_parts.begin(), inner_parts.end());
      int64_t expect = 1;
      for (const auto& [mult, ext] : inner_parts) {
        if (mult != expect) {
          return Fail("non-contiguous inner tiling of axis in " + c.name());
        }
        expect = mult * ext;
      }
      coverage[d] = inner_max + 1;
      if (expect != coverage[d]) {
        return Fail("inner tiling coverage mismatch in " + c.name());
      }
      ctx->final_axis[d] = prefix.defined() ? prefix : Expr(IntImm(0));
      ctx->guard_dim[d] = c.guarded_axes.count(axis_id) > 0;
    }

    // Decide which of s's iterators survive: space iterators with stride <
    // coverage of their dimension (the rest are fixed by the consumer's outer
    // loops); reduce iterators always survive.
    std::unordered_map<int64_t, size_t> axis_dim;
    for (size_t d = 0; d < ndim; ++d) {
      axis_dim[s.op->axis[d]->var_id] = d;
    }
    ctx->keep_iter.assign(s.iters.size(), true);
    std::vector<int64_t> kept_max(ndim, 0);
    std::vector<Expr> pinned_zero;
    for (size_t p = 0; p < s.iters.size(); ++p) {
      const Iterator& it = s.iters[p];
      if (it.kind == IterKind::kReduce) {
        continue;
      }
      if (it.orig_axis_id < 0 || axis_dim.count(it.orig_axis_id) == 0) {
        return Fail("compute_at producer " + s.name() + " has a mixed space iterator");
      }
      size_t d = axis_dim[it.orig_axis_id];
      if (it.stride >= coverage[d]) {
        ctx->keep_iter[p] = false;
        pinned_zero.push_back(it.var);
      } else {
        kept_max[d] += (it.extent - 1) * it.stride;
      }
    }
    for (size_t d = 0; d < ndim; ++d) {
      if (kept_max[d] + 1 != coverage[d]) {
        return Fail("producer tile of " + s.name() + " does not match consumer coverage (" +
                    std::to_string(kept_max[d] + 1) + " vs " + std::to_string(coverage[d]) +
                    ")");
      }
    }
    // final_axis[d] += s's local reconstruction with pinned vars zeroed.
    std::unordered_map<int64_t, bool> pinned_ids;
    for (const Expr& v : pinned_zero) {
      pinned_ids[v->var_id] = true;
    }
    for (size_t d = 0; d < ndim; ++d) {
      int64_t axis_id = s.op->axis[d]->var_id;
      Expr local = Substitute(s.axis_value.at(axis_id), [&](const ExprNode& var) {
        return pinned_ids.count(var.var_id) > 0 ? Expr(IntImm(0)) : Expr();
      });
      ctx->final_axis[d] = ctx->final_axis[d] + local;
      ctx->guard_dim[d] = ctx->guard_dim[d] || s.guarded_axes.count(axis_id) > 0;
    }
    return true;
  }

  // Builds the store statement (and a matching init store for reductions).
  struct StoreInfo {
    LoopTreeNodeRef store;
    LoopTreeNodeRef init;  // null when not a reduction
    Expr guard;            // null when no guard needed
    Expr init_guard;
  };

  bool BuildStores(const Stage& s, const std::vector<Expr>& final_axis,
                   const std::vector<bool>& guard_dim, StoreInfo* out) {
    size_t ndim = s.op->axis.size();
    std::vector<Expr> indices(final_axis.begin(), final_axis.begin() + ndim);

    // Substitution: original axis vars -> runtime exprs.
    std::unordered_map<int64_t, Expr> bindings;
    for (size_t d = 0; d < ndim; ++d) {
      bindings[s.op->axis[d]->var_id] = final_axis[d];
    }
    Expr space_guard;
    for (size_t d = 0; d < ndim; ++d) {
      if (!guard_dim[d]) {
        continue;
      }
      Expr cond = final_axis[d] < IntImm(s.op->output->shape[d]);
      space_guard = space_guard.defined() ? (space_guard && cond) : cond;
    }

    bool is_reduce = s.op->body.defined() && s.op->body.kind() == ExprKind::kReduce;
    Expr guard = space_guard;
    Expr value;
    if (is_reduce) {
      const ExprNode& red = *s.op->body.get();
      for (const Expr& axis : red.reduce_axes) {
        auto it = s.axis_value.find(axis->var_id);
        if (it == s.axis_value.end()) {
          return Fail("missing reduce axis reconstruction in " + s.name());
        }
        bindings[axis->var_id] = it->second;
        if (s.guarded_axes.count(axis->var_id) > 0) {
          Expr cond = it->second < IntImm(axis->var_extent);
          guard = guard.defined() ? (guard && cond) : cond;
        }
      }
      value = red.operands[0];
    } else {
      value = s.op->body;
    }
    value = Substitute(value, [&](const ExprNode& var) {
      auto it = bindings.find(var.var_id);
      return it == bindings.end() ? Expr() : it->second;
    });

    auto store = std::make_unique<LoopTreeNode>();
    store->kind = LoopTreeKind::kStore;
    store->buffer = s.op->output;
    store->indices = indices;
    store->value = std::move(value);
    store->stage_name = s.name();
    store->auto_unroll_max_step = s.auto_unroll_max_step;
    if (is_reduce) {
      const ExprNode& red = *s.op->body.get();
      store->is_accumulate = true;
      store->reduce_kind = red.reduce_kind;

      auto init = std::make_unique<LoopTreeNode>();
      init->kind = LoopTreeKind::kStore;
      init->buffer = s.op->output;
      init->indices = indices;
      init->is_init = true;
      init->stage_name = s.name();
      switch (red.reduce_kind) {
        case ReduceKind::kSum:
          init->value = red.operands.size() > 1 ? red.operands[1] : Expr(FloatImm(0.0));
          break;
        case ReduceKind::kMax:
          init->value = FloatImm(-1e30);
          break;
        case ReduceKind::kMin:
          init->value = FloatImm(1e30);
          break;
      }
      out->init = std::move(init);
      out->init_guard = space_guard;
    }
    out->store = std::move(store);
    out->guard = guard;
    return true;
  }

  LoopTreeNodeRef MakeLoop(const Iterator& it, const std::string& stage_name) {
    auto loop = std::make_unique<LoopTreeNode>();
    loop->kind = LoopTreeKind::kLoop;
    loop->var = it.var;
    loop->extent = it.extent;
    loop->annotation = it.annotation;
    loop->iter_kind = it.kind;
    loop->stage_name = stage_name;
    return loop;
  }

  LoopTreeNodeRef WrapGuard(Expr guard, LoopTreeNodeRef body, const std::string& stage_name) {
    if (!guard.defined()) {
      return body;
    }
    auto node = std::make_unique<LoopTreeNode>();
    node->kind = LoopTreeKind::kIf;
    node->condition = std::move(guard);
    node->stage_name = stage_name;
    node->children.push_back(std::move(body));
    return node;
  }

  // Emits the loop nests for one stage into *out. Root stages may host
  // compute_at children at loop levels.
  bool GenStage(int stage_idx, std::vector<LoopTreeNodeRef>* out) {
    const Stage& s = state_.stage(stage_idx);

    std::vector<Expr> final_axis;
    std::vector<bool> guard_dim;
    std::vector<bool> keep_iter(s.iters.size(), true);
    bool is_root = s.loc.kind == ComputeLocKind::kRoot;
    if (is_root) {
      size_t ndim = s.op->axis.size();
      final_axis.resize(ndim);
      guard_dim.assign(ndim, false);
      for (size_t d = 0; d < ndim; ++d) {
        int64_t axis_id = s.op->axis[d]->var_id;
        final_axis[d] = s.axis_value.at(axis_id);
        guard_dim[d] = s.guarded_axes.count(axis_id) > 0;
      }
    } else {
      AtContext ctx;
      if (!ComputeAtContext(s, &ctx)) {
        return false;
      }
      final_axis = std::move(ctx.final_axis);
      guard_dim = std::move(ctx.guard_dim);
      keep_iter = std::move(ctx.keep_iter);
    }

    StoreInfo stores;
    if (!BuildStores(s, final_axis, guard_dim, &stores)) {
      return false;
    }

    // Init nest: kept space iterators only.
    if (stores.init != nullptr) {
      LoopTreeNodeRef body = WrapGuard(std::move(stores.init_guard), std::move(stores.init),
                                       s.name());
      for (size_t p = s.iters.size(); p > 0; --p) {
        const Iterator& it = s.iters[p - 1];
        if (!keep_iter[p - 1] || it.kind != IterKind::kSpace) {
          continue;
        }
        Iterator init_iter = it;
        // Init loops reuse the same loop variables; annotations carry over so
        // the simulator sees the same parallel structure.
        LoopTreeNodeRef loop = MakeLoop(init_iter, s.name());
        loop->children.push_back(std::move(body));
        body = std::move(loop);
      }
      out->push_back(std::move(body));
    }

    // Main nest, inserting compute_at children at their levels. Build from
    // the innermost statement outwards.
    LoopTreeNodeRef body = WrapGuard(std::move(stores.guard), std::move(stores.store),
                                     s.name());
    auto cit = children_.find(s.name());
    for (size_t p = s.iters.size(); p > 0; --p) {
      const Iterator& it = s.iters[p - 1];
      if (!keep_iter[p - 1]) {
        continue;
      }
      LoopTreeNodeRef loop = MakeLoop(it, s.name());
      // Children registered at this level run before the deeper body.
      if (is_root && cit != children_.end()) {
        auto lit = cit->second.find(static_cast<int>(p - 1));
        if (lit != cit->second.end()) {
          for (int child : lit->second) {
            if (!GenStage(child, &loop->children)) {
              return false;
            }
          }
        }
      }
      loop->children.push_back(std::move(body));
      body = std::move(loop);
    }
    out->push_back(std::move(body));
    return true;
  }

  const State& state_;
  LoweredProgram prog_;
  std::unordered_map<std::string, std::unordered_map<int, std::vector<int>>> children_;
};

void PrintNode(const LoopTreeNode& node, int indent, std::ostringstream* os) {
  auto pad = [&] {
    for (int i = 0; i < indent; ++i) {
      *os << "  ";
    }
  };
  pad();
  switch (node.kind) {
    case LoopTreeKind::kLoop:
      if (node.annotation != IterAnnotation::kNone) {
        *os << IterAnnotationName(node.annotation) << " ";
      } else {
        *os << "for ";
      }
      *os << node.var->var_name << " in range(" << node.extent << ")\n";
      break;
    case LoopTreeKind::kIf:
      *os << "if " << ToString(node.condition) << "\n";
      break;
    case LoopTreeKind::kStore:
      *os << node.buffer->name << "[";
      for (size_t i = 0; i < node.indices.size(); ++i) {
        if (i > 0) {
          *os << ", ";
        }
        *os << ToString(node.indices[i]);
      }
      *os << "]";
      if (node.is_init) {
        *os << " = " << ToString(node.value) << "  // init\n";
      } else if (node.is_accumulate) {
        *os << " <@= " << ToString(node.value) << "\n";
      } else {
        *os << " = " << ToString(node.value) << "\n";
      }
      return;
  }
  for (const LoopTreeNodeRef& child : node.children) {
    PrintNode(*child, indent + 1, os);
  }
}

}  // namespace

std::string LoweredProgram::ToString() const {
  std::ostringstream os;
  if (!ok) {
    os << "<lowering failed: " << error << ">\n";
    return os.str();
  }
  for (const LoopTreeNodeRef& root : roots) {
    PrintNode(*root, 0, &os);
  }
  return os.str();
}

LoweredProgram Lower(const State& state) {
  if (state.failed()) {
    LoweredProgram prog;
    prog.error = "state failed: " + state.error();
    return prog;
  }
  return Lowerer(state).Run();
}

}  // namespace ansor
