// The lowered program representation: a tree of concrete loops, guards and
// buffer store statements.
//
// Lowering turns a schedule State into this tree; the interpreter (src/exec)
// executes it to verify functional correctness, and the feature extractor
// (src/features) and hardware simulator (src/hwsim) walk it to characterize
// performance. This is the "complete program" of paper §4 — every sampled
// program is lowered before measurement.
#ifndef ANSOR_SRC_LOWER_LOOP_TREE_H_
#define ANSOR_SRC_LOWER_LOOP_TREE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/state.h"

namespace ansor {

enum class LoopTreeKind { kLoop, kIf, kStore };

struct LoopTreeNode;
using LoopTreeNodeRef = std::unique_ptr<LoopTreeNode>;

struct LoopTreeNode {
  LoopTreeKind kind = LoopTreeKind::kLoop;

  // kLoop
  Expr var;  // loop variable (Var expression)
  int64_t extent = 0;
  IterAnnotation annotation = IterAnnotation::kNone;
  IterKind iter_kind = IterKind::kSpace;

  // kIf
  Expr condition;

  // kStore (leaf)
  BufferRef buffer;
  std::vector<Expr> indices;
  Expr value;
  bool is_accumulate = false;  // accumulate into buffer via reduce_kind
  ReduceKind reduce_kind = ReduceKind::kSum;
  bool is_init = false;        // reduction initialization store

  // Owning stage (set on every node for features/simulation).
  std::string stage_name;
  int auto_unroll_max_step = 0;

  std::vector<LoopTreeNodeRef> children;
};

struct LoweredProgram {
  bool ok = false;
  std::string error;
  // Top-level sequence (one or two nests per root stage).
  std::vector<LoopTreeNodeRef> roots;
  // Every buffer the program touches (placeholders, stage outputs, cache and
  // rfactor temporaries), keyed by name.
  std::unordered_map<std::string, BufferRef> buffers;
  // Buffers that are DAG outputs.
  std::vector<std::string> output_buffers;

  std::string ToString() const;
};

// Lowers a schedule state. On failure (e.g. an unsupported compute_at
// placement produced by a mutation) returns ok=false with an error message;
// the search treats such programs as failed measurements.
LoweredProgram Lower(const State& state);

}  // namespace ansor

#endif  // ANSOR_SRC_LOWER_LOOP_TREE_H_
