// The Ansor search policy (paper Fig. 4, §4-§5).
//
// One tuning round: sample fresh random programs from the sketches, mix in
// the best measured programs so far as the evolutionary initial population,
// evolve against the learned cost model, measure the top candidates (with an
// epsilon fraction of purely random programs for exploration), and retrain
// the model on the new measurements.
#ifndef ANSOR_SRC_SEARCH_SEARCH_POLICY_H_
#define ANSOR_SRC_SEARCH_SEARCH_POLICY_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/evolution/evolution.h"
#include "src/hwsim/measurer.h"
#include "src/program/program_cache.h"
#include "src/search/record_log.h"
#include "src/sketch/sketch.h"
#include "src/telemetry/clock.h"
#include "src/telemetry/trace.h"

namespace ansor {

// A tuning task: one subgraph to optimize (paper §6: "We define a task as a
// process performed to generate high-performance programs for a subgraph").
// The DAG is shared so that program states escaping the tuner (best programs
// in results) keep it alive.
struct SearchTask {
  std::string name;
  std::shared_ptr<const ComputeDAG> dag;
  // Number of appearances of this subgraph in its DNN(s) (the weight w_i).
  int weight = 1;
  // Structural similarity tag (same-tag tasks inform each other's gradient
  // estimate via the beta term of §6.2).
  std::string tag;

  uint64_t task_id() const { return dag->CanonicalHash(); }
  double flop_count() const { return dag->FlopCount(); }
};

inline SearchTask MakeSearchTask(std::string name, ComputeDAG dag, int weight = 1,
                                 std::string tag = "") {
  SearchTask task;
  task.name = std::move(name);
  task.dag = std::make_shared<const ComputeDAG>(std::move(dag));
  task.weight = weight;
  task.tag = std::move(tag);
  return task;
}

struct SearchOptions {
  int population = 64;
  int generations = 3;
  // Probability of producing offspring by node-based crossover instead of
  // mutation (0 disables crossover).
  double crossover_probability = 0.25;
  // Fraction of each measured batch drawn from random sampling instead of
  // evolution (epsilon-greedy exploration).
  double eps_random = 0.1;
  int random_samples_per_round = 24;  // fresh samples seeding each round
  uint64_t seed = 42;
  SamplerOptions sampler;
  SketchOptions sketch;
  // Ablations (§7.1 Fig. 7): disable the evolutionary fine-tuning ("No
  // fine-tuning": random sampling only).
  bool enable_fine_tuning = true;
  // When set, every valid measurement is appended here (resume / share /
  // apply-without-search workflows). Not owned.
  RecordLog* record_log = nullptr;
  // Fleet-wide record sink (src/store/record_store.h): every valid
  // measurement is also appended here, carrying its measured throughput and
  // attributed to cache_client_id, under the store's dedup policy. A
  // TuningService points every job's tuners at one store so the whole
  // fleet's history accumulates deduplicated in one place (and feeds
  // TrainFromStore). Not owned; may be shared across concurrent tuners.
  RecordStore* record_store = nullptr;
  // Pool for evolution and feature extraction; nullptr = ThreadPool::Global().
  // Results are invariant to the pool size (see the determinism tests).
  ThreadPool* thread_pool = nullptr;
  // Compiled-program cache shared by every consumer of a tuning round
  // (evolution scoring, crossover, measurement, training-feature
  // extraction). nullptr = the tuner creates its own task-lifetime cache
  // with program_cache_capacity entries; inject one to observe its counters
  // or to share artifacts across tasks. Results are invariant to the cache
  // and its capacity (see the determinism tests).
  ProgramCache* program_cache = nullptr;
  // Capacity of the tuner-owned cache when program_cache is null. 0 disables
  // caching entirely (every consumer compiles from scratch, as before PR 3).
  size_t program_cache_capacity = ProgramCache::kDefaultCapacity;
  // Consumer id tagged onto every program-cache lookup this tuner makes
  // (evolution scoring, pre-measurement filter, measurement, training
  // features) so a cache shared across tasks can attribute cross-task reuse
  // exactly (ProgramCache::ClientStats). 0 = anonymous. The TuningService
  // assigns each (job, task) a distinct id. Counters only; search results
  // are identical for any id.
  uint64_t cache_client_id = 0;
  // A program whose measurement comes back invalid is retried in later rounds
  // at most this many times in total before being blacklisted like a measured
  // program: transient hardware failures recover, deterministic failures stop
  // leaking one trial per round forever.
  int max_invalid_measures = 3;
  // Static verification level (src/analysis/program_verifier.h): 0 = off,
  // 1 = statically-illegal candidates (failed lowering, bounds/domain/
  // ordering violations, machine resource limits) are rejected before they
  // burn a measurement trial, 2 = invariant mode — the verifier additionally
  // runs on every accepted evolution child at construction site. The
  // ANSOR_CHECK_INVARIANTS environment variable raises the effective level
  // to 2. Levels 0 and 1 are bit-identical on corpora with no statically
  // illegal candidate (see the determinism tests).
  int verify_level = 1;
  // Telemetry handle for this task's tuner: spans for sketch generation,
  // round planning (with evolution/generation children), training-feature
  // extraction, measurement and commit are attributed through it. Disabled
  // by default (one branch per would-be span); search results are
  // bit-identical either way. The TuningService stamps job/task ids on it
  // and re-parents it per round via TaskTuner::set_tracer.
  Tracer tracer;
  // Clock used for the tuner's per-phase time attribution (nullptr = the
  // process steady clock). Injected by the TuningService so every timing in
  // a job — report fields, trace spans, phase breakdowns — derives from the
  // single service clock (fake-clock testable).
  MonotonicClock* clock = nullptr;
};

// Wall-clock seconds a tuner (or a whole job) spent in each phase of the
// tuning loop. Sketch/search/feature/commit accumulate inside TaskTuner;
// measure_wall is the submit→complete wall time of measurement batches
// (accumulated by TuneRound on the synchronous path and by the service
// driver on the overlapped path, which also credits `overlap` — the portion
// of search-side work that ran while a batch was in flight).
struct SearchPhaseTimes {
  double sketch_seconds = 0.0;
  double search_seconds = 0.0;   // PlanRound: evolution + candidate filtering
  double feature_seconds = 0.0;  // training-feature extraction
  double measure_wall_seconds = 0.0;
  double commit_seconds = 0.0;   // result bookkeeping + cost-model training
  double overlap_seconds = 0.0;  // search-side work overlapped with measuring

  double TotalSeconds() const {
    return sketch_seconds + search_seconds + feature_seconds + measure_wall_seconds +
           commit_seconds;
  }
  // Fraction of measurement wall time that was hidden behind search-side
  // work (the async pipeline's win; 0 on the synchronous path).
  double OverlapFraction() const {
    return measure_wall_seconds > 0.0 ? overlap_seconds / measure_wall_seconds : 0.0;
  }
  void Add(const SearchPhaseTimes& other) {
    sketch_seconds += other.sketch_seconds;
    search_seconds += other.search_seconds;
    feature_seconds += other.feature_seconds;
    measure_wall_seconds += other.measure_wall_seconds;
    commit_seconds += other.commit_seconds;
    overlap_seconds += other.overlap_seconds;
  }
};

// One planned-but-not-yet-committed tuning round: the candidates PlanRound
// selected for measurement, their precomputed signatures, and (optionally)
// their training features. The step-wise resumable-round interface exists so
// the TuningService can overlap phases: plan, submit the batch, extract
// features while the batch is in flight, then commit the results. TuneRound
// composes the same steps back-to-back, so Plan + Measure + Commit is
// bit-identical to the legacy synchronous round.
struct PlannedRound {
  std::vector<State> to_measure;
  std::vector<std::string> signatures;  // StepSignature per candidate
  // Per-candidate training-feature matrices, copied out of the cached
  // artifacts. Filled by ExtractFeatures (overlappable with measurement);
  // CommitRound extracts them itself when left empty. Pure function of
  // to_measure, so when it runs does not affect results.
  std::vector<FeatureMatrix> features;
};

// Per-task tuner holding search state across rounds so the task scheduler can
// interleave tasks (paper §6: one round == "one unit of time resources").
class TaskTuner {
 public:
  TaskTuner(SearchTask task, Measurer* measurer, CostModel* model,
            SearchOptions options = SearchOptions());

  // Runs one tuning round with a budget of `num_measures` measurement trials.
  // Returns the best latency (seconds) found so far; infinity until a valid
  // program is measured. Equivalent to PlanRound + SubmitPlannedRound/Wait +
  // CommitRound (the step-wise path the TuningService drives).
  double TuneRound(int num_measures);

  // Step-wise (resumable) round interface ------------------------------------
  // Selects up to `num_measures` candidates (evolution + epsilon-random
  // exploration, deduplicated against already-measured programs, statically
  // filtered). Consumes the tuner RNG exactly as the same phase of TuneRound.
  PlannedRound PlanRound(int num_measures);
  // Enqueues the round's candidates for asynchronous measurement on `pool`
  // through the task's program cache. Empty rounds return a completed handle.
  PendingMeasureBatch SubmitPlannedRound(const PlannedRound& round,
                                         ThreadPool* pool = nullptr);
  // Copies the candidates' training features out of the cached artifacts
  // (idempotent; safe to run while the round's batch measures concurrently —
  // artifacts are immutable and the cache is thread-safe).
  void ExtractFeatures(PlannedRound* round);
  // Applies the measurement results: best-program tracking, blacklist
  // bookkeeping, cost-model training, history. `results` must be
  // index-aligned with round.to_measure. Cancelled results (deadline) are
  // skipped entirely: no budget spent, no blacklist entry, no training
  // sample. Returns the best latency so far.
  double CommitRound(PlannedRound round, const std::vector<MeasureResult>& results);

  const SearchTask& task() const { return task_; }
  double best_seconds() const { return best_seconds_; }
  double best_throughput() const { return best_throughput_; }
  const std::optional<State>& best_state() const { return best_state_; }
  int64_t total_measures() const { return total_measures_; }
  // Trials that came back invalid (counted separately: their signatures are
  // NOT blacklisted, so the program can be retried in a later round).
  int64_t invalid_measures() const { return invalid_measures_; }
  // Candidates the static program verifier rejected before measurement
  // (across evolution populations and the pre-measurement filter). Each
  // rejection is a trial that would previously have been spent discovering
  // the illegality dynamically.
  int64_t statically_rejected() const { return statically_rejected_; }
  // Number of distinct programs with a recorded valid measurement.
  size_t measured_signature_count() const { return measured_signatures_.size(); }
  // (cumulative trial count, best seconds) after each round.
  const std::vector<std::pair<int64_t, double>>& history() const { return history_; }
  // The task's compiled-program cache (owned unless injected via
  // SearchOptions::program_cache). Exposes hit/miss/eviction counters.
  const ProgramCache& program_cache() const { return *cache_; }

  // Trials whose results came back cancelled (deadline hit before start).
  int64_t cancelled_measures() const { return cancelled_measures_; }
  // Per-phase wall-time attribution accumulated across rounds (single
  // injected clock; see SearchOptions::clock). The synchronous TuneRound
  // path fills measure_wall itself; on the service's overlapped path the
  // driver owns measure_wall/overlap and merges.
  const SearchPhaseTimes& phase_times() const { return phase_times_; }
  // EvolutionStats summed over every PlanRound this tuner ran (the per-call
  // stats are reset by each Evolve; this is the round-spanning mirror the
  // metrics registry snapshots).
  const EvolutionStats& evolution_stats() const { return evolution_stats_; }
  // Re-attributes subsequent spans (round/parent change): the service driver
  // points this at the current round's span before planning it.
  void set_tracer(const Tracer& tracer) { tracer_ = tracer; }

 private:
  std::vector<State> SampleRandomPrograms(int count);

  SearchTask task_;
  Measurer* measurer_;
  CostModel* model_;
  SearchOptions options_;
  std::unique_ptr<ProgramCache> owned_cache_;
  ProgramCache* cache_;
  MonotonicClock* clock_;
  Tracer tracer_;  // current attribution (options_.tracer until set_tracer)
  SearchPhaseTimes phase_times_;
  EvolutionStats evolution_stats_;
  Rng rng_;
  std::vector<State> sketches_;
  // Best measured programs (population seed for the next round).
  std::vector<std::pair<double, State>> measured_best_;
  double best_seconds_ = std::numeric_limits<double>::infinity();
  double best_throughput_ = 0.0;
  std::optional<State> best_state_;
  int64_t total_measures_ = 0;
  int64_t invalid_measures_ = 0;
  int64_t cancelled_measures_ = 0;
  int64_t statically_rejected_ = 0;
  std::vector<std::pair<int64_t, double>> history_;
  // Signatures of already-measured programs: never burn a trial twice on the
  // same program (mirrors TVM's measured-state dedup). Only programs with a
  // *valid* measurement enter this set; invalid results are tallied in
  // invalid_signature_counts_ and blacklisted only after
  // SearchOptions::max_invalid_measures failed attempts.
  std::unordered_set<std::string> measured_signatures_;
  std::unordered_map<std::string, int> invalid_signature_counts_;
};

struct TuneResult {
  double best_seconds = std::numeric_limits<double>::infinity();
  double best_throughput = 0.0;
  std::optional<State> best_state;
  std::vector<std::pair<int64_t, double>> history;
};

// Tunes a single task for `num_measure_trials` trials in rounds of
// `measures_per_round`.
TuneResult TuneTask(const SearchTask& task, Measurer* measurer, CostModel* model,
                    int num_measure_trials, int measures_per_round = 16,
                    SearchOptions options = SearchOptions());

}  // namespace ansor

#endif  // ANSOR_SRC_SEARCH_SEARCH_POLICY_H_
