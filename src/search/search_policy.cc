#include "src/search/search_policy.h"

#include <algorithm>
#include <unordered_set>

#include "src/analysis/program_verifier.h"
#include "src/support/thread_pool.h"

namespace ansor {

TaskTuner::TaskTuner(SearchTask task, Measurer* measurer, CostModel* model,
                     SearchOptions options)
    : task_(std::move(task)),
      measurer_(measurer),
      model_(model),
      options_(options),
      clock_(MonotonicClock::OrReal(options.clock)),
      tracer_(options.tracer),
      rng_(options.seed ^ task_.task_id()) {
  // Task-lifetime compiled-program cache: owned by the tuner unless the
  // caller injected one to observe or share it.
  if (options_.program_cache != nullptr) {
    cache_ = options_.program_cache;
  } else {
    owned_cache_ = std::make_unique<ProgramCache>(options_.program_cache_capacity);
    cache_ = owned_cache_.get();
  }
  const int64_t t0 = clock_->NowNanos();
  {
    TraceSpan sketch(tracer_, "sketch", "search");
    sketches_ = GenerateSketches(task_.dag.get(), options_.sketch);
    sketch.Arg("count", static_cast<int64_t>(sketches_.size()));
  }
  phase_times_.sketch_seconds += SecondsBetween(t0, clock_->NowNanos());
}

std::vector<State> TaskTuner::SampleRandomPrograms(int count) {
  std::vector<State> result;
  if (sketches_.empty()) {
    return result;
  }
  int attempts = 0;
  int max_attempts = count * 8;
  while (static_cast<int>(result.size()) < count && attempts < max_attempts) {
    ++attempts;
    const State& sketch = sketches_[rng_.Index(sketches_.size())];
    State program = SampleCompleteProgram(sketch, task_.dag.get(), &rng_, options_.sampler);
    if (!program.failed()) {
      result.push_back(std::move(program));
    }
  }
  return result;
}

PlannedRound TaskTuner::PlanRound(int num_measures) {
  PlannedRound round;
  if (sketches_.empty() || num_measures <= 0) {
    return round;
  }
  const int64_t t0 = clock_->NowNanos();
  TraceSpan plan_span(tracer_, "plan_round", "search");
  Tracer plan_tracer = plan_span.child();
  const Tracer* plan_ptr = plan_span.enabled() ? &plan_tracer : nullptr;
  const int verify_level = EffectiveVerifyLevel(options_.verify_level);

  // Candidate generation. Signatures are kept alongside the candidates so
  // the commit bookkeeping never rebuilds them.
  std::unordered_set<std::string> picked;
  auto add_candidate = [&](const State& s) {
    if (static_cast<int>(round.to_measure.size()) >= num_measures) {
      return;
    }
    std::string sig = StepSignature(s);
    if (measured_signatures_.count(sig) > 0) {
      return;  // already measured validly in a previous round
    }
    auto invalid_it = invalid_signature_counts_.find(sig);
    if (invalid_it != invalid_signature_counts_.end() &&
        invalid_it->second >= options_.max_invalid_measures) {
      return;  // failed measurement too often: treat as deterministically bad
    }
    if (!picked.insert(sig).second) {
      return;
    }
    if (verify_level >= 1) {
      // Pre-measurement static filter: a candidate the verifier proves
      // illegal for this machine (failed lowering, bounds/domain/ordering
      // violation, resource limits) must not burn a trial. The report rides
      // on the cached artifact, so candidates the evolution already compiled
      // are filtered for free.
      ProgramArtifactPtr artifact = cache_->GetOrBuild(s, options_.cache_client_id, plan_ptr);
      if (!artifact->statically_legal(&measurer_->machine(), plan_ptr)) {
        ++statically_rejected_;
        return;
      }
    }
    round.to_measure.push_back(s);
    round.signatures.push_back(std::move(sig));
  };

  if (options_.enable_fine_tuning) {
    // Initial population: fresh random samples + best measured programs.
    std::vector<State> init = SampleRandomPrograms(options_.random_samples_per_round);
    for (const auto& [seconds, state] : measured_best_) {
      init.push_back(state);
    }
    EvolutionOptions evo;
    evo.population = options_.population;
    evo.generations = options_.generations;
    evo.crossover_probability = options_.crossover_probability;
    evo.sampler = options_.sampler;
    evo.thread_pool = options_.thread_pool;
    evo.program_cache = cache_;
    evo.cache_client_id = options_.cache_client_id;
    evo.verify_level = options_.verify_level;
    if (plan_ptr != nullptr) {
      evo.tracer = *plan_ptr;
    }
    EvolutionarySearch evolution(task_.dag.get(), model_, rng_.Fork(), evo);
    int n_evolved = std::max(1, num_measures - static_cast<int>(options_.eps_random *
                                                                num_measures));
    for (const State& s : evolution.Evolve(init, n_evolved)) {
      add_candidate(s);
    }
    statically_rejected_ += evolution.stats().statically_rejected;
    AccumulateEvolutionStats(evolution.stats(), &evolution_stats_);
  }
  // Epsilon-greedy random exploration (all candidates when fine-tuning is
  // disabled — the "No fine-tuning" ablation).
  for (const State& s : SampleRandomPrograms(num_measures)) {
    add_candidate(s);
  }
  plan_span.Arg("count", static_cast<int64_t>(round.to_measure.size()));
  phase_times_.search_seconds += SecondsBetween(t0, clock_->NowNanos());
  return round;
}

PendingMeasureBatch TaskTuner::SubmitPlannedRound(const PlannedRound& round,
                                                  ThreadPool* pool) {
  return measurer_->SubmitBatch(round.to_measure, cache_, options_.cache_client_id,
                                pool != nullptr ? pool : options_.thread_pool,
                                tracer_.enabled() ? &tracer_ : nullptr);
}

void TaskTuner::ExtractFeatures(PlannedRound* round) {
  if (!round->features.empty()) {
    return;  // already extracted
  }
  const int64_t t0 = clock_->NowNanos();
  TraceSpan span(tracer_, "training_features", "search");
  Tracer nested = span.child();
  const Tracer* nested_ptr = span.enabled() ? &nested : nullptr;
  // Training features are copied out of the cached artifacts (the
  // per-candidate copy is mutated at commit when a transient failure must
  // not train a zero-throughput sample). Artifacts were compiled during
  // planning, so this is cheap and safe to overlap with the in-flight batch.
  round->features.resize(round->to_measure.size());
  ThreadPool::OrGlobal(options_.thread_pool)
      .ParallelFor(round->to_measure.size(), [&](size_t i) {
        round->features[i] =
            cache_->GetOrBuild(round->to_measure[i], options_.cache_client_id, nested_ptr)
                ->features();
      });
  phase_times_.feature_seconds += SecondsBetween(t0, clock_->NowNanos());
}

double TaskTuner::CommitRound(PlannedRound round, const std::vector<MeasureResult>& results) {
  if (round.to_measure.empty()) {
    return best_seconds_;
  }
  CHECK_EQ(results.size(), round.to_measure.size());
  const int64_t t0 = clock_->NowNanos();
  TraceSpan commit_span(tracer_, "commit_round", "search");
  // Budget accounting: only trials that actually started count (a cancelled
  // item never reached the device — see MeasureResult::cancelled — so the
  // tuner's spent budget stays equal to the measurer's trial counter).
  int64_t started = 0;
  for (const MeasureResult& r : results) {
    if (!r.cancelled) {
      ++started;
    } else {
      ++cancelled_measures_;
    }
  }
  total_measures_ += started;

  // Update best + training data. Only programs that measured valid are
  // recorded in measured_signatures_: a transient invalid result must not
  // permanently blacklist the program. Invalid results are tallied per
  // signature and blacklist only after max_invalid_measures attempts.
  ExtractFeatures(&round);
  std::vector<FeatureMatrix>& features = round.features;
  std::vector<double> throughputs(round.to_measure.size(), 0.0);
  for (size_t i = 0; i < round.to_measure.size(); ++i) {
    if (results[i].cancelled) {
      // Never started: not a failure, not a training sample, retryable later.
      features[i].Clear();
      continue;
    }
    if (!results[i].valid) {
      ++invalid_measures_;
      int failures = ++invalid_signature_counts_[round.signatures[i]];
      // A possibly-transient failure must not teach the model the program has
      // zero throughput. Once the failure count reaches the blacklist
      // threshold the program is confirmed deterministically bad: train the
      // zero-throughput sample so the model steers away from its family.
      if (failures < options_.max_invalid_measures) {
        features[i].Clear();
      }
      continue;
    }
    invalid_signature_counts_.erase(round.signatures[i]);  // a transient failure recovered
    measured_signatures_.insert(std::move(round.signatures[i]));
    throughputs[i] = results[i].throughput;
    if (results[i].seconds < best_seconds_) {
      best_seconds_ = results[i].seconds;
      best_throughput_ = results[i].throughput;
      best_state_ = round.to_measure[i];
      best_state_->RetainDag(task_.dag);
    }
    measured_best_.emplace_back(results[i].seconds, round.to_measure[i]);
    if (options_.record_log != nullptr || options_.record_store != nullptr) {
      TuningRecord record;
      record.task_id = task_.task_id();
      record.seconds = results[i].seconds;
      record.throughput = results[i].throughput;
      record.steps = round.to_measure[i].steps();
      if (options_.record_log != nullptr) {
        options_.record_log->Add(options_.record_store != nullptr ? record
                                                                  : std::move(record));
      }
      if (options_.record_store != nullptr) {
        options_.record_store->Add(std::move(record), options_.cache_client_id);
      }
    }
  }
  std::sort(measured_best_.begin(), measured_best_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (measured_best_.size() > 16) {
    measured_best_.resize(16);
  }

  if (options_.enable_fine_tuning) {
    TraceSpan train(commit_span.enabled() ? commit_span.child() : Tracer(),
                    "model_train", "costmodel");
    train.Arg("count", static_cast<int64_t>(features.size()));
    model_->Update(task_.task_id(), features, throughputs);
  }
  history_.emplace_back(total_measures_, best_seconds_);
  phase_times_.commit_seconds += SecondsBetween(t0, clock_->NowNanos());
  return best_seconds_;
}

double TaskTuner::TuneRound(int num_measures) {
  PlannedRound round = PlanRound(num_measures);
  if (round.to_measure.empty()) {
    return best_seconds_;
  }
  const int64_t t0 = clock_->NowNanos();
  std::vector<MeasureResult> results =
      measurer_->MeasureBatch(round.to_measure, cache_, options_.cache_client_id,
                              tracer_.enabled() ? &tracer_ : nullptr);
  phase_times_.measure_wall_seconds += SecondsBetween(t0, clock_->NowNanos());
  return CommitRound(std::move(round), results);
}

TuneResult TuneTask(const SearchTask& task, Measurer* measurer, CostModel* model,
                    int num_measure_trials, int measures_per_round, SearchOptions options) {
  TaskTuner tuner(task, measurer, model, options);
  int done = 0;
  while (done < num_measure_trials) {
    int batch = std::min(measures_per_round, num_measure_trials - done);
    tuner.TuneRound(batch);
    done += batch;
  }
  TuneResult result;
  result.best_seconds = tuner.best_seconds();
  result.best_throughput = tuner.best_throughput();
  result.best_state = tuner.best_state();
  result.history = tuner.history();
  return result;
}

}  // namespace ansor
