#include "src/search/search_policy.h"

#include <algorithm>
#include <unordered_set>

#include "src/analysis/program_verifier.h"
#include "src/support/thread_pool.h"

namespace ansor {

TaskTuner::TaskTuner(SearchTask task, Measurer* measurer, CostModel* model,
                     SearchOptions options)
    : task_(std::move(task)),
      measurer_(measurer),
      model_(model),
      options_(options),
      rng_(options.seed ^ task_.task_id()) {
  // Task-lifetime compiled-program cache: owned by the tuner unless the
  // caller injected one to observe or share it.
  if (options_.program_cache != nullptr) {
    cache_ = options_.program_cache;
  } else {
    owned_cache_ = std::make_unique<ProgramCache>(options_.program_cache_capacity);
    cache_ = owned_cache_.get();
  }
  sketches_ = GenerateSketches(task_.dag.get(), options_.sketch);
}

std::vector<State> TaskTuner::SampleRandomPrograms(int count) {
  std::vector<State> result;
  if (sketches_.empty()) {
    return result;
  }
  int attempts = 0;
  int max_attempts = count * 8;
  while (static_cast<int>(result.size()) < count && attempts < max_attempts) {
    ++attempts;
    const State& sketch = sketches_[rng_.Index(sketches_.size())];
    State program = SampleCompleteProgram(sketch, task_.dag.get(), &rng_, options_.sampler);
    if (!program.failed()) {
      result.push_back(std::move(program));
    }
  }
  return result;
}

double TaskTuner::TuneRound(int num_measures) {
  if (sketches_.empty() || num_measures <= 0) {
    return best_seconds_;
  }
  const int verify_level = EffectiveVerifyLevel(options_.verify_level);

  // 1. Candidate generation. Signatures are kept alongside the candidates so
  // the measurement bookkeeping below never rebuilds them.
  std::vector<State> to_measure;
  std::vector<std::string> to_measure_sigs;
  std::unordered_set<std::string> picked;
  auto add_candidate = [&](const State& s) {
    if (static_cast<int>(to_measure.size()) >= num_measures) {
      return;
    }
    std::string sig = StepSignature(s);
    if (measured_signatures_.count(sig) > 0) {
      return;  // already measured validly in a previous round
    }
    auto invalid_it = invalid_signature_counts_.find(sig);
    if (invalid_it != invalid_signature_counts_.end() &&
        invalid_it->second >= options_.max_invalid_measures) {
      return;  // failed measurement too often: treat as deterministically bad
    }
    if (!picked.insert(sig).second) {
      return;
    }
    if (verify_level >= 1) {
      // Pre-measurement static filter: a candidate the verifier proves
      // illegal for this machine (failed lowering, bounds/domain/ordering
      // violation, resource limits) must not burn a trial. The report rides
      // on the cached artifact, so candidates the evolution already compiled
      // are filtered for free.
      ProgramArtifactPtr artifact = cache_->GetOrBuild(s);
      if (!artifact->statically_legal(&measurer_->machine())) {
        ++statically_rejected_;
        return;
      }
    }
    to_measure.push_back(s);
    to_measure_sigs.push_back(std::move(sig));
  };

  if (options_.enable_fine_tuning) {
    // Initial population: fresh random samples + best measured programs.
    std::vector<State> init = SampleRandomPrograms(options_.random_samples_per_round);
    for (const auto& [seconds, state] : measured_best_) {
      init.push_back(state);
    }
    EvolutionOptions evo;
    evo.population = options_.population;
    evo.generations = options_.generations;
    evo.crossover_probability = options_.crossover_probability;
    evo.sampler = options_.sampler;
    evo.thread_pool = options_.thread_pool;
    evo.program_cache = cache_;
    evo.verify_level = options_.verify_level;
    EvolutionarySearch evolution(task_.dag.get(), model_, rng_.Fork(), evo);
    int n_evolved = std::max(1, num_measures - static_cast<int>(options_.eps_random *
                                                                num_measures));
    for (const State& s : evolution.Evolve(init, n_evolved)) {
      add_candidate(s);
    }
    statically_rejected_ += evolution.stats().statically_rejected;
  }
  // Epsilon-greedy random exploration (all candidates when fine-tuning is
  // disabled — the "No fine-tuning" ablation).
  for (const State& s : SampleRandomPrograms(num_measures)) {
    add_candidate(s);
  }

  if (to_measure.empty()) {
    return best_seconds_;
  }

  // 2. Measurement on the (simulated) hardware, served from the task cache:
  // candidates the evolution already lowered are not compiled again. Only
  // programs that measured valid are recorded in measured_signatures_: a
  // transient invalid result must not permanently blacklist the program.
  // Invalid results are tallied per signature and blacklist only after
  // max_invalid_measures attempts.
  std::vector<MeasureResult> results = measurer_->MeasureBatch(to_measure, cache_);
  total_measures_ += static_cast<int64_t>(to_measure.size());

  // 3. Update best + training data. Training features are copied out of the
  // cached artifacts (the per-candidate copy is mutated below when a
  // transient failure must not train a zero-throughput sample).
  std::vector<std::vector<std::vector<float>>> features(to_measure.size());
  ThreadPool::OrGlobal(options_.thread_pool).ParallelFor(to_measure.size(), [&](size_t i) {
    features[i] = cache_->GetOrBuild(to_measure[i])->features();
  });
  std::vector<double> throughputs(to_measure.size(), 0.0);
  for (size_t i = 0; i < to_measure.size(); ++i) {
    if (!results[i].valid) {
      ++invalid_measures_;
      int failures = ++invalid_signature_counts_[to_measure_sigs[i]];
      // A possibly-transient failure must not teach the model the program has
      // zero throughput. Once the failure count reaches the blacklist
      // threshold the program is confirmed deterministically bad: train the
      // zero-throughput sample so the model steers away from its family.
      if (failures < options_.max_invalid_measures) {
        features[i].clear();
      }
      continue;
    }
    invalid_signature_counts_.erase(to_measure_sigs[i]);  // a transient failure recovered
    measured_signatures_.insert(std::move(to_measure_sigs[i]));
    throughputs[i] = results[i].throughput;
    if (results[i].seconds < best_seconds_) {
      best_seconds_ = results[i].seconds;
      best_throughput_ = results[i].throughput;
      best_state_ = to_measure[i];
      best_state_->RetainDag(task_.dag);
    }
    measured_best_.emplace_back(results[i].seconds, to_measure[i]);
    if (options_.record_log != nullptr) {
      TuningRecord record;
      record.task_id = task_.task_id();
      record.seconds = results[i].seconds;
      record.steps = to_measure[i].steps();
      options_.record_log->Add(std::move(record));
    }
  }
  std::sort(measured_best_.begin(), measured_best_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (measured_best_.size() > 16) {
    measured_best_.resize(16);
  }

  if (options_.enable_fine_tuning) {
    model_->Update(task_.task_id(), features, throughputs);
  }
  history_.emplace_back(total_measures_, best_seconds_);
  return best_seconds_;
}

TuneResult TuneTask(const SearchTask& task, Measurer* measurer, CostModel* model,
                    int num_measure_trials, int measures_per_round, SearchOptions options) {
  TaskTuner tuner(task, measurer, model, options);
  int done = 0;
  while (done < num_measure_trials) {
    int batch = std::min(measures_per_round, num_measure_trials - done);
    tuner.TuneRound(batch);
    done += batch;
  }
  TuneResult result;
  result.best_seconds = tuner.best_seconds();
  result.best_throughput = tuner.best_throughput();
  result.best_state = tuner.best_state();
  result.history = tuner.history();
  return result;
}

}  // namespace ansor
