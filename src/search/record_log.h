// Tuning-record logs: the single-tuner compatibility wrapper over the store
// layer (src/store/record_store.h), mirroring TVM auto_scheduler's record
// files.
//
// Records let users resume tuning, apply the best found schedule without
// re-searching, and share results between machines. A RecordLog is a thin
// RecordStore in append-log mode (no dedup — a tuner never re-measures the
// same program, and lossless round-trips must keep whatever the caller
// added) whose default on-disk codec is the legacy text format:
//
//   task=<hex hash>|seconds=<float>|steps=<step>;<step>;...
//
// Loading accepts both codecs (auto-detected), so a RecordLog reads binary
// stores and a RecordStore reads old text logs — the migration path runs in
// both directions. Fleet-scale persistence (signature dedup, binary
// container, client attribution) lives on RecordStore itself; new code
// should use it directly.
#ifndef ANSOR_SRC_SEARCH_RECORD_LOG_H_
#define ANSOR_SRC_SEARCH_RECORD_LOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/store/record_store.h"

namespace ansor {

class RecordLog {
 public:
  RecordLog() : store_(RecordStore::Options{/*dedup=*/false}) {}

  void Add(TuningRecord record) { store_.Add(std::move(record)); }
  const std::vector<TuningRecord>& records() const { return store_.records(); }

  // Best (lowest-latency) record for a task; nullopt if none logged.
  std::optional<TuningRecord> BestFor(uint64_t task_id) const {
    return store_.BestFor(task_id);
  }

  // Replays the best record for the DAG's task id; returns a failed state if
  // no record exists or replay breaks (e.g. the DAG changed).
  State ReplayBest(const ComputeDAG* dag) const { return store_.ReplayBest(dag); }

  bool SaveToFile(const std::string& path) const {
    return store_.SaveToFile(path, RecordCodec::kText);
  }
  // Appends the file's records (text or binary, auto-detected). The stats
  // surface what actually happened: loaded vs skipped-as-malformed counts,
  // with ok false when the file could not be read at all. Converts to bool
  // for the legacy `if (!log.LoadFromFile(path))` call sites.
  RecordLoadStats LoadFromFile(const std::string& path) {
    return store_.LoadFromFile(path);
  }

  std::string Serialize() const { return store_.Serialize(RecordCodec::kText); }
  // Parses a multi-line text dump; malformed lines are skipped. Returns the
  // number of records loaded (Deserialize on the underlying store reports
  // the full loaded/skipped stats).
  size_t Deserialize(const std::string& text) { return store_.Deserialize(text).loaded; }

  // The underlying store (e.g. to re-serialize an old log into the binary
  // codec: log.store().Serialize()).
  const RecordStore& store() const { return store_; }
  RecordStore& store() { return store_; }

 private:
  RecordStore store_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SEARCH_RECORD_LOG_H_
