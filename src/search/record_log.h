// Tuning-record serialization: persistent logs of (program, measurement)
// pairs, mirroring TVM auto_scheduler's record files.
//
// Records let users resume tuning, apply the best found schedule without
// re-searching, and share results between machines. The format is one record
// per line:
//
//   task=<hex hash>|seconds=<float>|steps=<step>;<step>;...
//
// Steps serialize to a compact textual form that round-trips through
// ParseStep; programs are reconstructed by replaying the steps onto the
// task's ComputeDAG.
#ifndef ANSOR_SRC_SEARCH_RECORD_LOG_H_
#define ANSOR_SRC_SEARCH_RECORD_LOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/ir/state.h"

namespace ansor {

struct TuningRecord {
  uint64_t task_id = 0;
  double seconds = 0.0;
  std::vector<Step> steps;
};

// --- Step (de)serialization ---------------------------------------------------

// Compact, lossless textual encoding of one step.
std::string SerializeStep(const Step& step);
// Parses a serialized step; returns nullopt on malformed input.
std::optional<Step> ParseStep(const std::string& text);

// --- Record (de)serialization --------------------------------------------------

std::string SerializeRecord(const TuningRecord& record);
std::optional<TuningRecord> ParseRecord(const std::string& line);

// In-memory log with file persistence.
class RecordLog {
 public:
  void Add(TuningRecord record) { records_.push_back(std::move(record)); }
  const std::vector<TuningRecord>& records() const { return records_; }

  // Best (lowest-latency) record for a task; nullopt if none logged.
  std::optional<TuningRecord> BestFor(uint64_t task_id) const;

  // Replays the best record for the DAG's task id; returns a failed state if
  // no record exists or replay breaks (e.g. the DAG changed).
  State ReplayBest(const ComputeDAG* dag) const;

  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);  // appends to current records

  std::string Serialize() const;
  // Parses a multi-line dump; malformed lines are skipped. Returns the number
  // of records loaded.
  size_t Deserialize(const std::string& text);

 private:
  std::vector<TuningRecord> records_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SEARCH_RECORD_LOG_H_
