#include "src/search/record_log.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/logging.h"
#include "src/support/util.h"

namespace ansor {
namespace {

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kSplit: return "SP";
    case StepKind::kFollowSplit: return "FSP";
    case StepKind::kFuse: return "FU";
    case StepKind::kReorder: return "RE";
    case StepKind::kComputeAt: return "CA";
    case StepKind::kComputeInline: return "CI";
    case StepKind::kComputeRoot: return "CR";
    case StepKind::kCacheWrite: return "CW";
    case StepKind::kRfactor: return "RF";
    case StepKind::kAnnotation: return "AN";
    case StepKind::kPragma: return "PR";
  }
  return "??";
}

std::optional<StepKind> StepKindFromName(const std::string& name) {
  if (name == "SP") return StepKind::kSplit;
  if (name == "FSP") return StepKind::kFollowSplit;
  if (name == "FU") return StepKind::kFuse;
  if (name == "RE") return StepKind::kReorder;
  if (name == "CA") return StepKind::kComputeAt;
  if (name == "CI") return StepKind::kComputeInline;
  if (name == "CR") return StepKind::kComputeRoot;
  if (name == "CW") return StepKind::kCacheWrite;
  if (name == "RF") return StepKind::kRfactor;
  if (name == "AN") return StepKind::kAnnotation;
  if (name == "PR") return StepKind::kPragma;
  return std::nullopt;
}

std::vector<std::string> SplitString(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

std::string SerializeStep(const Step& step) {
  // Fields are comma-separated; the stage name goes last so commas never
  // collide with integer fields (stage names contain no commas by
  // construction — they derive from tensor names).
  std::ostringstream os;
  os << StepKindName(step.kind);
  switch (step.kind) {
    case StepKind::kSplit:
      os << "," << step.iter << "," << Join(step.lengths, ":");
      break;
    case StepKind::kFollowSplit:
      os << "," << step.iter << "," << step.src_step << "," << step.n_parts;
      break;
    case StepKind::kFuse:
      os << "," << step.iter << "," << step.fuse_count;
      break;
    case StepKind::kReorder:
      os << "," << Join(step.order, ":");
      break;
    case StepKind::kComputeAt:
      os << "," << step.target_iter << "," << step.target_stage;
      break;
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      break;
    case StepKind::kRfactor:
      os << "," << step.iter;
      break;
    case StepKind::kAnnotation:
      os << "," << step.iter << "," << static_cast<int>(step.annotation);
      break;
    case StepKind::kPragma:
      os << "," << step.pragma_value;
      break;
  }
  os << "@" << step.stage;
  return os.str();
}

std::optional<Step> ParseStep(const std::string& text) {
  size_t at = text.rfind('@');
  if (at == std::string::npos) {
    return std::nullopt;
  }
  std::string stage = text.substr(at + 1);
  std::vector<std::string> fields = SplitString(text.substr(0, at), ',');
  if (fields.empty()) {
    return std::nullopt;
  }
  auto kind = StepKindFromName(fields[0]);
  if (!kind.has_value()) {
    return std::nullopt;
  }
  auto parse_ints = [](const std::string& s) {
    std::vector<int64_t> values;
    if (s.empty()) {
      return values;
    }
    for (const std::string& part : SplitString(s, ':')) {
      values.push_back(std::atoll(part.c_str()));
    }
    return values;
  };
  Step step;
  step.kind = *kind;
  step.stage = stage;
  switch (*kind) {
    case StepKind::kSplit: {
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.lengths = parse_ints(fields[2]);
      break;
    }
    case StepKind::kFollowSplit:
      if (fields.size() != 4) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.src_step = std::atoi(fields[2].c_str());
      step.n_parts = std::atoi(fields[3].c_str());
      break;
    case StepKind::kFuse:
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.fuse_count = std::atoi(fields[2].c_str());
      break;
    case StepKind::kReorder: {
      if (fields.size() != 2) return std::nullopt;
      for (int64_t v : parse_ints(fields[1])) {
        step.order.push_back(static_cast<int>(v));
      }
      break;
    }
    case StepKind::kComputeAt:
      if (fields.size() != 3) return std::nullopt;
      step.target_iter = std::atoi(fields[1].c_str());
      step.target_stage = fields[2];
      break;
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      if (fields.size() != 1) return std::nullopt;
      break;
    case StepKind::kRfactor:
      if (fields.size() != 2) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      break;
    case StepKind::kAnnotation:
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.annotation = static_cast<IterAnnotation>(std::atoi(fields[2].c_str()));
      break;
    case StepKind::kPragma:
      if (fields.size() != 2) return std::nullopt;
      step.pragma_value = std::atoi(fields[1].c_str());
      break;
  }
  return step;
}

std::string SerializeRecord(const TuningRecord& record) {
  std::ostringstream os;
  char task_hex[32];
  std::snprintf(task_hex, sizeof(task_hex), "%016" PRIx64, record.task_id);
  os << "task=" << task_hex << "|seconds=" << FormatDouble(record.seconds * 1e9, 6)
     << "e-9|steps=";
  for (size_t i = 0; i < record.steps.size(); ++i) {
    if (i > 0) {
      os << ";";
    }
    os << SerializeStep(record.steps[i]);
  }
  return os.str();
}

std::optional<TuningRecord> ParseRecord(const std::string& line) {
  std::vector<std::string> sections = SplitString(line, '|');
  if (sections.size() != 3) {
    return std::nullopt;
  }
  auto value_of = [&](const std::string& section,
                      const std::string& key) -> std::optional<std::string> {
    if (section.rfind(key + "=", 0) != 0) {
      return std::nullopt;
    }
    return section.substr(key.size() + 1);
  };
  auto task = value_of(sections[0], "task");
  auto seconds = value_of(sections[1], "seconds");
  auto steps = value_of(sections[2], "steps");
  if (!task.has_value() || !seconds.has_value() || !steps.has_value()) {
    return std::nullopt;
  }
  TuningRecord record;
  record.task_id = std::strtoull(task->c_str(), nullptr, 16);
  record.seconds = std::atof(seconds->c_str());
  if (!std::isfinite(record.seconds)) {
    return std::nullopt;
  }
  if (!steps->empty()) {
    for (const std::string& part : SplitString(*steps, ';')) {
      auto step = ParseStep(part);
      if (!step.has_value()) {
        return std::nullopt;
      }
      record.steps.push_back(std::move(*step));
    }
  }
  return record;
}

std::optional<TuningRecord> RecordLog::BestFor(uint64_t task_id) const {
  std::optional<TuningRecord> best;
  for (const TuningRecord& r : records_) {
    if (r.task_id != task_id) {
      continue;
    }
    if (!best.has_value() || r.seconds < best->seconds) {
      best = r;
    }
  }
  return best;
}

State RecordLog::ReplayBest(const ComputeDAG* dag) const {
  auto best = BestFor(dag->CanonicalHash());
  if (!best.has_value()) {
    State failed(dag);
    failed.Split("__no_record__", 0, {1});
    return failed;
  }
  return State::Replay(dag, best->steps);
}

std::string RecordLog::Serialize() const {
  std::ostringstream os;
  for (const TuningRecord& r : records_) {
    os << SerializeRecord(r) << "\n";
  }
  return os.str();
}

size_t RecordLog::Deserialize(const std::string& text) {
  size_t loaded = 0;
  for (const std::string& line : SplitString(text, '\n')) {
    if (line.empty()) {
      continue;
    }
    auto record = ParseRecord(line);
    if (record.has_value()) {
      records_.push_back(std::move(*record));
      ++loaded;
    }
  }
  return loaded;
}

bool RecordLog::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  out << Serialize();
  return out.good();
}

bool RecordLog::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Deserialize(buffer.str());
  return true;
}

}  // namespace ansor
