#include "src/analysis/access_pattern.h"

#include <cmath>

namespace ansor {
namespace {

// Extracts var terms from an index expression, descending through select /
// min / max so that padded accesses still yield their affine skeleton.
// Returns false when something entirely unrecognized appears.
bool CollectIndexTerms(const Expr& e,
                       const std::unordered_map<int64_t, int64_t>& var_extent,
                       std::vector<AxisTerm>* terms) {
  if (DecomposeIndex(e, var_extent, terms)) {
    return true;
  }
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kSelect:
      // Use the "true" branch's pattern: padding selects read the interior.
      return CollectIndexTerms(n.operands[1], var_extent, terms);
    case ExprKind::kBinary:
      if (n.binary_op == BinaryOp::kMin || n.binary_op == BinaryOp::kMax) {
        return CollectIndexTerms(n.operands[0], var_extent, terms);
      }
      if (n.binary_op == BinaryOp::kAdd || n.binary_op == BinaryOp::kSub) {
        return CollectIndexTerms(n.operands[0], var_extent, terms) &&
               CollectIndexTerms(n.operands[1], var_extent, terms);
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

AccessPattern AnalyzeAccess(const BufferRef& buffer, const std::vector<Expr>& indices,
                            bool is_write,
                            const std::unordered_map<int64_t, int64_t>& var_extent) {
  AccessPattern pattern;
  pattern.buffer = buffer;
  pattern.is_write = is_write;
  pattern.analyzable = true;

  // Row-major strides per dimension.
  std::vector<int64_t> dim_stride(buffer->shape.size(), 1);
  for (size_t d = buffer->shape.size(); d > 1; --d) {
    dim_stride[d - 2] = dim_stride[d - 1] * buffer->shape[d - 1];
  }

  for (size_t d = 0; d < indices.size(); ++d) {
    std::vector<AxisTerm> terms;
    if (!CollectIndexTerms(indices[d], var_extent, &terms)) {
      pattern.analyzable = false;
      continue;
    }
    for (const AxisTerm& term : terms) {
      if (term.is_constant || term.var_id < 0) {
        continue;
      }
      VarContribution& c = pattern.vars[term.var_id];
      c.stride += static_cast<double>(term.multiplier) *
                  static_cast<double>(dim_stride[d]) / static_cast<double>(term.divisor);
      c.distinct = std::max(c.distinct, term.component_extent);
    }
  }
  return pattern;
}

std::vector<AccessPattern> StatementAccesses(
    const LoopTreeNode& store, const std::unordered_map<int64_t, int64_t>& var_extent) {
  std::vector<AccessPattern> accesses;
  for (const AccessSite& site : StatementAccessSites(store)) {
    accesses.push_back(AnalyzeAccess(site.buffer, *site.indices, site.is_write, var_extent));
  }
  return accesses;
}

std::vector<AccessSite> StatementAccessSites(const LoopTreeNode& store) {
  std::vector<AccessSite> sites;
  std::vector<const ExprNode*> loads;
  if (store.value.defined()) {
    CollectLoads(store.value, &loads);
  }
  for (const ExprNode* load : loads) {
    sites.push_back(AccessSite{load->buffer, &load->operands, false});
  }
  sites.push_back(AccessSite{store.buffer, &store.indices, true});
  return sites;
}

}  // namespace ansor
