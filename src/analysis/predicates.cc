#include "src/analysis/predicates.h"

#include <unordered_map>

namespace ansor {
namespace {

// True when every load in the body indexes purely with the op's own axis
// variables, in order (identity access).
bool AllLoadsIdentity(const OperationRef& op) {
  std::vector<const ExprNode*> loads;
  CollectLoads(op->body, &loads);
  for (const ExprNode* load : loads) {
    if (load->operands.size() != op->axis.size()) {
      return false;
    }
    for (size_t d = 0; d < op->axis.size(); ++d) {
      if (!StructuralEqual(load->operands[d], op->axis[d])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::vector<std::vector<int>> StateConsumers(const State& state) {
  std::unordered_map<std::string, int> index;
  for (size_t i = 0; i < state.stages().size(); ++i) {
    index[state.stages()[i].name()] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> consumers(state.stages().size());
  for (size_t i = 0; i < state.stages().size(); ++i) {
    const Stage& s = state.stages()[i];
    if (s.loc.kind == ComputeLocKind::kInlined) {
      continue;  // its body has been folded into consumers already
    }
    std::vector<const ExprNode*> loads;
    CollectLoads(s.op->body, &loads);
    std::unordered_map<int, bool> seen;
    for (const ExprNode* load : loads) {
      auto it = index.find(load->buffer->name);
      if (it != index.end() && !seen[it->second]) {
        seen[it->second] = true;
        consumers[static_cast<size_t>(it->second)].push_back(static_cast<int>(i));
      }
    }
  }
  return consumers;
}

int64_t SpaceDomainSize(const Stage& stage) {
  return stage.op->output->NumElements();
}

int64_t ReductionDomainSize(const Stage& stage) {
  int64_t domain = 1;
  for (const Expr& axis : stage.op->ReduceAxes()) {
    domain *= axis->var_extent;
  }
  return domain;
}

double StageFlopCount(const Stage& stage) {
  return static_cast<double>(SpaceDomainSize(stage)) * ExprFlopCount(stage.op->body);
}

bool IsStrictInlinable(const State& state, int stage_idx) {
  const Stage& s = state.stage(stage_idx);
  if (s.op->kind != OpKind::kCompute || HasReduce(s.op->body)) {
    return false;
  }
  if (!AllLoadsIdentity(s.op)) {
    return false;
  }
  auto consumers = StateConsumers(state);
  return !consumers[static_cast<size_t>(stage_idx)].empty();
}

bool HasDataReuse(const State& state, int stage_idx, const AnalysisConfig& config) {
  const Stage& s = state.stage(stage_idx);
  if (s.op->kind != OpKind::kCompute) {
    return false;
  }
  return ReductionDomainSize(s) >= config.min_reuse_reduction;
}

bool HasFusibleConsumer(const State& state, int stage_idx, int* consumer) {
  auto consumers = StateConsumers(state);
  const auto& list = consumers[static_cast<size_t>(stage_idx)];
  if (list.size() != 1) {
    return false;
  }
  const Stage& s = state.stage(stage_idx);
  const Stage& c = state.stage(list[0]);
  if (c.op->axis.size() != s.op->axis.size() || HasReduce(c.op->body)) {
    return false;
  }
  if (c.loc.kind != ComputeLocKind::kRoot) {
    return false;
  }
  // The consumer must read the producer with identity indices.
  std::vector<const ExprNode*> loads;
  CollectLoads(c.op->body, &loads);
  for (const ExprNode* load : loads) {
    if (load->buffer->name != s.name()) {
      continue;
    }
    for (size_t d = 0; d < c.op->axis.size(); ++d) {
      if (!StructuralEqual(load->operands[d], c.op->axis[d])) {
        return false;
      }
    }
  }
  if (consumer != nullptr) {
    *consumer = list[0];
  }
  return true;
}

bool HasMoreReductionParallel(const State& state, int stage_idx,
                              const AnalysisConfig& config) {
  const Stage& s = state.stage(stage_idx);
  if (s.op->kind != OpKind::kCompute) {
    return false;
  }
  int64_t space = SpaceDomainSize(s);
  int64_t reduction = ReductionDomainSize(s);
  return space <= config.max_space_for_rfactor &&
         reduction >= space * config.min_reduction_space_ratio;
}

}  // namespace ansor
