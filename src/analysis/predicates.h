// Static analysis predicates from paper Table 1.
//
// "We statically analyze the computation definitions to get the values for
// these predications." The sketch-generation rules consult these to decide
// which derivation applies at each node.
#ifndef ANSOR_SRC_ANALYSIS_PREDICATES_H_
#define ANSOR_SRC_ANALYSIS_PREDICATES_H_

#include <vector>

#include "src/ir/state.h"

namespace ansor {

// Tunable thresholds for the heuristic predicates.
struct AnalysisConfig {
  // HasDataReuse: minimum reduction-domain size for "plentiful data reuse".
  int64_t min_reuse_reduction = 2;
  // HasMoreReductionParallel: space parallelism below this and ...
  int64_t max_space_for_rfactor = 256;
  // ... reduction domain at least this many times larger than the space
  // domain (paper: "little parallelism in space dimensions but ample
  // parallelism in reduction dimensions", e.g. 2-norm, C_2x2 = A_2x512 B_512x2).
  int64_t min_reduction_space_ratio = 16;
};

// Consumer stage indices for each stage in the state's current DAG view
// (which may contain cache/rfactor stages absent from the original DAG).
// Inlined stages do not count as consumers.
std::vector<std::vector<int>> StateConsumers(const State& state);

// The node is a simple element-wise operator that can always be inlined
// (element-wise add, ReLU, ...): no reduction, every input read with plain
// axis-variable indices, and it has at least one consumer.
bool IsStrictInlinable(const State& state, int stage_idx);

// The node is compute-intensive with plentiful data-reuse opportunity
// (matmul, conv2d): it has a reduction domain of meaningful size.
bool HasDataReuse(const State& state, int stage_idx,
                  const AnalysisConfig& config = AnalysisConfig());

// The node has exactly one consumer, and that consumer reads it with identity
// indices so it can be fused (matmul + bias_add, conv2d + relu). Returns the
// consumer stage index via *consumer when true.
bool HasFusibleConsumer(const State& state, int stage_idx, int* consumer = nullptr);

// Little space parallelism but ample reduction parallelism (matrix 2-norm,
// tall-skinny matmul): rfactor candidates.
bool HasMoreReductionParallel(const State& state, int stage_idx,
                              const AnalysisConfig& config = AnalysisConfig());

// Space / reduction domain sizes of a stage's op.
int64_t SpaceDomainSize(const Stage& stage);
int64_t ReductionDomainSize(const Stage& stage);

// Floating point operations executed by one full evaluation of this stage.
double StageFlopCount(const Stage& stage);

}  // namespace ansor

#endif  // ANSOR_SRC_ANALYSIS_PREDICATES_H_
