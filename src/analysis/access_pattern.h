// Buffer access pattern analysis over lowered programs.
//
// For every load/store in an innermost statement we recover, per enclosing
// loop variable, the flattened (row-major) stride and the number of distinct
// positions the loop contributes. The feature extractor (Appendix B "Buffer
// Access Feature") and the hardware simulator both build on this.
#ifndef ANSOR_SRC_ANALYSIS_ACCESS_PATTERN_H_
#define ANSOR_SRC_ANALYSIS_ACCESS_PATTERN_H_

#include <unordered_map>
#include <vector>

#include "src/expr/term.h"
#include "src/lower/loop_tree.h"

namespace ansor {

struct VarContribution {
  // Flattened element stride contributed by one step of the variable.
  double stride = 0.0;
  // Number of distinct values the variable contributes along this access.
  int64_t distinct = 1;
};

struct AccessPattern {
  BufferRef buffer;
  bool is_write = false;
  // True when every index decomposed into the supported term grammar; when
  // false only `buffer` is meaningful and callers should be conservative.
  bool analyzable = false;
  // Loop var id -> contribution.
  std::unordered_map<int64_t, VarContribution> vars;

  double StrideOf(int64_t var_id) const {
    auto it = vars.find(var_id);
    return it == vars.end() ? 0.0 : it->second.stride;
  }
  int64_t DistinctOf(int64_t var_id) const {
    auto it = vars.find(var_id);
    return it == vars.end() ? 1 : it->second.distinct;
  }
};

// Analyzes one multi-dimensional access given the loop-variable extents in
// scope. Non-affine dims (select from padding, min guards) are handled by
// analyzing the affine skeleton of their sub-terms where possible and marking
// the pattern unanalyzable otherwise.
AccessPattern AnalyzeAccess(const BufferRef& buffer, const std::vector<Expr>& indices,
                            bool is_write,
                            const std::unordered_map<int64_t, int64_t>& var_extent);

// All accesses performed by a store statement (its loads plus the store).
std::vector<AccessPattern> StatementAccesses(
    const LoopTreeNode& store, const std::unordered_map<int64_t, int64_t>& var_extent);

// One raw access site of a store statement: the buffer, the (unanalyzed)
// index expressions, and whether it writes. The program verifier bounds each
// index against the buffer shape; AnalyzeAccess consumes the same sites to
// derive strides, so both walks agree on what counts as an access.
struct AccessSite {
  BufferRef buffer;
  const std::vector<Expr>* indices = nullptr;  // borrowed from the store node
  bool is_write = false;
};

// Enumerates the access sites of a store statement: every load in its value
// expression (pre-order) followed by the store itself. The returned sites
// borrow from `store`, which must outlive them.
std::vector<AccessSite> StatementAccessSites(const LoopTreeNode& store);

}  // namespace ansor

#endif  // ANSOR_SRC_ANALYSIS_ACCESS_PATTERN_H_
