// Static schedule verifier: proves legality properties of lowered programs
// without executing them.
//
// The search discards most illegal candidates by paying for them — a failed
// lowering, a wasted measurement, or an interpreter mismatch three subsystems
// after the bad mutation. This pass analyzes a LoweredProgram (plus the State
// that produced it) and returns a structured per-check report:
//
//   1. kLowering       — the state lowered at all (failed lowerings carry the
//                        lowering diagnostic; all other checks are skipped).
//   2. kBufferBounds   — every buffer access provably stays inside its
//                        buffer's shape: each index expression is bounded by
//                        interval analysis (RangeOf) over the enclosing loop
//                        extents, clamped by dominating guard conditions.
//   3. kIteratorDomain — split/fuse/reorder left every original axis fully
//                        covered: the reconstruction expression of each axis
//                        spans exactly [0, extent) (or at least that, for
//                        guarded axes), and no reconstruction references a
//                        variable that is not an iterator of the stage (no
//                        dangling iterators).
//   4. kDefBeforeUse   — in execution (DFS) order, the first read of every
//                        program-produced buffer comes after its first store;
//                        accumulating stores count as reads of their own
//                        buffer, so uninitialized reductions are caught.
//   5. kResourceLimits — machine-dependent: total buffer footprint fits the
//                        MachineModel's memory capacity, vectorized loop
//                        extents fit its register budget, GPU thread extents
//                        fit the per-SM resident-thread limit.
//
// Checks 1-4 are pure functions of (state, program) and are stamped onto the
// ProgramArtifact at construction, so the ProgramCache computes them once per
// distinct program. Check 5 depends on the machine and is memoized on the
// artifact keyed by MachineModel::Fingerprint(), under the same
// once-per-artifact discipline as the stage-score memo.
//
// Soundness direction: a kPass verdict is a proof — the verifier never
// passes a bounds/domain/ordering property that could fail at runtime. The
// converse does not hold: an unanalyzable index is a kFail even though the
// program might be legal, because the search must only skip measurements for
// candidates whose legality it cannot establish more cheaply elsewhere.
#ifndef ANSOR_SRC_ANALYSIS_PROGRAM_VERIFIER_H_
#define ANSOR_SRC_ANALYSIS_PROGRAM_VERIFIER_H_

#include <array>
#include <string>
#include <vector>

#include "src/hwsim/machine_model.h"
#include "src/lower/loop_tree.h"
#include "src/telemetry/trace.h"

namespace ansor {

enum class VerifierCheck {
  kLowering = 0,
  kBufferBounds = 1,
  kIteratorDomain = 2,
  kDefBeforeUse = 3,
  kResourceLimits = 4,
};
inline constexpr int kNumVerifierChecks = 5;

const char* VerifierCheckName(VerifierCheck check);

enum class VerifierVerdict {
  kSkipped,  // not evaluated (e.g. structural checks after a failed lowering)
  kPass,     // proven legal
  kFail,     // proven illegal, or not provable (diagnostics say which)
};

struct CheckVerdict {
  VerifierVerdict verdict = VerifierVerdict::kSkipped;
  // One entry per violation (empty unless verdict == kFail).
  std::vector<std::string> diagnostics;

  bool failed() const { return verdict == VerifierVerdict::kFail; }
};

struct VerifierReport {
  std::array<CheckVerdict, kNumVerifierChecks> checks;

  const CheckVerdict& check(VerifierCheck c) const {
    return checks[static_cast<size_t>(c)];
  }
  CheckVerdict& check(VerifierCheck c) { return checks[static_cast<size_t>(c)]; }

  // True when no check failed (skipped checks do not count against legality;
  // a report whose structural checks passed but whose resource check was
  // never requested is legal as far as it was evaluated).
  bool legal() const {
    for (const CheckVerdict& c : checks) {
      if (c.failed()) {
        return false;
      }
    }
    return true;
  }

  // Multi-line rendering: one line per check with verdict and diagnostics.
  std::string ToString() const;
};

// Runs the machine-independent checks (kLowering, kBufferBounds,
// kIteratorDomain, kDefBeforeUse). Pure function of its arguments; `program`
// must be the lowering of `state`. kResourceLimits is left kSkipped — see
// VerifyResources. A non-null `tracer` records the consult as a
// "verify_structural" span (the verdict is unaffected).
VerifierReport VerifyProgram(const State& state, const LoweredProgram& program,
                             const Tracer* tracer = nullptr);

// Runs the machine-dependent resource checks against one machine model. Pure
// function of its arguments; returns kSkipped when the program's lowering
// failed (there is nothing to check). A non-null `tracer` records the
// consult as a "verify_resources" span.
CheckVerdict VerifyResources(const LoweredProgram& program, const MachineModel& machine,
                             const Tracer* tracer = nullptr);

// Resolves the effective verification level: the configured level, raised to
// at least 2 (invariant mode) when the ANSOR_CHECK_INVARIANTS environment
// variable is set to a non-zero value. Levels: 0 = off, 1 = statically
// illegal candidates are filtered before measurement, 2 = additionally every
// accepted mutation/crossover child is verified at construction site.
int EffectiveVerifyLevel(int configured);

}  // namespace ansor

#endif  // ANSOR_SRC_ANALYSIS_PROGRAM_VERIFIER_H_
