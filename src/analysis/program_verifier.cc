#include "src/analysis/program_verifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/access_pattern.h"
#include "src/expr/affine.h"
#include "src/support/util.h"

namespace ansor {
namespace {

// Proves every buffer access in bounds by interval analysis over the loop
// extents in scope, refined by dominating guard constraints. Guards come from
// two places, and both are matched structurally against subexpressions of the
// index (the lowering and the workload builders reuse the very expression
// they test, so a guard on `x` tightens an index like `x - pad`):
//   * kIf nodes — split guards `reconstruction < extent`;
//   * Select conditions — the evaluator is lazy, so a branch's loads only
//     execute when the condition lands on that branch (the padding idiom:
//     Select(pad <= x && x < h + pad, data[..., x - pad, ...], 0)).
class BoundsChecker {
 public:
  explicit BoundsChecker(CheckVerdict* verdict) : verdict_(verdict) {}

  void Walk(const LoopTreeNode& node) {
    switch (node.kind) {
      case LoopTreeKind::kLoop: {
        int64_t var_id = node.var->var_id;
        var_extent_[var_id] = node.extent;
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        var_extent_.erase(var_id);
        return;
      }
      case LoopTreeKind::kIf: {
        size_t before = guards_.size();
        CollectRangeConstraints(node.condition, /*negate=*/false, &guards_);
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        guards_.resize(before);
        return;
      }
      case LoopTreeKind::kStore: {
        CheckAccess(node, node.buffer, node.indices, /*is_write=*/true);
        WalkValue(node, node.value);
        return;
      }
    }
  }

 private:
  // Walks the stored value, pushing Select conditions as constraints for the
  // branch they dominate. The condition itself evaluates unconditionally.
  void WalkValue(const LoopTreeNode& store, const Expr& e) {
    if (!e.defined()) {
      return;
    }
    const ExprNode& n = *e.get();
    if (n.kind == ExprKind::kLoad) {
      CheckAccess(store, n.buffer, n.operands, /*is_write=*/false);
      for (const Expr& index : n.operands) {
        WalkValue(store, index);
      }
      return;
    }
    if (n.kind == ExprKind::kSelect) {
      WalkValue(store, n.operands[0]);
      size_t before = guards_.size();
      CollectRangeConstraints(n.operands[0], /*negate=*/false, &guards_);
      WalkValue(store, n.operands[1]);
      guards_.resize(before);
      CollectRangeConstraints(n.operands[0], /*negate=*/true, &guards_);
      WalkValue(store, n.operands[2]);
      guards_.resize(before);
      return;
    }
    for (const Expr& operand : n.operands) {
      WalkValue(store, operand);
    }
  }

  void CheckAccess(const LoopTreeNode& store, const BufferRef& buffer,
                   const std::vector<Expr>& indices, bool is_write) {
    const std::vector<int64_t>& shape = buffer->shape;
    if (indices.size() != shape.size()) {
      Fail(store, buffer, is_write,
           "rank mismatch: " + std::to_string(indices.size()) + " indices for a rank-" +
               std::to_string(shape.size()) + " buffer");
      return;
    }
    for (size_t d = 0; d < shape.size(); ++d) {
      const Expr& index = indices[d];
      ValueRange r = RangeOf(index, var_extent_, guards_);
      if (!r.known) {
        Fail(store, buffer, is_write,
             "dim " + std::to_string(d) + " index " + ToString(index) +
                 " is not statically boundable");
        continue;
      }
      if (r.min > r.max) {
        return;  // unsatisfiable guards: the access is dead code
      }
      if (r.min < 0 || r.max >= shape[d]) {
        Fail(store, buffer, is_write,
             "dim " + std::to_string(d) + " index " + ToString(index) + " spans [" +
                 std::to_string(r.min) + ", " + std::to_string(r.max) + "] outside [0, " +
                 std::to_string(shape[d] - 1) + "]");
      }
    }
  }

  void Fail(const LoopTreeNode& store, const BufferRef& buffer, bool is_write,
            const std::string& message) {
    verdict_->verdict = VerifierVerdict::kFail;
    verdict_->diagnostics.push_back((is_write ? "store to " : "load of ") + buffer->name +
                                    " in stage " + store.stage_name + ": " + message);
  }

  CheckVerdict* verdict_;
  std::unordered_map<int64_t, int64_t> var_extent_;
  std::vector<RangeConstraint> guards_;
};

void CheckBufferBounds(const LoweredProgram& program, CheckVerdict* verdict) {
  verdict->verdict = VerifierVerdict::kPass;
  BoundsChecker checker(verdict);
  for (const LoopTreeNodeRef& root : program.roots) {
    checker.Walk(*root);
  }
}

void CheckIteratorDomains(const State& state, CheckVerdict* verdict) {
  verdict->verdict = VerifierVerdict::kPass;
  auto fail = [&](const Stage& stage, const std::string& message) {
    verdict->verdict = VerifierVerdict::kFail;
    verdict->diagnostics.push_back("stage " + stage.name() + ": " + message);
  };

  for (const Stage& stage : state.stages()) {
    if (stage.loc.kind == ComputeLocKind::kInlined) {
      continue;  // not lowered; its reconstructions are dead
    }
    std::unordered_map<int64_t, int64_t> iter_extent;
    for (const Iterator& iter : stage.iters) {
      if (iter.extent <= 0) {
        fail(stage, "iterator " + iter.name + " has non-positive extent " +
                        std::to_string(iter.extent));
      }
      iter_extent[iter.var->var_id] = iter.extent;
    }
    std::unordered_set<int64_t> referenced;
    for (const auto& [axis_id, extent] : stage.axis_extent) {
      auto it = stage.axis_value.find(axis_id);
      if (it == stage.axis_value.end() || !it->second.defined()) {
        fail(stage, "axis " + std::to_string(axis_id) + " has no reconstruction expression");
        continue;
      }
      const Expr& reconstruction = it->second;
      std::vector<const ExprNode*> vars;
      CollectVars(reconstruction, &vars);
      bool dangling = false;
      for (const ExprNode* v : vars) {
        referenced.insert(v->var_id);
        if (iter_extent.find(v->var_id) == iter_extent.end()) {
          fail(stage, "reconstruction of axis " + std::to_string(axis_id) +
                          " references dangling variable " + v->var_name);
          dangling = true;
        }
      }
      if (dangling) {
        continue;
      }
      ValueRange r = RangeOf(reconstruction, iter_extent);
      if (!r.known) {
        fail(stage, "reconstruction of axis " + std::to_string(axis_id) + " (" +
                        ToString(reconstruction) + ") is not statically boundable");
        continue;
      }
      bool guarded = stage.guarded_axes.count(axis_id) > 0;
      if (r.min != 0 || r.max < extent - 1) {
        fail(stage, "reconstruction of axis " + std::to_string(axis_id) + " spans [" +
                        std::to_string(r.min) + ", " + std::to_string(r.max) +
                        "], not covering domain [0, " + std::to_string(extent - 1) + "]");
      } else if (!guarded && r.max > extent - 1) {
        fail(stage, "reconstruction of axis " + std::to_string(axis_id) + " overflows to " +
                        std::to_string(r.max) + " past extent " + std::to_string(extent) +
                        " without a guard");
      }
    }
    for (const Iterator& iter : stage.iters) {
      if (referenced.count(iter.var->var_id) == 0) {
        fail(stage, "iterator " + iter.name +
                        " does not contribute to any axis reconstruction (dangling iterator)");
      }
    }
  }
}

class DefUseChecker {
 public:
  DefUseChecker(const std::unordered_set<std::string>* produced, CheckVerdict* verdict)
      : produced_(produced), verdict_(verdict) {}

  void Walk(const LoopTreeNode& node) {
    if (node.kind != LoopTreeKind::kStore) {
      for (const LoopTreeNodeRef& child : node.children) {
        Walk(*child);
      }
      return;
    }
    for (const AccessSite& site : StatementAccessSites(node)) {
      if (!site.is_write) {
        CheckRead(node, site.buffer->name);
      }
    }
    if (node.is_accumulate) {
      // Accumulation reads the previous value of its own buffer: without an
      // earlier initialization store the reduction starts from garbage.
      CheckRead(node, node.buffer->name);
    }
    defined_.insert(node.buffer->name);
  }

 private:
  void CheckRead(const LoopTreeNode& store, const std::string& buffer) {
    if (produced_->count(buffer) > 0 && defined_.count(buffer) == 0) {
      verdict_->verdict = VerifierVerdict::kFail;
      verdict_->diagnostics.push_back("stage " + store.stage_name + " reads " + buffer +
                                      " before any store to it executes");
    }
  }

  const std::unordered_set<std::string>* produced_;
  CheckVerdict* verdict_;
  std::unordered_set<std::string> defined_;
};

void CollectProducedBuffers(const LoopTreeNode& node, std::unordered_set<std::string>* out) {
  if (node.kind == LoopTreeKind::kStore) {
    out->insert(node.buffer->name);
    return;
  }
  for (const LoopTreeNodeRef& child : node.children) {
    CollectProducedBuffers(*child, out);
  }
}

void CheckDefBeforeUse(const LoweredProgram& program, CheckVerdict* verdict) {
  verdict->verdict = VerifierVerdict::kPass;
  std::unordered_set<std::string> produced;
  for (const LoopTreeNodeRef& root : program.roots) {
    CollectProducedBuffers(*root, &produced);
  }
  DefUseChecker checker(&produced, verdict);
  for (const LoopTreeNodeRef& root : program.roots) {
    checker.Walk(*root);
  }
}

void CheckAnnotationLimits(const LoopTreeNode& node, const MachineModel& machine,
                           CheckVerdict* verdict) {
  if (node.kind == LoopTreeKind::kLoop) {
    if (node.annotation == IterAnnotation::kVectorize && machine.max_vector_extent > 0 &&
        node.extent > machine.max_vector_extent) {
      verdict->verdict = VerifierVerdict::kFail;
      verdict->diagnostics.push_back(
          "stage " + node.stage_name + ": vectorized loop extent " + std::to_string(node.extent) +
          " exceeds the machine's register budget of " +
          std::to_string(machine.max_vector_extent) + " lanes-equivalents");
    }
    if (node.annotation == IterAnnotation::kThreadX && machine.max_threads_per_core > 0 &&
        node.extent > machine.max_threads_per_core) {
      verdict->verdict = VerifierVerdict::kFail;
      verdict->diagnostics.push_back("stage " + node.stage_name + ": thread-bound loop extent " +
                                     std::to_string(node.extent) + " exceeds " +
                                     std::to_string(machine.max_threads_per_core) +
                                     " resident threads per core");
    }
  }
  for (const LoopTreeNodeRef& child : node.children) {
    CheckAnnotationLimits(*child, machine, verdict);
  }
}

}  // namespace

const char* VerifierCheckName(VerifierCheck check) {
  switch (check) {
    case VerifierCheck::kLowering: return "lowering";
    case VerifierCheck::kBufferBounds: return "buffer-bounds";
    case VerifierCheck::kIteratorDomain: return "iterator-domain";
    case VerifierCheck::kDefBeforeUse: return "def-before-use";
    case VerifierCheck::kResourceLimits: return "resource-limits";
  }
  return "unknown";
}

std::string VerifierReport::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < kNumVerifierChecks; ++i) {
    const CheckVerdict& c = checks[static_cast<size_t>(i)];
    const char* verdict = c.verdict == VerifierVerdict::kPass    ? "pass"
                          : c.verdict == VerifierVerdict::kFail  ? "FAIL"
                                                                 : "skipped";
    os << "[" << verdict << "] " << VerifierCheckName(static_cast<VerifierCheck>(i)) << "\n";
    for (const std::string& diag : c.diagnostics) {
      os << "    " << diag << "\n";
    }
  }
  return os.str();
}

VerifierReport VerifyProgram(const State& state, const LoweredProgram& program,
                             const Tracer* tracer) {
  TraceSpan span(tracer, "verify_structural", "analysis");
  VerifierReport report;
  CheckVerdict& lowering = report.check(VerifierCheck::kLowering);
  if (!program.ok) {
    lowering.verdict = VerifierVerdict::kFail;
    lowering.diagnostics.push_back(program.error.empty() ? "lowering failed" : program.error);
    span.Arg("outcome", "lowering_failed");
    return report;  // structural checks need a loop tree; leave them skipped
  }
  lowering.verdict = VerifierVerdict::kPass;
  CheckBufferBounds(program, &report.check(VerifierCheck::kBufferBounds));
  CheckIteratorDomains(state, &report.check(VerifierCheck::kIteratorDomain));
  CheckDefBeforeUse(program, &report.check(VerifierCheck::kDefBeforeUse));
  if (span.enabled()) {
    span.Arg("outcome", report.legal() ? "legal" : "illegal");
  }
  return report;
}

CheckVerdict VerifyResources(const LoweredProgram& program, const MachineModel& machine,
                             const Tracer* tracer) {
  TraceSpan span(tracer, "verify_resources", "analysis");
  CheckVerdict verdict;
  if (!program.ok) {
    return verdict;  // kSkipped: nothing to check
  }
  verdict.verdict = VerifierVerdict::kPass;
  if (machine.memory_capacity_bytes > 0) {
    int64_t footprint = 0;
    for (const auto& [name, buffer] : program.buffers) {
      footprint += buffer->NumElements() * static_cast<int64_t>(sizeof(float));
    }
    if (footprint > machine.memory_capacity_bytes) {
      verdict.verdict = VerifierVerdict::kFail;
      verdict.diagnostics.push_back(
          "buffer footprint " + std::to_string(footprint) + " bytes exceeds " + machine.name +
          " memory capacity of " + std::to_string(machine.memory_capacity_bytes) + " bytes");
    }
  }
  for (const LoopTreeNodeRef& root : program.roots) {
    CheckAnnotationLimits(*root, machine, &verdict);
  }
  return verdict;
}

int EffectiveVerifyLevel(int configured) {
  static const bool invariants = EnvInt("ANSOR_CHECK_INVARIANTS", 0) != 0;
  if (invariants && configured < 2) {
    return 2;
  }
  return configured;
}

}  // namespace ansor
