#include "src/ir/state.h"

#include <algorithm>
#include <sstream>

#include "src/support/util.h"

namespace ansor {

int Stage::FindIter(const std::string& iter_name) const {
  for (size_t i = 0; i < iters.size(); ++i) {
    if (iters[i].name == iter_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

State::State(const ComputeDAG* dag) : dag_(dag) {
  CHECK(dag != nullptr);
  for (const OperationRef& op : dag->ops()) {
    if (op->kind != OpKind::kCompute) {
      continue;
    }
    Stage stage;
    stage.op = op;
    stages_.push_back(std::move(stage));
    ResetStageIters(&stages_.back());
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    stage_index_[stages_[i].name()] = static_cast<int>(i);
  }
}

void State::ResetStageIters(Stage* stage) {
  stage->iters.clear();
  stage->axis_value.clear();
  stage->axis_extent.clear();
  stage->guarded_axes.clear();
  const OperationRef& op = stage->op;
  auto add_axis = [&](const Expr& axis, IterKind kind) {
    Iterator it;
    it.name = axis->var_name;
    it.extent = axis->var_extent;
    it.kind = kind;
    it.var = MakeVar(axis->var_name, axis->var_extent);
    it.orig_axis_id = axis->var_id;
    it.stride = 1;
    stage->axis_value[axis->var_id] = it.var;
    stage->axis_extent[axis->var_id] = axis->var_extent;
    stage->iters.push_back(std::move(it));
  };
  for (const Expr& axis : op->axis) {
    add_axis(axis, IterKind::kSpace);
  }
  for (const Expr& axis : op->ReduceAxes()) {
    add_axis(axis, IterKind::kReduce);
  }
}

int State::StageIndex(const std::string& name) const {
  auto it = stage_index_.find(name);
  return it == stage_index_.end() ? -1 : it->second;
}

bool State::Fail(const std::string& message) {
  failed_ = true;
  error_ = message;
  return false;
}

// --- Public primitives --------------------------------------------------------

bool State::Split(const std::string& stage, int iter, const std::vector<int64_t>& lengths) {
  Step step = MakeSplitStep(stage, iter, lengths);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::FollowSplit(const std::string& stage, int iter, int src_step, int n_parts) {
  Step step = MakeFollowSplitStep(stage, iter, src_step, n_parts);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::Fuse(const std::string& stage, int first_iter, int count) {
  Step step = MakeFuseStep(stage, first_iter, count);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::Reorder(const std::string& stage, const std::vector<int>& order) {
  Step step = MakeReorderStep(stage, order);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::ComputeAt(const std::string& stage, const std::string& target, int target_iter) {
  Step step = MakeComputeAtStep(stage, target, target_iter);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::ComputeInline(const std::string& stage) {
  Step step = MakeComputeInlineStep(stage);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::ComputeRoot(const std::string& stage) {
  Step step = MakeComputeRootStep(stage);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::CacheWrite(const std::string& stage, int* new_stage) {
  Step step = MakeCacheWriteStep(stage);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  if (new_stage != nullptr) {
    *new_stage = last_new_stage_;
  }
  return true;
}

bool State::Rfactor(const std::string& stage, int iter, int* new_stage) {
  Step step = MakeRfactorStep(stage, iter);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  if (new_stage != nullptr) {
    *new_stage = last_new_stage_;
  }
  return true;
}

bool State::Annotate(const std::string& stage, int iter, IterAnnotation ann) {
  Step step = MakeAnnotationStep(stage, iter, ann);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

bool State::Pragma(const std::string& stage, int auto_unroll_max_step) {
  Step step = MakePragmaStep(stage, auto_unroll_max_step);
  if (!ApplyStep(step)) {
    return false;
  }
  steps_.push_back(std::move(step));
  return true;
}

// --- Step application ---------------------------------------------------------

bool State::ApplyStep(const Step& step) {
  if (failed_) {
    return false;
  }
  int stage_idx = StageIndex(step.stage);
  if (stage_idx < 0) {
    return Fail("unknown stage " + step.stage);
  }
  switch (step.kind) {
    case StepKind::kSplit:
      return ApplySplit(step, step.lengths);
    case StepKind::kFollowSplit: {
      if (step.src_step < 0 || step.src_step >= static_cast<int>(steps_.size())) {
        return Fail("follow_split source step out of range");
      }
      const Step& src = steps_[static_cast<size_t>(step.src_step)];
      if (src.kind != StepKind::kSplit) {
        return Fail("follow_split source is not a split");
      }
      int n_src_parts = static_cast<int>(src.lengths.size()) + 1;
      if (step.n_parts < 2 || step.n_parts > n_src_parts) {
        return Fail("follow_split invalid part count");
      }
      std::vector<int64_t> lengths;
      for (int j = 0; j + 2 < step.n_parts; ++j) {
        lengths.push_back(src.lengths[static_cast<size_t>(j)]);
      }
      int64_t tail = 1;
      for (size_t j = static_cast<size_t>(step.n_parts) - 2; j < src.lengths.size(); ++j) {
        tail *= src.lengths[j];
      }
      lengths.push_back(tail);
      return ApplySplit(step, lengths);
    }
    case StepKind::kFuse:
      return ApplyFuse(step);
    case StepKind::kReorder:
      return ApplyReorder(step);
    case StepKind::kComputeAt:
      return ApplyComputeAt(step);
    case StepKind::kComputeInline:
      return ApplyComputeInline(step);
    case StepKind::kComputeRoot: {
      Stage& s = stages_[static_cast<size_t>(stage_idx)];
      s.loc = StageLoc{};
      return true;
    }
    case StepKind::kCacheWrite:
      return ApplyCacheWrite(step);
    case StepKind::kRfactor:
      return ApplyRfactor(step);
    case StepKind::kAnnotation: {
      Stage& s = stages_[static_cast<size_t>(stage_idx)];
      if (step.iter < 0 || step.iter >= static_cast<int>(s.iters.size())) {
        return Fail("annotation iterator out of range");
      }
      s.iters[static_cast<size_t>(step.iter)].annotation = step.annotation;
      return true;
    }
    case StepKind::kPragma: {
      Stage& s = stages_[static_cast<size_t>(stage_idx)];
      s.auto_unroll_max_step = step.pragma_value;
      return true;
    }
  }
  return Fail("unknown step kind");
}

bool State::ApplySplit(const Step& step, const std::vector<int64_t>& lengths) {
  Stage& stage = stages_[static_cast<size_t>(StageIndex(step.stage))];
  if (step.iter < 0 || step.iter >= static_cast<int>(stage.iters.size())) {
    return Fail("split iterator out of range in " + step.stage);
  }
  if (lengths.empty()) {
    return Fail("split needs at least one length");
  }
  Iterator old_iter = stage.iters[static_cast<size_t>(step.iter)];
  int64_t prod = 1;
  for (int64_t l : lengths) {
    if (l <= 0) {
      return Fail("split length must be positive");
    }
    prod *= l;
  }
  int64_t outer_extent = CeilDiv(old_iter.extent, prod);
  bool exact = outer_extent * prod == old_iter.extent;
  if (!exact && old_iter.orig_axis_id < 0) {
    return Fail("non-exact split of a fused iterator in " + step.stage);
  }
  if (!exact) {
    stage.guarded_axes.insert(old_iter.orig_axis_id);
  }

  // New iterators: [outer, lengths...]. The old value decomposes as
  //   v = v0 * m0 + v1 * m1 + ... + vk (m_j = product of extents after j).
  size_t n_parts = lengths.size() + 1;
  std::vector<Iterator> new_iters(n_parts);
  std::vector<int64_t> extents(n_parts);
  extents[0] = outer_extent;
  for (size_t j = 0; j < lengths.size(); ++j) {
    extents[j + 1] = lengths[j];
  }
  std::vector<int64_t> multipliers(n_parts, 1);
  for (size_t j = n_parts - 1; j > 0; --j) {
    multipliers[j - 1] = multipliers[j] * extents[j];
  }
  Expr replacement;
  for (size_t j = 0; j < n_parts; ++j) {
    Iterator it;
    it.name = old_iter.name + "." + std::to_string(j);
    it.extent = extents[j];
    it.kind = old_iter.kind;
    it.annotation = IterAnnotation::kNone;
    it.var = MakeVar(it.name, it.extent);
    it.orig_axis_id = old_iter.orig_axis_id;
    it.stride = old_iter.stride * multipliers[j];
    Expr term = multipliers[j] == 1 ? it.var : it.var * IntImm(multipliers[j]);
    replacement = replacement.defined() ? replacement + term : term;
    new_iters[j] = std::move(it);
  }

  // Substitute the old variable in every axis reconstruction expression.
  int64_t old_id = old_iter.var->var_id;
  auto lookup = [&](const ExprNode& var) {
    return var.var_id == old_id ? replacement : Expr();
  };
  for (auto& [axis, value] : stage.axis_value) {
    value = Substitute(value, lookup);
  }

  stage.iters.erase(stage.iters.begin() + step.iter);
  stage.iters.insert(stage.iters.begin() + step.iter, new_iters.begin(), new_iters.end());
  // Remap compute_at children anchored below the split point: a child at the
  // split iterator moves to its innermost part.
  int added = static_cast<int>(n_parts) - 1;
  for (Stage& other : stages_) {
    if (other.loc.kind == ComputeLocKind::kAt && other.loc.at_stage == step.stage &&
        other.loc.at_iter >= step.iter) {
      other.loc.at_iter += added;
    }
  }
  return true;
}

bool State::ApplyFuse(const Step& step) {
  Stage& stage = stages_[static_cast<size_t>(StageIndex(step.stage))];
  int first = step.iter;
  int count = step.fuse_count;
  if (first < 0 || count < 2 || first + count > static_cast<int>(stage.iters.size())) {
    return Fail("fuse range out of bounds in " + step.stage);
  }
  for (int j = 1; j < count; ++j) {
    if (stage.iters[static_cast<size_t>(first + j)].kind !=
        stage.iters[static_cast<size_t>(first)].kind) {
      return Fail("cannot fuse space and reduce iterators");
    }
  }

  int64_t fused_extent = 1;
  for (int j = 0; j < count; ++j) {
    fused_extent *= stage.iters[static_cast<size_t>(first + j)].extent;
  }
  Iterator fused;
  std::vector<std::string> names;
  for (int j = 0; j < count; ++j) {
    names.push_back(stage.iters[static_cast<size_t>(first + j)].name);
  }
  fused.name = Join(names, "@");
  fused.extent = fused_extent;
  fused.kind = stage.iters[static_cast<size_t>(first)].kind;
  fused.var = MakeVar(fused.name, fused_extent);

  // Provenance: the fuse preserves a single-axis identity only when all
  // components come from the same axis with contiguous strides.
  bool same_axis = true;
  for (int j = 0; j < count; ++j) {
    const Iterator& it = stage.iters[static_cast<size_t>(first + j)];
    if (it.orig_axis_id < 0 ||
        it.orig_axis_id != stage.iters[static_cast<size_t>(first)].orig_axis_id) {
      same_axis = false;
      break;
    }
  }
  if (same_axis) {
    for (int j = 0; j + 1 < count; ++j) {
      const Iterator& hi = stage.iters[static_cast<size_t>(first + j)];
      const Iterator& lo = stage.iters[static_cast<size_t>(first + j + 1)];
      if (hi.stride != lo.stride * lo.extent) {
        same_axis = false;
        break;
      }
    }
  }
  if (same_axis) {
    fused.orig_axis_id = stage.iters[static_cast<size_t>(first)].orig_axis_id;
    fused.stride = stage.iters[static_cast<size_t>(first + count - 1)].stride;
  } else {
    fused.orig_axis_id = -1;
    fused.stride = 1;
  }

  // Old component j reconstructs as (fused / prod(extents after j)) % extent_j.
  std::vector<int64_t> tail(static_cast<size_t>(count), 1);
  for (int j = count - 2; j >= 0; --j) {
    tail[static_cast<size_t>(j)] =
        tail[static_cast<size_t>(j + 1)] * stage.iters[static_cast<size_t>(first + j + 1)].extent;
  }
  std::unordered_map<int64_t, Expr> replacements;
  for (int j = 0; j < count; ++j) {
    const Iterator& it = stage.iters[static_cast<size_t>(first + j)];
    Expr value = fused.var;
    if (tail[static_cast<size_t>(j)] != 1) {
      value = value / IntImm(tail[static_cast<size_t>(j)]);
    }
    if (j > 0) {
      value = value % IntImm(it.extent);
    }
    replacements[it.var->var_id] = value;
  }
  auto lookup = [&](const ExprNode& var) {
    auto it = replacements.find(var.var_id);
    return it == replacements.end() ? Expr() : it->second;
  };
  for (auto& [axis, value] : stage.axis_value) {
    value = Substitute(value, lookup);
  }

  stage.iters.erase(stage.iters.begin() + first, stage.iters.begin() + first + count);
  stage.iters.insert(stage.iters.begin() + first, std::move(fused));
  // Remap compute_at children: anchors inside the fused range collapse onto
  // the fused iterator; later anchors shift up.
  for (Stage& other : stages_) {
    if (other.loc.kind != ComputeLocKind::kAt || other.loc.at_stage != step.stage) {
      continue;
    }
    if (other.loc.at_iter >= first + count) {
      other.loc.at_iter -= count - 1;
    } else if (other.loc.at_iter >= first) {
      other.loc.at_iter = first;
    }
  }
  return true;
}

bool State::ApplyReorder(const Step& step) {
  Stage& stage = stages_[static_cast<size_t>(StageIndex(step.stage))];
  if (step.order.size() != stage.iters.size()) {
    return Fail("reorder permutation size mismatch in " + step.stage);
  }
  std::vector<bool> seen(stage.iters.size(), false);
  for (int idx : step.order) {
    if (idx < 0 || idx >= static_cast<int>(stage.iters.size()) ||
        seen[static_cast<size_t>(idx)]) {
      return Fail("reorder is not a permutation in " + step.stage);
    }
    seen[static_cast<size_t>(idx)] = true;
  }
  std::vector<Iterator> new_iters;
  new_iters.reserve(stage.iters.size());
  for (int idx : step.order) {
    new_iters.push_back(stage.iters[static_cast<size_t>(idx)]);
  }
  stage.iters = std::move(new_iters);
  // Remap compute_at anchors to the iterator's new position.
  for (Stage& other : stages_) {
    if (other.loc.kind != ComputeLocKind::kAt || other.loc.at_stage != step.stage) {
      continue;
    }
    for (size_t pos = 0; pos < step.order.size(); ++pos) {
      if (step.order[pos] == other.loc.at_iter) {
        other.loc.at_iter = static_cast<int>(pos);
        break;
      }
    }
  }
  return true;
}

bool State::ApplyComputeAt(const Step& step) {
  Stage& stage = stages_[static_cast<size_t>(StageIndex(step.stage))];
  int target_idx = StageIndex(step.target_stage);
  if (target_idx < 0) {
    return Fail("compute_at target stage not found: " + step.target_stage);
  }
  const Stage& target = stages_[static_cast<size_t>(target_idx)];
  if (step.target_iter < 0 || step.target_iter >= static_cast<int>(target.iters.size())) {
    return Fail("compute_at target iterator out of range");
  }
  if (step.target_stage == step.stage) {
    return Fail("compute_at onto itself");
  }
  stage.loc.kind = ComputeLocKind::kAt;
  stage.loc.at_stage = step.target_stage;
  stage.loc.at_iter = step.target_iter;
  return true;
}

void State::RewriteConsumerBodies(const std::string& buffer_name,
                                  const std::function<Expr(const ExprNode&)>& rewrite) {
  // `rewrite` maps a Load node of the named buffer to its replacement; we walk
  // every stage body and rebuild ops whose body changed.
  std::function<Expr(const Expr&)> walk = [&](const Expr& e) -> Expr {
    const ExprNode& n = *e.get();
    if (n.kind == ExprKind::kLoad && n.buffer->name == buffer_name) {
      Expr replaced = rewrite(n);
      if (replaced.defined()) {
        return replaced;
      }
    }
    bool changed = false;
    std::vector<Expr> new_operands;
    new_operands.reserve(n.operands.size());
    for (const Expr& operand : n.operands) {
      Expr w = walk(operand);
      changed |= (w.get() != operand.get());
      new_operands.push_back(std::move(w));
    }
    if (!changed) {
      return e;
    }
    auto node = std::make_shared<ExprNode>(n);
    node->operands = std::move(new_operands);
    return Expr(node);
  };

  for (Stage& s : stages_) {
    if (s.op->kind != OpKind::kCompute || s.name() == buffer_name) {
      continue;
    }
    Expr new_body = walk(s.op->body);
    if (new_body.get() != s.op->body.get()) {
      auto new_op = std::make_shared<Operation>(*s.op);
      new_op->body = std::move(new_body);
      s.op = std::move(new_op);
    }
  }
}

bool State::ApplyComputeInline(const Step& step) {
  Stage& stage = stages_[static_cast<size_t>(StageIndex(step.stage))];
  if (HasReduce(stage.op->body)) {
    return Fail("cannot inline a reduction stage: " + step.stage);
  }
  const OperationRef op = stage.op;
  // Replace loads of this buffer in all other stages with the body, binding
  // axis vars to the load's index expressions.
  RewriteConsumerBodies(step.stage, [&](const ExprNode& load) -> Expr {
    std::unordered_map<int64_t, Expr> bindings;
    for (size_t d = 0; d < op->axis.size(); ++d) {
      bindings[op->axis[d]->var_id] = load.operands[d];
    }
    return Substitute(op->body, [&](const ExprNode& var) {
      auto it = bindings.find(var.var_id);
      return it == bindings.end() ? Expr() : it->second;
    });
  });
  stage.loc.kind = ComputeLocKind::kInlined;
  return true;
}

bool State::ApplyCacheWrite(const Step& step) {
  int stage_idx = StageIndex(step.stage);
  Stage& stage = stages_[static_cast<size_t>(stage_idx)];
  const OperationRef op = stage.op;
  if (op->kind != OpKind::kCompute) {
    return Fail("cache_write target is not a compute op");
  }
  std::string cache_name = step.stage + ".cache";
  if (StageIndex(cache_name) >= 0) {
    return Fail("cache stage already exists: " + cache_name);
  }

  // Cache op: carries the original body on fresh axis vars.
  std::vector<Expr> cache_axis;
  std::unordered_map<int64_t, Expr> bindings;
  for (const Expr& axis : op->axis) {
    Expr v = MakeVar(axis->var_name, axis->var_extent);
    bindings[axis->var_id] = v;
    cache_axis.push_back(std::move(v));
  }
  Expr cache_body = Substitute(op->body, [&](const ExprNode& var) {
    auto it = bindings.find(var.var_id);
    return it == bindings.end() ? Expr() : it->second;
  });
  Tensor cache = MakeComputeOp(cache_name, op->output->shape, std::move(cache_axis),
                               std::move(cache_body));

  // Original op becomes the identity consumer of the cache.
  std::vector<Expr> identity_indices(op->axis.begin(), op->axis.end());
  auto new_op = std::make_shared<Operation>(*op);
  new_op->body = Load(cache.buffer(), std::move(identity_indices));
  stage.op = std::move(new_op);
  ResetStageIters(&stage);

  Stage cache_stage;
  cache_stage.op = cache.op();
  stages_.insert(stages_.begin() + stage_idx, std::move(cache_stage));
  ResetStageIters(&stages_[static_cast<size_t>(stage_idx)]);

  stage_index_.clear();
  for (size_t i = 0; i < stages_.size(); ++i) {
    stage_index_[stages_[i].name()] = static_cast<int>(i);
  }
  last_new_stage_ = stage_idx;
  return true;
}

bool State::ApplyRfactor(const Step& step) {
  int stage_idx = StageIndex(step.stage);
  Stage& stage = stages_[static_cast<size_t>(stage_idx)];
  const OperationRef op = stage.op;
  if (!op->body.defined() || op->body.kind() != ExprKind::kReduce) {
    return Fail("rfactor target has no reduction");
  }
  if (op->body->reduce_axes.size() != 1) {
    return Fail("rfactor supports a single reduction axis");
  }
  if (step.iter < 0 || step.iter >= static_cast<int>(stage.iters.size())) {
    return Fail("rfactor iterator out of range");
  }
  const Iterator kept = stage.iters[static_cast<size_t>(step.iter)];
  if (kept.kind != IterKind::kReduce || kept.orig_axis_id < 0) {
    return Fail("rfactor iterator must derive from the reduction axis");
  }
  if (stage.guarded_axes.count(kept.orig_axis_id) > 0) {
    return Fail("rfactor requires an exact split of the reduction axis");
  }
  // Find the other reduce iterator of the same axis.
  int other_idx = -1;
  int n_reduce_parts = 0;
  for (size_t i = 0; i < stage.iters.size(); ++i) {
    const Iterator& it = stage.iters[i];
    if (it.kind == IterKind::kReduce && it.orig_axis_id == kept.orig_axis_id) {
      ++n_reduce_parts;
      if (static_cast<int>(i) != step.iter) {
        other_idx = static_cast<int>(i);
      }
    }
  }
  if (n_reduce_parts != 2 || other_idx < 0) {
    return Fail("rfactor requires the reduction axis split into exactly two parts");
  }
  const Iterator other = stage.iters[static_cast<size_t>(other_idx)];
  int64_t reduce_axis_id = kept.orig_axis_id;
  const Expr reduce_source = op->body->operands[0];
  ReduceKind reduce_kind = op->body->reduce_kind;

  std::string rf_name = step.stage + ".rf";
  if (StageIndex(rf_name) >= 0) {
    return Fail("rfactor stage already exists: " + rf_name);
  }

  // rf op: space axes = original space axes (fresh) + kept axis.
  std::vector<Expr> rf_axis;
  std::unordered_map<int64_t, Expr> bindings;
  for (const Expr& axis : op->axis) {
    Expr v = MakeVar(axis->var_name, axis->var_extent);
    bindings[axis->var_id] = v;
    rf_axis.push_back(std::move(v));
  }
  Expr kr = MakeVar("kr", kept.extent);
  rf_axis.push_back(kr);
  Expr ko = ReduceAxis(other.extent, "ko");
  // The original reduction var reconstructs from (kept, other) via the
  // stage's axis reconstruction; substitute kept -> kr, other -> ko.
  Expr k_value = stage.axis_value.at(reduce_axis_id);
  bindings[kept.var->var_id] = kr;
  bindings[other.var->var_id] = ko;
  Expr rf_source = Substitute(reduce_source, [&](const ExprNode& var) -> Expr {
    if (var.var_id == reduce_axis_id) {
      return Substitute(k_value, [&](const ExprNode& inner) {
        auto it = bindings.find(inner.var_id);
        return it == bindings.end() ? Expr() : it->second;
      });
    }
    auto it = bindings.find(var.var_id);
    return it == bindings.end() ? Expr() : it->second;
  });
  std::vector<int64_t> rf_shape = op->output->shape;
  rf_shape.push_back(kept.extent);
  Tensor rf = MakeComputeOp(rf_name, std::move(rf_shape), std::move(rf_axis),
                            Reduce(reduce_kind, std::move(rf_source), {ko}));

  // Original op now reduces the rf tensor over the kept axis.
  Expr knew = ReduceAxis(kept.extent, "ki");
  std::vector<Expr> load_indices(op->axis.begin(), op->axis.end());
  load_indices.push_back(knew);
  auto new_op = std::make_shared<Operation>(*op);
  new_op->body = Reduce(reduce_kind, Load(rf.buffer(), std::move(load_indices)), {knew});
  stage.op = std::move(new_op);
  ResetStageIters(&stage);

  Stage rf_stage;
  rf_stage.op = rf.op();
  stages_.insert(stages_.begin() + stage_idx, std::move(rf_stage));
  ResetStageIters(&stages_[static_cast<size_t>(stage_idx)]);

  stage_index_.clear();
  for (size_t i = 0; i < stages_.size(); ++i) {
    stage_index_[stages_[i].name()] = static_cast<int>(i);
  }
  last_new_stage_ = stage_idx;
  return true;
}

std::string StepSignature(const State& state) { return StepSignature(state.steps()); }

std::string StepSignature(const std::vector<Step>& steps) {
  std::string sig;
  for (const Step& step : steps) {
    sig += step.ToString();
    sig += ";";
  }
  return sig;
}

State State::Failure(const ComputeDAG* dag, std::string error) {
  State state;
  state.dag_ = dag;
  state.failed_ = true;
  state.error_ = std::move(error);
  return state;
}

State State::Replay(const ComputeDAG* dag, const std::vector<Step>& steps) {
  State state(dag);
  for (const Step& step : steps) {
    if (!state.ApplyStep(step)) {
      return state;  // failed() is set
    }
    state.steps_.push_back(step);
  }
  return state;
}

std::string State::ToString() const {
  // Children indexed by (stage name, iterator position).
  std::unordered_map<std::string, std::unordered_map<int, std::vector<int>>> children;
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    if (s.loc.kind == ComputeLocKind::kAt) {
      children[s.loc.at_stage][s.loc.at_iter].push_back(static_cast<int>(i));
    }
  }
  std::ostringstream os;
  std::function<void(int, int)> print_stage = [&](int stage_idx, int indent) {
    const Stage& s = stages_[static_cast<size_t>(stage_idx)];
    auto pad = [&](int n) {
      for (int j = 0; j < n; ++j) {
        os << "  ";
      }
    };
    int level = indent;
    for (size_t i = 0; i < s.iters.size(); ++i) {
      const Iterator& it = s.iters[i];
      pad(level);
      if (it.annotation != IterAnnotation::kNone) {
        os << IterAnnotationName(it.annotation) << " ";
      } else {
        os << "for ";
      }
      os << it.name << " in range(" << it.extent << ")\n";
      ++level;
      auto cit = children.find(s.name());
      if (cit != children.end()) {
        auto lit = cit->second.find(static_cast<int>(i));
        if (lit != cit->second.end()) {
          for (int child : lit->second) {
            print_stage(child, level);
          }
        }
      }
    }
    pad(level);
    os << s.name() << "[...] = ...\n";
  };
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    if (s.loc.kind == ComputeLocKind::kRoot) {
      print_stage(static_cast<int>(i), 0);
    } else if (s.loc.kind == ComputeLocKind::kInlined) {
      os << s.name() << ": inlined\n";
    }
  }
  return os.str();
}

}  // namespace ansor
