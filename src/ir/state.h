// Program state: a loop-nest schedule for a ComputeDAG plus the replayable
// step history that produced it (paper §4, §5.1).
//
// A State owns its own view of the operation list because schedule steps can
// rewrite the DAG (cache-write and rfactor insert new stages; inlining
// rewrites consumer bodies) — paper §2: "some optimization needs to add new
// nodes to the computational graph".
#ifndef ANSOR_SRC_IR_STATE_H_
#define ANSOR_SRC_IR_STATE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dag/compute_dag.h"
#include "src/ir/steps.h"

namespace ansor {

enum class ComputeLocKind { kRoot, kInlined, kAt };

struct StageLoc {
  ComputeLocKind kind = ComputeLocKind::kRoot;
  std::string at_stage;  // meaningful for kAt
  int at_iter = -1;      // meaningful for kAt
};

struct Stage {
  OperationRef op;
  std::vector<Iterator> iters;
  StageLoc loc;
  // Original axis var id -> expression of current iterator vars reconstructing
  // the axis value.
  std::unordered_map<int64_t, Expr> axis_value;
  // Original axis var id -> axis extent.
  std::unordered_map<int64_t, int64_t> axis_extent;
  // Axes whose reconstruction can overflow the extent (non-exact splits);
  // lowering emits a guard for them.
  std::unordered_set<int64_t> guarded_axes;
  int auto_unroll_max_step = 0;

  const std::string& name() const { return op->name(); }
  int FindIter(const std::string& iter_name) const;
};

class State {
 public:
  State() = default;
  // Initial state: the naive program (one stage per compute op, loops in
  // definition order: space axes then reduce axes).
  explicit State(const ComputeDAG* dag);

  const ComputeDAG* dag() const { return dag_; }

  // States normally borrow the DAG from their search task. When a state
  // escapes that scope (e.g. the best program returned from a tuning run),
  // the owner stamps shared ownership here so the DAG outlives the task.
  void RetainDag(std::shared_ptr<const ComputeDAG> owner) {
    dag_owner_ = std::move(owner);
    if (dag_owner_ != nullptr) {
      dag_ = dag_owner_.get();
    }
  }
  const std::vector<Stage>& stages() const { return stages_; }
  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Step>& steps() const { return steps_; }
  std::vector<Step>& steps() { return steps_; }

  int StageIndex(const std::string& name) const;
  const Stage& stage(int index) const { return stages_[static_cast<size_t>(index)]; }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  // --- Schedule primitives (record a step and apply it) ---------------------
  // All primitives return false (setting error()) instead of aborting on
  // invalid input so that evolutionary search can discard invalid offspring,
  // mirroring Ansor's replay-and-verify crossover.

  // Splits iterator `iter` of `stage` into 1 + lengths.size() parts.
  bool Split(const std::string& stage, int iter, const std::vector<int64_t>& lengths);
  // Splits using lengths mirrored from a previous SplitStep (paper rule 4's
  // consumer tiling must track the producer's tile sizes).
  bool FollowSplit(const std::string& stage, int iter, int src_step, int n_parts);
  bool Fuse(const std::string& stage, int first_iter, int count);
  bool Reorder(const std::string& stage, const std::vector<int>& order);
  bool ComputeAt(const std::string& stage, const std::string& target, int target_iter);
  bool ComputeInline(const std::string& stage);
  bool ComputeRoot(const std::string& stage);
  // Adds a cache-write stage `<stage>.cache`; returns its index via
  // *new_stage (may be null). Paper rule 5.
  bool CacheWrite(const std::string& stage, int* new_stage);
  // Factorizes reduction iterator `iter` (which must come from a prior 2-way
  // split of a single reduction axis) into a new stage `<stage>.rf`.
  // Paper rule 6.
  bool Rfactor(const std::string& stage, int iter, int* new_stage);
  bool Annotate(const std::string& stage, int iter, IterAnnotation ann);
  bool Pragma(const std::string& stage, int auto_unroll_max_step);

  // Replays a step list onto a fresh state for the DAG. Returns a state with
  // failed() set if any step is invalid (crossover verification).
  static State Replay(const ComputeDAG* dag, const std::vector<Step>& steps);

  // The canonical failed state: failed() set, empty step history. Search code
  // normalizes every invalid edit to this so a partially-replayed state can
  // never leak into a population or a measurement batch.
  static State Failure(const ComputeDAG* dag, std::string error);

  // Pretty-prints the loop structure (Figure 5 style).
  std::string ToString() const;

 private:
  bool ApplyStep(const Step& step);
  bool Fail(const std::string& message);

  bool ApplySplit(const Step& step, const std::vector<int64_t>& lengths);
  bool ApplyFuse(const Step& step);
  bool ApplyReorder(const Step& step);
  bool ApplyComputeAt(const Step& step);
  bool ApplyComputeInline(const Step& step);
  bool ApplyCacheWrite(const Step& step);
  bool ApplyRfactor(const Step& step);

  // Re-initializes a stage's iterators from its (possibly rewritten) op.
  void ResetStageIters(Stage* stage);
  // Replaces every load of `buffer_name` in consumer bodies via `rewrite`.
  void RewriteConsumerBodies(const std::string& buffer_name,
                             const std::function<Expr(const ExprNode&)>& rewrite);

  const ComputeDAG* dag_ = nullptr;
  std::shared_ptr<const ComputeDAG> dag_owner_;
  std::vector<Stage> stages_;
  std::vector<Step> steps_;
  std::unordered_map<std::string, int> stage_index_;
  bool failed_ = false;
  std::string error_;
  int last_new_stage_ = -1;
};

// Canonical signature of a state's step history: the concatenated step
// strings. The dedup key used by search, measurement bookkeeping, and the
// determinism tests.
std::string StepSignature(const State& state);
// The same signature computed from a bare step list (no State/DAG needed):
// the store layer's dedup key for persisted records and artifact snapshots.
// Identical to StepSignature(state) for state.steps() == steps.
std::string StepSignature(const std::vector<Step>& steps);

}  // namespace ansor

#endif  // ANSOR_SRC_IR_STATE_H_
