#include "src/ir/steps.h"

#include <sstream>

#include "src/support/util.h"

namespace ansor {

const char* IterAnnotationName(IterAnnotation ann) {
  switch (ann) {
    case IterAnnotation::kNone: return "none";
    case IterAnnotation::kParallel: return "parallel";
    case IterAnnotation::kVectorize: return "vectorize";
    case IterAnnotation::kUnroll: return "unroll";
    case IterAnnotation::kBlockX: return "blockIdx.x";
    case IterAnnotation::kThreadX: return "threadIdx.x";
    case IterAnnotation::kVThread: return "vthread";
  }
  return "?";
}

std::string Step::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case StepKind::kSplit:
      os << "split(" << stage << ", iter=" << iter << ", lengths=[" << Join(lengths, ",")
         << "])";
      break;
    case StepKind::kFollowSplit:
      os << "follow_split(" << stage << ", iter=" << iter << ", src=" << src_step
         << ", parts=" << n_parts << ")";
      break;
    case StepKind::kFuse:
      os << "fuse(" << stage << ", iter=" << iter << ", count=" << fuse_count << ")";
      break;
    case StepKind::kReorder:
      os << "reorder(" << stage << ", order=[" << Join(order, ",") << "])";
      break;
    case StepKind::kComputeAt:
      os << "compute_at(" << stage << ", " << target_stage << ", iter=" << target_iter << ")";
      break;
    case StepKind::kComputeInline:
      os << "compute_inline(" << stage << ")";
      break;
    case StepKind::kComputeRoot:
      os << "compute_root(" << stage << ")";
      break;
    case StepKind::kCacheWrite:
      os << "cache_write(" << stage << ")";
      break;
    case StepKind::kRfactor:
      os << "rfactor(" << stage << ", iter=" << iter << ")";
      break;
    case StepKind::kAnnotation:
      os << "annotate(" << stage << ", iter=" << iter << ", " << IterAnnotationName(annotation)
         << ")";
      break;
    case StepKind::kPragma:
      os << "pragma(" << stage << ", auto_unroll_max_step=" << pragma_value << ")";
      break;
  }
  return os.str();
}

Step MakeSplitStep(const std::string& stage, int iter, std::vector<int64_t> lengths) {
  Step s;
  s.kind = StepKind::kSplit;
  s.stage = stage;
  s.iter = iter;
  s.lengths = std::move(lengths);
  return s;
}

Step MakeFollowSplitStep(const std::string& stage, int iter, int src_step, int n_parts) {
  Step s;
  s.kind = StepKind::kFollowSplit;
  s.stage = stage;
  s.iter = iter;
  s.src_step = src_step;
  s.n_parts = n_parts;
  return s;
}

Step MakeFuseStep(const std::string& stage, int iter, int fuse_count) {
  Step s;
  s.kind = StepKind::kFuse;
  s.stage = stage;
  s.iter = iter;
  s.fuse_count = fuse_count;
  return s;
}

Step MakeReorderStep(const std::string& stage, std::vector<int> order) {
  Step s;
  s.kind = StepKind::kReorder;
  s.stage = stage;
  s.order = std::move(order);
  return s;
}

Step MakeComputeAtStep(const std::string& stage, const std::string& target_stage,
                       int target_iter) {
  Step s;
  s.kind = StepKind::kComputeAt;
  s.stage = stage;
  s.target_stage = target_stage;
  s.target_iter = target_iter;
  return s;
}

Step MakeComputeInlineStep(const std::string& stage) {
  Step s;
  s.kind = StepKind::kComputeInline;
  s.stage = stage;
  return s;
}

Step MakeComputeRootStep(const std::string& stage) {
  Step s;
  s.kind = StepKind::kComputeRoot;
  s.stage = stage;
  return s;
}

Step MakeCacheWriteStep(const std::string& stage) {
  Step s;
  s.kind = StepKind::kCacheWrite;
  s.stage = stage;
  return s;
}

Step MakeRfactorStep(const std::string& stage, int iter) {
  Step s;
  s.kind = StepKind::kRfactor;
  s.stage = stage;
  s.iter = iter;
  return s;
}

Step MakeAnnotationStep(const std::string& stage, int iter, IterAnnotation ann) {
  Step s;
  s.kind = StepKind::kAnnotation;
  s.stage = stage;
  s.iter = iter;
  s.annotation = ann;
  return s;
}

Step MakePragmaStep(const std::string& stage, int auto_unroll_max_step) {
  Step s;
  s.kind = StepKind::kPragma;
  s.stage = stage;
  s.pragma_value = auto_unroll_max_step;
  return s;
}

}  // namespace ansor
