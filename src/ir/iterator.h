// Iterators: the loop axes of a stage in the schedule IR.
//
// Every iterator tracks its provenance (which original tensor axis it derives
// from and its stride within that axis). The lowering pass uses this metadata
// to reconstruct original-axis index expressions and to restrict producer
// loops under compute_at.
#ifndef ANSOR_SRC_IR_ITERATOR_H_
#define ANSOR_SRC_IR_ITERATOR_H_

#include <string>

#include "src/expr/expr.h"

namespace ansor {

enum class IterKind { kSpace, kReduce };

enum class IterAnnotation {
  kNone,
  kParallel,
  kVectorize,
  kUnroll,
  // GPU thread bindings.
  kBlockX,
  kThreadX,
  kVThread,
};

const char* IterAnnotationName(IterAnnotation ann);

struct Iterator {
  std::string name;
  int64_t extent = 0;
  IterKind kind = IterKind::kSpace;
  IterAnnotation annotation = IterAnnotation::kNone;
  // The loop variable for this iterator (a Var expression).
  Expr var;
  // Original axis this iterator derives from (var_id of the compute op's axis
  // or reduce var); -1 when the iterator mixes several axes (fused).
  int64_t orig_axis_id = -1;
  // Multiplier of this iterator's value within the original axis; only
  // meaningful when orig_axis_id >= 0.
  int64_t stride = 1;
};

}  // namespace ansor

#endif  // ANSOR_SRC_IR_ITERATOR_H_
