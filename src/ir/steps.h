// Transform steps: the replayable rewriting history of a program (paper §5.1,
// "Node-based crossover": "The genes of a program in Ansor are its rewriting
// steps").
//
// A program state is fully determined by (ComputeDAG, step list). The sampler
// rewrites pending tile sizes inside SplitSteps and replays; the evolutionary
// operators mutate step parameters or merge per-stage step subsets from two
// parents, then replay and verify.
#ifndef ANSOR_SRC_IR_STEPS_H_
#define ANSOR_SRC_IR_STEPS_H_

#include <string>
#include <vector>

#include "src/ir/iterator.h"

namespace ansor {

enum class StepKind {
  kSplit,
  kFollowSplit,
  kFuse,
  kReorder,
  kComputeAt,
  kComputeInline,
  kComputeRoot,
  kCacheWrite,
  kRfactor,
  kAnnotation,
  kPragma,
};

// A single rewriting step. We use one plain struct with a kind discriminator
// (rather than a class hierarchy) so steps are trivially copyable, hashable
// and mutable by the evolutionary operators.
struct Step {
  StepKind kind = StepKind::kSplit;

  // Target stage, identified by op name (stable across stage insertions).
  std::string stage;

  // kSplit / kFollowSplit / kAnnotation / kRfactor: iterator position at
  // application time.
  int iter = -1;

  // kSplit: inner lengths, outermost first; the outer extent is inferred as
  // ceil(extent / prod(lengths)). Length 1 entries act as "pending" tile
  // levels that the annotation sampler later fills in.
  std::vector<int64_t> lengths;

  // kFollowSplit: index (into the step list) of the source SplitStep whose
  // lengths this split mirrors, and the number of parts to produce.
  int src_step = -1;
  int n_parts = 0;

  // kFuse: number of consecutive iterators to fuse starting at `iter`.
  int fuse_count = 0;

  // kReorder: permutation of the stage's iterator indices.
  std::vector<int> order;

  // kComputeAt: consumer stage and iterator position within it.
  std::string target_stage;
  int target_iter = -1;

  // kAnnotation
  IterAnnotation annotation = IterAnnotation::kNone;

  // kPragma: auto_unroll_max_step value.
  int pragma_value = 0;

  std::string ToString() const;
};

// Step factory helpers (purely for readability at call sites).
Step MakeSplitStep(const std::string& stage, int iter, std::vector<int64_t> lengths);
Step MakeFollowSplitStep(const std::string& stage, int iter, int src_step, int n_parts);
Step MakeFuseStep(const std::string& stage, int iter, int fuse_count);
Step MakeReorderStep(const std::string& stage, std::vector<int> order);
Step MakeComputeAtStep(const std::string& stage, const std::string& target_stage,
                       int target_iter);
Step MakeComputeInlineStep(const std::string& stage);
Step MakeComputeRootStep(const std::string& stage);
Step MakeCacheWriteStep(const std::string& stage);
Step MakeRfactorStep(const std::string& stage, int iter);
Step MakeAnnotationStep(const std::string& stage, int iter, IterAnnotation ann);
Step MakePragmaStep(const std::string& stage, int auto_unroll_max_step);

}  // namespace ansor

#endif  // ANSOR_SRC_IR_STEPS_H_
