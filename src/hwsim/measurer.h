// The Measurer (paper Fig. 4): compiles (lowers) candidate programs and
// "executes" them on the simulated target, returning execution time.
//
// Mirrors real-hardware behaviour the search must cope with: invalid programs
// fail measurement (throughput 0), results can carry multiplicative noise,
// and batch measurement runs in parallel.
#ifndef ANSOR_SRC_HWSIM_MEASURER_H_
#define ANSOR_SRC_HWSIM_MEASURER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/hwsim/simulator.h"
#include "src/ir/state.h"

namespace ansor {

class ProgramCache;
class ThreadPool;

struct MeasureOptions {
  // Layout-rewrite of constant tensors (paper §4.2); on by default for
  // inference workloads, off for the ablation bench.
  SimOptions sim;
  // Multiplicative log-normal noise stddev on measured time (0 = exact).
  double noise_stddev = 0.0;
  uint64_t noise_seed = 0;
  // Verify every Nth measured program against naive execution (0 = never).
  // Catches lowering bugs during long searches without paying interpretation
  // cost for every candidate.
  int verify_every = 0;
  // Chaos/test hook: measurements for which this returns true are reported
  // invalid, emulating the transient failures real hardware produces (driver
  // hiccups, timeouts). The search must tolerate these without permanently
  // blacklisting the affected programs.
  std::function<bool(const State&)> fail_injector;
  // Pool for MeasureBatch; nullptr = ThreadPool::Global(). Injectable so the
  // thread-count-invariance tests control every parallel stage of a round.
  ThreadPool* thread_pool = nullptr;
  // Default compiled-program cache: candidates already lowered by the search
  // (population scoring) are measured without re-lowering. Overridable per
  // call — the search policy passes its task-lifetime cache — and nullptr
  // means lower from scratch. Measurement results are identical either way.
  ProgramCache* program_cache = nullptr;
};

struct MeasureResult {
  bool valid = false;
  std::string error;
  double seconds = 0.0;
  // FLOPS achieved (task flop count / seconds); the search maximizes this.
  double throughput = 0.0;
};

class Measurer {
 public:
  explicit Measurer(MachineModel machine, MeasureOptions options = MeasureOptions());

  const MachineModel& machine() const { return machine_; }

  // `cache` overrides MeasureOptions::program_cache for this call (the
  // search policy injects its per-task cache); nullptr falls back to it.
  MeasureResult Measure(const State& state, ProgramCache* cache = nullptr);
  std::vector<MeasureResult> MeasureBatch(const std::vector<State>& states,
                                          ProgramCache* cache = nullptr);

  // Total number of measurement trials performed (the budget unit of §7).
  int64_t trial_count() const { return trials_.load(); }
  void ResetTrialCount() { trials_.store(0); }

 private:
  MeasureResult MeasureImpl(const State& state, uint64_t noise_tag, ProgramCache* cache);

  MachineModel machine_;
  MeasureOptions options_;
  std::atomic<int64_t> trials_{0};
  std::atomic<int64_t> verify_counter_{0};
};

}  // namespace ansor

#endif  // ANSOR_SRC_HWSIM_MEASURER_H_
