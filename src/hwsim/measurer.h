// The Measurer (paper Fig. 4): compiles (lowers) candidate programs and
// "executes" them on the simulated target, returning execution time.
//
// Mirrors real-hardware behaviour the search must cope with: invalid programs
// fail measurement (throughput 0), results can carry multiplicative noise,
// and batch measurement runs in parallel.
#ifndef ANSOR_SRC_HWSIM_MEASURER_H_
#define ANSOR_SRC_HWSIM_MEASURER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/hwsim/simulator.h"
#include "src/ir/state.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ansor {

class ProgramCache;
class ThreadPool;

struct MeasureOptions {
  // Layout-rewrite of constant tensors (paper §4.2); on by default for
  // inference workloads, off for the ablation bench.
  SimOptions sim;
  // Multiplicative log-normal noise stddev on measured time (0 = exact).
  double noise_stddev = 0.0;
  uint64_t noise_seed = 0;
  // Verify every Nth measured program against naive execution (0 = never).
  // Catches lowering bugs during long searches without paying interpretation
  // cost for every candidate.
  int verify_every = 0;
  // Chaos/test hook: measurements for which this returns true are reported
  // invalid, emulating the transient failures real hardware produces (driver
  // hiccups, timeouts). The search must tolerate these without permanently
  // blacklisting the affected programs.
  std::function<bool(const State&)> fail_injector;
  // Pool for MeasureBatch / SubmitBatch; nullptr = the caller's pool (async
  // path) or ThreadPool::Global(). Injectable so the thread-count-invariance
  // tests control every parallel stage of a round, and so a measurer can model
  // a dedicated device executor whose capacity is independent of the host
  // workers (the micro_service bench gives each tenant's measurer a
  // single-thread device pool).
  ThreadPool* thread_pool = nullptr;
  // Default compiled-program cache: candidates already lowered by the search
  // (population scoring) are measured without re-lowering. Overridable per
  // call — the search policy passes its task-lifetime cache — and nullptr
  // means lower from scratch. Measurement results are identical either way.
  ProgramCache* program_cache = nullptr;
  // Emulated per-trial device occupancy (seconds): after computing the
  // simulated cost, the measurement holds its worker for this wall-clock
  // duration, modeling the host-idle time real hardware measurement imposes
  // (remote RPC round trips, on-device runs). 0 = off. Timing only — the
  // measured values are unaffected, so determinism tests are unaffected too.
  double measure_latency_seconds = 0.0;
};

struct MeasureResult {
  bool valid = false;
  // True when the measurement was cancelled before it started (deadline hit,
  // PendingMeasureBatch::Cancel). A cancelled trial never reached the device:
  // it does not count toward Measurer::trial_count() and the search must not
  // treat it as a failed measurement (no blacklist, no zero-throughput
  // training sample, no spent budget).
  bool cancelled = false;
  std::string error;
  double seconds = 0.0;
  // FLOPS achieved (task flop count / seconds); the search maximizes this.
  double throughput = 0.0;
};

// Handle to an in-flight asynchronous measurement batch (Measurer::
// SubmitBatch). The async seam of the tuning service: while a batch occupies
// the worker pool (or sleeps out its emulated device latency), the submitting
// job keeps searching. Results are index-aligned with the submitted states
// and independent of worker count or completion order.
class PendingMeasureBatch {
 public:
  // An empty handle behaves like a completed empty batch.
  PendingMeasureBatch() = default;

  // Blocks until every item has finished (or been skipped by Cancel) and
  // returns the results. May be called once; subsequent calls return empty.
  std::vector<MeasureResult> Wait();
  // Waits up to `seconds`; true when the batch has fully completed.
  bool WaitFor(double seconds);
  // Requests cancellation: items not yet started complete immediately with
  // cancelled = true; items already measuring finish normally. Wait() still
  // must be called to collect the results.
  void Cancel();
  bool done() const;

 private:
  friend class Measurer;
  struct Shared;
  std::shared_ptr<Shared> shared_;
};

class Measurer {
 public:
  explicit Measurer(MachineModel machine, MeasureOptions options = MeasureOptions());

  const MachineModel& machine() const { return machine_; }

  // `cache` overrides MeasureOptions::program_cache for this call (the
  // search policy injects its per-task cache); nullptr falls back to it.
  // `cache_client_id` tags the cache lookups for cross-task accounting
  // (ProgramCache::GetOrBuild); 0 = anonymous. A non-null `tracer` records a
  // "measure_trial" span per trial (args: outcome, and queue_seconds for
  // submitted batches — the time the item waited for a device worker; the
  // span's own duration is the device time) under a "measure_batch" span
  // covering submit→complete. Results are identical with tracing on or off.
  MeasureResult Measure(const State& state, ProgramCache* cache = nullptr,
                        uint64_t cache_client_id = 0, const Tracer* tracer = nullptr);
  std::vector<MeasureResult> MeasureBatch(const std::vector<State>& states,
                                          ProgramCache* cache = nullptr,
                                          uint64_t cache_client_id = 0,
                                          const Tracer* tracer = nullptr);

  // Asynchronous MeasureBatch: enqueues one measurement per state and returns
  // immediately. Items run on MeasureOptions::thread_pool when set (the
  // measurer's device executor — a dedicated target device must not have its
  // occupancy diluted onto host workers), else on `pool`, else the global
  // pool. The submit/drain split lets the caller overlap its own work
  // — the next round's search, training-feature extraction — with the batch
  // in flight, and lets a deadline cancel the unstarted remainder. The
  // Measurer (and cache, if any) must outlive the returned handle's Wait().
  // With a tracer, the "measure_batch" span opens at submission and is
  // recorded by whichever worker completes the batch's last item.
  PendingMeasureBatch SubmitBatch(std::vector<State> states, ProgramCache* cache = nullptr,
                                  uint64_t cache_client_id = 0, ThreadPool* pool = nullptr,
                                  const Tracer* tracer = nullptr);

  // Total number of measurement trials performed (the budget unit of §7).
  // Cancelled batch items never started, so they are not counted.
  int64_t trial_count() const { return trials_.load(); }
  // Resets the budget counter AND the verify_every phase: back-to-back runs
  // sharing one Measurer each start their verification cadence at trial 0
  // (the phase used to drift across runs — see MeasurerVerifyCadence tests).
  void ResetTrialCount() {
    trials_.store(0);
    verify_counter_.store(0);
  }
  // Number of measurements that were verified against naive execution
  // (observability for the verify_every cadence).
  int64_t verification_count() const { return verifications_.load(); }

  // Mirrors the trial/verification counters into `registry` as gauges named
  // <prefix>.trials / .verifications.
  void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const;

 private:
  friend class PendingMeasureBatch;  // batch items run through MeasureImpl

  MeasureResult MeasureImpl(const State& state, uint64_t noise_tag, ProgramCache* cache,
                            uint64_t cache_client_id, const Tracer* tracer = nullptr,
                            int64_t submit_nanos = 0);

  MachineModel machine_;
  MeasureOptions options_;
  std::atomic<int64_t> trials_{0};
  std::atomic<int64_t> verify_counter_{0};
  std::atomic<int64_t> verifications_{0};
};

}  // namespace ansor

#endif  // ANSOR_SRC_HWSIM_MEASURER_H_
