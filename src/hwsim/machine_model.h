// Simulated hardware targets.
//
// The paper measures generated programs on an Intel Xeon Platinum 8269CY
// (20 cores), an NVIDIA V100 and a Raspberry Pi 3b+ (4-core Cortex-A53).
// We substitute analytical machine models (see DESIGN.md): the search only
// ever observes (program, throughput) pairs, and the model rewards the same
// optimizations real hardware does — cache-fitting tile sizes, unit-stride
// vectorization, balanced parallelism, unrolling.
#ifndef ANSOR_SRC_HWSIM_MACHINE_MODEL_H_
#define ANSOR_SRC_HWSIM_MACHINE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ansor {

struct CacheLevel {
  int64_t size_bytes = 0;
  // Cycles to move one cache line from this level into the level above.
  double line_cost_cycles = 0.0;
};

enum class MachineKind { kCpu, kGpu };

struct MachineModel {
  std::string name;
  MachineKind kind = MachineKind::kCpu;

  int num_cores = 1;          // CPU cores, or GPU SMs
  int vector_lanes = 1;       // float32 SIMD lanes (CPU) or warp size (GPU)
  double clock_ghz = 1.0;
  // Peak scalar float operations per cycle per core (FMA counted as 2).
  double flops_per_cycle_per_core = 2.0;

  // Cache hierarchy, innermost (L1) first. The last entry is backed by DRAM.
  std::vector<CacheLevel> caches;
  double dram_line_cost_cycles = 0.0;
  int64_t cache_line_bytes = 64;

  // Overheads.
  double loop_overhead_cycles = 2.0;       // per dynamic loop iteration
  double parallel_task_overhead_cycles = 5e3;  // per parallel task launch
  double unroll_overhead_discount = 0.15;  // residual loop overhead when unrolled

  // GPU only: maximum resident threads per SM.
  int max_threads_per_core = 2048;

  // Static resource limits consumed by the program verifier
  // (src/analysis/program_verifier.h). Zero means "unlimited".
  int64_t memory_capacity_bytes = 0;  // total buffer footprint must fit
  // Longest loop extent that may carry a kVectorize annotation: a vector
  // loop must fit the register file (lanes x architectural vector registers)
  // to avoid spilling, so longer loops are statically illegal rather than
  // merely slow.
  int64_t max_vector_extent = 0;

  // The 20-core Intel Xeon Platinum 8269CY of the paper (AVX-512 disabled for
  // search frameworks in §7.1, hence 8 lanes).
  static MachineModel IntelCpu20Core();
  // The 4-core Cortex-A53 of the Raspberry Pi 3b+ (NEON: 4 lanes).
  static MachineModel ArmCpu4Core();
  // The NVIDIA V100.
  static MachineModel NvidiaGpu();

  double PeakGflops() const {
    return clock_ghz * flops_per_cycle_per_core * num_cores * vector_lanes;
  }

  // Stable identity of the fields the verifier's resource checks read, used
  // to key per-machine memos on cached ProgramArtifacts. Two models with the
  // same fingerprint yield identical resource verdicts for every program.
  uint64_t Fingerprint() const;
};

}  // namespace ansor

#endif  // ANSOR_SRC_HWSIM_MACHINE_MODEL_H_
