#include "src/hwsim/machine_model.h"

#include <functional>

#include "src/support/util.h"

namespace ansor {

uint64_t MachineModel::Fingerprint() const {
  uint64_t seed = std::hash<std::string>()(name);
  HashCombine(&seed, static_cast<uint64_t>(kind));
  HashCombine(&seed, static_cast<uint64_t>(max_threads_per_core));
  HashCombine(&seed, static_cast<uint64_t>(memory_capacity_bytes));
  HashCombine(&seed, static_cast<uint64_t>(max_vector_extent));
  return seed;
}

MachineModel MachineModel::IntelCpu20Core() {
  MachineModel m;
  m.name = "intel-xeon-8269cy-20c";
  m.kind = MachineKind::kCpu;
  m.num_cores = 20;
  m.vector_lanes = 8;  // AVX2 (AVX-512 disabled per paper §7.1)
  m.clock_ghz = 3.1;
  m.flops_per_cycle_per_core = 4.0;  // 2 FMA ports
  m.caches = {
      {32 * 1024, 2.0},         // L1D
      {1024 * 1024, 8.0},       // L2
      {36 * 1024 * 1024, 24.0},  // shared L3 (per-core slice approximation)
  };
  m.dram_line_cost_cycles = 80.0;
  m.loop_overhead_cycles = 1.0;
  m.parallel_task_overhead_cycles = 4e3;
  m.memory_capacity_bytes = 64LL * 1024 * 1024 * 1024;  // 64 GiB server DRAM
  m.max_vector_extent = 256;  // 8 lanes x 16 ymm registers, x2 for unrolling
  return m;
}

MachineModel MachineModel::ArmCpu4Core() {
  MachineModel m;
  m.name = "arm-cortex-a53-4c";
  m.kind = MachineKind::kCpu;
  m.num_cores = 4;
  m.vector_lanes = 4;  // NEON 128-bit
  m.clock_ghz = 1.4;
  m.flops_per_cycle_per_core = 2.0;
  m.caches = {
      {32 * 1024, 3.0},    // L1D
      {512 * 1024, 14.0},  // L2
  };
  m.dram_line_cost_cycles = 160.0;
  m.loop_overhead_cycles = 1.5;
  m.parallel_task_overhead_cycles = 8e3;
  m.memory_capacity_bytes = 1LL * 1024 * 1024 * 1024;  // Pi 3b+: 1 GiB LPDDR2
  m.max_vector_extent = 128;  // 4 lanes x 32 NEON q-registers
  return m;
}

MachineModel MachineModel::NvidiaGpu() {
  MachineModel m;
  m.name = "nvidia-v100";
  m.kind = MachineKind::kGpu;
  m.num_cores = 80;       // SMs
  m.vector_lanes = 32;    // warp
  m.clock_ghz = 1.38;
  m.flops_per_cycle_per_core = 64.0;  // FP32 lanes per SM / warp width
  m.caches = {
      {128 * 1024, 2.0},        // unified L1/shared per SM
      {6 * 1024 * 1024, 10.0},  // L2
  };
  m.dram_line_cost_cycles = 40.0;  // HBM2: high bandwidth
  m.cache_line_bytes = 128;
  m.loop_overhead_cycles = 1.0;
  m.parallel_task_overhead_cycles = 2e4;  // kernel launch
  m.max_threads_per_core = 2048;
  m.memory_capacity_bytes = 16LL * 1024 * 1024 * 1024;  // 16 GiB HBM2
  m.max_vector_extent = 1024;  // warp x 32 per-thread registers-equivalents
  return m;
}

}  // namespace ansor
