#include "src/hwsim/measurer.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/exec/interpreter.h"
#include "src/program/program_cache.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/support/util.h"

namespace ansor {

// Shared state between a PendingMeasureBatch handle and the pool tasks
// measuring its items. Each enqueued task claims its fixed index, checks the
// cancellation flag, measures (or marks the result cancelled), and the last
// one to finish wakes the waiter.
struct PendingMeasureBatch::Shared {
  Measurer* measurer = nullptr;
  ProgramCache* cache = nullptr;
  uint64_t cache_client_id = 0;
  std::vector<State> states;
  std::vector<MeasureResult> results;
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu

  void RunItem(size_t i) {
    if (cancel.load(std::memory_order_acquire)) {
      results[i].cancelled = true;
      results[i].error = "cancelled before start";
    } else {
      results[i] = measurer->MeasureImpl(states[i], 0, cache, cache_client_id);
    }
    std::lock_guard<std::mutex> lock(mu);
    if (++done == states.size()) {
      cv.notify_all();
    }
  }
};

std::vector<MeasureResult> PendingMeasureBatch::Wait() {
  if (shared_ == nullptr) {
    return {};
  }
  {
    std::unique_lock<std::mutex> lock(shared_->mu);
    shared_->cv.wait(lock, [&] { return shared_->done == shared_->states.size(); });
  }
  std::vector<MeasureResult> results = std::move(shared_->results);
  shared_.reset();
  return results;
}

bool PendingMeasureBatch::WaitFor(double seconds) {
  if (shared_ == nullptr) {
    return true;
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->cv.wait_for(lock, std::chrono::duration<double>(std::max(0.0, seconds)),
                              [&] { return shared_->done == shared_->states.size(); });
}

void PendingMeasureBatch::Cancel() {
  if (shared_ != nullptr) {
    shared_->cancel.store(true, std::memory_order_release);
  }
}

bool PendingMeasureBatch::done() const {
  if (shared_ == nullptr) {
    return true;
  }
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->done == shared_->states.size();
}

Measurer::Measurer(MachineModel machine, MeasureOptions options)
    : machine_(std::move(machine)), options_(std::move(options)) {}

MeasureResult Measurer::MeasureImpl(const State& state, uint64_t noise_tag,
                                    ProgramCache* cache, uint64_t cache_client_id) {
  trials_.fetch_add(1);
  MeasureResult result;
  if (state.failed()) {
    result.error = "invalid state: " + state.error();
    return result;
  }
  // With a cache, candidates the search already compiled (population scoring,
  // lowerability probes) are measured from the shared artifact.
  ProgramArtifactPtr artifact;
  LoweredProgram local;
  const LoweredProgram* program;
  if (cache != nullptr) {
    artifact = cache->GetOrBuild(state, cache_client_id);
    program = &artifact->lowered();
  } else {
    local = Lower(state);
    program = &local;
  }
  if (!program->ok) {
    result.error = "lowering failed: " + program->error;
    return result;
  }
  if (options_.fail_injector && options_.fail_injector(state)) {
    result.error = "injected transient measurement failure";
    return result;
  }
  if (options_.verify_every > 0 &&
      verify_counter_.fetch_add(1) % options_.verify_every == 0) {
    verifications_.fetch_add(1);
    std::string mismatch = VerifyAgainstNaive(state, *program);
    if (!mismatch.empty()) {
      result.error = "verification failed: " + mismatch;
      return result;
    }
  }
  SimulatedCost cost = SimulateProgram(*program, machine_, options_.sim);
  // Emulated device occupancy: the trial holds this worker for the configured
  // wall-clock duration, like a real on-device run would. Applied to valid
  // and invalid simulations alike (both occupied the device), but not to
  // programs that never compiled.
  if (options_.measure_latency_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.measure_latency_seconds));
  }
  if (!cost.valid) {
    result.error = cost.error;
    return result;
  }
  double seconds = cost.seconds;
  if (options_.noise_stddev > 0.0) {
    // Deterministic per-program noise: hash the step list so that repeated
    // measurements of the same program agree (like a warmed-up benchmark).
    uint64_t h = options_.noise_seed;
    HashCombine(&h, noise_tag);
    for (const Step& step : state.steps()) {
      HashCombine(&h, std::hash<std::string>()(step.ToString()));
    }
    Rng rng(h);
    seconds *= std::exp(rng.Normal(0.0, options_.noise_stddev));
  }
  result.valid = true;
  result.seconds = seconds;
  double flops = state.dag()->FlopCount();
  result.throughput = flops / std::max(seconds, 1e-12);
  return result;
}

MeasureResult Measurer::Measure(const State& state, ProgramCache* cache,
                                uint64_t cache_client_id) {
  return MeasureImpl(state, 0, cache != nullptr ? cache : options_.program_cache,
                     cache_client_id);
}

std::vector<MeasureResult> Measurer::MeasureBatch(const std::vector<State>& states,
                                                  ProgramCache* cache,
                                                  uint64_t cache_client_id) {
  ProgramCache* resolved = cache != nullptr ? cache : options_.program_cache;
  std::vector<MeasureResult> results(states.size());
  ThreadPool::OrGlobal(options_.thread_pool).ParallelFor(states.size(), [&](size_t i) {
    results[i] = MeasureImpl(states[i], 0, resolved, cache_client_id);
  });
  return results;
}

PendingMeasureBatch Measurer::SubmitBatch(std::vector<State> states, ProgramCache* cache,
                                          uint64_t cache_client_id, ThreadPool* pool) {
  PendingMeasureBatch handle;
  if (states.empty()) {
    return handle;
  }
  auto shared = std::make_shared<PendingMeasureBatch::Shared>();
  shared->measurer = this;
  shared->cache = cache != nullptr ? cache : options_.program_cache;
  shared->cache_client_id = cache_client_id;
  shared->states = std::move(states);
  shared->results.resize(shared->states.size());
  handle.shared_ = shared;
  // A measurer configured with its own pool owns a device executor (e.g. one
  // thread per attached board); its occupancy must not be diluted onto the
  // caller's host workers. Only measurers without one use the caller's pool.
  ThreadPool& resolved = ThreadPool::OrGlobal(
      options_.thread_pool != nullptr ? options_.thread_pool : pool);
  for (size_t i = 0; i < shared->states.size(); ++i) {
    resolved.Enqueue([shared, i] { shared->RunItem(i); });
  }
  return handle;
}

}  // namespace ansor
