#include "src/hwsim/measurer.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/exec/interpreter.h"
#include "src/program/program_cache.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/support/util.h"

namespace ansor {

// Shared state between a PendingMeasureBatch handle and the pool tasks
// measuring its items. Each enqueued task claims its fixed index, checks the
// cancellation flag, measures (or marks the result cancelled), and the last
// one to finish wakes the waiter.
struct PendingMeasureBatch::Shared {
  Measurer* measurer = nullptr;
  ProgramCache* cache = nullptr;
  uint64_t cache_client_id = 0;
  std::vector<State> states;
  std::vector<MeasureResult> results;
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu; the Wait()/WaitFor() predicate
  // Names the last worker without making the cv predicate true (see RunItem).
  std::atomic<size_t> finished{0};
  // Telemetry: trial spans parent under a "measure_batch" span whose id is
  // allocated at submission and whose event is recorded by whichever worker
  // finishes the last item (submit→complete, independent of when the
  // submitter gets around to Wait()).
  Tracer tracer;             // disabled unless SubmitBatch got one;
                             // re-parented under the batch span
  int64_t submit_nanos = 0;  // batch submission time (tracer clock)
  uint64_t batch_span = 0;
  uint64_t batch_parent = 0;  // the submitter's parent span

  void RunItem(size_t i) {
    if (cancel.load(std::memory_order_acquire)) {
      results[i].cancelled = true;
      results[i].error = "cancelled before start";
      if (tracer.enabled()) {
        TraceSpan span(tracer, "measure_trial", "measure");
        span.Arg("outcome", "cancelled");
      }
    } else {
      results[i] = measurer->MeasureImpl(states[i], 0, cache, cache_client_id,
                                         tracer.enabled() ? &tracer : nullptr,
                                         submit_nanos);
    }
    // Publication order matters: once `done` reaches the batch size, Wait()
    // can return and the whole service (including the TraceSink) may be torn
    // down, so the batch event must be recorded *before* this worker's ++done.
    // `finished` picks the last worker without advancing the cv predicate;
    // `done` only reaches the batch size after every worker — including that
    // one — has passed its Record.
    bool last =
        finished.fetch_add(1, std::memory_order_acq_rel) + 1 == states.size();
    if (last && tracer.enabled()) {
      TraceEvent batch;
      batch.name = "measure_batch";
      batch.category = "measure";
      batch.span_id = batch_span;
      batch.parent_id = batch_parent;
      batch.job = tracer.job();
      batch.task = tracer.task();
      batch.round = tracer.round();
      batch.start_nanos = submit_nanos;
      batch.end_nanos = tracer.clock()->NowNanos();
      batch.args.emplace_back("count", std::to_string(states.size()));
      tracer.sink()->Record(std::move(batch));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == states.size()) {
        cv.notify_all();
      }
    }
  }
};

std::vector<MeasureResult> PendingMeasureBatch::Wait() {
  if (shared_ == nullptr) {
    return {};
  }
  {
    std::unique_lock<std::mutex> lock(shared_->mu);
    shared_->cv.wait(lock, [&] { return shared_->done == shared_->states.size(); });
  }
  std::vector<MeasureResult> results = std::move(shared_->results);
  shared_.reset();
  return results;
}

bool PendingMeasureBatch::WaitFor(double seconds) {
  if (shared_ == nullptr) {
    return true;
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->cv.wait_for(lock, std::chrono::duration<double>(std::max(0.0, seconds)),
                              [&] { return shared_->done == shared_->states.size(); });
}

void PendingMeasureBatch::Cancel() {
  if (shared_ != nullptr) {
    shared_->cancel.store(true, std::memory_order_release);
  }
}

bool PendingMeasureBatch::done() const {
  if (shared_ == nullptr) {
    return true;
  }
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->done == shared_->states.size();
}

Measurer::Measurer(MachineModel machine, MeasureOptions options)
    : machine_(std::move(machine)), options_(std::move(options)) {}

MeasureResult Measurer::MeasureImpl(const State& state, uint64_t noise_tag,
                                    ProgramCache* cache, uint64_t cache_client_id,
                                    const Tracer* tracer, int64_t submit_nanos) {
  trials_.fetch_add(1);
  TraceSpan span(tracer, "measure_trial", "measure");
  if (span.enabled() && submit_nanos > 0) {
    // Time the item spent queued for a device worker before this span began.
    span.Arg("queue_seconds",
             SecondsBetween(submit_nanos, tracer->clock()->NowNanos()));
  }
  MeasureResult result;
  if (state.failed()) {
    result.error = "invalid state: " + state.error();
    span.Arg("outcome", "invalid");
    return result;
  }
  // With a cache, candidates the search already compiled (population scoring,
  // lowerability probes) are measured from the shared artifact.
  ProgramArtifactPtr artifact;
  LoweredProgram local;
  const LoweredProgram* program;
  if (cache != nullptr) {
    artifact = cache->GetOrBuild(state, cache_client_id,
                                 span.enabled() ? tracer : nullptr);
    program = &artifact->lowered();
  } else {
    local = Lower(state);
    program = &local;
  }
  if (!program->ok) {
    result.error = "lowering failed: " + program->error;
    span.Arg("outcome", "invalid");
    return result;
  }
  if (options_.fail_injector && options_.fail_injector(state)) {
    result.error = "injected transient measurement failure";
    span.Arg("outcome", "invalid");
    return result;
  }
  if (options_.verify_every > 0 &&
      verify_counter_.fetch_add(1) % options_.verify_every == 0) {
    verifications_.fetch_add(1);
    std::string mismatch = VerifyAgainstNaive(state, *program);
    if (!mismatch.empty()) {
      result.error = "verification failed: " + mismatch;
      span.Arg("outcome", "invalid");
      return result;
    }
  }
  SimulatedCost cost = SimulateProgram(*program, machine_, options_.sim);
  // Emulated device occupancy: the trial holds this worker for the configured
  // wall-clock duration, like a real on-device run would. Applied to valid
  // and invalid simulations alike (both occupied the device), but not to
  // programs that never compiled.
  if (options_.measure_latency_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.measure_latency_seconds));
  }
  if (!cost.valid) {
    result.error = cost.error;
    span.Arg("outcome", "invalid");
    return result;
  }
  span.Arg("outcome", "valid");
  double seconds = cost.seconds;
  if (options_.noise_stddev > 0.0) {
    // Deterministic per-program noise: hash the step list so that repeated
    // measurements of the same program agree (like a warmed-up benchmark).
    uint64_t h = options_.noise_seed;
    HashCombine(&h, noise_tag);
    for (const Step& step : state.steps()) {
      HashCombine(&h, std::hash<std::string>()(step.ToString()));
    }
    Rng rng(h);
    seconds *= std::exp(rng.Normal(0.0, options_.noise_stddev));
  }
  result.valid = true;
  result.seconds = seconds;
  double flops = state.dag()->FlopCount();
  result.throughput = flops / std::max(seconds, 1e-12);
  return result;
}

MeasureResult Measurer::Measure(const State& state, ProgramCache* cache,
                                uint64_t cache_client_id, const Tracer* tracer) {
  return MeasureImpl(state, 0, cache != nullptr ? cache : options_.program_cache,
                     cache_client_id, tracer);
}

std::vector<MeasureResult> Measurer::MeasureBatch(const std::vector<State>& states,
                                                  ProgramCache* cache,
                                                  uint64_t cache_client_id,
                                                  const Tracer* tracer) {
  ProgramCache* resolved = cache != nullptr ? cache : options_.program_cache;
  TraceSpan batch(tracer, "measure_batch", "measure");
  batch.Arg("count", static_cast<int64_t>(states.size()));
  Tracer nested = batch.child();
  const Tracer* item_tracer = batch.enabled() ? &nested : nullptr;
  std::vector<MeasureResult> results(states.size());
  ThreadPool::OrGlobal(options_.thread_pool).ParallelFor(states.size(), [&](size_t i) {
    results[i] = MeasureImpl(states[i], 0, resolved, cache_client_id, item_tracer);
  });
  return results;
}

PendingMeasureBatch Measurer::SubmitBatch(std::vector<State> states, ProgramCache* cache,
                                          uint64_t cache_client_id, ThreadPool* pool,
                                          const Tracer* tracer) {
  PendingMeasureBatch handle;
  if (states.empty()) {
    return handle;
  }
  auto shared = std::make_shared<PendingMeasureBatch::Shared>();
  shared->measurer = this;
  shared->cache = cache != nullptr ? cache : options_.program_cache;
  shared->cache_client_id = cache_client_id;
  shared->states = std::move(states);
  shared->results.resize(shared->states.size());
  if (tracer != nullptr && tracer->enabled()) {
    shared->batch_span = tracer->sink()->NextId();
    shared->batch_parent = tracer->parent();
    shared->tracer = tracer->WithParent(shared->batch_span);
    shared->submit_nanos = tracer->clock()->NowNanos();
  }
  handle.shared_ = shared;
  // A measurer configured with its own pool owns a device executor (e.g. one
  // thread per attached board); its occupancy must not be diluted onto the
  // caller's host workers. Only measurers without one use the caller's pool.
  ThreadPool& resolved = ThreadPool::OrGlobal(
      options_.thread_pool != nullptr ? options_.thread_pool : pool);
  for (size_t i = 0; i < shared->states.size(); ++i) {
    resolved.Enqueue([shared, i] { shared->RunItem(i); });
  }
  return handle;
}

void Measurer::ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const {
  registry->SetGauge(prefix + ".trials", static_cast<double>(trial_count()));
  registry->SetGauge(prefix + ".verifications", static_cast<double>(verification_count()));
}

}  // namespace ansor
