#include "src/hwsim/measurer.h"

#include <cmath>

#include "src/exec/interpreter.h"
#include "src/program/program_cache.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/support/util.h"

namespace ansor {

Measurer::Measurer(MachineModel machine, MeasureOptions options)
    : machine_(std::move(machine)), options_(std::move(options)) {}

MeasureResult Measurer::MeasureImpl(const State& state, uint64_t noise_tag,
                                    ProgramCache* cache) {
  trials_.fetch_add(1);
  MeasureResult result;
  if (state.failed()) {
    result.error = "invalid state: " + state.error();
    return result;
  }
  // With a cache, candidates the search already compiled (population scoring,
  // lowerability probes) are measured from the shared artifact.
  ProgramArtifactPtr artifact;
  LoweredProgram local;
  const LoweredProgram* program;
  if (cache != nullptr) {
    artifact = cache->GetOrBuild(state);
    program = &artifact->lowered();
  } else {
    local = Lower(state);
    program = &local;
  }
  if (!program->ok) {
    result.error = "lowering failed: " + program->error;
    return result;
  }
  if (options_.fail_injector && options_.fail_injector(state)) {
    result.error = "injected transient measurement failure";
    return result;
  }
  if (options_.verify_every > 0 &&
      verify_counter_.fetch_add(1) % options_.verify_every == 0) {
    std::string mismatch = VerifyAgainstNaive(state, *program);
    if (!mismatch.empty()) {
      result.error = "verification failed: " + mismatch;
      return result;
    }
  }
  SimulatedCost cost = SimulateProgram(*program, machine_, options_.sim);
  if (!cost.valid) {
    result.error = cost.error;
    return result;
  }
  double seconds = cost.seconds;
  if (options_.noise_stddev > 0.0) {
    // Deterministic per-program noise: hash the step list so that repeated
    // measurements of the same program agree (like a warmed-up benchmark).
    uint64_t h = options_.noise_seed;
    HashCombine(&h, noise_tag);
    for (const Step& step : state.steps()) {
      HashCombine(&h, std::hash<std::string>()(step.ToString()));
    }
    Rng rng(h);
    seconds *= std::exp(rng.Normal(0.0, options_.noise_stddev));
  }
  result.valid = true;
  result.seconds = seconds;
  double flops = state.dag()->FlopCount();
  result.throughput = flops / std::max(seconds, 1e-12);
  return result;
}

MeasureResult Measurer::Measure(const State& state, ProgramCache* cache) {
  return MeasureImpl(state, 0, cache != nullptr ? cache : options_.program_cache);
}

std::vector<MeasureResult> Measurer::MeasureBatch(const std::vector<State>& states,
                                                  ProgramCache* cache) {
  ProgramCache* resolved = cache != nullptr ? cache : options_.program_cache;
  std::vector<MeasureResult> results(states.size());
  ThreadPool::OrGlobal(options_.thread_pool).ParallelFor(states.size(), [&](size_t i) {
    results[i] = MeasureImpl(states[i], 0, resolved);
  });
  return results;
}

}  // namespace ansor
