// Analytical performance simulator: the "Measurer" substrate (paper Fig. 4).
//
// Walks a lowered loop tree and estimates execution cycles on a MachineModel.
// The estimate rewards exactly the optimizations Ansor's search space exposes:
//   * tiling that fits each reuse level into the cache hierarchy,
//   * unit-stride vectorization of the innermost loop,
//   * balanced multi-core parallelization of outer loops,
//   * unrolling (loop overhead removal + multiply-by-zero elimination for
//     padded/strided computations, the T2D effect from §7.1),
//   * GPU thread binding with coalesced access.
#ifndef ANSOR_SRC_HWSIM_SIMULATOR_H_
#define ANSOR_SRC_HWSIM_SIMULATOR_H_

#include "src/hwsim/machine_model.h"
#include "src/lower/loop_tree.h"

namespace ansor {

struct SimulatedCost {
  bool valid = false;
  std::string error;
  double cycles = 0.0;
  double seconds = 0.0;
  // Breakdown (for tests and diagnostics).
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double overhead_cycles = 0.0;
};

struct SimOptions {
  // Paper §4.2 layout rewrite: constant tensors (weights) are repacked to the
  // multi-level tile structure, making their accesses effectively contiguous
  // and eliminating layout-transformation overheads.
  bool rewrite_constant_layouts = true;
};

SimulatedCost SimulateProgram(const LoweredProgram& program, const MachineModel& machine,
                              const SimOptions& options = SimOptions());

// Fraction of iterations for which `cond` holds, assuming affine comparisons
// over loop variables with the given extents (used both for guard costing and
// for the unroll zero-elimination discount). Returns 1.0 when unknown.
double EstimateSelectivity(const Expr& cond,
                           const std::unordered_map<int64_t, int64_t>& var_extent);

}  // namespace ansor

#endif  // ANSOR_SRC_HWSIM_SIMULATOR_H_
