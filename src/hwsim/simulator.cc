#include "src/hwsim/simulator.h"

#include <algorithm>
#include <cmath>

#include <unordered_set>

#include "src/analysis/access_pattern.h"
#include "src/dag/compute_dag.h"
#include "src/expr/term.h"

namespace ansor {
namespace {

constexpr double kBytesPerElement = 4.0;  // float32

// Counts Select nodes with a constant-zero arm and multiplies their
// selectivities: the fraction of iterations that do real work. Sets
// *resolvable to false when some select condition references a variable
// outside `static_vars` — the code generator can only delete zero work when
// the condition is decidable at compile time, i.e. every variable it uses
// belongs to an unrolled loop (paper §7.1: the T2D speedup needs "correct
// tile structures and unrolling strategies").
double ZeroWorkFraction(const Expr& e,
                        const std::unordered_map<int64_t, int64_t>& var_extent,
                        const std::unordered_set<int64_t>& static_vars, bool* resolvable) {
  double fraction = 1.0;
  std::function<void(const Expr&)> walk = [&](const Expr& expr) {
    const ExprNode& n = *expr.get();
    if (n.kind == ExprKind::kSelect) {
      const ExprNode& false_arm = *n.operands[2].get();
      bool zero_arm = false_arm.kind == ExprKind::kFloatImm && false_arm.float_value == 0.0;
      if (zero_arm) {
        fraction *= EstimateSelectivity(n.operands[0], var_extent);
        std::vector<const ExprNode*> cond_vars;
        CollectVars(n.operands[0], &cond_vars);
        for (const ExprNode* v : cond_vars) {
          auto it = var_extent.find(v->var_id);
          bool unit_loop = it != var_extent.end() && it->second == 1;
          if (!unit_loop && static_vars.count(v->var_id) == 0) {
            *resolvable = false;
          }
        }
      }
    }
    for (const Expr& operand : n.operands) {
      walk(operand);
    }
  };
  walk(e);
  return fraction;
}

struct LoopFrame {
  const LoopTreeNode* loop;
  int64_t extent;
};

class Simulator {
 public:
  Simulator(const LoweredProgram& program, const MachineModel& machine,
            const SimOptions& options)
      : program_(program), machine_(machine), options_(options) {}

  SimulatedCost Run() {
    // Resource violations abort the simulated run like a failed build on real
    // hardware (register spill past the file, OOM): the trial comes back
    // invalid instead of being silently clamped to the machine's limits. Same
    // semantics as the static resource check in src/analysis — a program the
    // verifier rejects for this machine never measures valid on it.
    if (std::string violation = ResourceViolation(); !violation.empty()) {
      cost_.error = violation;
      return cost_;
    }
    for (const LoopTreeNodeRef& root : program_.roots) {
      Walk(*root, 1.0);
    }
    cost_.valid = true;
    cost_.cycles = cost_.compute_cycles + cost_.memory_cycles + cost_.overhead_cycles;
    cost_.seconds = cost_.cycles / (machine_.clock_ghz * 1e9);
    return cost_;
  }

 private:
  // Mirrors VerifyResources (src/analysis/program_verifier.cc) so the static
  // and dynamic judges agree on which programs this machine can run at all.
  std::string ResourceViolation() const {
    if (machine_.memory_capacity_bytes > 0) {
      int64_t footprint = 0;
      for (const auto& [name, buffer] : program_.buffers) {
        footprint += buffer->NumElements() * static_cast<int64_t>(sizeof(float));
      }
      if (footprint > machine_.memory_capacity_bytes) {
        return "buffer footprint " + std::to_string(footprint) +
               " bytes exceeds machine memory capacity of " +
               std::to_string(machine_.memory_capacity_bytes) + " bytes";
      }
    }
    for (const LoopTreeNodeRef& root : program_.roots) {
      if (std::string v = AnnotationViolation(*root); !v.empty()) {
        return v;
      }
    }
    return "";
  }

  std::string AnnotationViolation(const LoopTreeNode& node) const {
    if (node.kind == LoopTreeKind::kLoop) {
      if (node.annotation == IterAnnotation::kVectorize && machine_.max_vector_extent > 0 &&
          node.extent > machine_.max_vector_extent) {
        return "stage " + node.stage_name + ": vectorized loop extent " +
               std::to_string(node.extent) + " exceeds the machine's register budget of " +
               std::to_string(machine_.max_vector_extent) + " lanes-equivalents";
      }
      if (node.annotation == IterAnnotation::kThreadX && machine_.max_threads_per_core > 0 &&
          node.extent > machine_.max_threads_per_core) {
        return "stage " + node.stage_name + ": thread-bound loop extent " +
               std::to_string(node.extent) + " exceeds " +
               std::to_string(machine_.max_threads_per_core) + " resident threads per core";
      }
    }
    for (const LoopTreeNodeRef& child : node.children) {
      if (std::string v = AnnotationViolation(*child); !v.empty()) {
        return v;
      }
    }
    return "";
  }

  void Walk(const LoopTreeNode& node, double selectivity) {
    switch (node.kind) {
      case LoopTreeKind::kLoop:
        stack_.push_back({&node, node.extent});
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child, selectivity);
        }
        stack_.pop_back();
        return;
      case LoopTreeKind::kIf: {
        std::unordered_map<int64_t, int64_t> extents = VarExtents();
        double s = EstimateSelectivity(node.condition, extents);
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child, selectivity * s);
        }
        return;
      }
      case LoopTreeKind::kStore:
        CostStatement(node, selectivity);
        return;
    }
  }

  std::unordered_map<int64_t, int64_t> VarExtents() const {
    std::unordered_map<int64_t, int64_t> extents;
    for (const LoopFrame& f : stack_) {
      extents[f.loop->var->var_id] = f.extent;
    }
    return extents;
  }

  void CostStatement(const LoopTreeNode& store, double selectivity) {
    std::unordered_map<int64_t, int64_t> extents = VarExtents();

    double iters = 1.0;
    for (const LoopFrame& f : stack_) {
      iters *= static_cast<double>(f.extent);
    }
    iters *= selectivity;
    if (iters <= 0.0) {
      return;
    }

    // --- Compute cost ---------------------------------------------------
    double flops_per_iter = store.value.defined() ? ExprFlopCount(store.value) : 0.0;
    if (store.is_accumulate) {
      flops_per_iter += 1.0;
    }
    flops_per_iter = std::max(flops_per_iter, 0.5);

    // Vectorization: the innermost loop must carry the annotation and the
    // accesses must be unit-stride (or invariant) along it.
    double vec_speedup = 1.0;
    const LoopTreeNode* innermost = stack_.empty() ? nullptr : stack_.back().loop;
    std::vector<AccessPattern> accesses = StatementAccesses(store, extents);
    if (innermost != nullptr && innermost->annotation == IterAnnotation::kVectorize) {
      int64_t vid = innermost->var->var_id;
      double efficiency = 1.0;
      for (const AccessPattern& a : accesses) {
        if (LayoutRewritten(a)) {
          continue;  // weights repacked to the tile structure: contiguous
        }
        if (!a.analyzable) {
          efficiency = std::min(efficiency, 0.4);
          continue;
        }
        double stride = std::fabs(a.StrideOf(vid));
        if (stride > 1.5) {
          efficiency = std::min(efficiency, 0.3);  // gather/scatter
        }
      }
      if (innermost->iter_kind == IterKind::kReduce) {
        efficiency *= 0.6;  // horizontal reduction at the end
      }
      vec_speedup =
          std::max(1.0, std::min<double>(innermost->extent, machine_.vector_lanes) *
                            efficiency);
    }

    // Unrolled region: innermost consecutive loops explicitly unrolled or
    // within the auto_unroll_max_step budget.
    double unrolled_product = 1.0;
    bool unrolled = false;
    std::unordered_set<int64_t> unrolled_vars;
    {
      double budget = static_cast<double>(store.auto_unroll_max_step);
      double prod = 1.0;
      for (size_t i = stack_.size(); i > 0; --i) {
        const LoopFrame& f = stack_[i - 1];
        prod *= static_cast<double>(f.extent);
        bool explicit_unroll = f.loop->annotation == IterAnnotation::kUnroll;
        bool auto_unroll = budget > 0.0 && prod <= budget;
        if (explicit_unroll || auto_unroll) {
          unrolled = true;
          unrolled_product = prod;
          unrolled_vars.insert(f.loop->var->var_id);
        } else if (f.loop->annotation != IterAnnotation::kVectorize) {
          break;
        } else {
          unrolled_vars.insert(f.loop->var->var_id);  // vector lanes are static too
        }
      }
    }

    // Multiply-by-zero elimination: when the statement contains zero-arm
    // selects whose conditions are fully decided by unrolled (compile-time)
    // loop variables, the code generator deletes the zero iterations (the
    // T2D/DIL effect). A select that stays dynamic costs a branch instead.
    double work_fraction = 1.0;
    if (store.value.defined()) {
      bool resolvable = true;
      double zero_fraction = ZeroWorkFraction(store.value, extents, unrolled_vars,
                                              &resolvable);
      if (zero_fraction < 1.0) {
        work_fraction =
            (unrolled && resolvable) ? zero_fraction + 0.05 : 1.0 + 0.2;  // branch cost
      }
    }

    double compute_cycles = iters * flops_per_iter * work_fraction /
                            (machine_.flops_per_cycle_per_core * vec_speedup);

    // Loop bookkeeping overhead: dominated by the innermost level; vector
    // lanes and unrolling both amortize it.
    double overhead_per_iter = machine_.loop_overhead_cycles * 1.3;
    if (unrolled) {
      overhead_per_iter *= machine_.unroll_overhead_discount +
                           (1.0 - machine_.unroll_overhead_discount) / unrolled_product;
    }
    if (vec_speedup > 1.0) {
      overhead_per_iter /= std::min<double>(innermost->extent, machine_.vector_lanes);
    }
    // Excessive unrolling blows up the instruction cache; penalize gently.
    if (unrolled_product > 512.0) {
      overhead_per_iter += 0.02 * (unrolled_product - 512.0) / 512.0;
    }
    double overhead_cycles = iters * overhead_per_iter;

    // --- Memory cost ------------------------------------------------------
    double memory_cycles = CostMemory(accesses, iters);

    // --- Parallelism -------------------------------------------------------
    double speedup = 1.0;
    double launch_cycles = 0.0;
    if (machine_.kind == MachineKind::kCpu) {
      double parallel_extent = 1.0;
      for (const LoopFrame& f : stack_) {
        if (f.loop->annotation == IterAnnotation::kParallel) {
          parallel_extent *= static_cast<double>(f.extent);
        } else {
          break;  // only outermost consecutive parallel loops count
        }
      }
      if (parallel_extent > 1.0) {
        double cores = static_cast<double>(machine_.num_cores);
        double used = std::min(parallel_extent, cores);
        // Imbalance: with E parallel chunks on P cores, the longest core runs
        // ceil(E/P) chunks.
        double rounds = std::ceil(parallel_extent / cores);
        double efficiency = parallel_extent / (rounds * cores);
        speedup = std::max(1.0, used * efficiency);
        launch_cycles =
            machine_.parallel_task_overhead_cycles * std::min(parallel_extent, cores);
      }
    } else {
      double blocks = 1.0;
      double threads = 1.0;
      int64_t thread_var = -1;
      for (const LoopFrame& f : stack_) {
        if (f.loop->annotation == IterAnnotation::kBlockX) {
          blocks *= static_cast<double>(f.extent);
        } else if (f.loop->annotation == IterAnnotation::kThreadX ||
                   f.loop->annotation == IterAnnotation::kVThread) {
          threads *= static_cast<double>(f.extent);
          thread_var = f.loop->var->var_id;
        }
      }
      if (blocks * threads > 1.0) {
        double sms = static_cast<double>(machine_.num_cores);
        double warp = static_cast<double>(machine_.vector_lanes);
        double warp_eff = std::min(threads, warp) / warp;
        double concurrent = std::min(blocks, sms) *
                            std::min(threads, static_cast<double>(machine_.max_threads_per_core));
        speedup = std::max(1.0, std::min(blocks * threads, concurrent) * warp_eff);
        launch_cycles = machine_.parallel_task_overhead_cycles;
        // Coalescing: loads should be unit-stride along threadIdx.x.
        if (thread_var >= 0) {
          for (const AccessPattern& a : accesses) {
            if (LayoutRewritten(a)) {
              continue;
            }
            double stride = std::fabs(a.StrideOf(thread_var));
            if (a.analyzable && stride > 1.5) {
              memory_cycles *= 2.0;
              break;
            }
          }
        }
      } else {
        // Unbound GPU program: runs on a single thread of a single SM.
        speedup = 1.0 / 16.0;
      }
    }

    cost_.compute_cycles += compute_cycles / speedup;
    cost_.memory_cycles += memory_cycles / speedup;
    cost_.overhead_cycles += overhead_cycles / speedup + launch_cycles;
  }

  // Cache-hierarchy cost: for each access, find for each cache capacity the
  // loop depth whose inner footprint fits, then charge one line transfer per
  // re-fetch from the level below.
  double CostMemory(const std::vector<AccessPattern>& accesses, double total_iters) {
    size_t depth = stack_.size();
    // Footprint of the loops at and inside depth d, summed over all accesses.
    std::vector<double> footprint(depth + 1, 0.0);
    // Per access: unique elements / lines at each depth.
    struct PerAccess {
      std::vector<double> unique_elements;
      std::vector<double> lines;
      std::vector<double> refetch;  // product of outer varying extents
      bool analyzable;
    };
    std::vector<PerAccess> infos;
    for (const AccessPattern& a : accesses) {
      PerAccess info;
      info.analyzable = a.analyzable;
      info.unique_elements.assign(depth + 1, 1.0);
      info.lines.assign(depth + 1, 1.0);
      info.refetch.assign(depth + 1, 1.0);
      bool packed = LayoutRewritten(a);
      double elements = 1.0;
      double min_stride = 1e30;
      for (size_t d = depth; d > 0; --d) {
        const LoopFrame& f = stack_[d - 1];
        int64_t vid = f.loop->var->var_id;
        double stride = std::fabs(a.StrideOf(vid));
        if (!a.analyzable) {
          // Conservative: every level touches everything.
          elements *= static_cast<double>(f.extent);
          min_stride = 1.0;
        } else if (stride > 0.0) {
          elements *= static_cast<double>(std::min<int64_t>(f.extent, a.DistinctOf(vid)));
          min_stride = std::min(min_stride, stride);
        }
        info.unique_elements[d - 1] = elements;
        double line_elems = static_cast<double>(machine_.cache_line_bytes) / kBytesPerElement;
        double contiguous = (packed || min_stride <= 2.0) ? 1.0 / line_elems : 1.0;
        info.lines[d - 1] = std::max(1.0, elements * contiguous);
      }
      // Refetch factor: outer loops (outside depth d) whose var varies the
      // access force a re-fetch of the region each iteration.
      double refetch = 1.0;
      for (size_t d = 0; d < depth; ++d) {
        info.refetch[d] = refetch;
        const LoopFrame& f = stack_[d];
        int64_t vid = f.loop->var->var_id;
        if (!a.analyzable || std::fabs(a.StrideOf(vid)) > 0.0) {
          refetch *= static_cast<double>(f.extent);
        }
      }
      // refetch[depth] covers the "nothing fits this cache" case: every
      // varying iteration misses, amortized over the cache line for
      // contiguous streams.
      info.refetch[depth] = refetch;
      {
        double line_elems = static_cast<double>(machine_.cache_line_bytes) / kBytesPerElement;
        info.lines[depth] = min_stride <= 2.0 ? 1.0 / line_elems : 1.0;
      }
      infos.push_back(std::move(info));
    }
    for (size_t d = 0; d <= depth; ++d) {
      for (const PerAccess& info : infos) {
        footprint[d] +=
            (d < depth ? info.unique_elements[d] : 1.0) * kBytesPerElement;
      }
    }

    // Traffic between level l and l+1 = misses at capacity(l), priced at the
    // line cost of level l+1 (the last level is backed by DRAM). L1 hits ride
    // on the compute pipeline and are free here.
    double cycles = 0.0;
    for (size_t a = 0; a < infos.size(); ++a) {
      const PerAccess& info = infos[a];
      double prev_fetches = total_iters;  // every iteration touches L1
      for (size_t level = 0; level < machine_.caches.size(); ++level) {
        double capacity = static_cast<double>(machine_.caches[level].size_bytes);
        // Outermost depth whose inner footprint fits this capacity.
        size_t fit_depth = depth;
        for (size_t d = depth + 1; d > 0; --d) {
          if (footprint[d - 1] <= capacity) {
            fit_depth = d - 1;
          } else {
            break;
          }
        }
        double fetches =
            std::max(1.0, info.lines[fit_depth] * info.refetch[fit_depth]);
        fetches = std::min(fetches, prev_fetches);
        double line_cost = level + 1 < machine_.caches.size()
                               ? machine_.caches[level + 1].line_cost_cycles
                               : machine_.dram_line_cost_cycles;
        cycles += fetches * line_cost;
        prev_fetches = fetches;
      }
    }
    return cycles;
  }

  // True when the access's layout is compiler-controlled (constant weights
  // with layout rewrite enabled): stride penalties do not apply.
  bool LayoutRewritten(const AccessPattern& a) const {
    return options_.rewrite_constant_layouts && a.buffer != nullptr &&
           a.buffer->is_constant;
  }

  const LoweredProgram& program_;
  const MachineModel& machine_;
  SimOptions options_;
  std::vector<LoopFrame> stack_;
  SimulatedCost cost_;
};

}  // namespace

double EstimateSelectivity(const Expr& cond,
                           const std::unordered_map<int64_t, int64_t>& var_extent) {
  const ExprNode& n = *cond.get();
  if (n.kind == ExprKind::kBinary) {
    if (n.binary_op == BinaryOp::kAnd) {
      return EstimateSelectivity(n.operands[0], var_extent) *
             EstimateSelectivity(n.operands[1], var_extent);
    }
    if (n.binary_op == BinaryOp::kLt || n.binary_op == BinaryOp::kLe) {
      // expr < c : fraction of the expression's range below c.
      const ExprNode& rhs = *n.operands[1].get();
      if (rhs.kind != ExprKind::kIntImm) {
        return 1.0;
      }
      std::vector<AxisTerm> terms;
      if (!DecomposeIndex(n.operands[0], var_extent, &terms)) {
        return 1.0;
      }
      double max_value = 0.0;
      double constant = 0.0;
      for (const AxisTerm& t : terms) {
        if (t.is_constant) {
          constant += static_cast<double>(t.constant);
        } else {
          max_value += static_cast<double>((t.component_extent - 1) * t.multiplier);
        }
      }
      double bound = static_cast<double>(rhs.int_value) -
                     (n.binary_op == BinaryOp::kLt ? 0.0 : -1.0);
      double range = max_value + 1.0;
      double valid = bound - constant;
      return std::clamp(valid / range, 0.0, 1.0);
    }
    if (n.binary_op == BinaryOp::kGe || n.binary_op == BinaryOp::kGt) {
      Expr flipped = n.binary_op == BinaryOp::kGe
                         ? (n.operands[0] < n.operands[1])
                         : (n.operands[0] <= n.operands[1]);
      return std::clamp(1.0 - EstimateSelectivity(flipped, var_extent), 0.0, 1.0);
    }
  }
  return 1.0;
}

SimulatedCost SimulateProgram(const LoweredProgram& program, const MachineModel& machine,
                              const SimOptions& options) {
  if (!program.ok) {
    SimulatedCost cost;
    cost.error = "cannot simulate failed lowering: " + program.error;
    return cost;
  }
  return Simulator(program, machine, options).Run();
}

}  // namespace ansor
