// ComputeDAG: a computation definition as a directed acyclic graph of
// operations (paper §2, §4.1 first column of Figure 5).
//
// The DAG is the unit of optimization: the sketch generator walks its nodes,
// the task scheduler deduplicates subgraphs by canonical hash, and the naive
// executor provides the functional ground truth that every scheduled program
// must reproduce.
#ifndef ANSOR_SRC_DAG_COMPUTE_DAG_H_
#define ANSOR_SRC_DAG_COMPUTE_DAG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/expr/operation.h"

namespace ansor {

class ComputeDAG {
 public:
  ComputeDAG() = default;
  // Builds the DAG from the full tensor list (inputs, intermediates and
  // outputs, in any order). Operations are topologically sorted so producers
  // precede consumers.
  explicit ComputeDAG(const std::vector<Tensor>& tensors);

  const std::vector<OperationRef>& ops() const { return ops_; }
  int num_ops() const { return static_cast<int>(ops_.size()); }

  const OperationRef& op(int index) const { return ops_[static_cast<size_t>(index)]; }

  // Index of the op producing the named buffer; -1 if absent.
  int OpIndexOf(const std::string& buffer_name) const;

  // Indices of ops that read the output of op `index`.
  const std::vector<int>& ConsumersOf(int index) const;

  // Indices of placeholder ops / non-consumed compute ops.
  std::vector<int> InputIndices() const;
  std::vector<int> OutputIndices() const;

  // Total floating point operations for one full evaluation.
  double FlopCount() const;

  // Executes the computation naively (full domains, topological order).
  // `inputs` provides placeholder data; every placeholder must be present and
  // correctly sized. Returns storage for every buffer in the DAG.
  std::unordered_map<std::string, std::vector<float>> Execute(
      const std::unordered_map<std::string, std::vector<float>>& inputs) const;

  // Generates deterministic pseudo-random input data for all placeholders.
  std::unordered_map<std::string, std::vector<float>> RandomInputs(uint64_t seed = 42) const;

  // Canonical structural hash: identical computation definitions hash equal
  // regardless of variable identities or buffer names (task deduplication,
  // paper §6: "A subgraph can also appear multiple times").
  uint64_t CanonicalHash() const;

  std::string ToString() const;

 private:
  std::vector<OperationRef> ops_;
  std::unordered_map<std::string, int> op_index_;
  std::vector<std::vector<int>> consumers_;
};

// Counts floating-point operations performed per evaluation of `e`
// (reductions multiply by their domain size).
double ExprFlopCount(const Expr& e);

}  // namespace ansor

#endif  // ANSOR_SRC_DAG_COMPUTE_DAG_H_
