#include "src/dag/compute_dag.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/expr/eval.h"
#include "src/support/rng.h"
#include "src/support/util.h"

namespace ansor {
namespace {

double BodyFlopCount(const Expr& e) {
  if (!e.defined()) {
    return 0.0;
  }
  const ExprNode& n = *e.get();
  double count = 0.0;
  switch (n.kind) {
    case ExprKind::kBinary:
      // Comparisons and boolean ops on floats count as one op; integer index
      // arithmetic does not count as a float op. We approximate by counting
      // every binary node that has a float subtree.
      count = 1.0;
      break;
    case ExprKind::kCall:
      count = 1.0;
      break;
    case ExprKind::kSelect:
      count = 1.0;
      break;
    case ExprKind::kReduce: {
      double domain = 1.0;
      for (const Expr& axis : n.reduce_axes) {
        domain *= static_cast<double>(axis->var_extent);
      }
      double inner = BodyFlopCount(n.operands[0]);
      // One combine op per reduction element.
      return domain * (inner + 1.0);
    }
    case ExprKind::kLoad:
      // Index arithmetic is integer address computation, not float work.
      return 0.0;
    default:
      break;
  }
  for (const Expr& operand : n.operands) {
    count += BodyFlopCount(operand);
  }
  return count;
}

// Canonical hashing helper: maps var ids and buffer names to dense indices in
// first-visit order so that structurally identical DAGs hash identically.
struct Canonicalizer {
  std::unordered_map<int64_t, int64_t> var_ids;
  std::unordered_map<std::string, int64_t> buffer_ids;

  int64_t VarId(int64_t id) {
    auto [it, inserted] = var_ids.try_emplace(id, static_cast<int64_t>(var_ids.size()));
    return it->second;
  }
  int64_t BufferId(const std::string& name) {
    auto [it, inserted] =
        buffer_ids.try_emplace(name, static_cast<int64_t>(buffer_ids.size()));
    return it->second;
  }

  void HashExpr(const Expr& e, uint64_t* h) {
    const ExprNode& n = *e.get();
    HashCombine(h, static_cast<uint64_t>(n.kind) + 17);
    switch (n.kind) {
      case ExprKind::kIntImm:
        HashCombine(h, static_cast<uint64_t>(n.int_value));
        break;
      case ExprKind::kFloatImm:
        HashCombine(h, std::hash<double>()(n.float_value));
        break;
      case ExprKind::kVar:
        HashCombine(h, static_cast<uint64_t>(VarId(n.var_id)));
        HashCombine(h, static_cast<uint64_t>(n.var_extent));
        break;
      case ExprKind::kBinary:
        HashCombine(h, static_cast<uint64_t>(n.binary_op));
        break;
      case ExprKind::kCall:
        HashCombine(h, static_cast<uint64_t>(n.intrinsic));
        break;
      case ExprKind::kLoad:
        HashCombine(h, static_cast<uint64_t>(BufferId(n.buffer->name)));
        break;
      case ExprKind::kReduce:
        HashCombine(h, static_cast<uint64_t>(n.reduce_kind));
        for (const Expr& axis : n.reduce_axes) {
          HashExpr(axis, h);
        }
        break;
      default:
        break;
    }
    for (const Expr& operand : n.operands) {
      HashExpr(operand, h);
    }
  }
};

}  // namespace

double ExprFlopCount(const Expr& e) { return BodyFlopCount(e); }

ComputeDAG::ComputeDAG(const std::vector<Tensor>& tensors) {
  // Collect unique operations keyed by output buffer name.
  std::unordered_map<std::string, OperationRef> by_name;
  std::vector<std::string> order;
  for (const Tensor& t : tensors) {
    CHECK(t.defined());
    if (by_name.try_emplace(t.name(), t.op()).second) {
      order.push_back(t.name());
    }
  }

  // Topological sort (DFS from every node; producers first).
  std::unordered_set<std::string> visiting;
  std::unordered_set<std::string> done;
  std::vector<OperationRef> sorted;
  std::function<void(const std::string&)> visit = [&](const std::string& name) {
    if (done.count(name) > 0) {
      return;
    }
    CHECK_EQ(visiting.count(name), 0u) << "cycle through " << name;
    visiting.insert(name);
    auto it = by_name.find(name);
    CHECK(it != by_name.end()) << "tensor list is missing producer of " << name
                               << "; pass every tensor to ComputeDAG";
    for (const BufferRef& input : it->second->InputBuffers()) {
      visit(input->name);
    }
    visiting.erase(name);
    done.insert(name);
    sorted.push_back(it->second);
  };
  for (const std::string& name : order) {
    visit(name);
  }
  ops_ = std::move(sorted);

  for (size_t i = 0; i < ops_.size(); ++i) {
    op_index_[ops_[i]->name()] = static_cast<int>(i);
  }
  consumers_.assign(ops_.size(), {});
  for (size_t i = 0; i < ops_.size(); ++i) {
    for (const BufferRef& input : ops_[i]->InputBuffers()) {
      auto it = op_index_.find(input->name);
      CHECK(it != op_index_.end());
      consumers_[static_cast<size_t>(it->second)].push_back(static_cast<int>(i));
    }
  }
}

int ComputeDAG::OpIndexOf(const std::string& buffer_name) const {
  auto it = op_index_.find(buffer_name);
  return it == op_index_.end() ? -1 : it->second;
}

const std::vector<int>& ComputeDAG::ConsumersOf(int index) const {
  return consumers_[static_cast<size_t>(index)];
}

std::vector<int> ComputeDAG::InputIndices() const {
  std::vector<int> result;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i]->kind == OpKind::kPlaceholder) {
      result.push_back(static_cast<int>(i));
    }
  }
  return result;
}

std::vector<int> ComputeDAG::OutputIndices() const {
  std::vector<int> result;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i]->kind == OpKind::kCompute && consumers_[i].empty()) {
      result.push_back(static_cast<int>(i));
    }
  }
  return result;
}

double ComputeDAG::FlopCount() const {
  double total = 0.0;
  for (const OperationRef& op : ops_) {
    if (op->kind != OpKind::kCompute) {
      continue;
    }
    total += static_cast<double>(op->output->NumElements()) * BodyFlopCount(op->body);
  }
  return total;
}

std::unordered_map<std::string, std::vector<float>> ComputeDAG::Execute(
    const std::unordered_map<std::string, std::vector<float>>& inputs) const {
  std::unordered_map<std::string, std::vector<float>> storage;
  EvalContext ctx;
  for (const OperationRef& op : ops_) {
    const std::string& name = op->name();
    if (op->kind == OpKind::kPlaceholder) {
      auto it = inputs.find(name);
      CHECK(it != inputs.end()) << "missing input for placeholder " << name;
      CHECK_EQ(static_cast<int64_t>(it->second.size()), op->output->NumElements());
      storage[name] = it->second;
      ctx.buffers[name] = &storage[name];
      continue;
    }
    std::vector<float> out(static_cast<size_t>(op->output->NumElements()), 0.0f);
    const std::vector<int64_t>& shape = op->output->shape;
    std::vector<int64_t> point(shape.size(), 0);
    int64_t total = op->output->NumElements();
    for (int64_t flat = 0; flat < total; ++flat) {
      for (size_t d = 0; d < shape.size(); ++d) {
        ctx.vars[op->axis[d]->var_id] = point[d];
      }
      out[static_cast<size_t>(flat)] = static_cast<float>(EvaluateFloat(op->body, &ctx));
      // Row-major odometer increment.
      for (size_t d = shape.size(); d > 0; --d) {
        if (++point[d - 1] < shape[d - 1]) {
          break;
        }
        point[d - 1] = 0;
      }
    }
    for (size_t d = 0; d < shape.size(); ++d) {
      ctx.vars.erase(op->axis[d]->var_id);
    }
    storage[name] = std::move(out);
    ctx.buffers[name] = &storage[name];
  }
  return storage;
}

std::unordered_map<std::string, std::vector<float>> ComputeDAG::RandomInputs(
    uint64_t seed) const {
  std::unordered_map<std::string, std::vector<float>> inputs;
  Rng rng(seed);
  for (const OperationRef& op : ops_) {
    if (op->kind != OpKind::kPlaceholder) {
      continue;
    }
    std::vector<float> data(static_cast<size_t>(op->output->NumElements()));
    for (float& v : data) {
      v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    inputs[op->name()] = std::move(data);
  }
  return inputs;
}

uint64_t ComputeDAG::CanonicalHash() const {
  Canonicalizer canon;
  uint64_t h = 0xabcdef123456ULL;
  for (const OperationRef& op : ops_) {
    HashCombine(&h, static_cast<uint64_t>(op->kind));
    HashCombine(&h, static_cast<uint64_t>(canon.BufferId(op->name())));
    for (int64_t d : op->output->shape) {
      HashCombine(&h, static_cast<uint64_t>(d));
    }
    if (op->kind == OpKind::kCompute) {
      for (const Expr& axis : op->axis) {
        HashCombine(&h, static_cast<uint64_t>(canon.VarId(axis->var_id)));
      }
      canon.HashExpr(op->body, &h);
    }
  }
  return h;
}

std::string ComputeDAG::ToString() const {
  std::ostringstream os;
  for (const OperationRef& op : ops_) {
    if (op->kind == OpKind::kPlaceholder) {
      os << op->name() << " = placeholder([" << Join(op->output->shape, ", ") << "])\n";
    } else {
      os << op->name() << "[";
      for (size_t d = 0; d < op->axis.size(); ++d) {
        if (d > 0) {
          os << ", ";
        }
        os << op->axis[d]->var_name;
      }
      os << "] = " << ansor::ToString(op->body) << "\n";
    }
  }
  return os.str();
}

}  // namespace ansor
