// Ansor public API — the single header downstream users include.
//
// Quickstart:
//
//   #include "src/core/ansor.h"
//
//   ansor::ComputeDAG dag = ansor::MakeMatmul(512, 512, 512);
//   ansor::AnsorOptions options;                      // Intel CPU by default
//   ansor::AnsorResult r = ansor::AutoSchedule(dag, /*trials=*/200, options);
//   std::cout << r.best_program << "\n" << r.gflops << " GFLOPS\n";
//
// For whole networks use TuneNetworks, which runs the §6 gradient-descent
// task scheduler across all subgraph tasks.
#ifndef ANSOR_SRC_CORE_ANSOR_H_
#define ANSOR_SRC_CORE_ANSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/scheduler/task_scheduler.h"
#include "src/workloads/operators.h"
#include "src/workloads/suites.h"

namespace ansor {

enum class TargetKind { kIntelCpu, kArmCpu, kNvidiaGpu };

struct AnsorOptions {
  TargetKind target = TargetKind::kIntelCpu;
  int measures_per_round = 16;
  uint64_t seed = 42;
  // Measurement noise (0 = deterministic simulation).
  double measurement_noise = 0.0;
  SearchOptions search;
};

struct AnsorResult {
  bool ok = false;
  double seconds = 0.0;
  double gflops = 0.0;
  std::string best_program;  // pretty-printed lowered loop nest
  TuneResult raw;
};

MachineModel MachineFor(TargetKind target);
// Applies GPU-specific sampler settings when targeting a GPU.
void ConfigureForTarget(TargetKind target, SearchOptions* options);

// Tunes one computation definition for `num_measure_trials` trials and
// returns the best program found.
AnsorResult AutoSchedule(const ComputeDAG& dag, int num_measure_trials,
                         const AnsorOptions& options = AnsorOptions());

struct NetworkTuneResult {
  std::string name;
  double latency_seconds = 0.0;
  // Per-task best latencies, aligned with the NetworkTasks order.
  std::vector<double> task_seconds;
};

// Tunes a set of networks under a shared task scheduler (§6) with the given
// objective and a total budget of tuning rounds.
std::vector<NetworkTuneResult> TuneNetworks(const std::vector<NetworkTasks>& networks,
                                            int total_rounds, const Objective& objective,
                                            const AnsorOptions& options = AnsorOptions());

}  // namespace ansor

#endif  // ANSOR_SRC_CORE_ANSOR_H_
