#include "src/core/ansor.h"

#include <optional>

namespace ansor {

MachineModel MachineFor(TargetKind target) {
  switch (target) {
    case TargetKind::kIntelCpu:
      return MachineModel::IntelCpu20Core();
    case TargetKind::kArmCpu:
      return MachineModel::ArmCpu4Core();
    case TargetKind::kNvidiaGpu:
      return MachineModel::NvidiaGpu();
  }
  return MachineModel::IntelCpu20Core();
}

void ConfigureForTarget(TargetKind target, SearchOptions* options) {
  options->sampler.gpu = target == TargetKind::kNvidiaGpu;
}

AnsorResult AutoSchedule(const ComputeDAG& dag, int num_measure_trials,
                         const AnsorOptions& options) {
  MeasureOptions measure_options;
  measure_options.noise_stddev = options.measurement_noise;
  Measurer measurer(MachineFor(options.target), measure_options);
  GbdtCostModel model;

  SearchTask task = MakeSearchTask("task", dag);
  SearchOptions search = options.search;
  search.seed = options.seed;
  ConfigureForTarget(options.target, &search);
  // Task-lifetime compiled-program cache shared by the whole tuning run and
  // the final best-program printout (which is then a cache hit, not a
  // re-compile). Only constructed when the caller did not inject one.
  std::optional<ProgramCache> owned_cache;
  if (search.program_cache == nullptr) {
    owned_cache.emplace(search.program_cache_capacity);
    search.program_cache = &*owned_cache;
  }

  AnsorResult result;
  result.raw = TuneTask(task, &measurer, &model, num_measure_trials,
                        options.measures_per_round, search);
  if (!result.raw.best_state.has_value()) {
    return result;
  }
  ProgramArtifactPtr best = search.program_cache->GetOrBuild(*result.raw.best_state);
  if (!best->ok()) {
    // A best state was measured valid, so a failed re-lower indicates a bug;
    // report the diagnostic instead of pretty-printing a broken tree.
    result.best_program = "<lowering failed: " + best->lowered().error + ">";
    return result;
  }
  result.ok = true;
  result.seconds = result.raw.best_seconds;
  result.gflops = result.raw.best_throughput / 1e9;
  result.best_program = best->lowered().ToString();
  return result;
}

std::vector<NetworkTuneResult> TuneNetworks(const std::vector<NetworkTasks>& networks,
                                            int total_rounds, const Objective& objective,
                                            const AnsorOptions& options) {
  MeasureOptions measure_options;
  measure_options.noise_stddev = options.measurement_noise;
  Measurer measurer(MachineFor(options.target), measure_options);
  GbdtCostModel model;

  // Deduplicate identical subgraphs across networks by canonical hash
  // (paper §6: "A subgraph can also appear multiple times in a DNN or across
  // different DNNs").
  std::vector<SearchTask> tasks;
  std::vector<NetworkSpec> specs;
  std::unordered_map<uint64_t, int> task_index;
  for (const NetworkTasks& net : networks) {
    NetworkSpec spec;
    spec.name = net.name;
    for (const SearchTask& task : net.tasks) {
      uint64_t key = task.task_id();
      auto it = task_index.find(key);
      int idx;
      if (it == task_index.end()) {
        idx = static_cast<int>(tasks.size());
        task_index[key] = idx;
        tasks.push_back(task);
      } else {
        idx = it->second;
      }
      spec.task_indices.push_back(idx);
    }
    specs.push_back(std::move(spec));
  }

  TaskSchedulerOptions scheduler_options;
  scheduler_options.seed = options.seed;
  scheduler_options.measures_per_round = options.measures_per_round;
  scheduler_options.search = options.search;
  scheduler_options.search.seed = options.seed;
  ConfigureForTarget(options.target, &scheduler_options.search);

  TaskScheduler scheduler(tasks, specs, objective, &measurer, &model, scheduler_options);
  scheduler.Tune(total_rounds);

  std::vector<NetworkTuneResult> results;
  for (size_t j = 0; j < networks.size(); ++j) {
    NetworkTuneResult r;
    r.name = networks[j].name;
    r.latency_seconds = scheduler.NetworkLatency(static_cast<int>(j));
    for (int idx : specs[j].task_indices) {
      r.task_seconds.push_back(scheduler.tuners()[static_cast<size_t>(idx)]->best_seconds());
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace ansor
