#include "src/evolution/evolution.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/support/thread_pool.h"
#include "src/support/util.h"

namespace ansor {
namespace {

std::string StepSignature(const State& state) {
  std::string sig;
  for (const Step& step : state.steps()) {
    sig += step.ToString();
    sig += ";";
  }
  return sig;
}

State FailedState(const ComputeDAG* dag) {
  State s(dag);
  s.Split("__invalid__", 0, {1});  // poisons the state
  return s;
}

}  // namespace

EvolutionarySearch::EvolutionarySearch(const ComputeDAG* dag, CostModel* model, Rng rng,
                                       EvolutionOptions options)
    : dag_(dag), model_(model), rng_(rng), options_(options) {}

State EvolutionarySearch::ReplayWithSplitEdit(
    const std::vector<Step>& steps,
    const std::function<void(size_t, int64_t, std::vector<int64_t>*)>& edit) {
  State state(dag_);
  for (size_t idx = 0; idx < steps.size(); ++idx) {
    Step step = steps[idx];
    if (step.kind == StepKind::kSplit) {
      int stage_idx = state.StageIndex(step.stage);
      if (stage_idx < 0 || step.iter < 0 ||
          step.iter >= static_cast<int>(state.stage(stage_idx).iters.size())) {
        return FailedState(dag_);
      }
      int64_t extent = state.stage(stage_idx).iters[static_cast<size_t>(step.iter)].extent;
      edit(idx, extent, &step.lengths);
      if (!state.Split(step.stage, step.iter, step.lengths)) {
        return state;
      }
      continue;
    }
    switch (step.kind) {
      case StepKind::kFollowSplit:
        if (!state.FollowSplit(step.stage, step.iter, step.src_step, step.n_parts)) {
          return state;
        }
        break;
      case StepKind::kFuse:
        if (!state.Fuse(step.stage, step.iter, step.fuse_count)) return state;
        break;
      case StepKind::kReorder:
        if (!state.Reorder(step.stage, step.order)) return state;
        break;
      case StepKind::kComputeAt:
        if (!state.ComputeAt(step.stage, step.target_stage, step.target_iter)) return state;
        break;
      case StepKind::kComputeInline:
        if (!state.ComputeInline(step.stage)) return state;
        break;
      case StepKind::kComputeRoot:
        if (!state.ComputeRoot(step.stage)) return state;
        break;
      case StepKind::kCacheWrite:
        if (!state.CacheWrite(step.stage, nullptr)) return state;
        break;
      case StepKind::kRfactor:
        if (!state.Rfactor(step.stage, step.iter, nullptr)) return state;
        break;
      case StepKind::kAnnotation:
        if (!state.Annotate(step.stage, step.iter, step.annotation)) return state;
        break;
      case StepKind::kPragma:
        if (!state.Pragma(step.stage, step.pragma_value)) return state;
        break;
      case StepKind::kSplit:
        break;
    }
  }
  return state;
}

State EvolutionarySearch::MutateTileSize(const State& state) {
  // Pick a random split step with at least two levels, divide one level by a
  // random factor and multiply another level by it (paper: "keeps the product
  // of tile sizes equal to the original loop length").
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    const Step& s = state.steps()[i];
    if (s.kind == StepKind::kSplit && !s.lengths.empty()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return FailedState(dag_);
  }
  size_t target = candidates[rng_.Index(candidates.size())];

  return ReplayWithSplitEdit(state.steps(), [&](size_t idx, int64_t extent,
                                                std::vector<int64_t>* lengths) {
    if (idx != target) {
      return;
    }
    // Levels: 0 = implicit outer, 1..n = lengths.
    size_t n = lengths->size();
    int64_t prod = 1;
    for (int64_t l : *lengths) {
      prod *= l;
    }
    int64_t outer = extent / std::max<int64_t>(prod, 1);
    // Source level must have a factor > 1 to give away.
    std::vector<size_t> sources;
    if (outer > 1) {
      sources.push_back(0);
    }
    for (size_t j = 0; j < n; ++j) {
      if ((*lengths)[j] > 1) {
        sources.push_back(j + 1);
      }
    }
    if (sources.empty()) {
      return;
    }
    size_t src = sources[rng_.Index(sources.size())];
    size_t dst = rng_.Index(n + 1);
    if (dst == src) {
      dst = (dst + 1) % (n + 1);
    }
    int64_t src_value = src == 0 ? outer : (*lengths)[src - 1];
    std::vector<int64_t> divisors = Divisors(src_value);
    // Exclude 1 (no-op).
    if (divisors.size() <= 1) {
      return;
    }
    int64_t f = divisors[1 + rng_.Index(divisors.size() - 1)];
    if (src != 0) {
      (*lengths)[src - 1] /= f;
    }
    if (dst != 0) {
      (*lengths)[dst - 1] *= f;
    }
    // src == 0 or dst == 0: the implicit outer absorbs the change.
  });
}

State EvolutionarySearch::MutatePragma(const State& state) {
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    if (state.steps()[i].kind == StepKind::kPragma) {
      candidates.push_back(i);
    }
  }
  std::vector<Step> steps = state.steps();
  const auto& unroll_options = options_.sampler.unroll_options;
  if (candidates.empty() || unroll_options.empty()) {
    return FailedState(dag_);
  }
  size_t target = candidates[rng_.Index(candidates.size())];
  steps[target].pragma_value =
      unroll_options[rng_.Index(unroll_options.size())];
  return State::Replay(dag_, steps);
}

State EvolutionarySearch::MutateParallelGranularity(const State& state) {
  // Find a fuse step whose stage later receives a parallel annotation and
  // change its granularity by one level ("changes the granularity by either
  // fusing its adjacent loop levels or splitting it").
  std::vector<Step> steps = state.steps();
  std::unordered_set<std::string> parallel_stages;
  for (const Step& s : steps) {
    if (s.kind == StepKind::kAnnotation && s.annotation == IterAnnotation::kParallel) {
      parallel_stages.insert(s.stage);
    }
  }
  std::vector<size_t> candidates;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind == StepKind::kFuse && parallel_stages.count(steps[i].stage) > 0) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return FailedState(dag_);
  }
  size_t target = candidates[rng_.Index(candidates.size())];
  int delta = rng_.Bernoulli(0.5) ? 1 : -1;
  steps[target].fuse_count += delta;
  if (steps[target].fuse_count < 2) {
    return FailedState(dag_);
  }
  State next = State::Replay(dag_, steps);
  return next;
}

State EvolutionarySearch::MutateVectorize(const State& state) {
  std::vector<Step> steps = state.steps();
  std::vector<size_t> vec_steps;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind == StepKind::kAnnotation &&
        steps[i].annotation == IterAnnotation::kVectorize) {
      vec_steps.push_back(i);
    }
  }
  if (!vec_steps.empty() && rng_.Bernoulli(0.5)) {
    // Drop one vectorize annotation.
    steps.erase(steps.begin() + static_cast<long>(vec_steps[rng_.Index(vec_steps.size())]));
    return State::Replay(dag_, steps);
  }
  // Add a vectorize annotation to the innermost iterator of a random stage.
  std::vector<std::string> stages;
  for (const Stage& s : state.stages()) {
    if (s.loc.kind != ComputeLocKind::kInlined && !s.iters.empty() &&
        s.iters.back().annotation == IterAnnotation::kNone) {
      stages.push_back(s.name());
    }
  }
  if (stages.empty()) {
    return FailedState(dag_);
  }
  const std::string& stage = stages[rng_.Index(stages.size())];
  int idx = state.StageIndex(stage);
  steps.push_back(MakeAnnotationStep(
      stage, static_cast<int>(state.stage(idx).iters.size()) - 1, IterAnnotation::kVectorize));
  return State::Replay(dag_, steps);
}

State EvolutionarySearch::MutateComputeLocation(const State& state) {
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    if (state.steps()[i].kind == StepKind::kComputeAt) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return FailedState(dag_);
  }
  std::vector<Step> steps = state.steps();
  Step& step = steps[candidates[rng_.Index(candidates.size())]];
  int target_idx = state.StageIndex(step.target_stage);
  if (target_idx < 0) {
    return FailedState(dag_);
  }
  int n_iters = static_cast<int>(state.stage(target_idx).iters.size());
  if (n_iters == 0) {
    return FailedState(dag_);
  }
  step.target_iter = static_cast<int>(rng_.Int(0, n_iters - 1));
  return State::Replay(dag_, steps);
}

State EvolutionarySearch::Crossover(const State& a, const State& b) {
  // Node-based crossover: both parents must share the same sketch skeleton
  // (same (kind, stage) step sequence); the child adopts, per DAG node, the
  // step parameters of the parent whose node the cost model scores higher
  // (with randomized tie-breaking for exploration).
  const std::vector<Step>& sa = a.steps();
  const std::vector<Step>& sb = b.steps();
  if (sa.size() != sb.size()) {
    return FailedState(dag_);
  }
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].kind != sb[i].kind || sa[i].stage != sb[i].stage) {
      return FailedState(dag_);
    }
  }
  // Score each stage of both parents.
  auto stage_scores = [&](const State& s) {
    std::unordered_map<std::string, double> scores;
    LoweredProgram prog = Lower(s);
    if (!prog.ok) {
      return scores;
    }
    std::vector<std::string> row_stages;
    auto rows = ExtractFeatures(prog, &row_stages);
    auto preds = model_->PredictStatements(rows);
    for (size_t i = 0; i < preds.size(); ++i) {
      scores[row_stages[i]] += preds[i];
    }
    return scores;
  };
  auto score_a = stage_scores(a);
  auto score_b = stage_scores(b);

  std::unordered_map<std::string, bool> take_b;
  auto choose = [&](const std::string& stage) {
    auto it = take_b.find(stage);
    if (it != take_b.end()) {
      return it->second;
    }
    double va = score_a.count(stage) > 0 ? score_a[stage] : 0.0;
    double vb = score_b.count(stage) > 0 ? score_b[stage] : 0.0;
    // Prefer the higher-scoring parent, explore with probability 0.2.
    bool pick_b = vb > va;
    if (rng_.Bernoulli(0.2)) {
      pick_b = !pick_b;
    }
    take_b[stage] = pick_b;
    return pick_b;
  };

  std::vector<Step> child;
  child.reserve(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    child.push_back(choose(sa[i].stage) ? sb[i] : sa[i]);
  }
  // Replay verifies dependency consistency; invalid merges are discarded
  // ("Ansor further verifies the merged programs").
  return State::Replay(dag_, child);
}

State EvolutionarySearch::RandomMutation(const State& state) {
  switch (rng_.Int(0, 4)) {
    case 0:
      return MutateTileSize(state);
    case 1:
      return MutatePragma(state);
    case 2:
      return MutateParallelGranularity(state);
    case 3:
      return MutateVectorize(state);
    default:
      return MutateComputeLocation(state);
  }
}

std::vector<State> EvolutionarySearch::Evolve(const std::vector<State>& init, int num_out) {
  std::vector<State> population;
  for (const State& s : init) {
    if (!s.failed()) {
      population.push_back(s);
    }
  }
  if (population.empty()) {
    return {};
  }

  // Best-so-far heap across all generations, deduplicated.
  std::vector<std::pair<double, State>> best;
  std::unordered_set<std::string> best_sigs;

  for (int gen = 0; gen <= options_.generations; ++gen) {
    // Score the population with the learned model.
    std::vector<std::vector<std::vector<float>>> features(population.size());
    ThreadPool::Global().ParallelFor(population.size(), [&](size_t i) {
      features[i] = ExtractStateFeatures(population[i]);
    });
    std::vector<double> scores = model_->Predict(features);

    for (size_t i = 0; i < population.size(); ++i) {
      if (features[i].empty()) {
        continue;
      }
      std::string sig = StepSignature(population[i]);
      if (best_sigs.insert(sig).second) {
        best.emplace_back(scores[i], population[i]);
      }
    }
    std::sort(best.begin(), best.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    if (best.size() > static_cast<size_t>(2 * num_out)) {
      for (size_t i = static_cast<size_t>(2 * num_out); i < best.size(); ++i) {
        best_sigs.erase(StepSignature(best[i].second));
      }
      best.resize(static_cast<size_t>(2 * num_out));
    }
    if (gen == options_.generations) {
      break;
    }

    // Selection probabilities proportional to (shifted) fitness.
    double min_score = *std::min_element(scores.begin(), scores.end());
    std::vector<double> weights(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      weights[i] = scores[i] - min_score + 1e-3;
    }

    std::vector<State> next;
    next.reserve(static_cast<size_t>(options_.population));
    int attempts = 0;
    int max_attempts = options_.population * 8;
    while (static_cast<int>(next.size()) < options_.population &&
           attempts < max_attempts) {
      ++attempts;
      State child(dag_);
      if (rng_.Uniform() < options_.crossover_probability && population.size() >= 2) {
        size_t pa = rng_.WeightedIndex(weights);
        size_t pb = rng_.WeightedIndex(weights);
        child = Crossover(population[pa], population[pb]);
      } else {
        size_t p = rng_.WeightedIndex(weights);
        child = RandomMutation(population[p]);
      }
      if (!child.failed()) {
        next.push_back(std::move(child));
      }
    }
    if (next.empty()) {
      break;
    }
    population = std::move(next);
  }

  std::vector<State> out;
  for (const auto& [score, state] : best) {
    if (static_cast<int>(out.size()) >= num_out) {
      break;
    }
    out.push_back(state);
  }
  return out;
}

}  // namespace ansor
