#include "src/evolution/evolution.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>

#include "src/analysis/program_verifier.h"
#include "src/support/util.h"

namespace ansor {
namespace {

// Crossover requires the parents to share a sketch skeleton: the same
// (kind, stage) step sequence. Checked before scoring so incompatible pairs
// never cost a model call.
bool SkeletonsMatch(const State& a, const State& b) {
  const std::vector<Step>& sa = a.steps();
  const std::vector<Step>& sb = b.steps();
  if (sa.size() != sb.size()) {
    return false;
  }
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].kind != sb[i].kind || sa[i].stage != sb[i].stage) {
      return false;
    }
  }
  return true;
}

// Sums per-row statement predictions into per-stage scores. The bound over
// both sizes defends against a model returning the wrong row count.
void AccumulateStageScores(const std::vector<double>& preds,
                           const std::vector<std::string>& row_stages,
                           CrossoverScoreCache::StageScores* scores) {
  for (size_t r = 0; r < preds.size() && r < row_stages.size(); ++r) {
    (*scores)[row_stages[r]] += preds[r];
  }
}

}  // namespace

// --- CrossoverScoreCache ------------------------------------------------------

void AccumulateEvolutionStats(const EvolutionStats& delta, EvolutionStats* total) {
  total->child_attempts += delta.child_attempts;
  total->children_generated += delta.children_generated;
  total->statically_rejected += delta.statically_rejected;
  total->crossover_score_hits += delta.crossover_score_hits;
  total->crossover_score_misses += delta.crossover_score_misses;
  total->program_cache_hits += delta.program_cache_hits;
  total->program_cache_misses += delta.program_cache_misses;
  total->program_cache_evictions += delta.program_cache_evictions;
}

CrossoverScoreCache::CrossoverScoreCache(const std::vector<ProgramArtifactPtr>* artifacts,
                                         CostModel* model)
    : artifacts_(artifacts), model_(model) {
  resolved_.resize(artifacts_->size());
  status_.assign(artifacts_->size(), 0);
}

void CrossoverScoreCache::Request(size_t i) {
  CHECK_LT(i, status_.size());
  if (status_[i] != 0) {
    ++hits_;
    return;
  }
  // A memo installed by an earlier generation or tuning round counts as a
  // hit too, as long as the model has not retrained since.
  if (auto memo = (*artifacts_)[i]->stage_scores(model_->model_id(), model_->version())) {
    resolved_[i] = std::move(memo);
    status_[i] = 2;
    ++hits_;
    return;
  }
  ++misses_;
  status_[i] = 1;
  pending_.push_back(i);
}

void CrossoverScoreCache::Flush() {
  if (pending_.empty()) {
    return;
  }
  std::vector<const FeatureMatrix*> programs;
  programs.reserve(pending_.size());
  for (size_t i : pending_) {
    programs.push_back(&(*artifacts_)[i]->features());
  }
  std::vector<std::vector<double>> preds = model_->PredictStatementsBatch(programs);
  for (size_t p = 0; p < pending_.size(); ++p) {
    size_t i = pending_[p];
    auto scored = std::make_shared<ScoredStages>();
    scored->model_id = model_->model_id();
    scored->model_version = model_->version();
    AccumulateStageScores(preds[p], (*artifacts_)[i]->row_stages(), &scored->scores);
    (*artifacts_)[i]->set_stage_scores(scored);
    resolved_[i] = std::move(scored);
    status_[i] = 2;
  }
  pending_.clear();
}

const CrossoverScoreCache::StageScores& CrossoverScoreCache::Get(size_t i) const {
  CHECK_LT(i, status_.size());
  CHECK_EQ(status_[i], 2);
  return resolved_[i]->scores;
}

// --- EvolutionarySearch -------------------------------------------------------

EvolutionarySearch::EvolutionarySearch(const ComputeDAG* dag, CostModel* model, Rng rng,
                                       EvolutionOptions options)
    : dag_(dag), model_(model), rng_(rng), options_(options) {}

State EvolutionarySearch::Normalized(State state) const {
  if (!state.failed()) {
    return state;
  }
  return State::Failure(dag_, state.error().empty() ? "invalid edit" : state.error());
}

State EvolutionarySearch::ReplayWithSplitEdit(
    const std::vector<Step>& steps,
    const std::function<void(size_t, int64_t, std::vector<int64_t>*)>& edit) {
  State state(dag_);
  for (size_t idx = 0; idx < steps.size(); ++idx) {
    Step step = steps[idx];
    if (step.kind == StepKind::kSplit) {
      int stage_idx = state.StageIndex(step.stage);
      if (stage_idx < 0 || step.iter < 0 ||
          step.iter >= static_cast<int>(state.stage(stage_idx).iters.size())) {
        return State::Failure(dag_, "split edit targets a missing iterator");
      }
      int64_t extent = state.stage(stage_idx).iters[static_cast<size_t>(step.iter)].extent;
      edit(idx, extent, &step.lengths);
      if (!state.Split(step.stage, step.iter, step.lengths)) {
        return Normalized(std::move(state));
      }
      continue;
    }
    bool ok = true;
    switch (step.kind) {
      case StepKind::kFollowSplit:
        ok = state.FollowSplit(step.stage, step.iter, step.src_step, step.n_parts);
        break;
      case StepKind::kFuse:
        ok = state.Fuse(step.stage, step.iter, step.fuse_count);
        break;
      case StepKind::kReorder:
        ok = state.Reorder(step.stage, step.order);
        break;
      case StepKind::kComputeAt:
        ok = state.ComputeAt(step.stage, step.target_stage, step.target_iter);
        break;
      case StepKind::kComputeInline:
        ok = state.ComputeInline(step.stage);
        break;
      case StepKind::kComputeRoot:
        ok = state.ComputeRoot(step.stage);
        break;
      case StepKind::kCacheWrite:
        ok = state.CacheWrite(step.stage, nullptr);
        break;
      case StepKind::kRfactor:
        ok = state.Rfactor(step.stage, step.iter, nullptr);
        break;
      case StepKind::kAnnotation:
        ok = state.Annotate(step.stage, step.iter, step.annotation);
        break;
      case StepKind::kPragma:
        ok = state.Pragma(step.stage, step.pragma_value);
        break;
      case StepKind::kSplit:
        break;
    }
    if (!ok) {
      // Every State primitive sets failed() when it returns false (audited by
      // tests/ir); normalize so the partial replay can never leak.
      return Normalized(std::move(state));
    }
  }
  return state;
}

State EvolutionarySearch::MutateTileSize(const State& state) {
  return MutateTileSize(state, &rng_);
}

State EvolutionarySearch::MutateTileSize(const State& state, Rng* rng) {
  // Pick a random split step with at least two levels, divide one level by a
  // random factor and multiply another level by it (paper: "keeps the product
  // of tile sizes equal to the original loop length").
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    const Step& s = state.steps()[i];
    if (s.kind == StepKind::kSplit && !s.lengths.empty()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return State::Failure(dag_, "no split step to mutate");
  }
  size_t target = candidates[rng->Index(candidates.size())];

  return ReplayWithSplitEdit(state.steps(), [&](size_t idx, int64_t extent,
                                                std::vector<int64_t>* lengths) {
    if (idx != target) {
      return;
    }
    // Levels: 0 = implicit outer, 1..n = lengths.
    size_t n = lengths->size();
    int64_t prod = 1;
    for (int64_t l : *lengths) {
      prod *= l;
    }
    int64_t outer = extent / std::max<int64_t>(prod, 1);
    // Source level must have a factor > 1 to give away.
    std::vector<size_t> sources;
    if (outer > 1) {
      sources.push_back(0);
    }
    for (size_t j = 0; j < n; ++j) {
      if ((*lengths)[j] > 1) {
        sources.push_back(j + 1);
      }
    }
    if (sources.empty()) {
      return;
    }
    size_t src = sources[rng->Index(sources.size())];
    size_t dst = rng->Index(n + 1);
    if (dst == src) {
      dst = (dst + 1) % (n + 1);
    }
    int64_t src_value = src == 0 ? outer : (*lengths)[src - 1];
    std::vector<int64_t> divisors = Divisors(src_value);
    // Exclude 1 (no-op).
    if (divisors.size() <= 1) {
      return;
    }
    int64_t f = divisors[1 + rng->Index(divisors.size() - 1)];
    if (src != 0) {
      (*lengths)[src - 1] /= f;
    }
    if (dst != 0) {
      (*lengths)[dst - 1] *= f;
    }
    // src == 0 or dst == 0: the implicit outer absorbs the change.
  });
}

State EvolutionarySearch::MutatePragma(const State& state) {
  return MutatePragma(state, &rng_);
}

State EvolutionarySearch::MutatePragma(const State& state, Rng* rng) {
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    if (state.steps()[i].kind == StepKind::kPragma) {
      candidates.push_back(i);
    }
  }
  std::vector<Step> steps = state.steps();
  const auto& unroll_options = options_.sampler.unroll_options;
  if (candidates.empty() || unroll_options.empty()) {
    return State::Failure(dag_, "no pragma step to mutate");
  }
  size_t target = candidates[rng->Index(candidates.size())];
  steps[target].pragma_value = unroll_options[rng->Index(unroll_options.size())];
  return Normalized(State::Replay(dag_, steps));
}

State EvolutionarySearch::MutateParallelGranularity(const State& state) {
  return MutateParallelGranularity(state, &rng_);
}

State EvolutionarySearch::MutateParallelGranularity(const State& state, Rng* rng) {
  // Find a fuse step whose stage later receives a parallel annotation and
  // change its granularity by one level ("changes the granularity by either
  // fusing its adjacent loop levels or splitting it").
  std::vector<Step> steps = state.steps();
  std::unordered_set<std::string> parallel_stages;
  for (const Step& s : steps) {
    if (s.kind == StepKind::kAnnotation && s.annotation == IterAnnotation::kParallel) {
      parallel_stages.insert(s.stage);
    }
  }
  std::vector<size_t> candidates;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind == StepKind::kFuse && parallel_stages.count(steps[i].stage) > 0) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return State::Failure(dag_, "no parallel fuse step to mutate");
  }
  size_t target = candidates[rng->Index(candidates.size())];
  int delta = rng->Bernoulli(0.5) ? 1 : -1;
  steps[target].fuse_count += delta;
  if (steps[target].fuse_count < 2) {
    return State::Failure(dag_, "fuse count below minimum");
  }
  return Normalized(State::Replay(dag_, steps));
}

State EvolutionarySearch::MutateVectorize(const State& state) {
  return MutateVectorize(state, &rng_);
}

State EvolutionarySearch::MutateVectorize(const State& state, Rng* rng) {
  std::vector<Step> steps = state.steps();
  std::vector<size_t> vec_steps;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind == StepKind::kAnnotation &&
        steps[i].annotation == IterAnnotation::kVectorize) {
      vec_steps.push_back(i);
    }
  }
  if (!vec_steps.empty() && rng->Bernoulli(0.5)) {
    // Drop one vectorize annotation.
    steps.erase(steps.begin() + static_cast<long>(vec_steps[rng->Index(vec_steps.size())]));
    return Normalized(State::Replay(dag_, steps));
  }
  // Add a vectorize annotation to the innermost iterator of a random stage.
  std::vector<std::string> stages;
  for (const Stage& s : state.stages()) {
    if (s.loc.kind != ComputeLocKind::kInlined && !s.iters.empty() &&
        s.iters.back().annotation == IterAnnotation::kNone) {
      stages.push_back(s.name());
    }
  }
  if (stages.empty()) {
    return State::Failure(dag_, "no stage to vectorize");
  }
  const std::string& stage = stages[rng->Index(stages.size())];
  int idx = state.StageIndex(stage);
  steps.push_back(MakeAnnotationStep(
      stage, static_cast<int>(state.stage(idx).iters.size()) - 1, IterAnnotation::kVectorize));
  return Normalized(State::Replay(dag_, steps));
}

State EvolutionarySearch::MutateComputeLocation(const State& state) {
  return MutateComputeLocation(state, &rng_);
}

State EvolutionarySearch::MutateComputeLocation(const State& state, Rng* rng) {
  std::vector<size_t> candidates;
  for (size_t i = 0; i < state.steps().size(); ++i) {
    if (state.steps()[i].kind == StepKind::kComputeAt) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return State::Failure(dag_, "no compute_at step to mutate");
  }
  std::vector<Step> steps = state.steps();
  Step& step = steps[candidates[rng->Index(candidates.size())]];
  int target_idx = state.StageIndex(step.target_stage);
  if (target_idx < 0) {
    return State::Failure(dag_, "compute_at target missing");
  }
  int n_iters = static_cast<int>(state.stage(target_idx).iters.size());
  if (n_iters == 0) {
    return State::Failure(dag_, "compute_at target has no iterators");
  }
  step.target_iter = static_cast<int>(rng->Int(0, n_iters - 1));
  return Normalized(State::Replay(dag_, steps));
}

CrossoverScoreCache::StageScores EvolutionarySearch::ComputeStageScores(const State& s) {
  CrossoverScoreCache::StageScores scores;
  ProgramArtifactPtr artifact = options_.program_cache != nullptr
                                    ? options_.program_cache->GetOrBuild(s, options_.cache_client_id)
                                    : std::make_shared<const ProgramArtifact>(s);
  if (!artifact->ok()) {
    return scores;
  }
  // Honor and feed the same memo the hot path uses, so the public Crossover
  // also scores a parent at most once per cost-model version.
  if (auto memo = artifact->stage_scores(model_->model_id(), model_->version())) {
    return memo->scores;
  }
  AccumulateStageScores(model_->PredictStatements(artifact->features()),
                        artifact->row_stages(), &scores);
  auto scored = std::make_shared<ScoredStages>();
  scored->model_id = model_->model_id();
  scored->model_version = model_->version();
  scored->scores = scores;
  artifact->set_stage_scores(std::move(scored));
  return scores;
}

State EvolutionarySearch::Crossover(const State& a, const State& b) {
  if (!SkeletonsMatch(a, b)) {
    return State::Failure(dag_, "crossover skeleton mismatch");
  }
  auto score_a = ComputeStageScores(a);
  auto score_b = ComputeStageScores(b);
  return Crossover(a, b, score_a, score_b, &rng_);
}

State EvolutionarySearch::Crossover(const State& a, const State& b,
                                    const CrossoverScoreCache::StageScores& score_a,
                                    const CrossoverScoreCache::StageScores& score_b,
                                    Rng* rng) {
  // Node-based crossover: the child adopts, per DAG node, the step parameters
  // of the parent whose node the cost model scores higher (with randomized
  // tie-breaking for exploration). Precondition: SkeletonsMatch(a, b) — every
  // caller checks it before paying for parent scores.
  const std::vector<Step>& sa = a.steps();
  const std::vector<Step>& sb = b.steps();

  std::unordered_map<std::string, bool> take_b;
  auto choose = [&](const std::string& stage) {
    auto it = take_b.find(stage);
    if (it != take_b.end()) {
      return it->second;
    }
    auto ita = score_a.find(stage);
    auto itb = score_b.find(stage);
    double va = ita != score_a.end() ? ita->second : 0.0;
    double vb = itb != score_b.end() ? itb->second : 0.0;
    // Prefer the higher-scoring parent, explore with probability 0.2.
    bool pick_b = vb > va;
    if (rng->Bernoulli(0.2)) {
      pick_b = !pick_b;
    }
    take_b[stage] = pick_b;
    return pick_b;
  };

  std::vector<Step> child;
  child.reserve(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    child.push_back(choose(sa[i].stage) ? sb[i] : sa[i]);
  }
  // Replay verifies dependency consistency; invalid merges are discarded
  // ("Ansor further verifies the merged programs").
  return Normalized(State::Replay(dag_, child));
}

State EvolutionarySearch::RandomMutation(const State& state, Rng* rng) {
  switch (rng->Int(0, 4)) {
    case 0:
      return MutateTileSize(state, rng);
    case 1:
      return MutatePragma(state, rng);
    case 2:
      return MutateParallelGranularity(state, rng);
    case 3:
      return MutateVectorize(state, rng);
    default:
      return MutateComputeLocation(state, rng);
  }
}

std::vector<State> EvolutionarySearch::Evolve(const std::vector<State>& init, int num_out) {
  stats_ = EvolutionStats();
  const int verify_level = EffectiveVerifyLevel(options_.verify_level);
  ThreadPool& pool = ThreadPool::OrGlobal(options_.thread_pool);
  TraceSpan evo_span(options_.tracer, "evolution", "search");

  // Resolve the compiled-program cache: the search policy injects its
  // task-lifetime cache; standalone callers get a private per-call one so
  // each distinct program still compiles once.
  std::optional<ProgramCache> local_cache;
  ProgramCache* cache = options_.program_cache;
  if (cache == nullptr) {
    local_cache.emplace();
    cache = &*local_cache;
  }
  const ProgramCacheStats cache_before = cache->stats();

  std::vector<State> population;
  for (const State& s : init) {
    if (!s.failed()) {
      population.push_back(s);
    }
  }
  if (population.empty()) {
    return {};
  }

  // Best-so-far heap across all generations, deduplicated.
  std::vector<std::pair<double, State>> best;
  std::unordered_set<std::string> best_sigs;

  for (int gen = 0; gen <= options_.generations; ++gen) {
    TraceSpan gen_span(evo_span.enabled()
                           ? evo_span.child().WithGeneration(gen)
                           : Tracer(),
                       "generation", "search");
    Tracer gen_tracer = gen_span.child();
    const Tracer* gen_ptr = gen_span.enabled() ? &gen_tracer : nullptr;
    // Stage 1 (batched): resolve the whole population to ProgramArtifacts in
    // parallel — a cache hit serves the lowering + feature matrix compiled by
    // an earlier generation, round, or consumer — then score everything with
    // one batched model call over the borrowed feature matrices.
    const size_t pop = population.size();
    gen_span.Arg("count", static_cast<int64_t>(pop));
    std::vector<ProgramArtifactPtr> artifacts(pop);
    pool.ParallelFor(pop, [&](size_t i) {
      artifacts[i] = cache->GetOrBuild(population[i], options_.cache_client_id, gen_ptr);
    });
    std::vector<const FeatureMatrix*> feature_ptrs(pop);
    for (size_t i = 0; i < pop; ++i) {
      feature_ptrs[i] = &artifacts[i]->features();
    }
    std::vector<double> scores;
    {
      TraceSpan predict(gen_ptr, "model_predict", "costmodel");
      scores = model_->PredictBatch(feature_ptrs);
      predict.Arg("count", static_cast<int64_t>(pop));
    }

    // Admissibility: the state lowered (non-empty features) and, when static
    // verification is on, the verifier proved it legal. Rejected members can
    // never be selected as parents or returned, so they drop out of the next
    // population; the reports come stamped on the cached artifacts, so each
    // distinct program is verified once per task.
    std::vector<char> admissible(pop, 0);
    for (size_t i = 0; i < pop; ++i) {
      bool ok = !artifacts[i]->features().empty();
      if (verify_level >= 1 && !artifacts[i]->statically_legal()) {
        ok = false;
        ++stats_.statically_rejected;
      }
      admissible[i] = ok ? 1 : 0;
    }

    for (size_t i = 0; i < pop; ++i) {
      if (!admissible[i]) {
        continue;
      }
      if (best_sigs.insert(artifacts[i]->signature()).second) {
        best.emplace_back(scores[i], population[i]);
      }
    }
    std::sort(best.begin(), best.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    if (best.size() > static_cast<size_t>(2 * num_out)) {
      for (size_t i = static_cast<size_t>(2 * num_out); i < best.size(); ++i) {
        best_sigs.erase(StepSignature(best[i].second));
      }
      best.resize(static_cast<size_t>(2 * num_out));
    }
    if (gen == options_.generations) {
      break;
    }

    // Selection weights proportional to (shifted) fitness. Inadmissible
    // states (failed lowering / feature extraction, or statically illegal)
    // get zero weight: they can never be picked as parents.
    size_t n_valid = 0;
    double min_score = 0.0;
    for (size_t i = 0; i < pop; ++i) {
      if (!admissible[i]) {
        continue;
      }
      min_score = n_valid == 0 ? scores[i] : std::min(min_score, scores[i]);
      ++n_valid;
    }
    if (n_valid == 0) {
      break;
    }
    std::vector<double> weights(pop, 0.0);
    for (size_t i = 0; i < pop; ++i) {
      if (admissible[i]) {
        weights[i] = scores[i] - min_score + 1e-3;
      }
    }

    // Stage 2 (parallel waves): generate children on the pool. Slots are
    // planned serially — each forks its own RNG stream and draws its
    // operator and parents — so the result is independent of thread count;
    // workers then run the replay-heavy operators concurrently.
    CrossoverScoreCache score_cache(&artifacts, model_);
    struct Slot {
      Rng rng{0};
      bool crossover = false;
      bool dead = false;  // skeleton mismatch: fails without dispatching
      size_t pa = 0;
      size_t pb = 0;
    };
    std::vector<State> next;
    next.reserve(static_cast<size_t>(options_.population));
    int attempts = 0;
    int max_attempts = options_.population * 8;
    while (static_cast<int>(next.size()) < options_.population &&
           attempts < max_attempts) {
      size_t wave =
          std::min<size_t>(static_cast<size_t>(options_.population) - next.size(),
                           static_cast<size_t>(max_attempts - attempts));
      std::vector<Slot> slots(wave);
      for (Slot& slot : slots) {
        slot.rng = rng_.Fork();
        slot.crossover =
            slot.rng.Uniform() < options_.crossover_probability && n_valid >= 2;
        slot.pa = slot.rng.WeightedIndex(weights);
        if (slot.crossover) {
          slot.pb = slot.rng.WeightedIndex(weights);
          slot.dead = !SkeletonsMatch(population[slot.pa], population[slot.pb]);
          if (!slot.dead) {
            score_cache.Request(slot.pa);
            score_cache.Request(slot.pb);
          }
        }
      }
      {
        TraceSpan flush(gen_ptr, "model_predict", "costmodel");
        score_cache.Flush();
      }
      std::vector<State> children(wave, State());
      // Invariant mode: every accepted child is verified at construction
      // site, in the wave that produced it. A lowerable-but-illegal child
      // means a schedule primitive or operator built a broken state — worth a
      // diagnostic — while a lowering failure is a routine discard.
      std::vector<char> wave_rejected(wave, 0);
      std::vector<std::string> wave_diag(wave);
      pool.ParallelFor(wave, [&](size_t s) {
        Slot& slot = slots[s];
        if (slot.dead) {
          children[s] = State::Failure(dag_, "crossover skeleton mismatch");
        } else if (slot.crossover) {
          children[s] = Crossover(population[slot.pa], population[slot.pb],
                                  score_cache.Get(slot.pa), score_cache.Get(slot.pb),
                                  &slot.rng);
        } else {
          children[s] = RandomMutation(population[slot.pa], &slot.rng);
        }
        if (verify_level >= 2 && !children[s].failed()) {
          ProgramArtifactPtr artifact =
              cache->GetOrBuild(children[s], options_.cache_client_id, gen_ptr);
          if (!artifact->statically_legal()) {
            wave_rejected[s] = 1;
            if (artifact->ok()) {
              wave_diag[s] = artifact->verifier_report().ToString();
            }
          }
        }
      });
      for (size_t s = 0; s < wave; ++s) {
        ++attempts;
        ++stats_.child_attempts;
        if (wave_rejected[s]) {
          ++stats_.statically_rejected;
          if (!wave_diag[s].empty()) {
            LOG(WARNING) << "ANSOR_CHECK_INVARIANTS: discarding illegal child at construction "
                            "site:\n"
                         << wave_diag[s];
          }
          continue;
        }
        if (!children[s].failed() &&
            static_cast<int>(next.size()) < options_.population) {
          next.push_back(std::move(children[s]));
          ++stats_.children_generated;
        }
      }
    }
    stats_.crossover_score_hits += score_cache.hits();
    stats_.crossover_score_misses += score_cache.misses();
    if (next.empty()) {
      break;
    }
    population = std::move(next);
  }

  const ProgramCacheStats cache_after = cache->stats();
  stats_.program_cache_hits = cache_after.hits - cache_before.hits;
  stats_.program_cache_misses = cache_after.misses - cache_before.misses;
  stats_.program_cache_evictions = cache_after.evictions - cache_before.evictions;

  std::vector<State> out;
  for (const auto& [score, state] : best) {
    if (static_cast<int>(out.size()) >= num_out) {
      break;
    }
    out.push_back(state);
  }
  return out;
}

}  // namespace ansor
