// Evolutionary search with a learned cost model (paper §5.1).
//
// "The evolution starts from the sampled initial generation ... the
// probability of selecting a program is proportional to its fitness predicted
// by the learned cost model ... for the selected programs, we randomly apply
// one of the evolution operations."
//
// Operators implemented (all on the rewriting-step "genes", replayed and
// verified after editing):
//   * tile size mutation      — moves a factor between tile levels, keeping
//                               the product equal (always valid);
//   * parallel granularity    — changes the fuse count feeding a parallel
//     mutation                  annotation;
//   * pragma mutation         — changes auto_unroll_max_step;
//   * vectorize mutation      — toggles the innermost vectorize annotation;
//   * computation location    — moves a fused producer to another loop level;
//   * node-based crossover    — per-DAG-node adoption of step parameters from
//                               the parent whose node scores higher.
#ifndef ANSOR_SRC_EVOLUTION_EVOLUTION_H_
#define ANSOR_SRC_EVOLUTION_EVOLUTION_H_

#include <vector>

#include "src/costmodel/cost_model.h"
#include "src/ir/state.h"
#include "src/sampler/annotation.h"

namespace ansor {

struct EvolutionOptions {
  int population = 128;
  int generations = 4;
  double crossover_probability = 0.25;  // otherwise mutate
  SamplerOptions sampler;
};

class EvolutionarySearch {
 public:
  EvolutionarySearch(const ComputeDAG* dag, CostModel* model, Rng rng,
                     EvolutionOptions options = EvolutionOptions());

  // Runs evolution from the initial population; returns up to `num_out`
  // distinct best states by predicted fitness.
  std::vector<State> Evolve(const std::vector<State>& init, int num_out);

  // Individual operators, exposed for tests. All return a failed state on an
  // invalid edit (callers discard).
  State MutateTileSize(const State& state);
  State MutatePragma(const State& state);
  State MutateParallelGranularity(const State& state);
  State MutateVectorize(const State& state);
  State MutateComputeLocation(const State& state);
  State Crossover(const State& a, const State& b);

 private:
  State RandomMutation(const State& state);
  // Replays `steps` with SplitStep lengths rewritten by `edit(step_index,
  // extent, lengths*)`; other steps replay verbatim.
  State ReplayWithSplitEdit(
      const std::vector<Step>& steps,
      const std::function<void(size_t, int64_t, std::vector<int64_t>*)>& edit);

  const ComputeDAG* dag_;
  CostModel* model_;
  Rng rng_;
  EvolutionOptions options_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_EVOLUTION_EVOLUTION_H_
