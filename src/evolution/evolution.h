// Evolutionary search with a learned cost model (paper §5.1).
//
// "The evolution starts from the sampled initial generation ... the
// probability of selecting a program is proportional to its fitness predicted
// by the learned cost model ... for the selected programs, we randomly apply
// one of the evolution operations."
//
// Operators implemented (all on the rewriting-step "genes", replayed and
// verified after editing):
//   * tile size mutation      — moves a factor between tile levels, keeping
//                               the product equal (always valid);
//   * parallel granularity    — changes the fuse count feeding a parallel
//     mutation                  annotation;
//   * pragma mutation         — changes auto_unroll_max_step;
//   * vectorize mutation      — toggles the innermost vectorize annotation;
//   * computation location    — moves a fused producer to another loop level;
//   * node-based crossover    — per-DAG-node adoption of step parameters from
//                               the parent whose node scores higher.
//
// The per-generation hot path is a parallel, batched pipeline over the
// content-addressed ProgramArtifact layer (src/program):
//   1. the whole population is resolved to ProgramArtifacts in parallel
//      (lowered + feature-extracted once per distinct program, served from
//      the task-lifetime ProgramCache thereafter) and scored with one
//      batched CostModel::PredictBatch call;
//   2. child generation runs on a thread pool in waves, each slot drawing
//      from its own deterministically forked RNG stream, so results are
//      bit-identical across thread counts for a fixed seed;
//   3. crossover reads per-stage parent scores from CrossoverScoreCache,
//      whose storage is the artifacts themselves: a parent is
//      PredictStatements-scored at most once per cost-model version, and the
//      memo survives across generations and tuning rounds for as long as the
//      artifact stays cached.
#ifndef ANSOR_SRC_EVOLUTION_EVOLUTION_H_
#define ANSOR_SRC_EVOLUTION_EVOLUTION_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/costmodel/cost_model.h"
#include "src/ir/state.h"
#include "src/program/program_cache.h"
#include "src/sampler/annotation.h"
#include "src/support/thread_pool.h"
#include "src/telemetry/trace.h"

namespace ansor {

struct EvolutionOptions {
  int population = 128;
  int generations = 4;
  double crossover_probability = 0.25;  // otherwise mutate
  SamplerOptions sampler;
  // Pool running per-generation scoring and child generation. nullptr means
  // ThreadPool::Global(). Injectable so tests can prove that search results
  // are invariant to the thread count (pool size 1 vs N).
  ThreadPool* thread_pool = nullptr;
  // Compiled-program cache serving lowering/features/stage-scores. nullptr
  // means Evolve uses a private per-call cache; the search policy injects
  // its task-lifetime cache here so artifacts (and their crossover score
  // memos) survive across generations and tuning rounds. Results are
  // bit-identical for any cache and any capacity, including 0 = disabled.
  ProgramCache* program_cache = nullptr;
  // Consumer id tagged onto every program_cache lookup so a cache shared
  // across tasks can attribute cross-task reuse (ProgramCache::GetOrBuild).
  // 0 = anonymous. Counters only; results are identical for any id.
  uint64_t cache_client_id = 0;
  // Static verification level (see src/analysis/program_verifier.h):
  //   0 — off: only the legacy lowerability test (empty features) filters;
  //   1 — population members whose artifact fails the static verifier are
  //       rejected before they can be selected as parents or returned;
  //   2 — invariant mode: every accepted mutation/crossover child is
  //       additionally verified at construction site, so a primitive that
  //       builds an illegal state is caught in the generation that ran it.
  // The ANSOR_CHECK_INVARIANTS environment variable raises the effective
  // level to 2. For corpora containing no lowerable-but-illegal program,
  // levels 0 and 1 produce bit-identical results.
  int verify_level = 1;
  // Telemetry handle: when enabled, Evolve records an "evolution" span with
  // one "generation" child per generation plus "model_predict" and
  // "artifact_build" descendants. Disabled (the default) costs one branch
  // per would-be span; results are bit-identical either way — tracing only
  // reads clocks.
  Tracer tracer;
};

// Counters for the child-generation hot path, reset by each Evolve() call.
struct EvolutionStats {
  int64_t child_attempts = 0;      // mutation/crossover slots executed
  int64_t children_generated = 0;  // valid offspring admitted to a population
  // Candidates rejected by the static program verifier (failed lowering,
  // bounds/domain/ordering violations, resource limits) before any
  // measurement: population members zero-weighted during scoring and, in
  // invariant mode, children discarded at construction site.
  int64_t statically_rejected = 0;
  // Crossover parent stage-score lookups served from a memo (same wave, an
  // earlier generation, or an earlier round at the same model version) vs
  // computed fresh (bounded by one scoring per population member per
  // generation; the serial code recomputed both parents every call).
  int64_t crossover_score_hits = 0;
  int64_t crossover_score_misses = 0;
  // ProgramCache activity observed during the Evolve() call (counter deltas;
  // approximate if the injected cache is shared with concurrent users).
  int64_t program_cache_hits = 0;
  int64_t program_cache_misses = 0;
  int64_t program_cache_evictions = 0;

  double CacheHitRate() const {
    int64_t total = crossover_score_hits + crossover_score_misses;
    return total == 0 ? 0.0 : static_cast<double>(crossover_score_hits) /
                                  static_cast<double>(total);
  }
  double ProgramCacheHitRate() const {
    int64_t total = program_cache_hits + program_cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(program_cache_hits) /
                                  static_cast<double>(total);
  }
};

// Adds `delta`'s counters into `total`: stats() resets per Evolve() call, so
// round-spanning consumers (TaskTuner, the metrics registry) accumulate.
void AccumulateEvolutionStats(const EvolutionStats& delta, EvolutionStats* total);

// Per-stage cost-model scores for crossover parents, stored on the parents'
// ProgramArtifacts: a score memo is stamped with the cost-model version it
// was computed under and lives as long as the artifact stays in the task's
// ProgramCache, so parents reappearing in a later generation or tuning round
// are not re-scored until the model retrains. `artifacts` holds the
// population's resolved artifacts (borrowed; must outlive the cache). Misses
// are queued by Request() and computed by Flush() in one batched model call;
// after Flush(), Get() is lock-free and safe from worker threads.
class CrossoverScoreCache {
 public:
  using StageScores = std::unordered_map<std::string, double>;

  CrossoverScoreCache(const std::vector<ProgramArtifactPtr>* artifacts, CostModel* model);

  // Declares that member `i` is needed as a crossover parent: counts a cache
  // hit when its scores are already memoized or queued, a miss otherwise.
  void Request(size_t i);
  // Scores all queued misses with one CostModel::PredictStatementsBatch call
  // and installs the memos on the artifacts.
  void Flush();
  // Scores for member `i`; Request+Flush must have covered it. Read-only.
  const StageScores& Get(size_t i) const;

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  const std::vector<ProgramArtifactPtr>* artifacts_;
  CostModel* model_;
  // Resolved memo per member (null until Request/Flush covered it).
  std::vector<std::shared_ptr<const ScoredStages>> resolved_;
  // 0 = absent, 1 = queued for the next Flush, 2 = resolved.
  std::vector<uint8_t> status_;
  std::vector<size_t> pending_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

class EvolutionarySearch {
 public:
  EvolutionarySearch(const ComputeDAG* dag, CostModel* model, Rng rng,
                     EvolutionOptions options = EvolutionOptions());

  // Runs evolution from the initial population; returns up to `num_out`
  // distinct best states by predicted fitness.
  std::vector<State> Evolve(const std::vector<State>& init, int num_out);

  // Hot-path counters of the most recent Evolve() call.
  const EvolutionStats& stats() const { return stats_; }

  // Individual operators, exposed for tests. All draw from the search's own
  // RNG and return the canonical State::Failure on an invalid edit (callers
  // discard); a partially-replayed state is never returned.
  State MutateTileSize(const State& state);
  State MutatePragma(const State& state);
  State MutateParallelGranularity(const State& state);
  State MutateVectorize(const State& state);
  State MutateComputeLocation(const State& state);
  State Crossover(const State& a, const State& b);

  // Replays `steps` with SplitStep lengths rewritten by `edit(step_index,
  // extent, lengths*)`; other steps replay verbatim. Exposed for tests: a
  // mid-replay failure must normalize to State::Failure (empty step history).
  State ReplayWithSplitEdit(
      const std::vector<Step>& steps,
      const std::function<void(size_t, int64_t, std::vector<int64_t>*)>& edit);

 private:
  // Operator implementations drawing from an explicit per-slot RNG stream so
  // child generation parallelizes deterministically.
  State MutateTileSize(const State& state, Rng* rng);
  State MutatePragma(const State& state, Rng* rng);
  State MutateParallelGranularity(const State& state, Rng* rng);
  State MutateVectorize(const State& state, Rng* rng);
  State MutateComputeLocation(const State& state, Rng* rng);
  State RandomMutation(const State& state, Rng* rng);
  // Crossover with both parents' per-stage scores supplied by the caller
  // (from the per-generation cache on the hot path).
  State Crossover(const State& a, const State& b,
                  const CrossoverScoreCache::StageScores& score_a,
                  const CrossoverScoreCache::StageScores& score_b, Rng* rng);
  // Lowers + feature-extracts + scores one state from scratch (used by the
  // public Crossover; the hot path reads the cache instead).
  CrossoverScoreCache::StageScores ComputeStageScores(const State& state);
  // Normalizes any failed state to the canonical State::Failure.
  State Normalized(State state) const;

  const ComputeDAG* dag_;
  CostModel* model_;
  Rng rng_;
  EvolutionOptions options_;
  EvolutionStats stats_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_EVOLUTION_EVOLUTION_H_
