// Persisted program-artifact snapshots: the warm-start half of the store
// layer.
//
// A tuning run's ProgramCache holds everything expensive the run derived —
// lowered programs' feature matrices, legality flags, per-machine resource
// verdicts — keyed by (task, step signature). An ArtifactStore captures that
// cache into serializable ArtifactSnapshots and restores it later, so a
// resumed (or fleet warm-started) run rebuilds nothing it has already seen:
// WarmCache installs lazy artifacts (src/program/program_artifact.h) that
// serve population scoring and static filtering straight from the snapshot
// and only re-lower on genuine demand.
//
// Snapshots are also the feature source for the transfer-learned cost model:
// TrainFromStore joins TuningRecords against Find(task_id, signature) to
// recover each measured program's feature matrix without re-lowering it.
//
// The on-disk container mirrors the record store's: an interned string
// table, length-prefixed snapshot bodies (a corrupted snapshot is skipped
// and counted, never crashes the loader), and a fixed magic for detection.
#ifndef ANSOR_SRC_STORE_ARTIFACT_STORE_H_
#define ANSOR_SRC_STORE_ARTIFACT_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/features/feature_matrix.h"
#include "src/ir/steps.h"

namespace ansor {

class ComputeDAG;
class ProgramCache;

// Everything a warm ProgramArtifact restore needs, plus the cache tag it was
// captured from (so a multi-tag service warms each shared cache with its own
// tag's artifacts).
struct ArtifactSnapshot {
  uint64_t task_id = 0;  // producing DAG's canonical hash
  std::string tag;       // owning cache's tag ("" = untagged / single tuner)
  std::vector<Step> steps;
  bool lowering_ok = false;
  bool structurally_legal = false;
  FeatureMatrix features;  // empty when lowering_ok is false
  // (machine fingerprint, passed) summaries of memoized resource verdicts.
  std::vector<std::pair<uint64_t, bool>> resource_verdicts;
};

// Result of loading a serialized artifact store. `ok` means the container
// was recognized and its tables decoded; `skipped` counts individually
// corrupted snapshot bodies that were dropped.
struct ArtifactLoadStats {
  bool ok = false;
  size_t loaded = 0;
  size_t skipped = 0;

  explicit operator bool() const { return ok; }
};

struct ArtifactStoreStats {
  int64_t added = 0;         // snapshots accepted as new (task, signature) keys
  int64_t deduplicated = 0;  // snapshots dropped as duplicates
};

class ArtifactStore {
 public:
  ArtifactStore() = default;

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  // Adds a snapshot (thread-safe), deduplicating by (task_id, step
  // signature) — the same content address the ProgramCache uses. Returns
  // true when stored; a duplicate is dropped (first capture wins; artifacts
  // are pure functions of the key, so duplicates carry nothing new).
  bool Add(ArtifactSnapshot snapshot);

  size_t size() const;
  ArtifactStoreStats stats() const;

  // Borrowed view, insertion-ordered: stable only while no concurrent Add
  // runs (the load-once-then-read warm-start pattern).
  const std::vector<ArtifactSnapshot>& snapshots() const { return snapshots_; }

  // The snapshot for (task_id, signature), or nullptr. Borrowed, same
  // stability contract as snapshots(). This is TrainFromStore's feature
  // join.
  const ArtifactSnapshot* Find(uint64_t task_id, const std::string& signature) const;

  // Captures every artifact resident in `cache` as a snapshot tagged `tag`
  // (duplicates against already-stored snapshots are deduplicated). Returns
  // the number of snapshots newly added.
  size_t CaptureCache(const ProgramCache& cache, const std::string& tag = "");

  // Installs a warm (lazy) ProgramArtifact into `cache` for every stored
  // snapshot whose task_id matches dag->CanonicalHash(). The artifacts serve
  // features and legality immediately and re-lower only on demand, so a
  // search that only re-encounters snapshot programs reports zero cache
  // misses. Returns the number of artifacts inserted (collisions with
  // already-resident entries are skipped).
  size_t WarmCache(ProgramCache* cache, std::shared_ptr<const ComputeDAG> dag) const;

  // --- Persistence -----------------------------------------------------------

  std::string Serialize() const;
  // Parses `bytes` and Adds every well-formed snapshot under dedup.
  ArtifactLoadStats Deserialize(const std::string& bytes);
  bool SaveToFile(const std::string& path) const;
  ArtifactLoadStats LoadFromFile(const std::string& path);

 private:
  bool AddLocked(ArtifactSnapshot snapshot);

  mutable std::mutex mu_;
  std::vector<ArtifactSnapshot> snapshots_;
  // "<task id>|<StepSignature>" -> slot in snapshots_.
  std::unordered_map<std::string, size_t> by_key_;
  ArtifactStoreStats stats_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_STORE_ARTIFACT_STORE_H_
