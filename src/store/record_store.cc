#include "src/store/record_store.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/store/serde.h"
#include "src/support/logging.h"
#include "src/support/util.h"

namespace ansor {
namespace {

// Container framing: an 8-byte leading magic identifies the binary codec
// (anything else is treated as the legacy text format), and a fixed 16-byte
// tail (index offset + tail magic) locates the footer index.
constexpr char kRecordMagic[8] = {'A', 'N', 'S', 'R', 'R', 'E', 'C', '1'};
constexpr char kIndexMagic[8] = {'A', 'N', 'S', 'R', 'I', 'D', 'X', '1'};
constexpr size_t kMagicSize = sizeof(kRecordMagic);
constexpr size_t kTailSize = 16;  // u64 index offset + 8-byte index magic
constexpr uint8_t kFlagHasThroughput = 1;
constexpr uint64_t kMaxReasonableCount = 1u << 28;

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kSplit: return "SP";
    case StepKind::kFollowSplit: return "FSP";
    case StepKind::kFuse: return "FU";
    case StepKind::kReorder: return "RE";
    case StepKind::kComputeAt: return "CA";
    case StepKind::kComputeInline: return "CI";
    case StepKind::kComputeRoot: return "CR";
    case StepKind::kCacheWrite: return "CW";
    case StepKind::kRfactor: return "RF";
    case StepKind::kAnnotation: return "AN";
    case StepKind::kPragma: return "PR";
  }
  return "??";
}

std::optional<StepKind> StepKindFromName(const std::string& name) {
  if (name == "SP") return StepKind::kSplit;
  if (name == "FSP") return StepKind::kFollowSplit;
  if (name == "FU") return StepKind::kFuse;
  if (name == "RE") return StepKind::kReorder;
  if (name == "CA") return StepKind::kComputeAt;
  if (name == "CI") return StepKind::kComputeInline;
  if (name == "CR") return StepKind::kComputeRoot;
  if (name == "CW") return StepKind::kCacheWrite;
  if (name == "RF") return StepKind::kRfactor;
  if (name == "AN") return StepKind::kAnnotation;
  if (name == "PR") return StepKind::kPragma;
  return std::nullopt;
}

std::vector<std::string> SplitString(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

bool HasBinaryMagic(const std::string& bytes) {
  return bytes.size() >= kMagicSize &&
         bytes.compare(0, kMagicSize, kRecordMagic, kMagicSize) == 0;
}

std::string DedupKey(const TuningRecord& record) {
  return std::to_string(record.task_id) + '|' + StepSignature(record.steps);
}

// --- Binary container encode -------------------------------------------------

std::string EncodeBinary(const std::vector<TuningRecord>& records) {
  // Interning passes. The step table dedups whole steps (a tuning log's
  // records share sketch skeletons, so distinct steps number far below total
  // steps); its encoded body is built first so the string table is complete
  // before it is written.
  StringTable strings;
  std::vector<uint64_t> tasks;
  std::unordered_map<uint64_t, uint64_t> task_refs;
  std::unordered_map<std::string, uint64_t> step_refs;
  uint64_t num_steps = 0;
  ByteWriter step_table;
  std::vector<std::vector<uint64_t>> record_step_refs(records.size());
  std::vector<uint64_t> record_task_refs(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const TuningRecord& r = records[i];
    auto [task_it, task_new] = task_refs.emplace(r.task_id, tasks.size());
    if (task_new) {
      tasks.push_back(r.task_id);
    }
    record_task_refs[i] = task_it->second;
    record_step_refs[i].reserve(r.steps.size());
    for (const Step& step : r.steps) {
      // Text form as the dedup key: unique per distinct step by construction.
      auto [it, inserted] = step_refs.emplace(SerializeStep(step), num_steps);
      if (inserted) {
        EncodeStep(step, &strings, &step_table);
        ++num_steps;
      }
      record_step_refs[i].push_back(it->second);
    }
  }

  ByteWriter w;
  w.PutRaw(kRecordMagic, kMagicSize);
  strings.Encode(&w);
  w.PutVarint(num_steps);
  w.PutRaw(step_table.buffer().data(), step_table.size());
  w.PutVarint(tasks.size());
  for (uint64_t task : tasks) {
    w.PutU64(task);
  }
  w.PutVarint(records.size());
  std::vector<uint64_t> offsets;
  offsets.reserve(records.size());
  ByteWriter body;
  for (size_t i = 0; i < records.size(); ++i) {
    const TuningRecord& r = records[i];
    offsets.push_back(w.size());
    body = ByteWriter();
    uint8_t flags = r.throughput > 0.0 ? kFlagHasThroughput : 0;
    body.PutU8(flags);
    body.PutVarint(record_task_refs[i]);
    body.PutF64(r.seconds);
    if (flags & kFlagHasThroughput) {
      body.PutF64(r.throughput);
    }
    body.PutVarint(r.steps.size());
    for (uint64_t ref : record_step_refs[i]) {
      body.PutVarint(ref);
    }
    w.PutVarint(body.size());
    w.PutRaw(body.buffer().data(), body.size());
  }

  // Footer index: record offsets (delta varints) + a checksum over
  // everything before the index, then the fixed tail locating it.
  uint64_t index_offset = w.size();
  uint64_t checksum = Fnv1a64(w.buffer().data(), w.size());
  w.PutVarint(offsets.size());
  uint64_t prev = 0;
  for (uint64_t off : offsets) {
    w.PutVarint(off - prev);
    prev = off;
  }
  w.PutU64(checksum);
  w.PutU64(index_offset);
  w.PutRaw(kIndexMagic, sizeof(kIndexMagic));
  return w.Take();
}

// --- Binary container decode -------------------------------------------------

// Validates the footer index: present, in bounds, and its checksum matches
// the payload. The offsets themselves are not needed for a sequential load;
// a valid checksum certifies every record body, so decode cannot hit a
// malformed record afterwards.
bool ValidateIndex(const std::string& bytes) {
  if (bytes.size() < kMagicSize + kTailSize) {
    return false;
  }
  size_t tail_at = bytes.size() - kTailSize;
  if (bytes.compare(tail_at + 8, 8, kIndexMagic, 8) != 0) {
    return false;
  }
  ByteReader tail(bytes.data() + tail_at, 8);
  uint64_t index_offset = tail.GetU64();
  if (index_offset < kMagicSize || index_offset > tail_at) {
    return false;
  }
  ByteReader index(bytes.data() + index_offset, tail_at - index_offset);
  uint64_t count = index.GetVarint();
  if (!index.ok() || count > kMaxReasonableCount) {
    return false;
  }
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t offset = prev + index.GetVarint();
    if (!index.ok() || offset >= index_offset) {
      return false;
    }
    prev = offset;
  }
  uint64_t checksum = index.GetU64();
  if (!index.ok() || !index.AtEnd()) {
    return false;
  }
  return checksum == Fnv1a64(bytes.data(), index_offset);
}

RecordLoadStats DecodeBinary(const std::string& bytes,
                             const std::function<void(TuningRecord)>& fn) {
  RecordLoadStats stats;
  stats.index_ok = ValidateIndex(bytes);
  // Sequential scan over the payload; with a valid index this cannot skip,
  // without one the per-record length prefixes resynchronize past damage.
  size_t payload_end =
      stats.index_ok ? bytes.size() - kTailSize : bytes.size();
  ByteReader r(bytes.data(), payload_end);
  r.Skip(kMagicSize);
  StringTable strings;
  if (!strings.Decode(&r)) {
    return stats;  // unreadable container: ok stays false
  }
  uint64_t num_steps = r.GetVarint();
  if (!r.ok() || num_steps > kMaxReasonableCount) {
    return stats;
  }
  std::vector<Step> steps;
  steps.reserve(num_steps);
  for (uint64_t i = 0; i < num_steps; ++i) {
    auto step = DecodeStep(&r, strings.strings());
    if (!step.has_value()) {
      return stats;
    }
    steps.push_back(std::move(*step));
  }
  uint64_t num_tasks = r.GetVarint();
  if (!r.ok() || num_tasks > kMaxReasonableCount) {
    return stats;
  }
  std::vector<uint64_t> tasks;
  tasks.reserve(num_tasks);
  for (uint64_t i = 0; i < num_tasks; ++i) {
    tasks.push_back(r.GetU64());
  }
  uint64_t num_records = r.GetVarint();
  if (!r.ok() || num_records > kMaxReasonableCount) {
    return stats;
  }
  stats.ok = true;
  for (uint64_t i = 0; i < num_records; ++i) {
    uint64_t body_len = r.GetVarint();
    if (!r.ok() || body_len > r.remaining()) {
      // Truncated records section: everything not yet decoded is lost.
      stats.skipped += num_records - i;
      return stats;
    }
    size_t body_start = r.pos();
    ByteReader body(bytes.data() + body_start, body_len);
    r.Skip(body_len);
    uint8_t flags = body.GetU8();
    uint64_t task_ref = body.GetVarint();
    TuningRecord record;
    record.seconds = body.GetF64();
    if (flags & kFlagHasThroughput) {
      record.throughput = body.GetF64();
    }
    uint64_t n = body.GetVarint();
    bool valid = body.ok() && task_ref < tasks.size() &&
                 std::isfinite(record.seconds) && n <= kMaxReasonableCount;
    if (valid) {
      record.task_id = tasks[task_ref];
      record.steps.reserve(n);
      for (uint64_t s = 0; s < n && valid; ++s) {
        uint64_t ref = body.GetVarint();
        if (!body.ok() || ref >= steps.size()) {
          valid = false;
          break;
        }
        record.steps.push_back(steps[ref]);
      }
    }
    if (!valid || !body.ok()) {
      ++stats.skipped;
      continue;
    }
    ++stats.loaded;
    fn(std::move(record));
  }
  return stats;
}

RecordLoadStats DecodeText(const std::string& text,
                           const std::function<void(TuningRecord)>& fn) {
  RecordLoadStats stats;
  stats.ok = true;
  for (const std::string& line : SplitString(text, '\n')) {
    if (line.empty()) {
      continue;
    }
    auto record = ParseRecord(line);
    if (!record.has_value()) {
      ++stats.skipped;
      continue;
    }
    ++stats.loaded;
    fn(std::move(*record));
  }
  return stats;
}

}  // namespace

// --- Text codec --------------------------------------------------------------

std::string SerializeStep(const Step& step) {
  // Fields are comma-separated; the stage name goes last so commas never
  // collide with integer fields (stage names contain no commas by
  // construction — they derive from tensor names).
  std::ostringstream os;
  os << StepKindName(step.kind);
  switch (step.kind) {
    case StepKind::kSplit:
      os << "," << step.iter << "," << Join(step.lengths, ":");
      break;
    case StepKind::kFollowSplit:
      os << "," << step.iter << "," << step.src_step << "," << step.n_parts;
      break;
    case StepKind::kFuse:
      os << "," << step.iter << "," << step.fuse_count;
      break;
    case StepKind::kReorder:
      os << "," << Join(step.order, ":");
      break;
    case StepKind::kComputeAt:
      os << "," << step.target_iter << "," << step.target_stage;
      break;
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      break;
    case StepKind::kRfactor:
      os << "," << step.iter;
      break;
    case StepKind::kAnnotation:
      os << "," << step.iter << "," << static_cast<int>(step.annotation);
      break;
    case StepKind::kPragma:
      os << "," << step.pragma_value;
      break;
  }
  os << "@" << step.stage;
  return os.str();
}

std::optional<Step> ParseStep(const std::string& text) {
  size_t at = text.rfind('@');
  if (at == std::string::npos) {
    return std::nullopt;
  }
  std::string stage = text.substr(at + 1);
  std::vector<std::string> fields = SplitString(text.substr(0, at), ',');
  if (fields.empty()) {
    return std::nullopt;
  }
  auto kind = StepKindFromName(fields[0]);
  if (!kind.has_value()) {
    return std::nullopt;
  }
  auto parse_ints = [](const std::string& s) {
    std::vector<int64_t> values;
    if (s.empty()) {
      return values;
    }
    for (const std::string& part : SplitString(s, ':')) {
      values.push_back(std::atoll(part.c_str()));
    }
    return values;
  };
  Step step;
  step.kind = *kind;
  step.stage = stage;
  switch (*kind) {
    case StepKind::kSplit: {
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.lengths = parse_ints(fields[2]);
      break;
    }
    case StepKind::kFollowSplit:
      if (fields.size() != 4) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.src_step = std::atoi(fields[2].c_str());
      step.n_parts = std::atoi(fields[3].c_str());
      break;
    case StepKind::kFuse:
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.fuse_count = std::atoi(fields[2].c_str());
      break;
    case StepKind::kReorder: {
      if (fields.size() != 2) return std::nullopt;
      for (int64_t v : parse_ints(fields[1])) {
        step.order.push_back(static_cast<int>(v));
      }
      break;
    }
    case StepKind::kComputeAt:
      if (fields.size() != 3) return std::nullopt;
      step.target_iter = std::atoi(fields[1].c_str());
      step.target_stage = fields[2];
      break;
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      if (fields.size() != 1) return std::nullopt;
      break;
    case StepKind::kRfactor:
      if (fields.size() != 2) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      break;
    case StepKind::kAnnotation:
      if (fields.size() != 3) return std::nullopt;
      step.iter = std::atoi(fields[1].c_str());
      step.annotation = static_cast<IterAnnotation>(std::atoi(fields[2].c_str()));
      break;
    case StepKind::kPragma:
      if (fields.size() != 2) return std::nullopt;
      step.pragma_value = std::atoi(fields[1].c_str());
      break;
  }
  return step;
}

std::string SerializeRecord(const TuningRecord& record) {
  std::ostringstream os;
  char task_hex[32];
  std::snprintf(task_hex, sizeof(task_hex), "%016" PRIx64, record.task_id);
  os << "task=" << task_hex << "|seconds=" << FormatDouble(record.seconds * 1e9, 6)
     << "e-9|steps=";
  for (size_t i = 0; i < record.steps.size(); ++i) {
    if (i > 0) {
      os << ";";
    }
    os << SerializeStep(record.steps[i]);
  }
  return os.str();
}

std::optional<TuningRecord> ParseRecord(const std::string& line) {
  std::vector<std::string> sections = SplitString(line, '|');
  if (sections.size() != 3) {
    return std::nullopt;
  }
  auto value_of = [&](const std::string& section,
                      const std::string& key) -> std::optional<std::string> {
    if (section.rfind(key + "=", 0) != 0) {
      return std::nullopt;
    }
    return section.substr(key.size() + 1);
  };
  auto task = value_of(sections[0], "task");
  auto seconds = value_of(sections[1], "seconds");
  auto steps = value_of(sections[2], "steps");
  if (!task.has_value() || !seconds.has_value() || !steps.has_value()) {
    return std::nullopt;
  }
  TuningRecord record;
  record.task_id = std::strtoull(task->c_str(), nullptr, 16);
  record.seconds = std::atof(seconds->c_str());
  if (!std::isfinite(record.seconds)) {
    return std::nullopt;
  }
  if (!steps->empty()) {
    for (const std::string& part : SplitString(*steps, ';')) {
      auto step = ParseStep(part);
      if (!step.has_value()) {
        return std::nullopt;
      }
      record.steps.push_back(std::move(*step));
    }
  }
  return record;
}

// --- RecordStore -------------------------------------------------------------

RecordStore::RecordStore(Options options) : options_(options) {}

bool RecordStore::AddLocked(TuningRecord record, uint64_t client_id) {
  RecordClientStats* client =
      client_id != 0 ? &client_stats_[client_id] : nullptr;
  if (options_.dedup) {
    auto [it, inserted] = by_signature_.emplace(DedupKey(record), records_.size());
    if (!inserted) {
      ++stats_.deduplicated;
      if (client != nullptr) {
        ++client->deduplicated;
      }
      TuningRecord& stored = records_[it->second];
      if (record.seconds < stored.seconds) {
        // The same program re-measured strictly faster: keep the better
        // measurement so BestFor and training labels see it.
        ++stats_.improved;
        stored.seconds = record.seconds;
        stored.throughput = record.throughput;
        size_t& best = best_by_task_[stored.task_id];
        if (stored.seconds < records_[best].seconds) {
          best = it->second;
        }
      }
      return false;
    }
  }
  size_t slot = records_.size();
  auto [best_it, first_for_task] = best_by_task_.emplace(record.task_id, slot);
  if (first_for_task) {
    task_order_.push_back(record.task_id);
  } else if (record.seconds < records_[best_it->second].seconds) {
    best_it->second = slot;
  }
  records_.push_back(std::move(record));
  ++stats_.appended;
  if (client != nullptr) {
    ++client->appended;
  }
  return true;
}

bool RecordStore::Add(TuningRecord record, uint64_t client_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(std::move(record), client_id);
}

size_t RecordStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<TuningRecord> RecordStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::optional<TuningRecord> RecordStore::BestFor(uint64_t task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = best_by_task_.find(task_id);
  if (it == best_by_task_.end()) {
    return std::nullopt;
  }
  return records_[it->second];
}

State RecordStore::ReplayBest(const ComputeDAG* dag) const {
  if (dag == nullptr) {
    return State::Failure(nullptr, "ReplayBest: no DAG");
  }
  auto best = BestFor(dag->CanonicalHash());
  if (!best.has_value()) {
    return State::Failure(dag, "ReplayBest: no record for task");
  }
  return State::Replay(dag, best->steps);
}

std::vector<uint64_t> RecordStore::TaskIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_order_;
}

RecordStoreStats RecordStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

RecordClientStats RecordStore::ClientStatsFor(uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = client_stats_.find(client_id);
  return it != client_stats_.end() ? it->second : RecordClientStats();
}

void RecordStore::ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const {
  RecordStoreStats s = stats();
  registry->SetGauge(prefix + ".appended", static_cast<double>(s.appended));
  registry->SetGauge(prefix + ".deduplicated", static_cast<double>(s.deduplicated));
  registry->SetGauge(prefix + ".improved", static_cast<double>(s.improved));
  registry->SetGauge(prefix + ".size", static_cast<double>(size()));
}

std::string RecordStore::Serialize(RecordCodec codec) const {
  std::vector<TuningRecord> snapshot = Snapshot();
  if (codec == RecordCodec::kBinary) {
    return EncodeBinary(snapshot);
  }
  std::ostringstream os;
  for (const TuningRecord& r : snapshot) {
    os << SerializeRecord(r) << "\n";
  }
  return os.str();
}

RecordLoadStats RecordStore::Deserialize(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return ForEachRecord(bytes,
                       [this](TuningRecord record) { AddLocked(std::move(record), 0); });
}

bool RecordStore::SaveToFile(const std::string& path, RecordCodec codec) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return false;
  }
  std::string bytes = Serialize(codec);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

RecordLoadStats RecordStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return RecordLoadStats();
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

RecordLoadStats RecordStore::ForEachRecord(const std::string& bytes,
                                           const std::function<void(TuningRecord)>& fn) {
  if (HasBinaryMagic(bytes)) {
    return DecodeBinary(bytes, fn);
  }
  return DecodeText(bytes, fn);
}

RecordLoadStats RecordStore::StreamFile(const std::string& path,
                                        const std::function<void(TuningRecord)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return RecordLoadStats();
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ForEachRecord(buffer.str(), fn);
}

RecordLoadStats RecordStore::MigrateTextToBinary(const std::string& text_path,
                                                 const std::string& binary_path) {
  RecordStore store(Options{/*dedup=*/false});
  RecordLoadStats stats = store.LoadFromFile(text_path);
  if (!stats.ok) {
    return stats;
  }
  if (!store.SaveToFile(binary_path, RecordCodec::kBinary)) {
    stats.ok = false;
  }
  return stats;
}

}  // namespace ansor
