// Bounds-checked byte-level (de)serialization primitives for the store layer.
//
// ByteWriter appends into a growing buffer; ByteReader walks a borrowed span
// and latches a failure flag on the first out-of-bounds or malformed read.
// Every store codec is built on these two types, so "malformed input never
// crashes" reduces to one invariant: readers check ok() before trusting a
// value, and a failed reader returns zeros rather than touching memory it
// does not own.
//
// Encoding conventions (little-endian throughout):
//  * Varint: LEB128, 7 bits per byte, at most 10 bytes for a uint64_t.
//  * Zigzag: signed values map to unsigned ((v << 1) ^ (v >> 63)) before
//    varint encoding, so small negative numbers stay small.
//  * F32/F64: raw IEEE bits (memcpy), so round-trips are bit-exact.
//  * String: varint length + raw bytes.
#ifndef ANSOR_SRC_STORE_BYTES_H_
#define ANSOR_SRC_STORE_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ansor {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutF32(float v);
  void PutF64(double v);
  void PutVarint(uint64_t v);
  void PutZigzag(int64_t v);
  void PutString(const std::string& s);
  void PutRaw(const void* data, size_t n);

  // Overwrites 4 bytes at `offset` (which must already exist) with `v`:
  // used to backpatch length prefixes without a second buffer.
  void PatchU32(size_t offset, uint32_t v);

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& bytes) : ByteReader(bytes.data(), bytes.size()) {}

  // False once any read ran past the end or hit a malformed encoding. All
  // reads after a failure return zeros/empty.
  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  float GetF32();
  double GetF64();
  uint64_t GetVarint();
  int64_t GetZigzag();
  std::string GetString();
  // Copies n raw bytes into out (which must have room for n).
  void GetRaw(void* out, size_t n);

  void Skip(size_t n);
  // Absolute reposition; fails the reader if past the end.
  void Seek(size_t pos);
  // Marks the reader failed (codecs use this for semantic violations, e.g.
  // an out-of-range table reference).
  void Fail() { ok_ = false; }

 private:
  bool Need(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// FNV-1a over a byte span: the store's corruption checksum. Not
// cryptographic; it only needs to catch truncation and bit rot.
uint64_t Fnv1a64(const char* data, size_t n);

}  // namespace ansor

#endif  // ANSOR_SRC_STORE_BYTES_H_
