// Shared binary codecs for store payloads: interned strings, transform
// steps, and feature matrices.
//
// Step encodings reference stage names through a per-file StringTable, so a
// 100k-record log stores each stage name once and each step points at it
// with a 1-2 byte varint. Decoders validate every table reference and kind
// discriminator; a malformed step fails the reader instead of producing a
// half-initialized Step.
#ifndef ANSOR_SRC_STORE_SERDE_H_
#define ANSOR_SRC_STORE_SERDE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/features/feature_matrix.h"
#include "src/ir/steps.h"
#include "src/store/bytes.h"

namespace ansor {

// Insertion-ordered string interner: Intern returns a stable index, Encode
// writes the table, Decode reads it back in the same order.
class StringTable {
 public:
  uint64_t Intern(const std::string& s);
  const std::vector<std::string>& strings() const { return strings_; }

  void Encode(ByteWriter* w) const;
  // Replaces the contents; fails the reader on malformed input.
  bool Decode(ByteReader* r);

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint64_t> index_;
};

// Binary step codec. Stage names go through the table; integer fields are
// zigzag varints so the common small values take one byte.
void EncodeStep(const Step& step, StringTable* strings, ByteWriter* w);
// Decodes one step against an already-decoded table; nullopt (and a failed
// reader) on malformed input — unknown kind, out-of-range string reference,
// or truncation.
std::optional<Step> DecodeStep(ByteReader* r, const std::vector<std::string>& strings);

// Feature matrices serialize as dim + row count + raw f32 data + per-row
// stage references (bit-exact round trip; empty matrices stay empty).
void EncodeFeatureMatrix(const FeatureMatrix& m, StringTable* strings, ByteWriter* w);
bool DecodeFeatureMatrix(ByteReader* r, const std::vector<std::string>& strings,
                         FeatureMatrix* out);

}  // namespace ansor

#endif  // ANSOR_SRC_STORE_SERDE_H_
