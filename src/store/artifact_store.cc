#include "src/store/artifact_store.h"

#include <fstream>
#include <sstream>

#include "src/dag/compute_dag.h"
#include "src/ir/state.h"
#include "src/program/program_cache.h"
#include "src/store/serde.h"

namespace ansor {
namespace {

constexpr char kArtifactMagic[8] = {'A', 'N', 'S', 'R', 'A', 'R', 'T', '1'};
constexpr size_t kMagicSize = sizeof(kArtifactMagic);
constexpr uint8_t kFlagLoweringOk = 1;
constexpr uint8_t kFlagStructurallyLegal = 2;
constexpr uint8_t kKnownFlags = kFlagLoweringOk | kFlagStructurallyLegal;
constexpr uint64_t kMaxReasonableCount = 1u << 28;

std::string StoreKey(uint64_t task_id, const std::string& signature) {
  return std::to_string(task_id) + '|' + signature;
}

void EncodeSnapshot(const ArtifactSnapshot& s, StringTable* strings, ByteWriter* body) {
  body->PutU64(s.task_id);
  body->PutVarint(strings->Intern(s.tag));
  uint8_t flags = 0;
  if (s.lowering_ok) flags |= kFlagLoweringOk;
  if (s.structurally_legal) flags |= kFlagStructurallyLegal;
  body->PutU8(flags);
  body->PutVarint(s.steps.size());
  for (const Step& step : s.steps) {
    EncodeStep(step, strings, body);
  }
  EncodeFeatureMatrix(s.features, strings, body);
  body->PutVarint(s.resource_verdicts.size());
  for (const auto& [fingerprint, passed] : s.resource_verdicts) {
    body->PutU64(fingerprint);
    body->PutU8(passed ? 1 : 0);
  }
}

bool DecodeSnapshot(ByteReader* r, const std::vector<std::string>& strings,
                    ArtifactSnapshot* out) {
  out->task_id = r->GetU64();
  uint64_t tag_ref = r->GetVarint();
  if (!r->ok() || tag_ref >= strings.size()) {
    r->Fail();
    return false;
  }
  out->tag = strings[tag_ref];
  uint8_t flags = r->GetU8();
  if (!r->ok() || (flags & ~kKnownFlags) != 0) {
    r->Fail();
    return false;
  }
  out->lowering_ok = (flags & kFlagLoweringOk) != 0;
  out->structurally_legal = (flags & kFlagStructurallyLegal) != 0;
  uint64_t num_steps = r->GetVarint();
  if (!r->ok() || num_steps > kMaxReasonableCount) {
    r->Fail();
    return false;
  }
  out->steps.reserve(num_steps);
  for (uint64_t i = 0; i < num_steps; ++i) {
    std::optional<Step> step = DecodeStep(r, strings);
    if (!step.has_value()) {
      return false;
    }
    out->steps.push_back(std::move(*step));
  }
  if (!DecodeFeatureMatrix(r, strings, &out->features)) {
    return false;
  }
  uint64_t num_verdicts = r->GetVarint();
  if (!r->ok() || num_verdicts > kMaxReasonableCount) {
    r->Fail();
    return false;
  }
  out->resource_verdicts.reserve(num_verdicts);
  for (uint64_t i = 0; i < num_verdicts; ++i) {
    uint64_t fingerprint = r->GetU64();
    uint8_t passed = r->GetU8();
    if (!r->ok() || passed > 1) {
      r->Fail();
      return false;
    }
    out->resource_verdicts.emplace_back(fingerprint, passed != 0);
  }
  // A well-formed body has nothing trailing: leftover bytes mean the length
  // prefix and the content disagree, i.e. corruption.
  return r->AtEnd();
}

}  // namespace

bool ArtifactStore::Add(ArtifactSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(std::move(snapshot));
}

bool ArtifactStore::AddLocked(ArtifactSnapshot snapshot) {
  std::string key = StoreKey(snapshot.task_id, StepSignature(snapshot.steps));
  auto [it, inserted] = by_key_.emplace(std::move(key), snapshots_.size());
  if (!inserted) {
    ++stats_.deduplicated;
    return false;
  }
  snapshots_.push_back(std::move(snapshot));
  ++stats_.added;
  return true;
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

ArtifactStoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const ArtifactSnapshot* ArtifactStore::Find(uint64_t task_id,
                                            const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(StoreKey(task_id, signature));
  return it == by_key_.end() ? nullptr : &snapshots_[it->second];
}

size_t ArtifactStore::CaptureCache(const ProgramCache& cache, const std::string& tag) {
  size_t added = 0;
  cache.ForEach([&](const ProgramArtifactPtr& artifact) {
    ArtifactSnapshot snapshot;
    snapshot.task_id = artifact->task_id();
    snapshot.tag = tag;
    snapshot.steps = artifact->steps();
    snapshot.lowering_ok = artifact->ok();
    snapshot.structurally_legal = artifact->statically_legal();
    snapshot.features = artifact->features();
    snapshot.resource_verdicts = artifact->resource_verdict_summary();
    if (Add(std::move(snapshot))) {
      ++added;
    }
  });
  return added;
}

size_t ArtifactStore::WarmCache(ProgramCache* cache,
                                std::shared_ptr<const ComputeDAG> dag) const {
  if (cache == nullptr || dag == nullptr) {
    return 0;
  }
  uint64_t task_id = dag->CanonicalHash();
  size_t inserted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const ArtifactSnapshot& s : snapshots_) {
    if (s.task_id != task_id) {
      continue;
    }
    auto artifact = std::make_shared<const ProgramArtifact>(
        dag, s.steps, StepSignature(s.steps), s.features, s.lowering_ok,
        s.structurally_legal, s.resource_verdicts);
    if (cache->WarmInsert(task_id, std::move(artifact))) {
      ++inserted;
    }
  }
  return inserted;
}

std::string ArtifactStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Bodies are encoded first (interning into the string table as they go) so
  // the table is complete before it is written ahead of them.
  StringTable strings;
  ByteWriter bodies;
  for (const ArtifactSnapshot& s : snapshots_) {
    ByteWriter body;
    EncodeSnapshot(s, &strings, &body);
    bodies.PutVarint(body.size());
    bodies.PutRaw(body.buffer().data(), body.size());
  }
  ByteWriter w;
  w.PutRaw(kArtifactMagic, kMagicSize);
  strings.Encode(&w);
  w.PutVarint(snapshots_.size());
  w.PutRaw(bodies.buffer().data(), bodies.size());
  return w.Take();
}

ArtifactLoadStats ArtifactStore::Deserialize(const std::string& bytes) {
  ArtifactLoadStats stats;
  if (bytes.size() < kMagicSize ||
      bytes.compare(0, kMagicSize, kArtifactMagic, kMagicSize) != 0) {
    return stats;
  }
  ByteReader r(bytes);
  r.Skip(kMagicSize);
  StringTable strings;
  if (!strings.Decode(&r)) {
    return stats;
  }
  uint64_t count = r.GetVarint();
  if (!r.ok() || count > kMaxReasonableCount) {
    return stats;
  }
  stats.ok = true;
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t body_len = r.GetVarint();
    if (!r.ok() || body_len > r.remaining()) {
      // Truncated container: everything not yet decoded is lost.
      stats.skipped += count - i;
      break;
    }
    ByteReader body(bytes.data() + r.pos(), body_len);
    r.Skip(body_len);
    ArtifactSnapshot snapshot;
    if (!DecodeSnapshot(&body, strings.strings(), &snapshot)) {
      // The length prefix bounds the damage: resynchronize at the next body.
      ++stats.skipped;
      continue;
    }
    AddLocked(std::move(snapshot));
    ++stats.loaded;
  }
  return stats;
}

bool ArtifactStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  std::string bytes = Serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

ArtifactLoadStats ArtifactStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return ArtifactLoadStats();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

}  // namespace ansor
