#include "src/store/serde.h"

namespace ansor {
namespace {

constexpr uint8_t kMaxStepKind = static_cast<uint8_t>(StepKind::kPragma);
constexpr uint8_t kMaxAnnotation = static_cast<uint8_t>(IterAnnotation::kVThread);

// Hard cap on decoded element counts (steps per record, rows per matrix,
// table sizes): a corrupted varint must not turn into a multi-gigabyte
// allocation before the bounds check gets a chance to fire.
constexpr uint64_t kMaxDecodedElements = 1u << 24;

std::optional<std::string> LookupString(uint64_t ref,
                                        const std::vector<std::string>& strings,
                                        ByteReader* r) {
  if (ref >= strings.size()) {
    r->Fail();
    return std::nullopt;
  }
  return strings[ref];
}

}  // namespace

uint64_t StringTable::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  uint64_t id = strings_.size();
  strings_.push_back(s);
  index_.emplace(s, id);
  return id;
}

void StringTable::Encode(ByteWriter* w) const {
  w->PutVarint(strings_.size());
  for (const std::string& s : strings_) {
    w->PutString(s);
  }
}

bool StringTable::Decode(ByteReader* r) {
  strings_.clear();
  index_.clear();
  uint64_t n = r->GetVarint();
  if (!r->ok() || n > kMaxDecodedElements) {
    r->Fail();
    return false;
  }
  strings_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string s = r->GetString();
    if (!r->ok()) {
      return false;
    }
    index_.emplace(s, strings_.size());
    strings_.push_back(std::move(s));
  }
  return true;
}

void EncodeStep(const Step& step, StringTable* strings, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(step.kind));
  w->PutVarint(strings->Intern(step.stage));
  switch (step.kind) {
    case StepKind::kSplit:
      w->PutZigzag(step.iter);
      w->PutVarint(step.lengths.size());
      for (int64_t len : step.lengths) {
        w->PutZigzag(len);
      }
      break;
    case StepKind::kFollowSplit:
      w->PutZigzag(step.iter);
      w->PutZigzag(step.src_step);
      w->PutZigzag(step.n_parts);
      break;
    case StepKind::kFuse:
      w->PutZigzag(step.iter);
      w->PutZigzag(step.fuse_count);
      break;
    case StepKind::kReorder:
      w->PutVarint(step.order.size());
      for (int v : step.order) {
        w->PutZigzag(v);
      }
      break;
    case StepKind::kComputeAt:
      w->PutZigzag(step.target_iter);
      w->PutVarint(strings->Intern(step.target_stage));
      break;
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      break;
    case StepKind::kRfactor:
      w->PutZigzag(step.iter);
      break;
    case StepKind::kAnnotation:
      w->PutZigzag(step.iter);
      w->PutU8(static_cast<uint8_t>(step.annotation));
      break;
    case StepKind::kPragma:
      w->PutZigzag(step.pragma_value);
      break;
  }
}

std::optional<Step> DecodeStep(ByteReader* r, const std::vector<std::string>& strings) {
  uint8_t kind_byte = r->GetU8();
  if (!r->ok() || kind_byte > kMaxStepKind) {
    r->Fail();
    return std::nullopt;
  }
  Step step;
  step.kind = static_cast<StepKind>(kind_byte);
  auto stage = LookupString(r->GetVarint(), strings, r);
  if (!stage.has_value()) {
    return std::nullopt;
  }
  step.stage = std::move(*stage);
  switch (step.kind) {
    case StepKind::kSplit: {
      step.iter = static_cast<int>(r->GetZigzag());
      uint64_t n = r->GetVarint();
      if (!r->ok() || n > kMaxDecodedElements) {
        r->Fail();
        return std::nullopt;
      }
      step.lengths.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        step.lengths.push_back(r->GetZigzag());
      }
      break;
    }
    case StepKind::kFollowSplit:
      step.iter = static_cast<int>(r->GetZigzag());
      step.src_step = static_cast<int>(r->GetZigzag());
      step.n_parts = static_cast<int>(r->GetZigzag());
      break;
    case StepKind::kFuse:
      step.iter = static_cast<int>(r->GetZigzag());
      step.fuse_count = static_cast<int>(r->GetZigzag());
      break;
    case StepKind::kReorder: {
      uint64_t n = r->GetVarint();
      if (!r->ok() || n > kMaxDecodedElements) {
        r->Fail();
        return std::nullopt;
      }
      step.order.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        step.order.push_back(static_cast<int>(r->GetZigzag()));
      }
      break;
    }
    case StepKind::kComputeAt: {
      step.target_iter = static_cast<int>(r->GetZigzag());
      auto target = LookupString(r->GetVarint(), strings, r);
      if (!target.has_value()) {
        return std::nullopt;
      }
      step.target_stage = std::move(*target);
      break;
    }
    case StepKind::kComputeInline:
    case StepKind::kComputeRoot:
    case StepKind::kCacheWrite:
      break;
    case StepKind::kRfactor:
      step.iter = static_cast<int>(r->GetZigzag());
      break;
    case StepKind::kAnnotation: {
      step.iter = static_cast<int>(r->GetZigzag());
      uint8_t ann = r->GetU8();
      if (!r->ok() || ann > kMaxAnnotation) {
        r->Fail();
        return std::nullopt;
      }
      step.annotation = static_cast<IterAnnotation>(ann);
      break;
    }
    case StepKind::kPragma:
      step.pragma_value = static_cast<int>(r->GetZigzag());
      break;
  }
  if (!r->ok()) {
    return std::nullopt;
  }
  return step;
}

void EncodeFeatureMatrix(const FeatureMatrix& m, StringTable* strings, ByteWriter* w) {
  w->PutVarint(m.dim());
  w->PutVarint(m.rows());
  for (const std::string& stage : m.row_stages()) {
    w->PutVarint(strings->Intern(stage));
  }
  w->PutRaw(m.data().data(), m.data().size() * sizeof(float));
}

bool DecodeFeatureMatrix(ByteReader* r, const std::vector<std::string>& strings,
                         FeatureMatrix* out) {
  uint64_t dim = r->GetVarint();
  uint64_t rows = r->GetVarint();
  if (!r->ok() || dim > kMaxDecodedElements || rows > kMaxDecodedElements ||
      (dim == 0 && rows > 0) || (dim > 0 && rows > kMaxDecodedElements / dim)) {
    r->Fail();
    return false;
  }
  std::vector<std::string> stages;
  stages.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    auto stage = LookupString(r->GetVarint(), strings, r);
    if (!stage.has_value()) {
      return false;
    }
    stages.push_back(std::move(*stage));
  }
  if (r->remaining() < dim * rows * sizeof(float)) {
    r->Fail();
    return false;
  }
  FeatureMatrix m(dim);
  m.Reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    float* row = m.AddRow(std::move(stages[i]));
    r->GetRaw(row, dim * sizeof(float));
  }
  if (!r->ok()) {
    return false;
  }
  *out = std::move(m);
  return true;
}

}  // namespace ansor
