#include "src/store/bytes.h"

#include <cstring>

namespace ansor {

void ByteWriter::PutU32(uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  buf_.append(bytes, sizeof(bytes));
}

void ByteWriter::PutU64(uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  buf_.append(bytes, sizeof(bytes));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.append(s);
}

void ByteWriter::PutRaw(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  buf_.replace(offset, sizeof(bytes), bytes, sizeof(bytes));
}

bool ByteReader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::GetU8() {
  if (!Need(1)) {
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t ByteReader::GetU32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

uint64_t ByteReader::GetU64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = 0;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

float ByteReader::GetF32() {
  uint32_t bits = GetU32();
  float v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::GetF64() {
  uint64_t bits = GetU64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (!Need(1)) {
      return 0;
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
  ok_ = false;  // more than 10 continuation bytes: malformed
  return 0;
}

int64_t ByteReader::GetZigzag() {
  uint64_t v = GetVarint();
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

std::string ByteReader::GetString() {
  uint64_t n = GetVarint();
  if (!Need(n)) {
    return std::string();
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

void ByteReader::GetRaw(void* out, size_t n) {
  if (!Need(n)) {
    std::memset(out, 0, n);
    return;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

void ByteReader::Skip(size_t n) {
  if (Need(n)) {
    pos_ += n;
  }
}

void ByteReader::Seek(size_t pos) {
  if (pos > size_) {
    ok_ = false;
    return;
  }
  pos_ = pos;
}

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ansor
