// The fleet-scale tuning-record store: every read or write of persisted
// tuning history goes through this interface.
//
// A TuningRecord is one (task, measured seconds, step list) triple — plus
// the measured throughput when known, which the transfer-learned cost model
// trains from (TrainFromStore). Two codecs serialize the same store:
//
//  * Binary (default): a compact container built for logs with millions of
//    records. Stage names, distinct steps, and task ids are interned into
//    file-level tables, so each record's step list is a handful of 1-2 byte
//    varint references instead of repeated text; records are
//    length-prefixed for resynchronization, and a footer index (record
//    offsets + FNV-1a payload checksum) makes loads verifiable and
//    streamable. A corrupted index degrades to a sequential scan; corrupted
//    records are skipped and counted, never crash.
//  * Text: the legacy one-record-per-line format of `RecordLog`
//    (task=<hex>|seconds=<float>|steps=...), kept as a compatibility codec.
//    Loading auto-detects the codec, so `RecordStore::LoadFromFile` on an
//    old text log is the text→binary migration path.
//
// The store is thread-safe for Add/BestFor/stats and deduplicates by exact
// step signature per task (StepSignature), with exact counters: a fleet of
// tuners appending concurrently never stores the same program twice, and a
// duplicate that measured strictly faster updates the stored record in
// place. Per-client attribution mirrors ProgramCache::ClientStats so a
// multi-tenant service can report each job's contribution exactly.
#ifndef ANSOR_SRC_STORE_RECORD_STORE_H_
#define ANSOR_SRC_STORE_RECORD_STORE_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/state.h"
#include "src/telemetry/metrics.h"

namespace ansor {

struct TuningRecord {
  uint64_t task_id = 0;
  double seconds = 0.0;
  // FLOPS achieved, when the record came from a live measurement; 0 when
  // unknown (e.g. loaded from a legacy text log, which does not carry it).
  double throughput = 0.0;
  std::vector<Step> steps;
};

// --- Text codec (the legacy RecordLog format) --------------------------------

// Compact, lossless textual encoding of one step.
std::string SerializeStep(const Step& step);
// Parses a serialized step; returns nullopt on malformed input.
std::optional<Step> ParseStep(const std::string& text);

std::string SerializeRecord(const TuningRecord& record);
std::optional<TuningRecord> ParseRecord(const std::string& line);

// --- RecordStore -------------------------------------------------------------

enum class RecordCodec {
  kBinary,  // interned-table container with footer index (default)
  kText,    // legacy one-record-per-line format (drops throughput)
};

// Result of loading serialized records. `ok` means the container itself was
// recognized and readable (a missing file or unrecognizable payload is not);
// `skipped` counts individually malformed records/lines that were dropped.
struct RecordLoadStats {
  bool ok = false;
  size_t loaded = 0;
  size_t skipped = 0;
  // Binary only: the footer index was present and its checksum matched. A
  // false value with ok == true means the loader fell back to a sequential
  // scan (corrupted or truncated index).
  bool index_ok = false;

  explicit operator bool() const { return ok; }
};

// Monotonic store-wide counters. appended + deduplicated == total Add calls.
struct RecordStoreStats {
  int64_t appended = 0;      // records accepted as new signatures
  int64_t deduplicated = 0;  // records dropped as duplicate signatures
  // Duplicates that measured strictly faster than the stored record and
  // updated its seconds/throughput in place (a subset of deduplicated).
  int64_t improved = 0;
};

// Exact per-client counters (client ids are the same ids used for
// ProgramCache attribution; 0 = anonymous and untracked).
struct RecordClientStats {
  int64_t appended = 0;
  int64_t deduplicated = 0;
};

class RecordStore {
 public:
  struct Options {
    // Signature-level dedup. Off turns the store into a plain append log
    // (what the RecordLog compatibility wrapper uses: a tuner's own log
    // legitimately re-measures nothing, and lossless round-trips must keep
    // duplicates).
    bool dedup = true;
  };

  RecordStore() : RecordStore(Options{true}) {}
  explicit RecordStore(Options options);

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  // Appends a record (thread-safe). Returns true when the record was stored
  // as a new signature; false when dedup dropped it (a strictly faster
  // duplicate still updates the stored record's measurement in place).
  bool Add(TuningRecord record, uint64_t client_id = 0);

  size_t size() const;
  // Copy of the stored records, in insertion order (thread-safe).
  std::vector<TuningRecord> Snapshot() const;
  // Borrowed view for single-threaded use: stable only while no concurrent
  // Add runs.
  const std::vector<TuningRecord>& records() const { return records_; }

  // Best (lowest-seconds) record for a task; nullopt if none. O(1).
  std::optional<TuningRecord> BestFor(uint64_t task_id) const;
  // Replays the best record for the DAG's task id; returns a failed state if
  // no record exists or replay breaks (e.g. the DAG changed).
  State ReplayBest(const ComputeDAG* dag) const;
  // Distinct task ids, in first-appearance order.
  std::vector<uint64_t> TaskIds() const;

  RecordStoreStats stats() const;
  RecordClientStats ClientStatsFor(uint64_t client_id) const;

  // Mirrors the current counters into `registry` as gauges named
  // <prefix>.appended / .deduplicated / .improved / .size.
  void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const;

  // --- Persistence -----------------------------------------------------------

  std::string Serialize(RecordCodec codec = RecordCodec::kBinary) const;
  // Parses `bytes` (codec auto-detected by the binary magic) and Adds every
  // well-formed record under this store's dedup policy.
  RecordLoadStats Deserialize(const std::string& bytes);
  bool SaveToFile(const std::string& path,
                  RecordCodec codec = RecordCodec::kBinary) const;
  RecordLoadStats LoadFromFile(const std::string& path);

  // Streaming decode (codec auto-detected): invokes `fn` per well-formed
  // record without materializing a store. The store-independent core that
  // Deserialize is built on.
  static RecordLoadStats ForEachRecord(const std::string& bytes,
                                       const std::function<void(TuningRecord)>& fn);
  static RecordLoadStats StreamFile(const std::string& path,
                                    const std::function<void(TuningRecord)>& fn);

  // One-shot lossless migration: reads a legacy text log and writes the
  // binary container (no dedup — a pure format conversion). Returns the text
  // load stats; ok is false when the output could not be written.
  static RecordLoadStats MigrateTextToBinary(const std::string& text_path,
                                             const std::string& binary_path);

 private:
  bool AddLocked(TuningRecord record, uint64_t client_id);

  Options options_;
  mutable std::mutex mu_;
  std::vector<TuningRecord> records_;
  // Dedup + in-place-improvement index: "<task hex>|<StepSignature>" -> slot.
  std::unordered_map<std::string, size_t> by_signature_;
  // task id -> slot of its best (lowest-seconds) record.
  std::unordered_map<uint64_t, size_t> best_by_task_;
  std::vector<uint64_t> task_order_;
  RecordStoreStats stats_;
  std::unordered_map<uint64_t, RecordClientStats> client_stats_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_STORE_RECORD_STORE_H_
