// Thread-safe, sharded, LRU-bounded cache of compiled ProgramArtifacts.
//
// The cache has a task lifetime: a TaskTuner owns one (unless an external
// cache is injected through SearchOptions) and threads it through evolution,
// measurement, training-feature extraction and the core API, so each
// distinct program is lowered and feature-extracted once per task however
// many consumers touch it. Entries are keyed by the DAG's canonical hash
// plus the state's step signature, so a cache may safely be shared across
// tasks (the cross-task reuse path of ROADMAP's open items).
//
// Determinism: an artifact is a pure function of (DAG, step list), so a hit
// is bit-identical to a rebuild — fixed-seed search results do not depend on
// the cache capacity (including 0 = disabled) or on the thread count.
// The hit/miss *counters* are exact under serial use but may split
// differently across thread counts when workers race on the same key; only
// totals (hits + misses) are schedule-independent.
#ifndef ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_
#define ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/program/program_artifact.h"

namespace ansor {

// Monotonic counters, aggregated over all shards by stats().
struct ProgramCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  int64_t lookups() const { return hits + misses; }
  double HitRate() const {
    int64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ProgramCache {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  // `capacity` bounds the entry count: each shard holds at most
  // ceil(capacity / num_shards) (min 1) entries under its own LRU order, so
  // the effective total bound is that per-shard bound times num_shards.
  // Capacity 0 disables storage entirely: every lookup builds a fresh
  // artifact and counts as a miss. Use num_shards = 1 for exact global LRU
  // order (tests).
  explicit ProgramCache(size_t capacity = kDefaultCapacity, size_t num_shards = 16);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  // The artifact for `state`, served from the cache or built (and, capacity
  // permitting, inserted) on a miss. Failed states are never cached — their
  // normalized empty step history would alias every other failed state — but
  // still yield a (not-ok) artifact. Safe to call from worker threads; a
  // racing build of the same key keeps the first inserted artifact so
  // stage-score memos stay shared.
  ProgramArtifactPtr GetOrBuild(const State& state);

  size_t capacity() const { return capacity_; }
  // Current entry count across all shards.
  size_t size() const;
  ProgramCacheStats stats() const;

 private:
  struct Entry {
    ProgramArtifactPtr artifact;
    std::list<std::string>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  // front = most recently used
    std::unordered_map<std::string, Entry> map;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_
