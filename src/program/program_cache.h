// Thread-safe, sharded, LRU-bounded cache of compiled ProgramArtifacts.
//
// The cache has a task lifetime: a TaskTuner owns one (unless an external
// cache is injected through SearchOptions) and threads it through evolution,
// measurement, training-feature extraction and the core API, so each
// distinct program is lowered and feature-extracted once per task however
// many consumers touch it. Entries are keyed by the DAG's canonical hash
// plus the state's step signature, so a cache may safely be shared across
// tasks (the cross-task reuse path of ROADMAP's open items).
//
// Determinism: an artifact is a pure function of (DAG, step list), so a hit
// is bit-identical to a rebuild — fixed-seed search results do not depend on
// the cache capacity (including 0 = disabled) or on the thread count.
// The hit/miss *counters* are exact under serial use but may split
// differently across thread counts when workers race on the same key; only
// totals (hits + misses) are schedule-independent.
#ifndef ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_
#define ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/program/program_artifact.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ansor {

// Monotonic counters, aggregated over all shards by stats().
struct ProgramCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  // Hits served to a client other than the one that built the entry (only
  // counted between nonzero client ids). On a cache shared across tasks this
  // is the cross-task reuse the sharing exists for: a program one task
  // compiled that another task consumed for free.
  int64_t cross_client_hits = 0;
  // Entries installed through WarmInsert (artifact-store warm starts). Not
  // lookups: warm inserts count toward neither hits nor misses, so a resumed
  // run proving "zero rebuilds" shows misses == 0 with warm_inserts > 0.
  int64_t warm_inserts = 0;

  int64_t lookups() const { return hits + misses; }
  double HitRate() const {
    int64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Per-client counters (see ProgramCache::ClientStats): exact even when the
// cache is shared by concurrently running tasks or jobs, so a tuning job can
// report its own cross-task hit rate without seeing its neighbors' traffic.
struct ProgramCacheClientStats {
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t cross_client_hits = 0;

  double CrossClientHitRate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(cross_client_hits) / static_cast<double>(lookups);
  }
};

class ProgramCache {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  // `capacity` bounds the entry count: each shard holds at most
  // ceil(capacity / num_shards) (min 1) entries under its own LRU order, so
  // the effective total bound is that per-shard bound times num_shards.
  // Capacity 0 disables storage entirely: every lookup builds a fresh
  // artifact and counts as a miss. Use num_shards = 1 for exact global LRU
  // order (tests).
  explicit ProgramCache(size_t capacity = kDefaultCapacity, size_t num_shards = 16);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  // The artifact for `state`, served from the cache or built (and, capacity
  // permitting, inserted) on a miss. Failed states are never cached — their
  // normalized empty step history would alias every other failed state — but
  // still yield a (not-ok) artifact. Safe to call from worker threads; a
  // racing build of the same key keeps the first inserted artifact so
  // stage-score memos stay shared.
  //
  // `client_id` identifies the consumer for the cross-task accounting only
  // (artifacts are identical regardless): 0 is anonymous, a nonzero id is
  // remembered on the entry it inserts, and a nonzero-id hit on an entry
  // built by a different nonzero id counts as a cross-client hit. The
  // TuningService assigns each (job, task) pair a distinct id so same-tag
  // tasks sharing one cache can report how much they reused of each other.
  //
  // A non-null `tracer` records compiles (misses) as "artifact_build" spans
  // with lower/extract/verify children; hits record nothing — hit traffic is
  // visible in the counters, and the absent build spans are the point of the
  // warm-start 0-miss demonstration.
  ProgramArtifactPtr GetOrBuild(const State& state, uint64_t client_id = 0,
                                const Tracer* tracer = nullptr);

  // Installs a prebuilt artifact under (dag_hash, artifact->signature())
  // without counting a lookup: the artifact-store warm-start path. Keeps an
  // existing entry on collision (first insert wins, like racing builds) and
  // respects capacity (no-op at capacity 0). Returns true when inserted.
  // Thread-safe; a warm insert is result-invariant because artifacts are
  // pure functions of (DAG, steps) — only the miss counters change.
  bool WarmInsert(uint64_t dag_hash, ProgramArtifactPtr artifact);

  // Visits every resident artifact (snapshot capture). Per shard, the
  // entries are copied out under the shard lock and visited unlocked, so
  // concurrent lookups are never blocked on the visitor.
  void ForEach(const std::function<void(const ProgramArtifactPtr&)>& fn) const;

  size_t capacity() const { return capacity_; }
  // Current entry count across all shards.
  size_t size() const;
  ProgramCacheStats stats() const;
  // Exact counters for one nonzero client id (zero-initialized if the client
  // never looked anything up).
  ProgramCacheClientStats ClientStats(uint64_t client_id) const;

  // Mirrors the current counters into `registry` as gauges named
  // <prefix>.hits / .misses / .evictions / .cross_client_hits /
  // .warm_inserts / .size / .hit_rate.
  void ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const;

 private:
  struct Entry {
    ProgramArtifactPtr artifact;
    std::list<std::string>::iterator lru_it;
    // Nonzero client that inserted the entry (0 = anonymous builder).
    uint64_t builder_client = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  // front = most recently used
    std::unordered_map<std::string, Entry> map;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t cross_client_hits = 0;
    int64_t warm_inserts = 0;
    std::unordered_map<uint64_t, ProgramCacheClientStats> client_stats;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_PROGRAM_PROGRAM_CACHE_H_
