#include "src/program/program_artifact.h"

#include "src/dag/compute_dag.h"
#include "src/ir/state.h"

namespace ansor {

ProgramArtifact::ProgramArtifact(const State& state)
    : ProgramArtifact(state, StepSignature(state)) {}

ProgramArtifact::ProgramArtifact(const State& state, std::string signature,
                                 const Tracer* tracer)
    : signature_(std::move(signature)),
      task_id_(state.dag() != nullptr ? state.dag()->CanonicalHash() : 0),
      steps_(state.steps()) {
  TraceSpan build(tracer, "artifact_build", "program");
  Tracer nested = build.child();
  const Tracer* child = build.enabled() ? &nested : nullptr;
  {
    TraceSpan lower(child, "lower", "program");
    lowered_ = Lower(state);
  }
  lowering_ok_ = lowered_.ok;
  if (lowered_.ok) {
    TraceSpan extract(child, "extract_features", "program");
    features_ = ExtractFeatures(lowered_);
  }
  verifier_report_ = VerifyProgram(state, lowered_, child);
  structurally_legal_ = verifier_report_.legal();
  materialized_.store(true, std::memory_order_release);
}

ProgramArtifact::ProgramArtifact(
    std::shared_ptr<const ComputeDAG> dag, std::vector<Step> steps,
    std::string signature, FeatureMatrix features, bool lowering_ok,
    bool structurally_legal,
    const std::vector<std::pair<uint64_t, bool>>& resource_verdicts)
    : signature_(std::move(signature)),
      task_id_(dag != nullptr ? dag->CanonicalHash() : 0),
      steps_(std::move(steps)),
      dag_(std::move(dag)),
      features_(std::move(features)),
      lowering_ok_(lowering_ok),
      structurally_legal_(structurally_legal) {
  for (const auto& [fingerprint, passed] : resource_verdicts) {
    // Seed the memo with the snapshot's verdict summary: failed() is all the
    // search consults, so a pass/fail skeleton reproduces every filtering
    // decision without re-lowering. Diagnostics are only re-derived when a
    // consumer materializes the artifact and recomputes from scratch.
    auto verdict = std::make_shared<CheckVerdict>();
    verdict->verdict = passed ? VerifierVerdict::kPass : VerifierVerdict::kFail;
    if (!passed) {
      verdict->diagnostics.push_back("resource-limit failure (from snapshot)");
    }
    resources_.push_back(ResourceMemo{fingerprint, std::move(verdict)});
  }
}

void ProgramArtifact::Materialize() const {
  if (materialized_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(materialize_mu_);
  if (materialized_.load(std::memory_order_acquire)) {
    return;
  }
  // Replay + lower + verify: the same pure derivation the cold constructor
  // runs, so a materialized warm artifact is indistinguishable from a cold
  // build of the same (DAG, steps).
  State state = State::Replay(dag_.get(), steps_);
  lowered_ = Lower(state);
  verifier_report_ = VerifyProgram(state, lowered_);
  materialized_.store(true, std::memory_order_release);
}

const LoweredProgram& ProgramArtifact::lowered() const {
  Materialize();
  return lowered_;
}

const VerifierReport& ProgramArtifact::verifier_report() const {
  Materialize();
  return verifier_report_;
}

std::shared_ptr<const CheckVerdict> ProgramArtifact::resource_verdict(
    const MachineModel& machine, const Tracer* tracer) const {
  uint64_t fingerprint = machine.Fingerprint();
  {
    std::lock_guard<std::mutex> lock(resources_mu_);
    for (const ResourceMemo& memo : resources_) {
      if (memo.machine_fingerprint == fingerprint) {
        return memo.verdict;
      }
    }
  }
  // Computed outside the lock: the verdict is a pure function of
  // (program, machine), so a racing duplicate is identical and harmless.
  Materialize();
  auto verdict =
      std::make_shared<const CheckVerdict>(VerifyResources(lowered_, machine, tracer));
  std::lock_guard<std::mutex> lock(resources_mu_);
  for (const ResourceMemo& memo : resources_) {
    if (memo.machine_fingerprint == fingerprint) {
      return memo.verdict;
    }
  }
  resources_.push_back(ResourceMemo{fingerprint, verdict});
  return verdict;
}

std::vector<std::pair<uint64_t, bool>> ProgramArtifact::resource_verdict_summary() const {
  std::vector<std::pair<uint64_t, bool>> out;
  std::lock_guard<std::mutex> lock(resources_mu_);
  out.reserve(resources_.size());
  for (const ResourceMemo& memo : resources_) {
    // Skipped verdicts (failed lowering) carry no information worth
    // persisting; failed() is false for them either way.
    out.emplace_back(memo.machine_fingerprint, !memo.verdict->failed());
  }
  return out;
}

std::shared_ptr<const ScoredStages> ProgramArtifact::stage_scores(
    uint64_t model_id, uint64_t model_version) const {
  std::lock_guard<std::mutex> lock(scores_mu_);
  if (scores_ != nullptr && scores_->model_id == model_id &&
      scores_->model_version == model_version) {
    return scores_;
  }
  return nullptr;
}

void ProgramArtifact::set_stage_scores(std::shared_ptr<const ScoredStages> scores) const {
  std::lock_guard<std::mutex> lock(scores_mu_);
  scores_ = std::move(scores);
}

}  // namespace ansor
