#include "src/program/program_artifact.h"

#include "src/ir/state.h"

namespace ansor {

ProgramArtifact::ProgramArtifact(const State& state)
    : ProgramArtifact(state, StepSignature(state)) {}

ProgramArtifact::ProgramArtifact(const State& state, std::string signature)
    : signature_(std::move(signature)), lowered_(Lower(state)) {
  if (lowered_.ok) {
    features_ = ExtractFeatures(lowered_);
  }
  verifier_report_ = VerifyProgram(state, lowered_);
}

std::shared_ptr<const CheckVerdict> ProgramArtifact::resource_verdict(
    const MachineModel& machine) const {
  uint64_t fingerprint = machine.Fingerprint();
  {
    std::lock_guard<std::mutex> lock(resources_mu_);
    for (const ResourceMemo& memo : resources_) {
      if (memo.machine_fingerprint == fingerprint) {
        return memo.verdict;
      }
    }
  }
  // Computed outside the lock: the verdict is a pure function of
  // (program, machine), so a racing duplicate is identical and harmless.
  auto verdict = std::make_shared<const CheckVerdict>(VerifyResources(lowered_, machine));
  std::lock_guard<std::mutex> lock(resources_mu_);
  for (const ResourceMemo& memo : resources_) {
    if (memo.machine_fingerprint == fingerprint) {
      return memo.verdict;
    }
  }
  resources_.push_back(ResourceMemo{fingerprint, verdict});
  return verdict;
}

std::shared_ptr<const ScoredStages> ProgramArtifact::stage_scores(
    uint64_t model_id, uint64_t model_version) const {
  std::lock_guard<std::mutex> lock(scores_mu_);
  if (scores_ != nullptr && scores_->model_id == model_id &&
      scores_->model_version == model_version) {
    return scores_;
  }
  return nullptr;
}

void ProgramArtifact::set_stage_scores(std::shared_ptr<const ScoredStages> scores) const {
  std::lock_guard<std::mutex> lock(scores_mu_);
  scores_ = std::move(scores);
}

}  // namespace ansor
