#include "src/program/program_cache.h"

#include <algorithm>

#include "src/dag/compute_dag.h"
#include "src/ir/state.h"
#include "src/support/util.h"

namespace ansor {
namespace {

// Content address: the DAG's canonical hash (states of different tasks with
// identical step lists must not alias) plus the step signature. The
// signature's offset within the key is returned through `sig_offset` so a
// miss can reuse it for the artifact without recomputing.
std::string CacheKey(const State& state, size_t* sig_offset) {
  std::string key = std::to_string(state.dag()->CanonicalHash());
  key += '|';
  *sig_offset = key.size();
  key += StepSignature(state);
  return key;
}

}  // namespace

ProgramCache::ProgramCache(size_t capacity, size_t num_shards)
    : capacity_(capacity), shards_(std::max<size_t>(1, num_shards)) {
  per_shard_capacity_ =
      capacity_ == 0 ? 0
                     : std::max<size_t>(1, static_cast<size_t>(CeilDiv(
                                               static_cast<int64_t>(capacity_),
                                               static_cast<int64_t>(shards_.size()))));
}

ProgramCache::Shard& ProgramCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>()(key) % shards_.size()];
}

ProgramArtifactPtr ProgramCache::GetOrBuild(const State& state, uint64_t client_id,
                                            const Tracer* tracer) {
  if (state.failed()) {
    return std::make_shared<const ProgramArtifact>(state);
  }
  size_t sig_offset = 0;
  std::string key = CacheKey(state, &sig_offset);
  Shard& shard = ShardFor(key);
  if (capacity_ == 0) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.misses;
      if (client_id != 0) {
        ++shard.client_stats[client_id].lookups;
      }
    }
    return std::make_shared<const ProgramArtifact>(state, key.substr(sig_offset), tracer);
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      if (client_id != 0) {
        ProgramCacheClientStats& cs = shard.client_stats[client_id];
        ++cs.lookups;
        ++cs.hits;
        if (it->second.builder_client != 0 && it->second.builder_client != client_id) {
          ++cs.cross_client_hits;
          ++shard.cross_client_hits;
        }
      }
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return it->second.artifact;
    }
    ++shard.misses;
    if (client_id != 0) {
      ++shard.client_stats[client_id].lookups;
    }
  }
  // Build outside the lock: lowering + feature extraction dominate, and two
  // threads racing on the same key build identical artifacts anyway.
  ProgramArtifactPtr artifact =
      std::make_shared<const ProgramArtifact>(state, key.substr(sig_offset), tracer);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // A racing thread inserted first; adopt its artifact so stage-score
    // memos accumulate on one shared object.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.artifact;
  }
  shard.lru.push_front(key);
  shard.map.emplace(key, Entry{artifact, shard.lru.begin(), client_id});
  while (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return artifact;
}

bool ProgramCache::WarmInsert(uint64_t dag_hash, ProgramArtifactPtr artifact) {
  if (capacity_ == 0 || artifact == nullptr) {
    return false;
  }
  std::string key = std::to_string(dag_hash);
  key += '|';
  key += artifact->signature();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.find(key) != shard.map.end()) {
    // First insert wins, same as racing builds: any resident entry is
    // already the canonical artifact for this key.
    return false;
  }
  shard.lru.push_front(key);
  shard.map.emplace(key, Entry{std::move(artifact), shard.lru.begin(), 0});
  ++shard.warm_inserts;
  while (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return true;
}

void ProgramCache::ForEach(const std::function<void(const ProgramArtifactPtr&)>& fn) const {
  for (const Shard& shard : shards_) {
    std::vector<ProgramArtifactPtr> resident;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      resident.reserve(shard.map.size());
      for (const auto& [key, entry] : shard.map) {
        resident.push_back(entry.artifact);
      }
    }
    for (const ProgramArtifactPtr& artifact : resident) {
      fn(artifact);
    }
  }
}

size_t ProgramCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

ProgramCacheStats ProgramCache::stats() const {
  ProgramCacheStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.cross_client_hits += shard.cross_client_hits;
    out.warm_inserts += shard.warm_inserts;
  }
  return out;
}

void ProgramCache::ExportMetrics(MetricsRegistry* registry, const std::string& prefix) const {
  ProgramCacheStats s = stats();
  registry->SetGauge(prefix + ".hits", static_cast<double>(s.hits));
  registry->SetGauge(prefix + ".misses", static_cast<double>(s.misses));
  registry->SetGauge(prefix + ".evictions", static_cast<double>(s.evictions));
  registry->SetGauge(prefix + ".cross_client_hits", static_cast<double>(s.cross_client_hits));
  registry->SetGauge(prefix + ".warm_inserts", static_cast<double>(s.warm_inserts));
  registry->SetGauge(prefix + ".size", static_cast<double>(size()));
  registry->SetGauge(prefix + ".hit_rate", s.HitRate(), "ratio");
}

ProgramCacheClientStats ProgramCache::ClientStats(uint64_t client_id) const {
  ProgramCacheClientStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.client_stats.find(client_id);
    if (it != shard.client_stats.end()) {
      out.lookups += it->second.lookups;
      out.hits += it->second.hits;
      out.cross_client_hits += it->second.cross_client_hits;
    }
  }
  return out;
}

}  // namespace ansor
