// One compiled candidate program, content-addressed by its step signature.
//
// The search loop compiles the same program many times over: the evolution
// scores a population, crossover scores its parents, the measurer lowers the
// chosen candidates, the tuner re-extracts their features for cost-model
// training, and the core API re-lowers the winner to print it. A
// ProgramArtifact bundles everything those consumers need — the lowered loop
// tree, the per-statement feature matrix with per-row stage names, and a
// memo of per-stage cost-model scores — so each distinct program is compiled
// once per task and served from the ProgramCache thereafter.
//
// Artifacts also carry the static verifier's report (computed once at
// construction) so legality of a distinct program is proven exactly once per
// task, however many times the search re-encounters it.
//
// Artifacts are immutable after construction except for two memos: the
// stage-score memo, stamped with the (model id, model version) it was
// computed under, and the per-machine resource-check memo, keyed by
// MachineModel fingerprint. Both are pure functions of (program, stamp), so
// serving them from the cache is bit-identical to recomputing them, and a
// cost-model retrain (version bump) invalidates the former automatically.
#ifndef ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_
#define ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/program_verifier.h"
#include "src/features/feature_extraction.h"
#include "src/lower/loop_tree.h"

namespace ansor {

// Per-stage score sums for one program, stamped with the cost-model instance
// and version that produced them. A stamp mismatch reads as absent.
struct ScoredStages {
  uint64_t model_id = 0;
  uint64_t model_version = 0;
  std::unordered_map<std::string, double> scores;
};

class ProgramArtifact {
 public:
  // Lowers the state and, on success, extracts its feature matrix. A state
  // whose lowering fails still yields an artifact (ok() == false, empty
  // features) so consumers have one code path.
  explicit ProgramArtifact(const State& state);
  // As above with the StepSignature already computed (the ProgramCache hands
  // over the one it derived the cache key from).
  ProgramArtifact(const State& state, std::string signature);

  ProgramArtifact(const ProgramArtifact&) = delete;
  ProgramArtifact& operator=(const ProgramArtifact&) = delete;

  // Lowering validity: false means lowered().error holds the diagnostic.
  bool ok() const { return lowered_.ok; }
  // The state's StepSignature — the content address within one DAG.
  const std::string& signature() const { return signature_; }
  const LoweredProgram& lowered() const { return lowered_; }
  // Flat feature matrix, one row per innermost store statement (with its
  // owning stage name attached); empty when ok() is false.
  const FeatureMatrix& features() const { return features_; }
  // Owning stage name of each feature row (node-based crossover scoring).
  const std::vector<std::string>& row_stages() const { return features_.row_stages(); }

  // The static verifier's machine-independent report (lowering, buffer
  // bounds, iterator domains, def-before-use), computed once at construction
  // — so the ProgramCache pays for verification once per distinct program.
  const VerifierReport& verifier_report() const { return verifier_report_; }

  // Machine-dependent resource verdict, memoized per MachineModel
  // fingerprint under the same once-per-artifact discipline as the
  // stage-score memo. Thread-safe; the returned snapshot is immutable.
  std::shared_ptr<const CheckVerdict> resource_verdict(const MachineModel& machine) const;

  // True when every evaluated check passed: the structural report is legal
  // and, if a machine is given, its resource verdict is too.
  bool statically_legal(const MachineModel* machine = nullptr) const {
    return verifier_report_.legal() && (machine == nullptr || !resource_verdict(*machine)->failed());
  }

  // The stage-score memo if it matches the given model stamp, else nullptr.
  // Thread-safe; the returned snapshot is immutable.
  std::shared_ptr<const ScoredStages> stage_scores(uint64_t model_id,
                                                   uint64_t model_version) const;
  // Installs a new memo (replacing any stale one). Thread-safe. Const because
  // cached artifacts are shared as pointers-to-const; the memo is a
  // deterministic derivative, not a semantic mutation.
  void set_stage_scores(std::shared_ptr<const ScoredStages> scores) const;

 private:
  std::string signature_;
  LoweredProgram lowered_;
  FeatureMatrix features_;
  VerifierReport verifier_report_;

  mutable std::mutex scores_mu_;
  mutable std::shared_ptr<const ScoredStages> scores_;

  struct ResourceMemo {
    uint64_t machine_fingerprint = 0;
    std::shared_ptr<const CheckVerdict> verdict;
  };
  mutable std::mutex resources_mu_;
  mutable std::vector<ResourceMemo> resources_;
};

using ProgramArtifactPtr = std::shared_ptr<const ProgramArtifact>;

}  // namespace ansor

#endif  // ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_
