// One compiled candidate program, content-addressed by its step signature.
//
// The search loop compiles the same program many times over: the evolution
// scores a population, crossover scores its parents, the measurer lowers the
// chosen candidates, the tuner re-extracts their features for cost-model
// training, and the core API re-lowers the winner to print it. A
// ProgramArtifact bundles everything those consumers need — the lowered loop
// tree, the per-statement feature matrix with per-row stage names, and a
// memo of per-stage cost-model scores — so each distinct program is compiled
// once per task and served from the ProgramCache thereafter.
//
// Artifacts also carry the static verifier's report (computed once at
// construction) so legality of a distinct program is proven exactly once per
// task, however many times the search re-encounters it.
//
// Artifacts come in two flavors:
//  * Cold (from a State): lowered, feature-extracted and verified eagerly at
//    construction — the search's normal path.
//  * Warm (from a persisted snapshot, src/store/artifact_store.h): the
//    signature, steps, features, and verdict summary are restored directly;
//    the loop tree and full verifier report are re-derived lazily by
//    replaying the steps on the DAG the first time a consumer actually needs
//    them. Population scoring and static filtering — the bulk of a resumed
//    run's traffic — read only features and verdicts, so a warm-started
//    search recompiles nothing it has already seen. Laziness is invisible:
//    every accessor returns exactly what the cold construction would have.
//
// Artifacts are immutable after construction except for two memos: the
// stage-score memo, stamped with the (model id, model version) it was
// computed under, and the per-machine resource-check memo, keyed by
// MachineModel fingerprint. Both are pure functions of (program, stamp), so
// serving them from the cache is bit-identical to recomputing them, and a
// cost-model retrain (version bump) invalidates the former automatically.
#ifndef ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_
#define ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/analysis/program_verifier.h"
#include "src/features/feature_extraction.h"
#include "src/ir/steps.h"
#include "src/lower/loop_tree.h"
#include "src/telemetry/trace.h"

namespace ansor {

class ComputeDAG;

// Per-stage score sums for one program, stamped with the cost-model instance
// and version that produced them. A stamp mismatch reads as absent.
struct ScoredStages {
  uint64_t model_id = 0;
  uint64_t model_version = 0;
  std::unordered_map<std::string, double> scores;
};

class ProgramArtifact {
 public:
  // Lowers the state and, on success, extracts its feature matrix. A state
  // whose lowering fails still yields an artifact (ok() == false, empty
  // features) so consumers have one code path.
  explicit ProgramArtifact(const State& state);
  // As above with the StepSignature already computed (the ProgramCache hands
  // over the one it derived the cache key from). A non-null `tracer` records
  // the compile as an "artifact_build" span with "lower", "extract_features"
  // and "verify_structural" children.
  ProgramArtifact(const State& state, std::string signature,
                  const Tracer* tracer = nullptr);
  // Warm restore from a persisted snapshot: everything a scoring/filtering
  // consumer reads is handed over directly; lowering and the full verifier
  // report are re-derived on first demand by replaying `steps` on `dag`.
  // `resource_verdicts` seeds the per-machine memo with (fingerprint,
  // passed) summaries captured at snapshot time.
  ProgramArtifact(std::shared_ptr<const ComputeDAG> dag, std::vector<Step> steps,
                  std::string signature, FeatureMatrix features, bool lowering_ok,
                  bool structurally_legal,
                  const std::vector<std::pair<uint64_t, bool>>& resource_verdicts);

  ProgramArtifact(const ProgramArtifact&) = delete;
  ProgramArtifact& operator=(const ProgramArtifact&) = delete;

  // Lowering validity: false means lowered().error holds the diagnostic.
  bool ok() const { return lowering_ok_; }
  // The state's StepSignature — the content address within one DAG.
  const std::string& signature() const { return signature_; }
  // The producing DAG's canonical hash: the task-level half of the content
  // address (0 only for a default-constructed failed state with no DAG).
  uint64_t task_id() const { return task_id_; }
  // The program's step history (what a snapshot persists for lazy
  // re-lowering; empty for failed states, whose history is normalized away).
  const std::vector<Step>& steps() const { return steps_; }
  // The lowered loop tree. Materializes a warm artifact on first call.
  const LoweredProgram& lowered() const;
  // Flat feature matrix, one row per innermost store statement (with its
  // owning stage name attached); empty when ok() is false.
  const FeatureMatrix& features() const { return features_; }
  // Owning stage name of each feature row (node-based crossover scoring).
  const std::vector<std::string>& row_stages() const { return features_.row_stages(); }

  // The static verifier's machine-independent report (lowering, buffer
  // bounds, iterator domains, def-before-use). Materializes a warm artifact
  // on first call; statically_legal() does not (the summary flag is part of
  // the snapshot).
  const VerifierReport& verifier_report() const;

  // Machine-dependent resource verdict, memoized per MachineModel
  // fingerprint under the same once-per-artifact discipline as the
  // stage-score memo. Thread-safe; the returned snapshot is immutable. A
  // fingerprint outside the memo materializes a warm artifact. A non-null
  // `tracer` records the (uncached) consult as a "verify_resources" span;
  // memo hits record nothing.
  std::shared_ptr<const CheckVerdict> resource_verdict(const MachineModel& machine,
                                                       const Tracer* tracer = nullptr) const;

  // True when every evaluated check passed: the structural report is legal
  // and, if a machine is given, its resource verdict is too.
  bool statically_legal(const MachineModel* machine = nullptr,
                        const Tracer* tracer = nullptr) const {
    return structurally_legal_ &&
           (machine == nullptr || !resource_verdict(*machine, tracer)->failed());
  }

  // (fingerprint, passed) summary of every memoized resource verdict — what
  // an ArtifactStore snapshot persists so a warm resume re-checks nothing.
  std::vector<std::pair<uint64_t, bool>> resource_verdict_summary() const;

  // False only for a warm artifact that has not yet re-lowered (tests and
  // the zero-rebuild warm-start accounting).
  bool materialized() const { return materialized_.load(std::memory_order_acquire); }

  // The stage-score memo if it matches the given model stamp, else nullptr.
  // Thread-safe; the returned snapshot is immutable.
  std::shared_ptr<const ScoredStages> stage_scores(uint64_t model_id,
                                                   uint64_t model_version) const;
  // Installs a new memo (replacing any stale one). Thread-safe. Const because
  // cached artifacts are shared as pointers-to-const; the memo is a
  // deterministic derivative, not a semantic mutation.
  void set_stage_scores(std::shared_ptr<const ScoredStages> scores) const;

 private:
  // Replays steps_ on dag_ and derives lowered_ + verifier_report_ (warm
  // artifacts only; cold ones are born materialized). Idempotent and
  // thread-safe; the result is a pure function of (dag, steps), so a warm
  // artifact after materialization is bit-identical to a cold build.
  void Materialize() const;

  std::string signature_;
  uint64_t task_id_ = 0;
  std::vector<Step> steps_;
  std::shared_ptr<const ComputeDAG> dag_;  // held by warm artifacts for replay
  FeatureMatrix features_;
  bool lowering_ok_ = false;
  bool structurally_legal_ = false;

  mutable std::atomic<bool> materialized_{false};
  mutable std::mutex materialize_mu_;
  mutable LoweredProgram lowered_;
  mutable VerifierReport verifier_report_;

  mutable std::mutex scores_mu_;
  mutable std::shared_ptr<const ScoredStages> scores_;

  struct ResourceMemo {
    uint64_t machine_fingerprint = 0;
    std::shared_ptr<const CheckVerdict> verdict;
  };
  mutable std::mutex resources_mu_;
  mutable std::vector<ResourceMemo> resources_;
};

using ProgramArtifactPtr = std::shared_ptr<const ProgramArtifact>;

}  // namespace ansor

#endif  // ANSOR_SRC_PROGRAM_PROGRAM_ARTIFACT_H_
