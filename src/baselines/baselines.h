// Baseline program generators used in the paper's evaluation (§7):
//
//  * VendorLibrary — stands in for MKL-DNN / CuDNN / Eigen behind the
//    PyTorch / TensorFlow / TF-Lite bars: one deterministic expert schedule
//    per operator class, strong but not shape-specialized.
//  * TemplateSearch — stands in for AutoTVM (and, with fusion disabled and a
//    fixed unroll policy, FlexTensor): a restricted manually-templated
//    structure space with parameter search over the same measurer.
//  * BeamSearch — stands in for the Halide auto-scheduler and the paper's
//    Fig. 7 "Beam search" ablation: sequential per-node construction with
//    top-k pruning of *incomplete* programs using the learned cost model.
#ifndef ANSOR_SRC_BASELINES_BASELINES_H_
#define ANSOR_SRC_BASELINES_BASELINES_H_

#include "src/search/search_policy.h"

namespace ansor {

// --- Vendor library ----------------------------------------------------------

// Deterministic expert schedule: multi-level tiling with power-of-two tiles,
// fused+parallel outer loops, vectorized innermost loop, moderate unroll.
// Returns infinity seconds if no valid schedule applies.
TuneResult VendorLibrary(const SearchTask& task, Measurer* measurer);

// --- Template-guided search (AutoTVM / FlexTensor) ---------------------------

struct TemplateSearchOptions {
  // Target the GPU annotation templates (thread binding) instead of the CPU
  // ones (parallel/vectorize).
  bool gpu = false;
  // FlexTensor mode: single-operator templates, no consumer fusion, fixed
  // unrolling policy (paper §7.1).
  bool enable_fusion = true;
  int fixed_unroll = 16;
  // Tiling depth of the manual template (AutoTVM templates are typically
  // shallower than Ansor's SSRSRS).
  int space_levels = 3;
  int reduce_levels = 2;
  int measures_per_round = 16;
  uint64_t seed = 7;
};

// Random parameter search plus hill-climbing mutations within the template
// space, spending `num_measure_trials` measurements.
TuneResult TemplateSearch(const SearchTask& task, Measurer* measurer,
                          int num_measure_trials,
                          TemplateSearchOptions options = TemplateSearchOptions());

// --- Beam search (Halide auto-scheduler style) --------------------------------

struct BeamSearchOptions {
  int beam_width = 8;
  // Tile-size samples drawn per rule expansion.
  int expansions_per_state = 4;
  int measures_per_round = 16;
  uint64_t seed = 13;
  SketchOptions sketch;
  SamplerOptions sampler;
};

// Sequential construction: nodes are unfolded one at a time; after each node
// the candidate set is pruned to `beam_width` using cost-model scores of the
// still-incomplete programs. Completed programs are measured and train the
// model. This reproduces the failure mode of §2/Fig. 7: the model, trained on
// complete programs, misjudges incomplete ones and prunes good candidates.
TuneResult BeamSearch(const SearchTask& task, Measurer* measurer, CostModel* model,
                      int num_measure_trials,
                      BeamSearchOptions options = BeamSearchOptions());

}  // namespace ansor

#endif  // ANSOR_SRC_BASELINES_BASELINES_H_
