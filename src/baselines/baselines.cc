#include "src/baselines/baselines.h"

#include <algorithm>

#include "src/evolution/evolution.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"
#include "src/support/util.h"

namespace ansor {
namespace {

// Deterministically fills pending SplitSteps with the vendor library's FIXED
// blocking: `inner_cap` innermost, 4 at the next level. Real vendor kernels
// ship one blocking per ISA, not per shape — when the fixed size does not
// divide the extent the lowered code pays guard/remainder costs, which is
// exactly where shape-adaptive search wins (paper §7.1).
State FillTileSizesHeuristic(const State& sketch, const ComputeDAG* dag, int64_t inner_cap) {
  State state(dag);
  for (Step step : sketch.steps()) {
    if (step.kind == StepKind::kSplit) {
      int stage_idx = state.StageIndex(step.stage);
      if (stage_idx < 0) {
        return state;
      }
      int64_t remaining =
          state.stage(stage_idx).iters[static_cast<size_t>(step.iter)].extent;
      for (size_t j = step.lengths.size(); j > 0; --j) {
        int64_t cap = j == step.lengths.size() ? inner_cap : 4;
        int64_t pick = std::min(cap, remaining);
        step.lengths[j - 1] = pick;
        remaining = std::max<int64_t>(1, remaining / pick);
      }
      if (!state.Split(step.stage, step.iter, step.lengths)) {
        return state;
      }
      continue;
    }
    switch (step.kind) {
      case StepKind::kFollowSplit:
        if (!state.FollowSplit(step.stage, step.iter, step.src_step, step.n_parts))
          return state;
        break;
      case StepKind::kFuse:
        if (!state.Fuse(step.stage, step.iter, step.fuse_count)) return state;
        break;
      case StepKind::kReorder:
        if (!state.Reorder(step.stage, step.order)) return state;
        break;
      case StepKind::kComputeAt:
        if (!state.ComputeAt(step.stage, step.target_stage, step.target_iter)) return state;
        break;
      case StepKind::kComputeInline:
        if (!state.ComputeInline(step.stage)) return state;
        break;
      case StepKind::kComputeRoot:
        if (!state.ComputeRoot(step.stage)) return state;
        break;
      case StepKind::kCacheWrite:
        if (!state.CacheWrite(step.stage, nullptr)) return state;
        break;
      case StepKind::kRfactor:
        if (!state.Rfactor(step.stage, step.iter, nullptr)) return state;
        break;
      case StepKind::kAnnotation:
        if (!state.Annotate(step.stage, step.iter, step.annotation)) return state;
        break;
      case StepKind::kPragma:
        if (!state.Pragma(step.stage, step.pragma_value)) return state;
        break;
      case StepKind::kSplit:
        break;
    }
  }
  return state;
}

// Deterministic expert annotation. CPU: fuse+parallel outer space loops of
// every root stage, vectorize the innermost loop, unroll pragma 16. GPU:
// fuse all outer space loops, split off 256 threads, bind block/thread.
void AnnotateExpert(State* state, bool gpu) {
  std::vector<std::pair<std::string, bool>> stages;
  for (const Stage& s : state->stages()) {
    if (s.loc.kind == ComputeLocKind::kInlined) {
      continue;
    }
    stages.emplace_back(s.name(), s.loc.kind == ComputeLocKind::kRoot);
  }
  for (const auto& [name, is_root] : stages) {
    int idx = state->StageIndex(name);
    const Stage& snapshot = state->stage(idx);
    if (is_root) {
      int leading = 0;
      for (const Iterator& it : snapshot.iters) {
        if (it.kind != IterKind::kSpace) {
          break;
        }
        ++leading;
      }
      if (gpu) {
        // GPU kernel: fuse everything, peel 256 threads, bind.
        if (leading > 1) {
          state->Fuse(name, 0, leading);
        }
        if (leading >= 1) {
          int idx_now = state->StageIndex(name);
          int64_t fused = state->stage(idx_now).iters[0].extent;
          if (fused % 256 == 0) {
            state->Split(name, 0, {256});
            state->Annotate(name, 0, IterAnnotation::kBlockX);
            state->Annotate(name, 1, IterAnnotation::kThreadX);
          } else {
            state->Annotate(name, 0, IterAnnotation::kBlockX);
          }
        }
      } else {
        // Fuse enough leading space loops to feed all cores (vendor kernels
        // parallelize aggressively over batch/channel/row dimensions).
        int n_fuse = 0;
        int64_t extent = 1;
        while (n_fuse < leading && extent < 256) {
          extent *= snapshot.iters[static_cast<size_t>(n_fuse)].extent;
          ++n_fuse;
        }
        if (n_fuse > 1) {
          state->Fuse(name, 0, n_fuse);
        }
        if (n_fuse >= 1) {
          state->Annotate(name, 0, IterAnnotation::kParallel);
        }
      }
    }
    idx = state->StageIndex(name);
    const Stage& current = state->stage(idx);
    if (!gpu && !current.iters.empty()) {
      int last = static_cast<int>(current.iters.size()) - 1;
      if (current.iters[static_cast<size_t>(last)].annotation == IterAnnotation::kNone &&
          current.iters[static_cast<size_t>(last)].extent >= 2) {
        state->Annotate(name, last, IterAnnotation::kVectorize);
      }
    }
    if (HasReduce(state->stage(state->StageIndex(name)).op->body)) {
      state->Pragma(name, 16);
    }
  }
}

}  // namespace

TuneResult VendorLibrary(const SearchTask& task, Measurer* measurer) {
  TuneResult result;
  SketchOptions sketch_options;
  auto sketches = GenerateSketches(task.dag.get(), sketch_options);
  // The library ships a few fixed kernels (different register blockings);
  // pick the best of a small fixed set — no shape-specific search.
  for (const State& sketch : sketches) {
    for (int64_t inner_cap : {8, 16}) {
      State state = FillTileSizesHeuristic(sketch, task.dag.get(), inner_cap);
      if (state.failed()) {
        continue;
      }
      AnnotateExpert(&state, measurer->machine().kind == MachineKind::kGpu);
      if (state.failed()) {
        continue;
      }
      MeasureResult r = measurer->Measure(state);
      if (r.valid && r.seconds < result.best_seconds) {
        result.best_seconds = r.seconds;
        result.best_throughput = r.throughput;
        result.best_state = state;
        result.best_state->RetainDag(task.dag);
      }
    }
  }
  return result;
}

TuneResult TemplateSearch(const SearchTask& task, Measurer* measurer,
                          int num_measure_trials, TemplateSearchOptions options) {
  TuneResult result;
  SketchOptions sketch_options;
  sketch_options.enable_fusion = options.enable_fusion;
  sketch_options.enable_cache_write = false;  // manual templates lack rule 5
  sketch_options.enable_rfactor = false;      // ... and rule 6 (§7.1 NRM case)
  sketch_options.space_levels = options.space_levels;
  sketch_options.reduce_levels = options.reduce_levels;
  auto sketches = GenerateSketches(task.dag.get(), sketch_options);
  if (sketches.empty()) {
    return result;
  }
  Rng rng(options.seed ^ task.task_id());
  SamplerOptions sampler;
  // Fixed unrolling policy; no random compute-location changes (the paper's
  // stated FlexTensor/AutoTVM limitations).
  sampler.gpu = options.gpu;
  sampler.unroll_options = {options.fixed_unroll};
  sampler.location_tweak_probability = 0.0;

  int64_t trials = 0;
  std::vector<std::pair<double, State>> pool;  // measured (seconds, state)
  while (trials < num_measure_trials) {
    std::vector<State> batch;
    int want = static_cast<int>(
        std::min<int64_t>(options.measures_per_round, num_measure_trials - trials));
    // Half random template instantiations, half hill-climbing mutations of
    // the best known configurations (simulated-annealing flavor).
    int attempts = 0;
    while (static_cast<int>(batch.size()) < want && attempts < want * 8) {
      ++attempts;
      if (!pool.empty() && rng.Bernoulli(0.5)) {
        // Tile-size mutation of a good configuration.
        RandomCostModel dummy;
        EvolutionOptions evo;
        evo.sampler = sampler;
        EvolutionarySearch es(task.dag.get(), &dummy, rng.Fork(), evo);
        size_t pick = rng.Index(std::min<size_t>(pool.size(), 4));
        State mutated = es.MutateTileSize(pool[pick].second);
        if (!mutated.failed()) {
          batch.push_back(std::move(mutated));
        }
      } else {
        State s = SampleCompleteProgram(sketches[rng.Index(sketches.size())],
                                        task.dag.get(), &rng, sampler);
        if (!s.failed()) {
          batch.push_back(std::move(s));
        }
      }
    }
    if (batch.empty()) {
      break;
    }
    auto results = measurer->MeasureBatch(batch);
    trials += static_cast<int64_t>(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!results[i].valid) {
        continue;
      }
      pool.emplace_back(results[i].seconds, batch[i]);
      if (results[i].seconds < result.best_seconds) {
        result.best_seconds = results[i].seconds;
        result.best_throughput = results[i].throughput;
        result.best_state = batch[i];
        result.best_state->RetainDag(task.dag);
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (pool.size() > 8) {
      pool.resize(8);
    }
    result.history.emplace_back(trials, result.best_seconds);
  }
  return result;
}

TuneResult BeamSearch(const SearchTask& task, Measurer* measurer, CostModel* model,
                      int num_measure_trials, BeamSearchOptions options) {
  TuneResult result;
  Rng rng(options.seed ^ task.task_id());

  std::vector<SketchRule> rules = {RuleAlwaysInline(), RuleAddRfactor(),
                                   RuleMultiLevelTilingWithFusion(), RuleAddCacheStage(),
                                   RuleMultiLevelTiling(), RuleSkip()};

  int64_t trials = 0;
  while (trials < num_measure_trials) {
    // One pass of sequential construction over the DAG nodes.
    State init(task.dag.get());
    int last = static_cast<int>(init.stages().size()) - 1;
    std::vector<std::pair<State, int>> beam;
    beam.emplace_back(std::move(init), last);

    bool active = true;
    while (active) {
      active = false;
      std::vector<std::pair<State, int>> expanded;
      for (auto& [state, i] : beam) {
        if (i < 0) {
          expanded.emplace_back(std::move(state), i);
          continue;
        }
        active = true;
        for (const SketchRule& rule : rules) {
          if (!rule.condition(state, i, AnalysisConfig())) {
            continue;
          }
          for (auto& [next, next_i] : rule.apply(state, i)) {
            // Make the decisions for this node concrete immediately: sample
            // tile sizes for the freshly added pending splits.
            for (int e = 0; e < options.expansions_per_state; ++e) {
              State filled = SampleTileSizes(next, task.dag.get(), &rng, options.sampler);
              if (!filled.failed()) {
                expanded.emplace_back(std::move(filled), next_i);
              }
            }
          }
          if (rule.exclusive) {
            break;
          }
        }
      }
      if (expanded.empty()) {
        break;
      }
      // Prune incomplete programs with the cost model (the paper's §2
      // failure mode: the model was trained on complete programs only).
      std::vector<FeatureMatrix> features(expanded.size());
      for (size_t e = 0; e < expanded.size(); ++e) {
        features[e] = ExtractStateFeatures(expanded[e].first);
      }
      std::vector<double> scores = model->Predict(features);
      std::vector<size_t> order(expanded.size());
      for (size_t e = 0; e < order.size(); ++e) {
        order[e] = e;
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return scores[a] > scores[b]; });
      std::vector<std::pair<State, int>> pruned;
      for (size_t e = 0; e < order.size() &&
                         pruned.size() < static_cast<size_t>(options.beam_width);
           ++e) {
        pruned.push_back(std::move(expanded[order[e]]));
      }
      beam = std::move(pruned);
    }

    // Annotate survivors, measure, train the model on the completed programs.
    std::vector<State> to_measure;
    for (auto& [state, i] : beam) {
      State annotated = state;
      AnnotateState(&annotated, &rng, options.sampler);
      if (!annotated.failed()) {
        to_measure.push_back(std::move(annotated));
      }
      if (static_cast<int>(to_measure.size()) >=
          static_cast<int>(std::min<int64_t>(options.measures_per_round,
                                             num_measure_trials - trials))) {
        break;
      }
    }
    if (to_measure.empty()) {
      break;
    }
    auto results = measurer->MeasureBatch(to_measure);
    trials += static_cast<int64_t>(to_measure.size());
    std::vector<FeatureMatrix> features(to_measure.size());
    std::vector<double> throughputs(to_measure.size(), 0.0);
    for (size_t i = 0; i < to_measure.size(); ++i) {
      features[i] = ExtractStateFeatures(to_measure[i]);
      if (results[i].valid) {
        throughputs[i] = results[i].throughput;
        if (results[i].seconds < result.best_seconds) {
          result.best_seconds = results[i].seconds;
          result.best_throughput = results[i].throughput;
          result.best_state = to_measure[i];
          result.best_state->RetainDag(task.dag);
        }
      }
    }
    model->Update(task.task_id(), features, throughputs);
    result.history.emplace_back(trials, result.best_seconds);
  }
  return result;
}

}  // namespace ansor
