#include "src/features/feature_matrix.h"

#include <cstring>

#include "src/support/logging.h"

namespace ansor {

void FeatureMatrix::Reserve(size_t n_rows) {
  data_.reserve(n_rows * dim_);
  row_stages_.reserve(n_rows);
}

float* FeatureMatrix::AddRow(std::string stage) {
  CHECK_GT(dim_, 0u);
  data_.resize(data_.size() + dim_, 0.0f);
  row_stages_.push_back(std::move(stage));
  return data_.data() + data_.size() - dim_;
}

void FeatureMatrix::AppendRow(const std::vector<float>& values, std::string stage) {
  AppendRow(values.data(), values.size(), std::move(stage));
}

void FeatureMatrix::AppendRow(const float* values, size_t n, std::string stage) {
  if (dim_ == 0 && data_.empty()) {
    dim_ = n;
  }
  CHECK_EQ(n, dim_);
  CHECK_GT(n, 0u);
  data_.insert(data_.end(), values, values + n);
  row_stages_.push_back(std::move(stage));
}

void FeatureMatrix::AppendMatrix(const FeatureMatrix& other) {
  if (other.empty()) {
    return;
  }
  if (dim_ == 0 && data_.empty()) {
    dim_ = other.dim_;
  }
  CHECK_EQ(other.dim_, dim_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  row_stages_.insert(row_stages_.end(), other.row_stages_.begin(), other.row_stages_.end());
}

void FeatureMatrix::Clear() {
  data_.clear();
  row_stages_.clear();
}

std::vector<std::vector<float>> FeatureMatrix::ToRows() const {
  std::vector<std::vector<float>> out;
  out.reserve(rows());
  for (size_t r = 0; r < rows(); ++r) {
    out.emplace_back(row(r), row(r) + dim_);
  }
  return out;
}

FeatureMatrix FeatureMatrix::FromRows(const std::vector<std::vector<float>>& rows) {
  FeatureMatrix m;
  for (const auto& r : rows) {
    m.AppendRow(r);
  }
  return m;
}

}  // namespace ansor
