#include "src/features/feature_extraction.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/analysis/access_pattern.h"
#include "src/dag/compute_dag.h"
#include "src/support/logging.h"

namespace ansor {
namespace {

constexpr int kNumBufferSlots = 5;
constexpr int kIntensitySamples = 10;
constexpr double kBytesPerElement = 4.0;

double Log2p1(double x) { return std::log2(1.0 + std::max(0.0, x)); }

// Loop position categories (Appendix B: InnerSpatial .. Mixed, None).
enum PositionType {
  kPosInnerSpatial = 0,
  kPosMiddleSpatial,
  kPosOuterSpatial,
  kPosInnerReduce,
  kPosMiddleReduce,
  kPosOuterReduce,
  kPosMixed,
  kPosNone,
  kNumPositionTypes,
};

// Reuse categories.
enum ReuseType { kReuseLoopMultipleRead = 0, kReuseSerialMultipleRead, kReuseNone,
                 kNumReuseTypes };

struct ArithCounts {
  double f_add = 0, f_sub = 0, f_mul = 0, f_div = 0, f_mod = 0, f_cmp = 0, f_math = 0,
         f_select = 0, f_other = 0;
  double i_add = 0, i_sub = 0, i_mul = 0, i_div = 0, i_mod = 0, i_cmp = 0, i_other = 0;
};

// Counts arithmetic, separating float work from integer index arithmetic
// (everything inside Load index operands is integer address computation).
void CountArith(const Expr& e, bool in_index, ArithCounts* out) {
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kBinary: {
      double* slot = nullptr;
      switch (n.binary_op) {
        case BinaryOp::kAdd: slot = in_index ? &out->i_add : &out->f_add; break;
        case BinaryOp::kSub: slot = in_index ? &out->i_sub : &out->f_sub; break;
        case BinaryOp::kMul: slot = in_index ? &out->i_mul : &out->f_mul; break;
        case BinaryOp::kDiv: slot = in_index ? &out->i_div : &out->f_div; break;
        case BinaryOp::kMod: slot = in_index ? &out->i_mod : &out->f_mod; break;
        case BinaryOp::kMin:
        case BinaryOp::kMax: slot = in_index ? &out->i_other : &out->f_other; break;
        default: slot = in_index ? &out->i_cmp : &out->f_cmp; break;
      }
      *slot += 1.0;
      break;
    }
    case ExprKind::kCall:
      out->f_math += 1.0;
      break;
    case ExprKind::kSelect:
      out->f_select += 1.0;
      break;
    default:
      break;
  }
  if (n.kind == ExprKind::kLoad) {
    for (const Expr& idx : n.operands) {
      CountArith(idx, /*in_index=*/true, out);
    }
    return;
  }
  if (n.kind == ExprKind::kSelect) {
    CountArith(n.operands[0], /*in_index=*/true, out);  // condition: integer work
    CountArith(n.operands[1], in_index, out);
    CountArith(n.operands[2], in_index, out);
    return;
  }
  for (const Expr& operand : n.operands) {
    CountArith(operand, in_index, out);
  }
}

struct LoopInfo {
  const LoopTreeNode* loop;
  int64_t extent;
};

int PositionOf(size_t index, const std::vector<LoopInfo>& stack) {
  if (stack.empty()) {
    return kPosNone;
  }
  const LoopInfo& info = stack[index];
  bool is_reduce = info.loop->iter_kind == IterKind::kReduce;
  size_t depth = stack.size();
  // Inner third / middle third / outer third of the nest.
  double rel = depth <= 1 ? 1.0 : static_cast<double>(index) / static_cast<double>(depth - 1);
  if (rel >= 0.67) {
    return is_reduce ? kPosInnerReduce : kPosInnerSpatial;
  }
  if (rel >= 0.34) {
    return is_reduce ? kPosMiddleReduce : kPosMiddleSpatial;
  }
  return is_reduce ? kPosOuterReduce : kPosOuterSpatial;
}

class FeatureBuilder {
 public:
  FeatureBuilder(const LoweredProgram& program, std::vector<std::string>* row_stages)
      : program_(program), row_stages_(row_stages) {}

  std::vector<std::vector<float>> Run() {
    for (const LoopTreeNodeRef& root : program_.roots) {
      Walk(*root);
    }
    return std::move(rows_);
  }

 private:
  void Walk(const LoopTreeNode& node) {
    switch (node.kind) {
      case LoopTreeKind::kLoop:
        stack_.push_back({&node, node.extent});
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        stack_.pop_back();
        return;
      case LoopTreeKind::kIf:
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        return;
      case LoopTreeKind::kStore:
        rows_.push_back(BuildRow(node));
        if (row_stages_ != nullptr) {
          row_stages_->push_back(node.stage_name);
        }
        return;
    }
  }

  // Appends annotation-family features: innermost length, position one-hot,
  // product of lengths, count.
  void AnnotationFeatures(IterAnnotation ann, std::vector<float>* row) {
    double innermost_len = 0.0;
    int position = kPosNone;
    double product = 1.0;
    double count = 0.0;
    for (size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i].loop->annotation != ann) {
        continue;
      }
      count += 1.0;
      product *= static_cast<double>(stack_[i].extent);
      innermost_len = static_cast<double>(stack_[i].extent);
      position = PositionOf(i, stack_);
    }
    if (count == 0.0) {
      product = 0.0;
    }
    row->push_back(static_cast<float>(Log2p1(innermost_len)));
    for (int p = 0; p < kNumPositionTypes; ++p) {
      row->push_back(p == position ? 1.0f : 0.0f);
    }
    row->push_back(static_cast<float>(Log2p1(product)));
    row->push_back(static_cast<float>(count));
  }

  std::vector<float> BuildRow(const LoopTreeNode& store) {
    std::vector<float> row;
    row.reserve(FeatureDim());

    std::unordered_map<int64_t, int64_t> extents;
    for (const LoopInfo& f : stack_) {
      extents[f.loop->var->var_id] = f.extent;
    }

    // 1. Float / int arithmetic counts (16), scaled by iteration count of the
    //    whole statement so bigger statements score bigger.
    double iters = 1.0;
    for (const LoopInfo& f : stack_) {
      iters *= static_cast<double>(f.extent);
    }
    ArithCounts counts;
    if (store.value.defined()) {
      CountArith(store.value, false, &counts);
    }
    if (store.is_accumulate) {
      counts.f_add += 1.0;
    }
    for (double c : {counts.f_add, counts.f_sub, counts.f_mul, counts.f_div, counts.f_mod,
                     counts.f_cmp, counts.f_math, counts.f_select, counts.f_other,
                     counts.i_add, counts.i_sub, counts.i_mul, counts.i_div, counts.i_mod,
                     counts.i_cmp, counts.i_other}) {
      row.push_back(static_cast<float>(Log2p1(c * iters)));
    }

    // 2-4. Vectorization / unrolling / parallelization families (11 each).
    AnnotationFeatures(IterAnnotation::kVectorize, &row);
    AnnotationFeatures(IterAnnotation::kUnroll, &row);
    AnnotationFeatures(IterAnnotation::kParallel, &row);

    // 5. GPU thread binding lengths: blockIdx.x/y/z, threadIdx.x/y/z, vthread.
    double block_x = 0.0;
    double thread_x = 0.0;
    double vthread = 0.0;
    for (const LoopInfo& f : stack_) {
      if (f.loop->annotation == IterAnnotation::kBlockX) {
        block_x = block_x == 0.0 ? static_cast<double>(f.extent)
                                 : block_x * static_cast<double>(f.extent);
      }
      if (f.loop->annotation == IterAnnotation::kThreadX) {
        thread_x = thread_x == 0.0 ? static_cast<double>(f.extent)
                                   : thread_x * static_cast<double>(f.extent);
      }
      if (f.loop->annotation == IterAnnotation::kVThread) {
        vthread = vthread == 0.0 ? static_cast<double>(f.extent)
                                 : vthread * static_cast<double>(f.extent);
      }
    }
    row.push_back(static_cast<float>(Log2p1(block_x)));
    row.push_back(0.0f);  // blockIdx.y (not generated by this implementation)
    row.push_back(0.0f);  // blockIdx.z
    row.push_back(static_cast<float>(Log2p1(thread_x)));
    row.push_back(0.0f);  // threadIdx.y
    row.push_back(0.0f);  // threadIdx.z
    row.push_back(static_cast<float>(Log2p1(vthread)));

    // 6. Arithmetic intensity curve: 10 interpolated samples over loop depth.
    std::vector<AccessPattern> accesses = StatementAccesses(store, extents);
    size_t depth = stack_.size();
    double flops_per_iter =
        std::max(0.5, store.value.defined() ? ExprFlopCount(store.value) : 0.0);
    std::vector<double> intensity(depth == 0 ? 1 : depth, 0.0);
    {
      // unique bytes of loops >= d, summed over accesses.
      for (size_t d = 0; d < std::max<size_t>(depth, 1); ++d) {
        double inner_iters = 1.0;
        double bytes = 0.0;
        for (size_t j = d; j < depth; ++j) {
          inner_iters *= static_cast<double>(stack_[j].extent);
        }
        for (const AccessPattern& a : accesses) {
          double elements = 1.0;
          for (size_t j = d; j < depth; ++j) {
            int64_t vid = stack_[j].loop->var->var_id;
            if (!a.analyzable) {
              elements *= static_cast<double>(stack_[j].extent);
            } else if (std::fabs(a.StrideOf(vid)) > 0.0) {
              elements *=
                  static_cast<double>(std::min<int64_t>(stack_[j].extent, a.DistinctOf(vid)));
            }
          }
          bytes += elements * kBytesPerElement;
        }
        intensity[d] = (flops_per_iter * inner_iters) / std::max(bytes, 1.0);
      }
    }
    for (int s = 0; s < kIntensitySamples; ++s) {
      double pos = intensity.size() <= 1
                       ? 0.0
                       : static_cast<double>(s) / (kIntensitySamples - 1) *
                             static_cast<double>(intensity.size() - 1);
      size_t lo = static_cast<size_t>(pos);
      size_t hi = std::min(lo + 1, intensity.size() - 1);
      double frac = pos - static_cast<double>(lo);
      row.push_back(static_cast<float>(Log2p1(intensity[lo] * (1 - frac) + intensity[hi] * frac)));
    }

    // 7. Buffer access features: up to 5 buffers, 18 features each; merge
    //    multiple accesses to the same buffer, order by bytes descending.
    struct BufferFeat {
      double bytes = 0.0;
      double unique_bytes = 0.0;
      double lines = 0.0;
      double unique_lines = 0.0;
      int access_type = 0;  // bit 0 read, bit 1 write
      int reuse_type = kReuseNone;
      double reuse_distance_iters = 0.0;
      double reuse_distance_bytes = 0.0;
      double reuse_counter = 1.0;
      double stride = 0.0;
      int n_accesses = 0;
    };
    std::unordered_map<std::string, BufferFeat> buffer_feats;
    double line_elems = 16.0;  // 64B line / 4B elements
    for (const AccessPattern& a : accesses) {
      BufferFeat& bf = buffer_feats[a.buffer->name];
      bf.access_type |= a.is_write ? 2 : 1;
      bf.n_accesses += 1;
      bf.bytes += iters * kBytesPerElement;
      // Unique elements over the whole nest and innermost stride.
      double elements = 1.0;
      double min_stride = 0.0;
      for (size_t j = 0; j < depth; ++j) {
        int64_t vid = stack_[j].loop->var->var_id;
        double stride = a.analyzable ? std::fabs(a.StrideOf(vid)) : 1.0;
        if (!a.analyzable) {
          elements *= static_cast<double>(stack_[j].extent);
        } else if (stride > 0.0) {
          elements *= static_cast<double>(std::min<int64_t>(stack_[j].extent, a.DistinctOf(vid)));
        }
        if (j + 1 == depth) {
          min_stride = stride;
        }
      }
      bf.unique_bytes += elements * kBytesPerElement;
      double contiguous = min_stride > 0.0 && min_stride <= 2.0 ? 1.0 / line_elems : 1.0;
      bf.lines += std::max(1.0, iters * (min_stride == 0.0 ? 1.0 / line_elems : contiguous));
      bf.unique_lines += std::max(1.0, elements * contiguous / std::max(min_stride, 1.0));
      bf.stride = min_stride;
      // Reuse: innermost enclosing loop the access is invariant to.
      double dist_iters = 1.0;
      for (size_t j = depth; j > 0; --j) {
        int64_t vid = stack_[j - 1].loop->var->var_id;
        double stride = a.analyzable ? std::fabs(a.StrideOf(vid)) : 1.0;
        if (stride == 0.0 && stack_[j - 1].extent > 1) {
          bf.reuse_type = kReuseLoopMultipleRead;
          bf.reuse_distance_iters = dist_iters;
          bf.reuse_distance_bytes = std::min(elements, dist_iters) * kBytesPerElement;
          bf.reuse_counter = static_cast<double>(stack_[j - 1].extent);
          break;
        }
        dist_iters *= static_cast<double>(stack_[j - 1].extent);
      }
      if (bf.reuse_type == kReuseNone && bf.n_accesses > 1) {
        bf.reuse_type = kReuseSerialMultipleRead;
        bf.reuse_counter = bf.n_accesses;
      }
    }
    std::vector<std::pair<std::string, BufferFeat>> sorted(buffer_feats.begin(),
                                                           buffer_feats.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.bytes > b.second.bytes;
    });
    for (int slot = 0; slot < kNumBufferSlots; ++slot) {
      if (slot < static_cast<int>(sorted.size())) {
        const BufferFeat& bf = sorted[static_cast<size_t>(slot)].second;
        row.push_back(bf.access_type == 1 ? 1.0f : 0.0f);
        row.push_back(bf.access_type == 2 ? 1.0f : 0.0f);
        row.push_back(bf.access_type == 3 ? 1.0f : 0.0f);
        row.push_back(static_cast<float>(Log2p1(bf.bytes)));
        row.push_back(static_cast<float>(Log2p1(bf.unique_bytes)));
        row.push_back(static_cast<float>(Log2p1(bf.lines)));
        row.push_back(static_cast<float>(Log2p1(bf.unique_lines)));
        for (int r = 0; r < kNumReuseTypes; ++r) {
          row.push_back(r == bf.reuse_type ? 1.0f : 0.0f);
        }
        row.push_back(static_cast<float>(Log2p1(bf.reuse_distance_iters)));
        row.push_back(static_cast<float>(Log2p1(bf.reuse_distance_bytes)));
        row.push_back(static_cast<float>(Log2p1(bf.reuse_counter)));
        row.push_back(static_cast<float>(Log2p1(bf.stride)));
        double rc = std::max(1.0, bf.reuse_counter);
        row.push_back(static_cast<float>(Log2p1(bf.bytes / rc)));
        row.push_back(static_cast<float>(Log2p1(bf.unique_bytes / rc)));
        row.push_back(static_cast<float>(Log2p1(bf.lines / rc)));
        row.push_back(static_cast<float>(Log2p1(bf.unique_lines / rc)));
      } else {
        for (int z = 0; z < 18; ++z) {
          row.push_back(0.0f);
        }
      }
    }

    // 8. Allocation features: output buffer size, number of allocations.
    row.push_back(static_cast<float>(
        Log2p1(static_cast<double>(store.buffer->NumElements()) * kBytesPerElement)));
    row.push_back(static_cast<float>(Log2p1(static_cast<double>(program_.buffers.size()))));

    // 9. Other: number of outer loops, product of their lengths,
    //    auto_unroll_max_step, reduction flag, buffer count, output rank.
    row.push_back(static_cast<float>(static_cast<double>(depth)));
    row.push_back(static_cast<float>(Log2p1(iters)));
    row.push_back(static_cast<float>(Log2p1(static_cast<double>(store.auto_unroll_max_step))));
    row.push_back(store.is_accumulate ? 1.0f : 0.0f);
    row.push_back(static_cast<float>(static_cast<double>(buffer_feats.size())));
    row.push_back(static_cast<float>(static_cast<double>(store.indices.size())));

    CHECK_EQ(row.size(), FeatureDim());
    return row;
  }

  const LoweredProgram& program_;
  std::vector<std::string>* row_stages_;
  std::vector<LoopInfo> stack_;
  std::vector<std::vector<float>> rows_;
};

std::vector<std::string> BuildFeatureNames() {
  std::vector<std::string> names;
  for (const char* n : {"f_add", "f_sub", "f_mul", "f_div", "f_mod", "f_cmp", "f_math",
                        "f_select", "f_other", "i_add", "i_sub", "i_mul", "i_div", "i_mod",
                        "i_cmp", "i_other"}) {
    names.push_back(n);
  }
  for (const char* fam : {"vec", "unroll", "parallel"}) {
    names.push_back(std::string(fam) + ".innermost_len");
    for (const char* p : {"inner_s", "mid_s", "outer_s", "inner_r", "mid_r", "outer_r",
                          "mixed", "none"}) {
      names.push_back(std::string(fam) + ".pos_" + p);
    }
    names.push_back(std::string(fam) + ".product");
    names.push_back(std::string(fam) + ".count");
  }
  for (const char* n : {"gpu.block_x", "gpu.block_y", "gpu.block_z", "gpu.thread_x",
                        "gpu.thread_y", "gpu.thread_z", "gpu.vthread"}) {
    names.push_back(n);
  }
  for (int i = 0; i < kIntensitySamples; ++i) {
    names.push_back("intensity." + std::to_string(i));
  }
  for (int b = 0; b < kNumBufferSlots; ++b) {
    std::string prefix = "buf" + std::to_string(b) + ".";
    for (const char* n : {"read", "write", "rw", "bytes", "unique_bytes", "lines",
                          "unique_lines", "reuse_loop", "reuse_serial", "reuse_none",
                          "reuse_dist_iters", "reuse_dist_bytes", "reuse_counter", "stride",
                          "bytes_per_reuse", "unique_bytes_per_reuse", "lines_per_reuse",
                          "unique_lines_per_reuse"}) {
      names.push_back(prefix + n);
    }
  }
  for (const char* n : {"alloc.output_bytes", "alloc.count", "outer_loops", "iters",
                        "auto_unroll_max_step", "is_reduction", "num_buffers",
                        "output_rank"}) {
    names.push_back(n);
  }
  return names;
}

}  // namespace

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> names = BuildFeatureNames();
  return names;
}

size_t FeatureDim() { return FeatureNames().size(); }

std::vector<std::vector<float>> ExtractFeatures(const LoweredProgram& program,
                                                std::vector<std::string>* row_stages) {
  if (!program.ok) {
    return {};
  }
  return FeatureBuilder(program, row_stages).Run();
}

std::vector<std::vector<float>> ExtractStateFeatures(const State& state) {
  LoweredProgram program = Lower(state);
  if (!program.ok) {
    return {};
  }
  return ExtractFeatures(program);
}

}  // namespace ansor
