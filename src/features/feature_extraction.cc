#include "src/features/feature_extraction.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/access_pattern.h"
#include "src/dag/compute_dag.h"
#include "src/support/logging.h"

namespace ansor {
namespace {

constexpr int kNumBufferSlots = 5;
constexpr int kIntensitySamples = 10;
constexpr double kBytesPerElement = 4.0;

double Log2p1(double x) { return std::log2(1.0 + std::max(0.0, x)); }

// Loop position categories (Appendix B: InnerSpatial .. Mixed, None).
enum PositionType {
  kPosInnerSpatial = 0,
  kPosMiddleSpatial,
  kPosOuterSpatial,
  kPosInnerReduce,
  kPosMiddleReduce,
  kPosOuterReduce,
  kPosMixed,
  kPosNone,
  kNumPositionTypes,
};

// Reuse categories.
enum ReuseType { kReuseLoopMultipleRead = 0, kReuseSerialMultipleRead, kReuseNone,
                 kNumReuseTypes };

struct ArithCounts {
  double f_add = 0, f_sub = 0, f_mul = 0, f_div = 0, f_mod = 0, f_cmp = 0, f_math = 0,
         f_select = 0, f_other = 0;
  double i_add = 0, i_sub = 0, i_mul = 0, i_div = 0, i_mod = 0, i_cmp = 0, i_other = 0;
};

// Counts arithmetic, separating float work from integer index arithmetic
// (everything inside Load index operands is integer address computation).
void CountArith(const Expr& e, bool in_index, ArithCounts* out) {
  const ExprNode& n = *e.get();
  switch (n.kind) {
    case ExprKind::kBinary: {
      double* slot = nullptr;
      switch (n.binary_op) {
        case BinaryOp::kAdd: slot = in_index ? &out->i_add : &out->f_add; break;
        case BinaryOp::kSub: slot = in_index ? &out->i_sub : &out->f_sub; break;
        case BinaryOp::kMul: slot = in_index ? &out->i_mul : &out->f_mul; break;
        case BinaryOp::kDiv: slot = in_index ? &out->i_div : &out->f_div; break;
        case BinaryOp::kMod: slot = in_index ? &out->i_mod : &out->f_mod; break;
        case BinaryOp::kMin:
        case BinaryOp::kMax: slot = in_index ? &out->i_other : &out->f_other; break;
        default: slot = in_index ? &out->i_cmp : &out->f_cmp; break;
      }
      *slot += 1.0;
      break;
    }
    case ExprKind::kCall:
      out->f_math += 1.0;
      break;
    case ExprKind::kSelect:
      out->f_select += 1.0;
      break;
    default:
      break;
  }
  if (n.kind == ExprKind::kLoad) {
    for (const Expr& idx : n.operands) {
      CountArith(idx, /*in_index=*/true, out);
    }
    return;
  }
  if (n.kind == ExprKind::kSelect) {
    CountArith(n.operands[0], /*in_index=*/true, out);  // condition: integer work
    CountArith(n.operands[1], in_index, out);
    CountArith(n.operands[2], in_index, out);
    return;
  }
  for (const Expr& operand : n.operands) {
    CountArith(operand, in_index, out);
  }
}

struct LoopInfo {
  const LoopTreeNode* loop;
  int64_t extent;
};

int PositionOf(size_t index, const std::vector<LoopInfo>& stack) {
  if (stack.empty()) {
    return kPosNone;
  }
  const LoopInfo& info = stack[index];
  bool is_reduce = info.loop->iter_kind == IterKind::kReduce;
  size_t depth = stack.size();
  // Inner third / middle third / outer third of the nest.
  double rel = depth <= 1 ? 1.0 : static_cast<double>(index) / static_cast<double>(depth - 1);
  if (rel >= 0.67) {
    return is_reduce ? kPosInnerReduce : kPosInnerSpatial;
  }
  if (rel >= 0.34) {
    return is_reduce ? kPosMiddleReduce : kPosMiddleSpatial;
  }
  return is_reduce ? kPosOuterReduce : kPosOuterSpatial;
}

// Walks the loop tree and writes one feature row per innermost store directly
// into a flat FeatureMatrix. All per-row working state lives in scratch
// buffers owned by the builder and reused across rows, and buffers are
// interned to small integer ids on first sight, so the steady-state row cost
// is arithmetic only — no allocations, no string-keyed hashing.
class FeatureBuilder {
 public:
  explicit FeatureBuilder(const LoweredProgram& program)
      : program_(program), matrix_(FeatureDim()) {}

  FeatureMatrix Run() {
    for (const LoopTreeNodeRef& root : program_.roots) {
      Walk(*root);
    }
    return std::move(matrix_);
  }

 private:
  // Per-buffer accumulated access features for the current row, keyed by
  // interned buffer id (first-encounter order within the row).
  struct BufferFeat {
    int buffer_id = -1;
    double bytes = 0.0;
    double unique_bytes = 0.0;
    double lines = 0.0;
    double unique_lines = 0.0;
    int access_type = 0;  // bit 0 read, bit 1 write
    int reuse_type = kReuseNone;
    double reuse_distance_iters = 0.0;
    double reuse_distance_bytes = 0.0;
    double reuse_counter = 1.0;
    double stride = 0.0;
    int n_accesses = 0;
  };

  void Walk(const LoopTreeNode& node) {
    switch (node.kind) {
      case LoopTreeKind::kLoop:
        stack_.push_back({&node, node.extent});
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        stack_.pop_back();
        return;
      case LoopTreeKind::kIf:
        for (const LoopTreeNodeRef& child : node.children) {
          Walk(*child);
        }
        return;
      case LoopTreeKind::kStore:
        BuildRow(node);
        return;
    }
  }

  void Push(double v) { out_[idx_++] = static_cast<float>(v); }
  void PushRaw(float v) { out_[idx_++] = v; }

  // Buffers are interned program-wide to dense ids; the comparison shortcut
  // is pointer identity, with name equality as the merge rule (matching the
  // former string-keyed map).
  int InternBuffer(const BufferRef& buffer) {
    for (size_t k = 0; k < interned_.size(); ++k) {
      if (interned_[k] == buffer.get() || interned_[k]->name == buffer->name) {
        return static_cast<int>(k);
      }
    }
    interned_.push_back(buffer.get());
    return static_cast<int>(interned_.size()) - 1;
  }

  // Appends annotation-family features: innermost length, position one-hot,
  // product of lengths, count.
  void AnnotationFeatures(IterAnnotation ann) {
    double innermost_len = 0.0;
    int position = kPosNone;
    double product = 1.0;
    double count = 0.0;
    for (size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i].loop->annotation != ann) {
        continue;
      }
      count += 1.0;
      product *= static_cast<double>(stack_[i].extent);
      innermost_len = static_cast<double>(stack_[i].extent);
      position = PositionOf(i, stack_);
    }
    if (count == 0.0) {
      product = 0.0;
    }
    Push(Log2p1(innermost_len));
    for (int p = 0; p < kNumPositionTypes; ++p) {
      PushRaw(p == position ? 1.0f : 0.0f);
    }
    Push(Log2p1(product));
    Push(count);
  }

  void BuildRow(const LoopTreeNode& store) {
    out_ = matrix_.AddRow(store.stage_name);
    idx_ = 0;

    extents_.clear();  // clear() keeps buckets: no rehash after the first row
    for (const LoopInfo& f : stack_) {
      extents_[f.loop->var->var_id] = f.extent;
    }

    // 1. Float / int arithmetic counts (16), scaled by iteration count of the
    //    whole statement so bigger statements score bigger.
    double iters = 1.0;
    for (const LoopInfo& f : stack_) {
      iters *= static_cast<double>(f.extent);
    }
    ArithCounts counts;
    if (store.value.defined()) {
      CountArith(store.value, false, &counts);
    }
    if (store.is_accumulate) {
      counts.f_add += 1.0;
    }
    for (double c : {counts.f_add, counts.f_sub, counts.f_mul, counts.f_div, counts.f_mod,
                     counts.f_cmp, counts.f_math, counts.f_select, counts.f_other,
                     counts.i_add, counts.i_sub, counts.i_mul, counts.i_div, counts.i_mod,
                     counts.i_cmp, counts.i_other}) {
      Push(Log2p1(c * iters));
    }

    // 2-4. Vectorization / unrolling / parallelization families (11 each).
    AnnotationFeatures(IterAnnotation::kVectorize);
    AnnotationFeatures(IterAnnotation::kUnroll);
    AnnotationFeatures(IterAnnotation::kParallel);

    // 5. GPU thread binding lengths: blockIdx.x/y/z, threadIdx.x/y/z, vthread.
    double block_x = 0.0;
    double thread_x = 0.0;
    double vthread = 0.0;
    for (const LoopInfo& f : stack_) {
      if (f.loop->annotation == IterAnnotation::kBlockX) {
        block_x = block_x == 0.0 ? static_cast<double>(f.extent)
                                 : block_x * static_cast<double>(f.extent);
      }
      if (f.loop->annotation == IterAnnotation::kThreadX) {
        thread_x = thread_x == 0.0 ? static_cast<double>(f.extent)
                                   : thread_x * static_cast<double>(f.extent);
      }
      if (f.loop->annotation == IterAnnotation::kVThread) {
        vthread = vthread == 0.0 ? static_cast<double>(f.extent)
                                 : vthread * static_cast<double>(f.extent);
      }
    }
    Push(Log2p1(block_x));
    PushRaw(0.0f);  // blockIdx.y (not generated by this implementation)
    PushRaw(0.0f);  // blockIdx.z
    Push(Log2p1(thread_x));
    PushRaw(0.0f);  // threadIdx.y
    PushRaw(0.0f);  // threadIdx.z
    Push(Log2p1(vthread));

    accesses_ = StatementAccesses(store, extents_);
    size_t depth = stack_.size();
    size_t n_acc = accesses_.size();

    // Shared unique-elements computation, done once per row and consumed by
    // both the intensity curve and the buffer slots. For access a and loop
    // level j, contrib[a][j] is the number of distinct positions loop j
    // contributes to the access; suffix[a][d] is the product over loops
    // j >= d — the unique elements the access touches inside depth d. All
    // factors are small integers, so the suffix-product association is exact.
    strides_.assign(n_acc * depth, 0.0);
    suffix_.assign(n_acc * (depth + 1), 1.0);
    iter_suffix_.assign(depth + 1, 1.0);
    for (size_t j = depth; j-- > 0;) {
      iter_suffix_[j] = iter_suffix_[j + 1] * static_cast<double>(stack_[j].extent);
    }
    for (size_t a = 0; a < n_acc; ++a) {
      const AccessPattern& ap = accesses_[a];
      double* suffix = suffix_.data() + a * (depth + 1);
      double* strides = strides_.data() + a * depth;
      for (size_t j = depth; j-- > 0;) {
        int64_t vid = stack_[j].loop->var->var_id;
        double contrib = 1.0;
        if (!ap.analyzable) {
          strides[j] = 1.0;
          contrib = static_cast<double>(stack_[j].extent);
        } else {
          strides[j] = std::fabs(ap.StrideOf(vid));
          if (strides[j] > 0.0) {
            contrib = static_cast<double>(
                std::min<int64_t>(stack_[j].extent, ap.DistinctOf(vid)));
          }
        }
        suffix[j] = contrib * suffix[j + 1];
      }
    }

    // 6. Arithmetic intensity curve: 10 interpolated samples over loop depth.
    double flops_per_iter =
        std::max(0.5, store.value.defined() ? ExprFlopCount(store.value) : 0.0);
    intensity_.assign(depth == 0 ? 1 : depth, 0.0);
    for (size_t d = 0; d < intensity_.size(); ++d) {
      double bytes = 0.0;
      for (size_t a = 0; a < n_acc; ++a) {
        bytes += suffix_[a * (depth + 1) + d] * kBytesPerElement;
      }
      intensity_[d] = (flops_per_iter * iter_suffix_[d]) / std::max(bytes, 1.0);
    }
    for (int s = 0; s < kIntensitySamples; ++s) {
      double pos = intensity_.size() <= 1
                       ? 0.0
                       : static_cast<double>(s) / (kIntensitySamples - 1) *
                             static_cast<double>(intensity_.size() - 1);
      size_t lo = static_cast<size_t>(pos);
      size_t hi = std::min(lo + 1, intensity_.size() - 1);
      double frac = pos - static_cast<double>(lo);
      Push(Log2p1(intensity_[lo] * (1 - frac) + intensity_[hi] * frac));
    }

    // 7. Buffer access features: up to 5 buffers, 18 features each; merge
    //    multiple accesses to the same buffer, order by bytes descending
    //    (equal-bytes ties keep first-encounter order).
    feats_.clear();
    double line_elems = 16.0;  // 64B line / 4B elements
    for (size_t a = 0; a < n_acc; ++a) {
      const AccessPattern& ap = accesses_[a];
      int id = InternBuffer(ap.buffer);
      BufferFeat* bf = nullptr;
      for (BufferFeat& f : feats_) {
        if (f.buffer_id == id) {
          bf = &f;
          break;
        }
      }
      if (bf == nullptr) {
        feats_.emplace_back();
        bf = &feats_.back();
        bf->buffer_id = id;
      }
      bf->access_type |= ap.is_write ? 2 : 1;
      bf->n_accesses += 1;
      bf->bytes += iters * kBytesPerElement;
      double elements = suffix_[a * (depth + 1)];
      double min_stride = depth > 0 ? strides_[a * depth + depth - 1] : 0.0;
      bf->unique_bytes += elements * kBytesPerElement;
      double contiguous = min_stride > 0.0 && min_stride <= 2.0 ? 1.0 / line_elems : 1.0;
      bf->lines += std::max(1.0, iters * (min_stride == 0.0 ? 1.0 / line_elems : contiguous));
      bf->unique_lines += std::max(1.0, elements * contiguous / std::max(min_stride, 1.0));
      // Merge as the minimum over accesses: the fastest-varying access
      // determines locality, and any fixed pick would let one access
      // silently overwrite another's innermost stride.
      bf->stride = bf->n_accesses == 1 ? min_stride : std::min(bf->stride, min_stride);
      // Reuse: innermost enclosing loop the access is invariant to.
      double dist_iters = 1.0;
      for (size_t j = depth; j-- > 0;) {
        if (strides_[a * depth + j] == 0.0 && stack_[j].extent > 1) {
          bf->reuse_type = kReuseLoopMultipleRead;
          bf->reuse_distance_iters = dist_iters;
          bf->reuse_distance_bytes = std::min(elements, dist_iters) * kBytesPerElement;
          bf->reuse_counter = static_cast<double>(stack_[j].extent);
          break;
        }
        dist_iters *= static_cast<double>(stack_[j].extent);
      }
      if (bf->reuse_type == kReuseNone && bf->n_accesses > 1) {
        bf->reuse_type = kReuseSerialMultipleRead;
        bf->reuse_counter = bf->n_accesses;
      }
    }
    order_.resize(feats_.size());
    for (size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<int>(i);
    }
    // Stable: equal-bytes ties resolve by first-encounter order, so slot
    // assignment never depends on hash-map iteration order (which varies
    // across standard libraries and would make features non-portable).
    std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
      return feats_[static_cast<size_t>(a)].bytes > feats_[static_cast<size_t>(b)].bytes;
    });
    for (int slot = 0; slot < kNumBufferSlots; ++slot) {
      if (slot < static_cast<int>(order_.size())) {
        const BufferFeat& bf = feats_[static_cast<size_t>(order_[static_cast<size_t>(slot)])];
        PushRaw(bf.access_type == 1 ? 1.0f : 0.0f);
        PushRaw(bf.access_type == 2 ? 1.0f : 0.0f);
        PushRaw(bf.access_type == 3 ? 1.0f : 0.0f);
        Push(Log2p1(bf.bytes));
        Push(Log2p1(bf.unique_bytes));
        Push(Log2p1(bf.lines));
        Push(Log2p1(bf.unique_lines));
        for (int r = 0; r < kNumReuseTypes; ++r) {
          PushRaw(r == bf.reuse_type ? 1.0f : 0.0f);
        }
        Push(Log2p1(bf.reuse_distance_iters));
        Push(Log2p1(bf.reuse_distance_bytes));
        Push(Log2p1(bf.reuse_counter));
        Push(Log2p1(bf.stride));
        double rc = std::max(1.0, bf.reuse_counter);
        Push(Log2p1(bf.bytes / rc));
        Push(Log2p1(bf.unique_bytes / rc));
        Push(Log2p1(bf.lines / rc));
        Push(Log2p1(bf.unique_lines / rc));
      } else {
        for (int z = 0; z < 18; ++z) {
          PushRaw(0.0f);
        }
      }
    }

    // 8. Allocation features: output buffer size, number of allocations.
    Push(Log2p1(static_cast<double>(store.buffer->NumElements()) * kBytesPerElement));
    Push(Log2p1(static_cast<double>(program_.buffers.size())));

    // 9. Other: number of outer loops, product of their lengths,
    //    auto_unroll_max_step, reduction flag, buffer count, output rank.
    Push(static_cast<double>(depth));
    Push(Log2p1(iters));
    Push(Log2p1(static_cast<double>(store.auto_unroll_max_step)));
    PushRaw(store.is_accumulate ? 1.0f : 0.0f);
    Push(static_cast<double>(feats_.size()));
    Push(static_cast<double>(store.indices.size()));

    CHECK_EQ(idx_, FeatureDim());
  }

  const LoweredProgram& program_;
  FeatureMatrix matrix_;
  std::vector<LoopInfo> stack_;

  // Row cursor into the matrix row under construction.
  float* out_ = nullptr;
  size_t idx_ = 0;

  // Program-lifetime buffer intern table (id = index).
  std::vector<const Buffer*> interned_;

  // Scratch reused across rows (capacity persists).
  std::unordered_map<int64_t, int64_t> extents_;
  std::vector<AccessPattern> accesses_;
  std::vector<double> strides_;      // n_acc x depth
  std::vector<double> suffix_;       // n_acc x (depth + 1)
  std::vector<double> iter_suffix_;  // depth + 1
  std::vector<double> intensity_;
  std::vector<BufferFeat> feats_;
  std::vector<int> order_;
};

std::vector<std::string> BuildFeatureNames() {
  std::vector<std::string> names;
  for (const char* n : {"f_add", "f_sub", "f_mul", "f_div", "f_mod", "f_cmp", "f_math",
                        "f_select", "f_other", "i_add", "i_sub", "i_mul", "i_div", "i_mod",
                        "i_cmp", "i_other"}) {
    names.push_back(n);
  }
  for (const char* fam : {"vec", "unroll", "parallel"}) {
    names.push_back(std::string(fam) + ".innermost_len");
    for (const char* p : {"inner_s", "mid_s", "outer_s", "inner_r", "mid_r", "outer_r",
                          "mixed", "none"}) {
      names.push_back(std::string(fam) + ".pos_" + p);
    }
    names.push_back(std::string(fam) + ".product");
    names.push_back(std::string(fam) + ".count");
  }
  for (const char* n : {"gpu.block_x", "gpu.block_y", "gpu.block_z", "gpu.thread_x",
                        "gpu.thread_y", "gpu.thread_z", "gpu.vthread"}) {
    names.push_back(n);
  }
  for (int i = 0; i < kIntensitySamples; ++i) {
    names.push_back("intensity." + std::to_string(i));
  }
  for (int b = 0; b < kNumBufferSlots; ++b) {
    std::string prefix = "buf" + std::to_string(b) + ".";
    for (const char* n : {"read", "write", "rw", "bytes", "unique_bytes", "lines",
                          "unique_lines", "reuse_loop", "reuse_serial", "reuse_none",
                          "reuse_dist_iters", "reuse_dist_bytes", "reuse_counter", "stride",
                          "bytes_per_reuse", "unique_bytes_per_reuse", "lines_per_reuse",
                          "unique_lines_per_reuse"}) {
      names.push_back(prefix + n);
    }
  }
  for (const char* n : {"alloc.output_bytes", "alloc.count", "outer_loops", "iters",
                        "auto_unroll_max_step", "is_reduction", "num_buffers",
                        "output_rank"}) {
    names.push_back(n);
  }
  return names;
}

}  // namespace

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> names = BuildFeatureNames();
  return names;
}

size_t FeatureDim() { return FeatureNames().size(); }

FeatureMatrix ExtractFeatures(const LoweredProgram& program) {
  if (!program.ok) {
    return FeatureMatrix();
  }
  return FeatureBuilder(program).Run();
}

FeatureMatrix ExtractStateFeatures(const State& state) {
  LoweredProgram program = Lower(state);
  if (!program.ok) {
    return FeatureMatrix();
  }
  return ExtractFeatures(program);
}

}  // namespace ansor
