// Contiguous per-statement feature storage for the scoring hot path.
//
// A FeatureMatrix is a flat row-major float buffer with a fixed stride of
// dim() (= FeatureDim() for extractor output) plus per-row stage names. The
// extractor produces one per lowered program, the ProgramArtifact stores it,
// and the cost model consumes it zero-copy: batch prediction walks raw row
// pointers, training datasets append whole matrices with one block copy, and
// the crossover stage-score memos read rows in place. Replaces the former
// std::vector<std::vector<float>> representation whose per-row allocations
// dominated the scoring profile once compilation itself was cached.
#ifndef ANSOR_SRC_FEATURES_FEATURE_MATRIX_H_
#define ANSOR_SRC_FEATURES_FEATURE_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ansor {

class FeatureMatrix {
 public:
  // An empty matrix (dim 0, no rows): the representation of a program that
  // failed to lower. AppendRow fixes the dimension on first use.
  FeatureMatrix() = default;
  explicit FeatureMatrix(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t rows() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  const float* row(size_t r) const { return data_.data() + r * dim_; }
  float at(size_t r, size_t f) const { return data_[r * dim_ + f]; }
  const std::vector<float>& data() const { return data_; }

  // Owning stage name of each row (node-based crossover scoring); "" for
  // rows appended without one (e.g. training datasets). Always rows() long.
  const std::vector<std::string>& row_stages() const { return row_stages_; }
  const std::string& row_stage(size_t r) const { return row_stages_[r]; }

  void Reserve(size_t n_rows);
  // Appends a zero-filled row owned by `stage` and returns its mutable
  // storage (valid until the next append). Requires a fixed dimension.
  float* AddRow(std::string stage = std::string());
  // Appends a copy of `values`; fixes dim() on the first row of a
  // default-constructed matrix, and requires matching size afterwards.
  void AppendRow(const std::vector<float>& values, std::string stage = std::string());
  void AppendRow(const float* values, size_t n, std::string stage = std::string());
  // Appends every row of `other` (dims must agree; block copy).
  void AppendMatrix(const FeatureMatrix& other);
  // Drops all rows; keeps dim() and capacity.
  void Clear();

  // Conversions for tests and tools; the hot path never materializes rows.
  std::vector<std::vector<float>> ToRows() const;
  static FeatureMatrix FromRows(const std::vector<std::vector<float>>& rows);

  friend bool operator==(const FeatureMatrix& a, const FeatureMatrix& b) {
    return a.dim_ == b.dim_ && a.data_ == b.data_ && a.row_stages_ == b.row_stages_;
  }
  friend bool operator!=(const FeatureMatrix& a, const FeatureMatrix& b) {
    return !(a == b);
  }

 private:
  size_t dim_ = 0;
  std::vector<float> data_;
  std::vector<std::string> row_stages_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_FEATURES_FEATURE_MATRIX_H_
