// Per-statement program features (paper §5.2 and Appendix B).
//
// "We train the cost model to predict the score of one innermost non-loop
// statement in a loop nest. For a full program, we make predictions for each
// innermost non-loop statement and add the predictions up as the score."
//
// The extracted vector mirrors Appendix B: float/int arithmetic counts,
// vectorization/unrolling/parallelization features with loop-position
// one-hots, GPU thread-binding lengths, a 10-point arithmetic-intensity
// curve, per-buffer access features for up to five buffers, allocation
// features and outer-loop context. Size-like features are log2(1+x)
// transformed. The total dimension is 164, as in the paper.
//
// Rows are returned as one contiguous row-major FeatureMatrix (stride
// FeatureDim(), stage names attached per row) and are extracted with reused
// scratch buffers — no per-statement vector or hash-map allocations — so the
// evolution loop can score thousands of candidates per second against the
// matrices cached on their ProgramArtifacts.
#ifndef ANSOR_SRC_FEATURES_FEATURE_EXTRACTION_H_
#define ANSOR_SRC_FEATURES_FEATURE_EXTRACTION_H_

#include <string>
#include <vector>

#include "src/features/feature_matrix.h"
#include "src/lower/loop_tree.h"

namespace ansor {

// Dimension of one statement's feature vector.
size_t FeatureDim();

// Names of all features, in order (for debugging / model introspection).
const std::vector<std::string>& FeatureNames();

// One row per innermost store statement of the program (init stores
// included: they are real work), with the owning stage name attached to each
// row. Programs that fail to lower produce an empty matrix.
FeatureMatrix ExtractFeatures(const LoweredProgram& program);

// Convenience: lowers the state first. Empty matrix on lowering failure.
FeatureMatrix ExtractStateFeatures(const State& state);

}  // namespace ansor

#endif  // ANSOR_SRC_FEATURES_FEATURE_EXTRACTION_H_
