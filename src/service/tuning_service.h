// Tuning-as-a-service: a long-lived, multi-tenant scheduling core.
//
// The legacy entry point (TaskScheduler::Tune) is a synchronous round loop
// over one job: search and measurement strictly alternate and only one
// Objective can exist at a time. The TuningService rebuilds that stack as a
// service: callers Submit() any number of concurrent jobs — each with its
// own tasks, Objective, trial budget, and deadline — and the service drives
// them over one shared worker pool, with search (child generation +
// cost-model scoring) and measurement overlapped as a producer/consumer
// pipeline:
//
//   * across jobs: while one job's measurement batch occupies the pool (or
//     sleeps out its emulated device latency), other jobs' drivers keep
//     searching on the same workers (ParallelFor caller participation
//     guarantees progress even on a saturated pool);
//   * within a round: the round's training-feature extraction runs while its
//     own batch is in flight (Measurer::SubmitBatch is the async seam; the
//     features are a pure function of the candidates, not the results).
//
// Determinism contract (enforced by the TuningService matrix tests): a job's
// results are a pure function of its spec. Fixed seeds give bit-identical
// per-task best latencies and allocation traces for any worker count, any
// max_concurrent_jobs, and any co-tenant jobs — and identical to the legacy
// synchronous TaskScheduler::Tune (which Tune() itself now implements by
// driving the same step-wise NextTask/PlanRound/CommitRound path). Shared
// caches cannot break this: artifacts are pure functions of (DAG, steps).
// Deadlines are the one wall-clock-dependent feature; a job that hits its
// deadline has nondeterministic cutoff by nature, but never loses budget
// accounting (cancelled trials are not spent) and never hangs.
//
// Cross-task cache sharing: tasks carrying the same nonempty similarity
// `tag` — within one job and across jobs — share one service-owned
// ProgramCache (safe: keys include the DAG hash), so a program one task
// compiled is served to every structurally similar task for free. Each
// (job, task) gets a distinct cache client id, so every job reports its own
// exact cross-task hit rate even with concurrent tenants.
#ifndef ANSOR_SRC_SERVICE_TUNING_SERVICE_H_
#define ANSOR_SRC_SERVICE_TUNING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/scheduler/task_scheduler.h"
#include "src/store/artifact_store.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ansor {

// One tuning job: a set of tasks + networks with their own objective,
// budget, and deadline. The measurer and cost model are borrowed, not owned
// — they must outlive the job, and sharing a model or measurer between jobs
// is the caller's choice (per-job instances keep jobs fully independent).
struct JobSpec {
  std::string name;
  std::vector<SearchTask> tasks;
  std::vector<NetworkSpec> networks;
  Objective objective;
  // Per-job allocation policy + search knobs (alpha/beta/eps/seed/search).
  // The service overrides search.thread_pool (shared pool), assigns
  // search.cache_client_id per task, and injects per-tag shared caches; all
  // are result-invariant.
  TaskSchedulerOptions options;
  // Trial budget: allocation rounds of options.measures_per_round trials.
  int total_rounds = 1;
  // Wall-clock deadline measured from job *start* (not submit). When it
  // passes, the in-flight measurement batch is cancelled (unstarted trials
  // return cancelled and are not charged to any budget) and the job
  // finishes with JobStatus::kDeadlineExceeded. Infinity = no deadline.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  Measurer* measurer = nullptr;  // required; not owned
  CostModel* model = nullptr;    // required; not owned
};

enum class JobStatus {
  kQueued,            // submitted, waiting for a driver slot
  kRunning,           // rounds in progress
  kCompleted,         // spent its full round budget
  kDeadlineExceeded,  // stopped at deadline_seconds
  kCancelled,         // stopped by JobHandle::Cancel
};

inline bool IsTerminal(JobStatus s) {
  return s == JobStatus::kCompleted || s == JobStatus::kDeadlineExceeded ||
         s == JobStatus::kCancelled;
}

const char* JobStatusName(JobStatus s);

// Final accounting for one job, valid once the job reaches a terminal
// status.
struct JobReport {
  JobStatus status = JobStatus::kQueued;
  int rounds_completed = 0;
  // Measurement trials actually started (== the per-job Measurer's
  // trial_count delta; cancelled trials are excluded on both sides).
  int64_t trials = 0;
  double objective_value = 0.0;
  std::vector<double> best_seconds;  // per task
  std::vector<int> allocations;      // per task
  std::vector<int> allocation_trace; // task index per round, in order
  // Trials broken down by outcome: valid + invalid == trials (started);
  // cancelled trials never started and are charged to no budget.
  int64_t trials_valid = 0;
  int64_t trials_invalid = 0;
  int64_t trials_cancelled = 0;
  // Fleet latency view: turnaround is what a tenant experiences. All three
  // derive from the same three readings of the service's single monotonic
  // clock (TuningServiceOptions::clock), so queue + run == turnaround
  // exactly.
  double queue_seconds = 0.0;       // submit -> first round
  double run_seconds = 0.0;         // first round -> terminal
  double turnaround_seconds = 0.0;  // submit -> terminal
  // Where run_seconds went: per-phase attribution summed over the job's
  // tuners (sketch/search/feature/commit) plus the driver-observed
  // measurement wall time and the search-side work overlapped with in-flight
  // batches (phases.OverlapFraction() is the pipeline's win).
  SearchPhaseTimes phases;
  // Program-cache traffic attributed to this job's tasks (exact even when
  // the caches are shared with concurrent jobs). cross_client_hits counts
  // artifacts this job consumed that a *different* task compiled — the
  // cross-task reuse the per-tag shared caches exist for.
  ProgramCacheClientStats cache;
  // This job's contribution to the fleet record store (zeros when the
  // service has none): records it appended as new signatures vs records the
  // fleet had already seen. Exact even with concurrent tenants.
  RecordClientStats records;

  double CrossTaskHitRate() const { return cache.CrossClientHitRate(); }
};

class TuningService;
struct JobState;

// Shared-ownership handle to a submitted job. Copyable; outliving the
// service is safe (the job state is jointly owned).
class JobHandle {
 public:
  JobHandle() = default;

  int64_t id() const;
  const std::string& name() const;
  JobStatus status() const;
  // Blocks until the job reaches a terminal status (or the timeout elapses);
  // true when terminal.
  bool Wait(double timeout_seconds = std::numeric_limits<double>::infinity()) const;
  // Requests cancellation: a queued job finishes before its first round, a
  // running job after its in-flight round. Does not block.
  void Cancel();
  // The final report. CHECK-fails unless the job is terminal (Wait first).
  const JobReport& report() const;

 private:
  friend class TuningService;
  std::shared_ptr<JobState> state_;
};

struct TuningServiceOptions {
  // Shared worker pool backing every job's search and measurement.
  // 0 = hardware concurrency. Results are invariant to this.
  int num_workers = 0;
  // Jobs driven concurrently; the rest queue FIFO. 1 reproduces the legacy
  // one-job-at-a-time fleet behavior (and each job is bit-identical to
  // TaskScheduler::Tune regardless). Results are invariant to this.
  int max_concurrent_jobs = 1;
  // Hand every task with the same nonempty similarity tag — within and
  // across jobs — one shared service-owned ProgramCache. Tasks with an empty
  // tag (or with a cache already injected via SearchOptions) keep their own.
  bool share_caches_by_tag = true;
  size_t shared_cache_capacity = ProgramCache::kDefaultCapacity;
  // Fleet-wide record store: when set, every job's valid measurements are
  // appended here (deduplicated by signature, attributed per (job, task)
  // client id — see JobReport::records). Not owned; must outlive the
  // service. Feeds the transfer-learned cost model (TrainFromStore).
  RecordStore* record_store = nullptr;
  // Artifact-store file (ArtifactStore::SaveToFile / SaveWarmState) loaded
  // at construction. Each per-tag shared cache is warm-started from it the
  // first time a task of the matching DAG runs, so a restarted service
  // re-lowers nothing the previous incarnation already compiled. Empty =
  // cold start.
  std::string warm_start_path;
  // Telemetry ---------------------------------------------------------------
  // When nonempty, the service owns a TraceSink, traces every job (spans for
  // job/round/store phases, with search/evolution/measure children via the
  // per-round tuner tracer) and writes the JSONL trace here at Shutdown.
  // Tracing only reads the clock and records events; fixed-seed results are
  // bit-identical with it on or off.
  std::string trace_path;
  // Borrowed sink alternative: trace into a caller-owned sink (tests inspect
  // it live; trace_path may still be set to also write the file). Not owned.
  TraceSink* trace_sink = nullptr;
  // The single monotonic clock every job timing derives from — report
  // queue/run/turnaround, per-phase attribution, span durations. nullptr =
  // the process steady clock. Inject a FakeClock to test timing exactly.
  MonotonicClock* clock = nullptr;
};

class TuningService {
 public:
  explicit TuningService(TuningServiceOptions options = TuningServiceOptions());
  ~TuningService();  // Shutdown()

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  // Enqueues a job; returns immediately. CHECK-fails on an empty task list,
  // a missing measurer/model, or a service that is already shut down.
  JobHandle Submit(JobSpec spec);
  // Blocks until every job submitted so far is terminal.
  void WaitAll();
  // Drains the queue, waits for running jobs, joins the drivers. Submit
  // afterwards is an error. Idempotent.
  void Shutdown();

  const TuningServiceOptions& options() const { return options_; }
  // Aggregate counters over the per-tag shared caches (fleet-wide view; a
  // job's own share is in its JobReport). warm_inserts counts artifacts
  // restored from warm_start_path rather than compiled.
  ProgramCacheStats SharedCacheStats() const;
  size_t shared_cache_count() const;

  // Captures every per-tag shared cache into an ArtifactStore (snapshots
  // tagged with their cache's tag) and writes it to `path` — the file a
  // future service passes as warm_start_path. Safe while jobs run (caches
  // are captured shard-by-shard); for a complete snapshot, WaitAll() first.
  bool SaveWarmState(const std::string& path) const;
  // Result of loading warm_start_path at construction (ok == false with all
  // zeros when no path was given).
  const ArtifactLoadStats& warm_start_stats() const { return warm_start_stats_; }

  // Telemetry -----------------------------------------------------------------
  // The service-owned metrics registry. Live counters/histograms (job and
  // round counts, turnaround/queue distributions) update as jobs run; the
  // component gauges (caches, record store, scheduler aggregates) are
  // mirrored in by MetricsSnapshotJson.
  MetricsRegistry* metrics() { return &metrics_; }
  // Refreshes every mirrored component gauge (shared caches, record store,
  // warm-start stats) and serializes the whole fleet state as one JSON
  // object.
  std::string MetricsSnapshotJson();
  // The active trace sink: the borrowed options.trace_sink, the owned sink
  // created for options.trace_path, or nullptr when tracing is off.
  TraceSink* trace_sink() const { return sink_; }
  // The clock all job timings derive from (options.clock or the real one).
  MonotonicClock* clock() const { return clock_; }

 private:
  void DriverLoop();
  void RunJob(JobState* job);
  ProgramCache* SharedCacheForTag(const std::string& tag);
  // Installs the warm store's artifacts for `dag` into `cache`, once per
  // (cache, task) pair (idempotent across jobs and rounds). Records a
  // "warm_start" span with the install count when `tracer` is live.
  void WarmTagCache(ProgramCache* cache, const std::shared_ptr<const ComputeDAG>& dag,
                    const Tracer* tracer = nullptr);

  TuningServiceOptions options_;
  // Telemetry: the single clock, the owned-or-borrowed trace sink, and the
  // fleet metrics registry (internally synchronized; no mu_ needed). Declared
  // before workers_ so they outlive the pool: ~ThreadPool joins every worker
  // thread before the sink/clock a lagging trace Record might touch die.
  MonotonicClock* clock_;
  std::unique_ptr<TraceSink> owned_sink_;
  TraceSink* sink_ = nullptr;
  MetricsRegistry metrics_;
  ThreadPool workers_;
  mutable std::mutex mu_;  // queue, job list, tag caches, shutdown flag
  std::condition_variable cv_;
  std::deque<std::shared_ptr<JobState>> queue_;
  std::vector<std::shared_ptr<JobState>> jobs_;
  std::unordered_map<std::string, std::unique_ptr<ProgramCache>> tag_caches_;
  // Warm-start state: snapshots loaded from warm_start_path, and which
  // (cache, task) pairs have already been warmed (guarded by mu_).
  ArtifactStore warm_store_;
  ArtifactLoadStats warm_start_stats_;
  std::unordered_map<ProgramCache*, std::unordered_set<uint64_t>> warmed_;
  std::atomic<uint64_t> next_client_id_{1};
  std::atomic<int64_t> next_job_id_{1};
  bool shutdown_ = false;
  std::vector<std::thread> drivers_;
};

}  // namespace ansor

#endif  // ANSOR_SRC_SERVICE_TUNING_SERVICE_H_
