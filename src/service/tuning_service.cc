#include "src/service/tuning_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ansor {

const char* JobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

// Internal per-job state, jointly owned by the service and every JobHandle.
struct JobState {
  int64_t id = 0;
  JobSpec spec;
  // Reading of the service clock at Submit (the origin every report latency
  // is measured from).
  int64_t submit_nanos = 0;
  std::atomic<bool> cancel{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;  // guarded by mu
  JobReport report;                       // guarded by mu; final once terminal

  void SetStatus(JobStatus s) {
    std::lock_guard<std::mutex> lock(mu);
    status = s;
  }
  void Finish(JobReport final_report) {
    {
      std::lock_guard<std::mutex> lock(mu);
      report = std::move(final_report);
      status = report.status;
    }
    cv.notify_all();
  }
};

int64_t JobHandle::id() const {
  CHECK(state_ != nullptr);
  return state_->id;
}

const std::string& JobHandle::name() const {
  CHECK(state_ != nullptr);
  return state_->spec.name;
}

JobStatus JobHandle::status() const {
  CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

bool JobHandle::Wait(double timeout_seconds) const {
  CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  auto terminal = [&] { return IsTerminal(state_->status); };
  if (std::isfinite(timeout_seconds)) {
    return state_->cv.wait_for(lock, std::chrono::duration<double>(
                                         std::max(0.0, timeout_seconds)),
                               terminal);
  }
  state_->cv.wait(lock, terminal);
  return true;
}

void JobHandle::Cancel() {
  CHECK(state_ != nullptr);
  state_->cancel.store(true, std::memory_order_release);
}

const JobReport& JobHandle::report() const {
  CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  CHECK(IsTerminal(state_->status)) << "JobHandle::report() before the job finished";
  return state_->report;
}

TuningService::TuningService(TuningServiceOptions options)
    : options_(std::move(options)),
      clock_(MonotonicClock::OrReal(options_.clock)),
      workers_(static_cast<size_t>(std::max(0, options_.num_workers))) {
  if (options_.trace_sink != nullptr) {
    sink_ = options_.trace_sink;
  } else if (!options_.trace_path.empty()) {
    owned_sink_ = std::make_unique<TraceSink>();
    sink_ = owned_sink_.get();
  }
  if (!options_.warm_start_path.empty()) {
    Tracer tracer(sink_, clock_);
    TraceSpan load(sink_ != nullptr ? &tracer : nullptr, "store_load", "store");
    warm_start_stats_ = warm_store_.LoadFromFile(options_.warm_start_path);
    if (load.enabled()) {
      load.Arg("count", static_cast<int64_t>(warm_start_stats_.loaded));
    }
  }
  int drivers = std::max(1, options_.max_concurrent_jobs);
  drivers_.reserve(static_cast<size_t>(drivers));
  for (int i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

TuningService::~TuningService() { Shutdown(); }

ProgramCache* TuningService::SharedCacheForTag(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ProgramCache>& cache = tag_caches_[tag];
  if (cache == nullptr) {
    cache = std::make_unique<ProgramCache>(options_.shared_cache_capacity);
  }
  return cache.get();
}

void TuningService::WarmTagCache(ProgramCache* cache,
                                 const std::shared_ptr<const ComputeDAG>& dag,
                                 const Tracer* tracer) {
  if (warm_store_.size() == 0 || cache == nullptr || dag == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!warmed_[cache].insert(dag->CanonicalHash()).second) {
      return;  // this (cache, task) pair was already warmed
    }
  }
  // Outside mu_: warming only touches the cache's own shard locks, and a
  // concurrent job hitting the cache mid-warm just sees a prefix of the
  // snapshots — results are invariant either way (artifacts are pure).
  TraceSpan span(tracer, "warm_start", "store");
  size_t installed = warm_store_.WarmCache(cache, dag);
  if (span.enabled()) {
    span.Arg("count", static_cast<int64_t>(installed));
  }
}

JobHandle TuningService::Submit(JobSpec spec) {
  CHECK(!spec.tasks.empty()) << "JobSpec needs at least one task";
  CHECK(spec.measurer != nullptr) << "JobSpec needs a measurer";
  CHECK(spec.model != nullptr) << "JobSpec needs a cost model";
  auto job = std::make_shared<JobState>();
  job->id = next_job_id_.fetch_add(1);
  job->spec = std::move(spec);
  job->submit_nanos = clock_->NowNanos();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!shutdown_) << "Submit after Shutdown";
    queue_.push_back(job);
    jobs_.push_back(job);
  }
  metrics_.AddCounter("service.jobs_submitted", 1, "jobs");
  cv_.notify_one();
  JobHandle handle;
  handle.state_ = std::move(job);
  return handle;
}

void TuningService::DriverLoop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    RunJob(job.get());
  }
}

void TuningService::RunJob(JobState* job) {
  const int64_t start_nanos = clock_->NowNanos();
  job->SetStatus(JobStatus::kRunning);
  const JobSpec& spec = job->spec;

  // The job's root span: every span the job records — rounds, store phases,
  // and the search/evolution/measure children attributed through the
  // per-round tuner tracer — nests under it, so a trace fold recovers the
  // job's turnaround from its direct children.
  Tracer job_tracer =
      sink_ != nullptr ? Tracer(sink_, clock_).WithJob(job->id) : Tracer();
  TraceSpan job_span(job_tracer, "job", "service");
  if (job_span.enabled() && !spec.name.empty()) {
    job_span.Arg("name", spec.name);
  }

  // Wire the per-task search options: the shared worker pool, a distinct
  // cache client id per (job, task), and — for nonempty similarity tags —
  // the service-owned shared cache for that tag. A caller-provided
  // per_task_search hook runs first so it can still veto the cache by
  // injecting its own.
  const size_t n_tasks = spec.tasks.size();
  std::vector<uint64_t> client_ids(n_tasks);
  std::vector<ProgramCache*> tag_caches(n_tasks, nullptr);
  Tracer warm_tracer = job_span.child();
  for (size_t i = 0; i < n_tasks; ++i) {
    client_ids[i] = next_client_id_.fetch_add(1);
    if (options_.share_caches_by_tag && !spec.tasks[i].tag.empty()) {
      tag_caches[i] = SharedCacheForTag(spec.tasks[i].tag);
      // Fleet warm start: seed the shared cache with every persisted
      // artifact of this task before its tuner first touches it.
      WarmTagCache(tag_caches[i], spec.tasks[i].dag,
                   job_span.enabled() ? &warm_tracer : nullptr);
    }
  }
  TaskSchedulerOptions opts = spec.options;
  auto caller_hook = opts.per_task_search;
  opts.per_task_search = [&, caller_hook](size_t i, const SearchTask& task,
                                          SearchOptions* search) {
    if (caller_hook) {
      caller_hook(i, task, search);
    }
    search->thread_pool = &workers_;
    search->clock = clock_;  // one clock per service: all timings agree
    search->cache_client_id = client_ids[i];
    if (search->program_cache == nullptr && tag_caches[i] != nullptr) {
      search->program_cache = tag_caches[i];
    }
    if (search->record_store == nullptr) {
      search->record_store = options_.record_store;
    }
  };

  TaskScheduler scheduler(spec.tasks, spec.networks, spec.objective, spec.measurer,
                          spec.model, opts);

  const bool has_deadline = std::isfinite(spec.deadline_seconds);
  const int64_t deadline_nanos =
      has_deadline ? start_nanos + static_cast<int64_t>(spec.deadline_seconds * 1e9)
                   : std::numeric_limits<int64_t>::max();
  // Driver-observed measurement timing: the tuners account for their own
  // search-side phases, but on this overlapped path only the driver sees
  // when a batch was submitted and when it completed — and how much search
  // work ran while it was in flight.
  SearchPhaseTimes driver_times;
  bool deadline_hit = false;
  int rounds = 0;
  while (rounds < spec.total_rounds && !job->cancel.load(std::memory_order_acquire)) {
    if (has_deadline && clock_->NowNanos() >= deadline_nanos) {
      deadline_hit = true;
      break;
    }
    TraceSpan round_span(job_span.enabled()
                             ? job_span.child().WithRound(rounds)
                             : Tracer(),
                         "round", "service");
    int pick = scheduler.NextTask();
    TaskTuner* tuner = scheduler.tuners()[static_cast<size_t>(pick)].get();
    if (round_span.enabled()) {
      // "picked_task", not "task": the core attribution already emits a
      // "task" key in args (-1 here — the round span itself spans exactly
      // one task but the pick isn't known at construction).
      round_span.Arg("picked_task", static_cast<int64_t>(pick));
      // Everything the tuner records this round — planning, evolution,
      // features, measurement, commit — nests under this round's span with
      // the (job, task, round) attribution stamped on.
      tuner->set_tracer(round_span.child()
                            .WithTask(static_cast<int64_t>(pick))
                            .WithRound(rounds));
    }
    double before = tuner->best_seconds();
    // The overlapped round: submit the batch, then extract this round's
    // training features while it measures. Other jobs' drivers overlap their
    // search with this batch on the same pool.
    PlannedRound round = tuner->PlanRound(spec.options.measures_per_round);
    const int64_t submit_nanos = clock_->NowNanos();
    PendingMeasureBatch batch = tuner->SubmitPlannedRound(round, &workers_);
    tuner->ExtractFeatures(&round);
    const int64_t features_done_nanos = clock_->NowNanos();
    if (has_deadline) {
      double remaining = SecondsBetween(clock_->NowNanos(), deadline_nanos);
      if (!batch.WaitFor(remaining)) {
        // Deadline passed mid-batch: unstarted trials come back cancelled
        // (not charged to any budget); in-flight ones finish, so Wait()
        // below cannot hang.
        batch.Cancel();
        deadline_hit = true;
      }
    }
    std::vector<MeasureResult> results = batch.Wait();
    const int64_t batch_done_nanos = clock_->NowNanos();
    driver_times.measure_wall_seconds += SecondsBetween(submit_nanos, batch_done_nanos);
    // Feature extraction started right after submit, so the portion of it
    // that fits inside the batch's wall time ran fully overlapped.
    driver_times.overlap_seconds +=
        std::min(SecondsBetween(submit_nanos, features_done_nanos),
                 SecondsBetween(submit_nanos, batch_done_nanos));
    double after = tuner->CommitRound(std::move(round), results);
    scheduler.RecordRound(pick, before, after);
    ++rounds;
    metrics_.AddCounter("service.rounds_completed", 1, "rounds");
    if (deadline_hit) {
      break;
    }
  }

  const int64_t end_nanos = clock_->NowNanos();
  JobReport report;
  // A job that spent its whole budget is completed even if a cancel or the
  // deadline raced with the final round.
  report.status = rounds >= spec.total_rounds ? JobStatus::kCompleted
                  : deadline_hit              ? JobStatus::kDeadlineExceeded
                                              : JobStatus::kCancelled;
  report.rounds_completed = rounds;
  report.objective_value = scheduler.ObjectiveValue();
  report.allocations = scheduler.allocations();
  report.allocation_trace = scheduler.allocation_trace();
  for (size_t i = 0; i < n_tasks; ++i) {
    const TaskTuner& tuner = *scheduler.tuners()[i];
    report.trials += tuner.total_measures();
    report.trials_invalid += tuner.invalid_measures();
    report.trials_cancelled += tuner.cancelled_measures();
    report.best_seconds.push_back(tuner.best_seconds());
    ProgramCacheClientStats cs = tuner.program_cache().ClientStats(client_ids[i]);
    report.cache.lookups += cs.lookups;
    report.cache.hits += cs.hits;
    report.cache.cross_client_hits += cs.cross_client_hits;
    if (options_.record_store != nullptr) {
      RecordClientStats rs = options_.record_store->ClientStatsFor(client_ids[i]);
      report.records.appended += rs.appended;
      report.records.deduplicated += rs.deduplicated;
    }
  }
  report.trials_valid = report.trials - report.trials_invalid;
  // Per-phase attribution: the tuners' search-side clocks plus the driver's
  // measurement wall/overlap (the tuners never fill measure_wall on this
  // overlapped path — TuneRound does on the synchronous one).
  report.phases = scheduler.AggregatePhaseTimes();
  report.phases.Add(driver_times);
  // All three from the same three clock readings; turnaround is computed as
  // the sum so the identity holds exactly in double arithmetic too.
  report.queue_seconds = SecondsBetween(job->submit_nanos, start_nanos);
  report.run_seconds = SecondsBetween(start_nanos, end_nanos);
  report.turnaround_seconds = report.queue_seconds + report.run_seconds;

  metrics_.AddCounter("service.jobs_finished", 1, "jobs");
  metrics_.AddCounter("service.trials", report.trials, "trials");
  metrics_.AddCounter("service.trials_invalid", report.trials_invalid, "trials");
  metrics_.AddCounter("service.trials_cancelled", report.trials_cancelled, "trials");
  metrics_.histogram("job.queue_seconds")->Observe(report.queue_seconds);
  metrics_.histogram("job.run_seconds")->Observe(report.run_seconds);
  metrics_.histogram("job.turnaround_seconds")->Observe(report.turnaround_seconds);
  if (report.phases.measure_wall_seconds > 0.0) {
    metrics_.histogram("job.overlap_fraction", "ratio")
        ->Observe(report.phases.OverlapFraction());
  }
  // Mirror the borrowed components the job used (idempotent gauge sets;
  // jobs sharing a measurer/model just refresh the same gauges).
  spec.measurer->ExportMetrics(&metrics_, "measurer");
  spec.model->ExportMetrics(&metrics_, "model");

  if (job_span.enabled()) {
    job_span.Arg("rounds", static_cast<int64_t>(rounds));
    job_span.Arg("outcome", JobStatusName(report.status));
    job_span.Finish();
  }
  job->Finish(std::move(report));
}

void TuningService::WaitAll() {
  std::vector<std::shared_ptr<JobState>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = jobs_;
  }
  for (const auto& job : snapshot) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return IsTerminal(job->status); });
  }
}

void TuningService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && drivers_.empty()) {
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& driver : drivers_) {
    driver.join();
  }
  drivers_.clear();
  // Every job is terminal now, so the trace is complete and stable.
  if (sink_ != nullptr && !options_.trace_path.empty()) {
    sink_->SaveToFile(options_.trace_path);
  }
}

std::string TuningService::MetricsSnapshotJson() {
  // Refresh the mirrored component gauges; the live counters/histograms
  // update in place as jobs run and need no refresh.
  metrics_.SetGauge("service.shared_caches", static_cast<double>(shared_cache_count()),
                    "caches");
  ProgramCacheStats cache = SharedCacheStats();
  metrics_.SetGauge("service.shared_cache.hits", static_cast<double>(cache.hits));
  metrics_.SetGauge("service.shared_cache.misses", static_cast<double>(cache.misses));
  metrics_.SetGauge("service.shared_cache.evictions",
                    static_cast<double>(cache.evictions));
  metrics_.SetGauge("service.shared_cache.cross_client_hits",
                    static_cast<double>(cache.cross_client_hits));
  metrics_.SetGauge("service.shared_cache.warm_inserts",
                    static_cast<double>(cache.warm_inserts));
  metrics_.SetGauge("service.warm_start.loaded",
                    static_cast<double>(warm_start_stats_.loaded), "artifacts");
  if (options_.record_store != nullptr) {
    options_.record_store->ExportMetrics(&metrics_, "store");
  }
  if (sink_ != nullptr) {
    metrics_.SetGauge("trace.spans", static_cast<double>(sink_->size()), "spans");
  }
  return metrics_.ToJson();
}

ProgramCacheStats TuningService::SharedCacheStats() const {
  ProgramCacheStats total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tag, cache] : tag_caches_) {
    ProgramCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.cross_client_hits += s.cross_client_hits;
    total.warm_inserts += s.warm_inserts;
  }
  return total;
}

size_t TuningService::shared_cache_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tag_caches_.size();
}

bool TuningService::SaveWarmState(const std::string& path) const {
  Tracer tracer(sink_, clock_);
  TraceSpan span(sink_ != nullptr ? &tracer : nullptr, "store_save", "store");
  ArtifactStore snapshot;
  {
    // Collect the caches under mu_, capture them outside it: CaptureCache
    // only takes per-shard cache locks, which jobs also take — never mu_ —
    // so the order here cannot deadlock with a running job.
    std::vector<std::pair<std::string, const ProgramCache*>> caches;
    {
      std::lock_guard<std::mutex> lock(mu_);
      caches.reserve(tag_caches_.size());
      for (const auto& [tag, cache] : tag_caches_) {
        caches.emplace_back(tag, cache.get());
      }
    }
    for (const auto& [tag, cache] : caches) {
      snapshot.CaptureCache(*cache, tag);
    }
  }
  if (span.enabled()) {
    span.Arg("count", static_cast<int64_t>(snapshot.size()));
  }
  return snapshot.SaveToFile(path);
}

}  // namespace ansor
