#include "src/service/tuning_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ansor {

using Clock = std::chrono::steady_clock;

namespace {

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* JobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

// Internal per-job state, jointly owned by the service and every JobHandle.
struct JobState {
  int64_t id = 0;
  JobSpec spec;
  Clock::time_point submit_time;
  std::atomic<bool> cancel{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;  // guarded by mu
  JobReport report;                       // guarded by mu; final once terminal

  void SetStatus(JobStatus s) {
    std::lock_guard<std::mutex> lock(mu);
    status = s;
  }
  void Finish(JobReport final_report) {
    {
      std::lock_guard<std::mutex> lock(mu);
      report = std::move(final_report);
      status = report.status;
    }
    cv.notify_all();
  }
};

int64_t JobHandle::id() const {
  CHECK(state_ != nullptr);
  return state_->id;
}

const std::string& JobHandle::name() const {
  CHECK(state_ != nullptr);
  return state_->spec.name;
}

JobStatus JobHandle::status() const {
  CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

bool JobHandle::Wait(double timeout_seconds) const {
  CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  auto terminal = [&] { return IsTerminal(state_->status); };
  if (std::isfinite(timeout_seconds)) {
    return state_->cv.wait_for(lock, std::chrono::duration<double>(
                                         std::max(0.0, timeout_seconds)),
                               terminal);
  }
  state_->cv.wait(lock, terminal);
  return true;
}

void JobHandle::Cancel() {
  CHECK(state_ != nullptr);
  state_->cancel.store(true, std::memory_order_release);
}

const JobReport& JobHandle::report() const {
  CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  CHECK(IsTerminal(state_->status)) << "JobHandle::report() before the job finished";
  return state_->report;
}

TuningService::TuningService(TuningServiceOptions options)
    : options_(std::move(options)),
      workers_(static_cast<size_t>(std::max(0, options_.num_workers))) {
  if (!options_.warm_start_path.empty()) {
    warm_start_stats_ = warm_store_.LoadFromFile(options_.warm_start_path);
  }
  int drivers = std::max(1, options_.max_concurrent_jobs);
  drivers_.reserve(static_cast<size_t>(drivers));
  for (int i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

TuningService::~TuningService() { Shutdown(); }

ProgramCache* TuningService::SharedCacheForTag(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ProgramCache>& cache = tag_caches_[tag];
  if (cache == nullptr) {
    cache = std::make_unique<ProgramCache>(options_.shared_cache_capacity);
  }
  return cache.get();
}

void TuningService::WarmTagCache(ProgramCache* cache,
                                 const std::shared_ptr<const ComputeDAG>& dag) {
  if (warm_store_.size() == 0 || cache == nullptr || dag == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!warmed_[cache].insert(dag->CanonicalHash()).second) {
      return;  // this (cache, task) pair was already warmed
    }
  }
  // Outside mu_: warming only touches the cache's own shard locks, and a
  // concurrent job hitting the cache mid-warm just sees a prefix of the
  // snapshots — results are invariant either way (artifacts are pure).
  warm_store_.WarmCache(cache, dag);
}

JobHandle TuningService::Submit(JobSpec spec) {
  CHECK(!spec.tasks.empty()) << "JobSpec needs at least one task";
  CHECK(spec.measurer != nullptr) << "JobSpec needs a measurer";
  CHECK(spec.model != nullptr) << "JobSpec needs a cost model";
  auto job = std::make_shared<JobState>();
  job->id = next_job_id_.fetch_add(1);
  job->spec = std::move(spec);
  job->submit_time = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!shutdown_) << "Submit after Shutdown";
    queue_.push_back(job);
    jobs_.push_back(job);
  }
  cv_.notify_one();
  JobHandle handle;
  handle.state_ = std::move(job);
  return handle;
}

void TuningService::DriverLoop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    RunJob(job.get());
  }
}

void TuningService::RunJob(JobState* job) {
  const Clock::time_point start = Clock::now();
  job->SetStatus(JobStatus::kRunning);
  const JobSpec& spec = job->spec;

  // Wire the per-task search options: the shared worker pool, a distinct
  // cache client id per (job, task), and — for nonempty similarity tags —
  // the service-owned shared cache for that tag. A caller-provided
  // per_task_search hook runs first so it can still veto the cache by
  // injecting its own.
  const size_t n_tasks = spec.tasks.size();
  std::vector<uint64_t> client_ids(n_tasks);
  std::vector<ProgramCache*> tag_caches(n_tasks, nullptr);
  for (size_t i = 0; i < n_tasks; ++i) {
    client_ids[i] = next_client_id_.fetch_add(1);
    if (options_.share_caches_by_tag && !spec.tasks[i].tag.empty()) {
      tag_caches[i] = SharedCacheForTag(spec.tasks[i].tag);
      // Fleet warm start: seed the shared cache with every persisted
      // artifact of this task before its tuner first touches it.
      WarmTagCache(tag_caches[i], spec.tasks[i].dag);
    }
  }
  TaskSchedulerOptions opts = spec.options;
  auto caller_hook = opts.per_task_search;
  opts.per_task_search = [&, caller_hook](size_t i, const SearchTask& task,
                                          SearchOptions* search) {
    if (caller_hook) {
      caller_hook(i, task, search);
    }
    search->thread_pool = &workers_;
    search->cache_client_id = client_ids[i];
    if (search->program_cache == nullptr && tag_caches[i] != nullptr) {
      search->program_cache = tag_caches[i];
    }
    if (search->record_store == nullptr) {
      search->record_store = options_.record_store;
    }
  };

  TaskScheduler scheduler(spec.tasks, spec.networks, spec.objective, spec.measurer,
                          spec.model, opts);

  const bool has_deadline = std::isfinite(spec.deadline_seconds);
  const Clock::time_point deadline =
      has_deadline ? start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(spec.deadline_seconds))
                   : Clock::time_point::max();
  bool deadline_hit = false;
  int rounds = 0;
  while (rounds < spec.total_rounds && !job->cancel.load(std::memory_order_acquire)) {
    if (has_deadline && Clock::now() >= deadline) {
      deadline_hit = true;
      break;
    }
    int pick = scheduler.NextTask();
    TaskTuner* tuner = scheduler.tuners()[static_cast<size_t>(pick)].get();
    double before = tuner->best_seconds();
    // The overlapped round: submit the batch, then extract this round's
    // training features while it measures. Other jobs' drivers overlap their
    // search with this batch on the same pool.
    PlannedRound round = tuner->PlanRound(spec.options.measures_per_round);
    PendingMeasureBatch batch = tuner->SubmitPlannedRound(round, &workers_);
    tuner->ExtractFeatures(&round);
    if (has_deadline) {
      double remaining = SecondsBetween(Clock::now(), deadline);
      if (!batch.WaitFor(remaining)) {
        // Deadline passed mid-batch: unstarted trials come back cancelled
        // (not charged to any budget); in-flight ones finish, so Wait()
        // below cannot hang.
        batch.Cancel();
        deadline_hit = true;
      }
    }
    double after = tuner->CommitRound(std::move(round), batch.Wait());
    scheduler.RecordRound(pick, before, after);
    ++rounds;
    if (deadline_hit) {
      break;
    }
  }

  const Clock::time_point end = Clock::now();
  JobReport report;
  // A job that spent its whole budget is completed even if a cancel or the
  // deadline raced with the final round.
  report.status = rounds >= spec.total_rounds ? JobStatus::kCompleted
                  : deadline_hit              ? JobStatus::kDeadlineExceeded
                                              : JobStatus::kCancelled;
  report.rounds_completed = rounds;
  report.objective_value = scheduler.ObjectiveValue();
  report.allocations = scheduler.allocations();
  report.allocation_trace = scheduler.allocation_trace();
  for (size_t i = 0; i < n_tasks; ++i) {
    const TaskTuner& tuner = *scheduler.tuners()[i];
    report.trials += tuner.total_measures();
    report.best_seconds.push_back(tuner.best_seconds());
    ProgramCacheClientStats cs = tuner.program_cache().ClientStats(client_ids[i]);
    report.cache.lookups += cs.lookups;
    report.cache.hits += cs.hits;
    report.cache.cross_client_hits += cs.cross_client_hits;
    if (options_.record_store != nullptr) {
      RecordClientStats rs = options_.record_store->ClientStatsFor(client_ids[i]);
      report.records.appended += rs.appended;
      report.records.deduplicated += rs.deduplicated;
    }
  }
  report.queue_seconds = SecondsBetween(job->submit_time, start);
  report.run_seconds = SecondsBetween(start, end);
  report.turnaround_seconds = SecondsBetween(job->submit_time, end);
  job->Finish(std::move(report));
}

void TuningService::WaitAll() {
  std::vector<std::shared_ptr<JobState>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = jobs_;
  }
  for (const auto& job : snapshot) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return IsTerminal(job->status); });
  }
}

void TuningService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && drivers_.empty()) {
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& driver : drivers_) {
    driver.join();
  }
  drivers_.clear();
}

ProgramCacheStats TuningService::SharedCacheStats() const {
  ProgramCacheStats total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tag, cache] : tag_caches_) {
    ProgramCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.cross_client_hits += s.cross_client_hits;
    total.warm_inserts += s.warm_inserts;
  }
  return total;
}

size_t TuningService::shared_cache_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tag_caches_.size();
}

bool TuningService::SaveWarmState(const std::string& path) const {
  ArtifactStore snapshot;
  {
    // Collect the caches under mu_, capture them outside it: CaptureCache
    // only takes per-shard cache locks, which jobs also take — never mu_ —
    // so the order here cannot deadlock with a running job.
    std::vector<std::pair<std::string, const ProgramCache*>> caches;
    {
      std::lock_guard<std::mutex> lock(mu_);
      caches.reserve(tag_caches_.size());
      for (const auto& [tag, cache] : tag_caches_) {
        caches.emplace_back(tag, cache.get());
      }
    }
    for (const auto& [tag, cache] : caches) {
      snapshot.CaptureCache(*cache, tag);
    }
  }
  return snapshot.SaveToFile(path);
}

}  // namespace ansor
