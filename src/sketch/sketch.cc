#include "src/sketch/sketch.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "src/lower/loop_tree.h"
#include "src/program/program_cache.h"
#include "src/support/util.h"

namespace ansor {
namespace {

int CountReduceIters(const Stage& stage) {
  int n = 0;
  for (const Iterator& it : stage.iters) {
    if (it.kind == IterKind::kReduce) {
      ++n;
    }
  }
  return n;
}

}  // namespace

std::vector<int> ApplyMultiLevelTiling(State* state, const std::string& stage_name,
                                       int space_levels, int reduce_levels) {
  int stage_idx = state->StageIndex(stage_name);
  CHECK_GE(stage_idx, 0);
  int n_space = static_cast<int>(state->stage(stage_idx).op->axis.size());
  int n_reduce = CountReduceIters(state->stage(stage_idx));

  std::vector<int> space_steps;
  int sp = space_levels;
  int rp = reduce_levels;
  // Forward over space axes: after splitting, axis a sits at position a*sp.
  // A level count of 1 means "leave the axis unsplit".
  for (int a = 0; a < n_space && sp > 1; ++a) {
    space_steps.push_back(static_cast<int>(state->steps().size()));
    std::vector<int64_t> lengths(static_cast<size_t>(sp - 1), 1);  // pending tile sizes
    if (!state->Split(stage_name, a * sp, lengths)) {
      return {};
    }
  }
  for (int b = 0; b < n_reduce && rp > 1; ++b) {
    std::vector<int64_t> lengths(static_cast<size_t>(rp - 1), 1);
    if (!state->Split(stage_name, n_space * sp + b * rp, lengths)) {
      return {};
    }
  }
  // Reorder into the SSRSRS pattern: S0.. S1.. R0.. S2.. R1.. S3..
  // (generalized: space level l for l in [0, sp), interleaving reduce levels
  // after the second space level).
  std::vector<int> order;
  auto push_space_level = [&](int level) {
    for (int a = 0; a < n_space; ++a) {
      order.push_back(a * sp + level);
    }
  };
  auto push_reduce_level = [&](int level) {
    for (int b = 0; b < n_reduce; ++b) {
      order.push_back(n_space * sp + b * rp + level);
    }
  };
  int reduce_emitted = 0;
  for (int level = 0; level < sp; ++level) {
    push_space_level(level);
    // Emit one reduce level after the 2nd space level and before the last.
    if (level >= 1 && reduce_emitted < rp && level < sp - 1) {
      push_reduce_level(reduce_emitted);
      ++reduce_emitted;
    }
  }
  while (reduce_emitted < rp) {
    // Degenerate cases (few space levels): append remaining reduce levels.
    push_reduce_level(reduce_emitted);
    ++reduce_emitted;
  }
  if (!state->Reorder(stage_name, order)) {
    return {};
  }
  return space_steps;
}

bool FuseConsumer(State* state, const std::string& producer, const std::string& consumer,
                  const std::vector<int>& producer_split_steps) {
  int consumer_idx = state->StageIndex(consumer);
  if (consumer_idx < 0) {
    return false;
  }
  int n_axes = static_cast<int>(state->stage(consumer_idx).op->axis.size());
  if (static_cast<int>(producer_split_steps.size()) != n_axes) {
    return false;
  }
  // The consumer split depth follows the producer's tiling depth, capped at
  // 3 parts (outer tiles / middle tiles / per-tile interior).
  int parts = 3;
  for (int step_idx : producer_split_steps) {
    int src_parts =
        static_cast<int>(state->steps()[static_cast<size_t>(step_idx)].lengths.size()) + 1;
    parts = std::min(parts, src_parts);
  }
  if (parts < 2) {
    return false;
  }
  for (int d = 0; d < n_axes; ++d) {
    if (!state->FollowSplit(consumer, d * parts,
                            producer_split_steps[static_cast<size_t>(d)], parts)) {
      return false;
    }
  }
  std::vector<int> order;
  for (int level = 0; level < parts; ++level) {
    for (int d = 0; d < n_axes; ++d) {
      order.push_back(d * parts + level);
    }
  }
  if (!state->Reorder(consumer, order)) {
    return false;
  }
  // Producer goes at the end of the consumer's second-to-last tile group.
  return state->ComputeAt(producer, consumer, (parts - 1) * n_axes - 1);
}

SketchRule RuleAlwaysInline() {
  SketchRule rule;
  rule.name = "AlwaysInline";
  rule.exclusive = true;
  rule.condition = [](const State& state, int i, const AnalysisConfig&) {
    return IsStrictInlinable(state, i);
  };
  rule.apply = [](const State& state, int i) {
    State next = state;
    std::vector<std::pair<State, int>> result;
    if (next.ComputeInline(state.stage(i).name())) {
      result.emplace_back(std::move(next), i - 1);
    }
    return result;
  };
  return rule;
}

SketchRule RuleMultiLevelTilingWithFusion(int space_levels, int reduce_levels) {
  SketchRule rule;
  rule.name = "MultiLevelTilingWithFusion";
  rule.exclusive = true;
  rule.condition = [](const State& state, int i, const AnalysisConfig& config) {
    return HasDataReuse(state, i, config) && HasFusibleConsumer(state, i, nullptr);
  };
  rule.apply = [space_levels, reduce_levels](const State& state, int i) {
    std::vector<std::pair<State, int>> result;
    State next = state;
    int consumer = -1;
    if (!HasFusibleConsumer(next, i, &consumer)) {
      return result;
    }
    std::string producer_name = next.stage(i).name();
    std::string consumer_name = next.stage(consumer).name();
    std::vector<int> split_steps =
        ApplyMultiLevelTiling(&next, producer_name, space_levels, reduce_levels);
    if (split_steps.empty() && !next.stage(i).op->axis.empty()) {
      return result;
    }
    if (!FuseConsumer(&next, producer_name, consumer_name, split_steps)) {
      return result;
    }
    result.emplace_back(std::move(next), i - 1);
    return result;
  };
  return rule;
}

SketchRule RuleAddCacheStage() {
  SketchRule rule;
  rule.name = "AddCacheStage";
  rule.exclusive = false;  // branches alongside plain multi-level tiling
  rule.condition = [](const State& state, int i, const AnalysisConfig& config) {
    return HasDataReuse(state, i, config) && !HasFusibleConsumer(state, i, nullptr);
  };
  rule.apply = [](const State& state, int i) {
    std::vector<std::pair<State, int>> result;
    State next = state;
    int cache_idx = -1;
    if (!next.CacheWrite(state.stage(i).name(), &cache_idx)) {
      return result;
    }
    // The working node keeps index i: it is now the cache stage carrying the
    // heavy body, whose fusible consumer is the original output (rule 5:
    // "i' = i", letting rule 4 fire next).
    result.emplace_back(std::move(next), i);
    return result;
  };
  return rule;
}

SketchRule RuleMultiLevelTiling(int space_levels, int reduce_levels) {
  SketchRule rule;
  rule.name = "MultiLevelTiling";
  rule.exclusive = true;
  rule.condition = [](const State& state, int i, const AnalysisConfig& config) {
    return HasDataReuse(state, i, config);
  };
  rule.apply = [space_levels, reduce_levels](const State& state, int i) {
    std::vector<std::pair<State, int>> result;
    State next = state;
    std::vector<int> split_steps = ApplyMultiLevelTiling(&next, state.stage(i).name(),
                                                         space_levels, reduce_levels);
    if (split_steps.empty() && !next.stage(i).op->axis.empty()) {
      return result;
    }
    result.emplace_back(std::move(next), i - 1);
    return result;
  };
  return rule;
}

SketchRule RuleAddRfactor() {
  SketchRule rule;
  rule.name = "AddRfactor";
  rule.exclusive = false;
  rule.condition = [](const State& state, int i, const AnalysisConfig& config) {
    if (!HasMoreReductionParallel(state, i, config)) {
      return false;
    }
    // Applicable only to a still-pristine single-reduction stage.
    const Stage& s = state.stage(i);
    return s.op->body.defined() && s.op->body.kind() == ExprKind::kReduce &&
           s.op->body->reduce_axes.size() == 1 && CountReduceIters(s) == 1;
  };
  rule.apply = [](const State& state, int i) {
    std::vector<std::pair<State, int>> result;
    State next = state;
    std::string name = state.stage(i).name();
    int n_space = static_cast<int>(state.stage(i).op->axis.size());
    // Split the reduction axis (pending length), then factor the inner part
    // out as a space axis of a new .rf stage.
    if (!next.Split(name, n_space, {1})) {
      return result;
    }
    int rf_idx = -1;
    if (!next.Rfactor(name, n_space + 1, &rf_idx)) {
      return result;
    }
    // The rf stage's iterators are [space..., kr, ko]. Two useful structures
    // exist (both visible in the paper's Fig. 5):
    //  (a) kr innermost under ko — vectorize the factored axis (sampled
    //      program 4: "for k_o: vectorize k_i: E.rf += ...");
    //  (b) kr outermost — parallelize the reduction (the NRM speedup of
    //      §7.1: "Ansor can parallelize reduction loop").
    // Emit both as separate sketches.
    const Stage& rf = next.stage(rf_idx);
    int n_iters = static_cast<int>(rf.iters.size());
    std::string rf_name = rf.name();
    {
      State vec_variant = next;
      std::vector<int> order;
      for (int p = 0; p < n_iters - 2; ++p) {
        order.push_back(p);
      }
      order.push_back(n_iters - 1);  // ko (reduce)
      order.push_back(n_iters - 2);  // kr (factored space, now innermost)
      if (vec_variant.Reorder(rf_name, order)) {
        result.emplace_back(std::move(vec_variant), i - 1);
      }
    }
    {
      State par_variant = next;
      std::vector<int> order;
      order.push_back(n_iters - 2);  // kr leads: fused into the parallel loop
      for (int p = 0; p < n_iters - 2; ++p) {
        order.push_back(p);
      }
      order.push_back(n_iters - 1);  // ko stays innermost
      if (par_variant.Reorder(rf_name, order)) {
        result.emplace_back(std::move(par_variant), i - 1);
      }
    }
    return result;
  };
  return rule;
}

SketchRule RuleSkip() {
  SketchRule rule;
  rule.name = "Skip";
  rule.exclusive = true;
  rule.condition = [](const State& state, int i, const AnalysisConfig&) {
    return !IsStrictInlinable(state, i);
  };
  rule.apply = [](const State& state, int i) {
    std::vector<std::pair<State, int>> result;
    result.emplace_back(state, i - 1);
    return result;
  };
  return rule;
}

std::vector<State> GenerateSketches(const ComputeDAG* dag, const SketchOptions& options) {
  std::vector<SketchRule> rules = options.custom_rules;
  rules.push_back(RuleAlwaysInline());
  // Rfactor branches as an alternative derivation at the same node (paper
  // example 2: sketch 2 via rules 5+4, sketch 3 via rule 6), so it must be
  // tried before the exclusive tiling rules.
  if (options.enable_rfactor) {
    rules.push_back(RuleAddRfactor());
  }
  if (options.enable_fusion) {
    rules.push_back(
        RuleMultiLevelTilingWithFusion(options.space_levels, options.reduce_levels));
  }
  if (options.enable_cache_write) {
    rules.push_back(RuleAddCacheStage());
  }
  rules.push_back(RuleMultiLevelTiling(options.space_levels, options.reduce_levels));
  rules.push_back(RuleSkip());

  std::vector<State> sketches;
  std::unordered_set<std::string> seen;
  std::deque<std::pair<State, int>> queue;
  {
    State init(dag);
    int last = static_cast<int>(init.stages().size()) - 1;
    queue.emplace_back(std::move(init), last);
  }
  while (!queue.empty() && sketches.size() < options.max_sketches) {
    auto [state, i] = std::move(queue.front());
    queue.pop_front();
    if (i < 0) {
      if (seen.insert(StepSignature(state)).second) {
        sketches.push_back(std::move(state));
      }
      continue;
    }
    for (const SketchRule& rule : rules) {
      if (!rule.condition(state, i, options.analysis)) {
        continue;
      }
      for (auto& [next, next_i] : rule.apply(state, i)) {
        queue.emplace_back(std::move(next), next_i);
      }
      if (rule.exclusive) {
        break;
      }
    }
  }
  return sketches;
}

std::vector<State> SampleLowerablePopulation(const ComputeDAG* dag, int count, Rng* rng,
                                             const SamplerOptions& sampler,
                                             const SketchOptions& options,
                                             ProgramCache* cache) {
  std::vector<State> population;
  std::vector<State> sketches = GenerateSketches(dag, options);
  if (sketches.empty() || count <= 0) {
    return population;
  }
  int attempts = 0;
  while (static_cast<int>(population.size()) < count && attempts < count * 16) {
    ++attempts;
    State s = SampleCompleteProgram(sketches[rng->Index(sketches.size())], dag, rng, sampler);
    if (s.failed()) {
      continue;
    }
    // With a cache the artifact built for this probe is kept: the first
    // scoring pass over the population gets it for free.
    bool lowerable = cache != nullptr ? cache->GetOrBuild(s)->ok() : Lower(s).ok;
    if (lowerable) {
      population.push_back(std::move(s));
    }
  }
  return population;
}

}  // namespace ansor
