// Sketch generation (paper §4.1, Table 1).
//
// Sketches are the high-level program structures: tile/fusion skeletons with
// pending tile sizes and no annotations. They are produced by recursively
// applying derivation rules to states (S, i), where i is the working node
// index, visiting the DAG from output to input. Users can register custom
// rules (paper: "we allow users to register new derivation rules and
// integrate them seamlessly with existing rules").
#ifndef ANSOR_SRC_SKETCH_SKETCH_H_
#define ANSOR_SRC_SKETCH_SKETCH_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/predicates.h"
#include "src/ir/state.h"
#include "src/sampler/annotation.h"

namespace ansor {

class ProgramCache;

// A derivation rule: if `condition` holds at (state, stage_idx), `apply`
// produces successor (state, next_stage_idx) pairs. `exclusive` rules stop
// lower-priority rules from also firing on the same state (mirroring TVM's
// kApplyAndSkipRest), while additive rules branch the derivation.
struct SketchRule {
  std::string name;
  bool exclusive = true;
  std::function<bool(const State&, int, const AnalysisConfig&)> condition;
  std::function<std::vector<std::pair<State, int>>(const State&, int)> apply;
};

struct SketchOptions {
  AnalysisConfig analysis;
  // Custom rules are tried before the built-in ones, in order.
  std::vector<SketchRule> custom_rules;
  // Safety bound on enumeration.
  size_t max_sketches = 64;
  // Ablation knobs: the "Limited space" variant of §7.1/§7.3 shrinks the
  // structure space to roughly what manual templates cover.
  bool enable_fusion = true;
  bool enable_cache_write = true;
  bool enable_rfactor = true;
  int space_levels = 4;
  int reduce_levels = 2;
};

// Built-in rules (exposed for tests and for composing custom rule sets).
SketchRule RuleAlwaysInline();              // Table 1, rule 2
SketchRule RuleMultiLevelTilingWithFusion(int space_levels = 4,
                                          int reduce_levels = 2);  // rule 4
SketchRule RuleAddCacheStage();             // rule 5
SketchRule RuleMultiLevelTiling(int space_levels = 4, int reduce_levels = 2);  // rule 3
SketchRule RuleAddRfactor();                // rule 6
SketchRule RuleSkip();                      // rule 1

// The derivation engine: returns all terminal sketches for the DAG.
std::vector<State> GenerateSketches(const ComputeDAG* dag,
                                    const SketchOptions& options = SketchOptions());

// Samples up to `count` complete programs from the DAG's sketches that also
// lower successfully — the canonical way to seed an evolution population
// (used by tests and benches). Gives up after 16 * count attempts so an
// unsatisfiable request still terminates. When `cache` is given, the
// lowerability probe goes through it, so the compiled artifact is kept and
// reused by the first scoring pass instead of being thrown away.
std::vector<State> SampleLowerablePopulation(const ComputeDAG* dag, int count, Rng* rng,
                                             const SamplerOptions& sampler = SamplerOptions(),
                                             const SketchOptions& options = SketchOptions(),
                                             ProgramCache* cache = nullptr);

// The "SSRSRS" multi-level tile structure (paper §4.1) applied to one stage:
// splits every space axis into `space_levels` parts and every reduce axis into
// `reduce_levels` parts, then reorders into S..S R S R S order. Returns the
// indices (into state->steps()) of the space-axis split steps, for follow-
// split consumers.
std::vector<int> ApplyMultiLevelTiling(State* state, const std::string& stage,
                                       int space_levels = 4, int reduce_levels = 2);

// Fuses `consumer` onto the tiled `producer`: follow-splits every consumer
// axis into up to 3 parts tracking the producer's splits, reorders, and
// computes the producer at the end of the consumer's second-to-last tile
// group. The part count adapts to shallower producer tilings (limited-space
// ablations).
bool FuseConsumer(State* state, const std::string& producer, const std::string& consumer,
                  const std::vector<int>& producer_split_steps);

}  // namespace ansor

#endif  // ANSOR_SRC_SKETCH_SKETCH_H_
