// Tunes a ResNet-style convolution layer and compares Ansor against the
// vendor library and template-guided search on the same simulated hardware —
// a single-case slice of the paper's Figure 6 experiment.
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"

int main() {
  // conv2d 3x3, 128 channels on 28x28 feature maps (a ResNet-50 bottleneck
  // layer), batch 4, with folded batch-norm and ReLU fused behind it.
  ansor::ComputeDAG dag = ansor::MakeConvLayer(4, 128, 28, 28, 128, 3, 3, 1, 1);
  ansor::SearchTask task = ansor::MakeSearchTask("convlayer", dag);
  ansor::MachineModel machine = ansor::MachineModel::IntelCpu20Core();
  double gflop = task.flop_count() / 1e9;
  std::printf("ConvLayer: %.2f GFLOP per inference\n\n", gflop);

  // Vendor library (the PyTorch/MKL-DNN stand-in): fixed expert kernels.
  {
    ansor::Measurer measurer(machine);
    ansor::TuneResult r = ansor::VendorLibrary(task, &measurer);
    std::printf("%-24s %8.3f ms  %8.1f GFLOPS\n", "vendor library:", r.best_seconds * 1e3,
                gflop / r.best_seconds);
  }
  // AutoTVM-style template search.
  {
    ansor::Measurer measurer(machine);
    ansor::TuneResult r =
        ansor::TemplateSearch(task, &measurer, /*trials=*/ansor::examples::ScaledTrials(64));
    std::printf("%-24s %8.3f ms  %8.1f GFLOPS  (%lld trials)\n",
                "template search:", r.best_seconds * 1e3, gflop / r.best_seconds,
                static_cast<long long>(measurer.trial_count()));
  }
  // Ansor.
  {
    ansor::Measurer measurer(machine);
    ansor::GbdtCostModel model;
    ansor::SearchOptions options;
    options.population = ansor::examples::ScaledPopulation(32);
    options.generations = 3;
    ansor::TuneResult r = ansor::TuneTask(task, &measurer, &model,
                                          /*trials=*/ansor::examples::ScaledTrials(64), 16,
                                          options);
    std::printf("%-24s %8.3f ms  %8.1f GFLOPS  (%lld trials)\n",
                "Ansor:", r.best_seconds * 1e3, gflop / r.best_seconds,
                static_cast<long long>(measurer.trial_count()));
    if (r.best_state.has_value()) {
      std::printf("\nBest Ansor program:\n%s\n", ansor::Lower(*r.best_state).ToString().c_str());
    }
  }
  return 0;
}
