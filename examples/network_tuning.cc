// Tunes MobileNet-V2 end-to-end with the gradient-descent task scheduler
// (paper §6): extracts the network's unique subgraph tasks, allocates tuning
// rounds by objective gradient, and reports the final per-task allocation and
// the end-to-end latency — a small-budget version of the Figure 10 setup.
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"

int main() {
  ansor::NetworkTasks net = ansor::MobileNetV2Tasks(/*batch=*/1);
  std::printf("MobileNet-V2: %zu unique subgraph tasks\n", net.tasks.size());

  ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
  ansor::GbdtCostModel model;

  std::vector<ansor::NetworkSpec> specs(1);
  specs[0].name = net.name;
  for (size_t i = 0; i < net.tasks.size(); ++i) {
    specs[0].task_indices.push_back(static_cast<int>(i));
  }
  ansor::TaskSchedulerOptions options;
  options.measures_per_round = ansor::examples::ScaledTrials(10);
  options.search.population = ansor::examples::ScaledPopulation(24);
  options.search.generations = 2;
  ansor::TaskScheduler scheduler(net.tasks, specs, ansor::Objective::SumLatency(), &measurer,
                                 &model, options);
  int rounds_per_task = std::max(1, static_cast<int>(3 * ansor::examples::Scale()));
  scheduler.Tune(/*total_rounds=*/rounds_per_task * static_cast<int>(net.tasks.size()));

  std::printf("\n%-16s %7s %7s %12s %14s\n", "task", "weight", "rounds", "latency(us)",
              "GFLOPS");
  for (size_t i = 0; i < net.tasks.size(); ++i) {
    const auto& tuner = scheduler.tuners()[i];
    std::printf("%-16s %7d %7d %12.1f %14.1f\n", net.tasks[i].name.c_str(),
                net.tasks[i].weight, scheduler.allocations()[i],
                tuner->best_seconds() * 1e6, tuner->best_throughput() / 1e9);
  }
  std::printf("\nEnd-to-end MobileNet-V2 latency: %.3f ms (%lld measurement trials)\n",
              scheduler.NetworkLatency(0) * 1e3,
              static_cast<long long>(measurer.trial_count()));
  std::printf("Note how the scheduler spends more rounds on high-impact subgraphs\n"
              "instead of splitting the budget evenly.\n");
  return 0;
}
