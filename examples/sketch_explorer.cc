// Reproduces the paper's Figure 5: prints the generated sketches and example
// sampled programs for the two example inputs of §4.1.
//
//   Example input 1: C = A x B followed by ReLU  -> fused SSRSRS sketch
//   Example input 2: relu -> zero-pad -> tall-skinny matmul
//                     -> cache-write sketch and rfactor sketch
#include <cstdio>

#include "src/core/ansor.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"

namespace {

void Explore(const std::string& title, const ansor::ComputeDAG& dag) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("Computation definition:\n%s\n", dag.ToString().c_str());

  auto sketches = ansor::GenerateSketches(&dag);
  std::printf("%zu sketches generated.\n\n", sketches.size());
  for (size_t i = 0; i < sketches.size(); ++i) {
    std::printf("--- Generated sketch %zu (tile sizes pending) ---\n%s\n", i + 1,
                sketches[i].ToString().c_str());
  }

  // Sample two complete programs from the first sketch (paper: "Sampled
  // program 1 / 2").
  ansor::Rng rng(42);
  int printed = 0;
  for (int attempt = 0; attempt < 32 && printed < 2; ++attempt) {
    ansor::State program = ansor::SampleCompleteProgram(
        sketches[rng.Index(sketches.size())], &dag, &rng);
    if (program.failed() || !ansor::Lower(program).ok) {
      continue;
    }
    ++printed;
    std::printf("--- Sampled program %d (complete: tile sizes + annotations) ---\n%s\n",
                printed, ansor::Lower(program).ToString().c_str());
  }
}

}  // namespace

int main() {
  // Example input 1 of Figure 5 (scaled shapes).
  {
    ansor::Tensor a = ansor::Placeholder("A", {512, 512});
    ansor::Tensor b = ansor::Placeholder("B", {512, 512});
    ansor::Tensor c = ansor::Compute("C", {512, 512}, [&](const std::vector<ansor::Expr>& i) {
      ansor::Expr k = ansor::ReduceAxis(512, "k");
      return ansor::Sum(a(i[0], k) * b(k, i[1]), {k});
    });
    ansor::Tensor d = ansor::Compute("D", {512, 512}, [&](const std::vector<ansor::Expr>& i) {
      return ansor::Max(c(i[0], i[1]), ansor::FloatImm(0.0));
    });
    Explore("Example input 1: matmul + ReLU", ansor::ComputeDAG({a, b, c, d}));
  }

  // Example input 2 of Figure 5: relu -> pad -> tall-skinny matmul.
  {
    ansor::Tensor a = ansor::Placeholder("A", {8, 400});
    ansor::Tensor dm = ansor::Placeholder("Dm", {512, 4});
    ansor::Tensor b = ansor::Compute("B", {8, 400}, [&](const std::vector<ansor::Expr>& i) {
      return ansor::Max(a(i[0], i[1]), ansor::FloatImm(0.0));
    });
    ansor::Tensor c = ansor::Compute("C", {8, 512}, [&](const std::vector<ansor::Expr>& i) {
      return ansor::Select(i[1] < ansor::IntImm(400),
                           b(i[0], ansor::Min(i[1], ansor::IntImm(399))),
                           ansor::FloatImm(0.0));
    });
    ansor::Tensor e = ansor::Compute("E", {8, 4}, [&](const std::vector<ansor::Expr>& i) {
      ansor::Expr k = ansor::ReduceAxis(512, "k");
      return ansor::Sum(c(i[0], k) * dm(k, i[1]), {k});
    });
    Explore("Example input 2: relu -> pad -> tall-skinny matmul",
            ansor::ComputeDAG({a, dm, b, c, e}));
  }
  return 0;
}
