// Demonstrates registering a user-defined derivation rule (paper §4.1: "we
// allow users to register new derivation rules and integrate them seamlessly
// with existing rules").
//
// The custom rule below adds an extra sketch family for reduction stages: it
// splits the reduction axis into three levels instead of Ansor's default two
// (useful for very deep reductions on machines with deep cache hierarchies).
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"
#include "src/sketch/sketch.h"

int main() {
  ansor::SketchRule deep_reduction;
  deep_reduction.name = "DeepReductionTiling";
  deep_reduction.exclusive = false;  // branches alongside the built-in rules
  deep_reduction.condition = [](const ansor::State& state, int i,
                                const ansor::AnalysisConfig& config) {
    return ansor::HasDataReuse(state, i, config) &&
           ansor::ReductionDomainSize(state.stage(i)) >= 256;
  };
  deep_reduction.apply = [](const ansor::State& state, int i) {
    ansor::State next = state;
    std::vector<std::pair<ansor::State, int>> result;
    // 4 space levels, 3 reduction levels: "SSRSRSR"-style structure.
    auto steps = ansor::ApplyMultiLevelTiling(&next, state.stage(i).name(),
                                              /*space_levels=*/4, /*reduce_levels=*/3);
    if (!steps.empty()) {
      result.emplace_back(std::move(next), i - 1);
    }
    return result;
  };

  ansor::ComputeDAG dag = ansor::MakeMatmul(256, 256, 2048);

  ansor::SketchOptions plain;
  ansor::SketchOptions with_custom;
  with_custom.custom_rules.push_back(deep_reduction);

  auto base = ansor::GenerateSketches(&dag, plain);
  auto extended = ansor::GenerateSketches(&dag, with_custom);
  std::printf("sketches without custom rule: %zu\n", base.size());
  std::printf("sketches with custom rule:    %zu\n", extended.size());

  // Tune inside the extended space.
  ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
  ansor::GbdtCostModel model;
  ansor::SearchTask task = ansor::MakeSearchTask("deep-matmul", dag);
  ansor::SearchOptions options;
  options.sketch = with_custom;
  options.population = ansor::examples::ScaledPopulation(24);
  options.generations = 2;
  ansor::TuneResult r = ansor::TuneTask(task, &measurer, &model,
                                        /*trials=*/ansor::examples::ScaledTrials(48), 16,
                                        options);
  if (r.best_state.has_value()) {
    std::printf("\nbest program with custom rule: %.3f ms, %.1f GFLOPS\n",
                r.best_seconds * 1e3, r.best_throughput / 1e9);
    // Did the winner use the deep-reduction structure (3 reduce levels)?
    int reduce_splits = 0;
    for (const ansor::Step& step : r.best_state->steps()) {
      if (step.kind == ansor::StepKind::kSplit && step.lengths.size() == 2) {
        ++reduce_splits;
      }
    }
    std::printf("winner uses a 3-level reduction split: %s\n",
                reduce_splits > 0 ? "yes" : "no");
  }
  return 0;
}
