// Shared helper for the example binaries: one environment knob that scales
// every search budget, following the same pattern as ANSOR_BENCH_SCALE in
// bench/bench_util.h but with its own (deliberately lower) clamp and floors —
// examples only need to demonstrate the API, benches need statistically
// meaningful trial counts.
//
// The CTest smoke group (examples/CMakeLists.txt) runs each example with
// ANSOR_EXAMPLE_SCALE=0.05 so the binaries finish in seconds while still
// exercising the full pipeline; interactive runs default to 1.0.
#ifndef ANSOR_EXAMPLES_EXAMPLE_UTIL_H_
#define ANSOR_EXAMPLES_EXAMPLE_UTIL_H_

#include <algorithm>

#include "src/support/util.h"

namespace ansor {
namespace examples {

inline double Scale() { return std::max(0.01, EnvDouble("ANSOR_EXAMPLE_SCALE", 1.0)); }

// Measurement-trial budgets: keep at least a handful so the search still
// completes a round and produces a best program.
inline int ScaledTrials(int base) {
  return std::max(4, static_cast<int>(base * Scale()));
}

// Evolutionary population / per-round sample counts: a slightly higher floor
// so selection pressure remains meaningful at tiny scales.
inline int ScaledPopulation(int base) {
  return std::max(8, static_cast<int>(base * Scale()));
}

}  // namespace examples
}  // namespace ansor

#endif  // ANSOR_EXAMPLES_EXAMPLE_UTIL_H_
