// Tuning-record workflow: tune once with logging enabled, save the records to
// a file, then — in a fresh "deployment" context — load the log and apply the
// best schedule WITHOUT re-running the search (TVM-style record files).
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"
#include "src/search/record_log.h"

int main() {
  ansor::ComputeDAG dag = ansor::MakeConv2d(1, 64, 28, 28, 64, 3, 3, 1, 1);
  ansor::SearchTask task = ansor::MakeSearchTask("conv", dag);
  const std::string log_path = "/tmp/ansor_records_example.log";

  // --- Tuning phase: search with a record log attached. -----------------
  {
    ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
    ansor::GbdtCostModel model;
    ansor::RecordLog log;
    ansor::SearchOptions options;
    options.population = ansor::examples::ScaledPopulation(24);
    options.generations = 2;
    options.record_log = &log;
    ansor::TuneResult r = ansor::TuneTask(task, &measurer, &model,
                                          /*trials=*/ansor::examples::ScaledTrials(48), 16,
                                          options);
    log.SaveToFile(log_path);
    std::printf("tuned: best %.3f ms; %zu records saved to %s\n", r.best_seconds * 1e3,
                log.records().size(), log_path.c_str());
  }

  // --- Deployment phase: no search, just replay the best record. --------
  {
    ansor::RecordLog log;
    if (!log.LoadFromFile(log_path)) {
      std::printf("failed to load records\n");
      return 1;
    }
    ansor::State best = log.ReplayBest(task.dag.get());
    if (best.failed()) {
      std::printf("no record for this task\n");
      return 1;
    }
    ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
    ansor::MeasureResult r = measurer.Measure(best);
    std::printf("replayed best from log: %.3f ms, %.1f GFLOPS (no search needed)\n",
                r.seconds * 1e3, r.throughput / 1e9);
    std::printf("\n%s\n", ansor::Lower(best).ToString().c_str());
  }
  std::remove(log_path.c_str());
  return 0;
}
