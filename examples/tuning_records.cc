// Persistence workflow: tune once with the fleet store attached, save the
// binary record log AND an artifact snapshot, then — in a fresh "restart"
// context — resume tuning warm (no recompilation of anything already seen)
// and finally apply the best schedule with no search at all.
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"
#include "src/program/program_cache.h"
#include "src/store/artifact_store.h"
#include "src/store/record_store.h"

int main() {
  ansor::ComputeDAG dag = ansor::MakeConv2d(1, 64, 28, 28, 64, 3, 3, 1, 1);
  ansor::SearchTask task = ansor::MakeSearchTask("conv", dag);
  const std::string record_path = "/tmp/ansor_records_example.bin";
  const std::string artifact_path = "/tmp/ansor_artifacts_example.bin";

  ansor::SearchOptions options;
  options.population = ansor::examples::ScaledPopulation(24);
  options.generations = 2;
  int trials = ansor::examples::ScaledTrials(48);

  // --- Tuning phase: search with the record store + a capturable cache. --
  {
    ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
    ansor::GbdtCostModel model;
    ansor::RecordStore store;
    ansor::ProgramCache cache;
    ansor::SearchOptions tuning = options;
    tuning.record_store = &store;
    tuning.program_cache = &cache;
    ansor::TuneResult r = ansor::TuneTask(task, &measurer, &model, trials, 16, tuning);

    // Records go to the compact binary codec (text stays readable via
    // RecordCodec::kText — the legacy RecordLog format).
    store.SaveToFile(record_path, ansor::RecordCodec::kBinary);
    // The artifact snapshot is what makes the *next* run warm: every
    // compiled program's features and legality verdicts, ready to serve as
    // cache hits without replay/lowering.
    ansor::ArtifactStore artifacts;
    artifacts.CaptureCache(cache);
    artifacts.SaveToFile(artifact_path);
    std::printf("tuned: best %.3f ms; %zu records + %zu artifacts saved\n",
                r.best_seconds * 1e3, store.size(), artifacts.size());
  }

  // --- Resume phase: reload state, continue tuning without recompiling. --
  {
    ansor::RecordStore store;
    ansor::RecordLoadStats loaded = store.LoadFromFile(record_path);
    if (!loaded) {
      std::printf("failed to load records\n");
      return 1;
    }
    std::printf("resumed: %zu records loaded, %zu skipped, index %s\n", loaded.loaded,
                loaded.skipped, loaded.index_ok ? "verified" : "rebuilt");

    ansor::ArtifactStore artifacts;
    ansor::ProgramCache cache;
    artifacts.LoadFromFile(artifact_path);
    size_t warmed = artifacts.WarmCache(&cache, task.dag);

    ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
    ansor::GbdtCostModel model;
    ansor::SearchOptions resume = options;
    resume.record_store = &store;
    resume.program_cache = &cache;
    ansor::TuneResult r = ansor::TuneTask(task, &measurer, &model, trials, 16, resume);
    ansor::ProgramCacheStats stats = cache.stats();
    std::printf("warm resume: best %.3f ms; %zu artifacts restored, %lld served as "
                "hits, %lld compiled fresh\n",
                r.best_seconds * 1e3, warmed, static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses));

    // --- Deployment: no search, just replay the store's best record. ----
    ansor::State best = store.ReplayBest(task.dag.get());
    if (best.failed()) {
      std::printf("no record for this task\n");
      return 1;
    }
    ansor::MeasureResult m = measurer.Measure(best);
    std::printf("replayed best from store: %.3f ms, %.1f GFLOPS (no search needed)\n",
                m.seconds * 1e3, m.throughput / 1e9);
    std::printf("\n%s\n", ansor::Lower(best).ToString().c_str());
  }
  std::remove(record_path.c_str());
  std::remove(artifact_path.c_str());
  return 0;
}
