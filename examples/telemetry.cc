// Telemetry workflow: run a traced TuningService twice — a cold service that
// persists its warm state, then a restarted service warm-started from it —
// and fold both JSONL traces into per-phase attribution reports.
//
// The warm-start claim is visible right in the trace: "artifact_build" spans
// are recorded only on program-cache misses (hits record nothing), so the
// cold trace is full of them while the warm re-run of the same fixed-seed
// search has zero — every program the first service compiled is served from
// the restored artifacts.
#include <cstdio>
#include <string>
#include <vector>

#include "examples/example_util.h"
#include "src/core/ansor.h"
#include "src/service/tuning_service.h"
#include "src/telemetry/trace.h"
#include "src/telemetry/trace_report.h"

namespace {

struct ServiceRun {
  bool ok = false;
  ansor::JobReport report;
  size_t artifact_builds = 0;  // cache-miss compilations seen in the trace
  std::string rendered;        // tools/trace_report's fold of the trace
};

ServiceRun RunService(const std::string& trace_path, const std::string& warm_start_path,
                      const std::string& save_warm_path,
                      const std::string& metrics_path) {
  ServiceRun run;
  ansor::TuningServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.trace_path = trace_path;
  service_options.warm_start_path = warm_start_path;

  ansor::Measurer measurer(ansor::MachineModel::IntelCpu20Core());
  ansor::GbdtCostModel model;
  {
    ansor::TuningService service(service_options);

    ansor::JobSpec spec;
    spec.name = "conv_job";
    // Two structurally similar tasks under one tag: they share the
    // service-owned cache, which is also what the warm state restores.
    spec.tasks = {
        ansor::MakeSearchTask("mm_a", ansor::MakeMatmul(48, 32, 32), 1, "mm"),
        ansor::MakeSearchTask("mm_b", ansor::MakeMatmul(32, 48, 32), 1, "mm"),
    };
    spec.networks = {{"net", {0, 1}}};
    spec.objective = ansor::Objective::SumLatency();
    spec.options.measures_per_round = 8;
    spec.options.seed = 7;
    spec.options.search.population = ansor::examples::ScaledPopulation(16);
    spec.options.search.generations = 2;
    spec.options.search.random_samples_per_round = 6;
    spec.options.search.seed = 21;
    spec.total_rounds = std::max(2, ansor::examples::ScaledTrials(32) / 8);
    spec.measurer = &measurer;
    spec.model = &model;

    ansor::JobHandle handle = service.Submit(std::move(spec));
    service.WaitAll();
    run.report = handle.report();
    if (!save_warm_path.empty()) {
      service.SaveWarmState(save_warm_path);
    }
    if (!metrics_path.empty()) {
      service.metrics()->SaveJsonToFile(metrics_path);
    }
    service.Shutdown();  // flushes the JSONL trace to trace_path
  }

  std::vector<ansor::TraceEvent> events;
  if (!ansor::TraceSink::LoadFromFile(trace_path, &events)) {
    std::printf("failed to load trace %s\n", trace_path.c_str());
    return run;
  }
  for (const ansor::TraceEvent& event : events) {
    if (event.name == "artifact_build") {
      ++run.artifact_builds;
    }
  }
  run.rendered = ansor::RenderReport(ansor::FoldEvents(events));
  run.ok = true;
  return run;
}

void PrintPhases(const char* label, const ansor::JobReport& report) {
  const ansor::SearchPhaseTimes& p = report.phases;
  std::printf("%s job phases (s): sketch %.3f, search %.3f, features %.3f, "
              "measure %.3f, commit %.3f; overlap %.0f%% of measurement; "
              "trials %lld valid / %lld invalid / %lld cancelled\n",
              label, p.sketch_seconds, p.search_seconds, p.feature_seconds,
              p.measure_wall_seconds, p.commit_seconds, 100.0 * p.OverlapFraction(),
              static_cast<long long>(report.trials_valid),
              static_cast<long long>(report.trials_invalid),
              static_cast<long long>(report.trials_cancelled));
}

}  // namespace

int main() {
  const std::string cold_trace = "/tmp/ansor_telemetry_trace_cold.jsonl";
  const std::string warm_trace = "/tmp/ansor_telemetry_trace_warm.jsonl";
  const std::string warm_state = "/tmp/ansor_telemetry_warm_state.bin";
  const std::string metrics_path = "/tmp/ansor_telemetry_metrics.json";

  // Cold service: tune, persist the compiled artifacts + the metrics
  // snapshot, leave a full trace behind.
  ServiceRun cold = RunService(cold_trace, /*warm_start_path=*/"", warm_state,
                               metrics_path);
  if (!cold.ok) {
    return 1;
  }
  PrintPhases("cold", cold.report);

  // Restarted service: same fixed-seed job, warm-started from the cold
  // service's artifacts. The search replays the same trajectory, so every
  // compilation it would do is already in the restored cache.
  ServiceRun warm = RunService(warm_trace, warm_state, /*save_warm_path=*/"",
                               /*metrics_path=*/"");
  if (!warm.ok) {
    return 1;
  }
  PrintPhases("warm", warm.report);

  std::printf("\ncompilations traced (artifact_build spans): cold %zu, warm %zu\n",
              cold.artifact_builds, warm.artifact_builds);
  std::printf("\n--- cold trace, folded (what tools/trace_report prints) ---\n%s",
              cold.rendered.c_str());
  std::printf("\n--- warm trace, folded ---\n%s", warm.rendered.c_str());
  std::printf("\ntrace files kept for inspection:\n  %s\n  %s\nmetrics snapshot: %s\n",
              cold_trace.c_str(), warm_trace.c_str(), metrics_path.c_str());

  std::remove(warm_state.c_str());
  // The warm run of the identical fixed-seed search must compile nothing.
  if (warm.artifact_builds != 0) {
    std::printf("warm run expected 0 artifact_build spans, saw %zu\n",
                warm.artifact_builds);
    return 1;
  }
  return 0;
}
