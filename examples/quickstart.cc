// Quickstart: define a computation, auto-schedule it, print the best program.
//
//   $ ./build/examples/quickstart
//
// This is the minimal end-to-end use of the public API: a matrix
// multiplication is tuned for the (simulated) 20-core Intel CPU with a small
// measurement budget, and the resulting loop nest plus its estimated
// throughput are printed.
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/ansor.h"

int main() {
  // 1. Define the computation (paper Fig. 1): C = A x B, 512x512x512.
  ansor::ComputeDAG dag = ansor::MakeMatmul(512, 512, 512);
  std::printf("Computation definition:\n%s\n", dag.ToString().c_str());

  // 2. Auto-schedule with Ansor: hierarchical sketch space + random
  //    annotation + evolutionary fine-tuning with a learned cost model.
  ansor::AnsorOptions options;
  options.target = ansor::TargetKind::kIntelCpu;
  options.search.population = ansor::examples::ScaledPopulation(options.search.population);
  options.search.random_samples_per_round =
      ansor::examples::ScaledPopulation(options.search.random_samples_per_round);
  ansor::AnsorResult result = ansor::AutoSchedule(
      dag, /*num_measure_trials=*/ansor::examples::ScaledTrials(64), options);

  if (!result.ok) {
    std::printf("search failed to find a valid program\n");
    return 1;
  }
  std::printf("Best program found (%.2f GFLOPS, %.3f ms):\n\n%s\n", result.gflops,
              result.seconds * 1e3, result.best_program.c_str());
  return 0;
}
