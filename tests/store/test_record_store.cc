// RecordStore: binary container round trips, text migration, signature
// dedup, corruption recovery, and concurrent fleet appends.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "src/store/record_store.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// One record exercising every step kind (and both annotation paths), so a
// codec bug in any field shows up as a SerializeRecord mismatch.
std::vector<TuningRecord> AllKindsRecords() {
  std::vector<TuningRecord> records;
  TuningRecord a;
  a.task_id = 0x0123456789abcdefULL;
  a.seconds = 3.5e-4;
  a.throughput = 2.75e9;
  a.steps = {
      MakeSplitStep("C", 0, {8, 4}),
      MakeFollowSplitStep("D", 1, 0, 2),
      MakeFuseStep("C", 0, 2),
      MakeReorderStep("C", {2, 0, 1}),
      MakeComputeAtStep("C", "D", 1),
      MakeComputeInlineStep("B"),
  };
  records.push_back(a);
  TuningRecord b;
  b.task_id = 7;
  b.seconds = 1.0e-3;  // no throughput: flags byte must round trip as 0
  b.steps = {
      MakeComputeRootStep("C"),
      MakeCacheWriteStep("C"),
      MakeRfactorStep("C.rf", 1),
      MakeAnnotationStep("C", 0, IterAnnotation::kParallel),
      MakeAnnotationStep("C", 2, IterAnnotation::kVectorize),
      MakePragmaStep("C", 512),
  };
  records.push_back(b);
  TuningRecord c;
  c.task_id = 7;  // same task, different program: must not dedup
  c.seconds = 2.0e-3;
  c.throughput = 1.0e9;
  c.steps = {MakeSplitStep("C", 1, {16})};
  records.push_back(c);
  return records;
}

std::vector<std::string> Lines(const std::vector<TuningRecord>& records) {
  std::vector<std::string> out;
  for (const TuningRecord& r : records) {
    out.push_back(SerializeRecord(r));
  }
  return out;
}

TEST(RecordStoreBinary, RoundTripAllStepKindsBitExact) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (TuningRecord r : AllKindsRecords()) {
    store.Add(std::move(r));
  }
  std::string bytes = store.Serialize(RecordCodec::kBinary);

  RecordStore loaded(RecordStore::Options{/*dedup=*/false});
  RecordLoadStats stats = loaded.Deserialize(bytes);
  EXPECT_TRUE(stats);
  EXPECT_TRUE(stats.index_ok);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(Lines(loaded.records()), Lines(store.records()));
  // Throughput is binary-only payload: verify it survives exactly.
  EXPECT_DOUBLE_EQ(loaded.records()[0].throughput, 2.75e9);
  EXPECT_DOUBLE_EQ(loaded.records()[1].throughput, 0.0);
}

TEST(RecordStoreBinary, BinarySmallerThanText) {
  // Replicate a realistic shape: records with real-search-sized step lists
  // (~18 steps) drawn from a shared sketch vocabulary, so step interning
  // pays off the way it does on actual tuning logs.
  std::vector<Step> vocabulary;
  for (const TuningRecord& r : AllKindsRecords()) {
    vocabulary.insert(vocabulary.end(), r.steps.begin(), r.steps.end());
  }
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (int i = 0; i < 200; ++i) {
    TuningRecord r;
    r.task_id = static_cast<uint64_t>(i % 4);
    r.seconds = 1e-3 + 1e-9 * i;  // distinct measurements, shared step lists
    r.throughput = 1e9;
    for (int s = 0; s < 18; ++s) {
      r.steps.push_back(vocabulary[static_cast<size_t>(i + s) % vocabulary.size()]);
    }
    store.Add(std::move(r));
  }
  std::string text = store.Serialize(RecordCodec::kText);
  std::string binary = store.Serialize(RecordCodec::kBinary);
  EXPECT_LT(binary.size() * 5, text.size())
      << "binary=" << binary.size() << " text=" << text.size();
}

TEST(RecordStoreText, MigrationIsLossless) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (TuningRecord r : AllKindsRecords()) {
    r.throughput = 0.0;  // text drops throughput; compare what text carries
    store.Add(std::move(r));
  }
  std::string text_path = ::testing::TempDir() + "/ansor_migrate_in.log";
  std::string bin_path = ::testing::TempDir() + "/ansor_migrate_out.bin";
  ASSERT_TRUE(store.SaveToFile(text_path, RecordCodec::kText));

  RecordLoadStats migrated = RecordStore::MigrateTextToBinary(text_path, bin_path);
  EXPECT_TRUE(migrated);
  EXPECT_EQ(migrated.loaded, 3u);

  RecordStore loaded(RecordStore::Options{/*dedup=*/false});
  EXPECT_TRUE(loaded.LoadFromFile(bin_path));
  EXPECT_EQ(Lines(loaded.records()), Lines(store.records()));
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(RecordStoreDedup, ExactCountersAndInPlaceImprovement) {
  RecordStore store;  // dedup on
  TuningRecord r;
  r.task_id = 42;
  r.seconds = 5e-3;
  r.throughput = 1e9;
  r.steps = {MakeSplitStep("C", 0, {4})};

  EXPECT_TRUE(store.Add(r));
  EXPECT_FALSE(store.Add(r));  // exact duplicate: dropped
  TuningRecord slower = r;
  slower.seconds = 9e-3;
  EXPECT_FALSE(store.Add(slower));  // slower duplicate: dropped, no update
  TuningRecord faster = r;
  faster.seconds = 1e-3;
  faster.throughput = 5e9;
  EXPECT_FALSE(store.Add(faster));  // faster duplicate: updates in place

  EXPECT_EQ(store.size(), 1u);
  RecordStoreStats stats = store.stats();
  EXPECT_EQ(stats.appended, 1);
  EXPECT_EQ(stats.deduplicated, 3);
  EXPECT_EQ(stats.improved, 1);
  auto best = store.BestFor(42);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->seconds, 1e-3);
  EXPECT_DOUBLE_EQ(best->throughput, 5e9);
}

TEST(RecordStoreDedup, ClientAttributionIsExact) {
  RecordStore store;
  TuningRecord r;
  r.task_id = 1;
  r.seconds = 1e-3;
  r.steps = {MakeSplitStep("C", 0, {2})};
  store.Add(r, /*client_id=*/10);
  store.Add(r, /*client_id=*/11);  // client 11 hits the fleet's existing record
  TuningRecord other = r;
  other.steps = {MakeSplitStep("C", 0, {8})};
  store.Add(other, /*client_id=*/11);

  RecordClientStats c10 = store.ClientStatsFor(10);
  EXPECT_EQ(c10.appended, 1);
  EXPECT_EQ(c10.deduplicated, 0);
  RecordClientStats c11 = store.ClientStatsFor(11);
  EXPECT_EQ(c11.appended, 1);
  EXPECT_EQ(c11.deduplicated, 1);
  EXPECT_EQ(store.ClientStatsFor(99).appended, 0);
}

TEST(RecordStoreBinary, CorruptedIndexFallsBackToSequentialScan) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (TuningRecord r : AllKindsRecords()) {
    store.Add(std::move(r));
  }
  std::string bytes = store.Serialize(RecordCodec::kBinary);
  bytes.back() ^= 0x5a;  // smash the index magic: footer unusable

  RecordStore loaded(RecordStore::Options{/*dedup=*/false});
  RecordLoadStats stats = loaded.Deserialize(bytes);
  EXPECT_TRUE(stats.ok);
  EXPECT_FALSE(stats.index_ok);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(Lines(loaded.records()), Lines(store.records()));
}

TEST(RecordStoreBinary, ChecksumMismatchDetected) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (TuningRecord r : AllKindsRecords()) {
    store.Add(std::move(r));
  }
  std::string bytes = store.Serialize(RecordCodec::kBinary);
  // Flip a payload byte (inside the records, past the tables): the footer
  // checksum must catch it and the loader must degrade, not trust the index.
  bytes[bytes.size() / 2] ^= 0x01;
  RecordStore loaded(RecordStore::Options{/*dedup=*/false});
  RecordLoadStats stats = loaded.Deserialize(bytes);
  EXPECT_FALSE(stats.index_ok);
  // The scan recovers what it can; whatever loads must still parse cleanly.
  EXPECT_LE(stats.loaded + stats.skipped, 3u + 1u);
}

TEST(RecordStoreBinary, TruncationNeverCrashesAndCountsLoss) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  auto base = AllKindsRecords();
  for (int i = 0; i < 20; ++i) {
    TuningRecord r = base[static_cast<size_t>(i) % base.size()];
    r.seconds += 1e-9 * i;
    store.Add(std::move(r));
  }
  std::string bytes = store.Serialize(RecordCodec::kBinary);
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    RecordStore loaded(RecordStore::Options{/*dedup=*/false});
    RecordLoadStats stats = loaded.Deserialize(bytes.substr(0, cut));
    // Prefixes shorter than the magic fall back to the text codec (garbage
    // lines skipped); binary prefixes must account for every record, as
    // loaded or as skipped.
    if (cut >= 8 && stats.ok) {
      EXPECT_EQ(stats.loaded + stats.skipped, 20u) << "cut=" << cut;
    }
    EXPECT_EQ(loaded.size(), stats.loaded);
  }
  // Removing only the footer loses nothing.
  RecordStore headless(RecordStore::Options{/*dedup=*/false});
  RecordLoadStats stats = headless.Deserialize(bytes.substr(0, bytes.size() - 16));
  EXPECT_TRUE(stats.ok);
  EXPECT_FALSE(stats.index_ok);
  EXPECT_EQ(stats.loaded, 20u);
}

TEST(RecordStoreBinary, StreamingMatchesDeserialize) {
  RecordStore store(RecordStore::Options{/*dedup=*/false});
  for (TuningRecord r : AllKindsRecords()) {
    store.Add(std::move(r));
  }
  std::string bytes = store.Serialize(RecordCodec::kBinary);

  std::vector<std::string> streamed;
  RecordLoadStats stats = RecordStore::ForEachRecord(
      bytes, [&](TuningRecord r) { streamed.push_back(SerializeRecord(r)); });
  EXPECT_TRUE(stats);
  EXPECT_EQ(streamed, Lines(store.records()));
}

TEST(RecordStoreConcurrency, ParallelAddsAccountExactly) {
  RecordStore store;  // dedup on
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TuningRecord r;
        r.task_id = 5;
        r.seconds = 1e-3 + 1e-6 * i;
        // Every thread adds the same 50 programs: exactly 50 distinct
        // signatures survive however the threads interleave.
        r.steps = {MakeSplitStep("C", 0, {i + 1})};
        store.Add(r, /*client_id=*/static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(store.size(), static_cast<size_t>(kPerThread));
  RecordStoreStats stats = store.stats();
  EXPECT_EQ(stats.appended, kPerThread);
  EXPECT_EQ(stats.appended + stats.deduplicated, kThreads * kPerThread);
  int64_t client_total = 0;
  for (int t = 1; t <= kThreads; ++t) {
    RecordClientStats cs = store.ClientStatsFor(static_cast<uint64_t>(t));
    client_total += cs.appended + cs.deduplicated;
  }
  EXPECT_EQ(client_total, kThreads * kPerThread);
}

TEST(RecordStoreReplay, ReplayBestReconstructsState) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State state(&dag);
  state.Split("C", 0, {4});
  state.Annotate("C", 0, IterAnnotation::kParallel);
  ASSERT_FALSE(state.failed());

  RecordStore store;
  TuningRecord r;
  r.task_id = dag.CanonicalHash();
  r.seconds = 1e-3;
  r.steps = state.steps();
  store.Add(std::move(r));

  State replayed = store.ReplayBest(&dag);
  ASSERT_FALSE(replayed.failed());
  EXPECT_EQ(StepSignature(replayed), StepSignature(state));
  EXPECT_TRUE(store.ReplayBest(nullptr).failed());
}

}  // namespace
}  // namespace ansor
