// ArtifactStore: snapshot capture/restore round trips, lazy warm artifacts,
// and the zero-rebuild warm-start determinism contract.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/costmodel/cost_model.h"
#include "src/hwsim/measurer.h"
#include "src/store/artifact_store.h"
#include "tests/testing.h"

namespace ansor {
namespace {

std::shared_ptr<const ComputeDAG> SharedMatmul() {
  return std::make_shared<const ComputeDAG>(testing::Matmul(16, 16, 16));
}

// A few distinct valid programs on the DAG.
std::vector<State> SamplePrograms(const ComputeDAG* dag) {
  std::vector<State> states;
  {
    State s(dag);
    EXPECT_TRUE(s.Split("C", 0, {4}));
    EXPECT_TRUE(s.Annotate("C", 0, IterAnnotation::kParallel));
    states.push_back(std::move(s));
  }
  {
    State s(dag);
    EXPECT_TRUE(s.Split("C", 1, {8}));
    states.push_back(std::move(s));
  }
  {
    State s(dag);
    EXPECT_TRUE(s.Fuse("C", 0, 2));
    states.push_back(std::move(s));
  }
  return states;
}

TEST(ArtifactStoreTest, CaptureSerializeLoadRoundTrip) {
  auto dag = SharedMatmul();
  ProgramCache cache(64, /*num_shards=*/1);
  for (const State& s : SamplePrograms(dag.get())) {
    cache.GetOrBuild(s);
  }
  ArtifactStore store;
  EXPECT_EQ(store.CaptureCache(cache, "mm"), 3u);
  EXPECT_EQ(store.stats().added, 3);

  ArtifactStore loaded;
  ArtifactLoadStats stats = loaded.Deserialize(store.Serialize());
  EXPECT_TRUE(stats);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(loaded.size(), 3u);
  for (const ArtifactSnapshot& original : store.snapshots()) {
    const ArtifactSnapshot* copy =
        loaded.Find(original.task_id, StepSignature(original.steps));
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->tag, "mm");
    EXPECT_EQ(copy->lowering_ok, original.lowering_ok);
    EXPECT_EQ(copy->structurally_legal, original.structurally_legal);
    EXPECT_TRUE(copy->features == original.features);  // bit-exact floats
    EXPECT_EQ(copy->resource_verdicts, original.resource_verdicts);
  }
}

TEST(ArtifactStoreTest, DedupByTaskAndSignature) {
  auto dag = SharedMatmul();
  ProgramCache cache(64, 1);
  for (const State& s : SamplePrograms(dag.get())) {
    cache.GetOrBuild(s);
  }
  ArtifactStore store;
  EXPECT_EQ(store.CaptureCache(cache, "a"), 3u);
  EXPECT_EQ(store.CaptureCache(cache, "b"), 0u);  // same programs: all duplicates
  EXPECT_EQ(store.stats().added, 3);
  EXPECT_EQ(store.stats().deduplicated, 3);
}

TEST(ArtifactStoreTest, WarmCacheServesEverythingWithoutRebuilds) {
  auto dag = SharedMatmul();
  std::vector<State> programs = SamplePrograms(dag.get());
  ProgramCache cold(64, 1);
  for (const State& s : programs) {
    cold.GetOrBuild(s);
  }
  ArtifactStore store;
  store.CaptureCache(cold, "");

  ProgramCache warm(64, 1);
  EXPECT_EQ(store.WarmCache(&warm, dag), 3u);
  EXPECT_EQ(warm.stats().warm_inserts, 3);
  EXPECT_EQ(warm.stats().lookups(), 0);  // warm inserts are not lookups

  for (const State& s : programs) {
    ProgramArtifactPtr a = warm.GetOrBuild(s);
    EXPECT_FALSE(a->materialized()) << "warm hit must not re-lower";
  }
  EXPECT_EQ(warm.stats().hits, 3);
  EXPECT_EQ(warm.stats().misses, 0);
}

TEST(ArtifactStoreTest, LazyMaterializationMatchesColdBuild) {
  auto dag = SharedMatmul();
  State state = SamplePrograms(dag.get())[0];
  ProgramCache cold_cache(8, 1);
  ProgramArtifactPtr cold = cold_cache.GetOrBuild(state);

  ArtifactStore store;
  store.CaptureCache(cold_cache, "");
  ProgramCache warm_cache(8, 1);
  ASSERT_EQ(store.WarmCache(&warm_cache, dag), 1u);
  ProgramArtifactPtr warm = warm_cache.GetOrBuild(state);

  // Everything the scoring/filtering path reads is served unmaterialized...
  ASSERT_FALSE(warm->materialized());
  EXPECT_EQ(warm->signature(), cold->signature());
  EXPECT_TRUE(warm->features() == cold->features());
  EXPECT_EQ(warm->statically_legal(), cold->statically_legal());
  ASSERT_FALSE(warm->materialized());
  // ...and on-demand materialization reproduces the cold build exactly.
  EXPECT_EQ(warm->lowered().ToString(), cold->lowered().ToString());
  EXPECT_TRUE(warm->materialized());
  EXPECT_EQ(warm->verifier_report().legal(), cold->verifier_report().legal());
}

TEST(ArtifactStoreTest, ResourceVerdictsRestoreWithoutMaterializing) {
  auto dag = SharedMatmul();
  State state = SamplePrograms(dag.get())[0];
  MachineModel machine = MachineModel::IntelCpu20Core();
  ProgramCache cold_cache(8, 1);
  ProgramArtifactPtr cold = cold_cache.GetOrBuild(state);
  bool cold_passed = !cold->resource_verdict(machine)->failed();

  ArtifactStore store;
  store.CaptureCache(cold_cache, "");
  ProgramCache warm_cache(8, 1);
  store.WarmCache(&warm_cache, dag);
  ProgramArtifactPtr warm = warm_cache.GetOrBuild(state);
  EXPECT_EQ(!warm->resource_verdict(machine)->failed(), cold_passed);
  EXPECT_FALSE(warm->materialized()) << "memoized verdict must not re-lower";
}

TEST(ArtifactStoreTest, FileRoundTripAndMissingFile) {
  auto dag = SharedMatmul();
  ProgramCache cache(64, 1);
  for (const State& s : SamplePrograms(dag.get())) {
    cache.GetOrBuild(s);
  }
  ArtifactStore store;
  store.CaptureCache(cache, "t");
  std::string path = ::testing::TempDir() + "/ansor_artifacts_test.bin";
  ASSERT_TRUE(store.SaveToFile(path));
  ArtifactStore loaded;
  EXPECT_TRUE(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.size(), 3u);
  std::remove(path.c_str());

  ArtifactStore missing;
  EXPECT_FALSE(missing.LoadFromFile(path));
  EXPECT_EQ(missing.size(), 0u);
}

TEST(ArtifactStoreTest, CorruptionNeverCrashes) {
  auto dag = SharedMatmul();
  ProgramCache cache(64, 1);
  for (const State& s : SamplePrograms(dag.get())) {
    cache.GetOrBuild(s);
  }
  ArtifactStore store;
  store.CaptureCache(cache, "");
  std::string bytes = store.Serialize();

  for (size_t cut = 0; cut < bytes.size(); cut += 5) {
    ArtifactStore truncated;
    ArtifactLoadStats stats = truncated.Deserialize(bytes.substr(0, cut));
    if (stats.ok) {
      EXPECT_EQ(stats.loaded + stats.skipped, 3u) << "cut=" << cut;
    }
  }
  for (size_t pos = 8; pos < bytes.size(); pos += 11) {
    std::string corrupted = bytes;
    corrupted[pos] ^= 0x40;
    ArtifactStore store2;
    ArtifactLoadStats stats = store2.Deserialize(corrupted);  // must not crash
    EXPECT_LE(stats.loaded, 3u);
  }
}

// The warm-start determinism matrix: a search resumed from a snapshot of an
// identical prior run is bit-identical to that run and rebuilds nothing.
TEST(WarmStartDeterminism, ResumedRunIsBitIdenticalWithZeroRebuilds) {
  auto run = [](ProgramCache* cache) {
    SearchTask task = MakeSearchTask("mm", testing::Matmul(16, 16, 16));
    Measurer measurer(MachineModel::IntelCpu20Core());
    GbdtCostModel model;
    SearchOptions options = testing::SmallSearchOptions();
    options.program_cache = cache;
    return TuneTask(task, &measurer, &model, 16, 8, options);
  };

  ProgramCache cold_cache(4096, 1);
  TuneResult cold = run(&cold_cache);
  ASSERT_TRUE(cold.best_state.has_value());

  ArtifactStore store;
  store.CaptureCache(cold_cache, "");
  ASSERT_GT(store.size(), 0u);

  // Round trip through bytes: the resumed process only has the file.
  ArtifactStore restored;
  ASSERT_TRUE(restored.Deserialize(store.Serialize()));
  ProgramCache warm_cache(4096, 1);
  auto dag = std::make_shared<const ComputeDAG>(testing::Matmul(16, 16, 16));
  ASSERT_GT(restored.WarmCache(&warm_cache, dag), 0u);

  TuneResult warm = run(&warm_cache);
  EXPECT_EQ(warm.best_seconds, cold.best_seconds);  // bit-identical
  EXPECT_EQ(warm.history, cold.history);
  ASSERT_TRUE(warm.best_state.has_value());
  EXPECT_EQ(StepSignature(*warm.best_state), StepSignature(*cold.best_state));

  ProgramCacheStats stats = warm_cache.stats();
  EXPECT_EQ(stats.misses, 0) << "a resumed run must rebuild nothing it has seen";
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.warm_inserts, 0);
}

}  // namespace
}  // namespace ansor
