// End-to-end semantics-preservation tests: every schedule transform (and
// combinations of them) must produce a program whose outputs match the naive
// DAG execution.
#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(Interpreter, NaiveScheduleMatches) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, SplitPreservesSemantics) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4, 2}));
  ASSERT_TRUE(state.Split("C", 4, {8}));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, NonExactSplitPreservesSemantics) {
  ComputeDAG dag = testing::MatmulRelu(10, 11, 13);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {3}));
  ASSERT_TRUE(state.Split("C", 2, {4}));
  ASSERT_TRUE(state.Split("C", 4, {5}));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, ReorderPreservesSemantics) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.Reorder("C", {2, 1, 0}));  // reduction outermost
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, FusePreservesSemantics) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.Fuse("C", 0, 2));
  ASSERT_TRUE(state.Fuse("D", 0, 2));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, SplitThenFusePreservesSemantics) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4}));
  ASSERT_TRUE(state.Split("C", 2, {4}));
  // iters: i.0 i.1 j.0 j.1 k -> reorder to i.0 j.0 i.1 j.1 k, fuse outer two.
  ASSERT_TRUE(state.Reorder("C", {0, 2, 1, 3, 4}));
  ASSERT_TRUE(state.Fuse("C", 0, 2));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, InlinePreservesSemantics) {
  ComputeDAG dag = testing::ReluPadMatmul(8, 4, 16, 12);
  State state(&dag);
  ASSERT_TRUE(state.ComputeInline("B"));
  ASSERT_TRUE(state.ComputeInline("C"));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, CacheWritePreservesSemantics) {
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.CacheWrite("C", nullptr));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, CacheWriteWithFusionPreservesSemantics) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State state(&dag);
  int cache = -1;
  ASSERT_TRUE(state.CacheWrite("C", &cache));
  // Tile C.cache: i -> (2,8) split at step 1; j -> (2,8) split at step 2.
  ASSERT_TRUE(state.Split("C.cache", 0, {8}));  // step index 1
  ASSERT_TRUE(state.Split("C.cache", 2, {8}));  // step index 2
  ASSERT_TRUE(state.Reorder("C.cache", {0, 2, 1, 3, 4}));
  ASSERT_TRUE(state.FollowSplit("C", 0, 1, 2));
  ASSERT_TRUE(state.FollowSplit("C", 2, 2, 2));
  ASSERT_TRUE(state.Reorder("C", {0, 2, 1, 3}));
  ASSERT_TRUE(state.ComputeAt("C.cache", "C", 1));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, MultiLevelTilingWithConsumerFusion) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  // SSRSRS tiling on C (4 space levels per axis, 2 reduce levels).
  ASSERT_TRUE(state.Split("C", 0, {2, 2, 2}));  // i -> 4 parts, step 0
  ASSERT_TRUE(state.Split("C", 4, {2, 2, 2}));  // j -> 4 parts, step 1
  ASSERT_TRUE(state.Split("C", 8, {4}));        // k -> 2 parts, step 2
  // Order: i0 j0 i1 j1 k0 i2 j2 k1 i3 j3.
  ASSERT_TRUE(state.Reorder("C", {0, 4, 1, 5, 8, 2, 6, 9, 3, 7}));
  // Consumer D follows the first two space levels.
  ASSERT_TRUE(state.FollowSplit("D", 0, 0, 3));
  ASSERT_TRUE(state.FollowSplit("D", 3, 1, 3));
  ASSERT_TRUE(state.Reorder("D", {0, 3, 1, 4, 2, 5}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 3));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, TilingFusionWithAnnotations) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {2, 2, 2}));
  ASSERT_TRUE(state.Split("C", 4, {2, 2, 2}));
  ASSERT_TRUE(state.Split("C", 8, {4}));
  ASSERT_TRUE(state.Reorder("C", {0, 4, 1, 5, 8, 2, 6, 9, 3, 7}));
  ASSERT_TRUE(state.FollowSplit("D", 0, 0, 3));
  ASSERT_TRUE(state.FollowSplit("D", 3, 1, 3));
  ASSERT_TRUE(state.Reorder("D", {0, 3, 1, 4, 2, 5}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 3));
  // Annotations do not change semantics.
  ASSERT_TRUE(state.Fuse("D", 0, 2));
  ASSERT_TRUE(state.Annotate("D", 0, IterAnnotation::kParallel));
  ASSERT_TRUE(state.Annotate("C", 9, IterAnnotation::kVectorize));
  ASSERT_TRUE(state.Pragma("C", 16));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, RfactorPreservesSemantics) {
  ComputeDAG dag = testing::Matmul(4, 4, 64);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 2, {8}));
  ASSERT_TRUE(state.Rfactor("C", 3, nullptr));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, RfactorKeepOuterPreservesSemantics) {
  ComputeDAG dag = testing::Matmul(4, 4, 64);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 2, {8}));
  ASSERT_TRUE(state.Rfactor("C", 2, nullptr));  // keep the outer part
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, RfactorOnNormWorkload) {
  ComputeDAG dag = testing::MatrixNorm(4, 64);
  State state(&dag);
  ASSERT_TRUE(state.Split("S", 1, {16}));
  ASSERT_TRUE(state.Rfactor("S", 2, nullptr));
  ASSERT_TRUE(state.Annotate("S.rf", 1, IterAnnotation::kParallel));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, PaddedWorkloadFullPipeline) {
  ComputeDAG dag = testing::ReluPadMatmul(8, 4, 16, 12);
  State state(&dag);
  ASSERT_TRUE(state.ComputeInline("B"));
  ASSERT_TRUE(state.Split("E", 0, {2}));
  ASSERT_TRUE(state.Split("E", 3, {4}));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, GuardedTilingWithFusion) {
  // Non-divisible shapes through the full tiling+fusion pipeline.
  ComputeDAG dag = testing::MatmulRelu(12, 12, 12);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {2, 2}));  // ceil(12/4)=3 exact
  ASSERT_TRUE(state.Split("C", 3, {2, 2}));
  ASSERT_TRUE(state.Split("C", 6, {4}));
  ASSERT_TRUE(state.Reorder("C", {0, 3, 1, 4, 6, 2, 5, 7}));
  ASSERT_TRUE(state.FollowSplit("D", 0, 0, 2));
  ASSERT_TRUE(state.FollowSplit("D", 2, 1, 2));
  ASSERT_TRUE(state.Reorder("D", {0, 2, 1, 3}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 1));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Interpreter, ExecuteFailedProgramReportsError) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 99, {2});
  LoweredProgram prog = Lower(state);
  ExecutionResult result = ExecuteProgram(prog, {});
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace ansor
