// Static schedule verifier tests: proof obligations on legal programs,
// rejection of planted defects, the machine-dependent resource check, and the
// differential fuzz harness asserting the soundness direction — the verifier
// never passes a program the interpreter rejects.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/program_verifier.h"
#include "src/evolution/evolution.h"
#include "src/exec/interpreter.h"
#include "src/hwsim/measurer.h"
#include "src/program/program_cache.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"
#include "src/support/thread_pool.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

LoopTreeNode* FindIfNode(LoopTreeNode* node) {
  if (node->kind == LoopTreeKind::kIf) {
    return node;
  }
  for (LoopTreeNodeRef& child : node->children) {
    if (LoopTreeNode* found = FindIfNode(child.get())) {
      return found;
    }
  }
  return nullptr;
}

LoopTreeNode* FindIfNode(LoweredProgram* program) {
  for (LoopTreeNodeRef& root : program->roots) {
    if (LoopTreeNode* found = FindIfNode(root.get())) {
      return found;
    }
  }
  return nullptr;
}

void CollectStores(LoopTreeNode* node, std::vector<LoopTreeNode*>* out) {
  if (node->kind == LoopTreeKind::kStore) {
    out->push_back(node);
    return;
  }
  for (LoopTreeNodeRef& child : node->children) {
    CollectStores(child.get(), out);
  }
}

TEST(ProgramVerifier, LegalMatmulPassesAllStructuralChecks) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  VerifierReport report = VerifyProgram(s, Lower(s));
  EXPECT_TRUE(report.legal()) << report.ToString();
  for (VerifierCheck check : {VerifierCheck::kLowering, VerifierCheck::kBufferBounds,
                              VerifierCheck::kIteratorDomain, VerifierCheck::kDefBeforeUse}) {
    EXPECT_EQ(report.check(check).verdict, VerifierVerdict::kPass) << VerifierCheckName(check);
  }
  // Resource limits are machine-dependent and not part of the structural report.
  EXPECT_EQ(report.check(VerifierCheck::kResourceLimits).verdict, VerifierVerdict::kSkipped);
}

TEST(ProgramVerifier, NonExactSplitGuardIsProvenInBounds) {
  // 16 split by 3 leaves a remainder: the lowering emits a guard, and the
  // verifier must prove the guarded reconstruction in bounds.
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  ASSERT_TRUE(s.Split("C", 0, {3}));
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok) << program.error;
  ASSERT_NE(FindIfNode(&program), nullptr) << "expected a split guard";
  VerifierReport report = VerifyProgram(s, program);
  EXPECT_TRUE(report.legal()) << report.ToString();
}

TEST(ProgramVerifier, PaddedSelectWorkloadsAreProvenInBounds) {
  // The padding idiom: Select(pad <= x && x < h + pad, data[..., x - pad], 0).
  // The evaluator is lazy, so the load executes only under the condition; the
  // verifier must refine the index range with the dominating Select guard.
  for (const ComputeDAG& dag :
       {testing::ReluPadMatmul(), MakeConv2d(4, 64, 14, 14, 64, 3, 3, 1, 1)}) {
    State s(&dag);
    VerifierReport report = VerifyProgram(s, Lower(s));
    EXPECT_TRUE(report.legal()) << report.ToString();
  }
}

TEST(ProgramVerifier, FailedLoweringFailsTheLoweringCheckOnly) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  LoweredProgram failed;
  failed.ok = false;
  failed.error = "synthetic failure";
  VerifierReport report = VerifyProgram(s, failed);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.check(VerifierCheck::kLowering).verdict, VerifierVerdict::kFail);
  // Structural checks need a loop tree: they stay skipped, not vacuously passed.
  EXPECT_EQ(report.check(VerifierCheck::kBufferBounds).verdict, VerifierVerdict::kSkipped);
  EXPECT_EQ(report.check(VerifierCheck::kIteratorDomain).verdict, VerifierVerdict::kSkipped);
}

TEST(ProgramVerifier, UnguardedShiftedReadIsRejected) {
  // C[i] = A[i + 1] over matching shapes reads one past the end; no guard
  // exists, so the bounds check must fail — and the interpreter agrees.
  Tensor a = Placeholder("A", {16});
  Tensor c = Compute("C", {16}, [&](const std::vector<Expr>& i) { return a(i[0] + IntImm(1)); });
  ComputeDAG dag({a, c});
  State s(&dag);
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok) << program.error;
  VerifierReport report = VerifyProgram(s, program);
  EXPECT_FALSE(report.legal());
  const CheckVerdict& bounds = report.check(VerifierCheck::kBufferBounds);
  EXPECT_EQ(bounds.verdict, VerifierVerdict::kFail);
  ASSERT_FALSE(bounds.diagnostics.empty());
  EXPECT_NE(bounds.diagnostics[0].find("A"), std::string::npos) << bounds.diagnostics[0];
  EXPECT_NE(VerifyAgainstNaive(s, program), "");
}

TEST(ProgramVerifier, StrippedSplitGuardIsCaughtStatically) {
  // Disabling a split guard makes the tail iterations run out of bounds. The
  // verifier must catch it, and the interpreter must reject the same program
  // — the agreement the differential fuzz test checks at scale.
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  ASSERT_TRUE(s.Split("C", 0, {3}));
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok) << program.error;
  LoopTreeNode* guard = FindIfNode(&program);
  ASSERT_NE(guard, nullptr);
  guard->condition = IntImm(1);  // always true: the guard is gone

  VerifierReport report = VerifyProgram(s, program);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.check(VerifierCheck::kBufferBounds).verdict, VerifierVerdict::kFail);
  EXPECT_NE(VerifyAgainstNaive(s, program), "");
}

TEST(ProgramVerifier, VectorizeBeyondMachineWidthFailsResourceCheck) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  ASSERT_TRUE(s.Annotate("C", 1, IterAnnotation::kVectorize));
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok) << program.error;

  MachineModel narrow = MachineModel::IntelCpu20Core();
  narrow.max_vector_extent = 8;  // the annotated loop has extent 16
  CheckVerdict verdict = VerifyResources(program, narrow);
  EXPECT_EQ(verdict.verdict, VerifierVerdict::kFail);
  ASSERT_FALSE(verdict.diagnostics.empty());
  EXPECT_NE(verdict.diagnostics[0].find("vectorized"), std::string::npos);

  MachineModel unlimited = MachineModel::IntelCpu20Core();
  unlimited.max_vector_extent = 0;
  EXPECT_EQ(VerifyResources(program, unlimited).verdict, VerifierVerdict::kPass);
}

TEST(ProgramVerifier, FootprintBeyondMemoryCapacityFailsResourceCheck) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok);

  MachineModel tiny = MachineModel::IntelCpu20Core();
  tiny.memory_capacity_bytes = 256;  // three 16x16 buffers cannot fit
  CheckVerdict verdict = VerifyResources(program, tiny);
  EXPECT_EQ(verdict.verdict, VerifierVerdict::kFail);
  ASSERT_FALSE(verdict.diagnostics.empty());
  EXPECT_NE(verdict.diagnostics[0].find("footprint"), std::string::npos);

  EXPECT_EQ(VerifyResources(program, MachineModel::IntelCpu20Core()).verdict,
            VerifierVerdict::kPass);
}

// The static resource verdict and the (simulated) machine agree: a program
// the verifier rejects for a machine never measures valid on it, and a
// resource-legal program still measures valid. Without this agreement the
// pre-filter could either leak invalid trials or starve the search.
TEST(ProgramVerifier, ResourceVerdictMatchesSimulatedMeasurement) {
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  State s(&dag);
  ASSERT_TRUE(s.Annotate("C", 1, IterAnnotation::kVectorize));
  LoweredProgram program = Lower(s);
  ASSERT_TRUE(program.ok) << program.error;

  MachineModel narrow = MachineModel::IntelCpu20Core();
  narrow.max_vector_extent = 8;  // the annotated loop has extent 16
  ASSERT_EQ(VerifyResources(program, narrow).verdict, VerifierVerdict::kFail);
  MeasureResult rejected = Measurer(narrow).Measure(s);
  EXPECT_FALSE(rejected.valid);
  EXPECT_NE(rejected.error.find("vectorized"), std::string::npos) << rejected.error;

  MachineModel wide = MachineModel::IntelCpu20Core();
  ASSERT_EQ(VerifyResources(program, wide).verdict, VerifierVerdict::kPass);
  MeasureResult accepted = Measurer(wide).Measure(s);
  EXPECT_TRUE(accepted.valid) << accepted.error;

  MachineModel tiny = MachineModel::IntelCpu20Core();
  tiny.memory_capacity_bytes = 256;
  ASSERT_EQ(VerifyResources(program, tiny).verdict, VerifierVerdict::kFail);
  MeasureResult oom = Measurer(tiny).Measure(s);
  EXPECT_FALSE(oom.valid);
  EXPECT_NE(oom.error.find("footprint"), std::string::npos) << oom.error;
}

TEST(ProgramVerifier, ArtifactStampsReportAndMemoizesResourceVerdicts) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  ProgramCache cache;
  State s(&dag);
  ProgramArtifactPtr artifact = cache.GetOrBuild(s);
  ASSERT_TRUE(artifact->ok());
  EXPECT_TRUE(artifact->verifier_report().legal());
  EXPECT_TRUE(artifact->statically_legal());

  MachineModel intel = MachineModel::IntelCpu20Core();
  MachineModel arm = MachineModel::ArmCpu4Core();
  auto first = artifact->resource_verdict(intel);
  // Same machine fingerprint: the memoized verdict object is reused.
  EXPECT_EQ(first.get(), artifact->resource_verdict(intel).get());
  // A different machine gets its own entry; both verdicts coexist.
  auto other = artifact->resource_verdict(arm);
  EXPECT_NE(first.get(), other.get());
  EXPECT_EQ(first.get(), artifact->resource_verdict(intel).get());
  EXPECT_TRUE(artifact->statically_legal(&intel));
}

TEST(ProgramVerifier, EvolutionCountsStaticRejections) {
  // A state that replays fine but fails lowering is statically illegal
  // (lowering check): with verify_level >= 1 the evolution counter must see
  // it; with verify_level == 0 the verifier never runs and the counter
  // stays zero (the invalid-score path still excludes the program).
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  // Computing D at C replays fine (both stages exist) but cannot lower:
  // C does not read D. A deterministic replay-ok, lowering-fail state.
  State unlowerable(&dag);
  ASSERT_TRUE(unlowerable.ComputeAt("D", "C", 0));
  ASSERT_FALSE(unlowerable.failed());
  ASSERT_FALSE(Lower(unlowerable).ok);

  Rng pop_rng(8);
  std::vector<State> init = SampleLowerablePopulation(&dag, 4, &pop_rng);
  init.push_back(unlowerable);

  RandomCostModel model(9);
  auto run = [&](int verify_level) {
    EvolutionOptions options;
    options.population = 8;
    options.generations = 1;
    options.verify_level = verify_level;
    EvolutionarySearch es(&dag, &model, Rng(10), options);
    EXPECT_FALSE(es.Evolve(init, 4).empty());
    return es.stats().statically_rejected;
  };
  EXPECT_EQ(run(0), 0);
  EXPECT_GE(run(1), 1);
}

TEST(ProgramVerifierConcurrency, ParallelVerdictsThroughSharedCache) {
  // Many threads resolving verdicts for the same artifacts through a sharded
  // cache, against two machines: exercises the resource-memo locking (run
  // under the tsan preset via the ProgramVerifier filter).
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  Rng rng(17);
  auto population = SampleLowerablePopulation(&dag, 8, &rng);
  ASSERT_EQ(population.size(), 8u);

  MachineModel machines[2] = {MachineModel::IntelCpu20Core(), MachineModel::ArmCpu4Core()};
  ProgramCache cache(/*capacity=*/64, /*num_shards=*/4);
  ThreadPool pool(4);
  const size_t kLookups = 256;
  std::vector<const CheckVerdict*> verdicts(kLookups);
  std::vector<char> legal(kLookups);
  pool.ParallelFor(kLookups, [&](size_t i) {
    ProgramArtifactPtr artifact = cache.GetOrBuild(population[i % population.size()]);
    const MachineModel& machine = machines[(i / population.size()) % 2];
    verdicts[i] = artifact->resource_verdict(machine).get();
    legal[i] = artifact->statically_legal(&machine) ? 1 : 0;
  });
  for (size_t i = 0; i < kLookups; ++i) {
    ASSERT_NE(verdicts[i], nullptr);
    EXPECT_EQ(legal[i], 1);
    // Same state + same machine ⇒ the same memoized verdict object, no matter
    // which thread resolved it first.
    size_t twin = i + population.size() * 2;
    if (twin < kLookups) {
      EXPECT_EQ(verdicts[i], verdicts[twin]);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz: the soundness gate. Over a large corpus of distinct
// lowered programs — sampled, mutated, and deliberately corrupted — a program
// the static verifier passes must also pass the interpreter's end-to-end
// check against the naive execution. The converse direction (static reject,
// interpreter accept) is allowed: the verifier is conservative.
// ---------------------------------------------------------------------------

TEST(ProgramVerifierFuzz, StaticAcceptNeverContradictsInterpreter) {
  std::vector<ComputeDAG> dags;
  dags.push_back(testing::Matmul(16, 16, 16));
  dags.push_back(testing::MatmulRelu(12, 12, 12));
  dags.push_back(testing::ReluPadMatmul());
  dags.push_back(testing::MatrixNorm(8, 32));
  dags.push_back(MakeConv2d(1, 4, 6, 6, 4, 3, 3, 1, 1));

  RandomCostModel model(11);
  std::vector<std::vector<State>> sketches;
  std::vector<std::unique_ptr<EvolutionarySearch>> searches;
  for (ComputeDAG& dag : dags) {
    sketches.push_back(GenerateSketches(&dag));
    searches.push_back(std::make_unique<EvolutionarySearch>(&dag, &model, Rng(13)));
  }

  Rng rng(2024);
  std::set<std::string> seen;
  int checked = 0;        // distinct lowered programs put through both judges
  int static_legal = 0;   // verifier accepts
  int caught = 0;         // verifier and interpreter both reject
  auto judge = [&](const State& s, const LoweredProgram& program, const std::string& sig) {
    if (!seen.insert(sig).second) {
      return;
    }
    ++checked;
    VerifierReport report = VerifyProgram(s, program);
    std::string dynamic = VerifyAgainstNaive(s, program);
    if (report.legal()) {
      ++static_legal;
      EXPECT_EQ(dynamic, "") << "static verifier passed a program the interpreter rejects:\n"
                             << report.ToString() << s.ToString();
    } else if (!dynamic.empty()) {
      ++caught;
    }
  };

  for (int attempt = 0; attempt < 5000 && checked < 600; ++attempt) {
    size_t d = static_cast<size_t>(attempt) % dags.size();
    const ComputeDAG* dag = &dags[d];
    State s = SampleCompleteProgram(sketches[d][rng.Index(sketches[d].size())], dag, &rng);
    if (s.failed()) {
      continue;
    }
    for (int64_t m = rng.Int(0, 2); m > 0; --m) {
      EvolutionarySearch& es = *searches[d];
      State mutated = State::Failure(dag, "unset");
      switch (rng.Int(0, 3)) {
        case 0: mutated = es.MutateTileSize(s); break;
        case 1: mutated = es.MutateParallelGranularity(s); break;
        case 2: mutated = es.MutateVectorize(s); break;
        default: mutated = es.MutateComputeLocation(s); break;
      }
      if (!mutated.failed()) {
        s = std::move(mutated);
      }
    }
    LoweredProgram program = Lower(s);
    if (!program.ok) {
      continue;
    }
    std::string sig = std::to_string(d) + "/" + StepSignature(s);
    judge(s, program, sig);

    // A corrupted twin: strip a guard if one exists, otherwise shift a store
    // index out of range. Both plant a real out-of-bounds defect, so the
    // verifier-catches-it counter must come out well above zero.
    LoweredProgram corrupted = Lower(s);
    if (LoopTreeNode* guard = FindIfNode(&corrupted)) {
      guard->condition = IntImm(1);
      judge(s, corrupted, sig + "/unguarded");
    } else {
      std::vector<LoopTreeNode*> stores;
      for (LoopTreeNodeRef& root : corrupted.roots) {
        CollectStores(root.get(), &stores);
      }
      if (!stores.empty() && !stores.back()->indices.empty()) {
        stores.back()->indices.back() = stores.back()->indices.back() + IntImm(1);
        judge(s, corrupted, sig + "/shifted");
      }
    }
  }

  EXPECT_GE(checked, 500) << "fuzz corpus too small to be meaningful";
  EXPECT_GT(static_legal, 100);
  EXPECT_GT(caught, 100) << "planted defects must be caught by both judges";
}

}  // namespace
}  // namespace ansor
