#include <gtest/gtest.h>

#include "src/analysis/access_pattern.h"
#include "src/analysis/predicates.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(Predicates, MatmulHasDataReuse) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  int c = state.StageIndex("C");
  int d = state.StageIndex("D");
  EXPECT_TRUE(HasDataReuse(state, c));
  EXPECT_FALSE(HasDataReuse(state, d));
}

TEST(Predicates, ReluIsStrictInlinable) {
  ComputeDAG dag = testing::ReluPadMatmul();
  State state(&dag);
  // B (relu) has consumer C and identity loads: inlinable.
  EXPECT_TRUE(IsStrictInlinable(state, state.StageIndex("B")));
  // C (pad) reads B with clamped index: not identity -> not strictly inlinable.
  EXPECT_FALSE(IsStrictInlinable(state, state.StageIndex("C")));
  // E is an output (no consumer): not inlinable.
  EXPECT_FALSE(IsStrictInlinable(state, state.StageIndex("E")));
}

TEST(Predicates, MatmulReluFusibleConsumer) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  int consumer = -1;
  ASSERT_TRUE(HasFusibleConsumer(state, state.StageIndex("C"), &consumer));
  EXPECT_EQ(consumer, state.StageIndex("D"));
  EXPECT_FALSE(HasFusibleConsumer(state, state.StageIndex("D"), nullptr));
}

TEST(Predicates, PadConsumerIsNotFusible) {
  ComputeDAG dag = testing::ReluPadMatmul();
  State state(&dag);
  // B's only consumer C reads with a non-identity (clamped) index.
  EXPECT_FALSE(HasFusibleConsumer(state, state.StageIndex("B"), nullptr));
}

TEST(Predicates, NormHasMoreReductionParallel) {
  ComputeDAG dag = testing::MatrixNorm(8, 512);
  State state(&dag);
  EXPECT_TRUE(HasMoreReductionParallel(state, state.StageIndex("S")));
  // A square matmul has plenty of space parallelism.
  ComputeDAG mm = testing::Matmul(64, 64, 64);
  State sm(&mm);
  EXPECT_FALSE(HasMoreReductionParallel(sm, sm.StageIndex("C")));
}

TEST(Predicates, TallSkinnyMatmulTriggersRfactorRule) {
  // The paper's example: C_2x2 = A_2x512 * B_512x2.
  Tensor a = Placeholder("A", {2, 512});
  Tensor b = Placeholder("B", {512, 2});
  Tensor c = Compute("C", {2, 2}, [&](const std::vector<Expr>& i) {
    Expr k = ReduceAxis(512, "k");
    return Sum(a(i[0], k) * b(k, i[1]), {k});
  });
  ComputeDAG dag({a, b, c});
  State state(&dag);
  EXPECT_TRUE(HasMoreReductionParallel(state, state.StageIndex("C")));
}

TEST(Predicates, StateConsumersTracksInlining) {
  ComputeDAG dag = testing::ReluPadMatmul();
  State state(&dag);
  auto before = StateConsumers(state);
  EXPECT_EQ(before[static_cast<size_t>(state.StageIndex("B"))].size(), 1u);
  ASSERT_TRUE(state.ComputeInline("B"));
  // After inlining C reads A directly; B has no consumers in the state view.
  auto after = StateConsumers(state);
  EXPECT_TRUE(after[static_cast<size_t>(state.StageIndex("B"))].empty());
}

TEST(Predicates, DomainSizes) {
  ComputeDAG dag = testing::Matmul(4, 8, 32);
  State state(&dag);
  const Stage& c = state.stage(state.StageIndex("C"));
  EXPECT_EQ(SpaceDomainSize(c), 32);
  EXPECT_EQ(ReductionDomainSize(c), 32);
  EXPECT_DOUBLE_EQ(StageFlopCount(c), 4.0 * 8 * 32 * 2);
}

TEST(AccessPattern, RowMajorStrides) {
  ComputeDAG dag = testing::Matmul(8, 16, 32);
  State state(&dag);
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok);
  // Find the accumulate store of C and analyze its accesses.
  const LoopTreeNode* store = nullptr;
  std::function<void(const LoopTreeNode&)> find = [&](const LoopTreeNode& n) {
    if (n.kind == LoopTreeKind::kStore && n.is_accumulate) {
      store = &n;
    }
    for (const auto& child : n.children) {
      find(*child);
    }
  };
  for (const auto& root : prog.roots) {
    find(*root);
  }
  ASSERT_NE(store, nullptr);

  // Loop vars: i (8), j (16), k (32).
  std::unordered_map<int64_t, int64_t> extents;
  std::function<void(const LoopTreeNode&)> collect = [&](const LoopTreeNode& n) {
    if (n.kind == LoopTreeKind::kLoop) {
      extents[n.var->var_id] = n.extent;
    }
    for (const auto& child : n.children) {
      collect(*child);
    }
  };
  for (const auto& root : prog.roots) {
    collect(*root);
  }

  auto accesses = StatementAccesses(*store, extents);
  // Loads: A[i,k], B[k,j]; store: C[i,j].
  ASSERT_EQ(accesses.size(), 3u);
  const AccessPattern* a_pat = nullptr;
  const AccessPattern* b_pat = nullptr;
  const AccessPattern* c_pat = nullptr;
  for (const auto& acc : accesses) {
    if (acc.buffer->name == "A") a_pat = &acc;
    if (acc.buffer->name == "B") b_pat = &acc;
    if (acc.buffer->name == "C") c_pat = &acc;
  }
  ASSERT_NE(a_pat, nullptr);
  ASSERT_NE(b_pat, nullptr);
  ASSERT_NE(c_pat, nullptr);
  EXPECT_TRUE(a_pat->analyzable);
  EXPECT_TRUE(c_pat->is_write);

  // Identify vars by extent (all distinct): i=8, j=16, k=32.
  int64_t vi = -1;
  int64_t vj = -1;
  int64_t vk = -1;
  for (const auto& [vid, ext] : extents) {
    if (ext == 8) vi = vid;
    if (ext == 16) vj = vid;
    if (ext == 32) vk = vid;
  }
  // A is [8,32]: stride of i is 32, of k is 1, of j is 0.
  EXPECT_DOUBLE_EQ(a_pat->StrideOf(vi), 32.0);
  EXPECT_DOUBLE_EQ(a_pat->StrideOf(vk), 1.0);
  EXPECT_DOUBLE_EQ(a_pat->StrideOf(vj), 0.0);
  // B is [32,16]: stride of k is 16, of j is 1.
  EXPECT_DOUBLE_EQ(b_pat->StrideOf(vk), 16.0);
  EXPECT_DOUBLE_EQ(b_pat->StrideOf(vj), 1.0);
  // C is [8,16]: stride of i is 16, of j is 1, k invariant.
  EXPECT_DOUBLE_EQ(c_pat->StrideOf(vi), 16.0);
  EXPECT_DOUBLE_EQ(c_pat->StrideOf(vk), 0.0);
}

TEST(AccessPattern, PaddedAccessStillAnalyzable) {
  ComputeDAG dag = testing::ReluPadMatmul(4, 2, 8, 6);
  State state(&dag);
  // C contains a Select over B: analysis should use the affine skeleton.
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok);
  bool found_b = false;
  std::function<void(const LoopTreeNode&, std::unordered_map<int64_t, int64_t>)> walk =
      [&](const LoopTreeNode& n, std::unordered_map<int64_t, int64_t> extents) {
        if (n.kind == LoopTreeKind::kLoop) {
          extents[n.var->var_id] = n.extent;
        }
        if (n.kind == LoopTreeKind::kStore && n.buffer->name == "C") {
          auto accesses = StatementAccesses(n, extents);
          for (const auto& acc : accesses) {
            if (acc.buffer->name == "B") {
              found_b = true;
              EXPECT_TRUE(acc.analyzable);
            }
          }
        }
        for (const auto& child : n.children) {
          walk(*child, extents);
        }
      };
  for (const auto& root : prog.roots) {
    walk(*root, {});
  }
  EXPECT_TRUE(found_b);
}

}  // namespace
}  // namespace ansor
