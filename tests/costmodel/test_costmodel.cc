#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "src/costmodel/cost_model.h"
#include "src/costmodel/gbdt.h"
#include "src/costmodel/metrics.h"
#include "src/dag/compute_dag.h"
#include "src/ir/state.h"
#include "src/ir/steps.h"
#include "src/program/program_cache.h"
#include "src/store/artifact_store.h"
#include "src/store/bytes.h"
#include "src/store/record_store.h"
#include "src/support/rng.h"
#include "tests/testing.h"

namespace ansor {
namespace {

// Synthetic dataset: program score is a linear function of two features.
GbdtDataset MakeSyntheticDataset(int n_programs, int rows_per_program, Rng* rng) {
  GbdtDataset data;
  for (int p = 0; p < n_programs; ++p) {
    double label = 0.0;
    for (int r = 0; r < rows_per_program; ++r) {
      std::vector<float> row(8, 0.0f);
      for (auto& v : row) {
        v = static_cast<float>(rng->Uniform());
      }
      label += 0.6 * row[0] + 0.4 * row[3];
      data.rows.AppendRow(row);
      data.group.push_back(p);
    }
    label /= rows_per_program;
    data.labels.push_back(label);
    data.weights.push_back(std::max(label, 0.1));
  }
  return data;
}

// One single-row program as a FeatureMatrix.
FeatureMatrix OneRowProgram(const std::vector<float>& row) {
  return FeatureMatrix::FromRows({row});
}

TEST(Gbdt, LearnsSyntheticFunction) {
  Rng rng(3);
  GbdtDataset train = MakeSyntheticDataset(200, 2, &rng);
  Gbdt model;
  model.Train(train);
  ASSERT_TRUE(model.trained());

  GbdtDataset test = MakeSyntheticDataset(100, 2, &rng);
  std::vector<double> preds;
  std::vector<double> truth;
  size_t row = 0;
  for (int p = 0; p < test.num_programs(); ++p) {
    std::vector<std::vector<float>> rows;
    while (row < test.rows.rows() && test.group[row] == p) {
      rows.emplace_back(test.rows.row(row), test.rows.row(row) + test.rows.dim());
      ++row;
    }
    preds.push_back(model.PredictProgram(rows));
    truth.push_back(test.labels[static_cast<size_t>(p)]);
  }
  double acc = PairwiseComparisonAccuracy(preds, truth);
  EXPECT_GT(acc, 0.85) << "GBDT failed to learn a simple linear ranking";
}

TEST(Gbdt, EmptyDatasetIsSafe) {
  Gbdt model;
  model.Train(GbdtDataset{});
  EXPECT_FALSE(model.trained());
  EXPECT_DOUBLE_EQ(model.PredictRow(std::vector<float>(8, 0.0f)), 0.0);
}

TEST(Gbdt, WeightedLossPrioritizesFastPrograms) {
  // Two clusters: fast programs distinguished by feature 0, slow ones by
  // feature 1 with conflicting signal. With throughput weighting the model
  // must rank the fast cluster correctly.
  Rng rng(11);
  GbdtDataset data;
  int p = 0;
  for (int i = 0; i < 150; ++i) {
    std::vector<float> row(4, 0.0f);
    row[0] = static_cast<float>(rng.Uniform());
    double label = 0.7 + 0.3 * row[0];  // fast cluster
    data.rows.AppendRow(row);
    data.group.push_back(p);
    data.labels.push_back(label);
    data.weights.push_back(label);
    ++p;
  }
  Gbdt model;
  model.Train(data);
  std::vector<float> hi(4, 0.0f);
  hi[0] = 0.95f;
  std::vector<float> lo(4, 0.0f);
  lo[0] = 0.05f;
  EXPECT_GT(model.PredictProgram({hi}), model.PredictProgram({lo}));
}

TEST(Gbdt, BatchedForestMatchesScalarBitExact) {
  // The compiled SoA forest must reproduce the scalar per-row tree walk bit
  // for bit: leaf values are pre-scaled by the same double product and
  // accumulated in the same tree order, so EXPECT_EQ (not NEAR) is correct.
  Rng rng(7);
  GbdtDataset train = MakeSyntheticDataset(120, 3, &rng);
  Gbdt model;
  model.Train(train);
  ASSERT_TRUE(model.trained());

  GbdtDataset test = MakeSyntheticDataset(50, 3, &rng);
  std::vector<const float*> ptrs;
  for (size_t r = 0; r < test.rows.rows(); ++r) {
    ptrs.push_back(test.rows.row(r));
  }
  std::vector<double> batched(ptrs.size());
  model.PredictStatementRows(ptrs.data(), ptrs.size(), batched.data());
  for (size_t r = 0; r < ptrs.size(); ++r) {
    EXPECT_EQ(batched[r], model.PredictRow(ptrs[r])) << "row " << r;
  }
}

TEST(Gbdt, MaxBinsOutOfRangeDies) {
  // Bin indices are uint8_t; max_bins outside [2, 256] would silently wrap.
  Rng rng(1);
  GbdtDataset data = MakeSyntheticDataset(10, 1, &rng);
  GbdtParams params;
  params.max_bins = 300;
  EXPECT_DEATH(Gbdt(params).Train(data), "max_bins");
  params.max_bins = 1;
  EXPECT_DEATH(Gbdt(params).Train(data), "max_bins");
}

TEST(CostModelTest, GbdtModelRanksAfterUpdate) {
  Rng rng(5);
  GbdtCostModel model;
  std::vector<FeatureMatrix> programs;
  std::vector<double> throughputs;
  for (int i = 0; i < 120; ++i) {
    std::vector<float> row(static_cast<size_t>(6), 0.0f);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    throughputs.push_back(1e9 * (0.2 + row[2]));
    programs.push_back(OneRowProgram(row));
  }
  model.Update(/*task_id=*/1, programs, throughputs);
  EXPECT_EQ(model.num_samples(), 120u);
  auto preds = model.Predict(programs);
  EXPECT_GT(PairwiseComparisonAccuracy(preds, throughputs), 0.8);
}

TEST(CostModelTest, InvalidProgramsScoreLowest) {
  GbdtCostModel model;
  std::vector<FeatureMatrix> programs;
  programs.emplace_back();  // failed lowering: empty matrix
  programs.push_back(OneRowProgram(std::vector<float>(4, 1.0f)));
  auto preds = model.Predict(programs);
  EXPECT_LT(preds[0], preds[1]);
}

TEST(CostModelTest, NormalizationAcrossTasks) {
  // Two tasks with very different raw throughputs; after per-task
  // normalization the model should treat both tasks' best programs alike.
  Rng rng(9);
  GbdtCostModel model;
  for (uint64_t task = 0; task < 2; ++task) {
    std::vector<FeatureMatrix> programs;
    std::vector<double> throughputs;
    double scale = task == 0 ? 1e12 : 1e6;
    for (int i = 0; i < 60; ++i) {
      std::vector<float> row(static_cast<size_t>(6), 0.0f);
      row[1] = static_cast<float>(rng.Uniform());
      throughputs.push_back(scale * (0.1 + row[1]));
      programs.push_back(OneRowProgram(row));
    }
    model.Update(task, programs, throughputs);
  }
  // Prediction should rank by feature 1 regardless of the raw scale.
  std::vector<float> hi(6, 0.0f);
  hi[1] = 0.9f;
  std::vector<float> lo(6, 0.0f);
  lo[1] = 0.1f;
  std::vector<FeatureMatrix> probe;
  probe.push_back(OneRowProgram(hi));
  probe.push_back(OneRowProgram(lo));
  auto preds = model.Predict(probe);
  EXPECT_GT(preds[0], preds[1]);
}

TEST(CostModelTest, BatchedPredictionsMatchUnbatched) {
  // PredictBatch gathers rows from every program into one forest pass; the
  // per-program sums must equal the one-at-a-time path bit for bit (the
  // determinism matrix depends on batched == unbatched).
  Rng rng(21);
  GbdtCostModel model;
  std::vector<FeatureMatrix> programs;
  std::vector<double> throughputs;
  for (int i = 0; i < 80; ++i) {
    std::vector<std::vector<float>> rows;
    for (int r = 0; r < 1 + i % 3; ++r) {
      std::vector<float> row(6, 0.0f);
      for (auto& v : row) {
        v = static_cast<float>(rng.Uniform());
      }
      rows.push_back(std::move(row));
    }
    programs.push_back(FeatureMatrix::FromRows(rows));
    throughputs.push_back(1e9 * rng.Uniform());
  }
  model.Update(/*task_id=*/2, programs, throughputs);

  std::vector<const FeatureMatrix*> ptrs;
  for (const FeatureMatrix& m : programs) {
    ptrs.push_back(&m);
  }
  std::vector<double> batched = model.PredictBatch(ptrs);
  for (size_t p = 0; p < programs.size(); ++p) {
    std::vector<double> single = model.PredictBatch({ptrs[p]});
    EXPECT_EQ(batched[p], single[0]) << "program " << p;
  }
  // Statement-level batch agrees with the per-program form.
  std::vector<std::vector<double>> stmt_batch = model.PredictStatementsBatch(ptrs);
  for (size_t p = 0; p < programs.size(); ++p) {
    EXPECT_EQ(stmt_batch[p], model.PredictStatements(programs[p])) << "program " << p;
  }
}

TEST(CostModelTest, ConcurrentPredictBatchIsSafe) {
  // Prediction is read-only on the trained model: concurrent PredictBatch /
  // PredictStatementsBatch calls from several threads must race-free agree
  // with the serial result (run under tsan in CI).
  Rng rng(17);
  GbdtCostModel model;
  std::vector<FeatureMatrix> programs;
  std::vector<double> throughputs;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> row(6, 0.0f);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    programs.push_back(OneRowProgram(row));
    throughputs.push_back(1e9 * (0.1 + rng.Uniform()));
  }
  model.Update(/*task_id=*/3, programs, throughputs);

  std::vector<const FeatureMatrix*> ptrs;
  for (const FeatureMatrix& m : programs) {
    ptrs.push_back(&m);
  }
  std::vector<double> expected = model.PredictBatch(ptrs);
  std::vector<std::vector<double>> expected_stmt = model.PredictStatementsBatch(ptrs);

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<char> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      bool agree = true;
      for (int iter = 0; iter < 8; ++iter) {
        agree = agree && model.PredictBatch(ptrs) == expected;
        agree = agree && model.PredictStatementsBatch(ptrs) == expected_stmt;
      }
      ok[static_cast<size_t>(t)] = agree ? 1 : 0;
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok[static_cast<size_t>(t)], 1) << "thread " << t;
  }
}

TEST(CostModelTest, RandomModelIsUniform) {
  RandomCostModel model(1);
  std::vector<FeatureMatrix> programs;
  programs.push_back(OneRowProgram(std::vector<float>(4, 0.0f)));
  programs.push_back(OneRowProgram(std::vector<float>(4, 0.0f)));
  programs.emplace_back();
  auto preds = model.Predict(programs);
  EXPECT_NE(preds[0], preds[1]);
  EXPECT_LT(preds[2], 0.0);  // invalid program
}

TEST(Gbdt, BinaryCodecRoundTripsBitExact) {
  Rng rng(11);
  GbdtDataset train = MakeSyntheticDataset(100, 2, &rng);
  Gbdt model;
  model.Train(train);
  ASSERT_TRUE(model.trained());

  ByteWriter w;
  model.EncodeTo(&w);
  std::string bytes = w.buffer();
  ByteReader r(bytes);
  Gbdt decoded;
  ASSERT_TRUE(decoded.DecodeFrom(&r));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded.trees().size(), model.trees().size());
  EXPECT_EQ(decoded.base_score(), model.base_score());
  for (int i = 0; i < 50; ++i) {
    std::vector<float> row(8);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    EXPECT_EQ(decoded.PredictRow(row), model.PredictRow(row));  // bit-identical
  }
}

TEST(Gbdt, CorruptedCodecInputRejected) {
  Rng rng(12);
  GbdtDataset train = MakeSyntheticDataset(40, 1, &rng);
  Gbdt model;
  model.Train(train);
  ByteWriter w;
  model.EncodeTo(&w);
  std::string bytes = w.buffer();
  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    ByteReader r(bytes.data(), cut);
    Gbdt decoded;
    EXPECT_FALSE(decoded.DecodeFrom(&r)) << "cut=" << cut;  // must not crash
  }
}

TEST(CostModelTest, SaveLoadContinuesTrainingExactly) {
  Rng rng(21);
  auto random_program = [&rng](int rows) {
    FeatureMatrix m;
    for (int r = 0; r < rows; ++r) {
      std::vector<float> row(8);
      for (auto& v : row) {
        v = static_cast<float>(rng.Uniform());
      }
      m.AppendRow(row);
    }
    return m;
  };
  GbdtCostModel original;
  std::vector<FeatureMatrix> batch1 = {random_program(2), random_program(3),
                                       random_program(1)};
  original.Update(7, batch1, {1e9, 3e9, 2e9});

  GbdtCostModel loaded;
  ASSERT_TRUE(loaded.Deserialize(original.Serialize()));
  EXPECT_EQ(loaded.num_samples(), original.num_samples());

  std::vector<FeatureMatrix> probes = {random_program(2), random_program(4)};
  EXPECT_EQ(loaded.Predict(probes), original.Predict(probes));  // bit-identical

  // Updating both with the same new measurements must keep them identical:
  // the load restored the full training state, not just the forest.
  std::vector<FeatureMatrix> batch2 = {random_program(2)};
  original.Update(8, batch2, {5e9});
  loaded.Update(8, batch2, {5e9});
  EXPECT_EQ(loaded.Predict(probes), original.Predict(probes));

  GbdtCostModel garbage;
  EXPECT_FALSE(garbage.Deserialize("not a model file"));
  EXPECT_FALSE(garbage.Deserialize(std::string()));
}

TEST(CostModelTest, TrainFromStoreMatchesLiveUpdates) {
  auto dag = std::make_shared<const ComputeDAG>(testing::Matmul(16, 16, 16));
  std::vector<State> programs;
  {
    State s(dag.get());
    ASSERT_TRUE(s.Split("C", 0, {4}));
    programs.push_back(std::move(s));
  }
  {
    State s(dag.get());
    ASSERT_TRUE(s.Split("C", 1, {8}));
    programs.push_back(std::move(s));
  }
  {
    State s(dag.get());
    ASSERT_TRUE(s.Fuse("C", 0, 2));
    programs.push_back(std::move(s));
  }
  ProgramCache cache(16, 1);
  std::vector<FeatureMatrix> features;
  for (const State& s : programs) {
    features.push_back(cache.GetOrBuild(s)->features());
  }
  std::vector<double> throughputs = {1e9, 4e9, 2e9};

  // The fleet's persisted view of the same measurements.
  ArtifactStore artifacts;
  artifacts.CaptureCache(cache);
  RecordStore records;
  for (size_t i = 0; i < programs.size(); ++i) {
    TuningRecord r;
    r.task_id = dag->CanonicalHash();
    r.seconds = 1e-3 / (1.0 + static_cast<double>(i));
    r.throughput = throughputs[i];
    r.steps = programs[i].steps();
    records.Add(std::move(r));
  }

  GbdtCostModel live;
  live.Update(dag->CanonicalHash(), features, throughputs);
  GbdtCostModel transfer;
  TrainFromStoreStats stats = transfer.TrainFromStore(records, artifacts);
  EXPECT_EQ(stats.used, 3u);
  EXPECT_EQ(stats.missing_features, 0u);
  EXPECT_EQ(transfer.num_samples(), live.num_samples());
  EXPECT_EQ(transfer.Predict(features), live.Predict(features));  // bit-identical
}

TEST(CostModelTest, TrainFromStoreCountsMissingFeatures) {
  RecordStore records;
  TuningRecord r;
  r.task_id = 123;
  r.seconds = 1e-3;
  r.steps = {MakeSplitStep("C", 0, {4})};
  records.Add(std::move(r));
  ArtifactStore artifacts;  // empty: no features for anything
  GbdtCostModel model;
  TrainFromStoreStats stats = model.TrainFromStore(records, artifacts);
  EXPECT_EQ(stats.used, 0u);
  EXPECT_EQ(stats.missing_features, 1u);
  EXPECT_EQ(model.num_samples(), 0u);
}

TEST(Metrics, PairwiseAccuracy) {
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({3, 2, 1}, {1, 2, 3}), 0.0);
  // Constant predictions cannot distinguish: 0.5 (random).
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 1, 1}, {1, 2, 3}), 0.5);
  // Ties in truth are skipped.
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 2}, {5, 5}), 0.5);
}

TEST(Metrics, RecallAtK) {
  std::vector<double> truth = {10, 9, 8, 1, 2, 3};
  std::vector<double> perfect = {10, 9, 8, 1, 2, 3};
  std::vector<double> inverted = {1, 2, 3, 10, 9, 8};
  EXPECT_DOUBLE_EQ(RecallAtK(perfect, truth, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(inverted, truth, 3), 0.0);
  std::vector<double> half = {10, 9, 1, 8, 2, 3};
  EXPECT_NEAR(RecallAtK(half, truth, 2), 1.0, 1e-9);
}

}  // namespace
}  // namespace ansor
