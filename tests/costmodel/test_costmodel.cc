#include <gtest/gtest.h>

#include <cmath>

#include "src/costmodel/cost_model.h"
#include "src/costmodel/gbdt.h"
#include "src/costmodel/metrics.h"
#include "src/support/rng.h"

namespace ansor {
namespace {

// Synthetic dataset: program score is a linear function of two features.
GbdtDataset MakeSyntheticDataset(int n_programs, int rows_per_program, Rng* rng) {
  GbdtDataset data;
  for (int p = 0; p < n_programs; ++p) {
    double label = 0.0;
    for (int r = 0; r < rows_per_program; ++r) {
      std::vector<float> row(8, 0.0f);
      for (auto& v : row) {
        v = static_cast<float>(rng->Uniform());
      }
      label += 0.6 * row[0] + 0.4 * row[3];
      data.rows.push_back(std::move(row));
      data.group.push_back(p);
    }
    label /= rows_per_program;
    data.labels.push_back(label);
    data.weights.push_back(std::max(label, 0.1));
  }
  return data;
}

TEST(Gbdt, LearnsSyntheticFunction) {
  Rng rng(3);
  GbdtDataset train = MakeSyntheticDataset(200, 2, &rng);
  Gbdt model;
  model.Train(train);
  ASSERT_TRUE(model.trained());

  GbdtDataset test = MakeSyntheticDataset(100, 2, &rng);
  std::vector<double> preds;
  std::vector<double> truth;
  size_t row = 0;
  for (int p = 0; p < test.num_programs(); ++p) {
    std::vector<std::vector<float>> rows;
    while (row < test.rows.size() && test.group[row] == p) {
      rows.push_back(test.rows[row]);
      ++row;
    }
    preds.push_back(model.PredictProgram(rows));
    truth.push_back(test.labels[static_cast<size_t>(p)]);
  }
  double acc = PairwiseComparisonAccuracy(preds, truth);
  EXPECT_GT(acc, 0.85) << "GBDT failed to learn a simple linear ranking";
}

TEST(Gbdt, EmptyDatasetIsSafe) {
  Gbdt model;
  model.Train(GbdtDataset{});
  EXPECT_FALSE(model.trained());
  EXPECT_DOUBLE_EQ(model.PredictRow(std::vector<float>(8, 0.0f)), 0.0);
}

TEST(Gbdt, WeightedLossPrioritizesFastPrograms) {
  // Two clusters: fast programs distinguished by feature 0, slow ones by
  // feature 1 with conflicting signal. With throughput weighting the model
  // must rank the fast cluster correctly.
  Rng rng(11);
  GbdtDataset data;
  int p = 0;
  for (int i = 0; i < 150; ++i) {
    std::vector<float> row(4, 0.0f);
    row[0] = static_cast<float>(rng.Uniform());
    double label = 0.7 + 0.3 * row[0];  // fast cluster
    data.rows.push_back(row);
    data.group.push_back(p);
    data.labels.push_back(label);
    data.weights.push_back(label);
    ++p;
  }
  Gbdt model;
  model.Train(data);
  std::vector<float> hi(4, 0.0f);
  hi[0] = 0.95f;
  std::vector<float> lo(4, 0.0f);
  lo[0] = 0.05f;
  EXPECT_GT(model.PredictProgram({hi}), model.PredictProgram({lo}));
}

TEST(CostModelTest, GbdtModelRanksAfterUpdate) {
  Rng rng(5);
  GbdtCostModel model;
  std::vector<std::vector<std::vector<float>>> programs;
  std::vector<double> throughputs;
  for (int i = 0; i < 120; ++i) {
    std::vector<float> row(static_cast<size_t>(6), 0.0f);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform());
    }
    throughputs.push_back(1e9 * (0.2 + row[2]));
    programs.push_back({row});
  }
  model.Update(/*task_id=*/1, programs, throughputs);
  EXPECT_EQ(model.num_samples(), 120u);
  auto preds = model.Predict(programs);
  EXPECT_GT(PairwiseComparisonAccuracy(preds, throughputs), 0.8);
}

TEST(CostModelTest, InvalidProgramsScoreLowest) {
  GbdtCostModel model;
  auto preds = model.Predict({{}, {std::vector<float>(4, 1.0f)}});
  EXPECT_LT(preds[0], preds[1]);
}

TEST(CostModelTest, NormalizationAcrossTasks) {
  // Two tasks with very different raw throughputs; after per-task
  // normalization the model should treat both tasks' best programs alike.
  Rng rng(9);
  GbdtCostModel model;
  for (uint64_t task = 0; task < 2; ++task) {
    std::vector<std::vector<std::vector<float>>> programs;
    std::vector<double> throughputs;
    double scale = task == 0 ? 1e12 : 1e6;
    for (int i = 0; i < 60; ++i) {
      std::vector<float> row(static_cast<size_t>(6), 0.0f);
      row[1] = static_cast<float>(rng.Uniform());
      throughputs.push_back(scale * (0.1 + row[1]));
      programs.push_back({row});
    }
    model.Update(task, programs, throughputs);
  }
  // Prediction should rank by feature 1 regardless of the raw scale.
  std::vector<float> hi(6, 0.0f);
  hi[1] = 0.9f;
  std::vector<float> lo(6, 0.0f);
  lo[1] = 0.1f;
  auto preds = model.Predict({{hi}, {lo}});
  EXPECT_GT(preds[0], preds[1]);
}

TEST(CostModelTest, RandomModelIsUniform) {
  RandomCostModel model(1);
  auto preds = model.Predict({{std::vector<float>(4, 0.0f)},
                              {std::vector<float>(4, 0.0f)},
                              {}});
  EXPECT_NE(preds[0], preds[1]);
  EXPECT_LT(preds[2], 0.0);  // invalid program
}

TEST(Metrics, PairwiseAccuracy) {
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({3, 2, 1}, {1, 2, 3}), 0.0);
  // Constant predictions cannot distinguish: 0.5 (random).
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 1, 1}, {1, 2, 3}), 0.5);
  // Ties in truth are skipped.
  EXPECT_DOUBLE_EQ(PairwiseComparisonAccuracy({1, 2}, {5, 5}), 0.5);
}

TEST(Metrics, RecallAtK) {
  std::vector<double> truth = {10, 9, 8, 1, 2, 3};
  std::vector<double> perfect = {10, 9, 8, 1, 2, 3};
  std::vector<double> inverted = {1, 2, 3, 10, 9, 8};
  EXPECT_DOUBLE_EQ(RecallAtK(perfect, truth, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(inverted, truth, 3), 0.0);
  std::vector<double> half = {10, 9, 1, 8, 2, 3};
  EXPECT_NEAR(RecallAtK(half, truth, 2), 1.0, 1e-9);
}

}  // namespace
}  // namespace ansor
