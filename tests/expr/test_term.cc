#include <gtest/gtest.h>

#include "src/expr/term.h"

namespace ansor {
namespace {

std::unordered_map<int64_t, int64_t> Extents(const std::vector<std::pair<Expr, int64_t>>& v) {
  std::unordered_map<int64_t, int64_t> m;
  for (const auto& [var, extent] : v) {
    m[var->var_id] = extent;
  }
  return m;
}

TEST(TermMatch, PlainVariable) {
  Expr v = MakeVar("v", 16);
  AxisTerm term;
  ASSERT_TRUE(MatchAxisTerm(v, Extents({{v, 16}}), &term));
  EXPECT_EQ(term.var_id, v->var_id);
  EXPECT_EQ(term.multiplier, 1);
  EXPECT_EQ(term.component_extent, 16);
}

TEST(TermMatch, ScaledVariable) {
  Expr v = MakeVar("v", 8);
  AxisTerm term;
  ASSERT_TRUE(MatchAxisTerm(Expr(v) * IntImm(4), Extents({{v, 8}}), &term));
  EXPECT_EQ(term.multiplier, 4);
  EXPECT_EQ(term.component_extent, 8);
  // Constant on the left also matches.
  ASSERT_TRUE(MatchAxisTerm(IntImm(4) * Expr(v), Extents({{v, 8}}), &term));
  EXPECT_EQ(term.multiplier, 4);
}

TEST(TermMatch, FusedComponentDivMod) {
  // ((f / 4) % 8) * 2 : component extent 8, multiplier 2, divisor 4.
  Expr f = MakeVar("f", 64);
  Expr e = ((Expr(f) / IntImm(4)) % IntImm(8)) * IntImm(2);
  AxisTerm term;
  ASSERT_TRUE(MatchAxisTerm(e, Extents({{f, 64}}), &term));
  EXPECT_EQ(term.var_id, f->var_id);
  EXPECT_EQ(term.multiplier, 2);
  EXPECT_EQ(term.divisor, 4);
  EXPECT_EQ(term.component_extent, 8);
}

TEST(TermMatch, ModBoundsComponentExtent) {
  // (f / 16) with extent 64 -> 4 distinct values even without a mod.
  Expr f = MakeVar("f", 64);
  AxisTerm term;
  ASSERT_TRUE(MatchAxisTerm(Expr(f) / IntImm(16), Extents({{f, 64}}), &term));
  EXPECT_EQ(term.component_extent, 4);
  // Mod larger than the range does not inflate the extent.
  ASSERT_TRUE(MatchAxisTerm((Expr(f) / IntImm(16)) % IntImm(100), Extents({{f, 64}}), &term));
  EXPECT_EQ(term.component_extent, 4);
}

TEST(TermMatch, Constants) {
  AxisTerm term;
  ASSERT_TRUE(MatchAxisTerm(IntImm(7), {}, &term));
  EXPECT_TRUE(term.is_constant);
  EXPECT_EQ(term.constant, 7);
  ASSERT_TRUE(MatchAxisTerm(IntImm(7) * IntImm(3), {}, &term));
  EXPECT_EQ(term.constant, 21);
}

TEST(TermMatch, RejectsOutsideGrammar) {
  Expr a = MakeVar("a", 4);
  Expr b = MakeVar("b", 4);
  auto extents = Extents({{a, 4}, {b, 4}});
  AxisTerm term;
  EXPECT_FALSE(MatchAxisTerm(Expr(a) * Expr(b), extents, &term));
  EXPECT_FALSE(MatchAxisTerm(Min(Expr(a), IntImm(2)), extents, &term));
  EXPECT_FALSE(MatchAxisTerm(Select(Expr(a) < IntImm(2), Expr(a), Expr(b)), extents, &term));
  // Unknown variable (not a loop var in scope).
  Expr unknown = MakeVar("u", 4);
  EXPECT_FALSE(MatchAxisTerm(unknown, extents, &term));
}

TEST(DecomposeIndexTest, SplitsAdditiveTerms) {
  Expr a = MakeVar("a", 4);
  Expr b = MakeVar("b", 8);
  Expr e = Expr(a) * IntImm(8) + Expr(b) + IntImm(3);
  std::vector<AxisTerm> terms;
  ASSERT_TRUE(DecomposeIndex(e, Extents({{a, 4}, {b, 8}}), &terms));
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0].multiplier, 8);
  EXPECT_EQ(terms[1].multiplier, 1);
  EXPECT_TRUE(terms[2].is_constant);
}

TEST(DecomposeIndexTest, FailsOnAnyBadTerm) {
  Expr a = MakeVar("a", 4);
  Expr e = Expr(a) + Expr(a) * Expr(a);
  std::vector<AxisTerm> terms;
  EXPECT_FALSE(DecomposeIndex(e, Extents({{a, 4}}), &terms));
}

TEST(FlattenAddTermsTest, NestedAdds) {
  Expr a = MakeVar("a", 2);
  Expr b = MakeVar("b", 2);
  Expr c = MakeVar("c", 2);
  std::vector<Expr> terms;
  FlattenAddTerms((Expr(a) + Expr(b)) + Expr(c), &terms);
  EXPECT_EQ(terms.size(), 3u);
  terms.clear();
  FlattenAddTerms(Expr(a), &terms);
  EXPECT_EQ(terms.size(), 1u);
}

}  // namespace
}  // namespace ansor
