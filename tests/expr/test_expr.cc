#include <gtest/gtest.h>

#include "src/expr/affine.h"
#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/expr/operation.h"

namespace ansor {
namespace {

TEST(Expr, LiteralsAndOperators) {
  Expr e = IntImm(2) + IntImm(3) * IntImm(4);
  EvalContext ctx;
  EXPECT_EQ(Evaluate(e, &ctx).AsInt(), 14);
}

TEST(Expr, FloorDivAndMod) {
  EvalContext ctx;
  EXPECT_EQ(Evaluate(IntImm(7) / IntImm(2), &ctx).AsInt(), 3);
  EXPECT_EQ(Evaluate(IntImm(-7) / IntImm(2), &ctx).AsInt(), -4);
  EXPECT_EQ(Evaluate(IntImm(7) % IntImm(3), &ctx).AsInt(), 1);
  EXPECT_EQ(Evaluate(IntImm(-7) % IntImm(3), &ctx).AsInt(), 2);
}

TEST(Expr, MinMaxSelect) {
  EvalContext ctx;
  EXPECT_EQ(Evaluate(Min(IntImm(3), IntImm(5)), &ctx).AsInt(), 3);
  EXPECT_EQ(Evaluate(Max(IntImm(3), IntImm(5)), &ctx).AsInt(), 5);
  Expr s = Select(IntImm(1) < IntImm(2), FloatImm(1.5), FloatImm(2.5));
  EXPECT_DOUBLE_EQ(Evaluate(s, &ctx).AsFloat(), 1.5);
}

TEST(Expr, SelectIsLazy) {
  // The untaken branch must not be evaluated (it reads out of bounds).
  auto buffer = std::make_shared<Buffer>();
  buffer->name = "T";
  buffer->shape = {2};
  std::vector<float> data = {1.0f, 2.0f};
  EvalContext ctx;
  ctx.buffers["T"] = &data;
  Expr bad = Load(buffer, {IntImm(5)});
  Expr ok = Load(buffer, {IntImm(1)});
  Expr s = Select(IntImm(0) == IntImm(0), ok, bad);
  EXPECT_FLOAT_EQ(Evaluate(s, &ctx).AsFloat(), 2.0f);
}

TEST(Expr, VarBindingAndFreshIds) {
  Expr x = MakeVar("x");
  Expr y = MakeVar("x");  // same name, distinct identity
  EXPECT_NE(x->var_id, y->var_id);
  EvalContext ctx;
  ctx.vars[x->var_id] = 3;
  ctx.vars[y->var_id] = 4;
  EXPECT_EQ(Evaluate(x * y, &ctx).AsInt(), 12);
}

TEST(Expr, Intrinsics) {
  EvalContext ctx;
  EXPECT_NEAR(Evaluate(CallIntrinsic(Intrinsic::kSqrt, {FloatImm(9.0)}), &ctx).AsFloat(), 3.0,
              1e-12);
  EXPECT_NEAR(Evaluate(CallIntrinsic(Intrinsic::kSigmoid, {FloatImm(0.0)}), &ctx).AsFloat(),
              0.5, 1e-12);
  EXPECT_NEAR(Evaluate(CallIntrinsic(Intrinsic::kExp, {FloatImm(1.0)}), &ctx).AsFloat(),
              2.718281828, 1e-6);
}

TEST(Expr, ReduceSum) {
  Expr k = ReduceAxis(5, "k");
  Expr body = Sum(Expr(k) * Expr(k), {k});
  EvalContext ctx;
  EXPECT_DOUBLE_EQ(Evaluate(body, &ctx).AsFloat(), 0 + 1 + 4 + 9 + 16);
}

TEST(Expr, ReduceMaxMultiAxis) {
  Expr i = ReduceAxis(3, "i");
  Expr j = ReduceAxis(4, "j");
  Expr body = MaxReduce(Expr(i) * IntImm(10) + Expr(j), {i, j});
  EvalContext ctx;
  EXPECT_DOUBLE_EQ(Evaluate(body, &ctx).AsFloat(), 23.0);
}

TEST(Expr, SubstituteReplacesVars) {
  Expr x = MakeVar("x");
  Expr e = Expr(x) * IntImm(2) + IntImm(1);
  int64_t id = x->var_id;
  Expr sub = Substitute(e, [&](const ExprNode& var) {
    return var.var_id == id ? Expr(IntImm(10)) : Expr();
  });
  EvalContext ctx;
  EXPECT_EQ(Evaluate(sub, &ctx).AsInt(), 21);
}

TEST(Expr, SubstituteSharesUnchangedNodes) {
  Expr x = MakeVar("x");
  Expr e = IntImm(1) + IntImm(2);
  Expr sub = Substitute(e, [](const ExprNode&) { return Expr(); });
  EXPECT_EQ(sub.get(), e.get());
}

TEST(Expr, StructuralHashEqual) {
  Expr x = MakeVar("x");
  Expr a = Expr(x) + IntImm(1);
  Expr b = Expr(x) + IntImm(1);
  EXPECT_TRUE(StructuralEqual(a, b));
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));
  Expr c = Expr(x) + IntImm(2);
  EXPECT_FALSE(StructuralEqual(a, c));
}

TEST(Expr, CollectLoadsAndVars) {
  Tensor a = Placeholder("A", {4, 4});
  Expr x = MakeVar("x");
  Expr e = a(x, IntImm(0)) + a(x, IntImm(1)) * Expr(x);
  std::vector<const ExprNode*> loads;
  CollectLoads(e, &loads);
  EXPECT_EQ(loads.size(), 2u);
  std::vector<const ExprNode*> vars;
  CollectVars(e, &vars);
  EXPECT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0]->var_id, x->var_id);
}

TEST(Expr, ToStringReadable) {
  Tensor a = Placeholder("A", {4});
  Expr x = MakeVar("x");
  Expr e = a(x) * FloatImm(2.0);
  std::string s = ToString(e);
  EXPECT_NE(s.find("A[x]"), std::string::npos);
}

TEST(Affine, SimpleForms) {
  Expr x = MakeVar("x");
  Expr y = MakeVar("y");
  AffineForm f = AnalyzeAffine(Expr(x) * IntImm(3) + Expr(y) + IntImm(7));
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.CoeffOf(x->var_id), 3);
  EXPECT_EQ(f.CoeffOf(y->var_id), 1);
  EXPECT_EQ(f.constant, 7);
}

TEST(Affine, SubtractionAndNestedMul) {
  Expr x = MakeVar("x");
  AffineForm f = AnalyzeAffine(IntImm(10) - Expr(x) * IntImm(2));
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.CoeffOf(x->var_id), -2);
  EXPECT_EQ(f.constant, 10);
}

TEST(Affine, NonAffineRejected) {
  Expr x = MakeVar("x");
  EXPECT_FALSE(AnalyzeAffine(Expr(x) * Expr(x)).valid);
  EXPECT_FALSE(AnalyzeAffine(Expr(x) / IntImm(2)).valid);
  EXPECT_FALSE(AnalyzeAffine(Min(Expr(x), IntImm(3))).valid);
}

TEST(Operation, ComputeBuildsAxes) {
  Tensor a = Placeholder("A", {3, 5});
  Tensor b = Compute("B", {3, 5}, [&](const std::vector<Expr>& i) {
    return a(i[0], i[1]) + FloatImm(1.0);
  });
  EXPECT_EQ(b.op()->axis.size(), 2u);
  EXPECT_EQ(b.op()->axis[0]->var_extent, 3);
  EXPECT_EQ(b.op()->axis[1]->var_extent, 5);
  auto inputs = b.op()->InputBuffers();
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0]->name, "A");
}

TEST(Operation, ReduceAxesExposed) {
  Tensor a = Placeholder("A", {3, 5});
  Tensor s = Compute("S", {3}, [&](const std::vector<Expr>& i) {
    Expr k = ReduceAxis(5, "k");
    return Sum(a(i[0], k), {k});
  });
  auto reduce_axes = s.op()->ReduceAxes();
  ASSERT_EQ(reduce_axes.size(), 1u);
  EXPECT_EQ(reduce_axes[0]->var_extent, 5);
}

TEST(Buffer, NumElements) {
  Buffer b;
  b.shape = {2, 3, 4};
  EXPECT_EQ(b.NumElements(), 24);
}

TEST(FlattenIndexTest, RowMajor) {
  EXPECT_EQ(FlattenIndex({1, 2}, {3, 4}), 6);
  EXPECT_EQ(FlattenIndex({0, 0}, {3, 4}), 0);
  EXPECT_EQ(FlattenIndex({2, 3}, {3, 4}), 11);
}

}  // namespace
}  // namespace ansor
