// Service-level telemetry tests: golden trace shape on a fixed-seed
// multi-job run, the span-durations-sum-to-turnaround contract, bit-identical
// determinism with tracing on vs off, and fake-clock JobReport timing.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/service/tuning_service.h"
#include "src/telemetry/trace_report.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TaskSchedulerOptions TraceTestOptions(uint64_t seed) {
  TaskSchedulerOptions options;
  options.measures_per_round = 6;
  options.seed = seed;
  options.search.population = 10;
  options.search.generations = 1;
  options.search.random_samples_per_round = 5;
  options.search.seed = seed * 31 + 7;
  return options;
}

std::vector<SearchTask> JobTasks(int job) {
  int64_t n = 16 << (job % 2);
  return {MakeSearchTask("mm_a", testing::Matmul(n, 16, 16), 1, "mm"),
          MakeSearchTask("mm_b", testing::Matmul(16, n, 16), 1, "mm")};
}

JobSpec MakeJob(int job, int rounds, Measurer* measurer, CostModel* model) {
  JobSpec spec;
  spec.name = "job" + std::to_string(job);
  spec.tasks = JobTasks(job);
  spec.networks = {{"net", {0, 1}}};
  spec.objective = Objective::SumLatency();
  spec.options = TraceTestOptions(100 + static_cast<uint64_t>(job));
  spec.total_rounds = rounds;
  spec.measurer = measurer;
  spec.model = model;
  return spec;
}

// Every span name the pipeline can emit; the shape test fails on anything
// outside this taxonomy so new instrumentation updates it deliberately.
const std::set<std::string>& KnownSpanNames() {
  static const std::set<std::string> names = {
      "job",          "round",          "warm_start",      "store_save",
      "store_load",   "sketch",         "plan_round",      "training_features",
      "commit_round", "evolution",      "generation",      "model_predict",
      "model_train",  "artifact_build", "lower",           "extract_features",
      "verify_structural", "verify_resources", "measure_batch", "measure_trial"};
  return names;
}

TEST(TelemetryService, GoldenTraceShapeOnFixedSeedTwoJobRun) {
  constexpr int kJobs = 2;
  constexpr int kRounds = 3;
  TraceSink sink;
  TuningServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.max_concurrent_jobs = kJobs;
  service_options.trace_sink = &sink;

  std::vector<std::unique_ptr<Measurer>> measurers;
  std::vector<std::unique_ptr<GbdtCostModel>> models;
  std::vector<JobHandle> handles;
  {
    TuningService service(service_options);
    for (int j = 0; j < kJobs; ++j) {
      measurers.push_back(std::make_unique<Measurer>(MachineModel::IntelCpu20Core()));
      models.push_back(std::make_unique<GbdtCostModel>());
      handles.push_back(service.Submit(
          MakeJob(j, kRounds, measurers.back().get(), models.back().get())));
    }
    service.WaitAll();
    service.Shutdown();
  }

  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_FALSE(events.empty());

  std::map<int64_t, const TraceEvent*> job_spans;  // job id -> "job" span
  std::map<int64_t, int> rounds_per_job;
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : events) {
    by_span[e.span_id] = &e;
  }
  for (const TraceEvent& e : events) {
    // Shape invariants that hold for every single span.
    EXPECT_TRUE(KnownSpanNames().count(e.name)) << "unknown span: " << e.name;
    EXPECT_NE(e.span_id, 0u);
    EXPECT_GE(e.end_nanos, e.start_nanos) << e.name;
    if (e.parent_id != 0) {
      auto parent = by_span.find(e.parent_id);
      ASSERT_NE(parent, by_span.end()) << e.name << " has a dangling parent";
      // A child's attribution never contradicts its parent's.
      if (parent->second->job >= 0) {
        EXPECT_EQ(e.job, parent->second->job) << e.name;
      }
    }
    if (e.name == "job") {
      EXPECT_EQ(e.parent_id, 0u);
      ASSERT_GE(e.job, 0);
      EXPECT_TRUE(job_spans.emplace(e.job, &e).second)
          << "duplicate job span for job " << e.job;
    } else if (e.name == "round") {
      ASSERT_GE(e.job, 0);
      EXPECT_GE(e.round, 0);
      // The scheduler's task pick rides along as an extra arg.
      bool has_task_arg = false;
      for (const auto& kv : e.args) has_task_arg |= (kv.first == "picked_task");
      EXPECT_TRUE(has_task_arg);
      rounds_per_job[e.job] += 1;
    }
  }

  ASSERT_EQ(job_spans.size(), static_cast<size_t>(kJobs));
  for (const JobHandle& handle : handles) {
    SCOPED_TRACE("job " + handle.name());
    const JobReport& report = handle.report();
    ASSERT_EQ(report.status, JobStatus::kCompleted);
    auto it = job_spans.find(handle.id());
    ASSERT_NE(it, job_spans.end());
    const TraceEvent& job_span = *it->second;
    EXPECT_EQ(rounds_per_job[handle.id()], report.rounds_completed);
    // Round spans hang directly off their job span.
    for (const TraceEvent& e : events) {
      if (e.name == "round" && e.job == handle.id()) {
        EXPECT_EQ(e.parent_id, job_span.span_id);
      }
    }
    // The job span covers the run phase: its duration can't exceed the
    // reported turnaround, and its direct children partition most of it.
    EXPECT_GT(job_span.duration_seconds(), 0.0);
    EXPECT_LE(job_span.duration_seconds(), report.turnaround_seconds + 0.050);
  }
}

TEST(TelemetryService, SpanDurationsSumToReportedTurnaround) {
  constexpr int kJobs = 3;
  constexpr int kRounds = 3;
  std::string trace_path = ::testing::TempDir() + "/ansor_test_service_trace.jsonl";
  std::remove(trace_path.c_str());

  TuningServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.max_concurrent_jobs = kJobs;  // all admitted at once: queue ~ 0
  service_options.trace_path = trace_path;

  std::vector<std::unique_ptr<Measurer>> measurers;
  std::vector<std::unique_ptr<GbdtCostModel>> models;
  std::vector<JobHandle> handles;
  {
    TuningService service(service_options);
    for (int j = 0; j < kJobs; ++j) {
      measurers.push_back(std::make_unique<Measurer>(MachineModel::IntelCpu20Core()));
      models.push_back(std::make_unique<GbdtCostModel>());
      handles.push_back(service.Submit(
          MakeJob(j, kRounds, measurers.back().get(), models.back().get())));
    }
    service.WaitAll();
    service.Shutdown();  // flushes the trace file
  }

  std::vector<TraceEvent> events;
  ASSERT_TRUE(TraceSink::LoadFromFile(trace_path, &events));
  ASSERT_FALSE(events.empty());
  TraceReport folded = FoldEvents(events);
  ASSERT_EQ(folded.jobs.size(), static_cast<size_t>(kJobs));

  std::map<int64_t, const JobReport*> reports;
  for (const JobHandle& handle : handles) {
    ASSERT_EQ(handle.report().status, JobStatus::kCompleted);
    reports[handle.id()] = &handle.report();
  }
  for (const JobAttribution& job : folded.jobs) {
    SCOPED_TRACE("job " + std::to_string(job.job));
    auto it = reports.find(job.job);
    ASSERT_NE(it, reports.end());
    const JobReport& report = *it->second;
    // The acceptance contract: the job's span durations account for its
    // reported turnaround within tolerance. Direct children of the job span
    // partition its wall time (never exceed it), and together the spans
    // cover the bulk of the turnaround — the slack is queueing (~0 here,
    // all jobs admitted immediately) plus between-span bookkeeping.
    EXPECT_GT(job.turnaround_seconds, 0.0);
    EXPECT_LE(job.direct_child_seconds, job.turnaround_seconds * 1.01 + 1e-6);
    EXPECT_LE(job.turnaround_seconds, report.turnaround_seconds + 0.050);
    double tolerance = 0.050 + 0.25 * report.turnaround_seconds;
    EXPECT_NEAR(job.direct_child_seconds, report.turnaround_seconds, tolerance);
    EXPECT_FALSE(job.phases.empty());
  }
  // The folded report renders without blowing up.
  EXPECT_NE(RenderReport(folded).find("per-phase totals"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(TelemetryService, DeterminismBitIdenticalWithTracingOnAndOff) {
  constexpr int kJobs = 2;
  constexpr int kRounds = 3;

  auto run = [&](TraceSink* sink) {
    struct Result {
      std::vector<std::vector<int>> traces;
      std::vector<std::vector<double>> best;
      std::vector<int64_t> trials;
    } result;
    TuningServiceOptions service_options;
    service_options.num_workers = 2;
    service_options.max_concurrent_jobs = kJobs;
    service_options.trace_sink = sink;
    TuningService service(service_options);
    std::vector<std::unique_ptr<Measurer>> measurers;
    std::vector<std::unique_ptr<GbdtCostModel>> models;
    std::vector<JobHandle> handles;
    for (int j = 0; j < kJobs; ++j) {
      measurers.push_back(std::make_unique<Measurer>(MachineModel::IntelCpu20Core()));
      models.push_back(std::make_unique<GbdtCostModel>());
      handles.push_back(service.Submit(
          MakeJob(j, kRounds, measurers.back().get(), models.back().get())));
    }
    service.WaitAll();
    for (const JobHandle& handle : handles) {
      const JobReport& report = handle.report();
      EXPECT_EQ(report.status, JobStatus::kCompleted);
      result.traces.push_back(report.allocation_trace);
      result.best.push_back(report.best_seconds);
      result.trials.push_back(report.trials);
    }
    return result;
  };

  auto untraced = run(nullptr);
  TraceSink sink;
  auto traced = run(&sink);
  EXPECT_GT(sink.size(), 0u);

  ASSERT_EQ(traced.traces.size(), untraced.traces.size());
  for (size_t j = 0; j < untraced.traces.size(); ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    EXPECT_EQ(traced.traces[j], untraced.traces[j]);
    ASSERT_EQ(traced.best[j].size(), untraced.best[j].size());
    for (size_t t = 0; t < untraced.best[j].size(); ++t) {
      EXPECT_DOUBLE_EQ(traced.best[j][t], untraced.best[j][t]);
    }
    EXPECT_EQ(traced.trials[j], untraced.trials[j]);
  }
}

TEST(TelemetryService, FakeClockMakesReportTimingExact) {
  FakeClock clock(0, /*step_nanos=*/1000000);  // 1 ms per reading
  TuningServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_concurrent_jobs = 1;
  service_options.clock = &clock;
  TuningService service(service_options);

  Measurer measurer(MachineModel::IntelCpu20Core());
  GbdtCostModel model;
  JobHandle handle = service.Submit(MakeJob(0, 2, &measurer, &model));
  service.WaitAll();

  const JobReport& report = handle.report();
  ASSERT_EQ(report.status, JobStatus::kCompleted);
  // Single-clock contract: queue + run == turnaround EXACTLY (the identity
  // is by construction, not within a tolerance), and every reading of the
  // auto-advancing fake clock is strictly later than the previous one, so
  // all three are positive without any real time passing.
  EXPECT_DOUBLE_EQ(report.queue_seconds + report.run_seconds,
                   report.turnaround_seconds);
  EXPECT_GT(report.queue_seconds, 0.0);
  EXPECT_GT(report.run_seconds, 0.0);
  // Phase attribution runs off the same injected clock.
  EXPECT_GT(report.phases.TotalSeconds(), 0.0);
  EXPECT_GE(report.phases.OverlapFraction(), 0.0);
  EXPECT_LE(report.phases.OverlapFraction(), 1.0);
  // Outcome accounting: every started trial is valid or invalid.
  EXPECT_EQ(report.trials_valid + report.trials_invalid, report.trials);
  EXPECT_GE(report.trials_valid, 0);
  EXPECT_GE(report.trials_invalid, 0);
}

}  // namespace
}  // namespace ansor
