// Telemetry core tests: histogram bucket/quantile correctness, lock-cheap
// registry behavior under concurrent writers (the tsan target), span
// parent/child nesting, and the JSONL trace round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/clock.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/telemetry/trace_report.h"

namespace ansor {
namespace {

TEST(TelemetryHistogram, BucketIndexCoversPowersOfTwo) {
  // Bucket kBias covers [1, 2): the anchor the whole layout derives from.
  EXPECT_EQ(Histogram::BucketIndex(1.0), Histogram::kBias);
  EXPECT_EQ(Histogram::BucketIndex(1.999), Histogram::kBias);
  EXPECT_EQ(Histogram::BucketIndex(2.0), Histogram::kBias + 1);
  EXPECT_EQ(Histogram::BucketIndex(0.5), Histogram::kBias - 1);
  // Nonpositive values land in bucket 0 by contract.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-3.5), 0);
  // Every bucket's lower bound maps back to its own index.
  for (int b = 8; b < Histogram::kBuckets - 1; ++b) {
    double lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "bucket " << b << " lo " << lo;
  }
}

TEST(TelemetryHistogram, ExactAggregatesAndBucketResolutionQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);

  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(static_cast<double>(i));  // 1..100
    h.Observe(values.back());
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);

  // Power-of-two buckets: quantile estimates carry at most one octave of
  // relative error around the true order statistic.
  double p50 = h.Quantile(0.50);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  double p95 = h.Quantile(0.95);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 100.0);  // clamped to the exact max
  EXPECT_LE(h.Quantile(0.99), 100.0);
  // q=0 -> rank 1 lands in the min's bucket [1, 2).
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(0.0), 2.0);
}

TEST(TelemetryHistogram, QuantileClampsToExactMinMax) {
  Histogram h;
  h.Observe(3.7);
  h.Observe(3.9);
  // Both land in [2, 4); the geometric midpoint would be sqrt(8) = 2.83,
  // below the true min — the clamp keeps estimates inside [min, max].
  EXPECT_GE(h.Quantile(0.5), 3.7);
  EXPECT_LE(h.Quantile(0.99), 3.9);
}

TEST(TelemetryMetrics, RegistrationReturnsStablePointersAndFixedUnits) {
  MetricsRegistry registry;
  Counter* c = registry.counter("trials", "trials");
  c->Add(3);
  // Same name: same object, unit fixed at creation.
  EXPECT_EQ(registry.counter("trials", "ignored"), c);
  EXPECT_EQ(c->value(), 3);

  registry.SetGauge("best_seconds", 0.125, "seconds");
  EXPECT_DOUBLE_EQ(registry.gauge("best_seconds")->value(), 0.125);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"trials\""), std::string::npos);
  EXPECT_NE(json.find("\"best_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
}

TEST(TelemetryMetrics, SamplesFlattenHistograms) {
  MetricsRegistry registry;
  registry.AddCounter("n", 7, "count");
  Histogram* h = registry.histogram("latency", "seconds");
  h->Observe(1.0);
  h->Observe(2.0);

  std::vector<MetricSample> samples = registry.Samples();
  // counter + {count, mean, p50, p95, p99} for the histogram.
  ASSERT_EQ(samples.size(), 6u);
  EXPECT_EQ(samples[0].name, "n");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "latency.count");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_EQ(samples[2].name, "latency.mean");
  EXPECT_DOUBLE_EQ(samples[2].value, 1.5);

  std::string json = registry.SamplesJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"latency.p95\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"seconds\""), std::string::npos);
}

TEST(TelemetryMetrics, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hits");
  Histogram* hist = registry.histogram("obs");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Observe(static_cast<double>(t + 1));
        registry.gauge("last")->Set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist->min(), 1.0);
  EXPECT_DOUBLE_EQ(hist->max(), static_cast<double>(kThreads));
}

TEST(TelemetryClock, FakeClockAdvancesDeterministically) {
  FakeClock clock(1000, 10);
  EXPECT_EQ(clock.NowNanos(), 1000);
  EXPECT_EQ(clock.NowNanos(), 1010);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(clock.NowNanos(), 1000000000 + 1020);
  EXPECT_DOUBLE_EQ(SecondsBetween(0, 2500000000), 2.5);
}

TEST(TelemetrySpan, ParentChildNestingAndAttribution) {
  TraceSink sink;
  FakeClock clock(0, 1000);
  Tracer tracer(&sink, &clock);

  uint64_t outer_id = 0;
  {
    TraceSpan outer(tracer.WithJob(3).WithTask(1), "round", "service");
    ASSERT_TRUE(outer.enabled());
    outer_id = outer.id();
    outer.Arg("count", static_cast<int64_t>(4));
    TraceSpan inner(outer.child().WithRound(2), "evolution", "search");
    EXPECT_NE(inner.id(), outer_id);
  }
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner finishes first (RAII order).
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "evolution");
  EXPECT_EQ(inner.parent_id, outer_id);
  EXPECT_EQ(inner.job, 3);
  EXPECT_EQ(inner.task, 1);
  EXPECT_EQ(inner.round, 2);
  EXPECT_EQ(outer.name, "round");
  EXPECT_EQ(outer.parent_id, 0u);  // root
  EXPECT_EQ(outer.round, -1);
  EXPECT_GE(outer.end_nanos, outer.start_nanos);
  // The outer span's window covers the inner's.
  EXPECT_LE(outer.start_nanos, inner.start_nanos);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].first, "count");
}

TEST(TelemetrySpan, DisabledTracerRecordsNothing) {
  Tracer disabled;
  EXPECT_FALSE(disabled.enabled());
  TraceSpan span(disabled, "evolution", "search");
  EXPECT_FALSE(span.enabled());
  span.Arg("ignored", static_cast<int64_t>(1));
  Tracer child = span.child();
  EXPECT_FALSE(child.enabled());
  TraceSpan null_ptr_span(static_cast<const Tracer*>(nullptr), "x", "y");
  EXPECT_FALSE(null_ptr_span.enabled());
}

TEST(TelemetrySpan, JsonlRoundTripPreservesKnownFields) {
  TraceSink sink;
  FakeClock clock(5000, 250);
  Tracer tracer(&sink, &clock);
  {
    TraceSpan span(tracer.WithJob(2).WithTask(0).WithRound(1), "measure_trial",
                   "measure");
    span.Arg("outcome", std::string("valid"));
    span.Arg("queue_seconds", 0.25);
    span.Arg("count", static_cast<int64_t>(6));
  }
  std::string jsonl = sink.ToJsonl();
  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(TraceSink::ParseJsonl(jsonl, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  std::vector<TraceEvent> recorded = sink.Snapshot();
  ASSERT_EQ(recorded.size(), 1u);
  const TraceEvent& original = recorded[0];
  const TraceEvent& back = parsed[0];
  EXPECT_EQ(back.name, original.name);
  EXPECT_EQ(back.category, original.category);
  EXPECT_EQ(back.span_id, original.span_id);
  EXPECT_EQ(back.parent_id, original.parent_id);
  EXPECT_EQ(back.job, 2);
  EXPECT_EQ(back.task, 0);
  EXPECT_EQ(back.round, 1);
  // Microsecond timestamp precision survives the round trip (the fake clock
  // ticks in multiples of 250 ns -> sub-us truncation stays under 1 us).
  EXPECT_NEAR(back.duration_seconds(), original.duration_seconds(), 1e-6);
  bool saw_outcome = false;
  for (const auto& [key, value] : back.args) {
    if (key == "outcome") {
      saw_outcome = true;
      EXPECT_EQ(value, "valid");  // the parser strips the JSON quotes
    }
  }
  EXPECT_TRUE(saw_outcome);
}

TEST(TelemetrySpan, JsonlEscapesControlCharactersInArgs) {
  // Caller-provided strings reach the trace (e.g. JobSpec::name via
  // span.Arg("name", ...)); control characters in them must not break the
  // one-event-per-line JSONL framing or produce invalid JSON.
  TraceSink sink;
  FakeClock clock(1000, 100);
  Tracer tracer(&sink, &clock);
  const std::string hostile = "job\rname\nwith\tctrl\x01!";
  {
    TraceSpan span(tracer, "job", "service");
    span.Arg("outcome", hostile);
  }
  std::string jsonl = sink.ToJsonl();
  // Exactly one line, with every control byte escaped rather than raw.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_EQ(jsonl.find('\r'), std::string::npos);
  EXPECT_EQ(jsonl.find('\t'), std::string::npos);
  EXPECT_EQ(jsonl.find('\x01'), std::string::npos);
  EXPECT_NE(jsonl.find("\\r"), std::string::npos);
  EXPECT_NE(jsonl.find("\\u0001"), std::string::npos);
  std::vector<TraceEvent> parsed;
  ASSERT_TRUE(TraceSink::ParseJsonl(jsonl, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  bool saw_outcome = false;
  for (const auto& [key, value] : parsed[0].args) {
    if (key == "outcome") {
      saw_outcome = true;
      EXPECT_EQ(value, hostile);  // the escapes decode back to the original
    }
  }
  EXPECT_TRUE(saw_outcome);
}

TEST(TelemetryTraceReport, FoldsPhasesAndJobAttribution) {
  TraceSink sink;
  auto add = [&](const char* name, uint64_t id, uint64_t parent, int64_t job,
                 int64_t task, int64_t start_us, int64_t end_us) {
    TraceEvent e;
    e.name = name;
    e.category = "test";
    e.span_id = id;
    e.parent_id = parent;
    e.job = job;
    e.task = task;
    e.start_nanos = start_us * 1000;
    e.end_nanos = end_us * 1000;
    sink.Record(e);
  };
  // job 1: a 100us job with two direct 40us rounds; one round holds a
  // nested 10us evolution (inclusive: must NOT double-count into the
  // direct-children sum).
  add("job", 1, 0, 1, -1, 0, 100);
  add("round", 2, 1, 1, 0, 0, 40);
  add("round", 3, 1, 1, 1, 50, 90);
  add("evolution", 4, 3, 1, 1, 55, 65);

  TraceReport report = FoldEvents(sink.Snapshot());
  EXPECT_EQ(report.total_events, 4u);
  ASSERT_EQ(report.jobs.size(), 1u);
  const JobAttribution& job = report.jobs[0];
  EXPECT_EQ(job.job, 1);
  EXPECT_NEAR(job.turnaround_seconds, 100e-6, 1e-12);
  EXPECT_NEAR(job.direct_child_seconds, 80e-6, 1e-12);  // rounds only
  ASSERT_EQ(job.task_seconds.size(), 2u);  // sorted by task id
  EXPECT_EQ(job.task_seconds[1].first, 1);
  EXPECT_NEAR(job.task_seconds[1].second, 50e-6, 1e-12);  // round + evolution

  std::string rendered = RenderReport(report);
  EXPECT_NE(rendered.find("job 1"), std::string::npos);
  EXPECT_NE(rendered.find("evolution"), std::string::npos);
}

}  // namespace
}  // namespace ansor
