#include <gtest/gtest.h>

#include "src/ir/steps.h"

namespace ansor {
namespace {

TEST(Steps, FactoryFillsFields) {
  Step s = MakeSplitStep("C", 1, {4, 2});
  EXPECT_EQ(s.kind, StepKind::kSplit);
  EXPECT_EQ(s.stage, "C");
  EXPECT_EQ(s.iter, 1);
  EXPECT_EQ(s.lengths, (std::vector<int64_t>{4, 2}));

  Step f = MakeFollowSplitStep("D", 0, 3, 2);
  EXPECT_EQ(f.kind, StepKind::kFollowSplit);
  EXPECT_EQ(f.src_step, 3);
  EXPECT_EQ(f.n_parts, 2);

  Step fuse = MakeFuseStep("C", 0, 4);
  EXPECT_EQ(fuse.fuse_count, 4);

  Step at = MakeComputeAtStep("C", "D", 3);
  EXPECT_EQ(at.target_stage, "D");
  EXPECT_EQ(at.target_iter, 3);

  Step ann = MakeAnnotationStep("C", 5, IterAnnotation::kVectorize);
  EXPECT_EQ(ann.annotation, IterAnnotation::kVectorize);

  Step pragma = MakePragmaStep("C", 16);
  EXPECT_EQ(pragma.pragma_value, 16);
}

TEST(Steps, ToStringIsInformative) {
  EXPECT_NE(MakeSplitStep("C", 1, {4, 2}).ToString().find("split(C"), std::string::npos);
  EXPECT_NE(MakeCacheWriteStep("C").ToString().find("cache_write"), std::string::npos);
  EXPECT_NE(MakeRfactorStep("C", 2).ToString().find("rfactor"), std::string::npos);
  EXPECT_NE(MakeReorderStep("C", {1, 0}).ToString().find("reorder"), std::string::npos);
}

TEST(Steps, AnnotationNames) {
  EXPECT_STREQ(IterAnnotationName(IterAnnotation::kParallel), "parallel");
  EXPECT_STREQ(IterAnnotationName(IterAnnotation::kVectorize), "vectorize");
  EXPECT_STREQ(IterAnnotationName(IterAnnotation::kUnroll), "unroll");
  EXPECT_STREQ(IterAnnotationName(IterAnnotation::kBlockX), "blockIdx.x");
  EXPECT_STREQ(IterAnnotationName(IterAnnotation::kThreadX), "threadIdx.x");
}

}  // namespace
}  // namespace ansor
