#include <gtest/gtest.h>

#include "src/ir/state.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(State, InitialStagesMatchComputeOps) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_EQ(state.stages().size(), 2u);  // C and D (placeholders have no stage)
  EXPECT_EQ(state.stages()[0].name(), "C");
  EXPECT_EQ(state.stages()[1].name(), "D");
  // C: i, j space + k reduce.
  const Stage& c = state.stages()[0];
  ASSERT_EQ(c.iters.size(), 3u);
  EXPECT_EQ(c.iters[0].kind, IterKind::kSpace);
  EXPECT_EQ(c.iters[2].kind, IterKind::kReduce);
  EXPECT_EQ(c.iters[2].extent, 16);
}

TEST(State, SplitCreatesParts) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4, 2}));
  const Stage& c = state.stages()[0];
  ASSERT_EQ(c.iters.size(), 5u);
  EXPECT_EQ(c.iters[0].extent, 2);  // outer = 16 / (4*2)
  EXPECT_EQ(c.iters[1].extent, 4);
  EXPECT_EQ(c.iters[2].extent, 2);
  EXPECT_EQ(c.iters[0].name, "i.0");
  EXPECT_EQ(c.iters[2].name, "i.2");
  // Strides: inner to outer 1, 2, 8.
  EXPECT_EQ(c.iters[2].stride, 1);
  EXPECT_EQ(c.iters[1].stride, 2);
  EXPECT_EQ(c.iters[0].stride, 8);
}

TEST(State, SplitNonExactMarksGuard) {
  ComputeDAG dag = testing::MatmulRelu(10, 10, 10);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {3}));  // ceil(10/3)=4, 12 > 10
  const Stage& c = state.stages()[0];
  EXPECT_EQ(c.iters[0].extent, 4);
  EXPECT_EQ(c.guarded_axes.size(), 1u);
}

TEST(State, SplitInvalidIterFails) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  EXPECT_FALSE(state.Split("C", 99, {4}));
  EXPECT_TRUE(state.failed());
}

TEST(State, FuseCombinesExtents) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Fuse("D", 0, 2));
  const Stage& d = state.stages()[1];
  ASSERT_EQ(d.iters.size(), 1u);
  EXPECT_EQ(d.iters[0].extent, 256);
}

TEST(State, FuseMixedKindsFails) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  // C iters: i (space), j (space), k (reduce); fusing j and k must fail.
  EXPECT_FALSE(state.Fuse("C", 1, 2));
}

TEST(State, ReorderPermutes) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Reorder("C", {2, 0, 1}));
  const Stage& c = state.stages()[0];
  EXPECT_EQ(c.iters[0].kind, IterKind::kReduce);
}

TEST(State, ReorderRejectsNonPermutation) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  EXPECT_FALSE(state.Reorder("C", {0, 0, 1}));
}

TEST(State, ComputeInlineRewritesConsumer) {
  ComputeDAG dag = testing::ReluPadMatmul();
  State state(&dag);
  // Inline B (relu) into C (pad).
  ASSERT_TRUE(state.ComputeInline("B"));
  int c_idx = state.StageIndex("C");
  const Stage& c = state.stage(c_idx);
  // C's body should now reference A directly (B was inlined).
  std::vector<const ExprNode*> loads;
  CollectLoads(c.op->body, &loads);
  bool reads_a = false;
  bool reads_b = false;
  for (const ExprNode* l : loads) {
    reads_a |= l->buffer->name == "A";
    reads_b |= l->buffer->name == "B";
  }
  EXPECT_TRUE(reads_a);
  EXPECT_FALSE(reads_b);
  EXPECT_EQ(state.stage(state.StageIndex("B")).loc.kind, ComputeLocKind::kInlined);
}

TEST(State, InlineReductionFails) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  EXPECT_FALSE(state.ComputeInline("C"));
}

TEST(State, CacheWriteSplitsStage) {
  ComputeDAG dag = testing::Matmul();
  State state(&dag);
  int new_stage = -1;
  ASSERT_TRUE(state.CacheWrite("C", &new_stage));
  ASSERT_EQ(state.stages().size(), 2u);
  EXPECT_EQ(state.stages()[0].name(), "C.cache");
  EXPECT_EQ(state.stages()[1].name(), "C");
  EXPECT_EQ(new_stage, 0);
  // The cache carries the reduction; C is now an identity read.
  EXPECT_TRUE(HasReduce(state.stages()[0].op->body));
  EXPECT_FALSE(HasReduce(state.stages()[1].op->body));
  // C has no reduce iterators anymore.
  EXPECT_EQ(state.stages()[1].iters.size(), 2u);
}

TEST(State, RfactorRequiresSplitReduction) {
  ComputeDAG dag = testing::Matmul();
  State state(&dag);
  // k not split yet -> must fail.
  EXPECT_FALSE(state.Rfactor("C", 2, nullptr));
}

TEST(State, RfactorCreatesStage) {
  ComputeDAG dag = testing::Matmul(4, 4, 16);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 2, {4}));  // k -> k.0 (4), k.1 (4)
  int new_stage = -1;
  ASSERT_TRUE(state.Rfactor("C", 3, &new_stage));  // keep the inner part
  ASSERT_EQ(state.stages().size(), 2u);
  EXPECT_EQ(state.stages()[0].name(), "C.rf");
  const OperationRef& rf = state.stages()[0].op;
  // rf shape = [4, 4, 4] (original shape + kept extent).
  EXPECT_EQ(rf->output->shape, (std::vector<int64_t>{4, 4, 4}));
  // C reduces over the kept axis.
  const Stage& c = state.stages()[1];
  ASSERT_EQ(c.iters.size(), 3u);
  EXPECT_EQ(c.iters[2].kind, IterKind::kReduce);
  EXPECT_EQ(c.iters[2].extent, 4);
}

TEST(State, AnnotationApplies) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Annotate("C", 0, IterAnnotation::kParallel));
  EXPECT_EQ(state.stages()[0].iters[0].annotation, IterAnnotation::kParallel);
  ASSERT_TRUE(state.Pragma("C", 64));
  EXPECT_EQ(state.stages()[0].auto_unroll_max_step, 64);
}

TEST(State, ReplayReproducesState) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4}));
  ASSERT_TRUE(state.Split("C", 2, {8}));
  ASSERT_TRUE(state.Reorder("C", {0, 2, 1, 3, 4}));
  ASSERT_TRUE(state.Annotate("C", 0, IterAnnotation::kParallel));

  State replayed = State::Replay(&dag, state.steps());
  ASSERT_FALSE(replayed.failed());
  ASSERT_EQ(replayed.stages().size(), state.stages().size());
  for (size_t s = 0; s < state.stages().size(); ++s) {
    const Stage& a = state.stages()[s];
    const Stage& b = replayed.stages()[s];
    ASSERT_EQ(a.iters.size(), b.iters.size());
    for (size_t i = 0; i < a.iters.size(); ++i) {
      EXPECT_EQ(a.iters[i].extent, b.iters[i].extent);
      EXPECT_EQ(a.iters[i].kind, b.iters[i].kind);
      EXPECT_EQ(a.iters[i].annotation, b.iters[i].annotation);
    }
  }
}

TEST(State, ReplayInvalidStepsReportsFailure) {
  ComputeDAG dag = testing::MatmulRelu();
  std::vector<Step> steps = {MakeSplitStep("C", 42, {2})};
  State replayed = State::Replay(&dag, steps);
  EXPECT_TRUE(replayed.failed());
}

TEST(State, ComputeAtSetsLocation) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Split("D", 0, {4}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 0));
  EXPECT_EQ(state.stages()[0].loc.kind, ComputeLocKind::kAt);
  EXPECT_EQ(state.stages()[0].loc.at_stage, "D");
}

TEST(State, ToStringShowsLoops) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 0, {4});
  std::string s = state.ToString();
  EXPECT_NE(s.find("for i.0"), std::string::npos);
  EXPECT_NE(s.find("C[...]"), std::string::npos);
}

TEST(State, EveryPrimitiveSetsFailedOnFalseReturn) {
  // The evolutionary search normalizes a replay failure by checking
  // failed(): a primitive that returned false without setting it would let a
  // partially-built state masquerade as valid. Audit every primitive.
  ComputeDAG dag = testing::MatmulRelu();
  auto check = [](const char* what, State& s, bool ok) {
    EXPECT_FALSE(ok) << what;
    EXPECT_TRUE(s.failed()) << what;
    EXPECT_FALSE(s.error().empty()) << what;
  };
  {
    State s(&dag);
    bool ok = s.Split("C", 42, {2});
    check("split bad iter", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Split("nope", 0, {2});
    check("split bad stage", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.FollowSplit("D", 0, /*src_step=*/3, 2);
    check("follow_split bad src", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Fuse("C", 0, 99);
    check("fuse out of range", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Reorder("C", {0, 0, 1});
    check("reorder non-permutation", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.ComputeAt("C", "C", 0);
    check("compute_at self", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.ComputeInline("C");  // reduction stage
    check("inline reduction", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.ComputeRoot("nope");
    check("compute_root bad stage", s, ok);
  }
  {
    State s(&dag);
    ASSERT_TRUE(s.CacheWrite("C", nullptr));
    bool ok = s.CacheWrite("C", nullptr);  // cache stage exists
    check("cache_write twice", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Rfactor("C", 2, nullptr);  // k not split
    check("rfactor unsplit", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Annotate("C", 17, IterAnnotation::kParallel);
    check("annotate bad iter", s, ok);
  }
  {
    State s(&dag);
    bool ok = s.Pragma("nope", 16);
    check("pragma bad stage", s, ok);
  }
}

TEST(State, FailureFactoryIsCanonical) {
  ComputeDAG dag = testing::MatmulRelu();
  State failure = State::Failure(&dag, "why");
  EXPECT_TRUE(failure.failed());
  EXPECT_EQ(failure.error(), "why");
  EXPECT_TRUE(failure.steps().empty());
  EXPECT_TRUE(failure.stages().empty());
}

TEST(State, FollowSplitMirrorsSourceLengths) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  // Split C.i into 4 parts with inner lengths [2, 2, 2] (step index 0).
  ASSERT_TRUE(state.Split("C", 0, {2, 2, 2}));
  // Follow on D.i with 3 parts: lengths should become [2, 4].
  ASSERT_TRUE(state.FollowSplit("D", 0, 0, 3));
  const Stage& d = state.stages()[state.StageIndex("D")];
  ASSERT_EQ(d.iters.size(), 4u);  // i.0, i.1, i.2, j
  EXPECT_EQ(d.iters[0].extent, 2);  // outer = 16/(2*4)
  EXPECT_EQ(d.iters[1].extent, 2);
  EXPECT_EQ(d.iters[2].extent, 4);
}

}  // namespace
}  // namespace ansor
