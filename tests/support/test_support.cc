#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/support/util.h"

namespace ansor {
namespace {

TEST(Divisors, SmallNumbers) {
  EXPECT_EQ(Divisors(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(Divisors(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(Divisors(16), (std::vector<int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(Divisors(17), (std::vector<int64_t>{1, 17}));
}

TEST(Divisors, PerfectSquare) {
  EXPECT_EQ(Divisors(36), (std::vector<int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(CeilDiv, Basic) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
}

TEST(GeometricMean, Basic) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_NEAR(GeometricMean({2.0, 8.0, 4.0}), 4.0, 1e-12);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Int(0, 1000), b.Int(0, 1000));
  }
}

TEST(Rng, IntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(3);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.WeightedIndex(weights));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(4);
  std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RepeatedParallelForIsExact) {
  // Stresses the chunk dispatcher (caller participation + straggler tasks):
  // every index must run exactly once on every invocation.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    std::atomic<long long> sum{0};
    size_t n = static_cast<size_t>(1 + (round * 7) % 97);
    pool.ParallelFor(n, [&](size_t i) {
      count.fetch_add(1);
      sum.fetch_add(static_cast<long long>(i));
    });
    EXPECT_EQ(count.load(), static_cast<int>(n));
    EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
  }
}

TEST(ThreadPool, OrGlobalResolvesOverride) {
  ThreadPool pool(2);
  EXPECT_EQ(&ThreadPool::OrGlobal(&pool), &pool);
  EXPECT_EQ(&ThreadPool::OrGlobal(nullptr), &ThreadPool::Global());
}

TEST(ThreadPool, EmptyAndSingle) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Join, Strings) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(Env, Defaults) {
  EXPECT_DOUBLE_EQ(EnvDouble("ANSOR_NONEXISTENT_VAR_X", 1.5), 1.5);
  EXPECT_EQ(EnvInt("ANSOR_NONEXISTENT_VAR_X", 42), 42);
}

}  // namespace
}  // namespace ansor
