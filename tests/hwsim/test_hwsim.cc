// Simulator tests: the machine model must reward exactly the optimizations
// Ansor's search space exposes — otherwise the search results are meaningless.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/hwsim/measurer.h"
#include "src/hwsim/simulator.h"
#include "src/support/thread_pool.h"
#include "src/workloads/operators.h"
#include "tests/testing.h"

namespace ansor {
namespace {

double SecondsOf(const State& state, const MachineModel& machine) {
  LoweredProgram prog = Lower(state);
  EXPECT_TRUE(prog.ok) << prog.error;
  SimulatedCost cost = SimulateProgram(prog, machine);
  EXPECT_TRUE(cost.valid) << cost.error;
  return cost.seconds;
}

TEST(MachineModel, Factories) {
  MachineModel intel = MachineModel::IntelCpu20Core();
  EXPECT_EQ(intel.num_cores, 20);
  EXPECT_EQ(intel.kind, MachineKind::kCpu);
  EXPECT_GT(intel.PeakGflops(), 100.0);
  MachineModel arm = MachineModel::ArmCpu4Core();
  EXPECT_EQ(arm.num_cores, 4);
  EXPECT_LT(arm.PeakGflops(), intel.PeakGflops());
  MachineModel gpu = MachineModel::NvidiaGpu();
  EXPECT_EQ(gpu.kind, MachineKind::kGpu);
  EXPECT_GT(gpu.PeakGflops(), intel.PeakGflops());
}

TEST(Simulator, ParallelizationHelps) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State base(&dag);
  State parallel(&dag);
  ASSERT_TRUE(parallel.Annotate("C", 0, IterAnnotation::kParallel));
  EXPECT_LT(SecondsOf(parallel, machine), SecondsOf(base, machine) * 0.5);
}

TEST(Simulator, VectorizationHelpsUnitStride) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State base(&dag);
  State vec(&dag);
  // j (axis 1) is unit stride for B and C.
  ASSERT_TRUE(vec.Reorder("C", {0, 2, 1}));
  ASSERT_TRUE(vec.Annotate("C", 2, IterAnnotation::kVectorize));
  State base_reordered(&dag);
  ASSERT_TRUE(base_reordered.Reorder("C", {0, 2, 1}));
  EXPECT_LT(SecondsOf(vec, machine), SecondsOf(base_reordered, machine));
}

TEST(Simulator, StridedVectorizationWorseThanUnitStride) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  // Vectorizing j (unit stride) vs vectorizing k (stride 64 on B... actually
  // stride 16 on B, 1 on A) -- j should win since all accesses are unit or
  // invariant.
  State vec_j(&dag);
  ASSERT_TRUE(vec_j.Reorder("C", {0, 2, 1}));
  ASSERT_TRUE(vec_j.Annotate("C", 2, IterAnnotation::kVectorize));
  State vec_i(&dag);
  // i has stride 64 on A and C: gather.
  ASSERT_TRUE(vec_i.Reorder("C", {1, 2, 0}));
  ASSERT_TRUE(vec_i.Annotate("C", 2, IterAnnotation::kVectorize));
  EXPECT_LT(SecondsOf(vec_j, machine), SecondsOf(vec_i, machine));
}

TEST(Simulator, TilingHelpsLargeMatmul) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  ComputeDAG dag = testing::Matmul(256, 256, 256);
  State naive(&dag);
  State tiled(&dag);
  // Classic cache tiling: 32x32 tiles over i, j with k blocked.
  ASSERT_TRUE(tiled.Split("C", 0, {32}));
  ASSERT_TRUE(tiled.Split("C", 2, {32}));
  ASSERT_TRUE(tiled.Split("C", 4, {32}));
  ASSERT_TRUE(tiled.Reorder("C", {0, 2, 4, 1, 3, 5}));
  EXPECT_LT(SecondsOf(tiled, machine), SecondsOf(naive, machine));
}

TEST(Simulator, UnrollReducesOverhead) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State base(&dag);
  State unrolled(&dag);
  ASSERT_TRUE(unrolled.Split("C", 2, {8}));
  ASSERT_TRUE(unrolled.Annotate("C", 3, IterAnnotation::kUnroll));
  EXPECT_LT(SecondsOf(unrolled, machine), SecondsOf(base, machine));
}

TEST(Simulator, ZeroEliminationRewardsUnrolledPadding) {
  // A matmul over a zero-padded tensor (half the reduction range is zero):
  // with unrolling the simulator should credit multiply-by-zero elimination.
  Tensor a = Placeholder("A", {16, 32});
  Tensor d = Placeholder("Dm", {64, 16});
  Tensor c = Compute("C", {16, 64}, [&](const std::vector<Expr>& i) {
    return Select(i[1] < IntImm(32), a(i[0], Min(i[1], IntImm(31))), FloatImm(0.0));
  });
  Tensor e = Compute("E", {16, 16}, [&](const std::vector<Expr>& i) {
    Expr k = ReduceAxis(64, "k");
    return Sum(c(i[0], k) * d(k, i[1]), {k});
  });
  ComputeDAG dag({a, d, c, e});
  MachineModel machine = MachineModel::IntelCpu20Core();

  State plain(&dag);
  ASSERT_TRUE(plain.ComputeInline("C"));
  State unrolled(&dag);
  ASSERT_TRUE(unrolled.ComputeInline("C"));
  ASSERT_TRUE(unrolled.Pragma("E", 64));
  EXPECT_LT(SecondsOf(unrolled, machine), SecondsOf(plain, machine));
}

TEST(Simulator, GuardSelectivityReducesIterations) {
  MachineModel machine = MachineModel::IntelCpu20Core();
  // Non-exact split creates a guard; the simulator should not charge for the
  // guarded-out iterations (10 rows padded to 12).
  ComputeDAG dag10 = testing::Matmul(10, 16, 16);
  State guarded(&dag10);
  ASSERT_TRUE(guarded.Split("C", 0, {4}));  // ceil(10/4)=3 -> 12 iterations
  ComputeDAG dag12 = testing::Matmul(12, 16, 16);
  State full(&dag12);
  ASSERT_TRUE(full.Split("C", 0, {4}));
  // The guarded 10-row program must cost less than the full 12-row program.
  EXPECT_LT(SecondsOf(guarded, machine), SecondsOf(full, machine));
}

TEST(Simulator, GpuNeedsThreadBinding) {
  MachineModel gpu = MachineModel::NvidiaGpu();
  ComputeDAG dag = testing::Matmul(128, 128, 64);
  State unbound(&dag);
  State bound(&dag);
  ASSERT_TRUE(bound.Split("C", 0, {8}));
  ASSERT_TRUE(bound.Split("C", 2, {32}));
  ASSERT_TRUE(bound.Reorder("C", {0, 2, 1, 3, 4}));
  ASSERT_TRUE(bound.Fuse("C", 0, 2));
  ASSERT_TRUE(bound.Fuse("C", 1, 2));
  ASSERT_TRUE(bound.Annotate("C", 0, IterAnnotation::kBlockX));
  ASSERT_TRUE(bound.Annotate("C", 1, IterAnnotation::kThreadX));
  EXPECT_LT(SecondsOf(bound, gpu), SecondsOf(unbound, gpu) * 0.1);
}

TEST(Simulator, ArmSlowerThanIntel) {
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State state(&dag);
  ASSERT_TRUE(state.Annotate("C", 0, IterAnnotation::kParallel));
  EXPECT_GT(SecondsOf(state, MachineModel::ArmCpu4Core()),
            SecondsOf(state, MachineModel::IntelCpu20Core()));
}

TEST(Selectivity, AffineConditions) {
  Expr v = MakeVar("v", 100);
  std::unordered_map<int64_t, int64_t> extents = {{v->var_id, 100}};
  EXPECT_NEAR(EstimateSelectivity(Expr(v) < IntImm(50), extents), 0.5, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Expr(v) < IntImm(100), extents), 1.0, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Expr(v) < IntImm(0), extents), 0.0, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Expr(v) >= IntImm(25), extents), 0.75, 1e-9);
  // Conjunction multiplies.
  Expr w = MakeVar("w", 10);
  extents[w->var_id] = 10;
  EXPECT_NEAR(EstimateSelectivity((Expr(v) < IntImm(50)) && (Expr(w) < IntImm(5)), extents),
              0.25, 1e-9);
}

TEST(Measurer, MeasuresAndCounts) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  State state(&dag);
  MeasureResult r = measurer.Measure(state);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_EQ(measurer.trial_count(), 1);
}

TEST(Measurer, InvalidProgramFailsGracefully) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 99, {2});
  MeasureResult r = measurer.Measure(state);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(measurer.trial_count(), 1);
}

TEST(Measurer, BatchMatchesSingle) {
  Measurer measurer(MachineModel::IntelCpu20Core());
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  std::vector<State> states;
  for (int i = 0; i < 8; ++i) {
    State s(&dag);
    states.push_back(std::move(s));
  }
  auto results = measurer.MeasureBatch(states);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.seconds, results[0].seconds);
  }
  EXPECT_EQ(measurer.trial_count(), 8);
}

TEST(Measurer, NoiseIsDeterministicPerProgram) {
  MeasureOptions options;
  options.noise_stddev = 0.05;
  options.noise_seed = 7;
  Measurer measurer(MachineModel::IntelCpu20Core(), options);
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  State state(&dag);
  MeasureResult a = measurer.Measure(state);
  MeasureResult b = measurer.Measure(state);
  ASSERT_TRUE(a.valid);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Measurer, VerificationCatchesNothingOnValidPrograms) {
  MeasureOptions options;
  options.verify_every = 1;
  Measurer measurer(MachineModel::IntelCpu20Core(), options);
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4}));
  MeasureResult r = measurer.Measure(state);
  EXPECT_TRUE(r.valid) << r.error;
}

TEST(MeasurerVerifyCadence, ResetTrialCountResetsVerifyPhase) {
  // Regression: ResetTrialCount() used to reset only the budget counter, so a
  // second run sharing the Measurer continued the previous run's verify_every
  // phase (here: verifying trials 4 of 3..5 — one check — instead of trials 0
  // and 2 — two checks).
  MeasureOptions options;
  options.verify_every = 2;
  Measurer measurer(MachineModel::IntelCpu20Core(), options);
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(measurer.Measure(state).valid);
  }
  EXPECT_EQ(measurer.verification_count(), 2);  // trials 0 and 2
  measurer.ResetTrialCount();
  EXPECT_EQ(measurer.trial_count(), 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(measurer.Measure(state).valid);
  }
  EXPECT_EQ(measurer.verification_count(), 4);  // cadence restarted at trial 0
}

TEST(Measurer, SubmitBatchMatchesMeasureBatch) {
  ComputeDAG dag = testing::Matmul(32, 32, 32);
  std::vector<State> states;
  for (int i = 1; i <= 4; ++i) {
    State s(&dag);
    ASSERT_TRUE(s.Split("C", 0, {1 << i}));
    states.push_back(std::move(s));
  }
  Measurer sync_measurer(MachineModel::IntelCpu20Core());
  Measurer async_measurer(MachineModel::IntelCpu20Core());
  std::vector<MeasureResult> sync_results = sync_measurer.MeasureBatch(states);
  PendingMeasureBatch pending = async_measurer.SubmitBatch(states);
  std::vector<MeasureResult> async_results = pending.Wait();
  EXPECT_TRUE(pending.done());
  ASSERT_EQ(async_results.size(), sync_results.size());
  for (size_t i = 0; i < sync_results.size(); ++i) {
    EXPECT_EQ(async_results[i].valid, sync_results[i].valid);
    EXPECT_FALSE(async_results[i].cancelled);
    EXPECT_DOUBLE_EQ(async_results[i].seconds, sync_results[i].seconds);
  }
  EXPECT_EQ(async_measurer.trial_count(), sync_measurer.trial_count());
}

TEST(Measurer, CancelledTrialsAreNotCharged) {
  // Block the (single-worker) pool so no batch item can start, cancel, then
  // drain: every item must come back cancelled without touching the trial
  // counter — the "no lost budget accounting" half of deadline cancellation.
  ThreadPool pool(1);
  pool.Enqueue([] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  Measurer measurer(MachineModel::IntelCpu20Core());
  ComputeDAG dag = testing::Matmul(16, 16, 16);
  std::vector<State> states(4, State(&dag));
  PendingMeasureBatch pending =
      measurer.SubmitBatch(states, /*cache=*/nullptr, /*cache_client_id=*/0, &pool);
  pending.Cancel();
  std::vector<MeasureResult> results = pending.Wait();
  ASSERT_EQ(results.size(), 4u);
  for (const MeasureResult& r : results) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.valid);
  }
  EXPECT_EQ(measurer.trial_count(), 0);
}

}  // namespace
}  // namespace ansor

namespace ansor {
namespace {

TEST(Simulator, ConstantLayoutRewriteHelpsStridedWeights) {
  // Dense layer: the weight matrix W[out, in] is read with stride in_dim
  // along the output axis. With §4.2 layout rewrite the compiler repacks the
  // constant tensor, so the strided access costs as if contiguous.
  ComputeDAG dag = MakeDense(64, 256, 256);
  State state(&dag);
  // Vectorize the output-channel axis of the matmul (strided weight access).
  ASSERT_TRUE(state.Reorder("dense", {0, 2, 1}));
  ASSERT_TRUE(state.Annotate("dense", 2, IterAnnotation::kVectorize));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok);

  SimOptions on;
  on.rewrite_constant_layouts = true;
  SimOptions off;
  off.rewrite_constant_layouts = false;
  SimulatedCost with_rewrite = SimulateProgram(prog, MachineModel::IntelCpu20Core(), on);
  SimulatedCost without = SimulateProgram(prog, MachineModel::IntelCpu20Core(), off);
  ASSERT_TRUE(with_rewrite.valid);
  ASSERT_TRUE(without.valid);
  EXPECT_LT(with_rewrite.seconds, without.seconds);
}

TEST(Simulator, LayoutRewriteDoesNotAffectNonConstantBuffers) {
  // A plain matmul with non-constant inputs must cost the same either way.
  ComputeDAG dag = testing::Matmul(64, 64, 64);
  State state(&dag);
  LoweredProgram prog = Lower(state);
  SimOptions on;
  SimOptions off;
  off.rewrite_constant_layouts = false;
  EXPECT_DOUBLE_EQ(SimulateProgram(prog, MachineModel::IntelCpu20Core(), on).seconds,
                   SimulateProgram(prog, MachineModel::IntelCpu20Core(), off).seconds);
}

TEST(ConstantPlaceholderTest, FlagPropagates) {
  Tensor w = ConstantPlaceholder("W", {4, 4});
  Tensor a = Placeholder("A", {4, 4});
  EXPECT_TRUE(w.buffer()->is_constant);
  EXPECT_FALSE(a.buffer()->is_constant);
}

}  // namespace
}  // namespace ansor
