#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(SampleFactorizationTest, ProductDividesExtent) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t extent = rng.Int(1, 512);
    int parts = static_cast<int>(rng.Int(1, 4));
    auto lengths = SampleFactorization(extent, parts, &rng, 64);
    ASSERT_EQ(lengths.size(), static_cast<size_t>(parts));
    int64_t prod = 1;
    for (int64_t l : lengths) {
      ASSERT_GT(l, 0);
      prod *= l;
    }
    EXPECT_EQ(extent % prod, 0) << "extent " << extent;
  }
}

TEST(SampleFactorizationTest, InnermostBounded) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    auto lengths = SampleFactorization(4096, 3, &rng, 16);
    EXPECT_LE(lengths.back(), 16);
  }
}

TEST(SampleTileSizesTest, ConcreteSizesFillPendingSplits) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  Rng rng(3);
  State sampled = SampleTileSizes(sketches[0], &dag, &rng);
  ASSERT_FALSE(sampled.failed()) << sampled.error();
  // All split steps should have concrete (not necessarily 1) lengths and the
  // state must replay.
  State replayed = State::Replay(&dag, sampled.steps());
  EXPECT_FALSE(replayed.failed());
}

TEST(SampledProgramsAreSemanticallyCorrect, MatmulRelu) {
  // THE key property (paper §4): every sampled complete program must compute
  // the same function as the naive program.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  Rng rng(7);
  int verified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const State& sketch = sketches[rng.Index(sketches.size())];
    State program = SampleCompleteProgram(sketch, &dag, &rng);
    if (program.failed()) {
      continue;  // invalid samples are allowed; the measurer rejects them
    }
    std::string err = VerifyAgainstNaive(program);
    LoweredProgram lowered = Lower(program);
    if (!lowered.ok) {
      continue;  // unsupported placement from a location tweak: rejected
    }
    EXPECT_EQ(err, "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 20);
}

TEST(SampledProgramsAreSemanticallyCorrect, PaddedWorkload) {
  ComputeDAG dag = testing::ReluPadMatmul(8, 4, 64, 48);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  Rng rng(11);
  int verified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const State& sketch = sketches[rng.Index(sketches.size())];
    State program = SampleCompleteProgram(sketch, &dag, &rng);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 10);
}

TEST(SampledProgramsAreSemanticallyCorrect, NormWithRfactor) {
  ComputeDAG dag = testing::MatrixNorm(4, 64);
  auto sketches = GenerateSketches(&dag);
  Rng rng(13);
  int verified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const State& sketch = sketches[rng.Index(sketches.size())];
    State program = SampleCompleteProgram(sketch, &dag, &rng);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 10);
}

TEST(Annotation, ParallelAnnotationAppears) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(5);
  bool saw_parallel = false;
  bool saw_vectorize = false;
  for (int trial = 0; trial < 20 && !(saw_parallel && saw_vectorize); ++trial) {
    State program = SampleCompleteProgram(sketches[0], &dag, &rng);
    if (program.failed()) {
      continue;
    }
    for (const Stage& s : program.stages()) {
      for (const Iterator& it : s.iters) {
        saw_parallel |= it.annotation == IterAnnotation::kParallel;
        saw_vectorize |= it.annotation == IterAnnotation::kVectorize;
      }
    }
  }
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_vectorize);
}

TEST(Annotation, GpuPolicyBindsThreads) {
  ComputeDAG dag = testing::MatmulRelu(32, 32, 32);
  auto sketches = GenerateSketches(&dag);
  Rng rng(6);
  SamplerOptions options;
  options.gpu = true;
  bool saw_bind = false;
  for (int trial = 0; trial < 20 && !saw_bind; ++trial) {
    State program = SampleCompleteProgram(sketches[0], &dag, &rng, options);
    if (program.failed()) {
      continue;
    }
    for (const Stage& s : program.stages()) {
      for (const Iterator& it : s.iters) {
        saw_bind |= it.annotation == IterAnnotation::kBlockX;
      }
    }
  }
  EXPECT_TRUE(saw_bind);
}

TEST(Annotation, GpuSampledProgramsVerify) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  auto sketches = GenerateSketches(&dag);
  Rng rng(21);
  SamplerOptions options;
  options.gpu = true;
  int verified = 0;
  for (int trial = 0; trial < 20; ++trial) {
    State program = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng,
                                          options);
    if (program.failed() || !Lower(program).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(program), "") << program.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 5);
}

}  // namespace
}  // namespace ansor
