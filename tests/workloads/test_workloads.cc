#include <gtest/gtest.h>

#include <cmath>

#include "src/workloads/operators.h"
#include "src/workloads/suites.h"
#include "src/exec/interpreter.h"
#include "src/sampler/annotation.h"
#include "src/sketch/sketch.h"

namespace ansor {
namespace {

// Every operator definition must execute and be internally consistent.

TEST(Operators, Conv1dShapeAndSemantics) {
  ComputeDAG dag = MakeConv1d(1, 2, 8, 3, 3, 1, 1);
  int idx = dag.OpIndexOf("conv1d");
  ASSERT_GE(idx, 0);
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{1, 3, 8}));
  auto outputs = dag.Execute(dag.RandomInputs(1));
  EXPECT_EQ(outputs.at("conv1d").size(), 24u);
}

TEST(Operators, Conv2dMatchesDirectComputation) {
  ComputeDAG dag = MakeConv2d(1, 1, 4, 4, 1, 3, 3, 1, 1);
  auto inputs = dag.RandomInputs(2);
  auto outputs = dag.Execute(inputs);
  const auto& data = inputs.at("data");
  const auto& weight = inputs.at("weight");
  const auto& out = outputs.at("conv2d");
  // Direct dense conv with zero padding.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      float expect = 0.0f;
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          int sy = y + ky - 1;
          int sx = x + kx - 1;
          if (sy >= 0 && sy < 4 && sx >= 0 && sx < 4) {
            expect += data[static_cast<size_t>(sy * 4 + sx)] *
                      weight[static_cast<size_t>(ky * 3 + kx)];
          }
        }
      }
      EXPECT_NEAR(out[static_cast<size_t>(y * 4 + x)], expect, 1e-4);
    }
  }
}

TEST(Operators, Conv2dStrideAndOutputSize) {
  ComputeDAG dag = MakeConv2d(1, 8, 14, 14, 16, 3, 3, 2, 1);
  int idx = dag.OpIndexOf("conv2d");
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{1, 16, 7, 7}));
}

TEST(Operators, GroupConvChannelsPartitioned) {
  // With 2 groups, output channel 0 must not depend on input channels of
  // group 1. Zero out group-0 inputs and check output is zero.
  ComputeDAG dag = MakeConv2d(1, 4, 4, 4, 4, 1, 1, 1, 0, 1, 2);
  auto inputs = dag.RandomInputs(3);
  auto& data = inputs.at("data");
  // Zero channels 0-1 (group 0).
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 16; ++i) {
      data[static_cast<size_t>(c * 16 + i)] = 0.0f;
    }
  }
  auto outputs = dag.Execute(inputs);
  const auto& out = outputs.at("conv2d");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], 0.0f);       // co=0 reads group 0
    EXPECT_EQ(out[static_cast<size_t>(16 + i)], 0.0f);  // co=1 reads group 0
  }
}

TEST(Operators, DilatedConvReachesFartherPixels) {
  ComputeDAG dag = MakeConv2d(1, 1, 8, 8, 1, 3, 3, 1, 2, 2);
  int idx = dag.OpIndexOf("conv2d");
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{1, 1, 8, 8}));
  auto outputs = dag.Execute(dag.RandomInputs(4));
  EXPECT_EQ(outputs.at("conv2d").size(), 64u);
}

TEST(Operators, DepthwiseConvPerChannel) {
  // Depthwise: output channel c depends only on input channel c.
  ComputeDAG dag = MakeDepthwiseConv2d(1, 2, 4, 4, 3, 3, 1, 1);
  auto inputs = dag.RandomInputs(5);
  auto& data = inputs.at("data");
  for (int i = 0; i < 16; ++i) {
    data[static_cast<size_t>(i)] = 0.0f;  // zero channel 0
  }
  auto outputs = dag.Execute(inputs);
  const auto& out = outputs.at("dwconv2d");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], 0.0f);
    EXPECT_NE(out[static_cast<size_t>(16 + i)], 0.0f);
  }
}

TEST(Operators, TransposedConvUpsamples) {
  ComputeDAG dag = MakeTransposedConv2d(1, 2, 4, 4, 2, 4, 4, 2, 1);
  int idx = dag.OpIndexOf("t2d");
  // (4-1)*2 - 2 + 4 = 8.
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{1, 2, 8, 8}));
  auto outputs = dag.Execute(dag.RandomInputs(6));
  double sum = 0.0;
  for (float v : outputs.at("t2d")) {
    sum += std::fabs(static_cast<double>(v));
  }
  EXPECT_GT(sum, 0.0);
}

TEST(Operators, TransposedConvMatchesUpsampleDefinition) {
  // T2D with a delta input: a single 1 at position (0,0) must imprint the
  // flipped kernel into the output at the mapped location.
  ComputeDAG dag = MakeTransposedConv2d(1, 1, 2, 2, 1, 2, 2, 2, 0);
  auto inputs = dag.RandomInputs(7);
  auto& data = inputs.at("data");
  std::fill(data.begin(), data.end(), 0.0f);
  data[0] = 1.0f;  // delta at (0, 0)
  auto outputs = dag.Execute(inputs);
  const auto& weight = inputs.at("weight");
  const auto& out = outputs.at("t2d");  // shape 1x1x4x4
  // out[y, x] = weight[y, x] for y, x in [0, 2) (stride 2, no padding).
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      EXPECT_NEAR(out[static_cast<size_t>(y * 4 + x)],
                  weight[static_cast<size_t>(y * 2 + x)], 1e-5);
    }
  }
}

TEST(Operators, CapsuleConvShape) {
  ComputeDAG dag = MakeCapsuleConv2d(1, 2, 4, 4, 2, 3, 3, 1, 1);
  int idx = dag.OpIndexOf("capsule");
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{1, 4, 4, 2, 4, 4}));
  auto outputs = dag.Execute(dag.RandomInputs(8));
  EXPECT_EQ(outputs.at("capsule").size(), 512u);
}

TEST(Operators, BatchMatmulShape) {
  ComputeDAG dag = MakeMatmul(8, 16, 32, 4);
  int idx = dag.OpIndexOf("batch_matmul");
  EXPECT_EQ(dag.op(idx)->output->shape, (std::vector<int64_t>{4, 8, 16}));
}

TEST(Operators, NormComputesTwoNorm) {
  ComputeDAG dag = MakeNorm(2, 16);
  auto inputs = dag.RandomInputs(9);
  auto outputs = dag.Execute(inputs);
  const auto& a = inputs.at("A");
  const auto& norm = outputs.at("norm");
  for (int b = 0; b < 2; ++b) {
    double expect = 0.0;
    for (int k = 0; k < 16; ++k) {
      double v = a[static_cast<size_t>(b * 16 + k)];
      expect += v * v;
    }
    EXPECT_NEAR(norm[static_cast<size_t>(b)], std::sqrt(expect), 1e-4);
  }
}

TEST(Operators, ConvLayerAppliesBnAndRelu) {
  ComputeDAG dag = MakeConvLayer(1, 2, 4, 4, 2, 3, 3, 1, 1);
  auto inputs = dag.RandomInputs(10);
  auto outputs = dag.Execute(inputs);
  const auto& conv = outputs.at("conv2d");
  const auto& relu = outputs.at("relu");
  const auto& scale = inputs.at("bn_scale");
  const auto& shift = inputs.at("bn_shift");
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 16; ++i) {
      size_t idx = static_cast<size_t>(c * 16 + i);
      float expect = std::max(
          conv[idx] * scale[static_cast<size_t>(c)] + shift[static_cast<size_t>(c)], 0.0f);
      EXPECT_NEAR(relu[idx], expect, 1e-4);
    }
  }
}

TEST(Operators, TBGMatchesAttentionScores) {
  ComputeDAG dag = MakeTBG(1, 4, 2, 8);
  auto inputs = dag.RandomInputs(11);
  auto outputs = dag.Execute(inputs);
  const auto& q = inputs.at("Q");
  const auto& k = inputs.at("K");
  const auto& out = outputs.at("tbg");  // [1, 2, 4, 4]
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        double expect = 0.0;
        for (int d = 0; d < 8; ++d) {
          expect += q[static_cast<size_t>((i * 2 + h) * 8 + d)] *
                    k[static_cast<size_t>((j * 2 + h) * 8 + d)];
        }
        EXPECT_NEAR(out[static_cast<size_t>((h * 4 + i) * 4 + j)], expect, 1e-3);
      }
    }
  }
}

TEST(Operators, DenseAppliesBiasRelu) {
  ComputeDAG dag = MakeDense(2, 8, 4);
  auto outputs = dag.Execute(dag.RandomInputs(12));
  for (float v : outputs.at("bias_relu")) {
    EXPECT_GE(v, 0.0f);
  }
}

TEST(Suites, SingleOpSuiteCovers10OperatorsTimes4Shapes) {
  auto suite = SingleOpSuite(1);
  EXPECT_EQ(suite.size(), 40u);
  std::map<std::string, int> counts;
  for (const auto& c : suite) {
    counts[c.op] += 1;
    EXPECT_GT(c.dag.FlopCount(), 0.0);
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [op, count] : counts) {
    EXPECT_EQ(count, 4) << op;
  }
}

TEST(Suites, SubgraphSuiteShapes) {
  auto suite = SubgraphSuite(1);
  EXPECT_EQ(suite.size(), 8u);
}

TEST(Suites, NetworksHaveTasksAndWeights) {
  for (const NetworkTasks& net : AllNetworks(1)) {
    EXPECT_FALSE(net.tasks.empty()) << net.name;
    int total_weight = 0;
    for (const SearchTask& task : net.tasks) {
      EXPECT_GT(task.weight, 0);
      EXPECT_GT(task.flop_count(), 0.0);
      EXPECT_FALSE(task.tag.empty());
      total_weight += task.weight;
    }
    EXPECT_GE(total_weight, static_cast<int>(net.tasks.size()));
  }
}

TEST(Suites, ResNetHasManySubgraphOccurrences) {
  // The paper: 29 unique subgraphs among >50 convolution layers; our encoding
  // keeps the many-occurrence structure.
  NetworkTasks net = ResNet50Tasks(1);
  int total = 0;
  for (const SearchTask& task : net.tasks) {
    total += task.weight;
  }
  EXPECT_GE(total, 40);
}

}  // namespace
}  // namespace ansor

namespace ansor {
namespace {

TEST(Operators, MaxPoolComputesWindowMax) {
  ComputeDAG dag = MakeMaxPool2d(1, 1, 4, 4, 2, 2);
  auto inputs = dag.RandomInputs(13);
  auto outputs = dag.Execute(inputs);
  const auto& in = inputs.at("data");
  const auto& out = outputs.at("maxpool");
  ASSERT_EQ(out.size(), 4u);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      float expect = -1e30f;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          expect = std::max(expect, in[static_cast<size_t>((y * 2 + dy) * 4 + x * 2 + dx)]);
        }
      }
      EXPECT_FLOAT_EQ(out[static_cast<size_t>(y * 2 + x)], expect);
    }
  }
}

TEST(Operators, SoftmaxRowsSumToOne) {
  ComputeDAG dag = MakeSoftmax(4, 16);
  auto outputs = dag.Execute(dag.RandomInputs(14));
  const auto& out = outputs.at("softmax");
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 16; ++c) {
      double v = out[static_cast<size_t>(r * 16 + c)];
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Operators, MaxPoolSchedulesVerify) {
  // Max-reduction through the whole schedule pipeline: split + reorder on a
  // max-reduce stage must preserve semantics (init value is -inf, not 0).
  ComputeDAG dag = MakeMaxPool2d(1, 2, 8, 8, 2, 2);
  State state(&dag);
  ASSERT_TRUE(state.Split("maxpool", 2, {2}));
  ASSERT_TRUE(state.Reorder("maxpool", {4, 0, 1, 2, 3, 5, 6}));
  EXPECT_EQ(VerifyAgainstNaive(state), "");
}

TEST(Operators, SoftmaxPipelineSamplesVerify) {
  ComputeDAG dag = MakeSoftmax(4, 32);
  auto sketches = GenerateSketches(&dag);
  ASSERT_FALSE(sketches.empty());
  Rng rng(15);
  int verified = 0;
  for (int trial = 0; trial < 12; ++trial) {
    State p = SampleCompleteProgram(sketches[rng.Index(sketches.size())], &dag, &rng);
    if (p.failed() || !Lower(p).ok) {
      continue;
    }
    EXPECT_EQ(VerifyAgainstNaive(p), "") << p.ToString();
    ++verified;
  }
  EXPECT_GT(verified, 4);
}

}  // namespace
}  // namespace ansor
