#include <gtest/gtest.h>

#include "src/exec/interpreter.h"
#include "src/lower/loop_tree.h"
#include "tests/testing.h"

namespace ansor {
namespace {

int CountNodes(const LoopTreeNode& node, LoopTreeKind kind) {
  int count = node.kind == kind ? 1 : 0;
  for (const auto& child : node.children) {
    count += CountNodes(*child, kind);
  }
  return count;
}

int CountNodes(const LoweredProgram& program, LoopTreeKind kind) {
  int count = 0;
  for (const auto& root : program.roots) {
    count += CountNodes(*root, kind);
  }
  return count;
}

TEST(Lower, NaiveProgramStructure) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok) << prog.error;
  // C gets an init nest (2 loops) and a main nest (3 loops); D gets 2 loops.
  EXPECT_EQ(prog.roots.size(), 3u);
  EXPECT_EQ(CountNodes(prog, LoopTreeKind::kLoop), 2 + 3 + 2);
  EXPECT_EQ(CountNodes(prog, LoopTreeKind::kStore), 3);
  EXPECT_EQ(prog.output_buffers, (std::vector<std::string>{"D"}));
}

TEST(Lower, GuardEmittedForNonExactSplit) {
  ComputeDAG dag = testing::MatmulRelu(10, 10, 10);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {3}));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok) << prog.error;
  EXPECT_GT(CountNodes(prog, LoopTreeKind::kIf), 0);
}

TEST(Lower, NoGuardForExactSplit) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  ASSERT_TRUE(state.Split("C", 0, {4}));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok) << prog.error;
  EXPECT_EQ(CountNodes(prog, LoopTreeKind::kIf), 0);
}

TEST(Lower, InlinedStageEmitsNoLoops) {
  ComputeDAG dag = testing::MatmulRelu(8, 8, 8);
  State state(&dag);
  // D cannot be inlined (no consumer); inline nothing, but check that a
  // 3-op chain drops the inlined stage.
  ComputeDAG dag2 = testing::ReluPadMatmul(4, 2, 8, 6);
  State s2(&dag2);
  ASSERT_TRUE(s2.ComputeInline("B"));
  ASSERT_TRUE(s2.ComputeInline("C"));
  LoweredProgram prog = Lower(s2);
  ASSERT_TRUE(prog.ok) << prog.error;
  // Only E remains: init nest (2 loops) + main nest (3 loops).
  EXPECT_EQ(CountNodes(prog, LoopTreeKind::kLoop), 5);
  EXPECT_EQ(prog.buffers.count("B"), 0u);
  EXPECT_EQ(prog.buffers.count("C"), 0u);
}

TEST(Lower, ComputeAtIdentityConsumer) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  // Tile C with SSRSRS-lite, follow-split D, fuse C into D.
  ASSERT_TRUE(state.Split("C", 0, {4}));      // i -> i.0(4), i.1(4)   [step 0]
  ASSERT_TRUE(state.Split("C", 2, {4}));      // j -> j.0(4), j.1(4)   [step 1]
  ASSERT_TRUE(state.Reorder("C", {0, 2, 1, 3, 4}));
  ASSERT_TRUE(state.FollowSplit("D", 0, 0, 2));
  ASSERT_TRUE(state.FollowSplit("D", 2, 1, 2));
  ASSERT_TRUE(state.Reorder("D", {0, 2, 1, 3}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 1));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok) << prog.error;
  std::string printed = prog.ToString();
  EXPECT_NE(printed.find("C["), std::string::npos);
  EXPECT_NE(printed.find("D["), std::string::npos);
}

TEST(Lower, ComputeAtNonIdentityFails) {
  // E reads C with a reduction index (not identity): compute_at must be
  // rejected gracefully, not crash.
  ComputeDAG dag = testing::ReluPadMatmul(4, 2, 8, 6);
  State state(&dag);
  ASSERT_TRUE(state.ComputeAt("C", "E", 0));
  LoweredProgram prog = Lower(state);
  EXPECT_FALSE(prog.ok);
  EXPECT_NE(prog.error.find("identity"), std::string::npos);
}

TEST(Lower, ComputeAtCoverageMismatchFails) {
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  State state(&dag);
  // Tile C but give D a mismatching manual split (4 vs 8): lowering must
  // detect that producer tile and consumer coverage do not line up.
  ASSERT_TRUE(state.Split("C", 0, {4}));
  ASSERT_TRUE(state.Split("D", 0, {8}));
  ASSERT_TRUE(state.ComputeAt("C", "D", 0));
  LoweredProgram prog = Lower(state);
  EXPECT_FALSE(prog.ok);
}

TEST(Lower, FailedStatePropagates) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  state.Split("C", 99, {2});
  LoweredProgram prog = Lower(state);
  EXPECT_FALSE(prog.ok);
}

TEST(Lower, CacheWriteProducesTwoNests) {
  ComputeDAG dag = testing::Matmul(8, 8, 8);
  State state(&dag);
  ASSERT_TRUE(state.CacheWrite("C", nullptr));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok) << prog.error;
  EXPECT_EQ(prog.buffers.count("C.cache"), 1u);
  // C.cache init + C.cache main + C copy.
  EXPECT_EQ(prog.roots.size(), 3u);
}

TEST(Lower, BuffersIncludePlaceholders) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok);
  EXPECT_EQ(prog.buffers.count("A"), 1u);
  EXPECT_EQ(prog.buffers.count("B"), 1u);
  EXPECT_EQ(prog.buffers.count("C"), 1u);
  EXPECT_EQ(prog.buffers.count("D"), 1u);
}

TEST(Lower, AnnotationsSurviveLowering) {
  ComputeDAG dag = testing::MatmulRelu();
  State state(&dag);
  ASSERT_TRUE(state.Annotate("C", 0, IterAnnotation::kParallel));
  ASSERT_TRUE(state.Annotate("C", 1, IterAnnotation::kVectorize));
  LoweredProgram prog = Lower(state);
  ASSERT_TRUE(prog.ok);
  std::string printed = prog.ToString();
  EXPECT_NE(printed.find("parallel"), std::string::npos);
  EXPECT_NE(printed.find("vectorize"), std::string::npos);
}

}  // namespace
}  // namespace ansor
