#include <gtest/gtest.h>

#include "src/dag/compute_dag.h"
#include "tests/testing.h"

namespace ansor {
namespace {

TEST(ComputeDAG, TopologicalOrder) {
  ComputeDAG dag = testing::MatmulRelu();
  ASSERT_EQ(dag.num_ops(), 4);
  // Placeholders first (producers precede consumers).
  int ia = dag.OpIndexOf("A");
  int ib = dag.OpIndexOf("B");
  int ic = dag.OpIndexOf("C");
  int id = dag.OpIndexOf("D");
  EXPECT_LT(ia, ic);
  EXPECT_LT(ib, ic);
  EXPECT_LT(ic, id);
}

TEST(ComputeDAG, ConsumersAndOutputs) {
  ComputeDAG dag = testing::MatmulRelu();
  int ic = dag.OpIndexOf("C");
  int id = dag.OpIndexOf("D");
  ASSERT_EQ(dag.ConsumersOf(ic).size(), 1u);
  EXPECT_EQ(dag.ConsumersOf(ic)[0], id);
  EXPECT_TRUE(dag.ConsumersOf(id).empty());
  auto outputs = dag.OutputIndices();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0], id);
  EXPECT_EQ(dag.InputIndices().size(), 2u);
}

TEST(ComputeDAG, FlopCountMatmul) {
  // 16x16x16 matmul: per output element, 16 multiplies + 16 adds = 32 flops,
  // 256 elements -> 8192. The relu adds 256 more.
  ComputeDAG dag = testing::MatmulRelu(16, 16, 16);
  EXPECT_DOUBLE_EQ(dag.FlopCount(), 16.0 * 16 * 16 * 2 + 16.0 * 16);
}

TEST(ComputeDAG, ExecuteMatmulCorrect) {
  ComputeDAG dag = testing::MatmulRelu(4, 3, 5);
  auto inputs = dag.RandomInputs(1);
  auto result = dag.Execute(inputs);
  const auto& a = inputs.at("A");
  const auto& b = inputs.at("B");
  const auto& c = result.at("C");
  const auto& d = result.at("D");
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 5; ++k) {
        expect += a[i * 5 + k] * b[k * 3 + j];
      }
      EXPECT_NEAR(c[i * 3 + j], expect, 1e-4);
      EXPECT_NEAR(d[i * 3 + j], std::max(expect, 0.0f), 1e-4);
    }
  }
}

TEST(ComputeDAG, ExecutePaddedWorkload) {
  ComputeDAG dag = testing::ReluPadMatmul(4, 2, 8, 6);
  auto inputs = dag.RandomInputs(2);
  auto result = dag.Execute(inputs);
  const auto& c = result.at("C");
  // Padded region must be exactly zero.
  for (int i = 0; i < 4; ++i) {
    for (int k = 6; k < 8; ++k) {
      EXPECT_EQ(c[i * 8 + k], 0.0f);
    }
  }
  // Valid region must be relu(A).
  const auto& a = inputs.at("A");
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 6; ++k) {
      EXPECT_NEAR(c[i * 8 + k], std::max(a[i * 6 + k], 0.0f), 1e-6);
    }
  }
}

TEST(ComputeDAG, CanonicalHashEqualForIdenticalDefinitions) {
  ComputeDAG a = testing::MatmulRelu(8, 8, 8);
  ComputeDAG b = testing::MatmulRelu(8, 8, 8);
  EXPECT_EQ(a.CanonicalHash(), b.CanonicalHash());
}

TEST(ComputeDAG, CanonicalHashDiffersForDifferentShapes) {
  ComputeDAG a = testing::MatmulRelu(8, 8, 8);
  ComputeDAG b = testing::MatmulRelu(8, 8, 16);
  EXPECT_NE(a.CanonicalHash(), b.CanonicalHash());
}

TEST(ComputeDAG, CanonicalHashDiffersForDifferentBodies) {
  ComputeDAG a = testing::Matmul(8, 8, 8);
  ComputeDAG b = testing::MatmulRelu(8, 8, 8);
  EXPECT_NE(a.CanonicalHash(), b.CanonicalHash());
}

TEST(ComputeDAG, MissingProducerIsFatal) {
  Tensor a = Placeholder("A", {4});
  Tensor b = Compute("B", {4}, [&](const std::vector<Expr>& i) {
    return a(i[0]) + FloatImm(1.0);
  });
  // Omit A from the tensor list: the DAG cannot resolve the producer.
  EXPECT_DEATH({ ComputeDAG dag({b}); }, "missing producer");
}

TEST(ComputeDAG, ToStringMentionsOps) {
  ComputeDAG dag = testing::MatmulRelu();
  std::string s = dag.ToString();
  EXPECT_NE(s.find("placeholder"), std::string::npos);
  EXPECT_NE(s.find("C["), std::string::npos);
}

TEST(ExprFlopCountTest, CountsReductionDomain) {
  ComputeDAG dag = testing::MatrixNorm(4, 32);
  // S: 4 outputs x 32 iterations x (1 mul + 1 add) = 256; N: 4 sqrt = 4.
  EXPECT_DOUBLE_EQ(dag.FlopCount(), 4.0 * 32 * 2 + 4.0);
}

}  // namespace
}  // namespace ansor
